package vita

// This file is the benchmark harness required by DESIGN.md §4: one bench per
// reproduced figure/claim (E1-E10) plus the ablations (A1-A4) and
// micro-benchmarks for the hot substrates. Run:
//
//	go test -bench=. -benchmem
//
// cmd/vitabench prints the same experiments as human-readable tables.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"vita/internal/colstore"
	"vita/internal/device"
	"vita/internal/experiments"
	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/index"
	"vita/internal/model"
	"vita/internal/object"
	"vita/internal/plan"
	"vita/internal/query"
	"vita/internal/rng"
	"vita/internal/rssi"
	"vita/internal/serve"
	"vita/internal/storage"
	"vita/internal/topo"
	"vita/internal/trajectory"
)

func benchExperiment(b *testing.B, run func(seed uint64) (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := run(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty experiment table")
		}
	}
}

// BenchmarkPipelineEndToEnd regenerates E1 (Figure 1 data flow).
func BenchmarkPipelineEndToEnd(b *testing.B) { benchExperiment(b, experiments.E1Pipeline) }

// BenchmarkDeploymentModels regenerates E2 (Figure 3 deployments and
// distributions).
func BenchmarkDeploymentModels(b *testing.B) { benchExperiment(b, experiments.E2Deployment) }

// BenchmarkRSSIWallAttenuation regenerates E3 (Figure 3a d1/d2 claim).
func BenchmarkRSSIWallAttenuation(b *testing.B) { benchExperiment(b, experiments.E3WallAttenuation) }

// BenchmarkSamplingFrequencySweep regenerates E4 (ground-truth fidelity).
func BenchmarkSamplingFrequencySweep(b *testing.B) { benchExperiment(b, experiments.E4SamplingSweep) }

// BenchmarkPositioningAccuracy regenerates E5 (method × noise accuracy).
func BenchmarkPositioningAccuracy(b *testing.B) { benchExperiment(b, experiments.E5Accuracy) }

// BenchmarkRoutingSchemes regenerates E6 (min-distance vs min-time).
func BenchmarkRoutingSchemes(b *testing.B) { benchExperiment(b, experiments.E6Routing) }

// BenchmarkDBIProcessing regenerates E7 (§4.1 DBI pipeline).
func BenchmarkDBIProcessing(b *testing.B) { benchExperiment(b, experiments.E7DBIProcessing) }

// BenchmarkStorageQueries regenerates E8 (Data Stream APIs).
func BenchmarkStorageQueries(b *testing.B) { benchExperiment(b, experiments.E8StorageQueries) }

// BenchmarkArrivalProcess regenerates E9 (Poisson arrivals).
func BenchmarkArrivalProcess(b *testing.B) { benchExperiment(b, experiments.E9Arrivals) }

// BenchmarkMethodDeviceCombos regenerates E10 (§5 step 6 combinations).
func BenchmarkMethodDeviceCombos(b *testing.B) { benchExperiment(b, experiments.E10Combos) }

// BenchmarkAblationLoS regenerates A1.
func BenchmarkAblationLoS(b *testing.B) { benchExperiment(b, experiments.AblationLoS) }

// BenchmarkAblationIndex regenerates A2.
func BenchmarkAblationIndex(b *testing.B) { benchExperiment(b, experiments.AblationIndex) }

// BenchmarkAblationRadioMapDensity regenerates A3.
func BenchmarkAblationRadioMapDensity(b *testing.B) {
	benchExperiment(b, experiments.AblationRadioMapDensity)
}

// BenchmarkAblationDecomposition regenerates A4.
func BenchmarkAblationDecomposition(b *testing.B) {
	benchExperiment(b, experiments.AblationDecomposition)
}

// BenchmarkPipeline measures generation throughput (trajectory + RSSI, the
// sharded hot path; positioning skipped) at several Parallelism settings.
// The p=1 case is the sequential baseline; output is byte-identical across
// all settings, so the sub-benchmarks differ only in wall clock. On a
// multi-core host p=4 should approach a 4x speedup (Amdahl-limited by the
// ~0.5ms serial topology build and the serialized merge emit).
func BenchmarkPipeline(b *testing.B) {
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Parallelism = p
			cfg.Objects.Count = 80
			cfg.Objects.MinLifespan = 300
			cfg.Objects.MaxLifespan = 600
			cfg.Trajectory.Duration = 600
			cfg.Positioning = PositioningConfig{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ds, err := Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if ds.Trajectories.Len() == 0 || ds.RSSI.Len() == 0 {
					b.Fatal("empty generation output")
				}
			}
		})
	}
}

// --- micro-benchmarks for the hot substrates ---

func officeTopoB(b *testing.B) *topo.Topology {
	b.Helper()
	f, err := ifc.Parse(ifc.OfficeIFC())
	if err != nil {
		b.Fatal(err)
	}
	bd, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
	if err != nil {
		b.Fatal(err)
	}
	t, err := topo.Build(bd, topo.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkIFCParse measures DBI parsing alone.
func BenchmarkIFCParse(b *testing.B) {
	text := ifc.OfficeIFC()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ifc.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyBuild measures full topology derivation.
func BenchmarkTopologyBuild(b *testing.B) {
	text := ifc.OfficeIFC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := ifc.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		bd, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := topo.Build(bd, topo.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoute measures one cross-floor route computation.
func BenchmarkRoute(b *testing.B) {
	t := officeTopoB(b)
	from := model.At("office", 0, "", geom.Pt(4, 4))
	to := model.At("office", 1, "", geom.Pt(36, 18))
	sm := topo.DefaultSpeedModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Route(from, to, topo.MinDistance, sm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSSIModel measures one path-loss evaluation with noise.
func BenchmarkRSSIModel(b *testing.B) {
	m := rssi.DefaultPathLossModel()
	d := &device.Device{Props: device.DefaultProperties(device.WiFi)}
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.At(12.5, 2, d, r)
	}
}

// BenchmarkWallCrossings measures a line-of-sight query on the office floor.
func BenchmarkWallCrossings(b *testing.B) {
	t := officeTopoB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Crossings(0, geom.Pt(2, 2), geom.Pt(38, 18))
	}
}

// BenchmarkRTreeSearch measures point queries against a packed R-tree.
func BenchmarkRTreeSearch(b *testing.B) {
	r := rng.New(3)
	items := make([]index.Item, 512)
	for i := range items {
		p := &model.Partition{
			ID:      "p",
			Polygon: geom.Rect(r.Range(0, 500), r.Range(0, 500), r.Range(0, 500)+5, r.Range(0, 500)+5),
		}
		items[i] = p
	}
	t := index.BulkLoad(items)
	var buf []index.Item
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = t.SearchPoint(geom.Pt(r.Range(0, 500), r.Range(0, 500)), buf[:0])
	}
}

// --- query-engine benchmarks over real pipeline output ---

// benchSamples generates one deterministic trajectory dataset (40 objects,
// 300 simulated seconds) shared by the query benchmarks.
func benchSamples(b *testing.B) []trajectory.Sample {
	b.Helper()
	t := officeTopoB(b)
	sp, err := object.NewSpawner(t, object.SpawnConfig{
		InitialCount: 40,
		MinLifespan:  300, MaxLifespan: 300,
		MaxSpeed: 1.6,
		Pattern:  object.DefaultPattern(),
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := trajectory.NewEngine(t, sp, trajectory.Config{
		Duration: 300, Tick: 0.25, SampleInterval: 1,
	}, rng.New(42))
	if err != nil {
		b.Fatal(err)
	}
	var samples []trajectory.Sample
	if _, err := eng.Run(func(s trajectory.Sample) { samples = append(samples, s) }); err != nil {
		b.Fatal(err)
	}
	return samples
}

// BenchmarkQueryIndexBuild measures building the spatio-temporal index from
// generated samples.
func BenchmarkQueryIndexBuild(b *testing.B) {
	samples := benchSamples(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = query.NewTrajectoryIndex(samples, query.DefaultOptions())
	}
}

// BenchmarkQueryRange measures one spatial-range × time-window query.
func BenchmarkQueryRange(b *testing.B) {
	ix := query.NewTrajectoryIndex(benchSamples(b), query.DefaultOptions())
	box := geom.BBox{Min: geom.Pt(2, 2), Max: geom.Pt(14, 10)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Range(0, box, 100, 160)
	}
}

// BenchmarkQueryKNN measures one 5-NN query at an instant with
// interpolation.
func BenchmarkQueryKNN(b *testing.B) {
	ix := query.NewTrajectoryIndex(benchSamples(b), query.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.KNN(0, geom.Pt(20, 10), 150, 5)
	}
}

// BenchmarkQueryDensity measures one per-partition snapshot-density query.
func BenchmarkQueryDensity(b *testing.B) {
	ix := query.NewTrajectoryIndex(benchSamples(b), query.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Density(150)
	}
}

// BenchmarkQueryContinuous measures streaming the full dataset through four
// standing range queries.
func BenchmarkQueryContinuous(b *testing.B) {
	samples := benchSamples(b)
	box := geom.BBox{Min: geom.Pt(2, 2), Max: geom.Pt(14, 10)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := query.NewContinuousEngine()
		for fl := 0; fl < 2; fl++ {
			eng.Subscribe(fl, box, func(query.Event) {})
			eng.Subscribe(fl, box.Expand(5), func(query.Event) {})
		}
		eng.FeedAll(samples)
	}
}

// BenchmarkTrajectoryEngine measures the movement simulation alone (20
// objects, 60 simulated seconds).
func BenchmarkTrajectoryEngine(b *testing.B) {
	t := officeTopoB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := object.NewSpawner(t, object.SpawnConfig{
			InitialCount: 20,
			MinLifespan:  60, MaxLifespan: 60,
			MaxSpeed: 1.6,
			Pattern:  object.DefaultPattern(),
		})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := trajectory.NewEngine(t, sp, trajectory.Config{
			Duration: 60, Tick: 0.25, SampleInterval: 1,
		}, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- VTB columnar store benchmarks (internal/colstore) ---
//
// The acceptance bar for the storage engine: VTB files at most half the
// size of the equivalent CSV, and time-window scans that skip blocks via
// zone maps instead of reading the whole file. The benchmarks fail (not
// just regress) if either property is lost.

// vtbBenchImage encodes the shared benchmark dataset once: VTB bytes (small
// blocks so pruning has something to skip), CSV bytes, and the sample count.
func vtbBenchImage(b *testing.B) ([]byte, []byte, int) {
	b.Helper()
	samples := benchSamples(b)
	var vtb bytes.Buffer
	w := colstore.NewTrajectoryWriterOptions(&vtb, colstore.Options{BlockSize: 1024})
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	var csv bytes.Buffer
	if err := storage.WriteTrajectoryCSV(&csv, samples); err != nil {
		b.Fatal(err)
	}
	return vtb.Bytes(), csv.Bytes(), len(samples)
}

// BenchmarkVTBWrite measures streaming encode throughput (rows/op reported
// as bytes via SetBytes on the CSV-equivalent payload is meaningless here,
// so it reports encoded output bytes per run instead).
func BenchmarkVTBWrite(b *testing.B) {
	samples := benchSamples(b)
	b.ReportAllocs()
	b.ResetTimer()
	var encoded int64
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := colstore.NewTrajectoryWriter(&buf)
		for _, s := range samples {
			if err := w.Write(s); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		encoded = int64(buf.Len())
	}
	b.ReportMetric(float64(encoded), "file-bytes")
}

// BenchmarkVTBSizeVsCSV writes the same dataset in both formats and fails
// unless the VTB file is at most 50% of the CSV size (it is typically
// 20-30%). The ratio lands in the benchmark output for CI artifacts.
func BenchmarkVTBSizeVsCSV(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vtb, csv, _ := vtbBenchImage(b)
		ratio := float64(len(vtb)) / float64(len(csv))
		if ratio > 0.5 {
			b.Fatalf("VTB file is %.0f%% of CSV (%d vs %d bytes), want <= 50%%",
				100*ratio, len(vtb), len(csv))
		}
		b.ReportMetric(100*ratio, "%csv-size")
	}
}

// BenchmarkVTBScanFull decodes every block of the benchmark file.
func BenchmarkVTBScanFull(b *testing.B) {
	vtb, _, n := vtbBenchImage(b)
	b.SetBytes(int64(len(vtb)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := colstore.NewTrajectoryReader(bytes.NewReader(vtb), int64(len(vtb)))
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		stats, err := r.Scan(colstore.Predicate{}, func(trajectory.Sample) { rows++ })
		if err != nil {
			b.Fatal(err)
		}
		if rows != n || stats.BlocksScanned != stats.BlocksTotal {
			b.Fatalf("full scan read %d rows, %d/%d blocks", rows, stats.BlocksScanned, stats.BlocksTotal)
		}
	}
}

// BenchmarkVTBScanPruned runs a 60-second time-window scan and fails unless
// the zone maps skipped blocks a full scan would have read.
func BenchmarkVTBScanPruned(b *testing.B) {
	vtb, _, _ := vtbBenchImage(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := colstore.NewTrajectoryReader(bytes.NewReader(vtb), int64(len(vtb)))
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		stats, err := r.Scan(colstore.TimeWindow(100, 160), func(s trajectory.Sample) {
			if s.T < 100 || s.T > 160 {
				b.Fatalf("scan leaked sample at t=%g", s.T)
			}
			rows++
		})
		if err != nil {
			b.Fatal(err)
		}
		if rows == 0 {
			b.Fatal("pruned scan matched nothing")
		}
		if stats.BlocksScanned >= stats.BlocksTotal {
			b.Fatalf("pruned scan read every block (%d/%d): zone maps are not pruning",
				stats.BlocksScanned, stats.BlocksTotal)
		}
		b.ReportMetric(float64(stats.BlocksScanned), "blocks-read")
		b.ReportMetric(float64(stats.BlocksPruned), "blocks-pruned")
	}
}

// BenchmarkPlanScanPruned runs the same 60-second time-window scan through
// the operator algebra (Scan + Filter compiled with predicate pushdown) and
// fails unless the pushed-down predicate still prunes blocks — the gate that
// the plan layer never regresses zone-map pruning relative to a hand-built
// predicate scan (BenchmarkVTBScanPruned above is the baseline).
func BenchmarkPlanScanPruned(b *testing.B) {
	vtb, _, _ := vtbBenchImage(b)
	dir := b.TempDir()
	path := filepath.Join(dir, "trajectory.vtb")
	if err := os.WriteFile(path, vtb, 0o644); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := plan.NewScan(plan.FileSource{Path: path}).
			Filter(plan.TimeBetween(100, 160)).
			Compile()
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for c.Next() {
			batch := c.Batch().Traj
			for j := 0; j < batch.Len(); j++ {
				if batch.T[j] < 100 || batch.T[j] > 160 {
					b.Fatalf("plan leaked sample at t=%g", batch.T[j])
				}
			}
			rows += batch.Len()
		}
		stats := c.Stats()
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
		if rows == 0 {
			b.Fatal("pruned plan scan matched nothing")
		}
		if !c.ScanPred().HasTime {
			b.Fatal("planner failed to push the time window into the scan")
		}
		if stats.BlocksScanned >= stats.BlocksTotal {
			b.Fatalf("plan scan read every block (%d/%d): pushdown stopped pruning",
				stats.BlocksScanned, stats.BlocksTotal)
		}
		b.ReportMetric(float64(stats.BlocksScanned), "blocks-read")
		b.ReportMetric(float64(stats.BlocksPruned), "blocks-pruned")
	}
}

// BenchmarkVTBScanParallel measures full-file decode throughput at several
// worker counts over the shared 12k-sample benchmark image, then gates the
// speedup: the p=8 sub-benchmark re-times both settings (minimum of several
// runs, which filters scheduler noise) and fails the benchmark if parallel
// decode is slower than sequential — the pool must never cost throughput.
// Output is byte-identical at every level (see colstore's equality tests);
// only wall clock may differ.
func BenchmarkVTBScanParallel(b *testing.B) {
	vtb, _, n := vtbBenchImage(b)
	r, err := colstore.NewTrajectoryReader(bytes.NewReader(vtb), int64(len(vtb)))
	if err != nil {
		b.Fatal(err)
	}
	scan := func(b *testing.B, p int) time.Duration {
		start := time.Now()
		rows := 0
		if _, err := r.ScanParallel(colstore.Predicate{}, p, func(trajectory.Sample) { rows++ }); err != nil {
			b.Fatal(err)
		}
		if rows != n {
			b.Fatalf("decoded %d rows, want %d", rows, n)
		}
		return time.Since(start)
	}
	minOver := func(b *testing.B, p, reps int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			if d := scan(b, p); d < best {
				best = d
			}
		}
		return best
	}
	for _, p := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(len(vtb)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scan(b, p)
			}
			if p == 8 {
				if runtime.GOMAXPROCS(0) < 2 {
					return // single-core host: nothing to gate
				}
				// The gate's comparison scans are bookkeeping, not the
				// measured workload.
				b.StopTimer()
				seq := minOver(b, 1, 7)
				par := minOver(b, 8, 7)
				b.ReportMetric(float64(seq)/float64(par), "speedup-vs-p1")
				if par > seq {
					b.Fatalf("parallel scan is slower than sequential: p=8 %v vs p=1 %v", par, seq)
				}
			}
		})
	}
}

// BenchmarkServeWarmVsCold is the acceptance gate for the serving daemon: a
// warm vitaserve range query must be at least 5x faster than the cold-start
// path vitaquery pays per invocation. Warm latency is the time for a real
// HTTP round trip to deliver the full JSON response body from a server whose
// footer, blocks and index are resident (what curl against a running daemon
// measures). Cold latency is the full local path — open the file, parse the
// footer, decode the surviving blocks sequentially, build the index, query —
// with process spawn not even counted, so the bar is conservative. Both
// sides are timed as the minimum over several runs on the shared 12k-sample
// dataset.
func BenchmarkServeWarmVsCold(b *testing.B) {
	vtb, _, _ := vtbBenchImage(b)
	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "trajectory.vtb"), vtb, 0o644); err != nil {
		b.Fatal(err)
	}
	req := serve.RangeRequest{
		Floor: 0,
		Box:   geom.BBox{Min: geom.Pt(2, 2), Max: geom.Pt(14, 10)},
		T0:    100, T1: 160,
	}

	ds, err := serve.Open(dir, serve.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	ts := httptest.NewServer(serve.NewServer(ds).Handler())
	defer ts.Close()
	client := &serve.Client{Base: ts.URL}
	warmURL := ts.URL + "/v1/range?floor=0&box=" + serve.FormatBox(req.Box) + "&t0=100&t1=160"

	// Correctness first: the served response must match local execution.
	warm, err := client.Range(req)
	if err != nil {
		b.Fatal(err)
	}
	if len(warm.Hits) == 0 {
		b.Fatal("warm range query matched nothing")
	}

	coldOnce := func() {
		cold, err := serve.Open(dir, serve.Config{CacheBytes: -1, IndexEntries: -1, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		resp, err := cold.Range(req)
		cold.Close()
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Hits) != len(warm.Hits) {
			b.Fatalf("cold query found %d hits, warm found %d", len(resp.Hits), len(warm.Hits))
		}
	}
	warmOnce := func() {
		res, err := http.Get(warmURL)
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if res.StatusCode != http.StatusOK || len(body) == 0 {
			b.Fatalf("warm request failed: HTTP %d, %d bytes", res.StatusCode, len(body))
		}
	}
	minOver := func(reps int, f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	warmOnce() // populate connection pool on top of the warm caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A warm round trip is ~100µs, so sampling its minimum widely is
		// cheap and filters scheduler noise out of the gated ratio.
		warmD := minOver(40, warmOnce)
		coldD := minOver(10, coldOnce)
		ratio := float64(coldD) / float64(warmD)
		b.ReportMetric(float64(warmD.Microseconds()), "warm-us")
		b.ReportMetric(float64(coldD.Microseconds()), "cold-us")
		b.ReportMetric(ratio, "cold/warm")
		if ratio < 5 {
			b.Fatalf("warm serving is only %.1fx faster than cold start (warm %v, cold %v), want >= 5x",
				ratio, warmD, coldD)
		}
	}
}

// BenchmarkColdStartQuery measures the end-to-end "file on disk to first
// range-query answer" path that motivated the format: parse/scan, build the
// index over the surviving samples, run one window query. VTB pushes the
// window into the block layer; CSV must parse everything first.
func BenchmarkColdStartQuery(b *testing.B) {
	vtb, csvBytes, _ := vtbBenchImage(b)
	box := geom.BBox{Min: geom.Pt(2, 2), Max: geom.Pt(14, 10)}
	pred := colstore.Predicate{HasTime: true, T0: 100, T1: 160, HasBox: true, Box: box}

	b.Run("csv", func(b *testing.B) {
		b.SetBytes(int64(len(csvBytes)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			samples, err := storage.ReadTrajectoryCSV(bytes.NewReader(csvBytes))
			if err != nil {
				b.Fatal(err)
			}
			ix := query.NewTrajectoryIndex(samples, query.DefaultOptions())
			_ = ix.Range(0, box, 100, 160)
		}
	})
	b.Run("vtb", func(b *testing.B) {
		b.SetBytes(int64(len(vtb)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := colstore.NewTrajectoryReader(bytes.NewReader(vtb), int64(len(vtb)))
			if err != nil {
				b.Fatal(err)
			}
			var samples []trajectory.Sample
			if _, err := r.Scan(pred, func(s trajectory.Sample) { samples = append(samples, s) }); err != nil {
				b.Fatal(err)
			}
			ix := query.NewTrajectoryIndex(samples, query.DefaultOptions())
			_ = ix.Range(0, box, 100, 160)
		}
	})
}

// vtbBenchFile persists the shared benchmark dataset as a VTB file on disk
// for the file-backed (mmap vs pread) benchmarks, returning the path and the
// row count.
func vtbBenchFile(b *testing.B, opts colstore.Options) (string, int) {
	b.Helper()
	samples := benchSamples(b)
	path := filepath.Join(b.TempDir(), "trajectory.vtb")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	w := colstore.NewTrajectoryWriterOptions(f, opts)
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path, len(samples)
}

// BenchmarkVTBScanMmapVsReaderAt is the acceptance gate for the zero-copy
// reader: a full scan of a memory-mapped file must not be slower than the
// same scan through io.ReaderAt preads. The file is written uncompressed so
// the comparison isolates the I/O path — raw-codec blocks decode straight
// out of the mapped page-cache region with zero copies, while the pread path
// must issue two syscalls and one payload copy per block. Both sides are
// timed as the minimum over several runs (page cache warm for both), with a
// 10% noise allowance on the gate.
func BenchmarkVTBScanMmapVsReaderAt(b *testing.B) {
	path, n := vtbBenchFile(b, colstore.Options{BlockSize: 1024, NoCompress: true})
	mm, err := colstore.OpenTrajectory(path)
	if err != nil {
		b.Fatal(err)
	}
	defer mm.Close()
	pr, err := colstore.OpenTrajectoryOptions(path, colstore.OpenOptions{DisableMmap: true})
	if err != nil {
		b.Fatal(err)
	}
	defer pr.Close()

	scan := func(r *colstore.TrajectoryReader) time.Duration {
		start := time.Now()
		rows := 0
		cur := r.Cursor(colstore.Predicate{})
		for cur.Next() {
			rows += cur.Batch().Len()
		}
		if err := cur.Close(); err != nil {
			b.Fatal(err)
		}
		if rows != n {
			b.Fatalf("scanned %d rows, want %d", rows, n)
		}
		return time.Since(start)
	}
	minOver := func(r *colstore.TrajectoryReader, reps int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			if d := scan(r); d < best {
				best = d
			}
		}
		return best
	}
	scan(mm) // warm the page cache and decode pools
	scan(pr)

	for _, side := range []struct {
		name string
		r    *colstore.TrajectoryReader
	}{{"mmap", mm}, {"readerat", pr}} {
		b.Run(side.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scan(side.r)
			}
			b.ReportMetric(float64(n), "rows/op")
		})
	}

	if !mm.Mmapped() {
		return // platform without mmap: nothing to gate
	}
	mmD := minOver(mm, 9)
	prD := minOver(pr, 9)
	b.ReportMetric(float64(prD)/float64(mmD), "readerat/mmap")
	if float64(mmD) > 1.1*float64(prD) {
		b.Fatalf("mmap scan is slower than ReaderAt: mmap %v vs readerat %v", mmD, prD)
	}
}

// BenchmarkVTBScanAllocs is the acceptance gate for the allocation-light
// scan pipeline: after one warm-up pass (which fills the scratch pool and
// the string-interning table), a full-file cursor scan must stay within a
// fixed allocation budget. Before the batch/pooling rework a scan of this
// file cost tens of thousands of allocations (one per decoded column slice,
// dictionary string, and flate reader); the budget fails the build if
// per-row or per-block-decode allocations ever creep back in.
//
// Three sub-benchmarks, three budgets: the raw (uncompressed) file proves
// the cursor pipeline itself is allocation-free — a small constant
// independent of rows and blocks — vsnap (the default codec) must match
// that same constant because its decoder works entirely inside pooled
// scratch, while the flate file additionally pays stdlib flate's internal
// per-stream Huffman table allocations (a handful per block, not poolable
// from outside the package), so its budget scales with block count and
// nothing else. BenchmarkVTBScanCompressedAllocs tightens the vsnap case
// to exactly zero.
func BenchmarkVTBScanAllocs(b *testing.B) {
	cases := []struct {
		name   string
		opts   colstore.Options
		budget func(blocks int) float64
	}{
		// Constant budget: cursor struct + pool/GC slack. ~12k rows in ~12
		// blocks, so anything O(rows) or O(blocks) blows through at once.
		{"raw", colstore.Options{BlockSize: 1024, Codec: colstore.CodecRaw},
			func(int) float64 { return 16 }},
		// Same constant budget as raw: vsnap decode reuses the pooled
		// scratch output, so compression must cost no allocations.
		{"vsnap", colstore.Options{BlockSize: 1024, Codec: colstore.CodecVSnap},
			func(int) float64 { return 16 }},
		// Per-block budget: flate's dynamic-Huffman decode allocates its
		// link tables per stream (~7 allocs/block); everything else must
		// stay flat.
		{"flate", colstore.Options{BlockSize: 1024, Codec: colstore.CodecFlate},
			func(blocks int) float64 { return 16 + 10*float64(blocks) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			path, n := vtbBenchFile(b, tc.opts)
			r, err := colstore.OpenTrajectory(path)
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			blocks := len(r.Blocks())
			scanOnce := func() {
				rows := 0
				cur := r.Cursor(colstore.Predicate{})
				for cur.Next() {
					rows += cur.Batch().Len()
				}
				if err := cur.Close(); err != nil {
					b.Fatal(err)
				}
				if rows != n {
					b.Fatalf("scanned %d rows, want %d", rows, n)
				}
			}
			scanOnce() // steady state: pools filled, strings interned
			allocs := testing.AllocsPerRun(5, scanOnce)
			budget := tc.budget(blocks)
			if allocs > budget {
				b.Fatalf("steady-state scan costs %.0f allocs over %d blocks, budget %.0f",
					allocs, blocks, budget)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scanOnce()
			}
			// Reported after the loop: ResetTimer discards earlier metrics.
			b.ReportMetric(allocs, "allocs/scan")
			b.ReportMetric(allocs/float64(n), "allocs/row")
		})
	}
}

// BenchmarkVTBScanCompressedAllocs is the acceptance gate for the vsnap
// codec's headline property: a steady-state cursor scan of a
// vsnap-compressed file costs ZERO allocations — not a budget, an exact
// zero, the same figure the uncompressed raw path achieves. The decoder
// writes into the pooled scratch buffer and keeps no per-block state, so
// once the pool is warm nothing on the block-decode path may touch the
// heap. Any regression (a forgotten buffer reuse, an error path that
// formats eagerly, a new per-block slice) fails the build here before it
// can show up as a latency cliff in serving.
func BenchmarkVTBScanCompressedAllocs(b *testing.B) {
	path, n := vtbBenchFile(b, colstore.Options{BlockSize: 1024, Codec: colstore.CodecVSnap})
	r, err := colstore.OpenTrajectory(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	scanOnce := func() {
		rows := 0
		cur := r.Cursor(colstore.Predicate{})
		for cur.Next() {
			rows += cur.Batch().Len()
		}
		if err := cur.Close(); err != nil {
			b.Fatal(err)
		}
		if rows != n {
			b.Fatalf("scanned %d rows, want %d", rows, n)
		}
	}
	scanOnce() // fill the scratch pool and interning table
	allocs := testing.AllocsPerRun(10, scanOnce)
	if allocs != 0 {
		b.Fatalf("steady-state vsnap cursor scan costs %.0f allocs, want exactly 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanOnce()
	}
	b.ReportMetric(allocs, "allocs/scan") // after the loop: ResetTimer discards earlier metrics
}

// benchReaderSource serves plan scans from an already-open reader, so a
// benchmark measures the per-query cost (compile + cursor + drain) without
// re-paying file open and footer parse on every iteration.
type benchReaderSource struct{ r *colstore.TrajectoryReader }

func (s benchReaderSource) Open(pred colstore.Predicate) (plan.TrajectoryCursor, error) {
	return s.r.Cursor(pred), nil
}

// BenchmarkPlanTraceOverhead is the pay-for-what-you-use gate for
// per-operator query tracing: a plan compiled WITHOUT tracing must cost the
// same small constant number of steady-state allocations it cost before
// tracing existed — no spans, no timing wrappers, nothing O(rows) or
// O(blocks). Opting in (CompileTraced) may only add a per-operator constant
// on top: one span and one wrapper per operator, never per-row or per-block
// work. Both gates fail the build on regression.
func BenchmarkPlanTraceOverhead(b *testing.B) {
	path, _ := vtbBenchFile(b, colstore.Options{BlockSize: 1024, NoCompress: true})
	r, err := colstore.OpenTrajectory(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	src := benchReaderSource{r: r}
	scan := func(traced bool) {
		p := plan.NewScan(src).Filter(plan.TimeBetween(100, 160))
		var c *plan.Compiled
		var err error
		if traced {
			c, err = p.CompileTraced()
		} else {
			c, err = p.Compile()
		}
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for c.Next() {
			rows += c.Batch().Traj.Len()
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
		if rows == 0 {
			b.Fatal("plan scan matched nothing")
		}
		if traced == (c.Trace() == nil) {
			b.Fatal("trace presence does not match the compile mode")
		}
	}
	scan(false) // steady state: scratch pools filled, strings interned
	scan(true)
	untraced := testing.AllocsPerRun(10, func() { scan(false) })
	traced := testing.AllocsPerRun(10, func() { scan(true) })
	// The untraced budget is the plan-scan constant (compile nodes + cursor +
	// batch bookkeeping) with GC slack; an O(rows) or O(blocks) regression
	// overshoots it immediately.
	const untracedBudget = 64
	if untraced > untracedBudget {
		b.Fatalf("untraced plan scan costs %.0f allocs, budget %d — tracing is no longer free when off",
			untraced, untracedBudget)
	}
	if delta := traced - untraced; delta > 32 {
		b.Fatalf("tracing adds %.0f allocs per query; want a small per-operator constant", delta)
	}
	b.ReportMetric(untraced, "allocs/untraced")
	b.ReportMetric(traced-untraced, "allocs/trace-delta")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan(false)
	}
}
