// Package vita is a versatile toolkit for generating indoor mobility data
// for real-world buildings — a Go reproduction of the system demonstrated in
// "Vita: A Versatile Toolkit for Generating Indoor Mobility Data for
// Real-World Buildings" (Li et al., PVLDB 9(13), 2016).
//
// The toolkit generates data in a three-layer pipeline:
//
//   - The Infrastructure Layer parses digital building information (DBI)
//     files in an IFC STEP subset into a multi-floor indoor environment and
//     deploys configurable positioning devices (Wi-Fi, Bluetooth, RFID) with
//     coverage or check-point deployment models.
//   - The Moving Object Layer generates moving objects (uniform or
//     crowd-outliers initial distribution, bounded lifespans, Poisson
//     arrivals, destination/random-way intentions, min-distance/min-time
//     routing, walk-stay behavior) and their ground-truth raw trajectories
//     at a configurable sampling frequency.
//   - The Positioning Layer synthesizes raw RSSI measurements with a
//     log-distance path loss model (wall-crossing obstacle noise + Gaussian
//     fluctuation) and derives positioning data by trilateration,
//     fingerprinting (kNN or naive Bayes) or proximity.
//
// Quick start:
//
//	cfg := vita.DefaultConfig()
//	ds, err := vita.Generate(cfg)
//	if err != nil { ... }
//	fmt.Println(ds.Trajectories.Len(), "ground-truth samples")
//	fmt.Println(ds.Estimates.Len(), "positioning estimates")
//
// See the examples directory for full scenarios.
package vita

import (
	"context"
	"io"

	"vita/internal/colstore"
	"vita/internal/core"
	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/load"
	"vita/internal/obs"
	"vita/internal/plan"
	"vita/internal/positioning"
	"vita/internal/query"
	"vita/internal/seglog"
	"vita/internal/serve"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// Config is the full generation configuration; see core.Config for field
// documentation. It loads from JSON via LoadConfig.
type Config = core.Config

// Sub-configurations of Config.
type (
	// BuildingConfig selects the DBI source and processing options.
	BuildingConfig = core.BuildingConfig
	// DeviceConfig deploys one batch of positioning devices.
	DeviceConfig = core.DeviceConfig
	// ObjectConfig configures the moving-object population.
	ObjectConfig = core.ObjectConfig
	// TrajectoryConfig configures ground-truth generation.
	TrajectoryConfig = core.TrajectoryConfig
	// RSSIConfig configures the path loss model and RSSI sampling.
	RSSIConfig = core.RSSIConfig
	// PositioningConfig selects and tunes the positioning method.
	PositioningConfig = core.PositioningConfig
)

// Dataset bundles everything a run produced: the environment, devices, raw
// trajectories (ground truth), raw RSSI, and positioning data.
type Dataset = core.Dataset

// Sample is one raw trajectory record (o_id, loc, t).
type Sample = trajectory.Sample

// Estimate is one deterministic positioning record (o_id, loc, t).
type Estimate = positioning.Estimate

// ProbEstimate is one probabilistic positioning record
// (o_id, {(loc_i, prob_i)}, t).
type ProbEstimate = positioning.ProbEstimate

// ProximityRecord states that an object was detected by a device over
// [ts, te].
type ProximityRecord = positioning.ProximityRecord

// ErrorStats summarizes positioning error against ground truth.
type ErrorStats = core.ErrorStats

// DefaultConfig returns a runnable configuration: the synthetic two-floor
// office, Wi-Fi deployment, 40 objects for ten simulated minutes,
// fingerprinting with kNN.
func DefaultConfig() Config { return core.DefaultConfig() }

// LoadConfig reads a JSON configuration.
func LoadConfig(r io.Reader) (Config, error) { return core.LoadConfig(r) }

// Generate runs the full three-layer pipeline for the configuration.
func Generate(cfg Config) (*Dataset, error) {
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

// Sink receives a run's data products as they are produced; see
// core.Sink for the streaming contract. NewDirSink is the stock
// implementation.
type Sink = core.Sink

// DirSink streams a run's outputs into a directory as trajectory.<ext> and
// rssi.<ext> (CSV or VTB) plus the derived CSV tables.
type DirSink = core.DirSink

// NewDirSink creates dir if needed and opens streaming writers for the bulk
// outputs in the given format (StorageCSV or StorageVTB).
func NewDirSink(dir string, format StorageFormat) (*DirSink, error) {
	return core.NewDirSink(dir, format)
}

// GenerateTo runs the pipeline like Generate while streaming the produced
// data into sink record by record (trajectory and RSSI rows arrive in global
// time order, so arbitrarily large runs persist without double buffering).
// The caller owns sink and must Close it after GenerateTo returns.
func GenerateTo(cfg Config, sink Sink) (*Dataset, error) {
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	return p.RunTo(sink)
}

// Live segmented datasets (internal/seglog): a dataset as an append-able,
// compacting log of VTB segment files under a crash-safe manifest, so
// generation can stream into it while a query daemon serves it.

// SegmentLog is an on-disk log of VTB segments with a manifest; see
// seglog.Log for the single-mutator/many-readers contract.
type SegmentLog = seglog.Log

// SegmentManifest is a point-in-time snapshot of a log's live segments.
type SegmentManifest = seglog.Manifest

// SegmentMeta describes one live segment: identity, row count, time span.
type SegmentMeta = seglog.SegmentMeta

// SegmentWriterOptions tunes segment roll-over (byte/row thresholds, block
// encoding).
type SegmentWriterOptions = seglog.WriterOptions

// SegmentCompactor merges a log's accumulated segments into one re-blocked
// in global order; see seglog.Compactor.
type SegmentCompactor = seglog.Compactor

// SegmentCompactorOptions tunes compaction thresholds.
type SegmentCompactorOptions = seglog.CompactorOptions

// OpenSegmentLog opens an existing segment log directory for reading or
// appending.
func OpenSegmentLog(dir string) (*SegmentLog, error) { return seglog.Open(dir) }

// NewSegmentCompactor returns a compactor over an opened log.
func NewSegmentCompactor(l *SegmentLog, opts SegmentCompactorOptions) *SegmentCompactor {
	return seglog.NewCompactor(l, opts)
}

// SegmentedDirSink streams a run's bulk outputs into live segment logs
// (dir/seglog/trajectory and dir/seglog/rssi) instead of flat files, so the
// dataset is queryable while generation is still running.
type SegmentedDirSink = core.SegmentedDirSink

// NewSegmentedDirSink creates (or resumes) the segment logs under dir and
// opens rolling writers for the bulk outputs.
func NewSegmentedDirSink(dir string, opts SegmentWriterOptions) (*SegmentedDirSink, error) {
	return core.NewSegmentedDirSink(dir, opts)
}

// EvaluateEstimates compares positioning estimates against the preserved
// ground-truth trajectories, returning error statistics and the number of
// floor mismatches.
func EvaluateEstimates(truth *storage.TrajectoryStore, ests []Estimate) (ErrorStats, int) {
	return core.EvaluateEstimates(truth, ests)
}

// PartitionHitRate returns the fraction of estimates whose partition matches
// the ground truth (symbolic accuracy).
func PartitionHitRate(truth *storage.TrajectoryStore, ests []Estimate) float64 {
	return core.PartitionHitRate(truth, ests)
}

// OfficeIFC returns the synthetic two-floor office building as IFC text —
// handy for writing a DBI file to disk and running with
// Building.Source = "file:...".
func OfficeIFC() string { return ifc.OfficeIFC() }

// MallIFC returns the synthetic two-floor mall as IFC text.
func MallIFC() string { return ifc.MallIFC() }

// ClinicIFC returns the synthetic clinic as IFC text.
func ClinicIFC() string { return ifc.ClinicIFC() }

// WriteTrajectoryCSV persists raw trajectory samples as CSV.
func WriteTrajectoryCSV(w io.Writer, samples []Sample) error {
	return storage.WriteTrajectoryCSV(w, samples)
}

// ReadTrajectoryCSV parses CSV written by WriteTrajectoryCSV — the input to
// the query engine when serving a previously generated dataset.
func ReadTrajectoryCSV(r io.Reader) ([]Sample, error) {
	return storage.ReadTrajectoryCSV(r)
}

// --- columnar binary trajectory store (internal/colstore) ---

// StorageFormat identifies an on-disk bulk encoding: the paper's CSV records
// (4-decimal quantization) or the lossless block-columnar VTB binary.
type StorageFormat = storage.Format

// Supported storage formats.
const (
	StorageCSV = storage.FormatCSV
	StorageVTB = storage.FormatVTB
)

// ScanPredicate restricts a trajectory-file scan (time window, floor, box,
// object); the zero value matches everything. On VTB files each constraint
// also prunes whole blocks via zone maps before any row is decoded.
type ScanPredicate = colstore.Predicate

// ScanStats reports how much of a VTB file a scan actually read.
type ScanStats = colstore.ScanStats

// DetectStorageFormat sniffs a file's format by magic bytes (extension is
// ignored), so CSV and VTB datasets interoperate transparently.
func DetectStorageFormat(path string) (StorageFormat, error) {
	return storage.DetectFormat(path)
}

// ReadTrajectoryFile loads a trajectory file in either storage format,
// detected by content, and reports which format it found.
func ReadTrajectoryFile(path string) ([]Sample, StorageFormat, error) {
	return storage.ReadTrajectoryFile(path)
}

// ScanTrajectoryFile streams the samples matching pred from a trajectory
// file in either storage format. VTB scans push the predicate into the
// block layer (zone-map pruning); CSV degrades to parse-and-filter.
func ScanTrajectoryFile(path string, pred ScanPredicate, emit func(Sample)) (ScanStats, StorageFormat, error) {
	return storage.ScanTrajectoryFile(path, pred, emit)
}

// ScanTrajectoryFileParallel is ScanTrajectoryFile with block decode spread
// over a worker pool for VTB files (parallelism 0 = GOMAXPROCS, 1 =
// sequential). Emitted rows and their order are identical at every
// parallelism level.
func ScanTrajectoryFileParallel(path string, pred ScanPredicate, parallelism int, emit func(Sample)) (ScanStats, StorageFormat, error) {
	return storage.ScanTrajectoryFileParallel(path, pred, parallelism, emit)
}

// TrajectoryBatch is one block's worth of decoded samples in column form —
// what a batch cursor yields. Iterate the column slices directly or view
// single rows with Row.
type TrajectoryBatch = colstore.TrajectoryBatch

// TrajectoryCursor pulls decoded column batches from a trajectory file —
// the allocation-light alternative to per-row callbacks for huge scans.
// Rows, order, and stats match ScanTrajectoryFile with the same predicate.
type TrajectoryCursor = storage.TrajectoryCursor

// OpenTrajectoryCursor opens a batch cursor over a trajectory file in
// either storage format (detected by magic bytes). VTB files are
// memory-mapped where the platform allows, so block decode reads straight
// from the OS page cache; scans run in O(one block) memory:
//
//	cur, _, err := vita.OpenTrajectoryCursor(path, vita.ScanPredicate{})
//	if err != nil { ... }
//	defer cur.Close()
//	for cur.Next() {
//		b := cur.Batch()
//		... b.T, b.X, b.Y, or b.Row(i) ...
//	}
//	if err := cur.Err(); err != nil { ... }
func OpenTrajectoryCursor(path string, pred ScanPredicate) (TrajectoryCursor, StorageFormat, error) {
	return storage.OpenTrajectoryCursor(path, pred)
}

// WriteTrajectoryVTB persists samples in the VTB columnar format —
// lossless, block-compressed, and zone-map indexed for pruned scans.
func WriteTrajectoryVTB(w io.Writer, samples []Sample) error {
	tw := colstore.NewTrajectoryWriter(w)
	for _, s := range samples {
		if err := tw.Write(s); err != nil {
			return err
		}
	}
	return tw.Close()
}

// WriteEstimateCSV persists positioning estimates as CSV.
func WriteEstimateCSV(w io.Writer, ests []Estimate) error {
	return storage.WriteEstimateCSV(w, ests)
}

// WriteProximityCSV persists proximity records as CSV.
func WriteProximityCSV(w io.Writer, recs []ProximityRecord) error {
	return storage.WriteProximityCSV(w, recs)
}

// --- spatio-temporal query engine (internal/query) ---

// TrajectoryIndex answers spatio-temporal queries (range × time window,
// kNN-at-instant, snapshot density, trajectory retrieval) over generated
// trajectory samples. Build with NewTrajectoryIndex.
type TrajectoryIndex = query.TrajectoryIndex

// QueryOptions tunes the query index layout (time-bucket width,
// interpolation gap).
type QueryOptions = query.Options

// Neighbor is one kNN result.
type Neighbor = query.Neighbor

// ContinuousEngine evaluates standing range queries over streamed samples.
type ContinuousEngine = query.ContinuousEngine

// QueryEvent is one continuous-query notification (enter/move/exit).
type QueryEvent = query.Event

// Subscription is one standing range query registered with a
// ContinuousEngine.
type Subscription = query.Subscription

// Continuous-query transition kinds.
const (
	QueryEnter = query.Enter
	QueryMove  = query.Move
	QueryExit  = query.Exit
)

// DefaultQueryOptions returns the default query-index layout.
func DefaultQueryOptions() QueryOptions { return query.DefaultOptions() }

// NewTrajectoryIndex builds a spatio-temporal index over samples — either a
// fresh Dataset's ds.Trajectories.All() or samples loaded back from CSV with
// ReadTrajectoryCSV.
func NewTrajectoryIndex(samples []Sample, opts QueryOptions) *TrajectoryIndex {
	return query.NewTrajectoryIndex(samples, opts)
}

// NewContinuousEngine returns an engine for standing range queries; feed it
// samples as they stream in.
func NewContinuousEngine() *ContinuousEngine { return query.NewContinuousEngine() }

// --- query-serving daemon (internal/serve, cmd/vitaserve) ---

// QueryDataset is an opened trajectory dataset ready to answer the query
// operators repeatedly without cold-start: the VTB footer stays resident,
// hot decoded blocks live in a size-bounded LRU cache, and block decode runs
// on a worker pool. Safe for concurrent use.
type QueryDataset = serve.Dataset

// QueryServeConfig tunes an opened QueryDataset (index layout, decode
// parallelism, cache budgets). The zero value selects the defaults.
type QueryServeConfig = serve.Config

// QueryServer exposes a QueryDataset's operators over HTTP with JSON
// responses — the daemon behind cmd/vitaserve.
type QueryServer = serve.Server

// QueryClient executes the query operators against a running vitaserve
// daemon, returning the same response types as local QueryDataset calls.
type QueryClient = serve.Client

// Per-operator request and response types shared by QueryDataset,
// QueryServer and QueryClient. Each response renders the CLI text form via
// WriteText.
type (
	RangeRequest    = serve.RangeRequest
	RangeResponse   = serve.RangeResponse
	KNNRequest      = serve.KNNRequest
	KNNResponse     = serve.KNNResponse
	DensityRequest  = serve.DensityRequest
	DensityResponse = serve.DensityResponse
	TrajRequest     = serve.TrajRequest
	TrajResponse    = serve.TrajResponse
	DwellRequest    = serve.DwellRequest
	DwellRoom       = serve.DwellRoom
	DwellResponse   = serve.DwellResponse
	InfoResponse    = serve.InfoResponse
)

// OpenQueryDataset opens the trajectory data in dir for serving: a live
// segment log (dir itself or dir/seglog/trajectory) takes priority, then
// trajectory.vtb, then trajectory.csv (detected by magic bytes). Segmented
// datasets refresh as their manifest advances; see QueryServeConfig's
// WatchInterval.
func OpenQueryDataset(dir string, cfg QueryServeConfig) (*QueryDataset, error) {
	return serve.Open(dir, cfg)
}

// NewQueryServer wraps an opened dataset in an HTTP query server; see
// cmd/vitaserve for the endpoint catalogue.
func NewQueryServer(ds *QueryDataset) *QueryServer { return serve.NewServer(ds) }

// --- observability (internal/obs) ---

// QueryServerOptions tunes a query server's observability: the slow-query
// log threshold, the metrics registry to expose on /metricsz, and the
// structured logger receiving request/error/slow-query lines. The zero
// value matches NewQueryServer (default registry, default logger, slow-query
// log off).
type QueryServerOptions = serve.ServerOptions

// NewQueryServerWith is NewQueryServer with explicit observability options.
func NewQueryServerWith(ds *QueryDataset, opts QueryServerOptions) *QueryServer {
	return serve.NewServerWith(ds, opts)
}

// QueryClientOptions tunes the HTTP transport behind a QueryClient (request
// timeout, per-host connection pool) — the knobs a high-concurrency load
// generator needs.
type QueryClientOptions = serve.ClientOptions

// NewQueryClient returns a QueryClient for the daemon at base with a
// dedicated transport tuned by opts.
func NewQueryClient(base string, opts QueryClientOptions) *QueryClient {
	return serve.NewClient(base, opts)
}

// PprofOptions tunes the block/mutex profiling rates a QueryServer applies
// when mounting the pprof endpoints.
type PprofOptions = serve.PprofOptions

// --- load-testing harness (internal/load, cmd/vitaload) ---

// LoadQuerier is anything the load harness can replay against: a local
// QueryDataset or a QueryClient speaking to a live daemon.
type LoadQuerier = load.Querier

// LoadMix is a weighted query mix for the load harness.
type LoadMix = load.Mix

// LoadOptions configures one load run: open/closed loop, rate or
// concurrency, duration, mix, seed, optional /metricsz scrape delta.
type LoadOptions = load.Options

// LoadReport is the machine-readable result of one load run: per-endpoint
// throughput, error counts, latency quantiles, and the server-side metrics
// delta.
type LoadReport = load.Report

// LoadProgress is one live snapshot of a running load test.
type LoadProgress = load.Progress

// Load-harness driving modes.
const (
	LoadModeOpen   = load.ModeOpen
	LoadModeClosed = load.ModeClosed
)

// DefaultLoadMix returns the stock interactive-monitoring query mix.
func DefaultLoadMix() LoadMix { return load.DefaultMix() }

// ParseLoadMix parses "range=40,knn=25,traj=20" into a LoadMix.
func ParseLoadMix(s string) (LoadMix, error) { return load.ParseMix(s) }

// RunLoad executes one load test against q (see cmd/vitaload for the CLI
// form) and blocks until it completes or ctx is cancelled.
func RunLoad(ctx context.Context, q LoadQuerier, opts LoadOptions) (*LoadReport, error) {
	return load.Run(ctx, q, opts)
}

// QueryTrace is one node of a per-operator execution trace — the operator
// name, batches/rows that flowed through it, inclusive wall time, scan
// pruning stats, and children. Responses carry one when the request asked
// for tracing (Trace field on the request, ?trace=1 over HTTP).
type QueryTrace = obs.Span

// MetricsRegistry is a set of named counters, gauges, and histograms
// rendered in Prometheus text exposition format via WritePrometheus.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry (useful for tests and for
// hosting several servers in one process without shared series).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetrics returns the process-wide registry, where package-level
// instrumentation (segment-log writers and compactors) reports.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// VersionInfo identifies the running build: version and commit (stamped
// via `-ldflags "-X vita/internal/obs.Version=... -X
// vita/internal/obs.Commit=..."`, with the module VCS revision as
// fallback) plus the Go toolchain version.
type VersionInfo = obs.BuildInfo

// Version reports the running build's identity.
func Version() VersionInfo { return obs.Build() }

// --- vectorized operator algebra (internal/plan) ---
//
// The algebra composes relational operators over trajectory column batches:
// build a Plan fluently from NewPlanScan, Compile it, and drain the result.
// The planner pushes structured filter predicates into the scan (zone-map
// block pruning on VTB files) and fuses filter+project into one pass. The
// serve operators execute as plans over this layer; docs/ARCHITECTURE.md has
// the full tour, and examples/algebra shows a custom analytic end to end.

// QueryPlan is a logical operator tree; chain Filter/Project/TimeBucket/
// Derive/Aggregate/OrderBy/Limit/Join and Compile to execute.
type QueryPlan = plan.Plan

// CompiledPlan is an executable plan; drive it with Next/Batch or hand it to
// CollectPlanRows / CollectPlanSamples.
type CompiledPlan = plan.Compiled

// PlanPred is one filter predicate (see TimeBetween, OnFloor, InBox, ObjEq,
// Where).
type PlanPred = plan.Pred

// PlanCol names one trajectory column in projections, group-bys, sorts and
// join keys.
type PlanCol = plan.Col

// Trajectory columns, plus the plan-computed ColVal value column.
const (
	ColObjID     = plan.ColObjID
	ColBuilding  = plan.ColBuilding
	ColFloor     = plan.ColFloor
	ColPartition = plan.ColPartition
	ColX         = plan.ColX
	ColY         = plan.ColY
	ColT         = plan.ColT
	ColVal       = plan.ColVal
)

// PlanBatch is one vector of rows flowing between plan operators.
type PlanBatch = plan.Batch

// PlanRow is one materialized output row (sample + Val column).
type PlanRow = plan.Row

// PlanAgg is one aggregate in an Aggregate node (see PlanCount, PlanSum,
// PlanMin, PlanMax, PlanAvg).
type PlanAgg = plan.AggSpec

// PlanSortKey is one OrderBy key (see Asc, Desc).
type PlanSortKey = plan.SortKey

// PlanDeriveFunc computes the Val column for a batch in a Derive node.
type PlanDeriveFunc = plan.DeriveFunc

// PlanSource supplies a plan's scan leaf with a cursor honoring the pushed
// predicate (see NewPlanFileSource and plan.SliceSource).
type PlanSource = plan.Source

// NewPlanScan starts a plan at a source.
func NewPlanScan(src PlanSource) *QueryPlan { return plan.NewScan(src) }

// NewPlanFileSource scans a trajectory file (CSV or VTB, detected by magic
// bytes) as a plan leaf; on VTB the pushed predicate prunes blocks.
func NewPlanFileSource(path string) PlanSource { return plan.FileSource{Path: path} }

// NewPlanSliceSource serves in-memory samples as a plan leaf.
func NewPlanSliceSource(samples []Sample) PlanSource { return plan.SliceSource{Samples: samples} }

// Plan filter predicates. The structured kinds push down into scan pruning;
// Where always runs as a residual filter.
func TimeBetween(t0, t1 float64) PlanPred { return plan.TimeBetween(t0, t1) }
func OnFloor(floor int) PlanPred          { return plan.OnFloor(floor) }
func InBox(box geom.BBox) PlanPred        { return plan.InBox(box) }
func ObjEq(obj int) PlanPred              { return plan.ObjEq(obj) }
func Where(fn func(Sample) bool) PlanPred { return plan.Where(fn) }

// GroupBy is sugar for an Aggregate group-by column list.
func GroupBy(cols ...PlanCol) []PlanCol { return plan.By(cols...) }

// Plan aggregates. PlanCount counts group rows into dst; the others reduce
// src into dst.
func PlanCount(dst PlanCol) PlanAgg    { return plan.CountInto(dst) }
func PlanSum(src, dst PlanCol) PlanAgg { return plan.Sum(src, dst) }
func PlanMin(src, dst PlanCol) PlanAgg { return plan.Min(src, dst) }
func PlanMax(src, dst PlanCol) PlanAgg { return plan.Max(src, dst) }
func PlanAvg(src, dst PlanCol) PlanAgg { return plan.Avg(src, dst) }

// Sort-key constructors for OrderBy.
func Asc(c PlanCol) PlanSortKey  { return plan.Asc(c) }
func Desc(c PlanCol) PlanSortKey { return plan.Desc(c) }

// DwellGaps returns a Derive function attributing each inter-sample gap (up
// to maxGap seconds) to the partition the object stayed in — the core of the
// /v1/dwell operator. Input must be ordered by (object, time).
func DwellGaps(maxGap float64) PlanDeriveFunc { return plan.DwellGaps(maxGap) }

// CollectPlanRows drains a compiled plan into materialized rows and closes
// it.
func CollectPlanRows(c *CompiledPlan) ([]PlanRow, error) { return plan.CollectRows(c) }

// CollectPlanSamples drains a compiled plan into samples (dropping the Val
// column) and closes it.
func CollectPlanSamples(c *CompiledPlan) ([]Sample, error) { return plan.CollectSamples(c) }
