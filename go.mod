module vita

go 1.24
