package main

import (
	"bytes"
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func TestParseResultLines(t *testing.T) {
	doc, err := parse(strings.NewReader(`goos: linux
goarch: amd64
cpu: Fake CPU @ 2.00GHz
BenchmarkScan-8   	    1000	   1234.5 ns/op	      64 B/op	       2 allocs/op
BenchmarkKNN/k=5-8	     500	   2000 ns/op
PASS
ok  	vita/internal/query	1.0s
`), &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" || doc.CPU == "" {
		t.Errorf("envelope: %+v", doc)
	}
	scan, ok := doc.Benchmarks["BenchmarkScan"]
	if !ok || scan.NsPerOp != 1234.5 || scan.BytesPerOp == nil || *scan.BytesPerOp != 64 {
		t.Errorf("BenchmarkScan: %+v (ok=%v)", scan, ok)
	}
	if _, ok := doc.Benchmarks["BenchmarkKNN/k=5"]; !ok {
		t.Errorf("sub-benchmark key missing: %v", doc.Benchmarks)
	}
}

func TestCompareDocs(t *testing.T) {
	old := &Doc{Benchmarks: map[string]Result{
		"BenchmarkFast":   {NsPerOp: 100, BytesPerOp: i64(64), AllocsPerOp: i64(2)},
		"BenchmarkSteady": {NsPerOp: 1000},
		"BenchmarkGone":   {NsPerOp: 50},
	}}
	cur := &Doc{Benchmarks: map[string]Result{
		"BenchmarkFast":   {NsPerOp: 150, BytesPerOp: i64(80), AllocsPerOp: i64(2)}, // +50%
		"BenchmarkSteady": {NsPerOp: 1050},                                          // +5%
		"BenchmarkNew":    {NsPerOp: 10},
	}}

	var buf bytes.Buffer
	regressed := compareDocs(&buf, old, cur, 10)
	if len(regressed) != 1 || regressed[0] != "BenchmarkFast" {
		t.Fatalf("regressed = %v, want [BenchmarkFast]", regressed)
	}
	out := buf.String()
	for _, want := range []string{"BenchmarkFast", "+50.0%", "BenchmarkSteady", "+5.0%", "gone", "new", "+16", " !"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}

	// A generous threshold passes everything; only-one-side benchmarks
	// never fail the gate.
	if r := compareDocs(&bytes.Buffer{}, old, cur, 60); len(r) != 0 {
		t.Errorf("threshold 60%% still flagged %v", r)
	}
	// An improvement is never a regression, whatever the threshold.
	better := &Doc{Benchmarks: map[string]Result{"BenchmarkFast": {NsPerOp: 10}}}
	if r := compareDocs(&bytes.Buffer{}, old, better, 0.0001); len(r) != 0 {
		t.Errorf("improvement flagged as regression: %v", r)
	}
}
