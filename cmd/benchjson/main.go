// Command benchjson converts `go test -bench` output into a machine-readable
// JSON document, so CI can archive benchmark results as an artifact and later
// runs (or humans with jq) can diff them without re-parsing Go's text format:
//
//	go test -bench . -benchmem ./internal/... | benchjson -o BENCH.json
//	benchjson -o - < bench.txt     # write JSON to stdout
//
// Every benchmark result line becomes one entry keyed by the benchmark's name
// with the -cpu suffix stripped (Benchmark prefix kept, so keys match the
// source), carrying iterations, ns/op, and — when the run used -benchmem —
// B/op and allocs/op. Header lines (goos, goarch, cpu) are captured into the
// envelope. Non-benchmark lines pass through untouched to stderr, so piping a
// test run through benchjson loses nothing.
//
// Compare mode turns two archived documents into a regression gate:
//
//	benchjson -compare old.json -o new.json [-threshold 15]
//
// prints a per-benchmark delta table (ns/op, B/op, allocs/op) of -o against
// the baseline and exits 2 when any benchmark's ns/op regressed by more than
// -threshold percent — CI fails the build on a real slowdown but tolerates
// noise below the threshold. Benchmarks present on only one side are listed
// but never fail the gate (renames and new benchmarks are not regressions).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"b_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Doc is the JSON envelope benchjson writes.
type Doc struct {
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	out := flag.String("o", "BENCH.json", "output file (- = stdout); in -compare mode, the new document to compare")
	compare := flag.String("compare", "", "baseline BENCH.json: compare -o against it instead of parsing stdin")
	threshold := flag.Float64("threshold", 10, "percent ns/op regression tolerated per benchmark in -compare mode")
	flag.Parse()

	if *compare != "" {
		old, err := readDoc(*compare)
		if err != nil {
			return 1, err
		}
		cur, err := readDoc(*out)
		if err != nil {
			return 1, err
		}
		regressed := compareDocs(os.Stdout, old, cur, *threshold)
		if len(regressed) > 0 {
			return 2, fmt.Errorf("%d benchmark(s) regressed past %g%%: %s",
				len(regressed), *threshold, strings.Join(regressed, ", "))
		}
		return 0, nil
	}

	doc, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		return 1, err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return 1, err
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return 1, err
		}
		return 0, nil
	}
	return 0, os.WriteFile(*out, data, 0o644)
}

// readDoc loads an archived benchmark document.
func readDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

// compareDocs prints the delta table of cur against old and returns the
// names whose ns/op regressed beyond threshold percent.
func compareDocs(w io.Writer, old, cur *Doc, threshold float64) []string {
	names := make([]string, 0, len(old.Benchmarks)+len(cur.Benchmarks))
	seen := map[string]bool{}
	for name := range old.Benchmarks {
		names = append(names, name)
		seen[name] = true
	}
	for name := range cur.Benchmarks {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-52s %14s %14s %9s %9s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "B/op", "allocs")
	var regressed []string
	for _, name := range names {
		o, haveOld := old.Benchmarks[name]
		n, haveNew := cur.Benchmarks[name]
		switch {
		case !haveNew:
			fmt.Fprintf(w, "%-52s %14.1f %14s %9s %9s %8s\n", name, o.NsPerOp, "-", "gone", "", "")
			continue
		case !haveOld:
			fmt.Fprintf(w, "%-52s %14s %14.1f %9s %9s %8s\n", name, "-", n.NsPerOp, "new", "", "")
			continue
		}
		pct := 0.0
		if o.NsPerOp > 0 {
			pct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		mark := ""
		if pct > threshold {
			mark = " !"
			regressed = append(regressed, name)
		}
		fmt.Fprintf(w, "%-52s %14.1f %14.1f %+8.1f%% %9s %8s%s\n",
			name, o.NsPerOp, n.NsPerOp, pct,
			deltaInt(o.BytesPerOp, n.BytesPerOp), deltaInt(o.AllocsPerOp, n.AllocsPerOp), mark)
	}
	return regressed
}

// deltaInt renders the change in an optional per-op integer measurement.
func deltaInt(old, cur *int64) string {
	if old == nil || cur == nil {
		return ""
	}
	return fmt.Sprintf("%+d", *cur-*old)
}

// parse scans r line by line, collecting benchmark results and echoing every
// non-result line to passthrough.
func parse(r io.Reader, passthrough io.Writer) (*Doc, error) {
	doc := &Doc{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if name, res, ok := parseResult(line); ok {
				doc.Benchmarks[name] = res
				continue
			}
			fmt.Fprintln(passthrough, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	return doc, nil
}

// parseResult decodes one result line of the form
//
//	BenchmarkName-8  1000  1234.5 ns/op  64 B/op  2 allocs/op
//
// reporting ok=false for anything else.
func parseResult(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix, but only if what follows is a number —
		// sub-benchmark names may legitimately contain dashes.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			ns, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", Result{}, false
			}
			res.NsPerOp = ns
			seen = true
		case "B/op":
			b, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", Result{}, false
			}
			res.BytesPerOp = &b
		case "allocs/op":
			a, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", Result{}, false
			}
			res.AllocsPerOp = &a
		}
	}
	if !seen {
		return "", Result{}, false
	}
	return name, res, true
}
