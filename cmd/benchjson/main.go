// Command benchjson converts `go test -bench` output into a machine-readable
// JSON document, so CI can archive benchmark results as an artifact and later
// runs (or humans with jq) can diff them without re-parsing Go's text format:
//
//	go test -bench . -benchmem ./internal/... | benchjson -o BENCH.json
//	benchjson -o - < bench.txt     # write JSON to stdout
//
// Every benchmark result line becomes one entry keyed by the benchmark's name
// with the -cpu suffix stripped (Benchmark prefix kept, so keys match the
// source), carrying iterations, ns/op, and — when the run used -benchmem —
// B/op and allocs/op. Header lines (goos, goarch, cpu) are captured into the
// envelope. Non-benchmark lines pass through untouched to stderr, so piping a
// test run through benchjson loses nothing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"b_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Doc is the JSON envelope benchjson writes.
type Doc struct {
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "BENCH.json", "output file (- = stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// parse scans r line by line, collecting benchmark results and echoing every
// non-result line to passthrough.
func parse(r io.Reader, passthrough io.Writer) (*Doc, error) {
	doc := &Doc{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if name, res, ok := parseResult(line); ok {
				doc.Benchmarks[name] = res
				continue
			}
			fmt.Fprintln(passthrough, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	return doc, nil
}

// parseResult decodes one result line of the form
//
//	BenchmarkName-8  1000  1234.5 ns/op  64 B/op  2 allocs/op
//
// reporting ok=false for anything else.
func parseResult(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix, but only if what follows is a number —
		// sub-benchmark names may legitimately contain dashes.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			ns, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", Result{}, false
			}
			res.NsPerOp = ns
			seen = true
		case "B/op":
			b, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", Result{}, false
			}
			res.BytesPerOp = &b
		case "allocs/op":
			a, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", Result{}, false
			}
			res.AllocsPerOp = &a
		}
	}
	if !seen {
		return "", Result{}, false
	}
	return name, res, true
}
