// Command vitabench runs Vita's reproduction experiments (DESIGN.md §4-§5)
// and prints one table per experiment — the material recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	vitabench                 # run everything
//	vitabench -only E3,E5     # run selected experiments
//	vitabench -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vita/internal/experiments"
)

func main() {
	var (
		seed = flag.Uint64("seed", 42, "random seed shared by all experiments")
		only = flag.String("only", "", "comma-separated experiment IDs (e.g. E3,E5,A1)")
	)
	flag.Parse()

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[strings.ToUpper(id)] = true
		}
	}

	failed := 0
	for _, exp := range experiments.All() {
		if len(selected) > 0 && !selected[exp.ID] {
			continue
		}
		tbl, err := exp.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s) FAILED: %v\n", exp.ID, exp.Name, err)
			failed++
			continue
		}
		fmt.Println(tbl.String())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
