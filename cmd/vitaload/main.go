// Command vitaload replays a configurable mix of the query operators
// against a dataset — a live vitaserve daemon (-server) or an in-process
// open of the data directory (-data) — and reports throughput and latency
// quantiles per endpoint, plus the server-side /metricsz counter delta the
// run cost. It is the load-testing and SLO-gating harness for the serving
// stack.
//
//	vitaload -server http://127.0.0.1:7617 -mode open -rate 500 -duration 30s
//	vitaload -data out -mode closed -concurrency 32 -duration 10s
//
// Two driving modes (see internal/load for the full contract):
//
//   - open: requests depart on a fixed schedule of -rate per second, and
//     latency is measured from the scheduled departure — queueing behind a
//     slow server inflates the numbers instead of slowing the generator
//     (no coordinated omission).
//   - closed: -concurrency workers issue requests back-to-back; throughput
//     floats to what the server sustains.
//
// The mix is weighted per operator (-mix "range=40,knn=25,traj=20,
// density=10,dwell=5") with parameters drawn deterministically (-seed) from
// the dataset's /v1/info summary — spatial bounds, time span, floors,
// object count — so replayed queries hit real data.
//
// Progress prints to stderr once a second; the final human summary goes to
// stderr and the machine-readable JSON report to stdout (or -o file). With
// -slo-p99 and/or -max-errors the exit status is a gate: 0 pass, 1 usage or
// I/O error, 2 SLO violation — wire it straight into CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vita/internal/load"
	"vita/internal/obs"
	"vita/internal/serve"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vitaload:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	server := flag.String("server", "", "vitaserve base URL to load (e.g. http://127.0.0.1:7617)")
	dataDir := flag.String("data", "", "dataset directory to open in-process instead of a server")
	mode := flag.String("mode", load.ModeOpen, "driving mode: open (fixed arrival rate) or closed (fixed concurrency)")
	rate := flag.Float64("rate", 100, "open-loop arrival rate in requests/second")
	concurrency := flag.Int("concurrency", 16, "workers: in-flight bound (open) or loop population (closed)")
	duration := flag.Duration("duration", 10*time.Second, "how long to issue requests")
	mixFlag := flag.String("mix", load.DefaultMix().String(), "operator mix as op=weight, comma-separated")
	seed := flag.Int64("seed", 1, "random seed; the same seed replays the identical query sequence")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout (-server only)")
	out := flag.String("o", "", "write the JSON report to this file instead of stdout")
	sloP99 := flag.Duration("slo-p99", 0, "fail (exit 2) when overall p99 latency exceeds this (0 disables)")
	maxErrors := flag.Int64("max-errors", -1, "fail (exit 2) when request errors exceed this (-1 disables)")
	quiet := flag.Bool("quiet", false, "suppress progress lines and the text summary")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *version {
		b := obs.Build()
		fmt.Printf("vitaload %s (%s) %s\n", b.Version, b.Commit, b.Go)
		return 0, nil
	}
	if (*server == "") == (*dataDir == "") {
		return 1, fmt.Errorf("exactly one of -server or -data is required")
	}
	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		return 1, err
	}

	var q load.Querier
	var metricsURL string
	if *server != "" {
		// The transport must not be the throughput ceiling: allow one warm
		// connection per worker.
		q = serve.NewClient(*server, serve.ClientOptions{
			Timeout:             *timeout,
			MaxIdleConnsPerHost: *concurrency,
		})
		metricsURL = *server
	} else {
		ds, err := serve.Open(*dataDir, serve.Config{})
		if err != nil {
			return 1, err
		}
		defer ds.Close()
		q = ds
	}

	opts := load.Options{
		Mode:        *mode,
		Rate:        *rate,
		Concurrency: *concurrency,
		Duration:    *duration,
		Mix:         mix,
		Seed:        *seed,
		MetricsURL:  metricsURL,
	}
	if !*quiet {
		opts.Progress = func(p load.Progress) {
			fmt.Fprintf(os.Stderr, "t=%4.1fs sent=%d errors=%d dropped=%d p50=%.2fms p99=%.2fms\n",
				p.Elapsed.Seconds(), p.Sent, p.Errors, p.Dropped, p.P50*1e3, p.P99*1e3)
		}
	}

	// SIGINT/SIGTERM stops dispatch and drains in-flight requests, then the
	// partial report still prints — a cancelled run is not a lost run.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rep, err := load.Run(ctx, q, opts)
	if err != nil {
		return 1, err
	}
	if !*quiet {
		if err := rep.WriteText(os.Stderr); err != nil {
			return 1, err
		}
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return 1, err
	}
	js = append(js, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			return 1, err
		}
	} else if _, err := os.Stdout.Write(js); err != nil {
		return 1, err
	}

	if violations := rep.CheckSLO(*sloP99, *maxErrors); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "vitaload: SLO violation:", v)
		}
		return 2, nil
	}
	return 0, nil
}
