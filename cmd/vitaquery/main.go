// Command vitaquery serves spatio-temporal queries over the output of
// vitagen. It loads the trajectory data from the data directory — either
// trajectory.vtb (the columnar binary store, preferred when present) or
// trajectory.csv, detected by magic bytes rather than extension — builds the
// time-bucketed R-tree index of internal/query, and answers one query per
// invocation:
//
//	vitaquery -data out range -floor 0 -box 0,0,20,15 -t0 0 -t1 120
//	vitaquery -data out knn -floor 0 -at 10,7.5 -t 60 -k 5
//	vitaquery -data out density -t 60
//	vitaquery -data out traj -obj 3 -t0 0 -t1 300
//	vitaquery -data out dwell -floor 0 -t0 0 -t1 600
//	vitaquery -data out watch -floor 0 -box 0,0,20,15
//	vitaquery -data out info
//
// With a VTB file the query predicate is pushed into the load: each
// subcommand derives the block predicate its operator allows (range prunes
// by window+floor+box, traj by object+window, dwell by window+floor,
// knn/density by the window widened by -maxgap so interpolation still sees
// its bracketing samples) and
// the scan skips every block whose zone map rules it out. The file is
// memory-mapped by default (-mmap=false falls back to plain reads) and the
// surviving blocks stream through a column-batch cursor straight into the
// query index, so peak memory beyond the index is one decoded block — the
// stderr stats line reports how many blocks were read and the peak decoded
// batch size. watch and other full materializing loads decode block-parallel
// (-parallelism workers).
//
// With -server URL the same operators are sent to a running vitaserve
// daemon instead of touching local files; execution and formatting go
// through the exact same internal/serve pipeline, so the output is
// byte-identical to local execution (watch excepted — it needs the raw
// sample stream and stays local-only).
//
// -trace prints the per-operator execution trace — rows, batches, wall time,
// and zone-map pruning per operator — on stderr, locally or against a server
// (the daemon returns the span tree when asked with trace=1). Stdout is
// unchanged, so traced and untraced runs stay byte-identical where it counts.
//
// watch replays the dataset sample-by-sample through a standing range query
// and prints every enter/move/exit transition — the online half of the
// engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"vita/internal/colstore"
	"vita/internal/obs"
	"vita/internal/query"
	"vita/internal/serve"
	"vita/internal/trajectory"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vitaquery:", err)
		os.Exit(1)
	}
}

// backend answers the query operators: a local serve.Dataset or a
// serve.Client talking to a vitaserve daemon. Both return the same response
// types rendered by the same formatters, which is what makes remote output
// byte-identical to local output.
type backend interface {
	Range(serve.RangeRequest) (*serve.RangeResponse, error)
	KNN(serve.KNNRequest) (*serve.KNNResponse, error)
	Density(serve.DensityRequest) (*serve.DensityResponse, error)
	Traj(serve.TrajRequest) (*serve.TrajResponse, error)
	Dwell(serve.DwellRequest) (*serve.DwellResponse, error)
	Info(trace bool) (*serve.InfoResponse, error)
}

func run() error {
	dataDir := flag.String("data", "out", "directory holding vitagen output")
	server := flag.String("server", "", "base URL of a running vitaserve daemon (empty = local execution)")
	bucket := flag.Float64("bucket", 60, "index time-bucket width in seconds (local mode)")
	maxGap := flag.Float64("maxgap", 10, "max sample gap in seconds for instant queries (local mode)")
	parallelism := flag.Int("parallelism", 0, "block-decode workers for local VTB loads (0 = GOMAXPROCS)")
	useMmap := flag.Bool("mmap", true, "memory-map local VTB files (false = plain file reads)")
	trace := flag.Bool("trace", false, "print the per-operator execution trace on stderr (stdout is unchanged)")
	logOpts := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(os.Stderr); err != nil {
		return err
	}
	if flag.NArg() == 0 {
		return fmt.Errorf("missing subcommand: range | knn | density | traj | dwell | watch | info")
	}

	var be backend
	var ds *serve.Dataset // non-nil in local mode; watch and stderr stats need it
	if *server != "" {
		be = &serve.Client{Base: *server}
	} else {
		var err error
		ds, err = serve.Open(*dataDir, serve.Config{
			Query:       query.Options{BucketWidth: *bucket, MaxGap: *maxGap},
			Parallelism: *parallelism,
			// One-shot execution: nothing would ever hit a warm cache.
			CacheBytes:   -1,
			IndexEntries: -1,
			DisableMmap:  !*useMmap,
		})
		if err != nil {
			return err
		}
		defer ds.Close()
		be = ds
	}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "range":
		return runRange(be, ds, *trace, args)
	case "knn":
		return runKNN(be, ds, *trace, args)
	case "density":
		return runDensity(be, ds, *trace, args)
	case "traj":
		return runTraj(be, ds, *trace, args)
	case "dwell":
		return runDwell(be, ds, *trace, args)
	case "watch":
		if ds == nil {
			return fmt.Errorf("watch needs the raw sample stream and is not supported with -server")
		}
		return runWatch(ds, args)
	case "info":
		return runInfo(be, ds, *trace)
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// reportStats mirrors the pre-daemon behavior: in local mode over a VTB
// file, a stderr line says how effective zone-map pruning was — and, on the
// streaming cursor path, how much decoded data was ever resident at once,
// which is what makes the bounded-memory claim of one-shot scans observable.
func reportStats(ds *serve.Dataset, st serve.Stats) {
	if ds == nil || st.Format != "vtb" {
		return
	}
	line := fmt.Sprintf("vitaquery: %s: read %d of %d blocks (%d pruned by zone maps), %d rows matched",
		filepath.Base(ds.Path()), st.Scan.BlocksScanned, st.Scan.BlocksTotal,
		st.Scan.BlocksPruned, st.Scan.RowsMatched)
	if st.PeakDecodedBytes > 0 {
		line += fmt.Sprintf(", peak %.1f KiB decoded", float64(st.PeakDecodedBytes)/1024)
	}
	fmt.Fprintln(os.Stderr, line)
}

// reportTrace renders the per-operator span tree on stderr when -trace asked
// for one. Stdout stays byte-identical to an untraced run: the trace is
// diagnostics, not part of the answer.
func reportTrace(span *obs.Span) {
	if span == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "vitaquery: trace:")
	span.WriteTree(os.Stderr)
}

func runRange(be backend, ds *serve.Dataset, trace bool, args []string) error {
	fs := flag.NewFlagSet("range", flag.ExitOnError)
	floor := fs.Int("floor", -1, "floor to search (-1 = all)")
	boxStr := fs.String("box", "", "spatial box x0,y0,x1,y1 (required)")
	t0 := fs.Float64("t0", 0, "window start (s)")
	t1 := fs.Float64("t1", 0, "window end (s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	box, err := serve.ParseBox(*boxStr)
	if err != nil {
		return err
	}
	resp, err := be.Range(serve.RangeRequest{Floor: *floor, Box: box, T0: *t0, T1: *t1, Trace: trace})
	if err != nil {
		return err
	}
	reportStats(ds, resp.Stats)
	reportTrace(resp.Trace)
	return resp.WriteText(os.Stdout)
}

func runKNN(be backend, ds *serve.Dataset, trace bool, args []string) error {
	fs := flag.NewFlagSet("knn", flag.ExitOnError)
	floor := fs.Int("floor", 0, "floor to search")
	atStr := fs.String("at", "", "query point x,y (required)")
	t := fs.Float64("t", 0, "query instant (s)")
	k := fs.Int("k", 5, "number of neighbors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := serve.ParsePoint(*atStr)
	if err != nil {
		return err
	}
	resp, err := be.KNN(serve.KNNRequest{Floor: *floor, At: p, T: *t, K: *k, Trace: trace})
	if err != nil {
		return err
	}
	reportStats(ds, resp.Stats)
	reportTrace(resp.Trace)
	return resp.WriteText(os.Stdout)
}

func runDensity(be backend, ds *serve.Dataset, trace bool, args []string) error {
	fs := flag.NewFlagSet("density", flag.ExitOnError)
	t := fs.Float64("t", 0, "snapshot instant (s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := be.Density(serve.DensityRequest{T: *t, Trace: trace})
	if err != nil {
		return err
	}
	reportStats(ds, resp.Stats)
	reportTrace(resp.Trace)
	return resp.WriteText(os.Stdout)
}

func runTraj(be backend, ds *serve.Dataset, trace bool, args []string) error {
	fs := flag.NewFlagSet("traj", flag.ExitOnError)
	obj := fs.Int("obj", 0, "object ID")
	t0 := fs.Float64("t0", 0, "window start (s)")
	t1 := fs.Float64("t1", 1e18, "window end (s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := be.Traj(serve.TrajRequest{Obj: *obj, T0: *t0, T1: *t1, Trace: trace})
	if err != nil {
		return err
	}
	reportStats(ds, resp.Stats)
	reportTrace(resp.Trace)
	return resp.WriteText(os.Stdout)
}

func runDwell(be backend, ds *serve.Dataset, trace bool, args []string) error {
	fs := flag.NewFlagSet("dwell", flag.ExitOnError)
	floor := fs.Int("floor", -1, "floor to analyze (-1 = all)")
	t0 := fs.Float64("t0", 0, "window start (s)")
	t1 := fs.Float64("t1", 1e18, "window end (s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := be.Dwell(serve.DwellRequest{Floor: *floor, T0: *t0, T1: *t1, Trace: trace})
	if err != nil {
		return err
	}
	reportStats(ds, resp.Stats)
	reportTrace(resp.Trace)
	return resp.WriteText(os.Stdout)
}

func runWatch(ds *serve.Dataset, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	floor := fs.Int("floor", -1, "floor to watch (-1 = all)")
	boxStr := fs.String("box", "", "spatial box x0,y0,x1,y1 (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	box, err := serve.ParseBox(*boxStr)
	if err != nil {
		return err
	}
	// The standing query needs every sample: an object exits when a sample
	// lands outside the box (or floor), so nothing can be pruned away.
	samples, stats, err := ds.Samples(colstore.Predicate{})
	if err != nil {
		return err
	}
	reportStats(ds, stats)
	// Replay in global time order so the transition log reads like a live
	// feed.
	ordered := make([]trajectory.Sample, len(samples))
	copy(ordered, samples)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].T < ordered[j].T })

	eng := query.NewContinuousEngine()
	events := 0
	sub := eng.Subscribe(*floor, box, func(e query.Event) {
		if e.Kind == query.Move {
			return // only log boundary crossings
		}
		events++
		fmt.Printf("t %8.2f  %-5s obj %-4d %s\n", e.Sample.T, e.Kind, e.Sample.ObjID, e.Sample.Loc)
	})
	eng.FeedAll(ordered)
	fmt.Printf("%d enter/exit events; %d objects inside at end of replay\n", events, len(sub.Inside()))
	return nil
}

func runInfo(be backend, ds *serve.Dataset, trace bool) error {
	resp, err := be.Info(trace)
	if err != nil {
		return err
	}
	reportStats(ds, resp.Stats)
	reportTrace(resp.Trace)
	return resp.WriteText(os.Stdout)
}
