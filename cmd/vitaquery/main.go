// Command vitaquery serves spatio-temporal queries over the output of
// vitagen. It loads the trajectory data from the data directory — either
// trajectory.vtb (the columnar binary store, preferred when present) or
// trajectory.csv, detected by magic bytes rather than extension — builds the
// time-bucketed R-tree index of internal/query, and answers one query per
// invocation:
//
//	vitaquery -data out range -floor 0 -box 0,0,20,15 -t0 0 -t1 120
//	vitaquery -data out knn -floor 0 -at 10,7.5 -t 60 -k 5
//	vitaquery -data out density -t 60
//	vitaquery -data out traj -obj 3 -t0 0 -t1 300
//	vitaquery -data out watch -floor 0 -box 0,0,20,15
//	vitaquery -data out info
//
// With a VTB file the query predicate is pushed into the load: each
// subcommand derives the block predicate its operator allows (range prunes
// by window+floor+box, traj by object+window, knn/density by the window
// widened by -maxgap so interpolation still sees its bracketing samples),
// and the scan skips every block whose zone map rules it out. A line on
// stderr reports how many blocks were actually read.
//
// watch replays the dataset sample-by-sample through a standing range query
// and prints every enter/move/exit transition — the online half of the
// engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/query"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vitaquery:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir := flag.String("data", "out", "directory holding vitagen output")
	bucket := flag.Float64("bucket", 60, "index time-bucket width in seconds")
	maxGap := flag.Float64("maxgap", 10, "max sample gap in seconds for instant queries")
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("missing subcommand: range | knn | density | traj | watch | info")
	}

	ld, err := newLoader(*dataDir)
	if err != nil {
		return err
	}
	opts := query.Options{BucketWidth: *bucket, MaxGap: *maxGap}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "range":
		return runRange(ld, opts, args)
	case "knn":
		return runKNN(ld, opts, args)
	case "density":
		return runDensity(ld, opts, args)
	case "traj":
		return runTraj(ld, opts, args)
	case "watch":
		return runWatch(ld, args)
	case "info":
		return runInfo(ld, opts)
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// loader locates the trajectory file and loads it through the format layer,
// pushing each operator's predicate into the scan.
type loader struct {
	path string
}

func newLoader(dir string) (*loader, error) {
	for _, name := range []string{"trajectory.vtb", "trajectory.csv"} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return &loader{path: p}, nil
		}
	}
	return nil, fmt.Errorf("no trajectory.vtb or trajectory.csv in %s", dir)
}

// load returns the samples matching pred. For VTB files the load is a
// zone-map pruned scan and a stats line goes to stderr; for CSV it is a full
// parse with row filtering.
func (l *loader) load(pred colstore.Predicate) ([]trajectory.Sample, error) {
	var out []trajectory.Sample
	stats, format, err := storage.ScanTrajectoryFile(l.path, pred, func(s trajectory.Sample) {
		out = append(out, s)
	})
	if err != nil {
		return nil, err
	}
	if format == storage.FormatVTB {
		fmt.Fprintf(os.Stderr, "vitaquery: %s: read %d of %d blocks (%d pruned by zone maps), %d rows matched\n",
			filepath.Base(l.path), stats.BlocksScanned, stats.BlocksTotal, stats.BlocksPruned, stats.RowsMatched)
	}
	return out, nil
}

// parseBox parses "x0,y0,x1,y1".
func parseBox(s string) (geom.BBox, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.BBox{}, fmt.Errorf("bad box %q, want x0,y0,x1,y1", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.BBox{}, fmt.Errorf("bad box coordinate %q", p)
		}
		v[i] = f
	}
	return geom.BBox{Min: geom.Pt(v[0], v[1]), Max: geom.Pt(v[2], v[3])}, nil
}

// parsePoint parses "x,y".
func parsePoint(s string) (geom.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return geom.Point{}, fmt.Errorf("bad point %q, want x,y", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("bad point coordinate %q", parts[0])
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("bad point coordinate %q", parts[1])
	}
	return geom.Pt(x, y), nil
}

func runRange(ld *loader, opts query.Options, args []string) error {
	fs := flag.NewFlagSet("range", flag.ExitOnError)
	floor := fs.Int("floor", -1, "floor to search (-1 = all)")
	boxStr := fs.String("box", "", "spatial box x0,y0,x1,y1 (required)")
	t0 := fs.Float64("t0", 0, "window start (s)")
	t1 := fs.Float64("t1", 0, "window end (s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	box, err := parseBox(*boxStr)
	if err != nil {
		return err
	}
	// Range is exact on window, floor and box, so the full predicate can be
	// pushed into the scan.
	pred := colstore.Predicate{HasTime: true, T0: *t0, T1: *t1, HasBox: true, Box: box}
	if *floor >= 0 {
		pred.HasFloor, pred.Floor = true, *floor
	}
	samples, err := ld.load(pred)
	if err != nil {
		return err
	}
	ix := query.NewTrajectoryIndex(samples, opts)
	hits := ix.Range(*floor, box, *t0, *t1)
	for _, s := range hits {
		fmt.Printf("obj %-4d t %8.2f  %s\n", s.ObjID, s.T, s.Loc)
	}
	fmt.Printf("%d samples, %d distinct objects in %v × [%g, %g]\n",
		len(hits), len(ix.RangeObjects(*floor, box, *t0, *t1)), box, *t0, *t1)
	return nil
}

func runKNN(ld *loader, opts query.Options, args []string) error {
	fs := flag.NewFlagSet("knn", flag.ExitOnError)
	floor := fs.Int("floor", 0, "floor to search")
	atStr := fs.String("at", "", "query point x,y (required)")
	t := fs.Float64("t", 0, "query instant (s)")
	k := fs.Int("k", 5, "number of neighbors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parsePoint(*atStr)
	if err != nil {
		return err
	}
	// kNN interpolates between the samples bracketing t (within MaxGap) and
	// disambiguates floor transitions using both endpoints, so push only the
	// widened time window — not floor or box.
	samples, err := ld.load(colstore.TimeWindow(*t-opts.MaxGap, *t+opts.MaxGap))
	if err != nil {
		return err
	}
	ix := query.NewTrajectoryIndex(samples, opts)
	for i, n := range ix.KNN(*floor, p, *t, *k) {
		fmt.Printf("#%d  obj %-4d dist %6.2fm  %s\n", i+1, n.ObjID, n.Dist, n.Loc)
	}
	return nil
}

func runDensity(ld *loader, opts query.Options, args []string) error {
	fs := flag.NewFlagSet("density", flag.ExitOnError)
	t := fs.Float64("t", 0, "snapshot instant (s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Like kNN: interpolation needs the samples within MaxGap of t.
	samples, err := ld.load(colstore.TimeWindow(*t-opts.MaxGap, *t+opts.MaxGap))
	if err != nil {
		return err
	}
	ix := query.NewTrajectoryIndex(samples, opts)
	dens := ix.Density(*t)
	parts := make([]string, 0, len(dens))
	for p := range dens {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool {
		if dens[parts[i]] != dens[parts[j]] {
			return dens[parts[i]] > dens[parts[j]]
		}
		return parts[i] < parts[j]
	})
	total := 0
	for _, p := range parts {
		fmt.Printf("%-16s %d\n", p, dens[p])
		total += dens[p]
	}
	fmt.Printf("%d objects in %d partitions at t=%g\n", total, len(parts), *t)
	return nil
}

func runTraj(ld *loader, opts query.Options, args []string) error {
	fs := flag.NewFlagSet("traj", flag.ExitOnError)
	obj := fs.Int("obj", 0, "object ID")
	t0 := fs.Float64("t0", 0, "window start (s)")
	t1 := fs.Float64("t1", 1e18, "window end (s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := ld.load(colstore.Predicate{
		HasObj: true, Obj: *obj,
		HasTime: true, T0: *t0, T1: *t1,
	})
	if err != nil {
		return err
	}
	ix := query.NewTrajectoryIndex(samples, opts)
	ser := ix.ObjectTrajectory(*obj, *t0, *t1)
	for _, s := range ser {
		fmt.Printf("t %8.2f  %s\n", s.T, s.Loc)
	}
	fmt.Printf("%d samples for object %d\n", len(ser), *obj)
	return nil
}

func runWatch(ld *loader, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	floor := fs.Int("floor", -1, "floor to watch (-1 = all)")
	boxStr := fs.String("box", "", "spatial box x0,y0,x1,y1 (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	box, err := parseBox(*boxStr)
	if err != nil {
		return err
	}
	// The standing query needs every sample: an object exits when a sample
	// lands outside the box (or floor), so nothing can be pruned away.
	samples, err := ld.load(colstore.Predicate{})
	if err != nil {
		return err
	}
	// Replay in global time order so the transition log reads like a live
	// feed.
	ordered := make([]trajectory.Sample, len(samples))
	copy(ordered, samples)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].T < ordered[j].T })

	eng := query.NewContinuousEngine()
	events := 0
	sub := eng.Subscribe(*floor, box, func(e query.Event) {
		if e.Kind == query.Move {
			return // only log boundary crossings
		}
		events++
		fmt.Printf("t %8.2f  %-5s obj %-4d %s\n", e.Sample.T, e.Kind, e.Sample.ObjID, e.Sample.Loc)
	})
	eng.FeedAll(ordered)
	fmt.Printf("%d enter/exit events; %d objects inside at end of replay\n", events, len(sub.Inside()))
	return nil
}

func runInfo(ld *loader, opts query.Options) error {
	samples, err := ld.load(colstore.Predicate{})
	if err != nil {
		return err
	}
	ix := query.NewTrajectoryIndex(samples, opts)
	t0, t1, ok := ix.TimeSpan()
	if !ok {
		fmt.Println("empty dataset")
		return nil
	}
	fmt.Printf("samples   %d\n", ix.Len())
	fmt.Printf("objects   %d\n", len(ix.Objects()))
	fmt.Printf("floors    %v\n", ix.Floors())
	fmt.Printf("time span [%g, %g] s\n", t0, t1)
	return nil
}
