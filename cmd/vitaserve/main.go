// Command vitaserve is the long-lived query-serving daemon over vitagen
// output. Where vitaquery pays cold-start on every invocation — reopen the
// file, reparse the footer, decode blocks — vitaserve opens the dataset
// directory once, keeps the VTB footer resident and hot decoded blocks in a
// size-bounded LRU cache, and answers the query operators over HTTP:
//
//	vitaserve -data out -addr 127.0.0.1:7617
//
//	GET /v1/range?floor=0&box=0,0,20,15&t0=0&t1=120
//	GET /v1/knn?floor=0&at=10,7.5&t=60&k=5
//	GET /v1/density?t=60
//	GET /v1/traj?obj=3&t0=0&t1=300
//	GET /v1/info
//	GET /healthz
//	GET /statsz
//	GET /debug/pprof/*   (only with -pprof)
//
// The VTB file is memory-mapped by default so cache-miss block decodes read
// straight from the OS page cache (-mmap=false falls back to plain reads);
// -pprof mounts the standard profiling endpoints for profiling the daemon in
// place.
//
// Live datasets: when -data holds a segment log (vitagen -segment-mb/-rows
// output, or the log directory itself), the daemon polls the manifest every
// -watch interval and folds in new segments without restarting — a dataset
// still being generated is queryable mid-run. -compact additionally runs the
// background compactor in-process, merging accumulated segments into one
// re-blocked in global time order; run it only when no other process mutates
// the log (vitagen finished or writing elsewhere).
//
// Responses are JSON and embed per-request scan stats (blocks pruned and
// decoded, cache hits and misses); /statsz aggregates them over the daemon's
// lifetime. `vitaquery -server URL` sends the same operators here and prints
// output byte-identical to local execution.
//
// SIGINT or SIGTERM stops the daemon gracefully: the listener closes,
// in-flight requests drain (up to -drain), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"syscall"
	"time"

	"vita/internal/query"
	"vita/internal/seglog"
	"vita/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vitaserve:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir := flag.String("data", "out", "directory holding vitagen output")
	addr := flag.String("addr", "127.0.0.1:7617", "listen address")
	cacheMB := flag.Int("cache-mb", 64, "decoded-block cache budget in MiB (0 disables)")
	indexEntries := flag.Int("index-entries", 16, "cached spatio-temporal indexes (0 disables)")
	indexMB := flag.Int("index-mb", 256, "index cache byte budget in MiB (0 = unbounded bytes)")
	parallelism := flag.Int("parallelism", 0, "block-decode workers (0 = GOMAXPROCS)")
	bucket := flag.Float64("bucket", 60, "index time-bucket width in seconds")
	maxGap := flag.Float64("maxgap", 10, "max sample gap in seconds for instant queries")
	drain := flag.Duration("drain", 10*time.Second, "in-flight request drain timeout on shutdown")
	useMmap := flag.Bool("mmap", true, "memory-map the VTB file (false = plain file reads)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (exposes internals; keep off on untrusted networks)")
	watch := flag.Duration("watch", time.Second, "manifest poll interval for live segmented datasets (0 disables refresh)")
	compactEvery := flag.Duration("compact", 0, "run in-process compaction of a segmented dataset at this interval (0 disables; obey the single-mutator rule: no other writer/compactor process)")
	flag.Parse()

	cfg := serve.Config{
		Query:         query.Options{BucketWidth: *bucket, MaxGap: *maxGap},
		Parallelism:   *parallelism,
		CacheBytes:    int64(*cacheMB) << 20,
		IndexEntries:  *indexEntries,
		IndexBytes:    int64(*indexMB) << 20,
		DisableMmap:   !*useMmap,
		WatchInterval: *watch,
	}
	if *watch == 0 {
		cfg.WatchInterval = -1
	}
	if *cacheMB == 0 {
		cfg.CacheBytes = -1
	}
	if *indexEntries == 0 {
		cfg.IndexEntries = -1
	}
	if *indexMB == 0 {
		cfg.IndexBytes = -1
	}
	ds, err := serve.Open(*dataDir, cfg)
	if err != nil {
		return err
	}
	// No deferred Close: the dataset is closed only after a clean drain.
	// Closing an mmap-backed dataset unmaps its file region, so doing it
	// while a timed-out drain leaves handlers mid-scan would fault them;
	// on the error path the process exits and the OS reclaims the mapping.

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	access := "pread"
	if ds.Mmapped() {
		access = "mmap"
	}
	fmt.Fprintf(os.Stderr, "vitaserve: serving %s (%s via %s, %d samples, %d blocks) on http://%s\n",
		ds.Path(), ds.Format(), access, ds.Len(), ds.Blocks(), l.Addr())
	if n := ds.Segments(); n > 0 {
		fmt.Fprintf(os.Stderr, "vitaserve: live dataset: %d segments at generation %d, refreshing every %s\n",
			n, ds.Generation(), *watch)
	}

	compactCtx, stopCompact := context.WithCancel(context.Background())
	defer stopCompact()
	if *compactEvery > 0 {
		log := ds.SegLog()
		if log == nil {
			return fmt.Errorf("-compact set but %s is not a segmented dataset", *dataDir)
		}
		c := seglog.NewCompactor(log, seglog.CompactorOptions{
			DisableMmap: !*useMmap,
			OnError: func(err error) {
				fmt.Fprintln(os.Stderr, "vitaserve: compaction:", err)
			},
		})
		go c.Run(compactCtx, *compactEvery)
		fmt.Fprintf(os.Stderr, "vitaserve: compacting every %s\n", *compactEvery)
	}

	srv := serve.NewServer(ds)
	if *pprofOn {
		srv.EnablePprof()
		fmt.Fprintf(os.Stderr, "vitaserve: pprof enabled at http://%s/debug/pprof/\n", l.Addr())
	}
	if err := srv.RunUntilSignal(context.Background(), l, *drain, syscall.SIGINT, syscall.SIGTERM); err != nil {
		return err
	}
	// The drain completed: every handler has returned, so unmapping is safe.
	if err := ds.Close(); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "vitaserve: drained and stopped after %.1fs: %d range, %d knn, %d density, %d traj, %d info; cache %d hits / %d misses / %d evictions, %d index hits\n",
		st.UptimeSeconds, st.Requests["range"], st.Requests["knn"], st.Requests["density"],
		st.Requests["traj"], st.Requests["info"],
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.IndexHits)
	if st.Segments > 0 {
		fmt.Fprintf(os.Stderr, "vitaserve: live dataset: %d segments, generation %d, %d compactions, %d refreshes, %d block + %d index invalidations\n",
			st.Segments, st.Generation, st.Compactions, st.Refreshes,
			st.BlockInvalidations, st.IndexInvalidations)
	}
	return nil
}
