// Command vitaserve is the long-lived query-serving daemon over vitagen
// output. Where vitaquery pays cold-start on every invocation — reopen the
// file, reparse the footer, decode blocks — vitaserve opens the dataset
// directory once, keeps the VTB footer resident and hot decoded blocks in a
// size-bounded LRU cache, and answers the query operators over HTTP:
//
//	vitaserve -data out -addr 127.0.0.1:7617
//
//	GET /v1/range?floor=0&box=0,0,20,15&t0=0&t1=120
//	GET /v1/knn?floor=0&at=10,7.5&t=60&k=5
//	GET /v1/density?t=60
//	GET /v1/traj?obj=3&t0=0&t1=300
//	GET /v1/dwell?floor=0&t0=0&t1=600
//	GET /v1/info
//	GET /healthz
//	GET /statsz
//	GET /metricsz
//	GET /debug/pprof/*   (only with -pprof)
//
// The VTB file is memory-mapped by default so cache-miss block decodes read
// straight from the OS page cache (-mmap=false falls back to plain reads);
// -pprof mounts the standard profiling endpoints for profiling the daemon in
// place and turns on block/mutex profiling at sane sampling defaults
// (-block-profile-rate, -mutex-profile-fraction tune or disable them).
//
// Live datasets: when -data holds a segment log (vitagen -segment-mb/-rows
// output, or the log directory itself), the daemon polls the manifest every
// -watch interval and folds in new segments without restarting — a dataset
// still being generated is queryable mid-run. -compact additionally runs the
// background compactor in-process, merging accumulated segments into one
// re-blocked in global time order; run it only when no other process mutates
// the log (vitagen finished or writing elsewhere).
//
// Responses are JSON and embed per-request scan stats (blocks pruned and
// decoded, cache hits and misses); /statsz aggregates them over the daemon's
// lifetime and /metricsz exposes the same counters (plus request-latency
// histograms, cache and seglog series, and build info) in Prometheus text
// format. `vitaquery -server URL` sends the same operators here and prints
// output byte-identical to local execution.
//
// Observability: logs are structured (-log-format text|json, -log-level);
// every request carries an X-Request-Id (honored if the client sent one)
// that the request log and error bodies echo. Any /v1 request with ?trace=1
// returns a per-operator execution trace in the response; -slow-query logs
// the same trace for requests over the threshold. -version prints the build
// identity (set via -ldflags "-X vita/internal/obs.Version=...") and exits.
//
// SIGINT or SIGTERM stops the daemon gracefully: the listener closes,
// in-flight requests drain (up to -drain), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"syscall"
	"time"

	"vita/internal/obs"
	"vita/internal/query"
	"vita/internal/seglog"
	"vita/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vitaserve:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir := flag.String("data", "out", "directory holding vitagen output")
	addr := flag.String("addr", "127.0.0.1:7617", "listen address")
	cacheMB := flag.Int("cache-mb", 64, "decoded-block cache budget in MiB (0 disables)")
	indexEntries := flag.Int("index-entries", 16, "cached spatio-temporal indexes (0 disables)")
	indexMB := flag.Int("index-mb", 256, "index cache byte budget in MiB (0 = unbounded bytes)")
	parallelism := flag.Int("parallelism", 0, "block-decode workers (0 = GOMAXPROCS)")
	bucket := flag.Float64("bucket", 60, "index time-bucket width in seconds")
	maxGap := flag.Float64("maxgap", 10, "max sample gap in seconds for instant queries")
	drain := flag.Duration("drain", 10*time.Second, "in-flight request drain timeout on shutdown")
	useMmap := flag.Bool("mmap", true, "memory-map the VTB file (false = plain file reads)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (exposes internals; keep off on untrusted networks)")
	blockRate := flag.Int("block-profile-rate", serve.DefaultPprofOptions().BlockProfileRate, "with -pprof: sample one blocking event per this many ns blocked (1 = every event, <0 disables block profiling)")
	mutexFrac := flag.Int("mutex-profile-fraction", serve.DefaultPprofOptions().MutexProfileFraction, "with -pprof: sample 1/this of mutex contention events (1 = every event, <0 disables mutex profiling)")
	watch := flag.Duration("watch", time.Second, "manifest poll interval for live segmented datasets (0 disables refresh)")
	compactEvery := flag.Duration("compact", 0, "run in-process compaction of a segmented dataset at this interval (0 disables; obey the single-mutator rule: no other writer/compactor process)")
	slowQuery := flag.Duration("slow-query", 0, "log a per-operator trace for any request slower than this (0 disables)")
	version := flag.Bool("version", false, "print build version and exit")
	logOpts := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		b := obs.Build()
		fmt.Printf("vitaserve %s (%s) %s\n", b.Version, b.Commit, b.Go)
		return nil
	}
	if _, err := logOpts.Setup(os.Stderr); err != nil {
		return err
	}

	cfg := serve.Config{
		Query:         query.Options{BucketWidth: *bucket, MaxGap: *maxGap},
		Parallelism:   *parallelism,
		CacheBytes:    int64(*cacheMB) << 20,
		IndexEntries:  *indexEntries,
		IndexBytes:    int64(*indexMB) << 20,
		DisableMmap:   !*useMmap,
		WatchInterval: *watch,
	}
	if *watch == 0 {
		cfg.WatchInterval = -1
	}
	if *cacheMB == 0 {
		cfg.CacheBytes = -1
	}
	if *indexEntries == 0 {
		cfg.IndexEntries = -1
	}
	if *indexMB == 0 {
		cfg.IndexBytes = -1
	}
	ds, err := serve.Open(*dataDir, cfg)
	if err != nil {
		return err
	}
	// No deferred Close: the dataset is closed only after a clean drain.
	// Closing an mmap-backed dataset unmaps its file region, so doing it
	// while a timed-out drain leaves handlers mid-scan would fault them;
	// on the error path the process exits and the OS reclaims the mapping.

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	access := "pread"
	if ds.Mmapped() {
		access = "mmap"
	}
	b := obs.Build()
	slog.Info("serving",
		"path", ds.Path(), "format", string(ds.Format()), "access", access,
		"samples", ds.Len(), "blocks", ds.Blocks(),
		"addr", "http://"+l.Addr().String(),
		"version", b.Version, "commit", b.Commit)
	if n := ds.Segments(); n > 0 {
		slog.Info("live dataset",
			"segments", n, "generation", ds.Generation(), "watch", watch.String())
	}

	compactCtx, stopCompact := context.WithCancel(context.Background())
	defer stopCompact()
	if *compactEvery > 0 {
		// Keep the seglog handle under a name that doesn't shadow the stdlib
		// log package for the rest of this scope.
		slg := ds.SegLog()
		if slg == nil {
			return fmt.Errorf("-compact set but %s is not a segmented dataset", *dataDir)
		}
		// Run-loop errors are already logged by the compactor itself; OnError
		// stays nil so they are not reported twice.
		c := seglog.NewCompactor(slg, seglog.CompactorOptions{
			DisableMmap: !*useMmap,
		})
		go c.Run(compactCtx, *compactEvery)
		slog.Info("compacting", "every", compactEvery.String())
	}

	srv := serve.NewServerWith(ds, serve.ServerOptions{SlowQuery: *slowQuery})
	if *pprofOn {
		srv.EnablePprofWith(serve.PprofOptions{
			BlockProfileRate:     *blockRate,
			MutexProfileFraction: *mutexFrac,
		})
		slog.Info("pprof enabled",
			"addr", fmt.Sprintf("http://%s/debug/pprof/", l.Addr()),
			"block_profile_rate", *blockRate,
			"mutex_profile_fraction", *mutexFrac)
	}
	if err := srv.RunUntilSignal(context.Background(), l, *drain, syscall.SIGINT, syscall.SIGTERM); err != nil {
		return err
	}
	// The drain completed: every handler has returned, so unmapping is safe.
	if err := ds.Close(); err != nil {
		return err
	}
	st := srv.Stats()
	slog.Info("drained and stopped",
		"uptime_s", st.UptimeSeconds,
		"range", st.Requests["range"], "knn", st.Requests["knn"],
		"density", st.Requests["density"], "traj", st.Requests["traj"],
		"info", st.Requests["info"],
		"cache_hits", st.Cache.Hits, "cache_misses", st.Cache.Misses,
		"cache_evictions", st.Cache.Evictions, "index_hits", st.IndexHits)
	if st.Segments > 0 {
		slog.Info("live dataset totals",
			"segments", st.Segments, "generation", st.Generation,
			"compactions", st.Compactions, "refreshes", st.Refreshes,
			"block_invalidations", st.BlockInvalidations,
			"index_invalidations", st.IndexInvalidations)
	}
	return nil
}
