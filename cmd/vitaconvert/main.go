// Command vitaconvert converts Vita bulk data files between the CSV record
// format and the VTB columnar binary store, in either direction:
//
//	vitaconvert -in out/trajectory.vtb -out out/trajectory.csv
//	vitaconvert -in out/rssi.csv -out out/rssi.vtb
//
// The input encoding is detected by magic bytes; its record kind comes from
// the VTB header or, for CSV, from the header row (trajectory/estimate
// columns vs RSSI columns). The output encoding is chosen by the -out file
// extension (.csv or .vtb). VTB → CSV applies the CSV codec's 4-decimal
// quantization; every other direction is lossless, so a VTB → CSV
// conversion is byte-identical to having generated CSV directly.
//
// For VTB output, -codec selects the block codec (raw | vsnap | flate;
// default vsnap). VTB → VTB with -codec recompresses a file in place of its
// era's codec — the migration path for flate-era archives:
//
//	vitaconvert -in old/trajectory.vtb -out new/trajectory.vtb -codec vsnap
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vita/internal/colstore"
	"vita/internal/rssi"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vitaconvert:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input file (.csv or .vtb, detected by content)")
	out := flag.String("out", "", "output file; extension selects the format")
	codecStr := flag.String("codec", "", "VTB block codec: raw | vsnap | flate (default vsnap; .vtb output only)")
	flag.Parse()
	if *in == "" || *out == "" {
		return fmt.Errorf("both -in and -out are required")
	}

	outFormat, err := formatFromExt(*out)
	if err != nil {
		return err
	}
	var block colstore.Options
	if *codecStr != "" {
		if outFormat != storage.FormatVTB {
			return fmt.Errorf("-codec only applies to .vtb output (CSV has no block codec)")
		}
		if block.Codec, err = colstore.ParseCodec(*codecStr); err != nil {
			return err
		}
	}
	kind, err := detectKind(*in)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	var rows int
	switch kind {
	case colstore.KindTrajectory:
		rows, err = convertTrajectory(*in, bw, outFormat, block)
	case colstore.KindRSSI:
		rows, err = convertRSSI(*in, bw, outFormat, block)
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(*out)
		return err
	}

	ist, _ := os.Stat(*in)
	ost, _ := os.Stat(*out)
	if ist != nil && ost != nil {
		fmt.Printf("%s: %d %s rows, %d -> %d bytes (%.0f%%)\n",
			filepath.Base(*out), rows, kind, ist.Size(), ost.Size(),
			100*float64(ost.Size())/float64(ist.Size()))
	}
	return nil
}

func formatFromExt(path string) (storage.Format, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return storage.FormatCSV, nil
	case ".vtb":
		return storage.FormatVTB, nil
	default:
		return "", fmt.Errorf("cannot infer output format from %q: use a .csv or .vtb extension", path)
	}
}

// detectKind sniffs the record kind: the VTB header byte, or the CSV header
// row.
func detectKind(path string) (colstore.Kind, error) {
	kind, isVTB, err := colstore.Sniff(path)
	if err != nil {
		return 0, err
	}
	if isVTB {
		return kind, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	header, err := bufio.NewReader(f).ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("read CSV header of %s: %w", path, err)
	}
	switch strings.TrimSpace(header) {
	case "o_id,building,floor,partition,x,y,t":
		return colstore.KindTrajectory, nil
	case "o_id,d_id,rssi,t":
		return colstore.KindRSSI, nil
	default:
		return 0, fmt.Errorf("unrecognized CSV header %q (want the trajectory/estimate or rssi columns)",
			strings.TrimSpace(header))
	}
}

// convertTrajectory pipes rows from the input scan straight into the output
// writer, so conversion runs in O(block) memory however large the file is.
func convertTrajectory(in string, w *bufio.Writer, format storage.Format, block colstore.Options) (int, error) {
	var out interface {
		Write(trajectory.Sample) error
		Close() error
	}
	var err error
	if format == storage.FormatCSV {
		out, err = storage.NewTrajectoryCSVWriter(w)
		if err != nil {
			return 0, err
		}
	} else {
		out = colstore.NewTrajectoryWriterOptions(w, block)
	}
	rows := 0
	var werr error
	_, _, err = storage.ScanTrajectoryFile(in, colstore.Predicate{}, func(s trajectory.Sample) {
		if werr != nil {
			return
		}
		rows++
		werr = out.Write(s)
	})
	if err != nil {
		return rows, err
	}
	if werr != nil {
		return rows, werr
	}
	return rows, out.Close()
}

// convertRSSI is convertTrajectory for RSSI rows.
func convertRSSI(in string, w *bufio.Writer, format storage.Format, block colstore.Options) (int, error) {
	var out interface {
		Write(rssi.Measurement) error
		Close() error
	}
	var err error
	if format == storage.FormatCSV {
		out, err = storage.NewRSSICSVWriter(w)
		if err != nil {
			return 0, err
		}
	} else {
		out = colstore.NewRSSIWriterOptions(w, block)
	}
	rows := 0
	var werr error
	_, _, err = storage.ScanRSSIFile(in, colstore.Predicate{}, func(m rssi.Measurement) {
		if werr != nil {
			return
		}
		rows++
		werr = out.Write(m)
	})
	if err != nil {
		return rows, err
	}
	if werr != nil {
		return rows, werr
	}
	return rows, out.Close()
}
