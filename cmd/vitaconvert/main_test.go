package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/trajectory"
)

// runConvert invokes run() with a fresh flag set, the way main does.
func runConvert(args ...string) error {
	flag.CommandLine = flag.NewFlagSet("vitaconvert", flag.ContinueOnError)
	os.Args = append([]string{"vitaconvert"}, args...)
	return run()
}

func makeSamples() []trajectory.Sample {
	var out []trajectory.Sample
	for i := 0; i < 5000; i++ {
		out = append(out, trajectory.Sample{
			ObjID: i % 17,
			Loc: model.At("hq", i%3, []string{"lobby", "atrium"}[i%2],
				geom.Pt(float64(i%40)+0.125, float64(i%25)+0.25)),
			T: float64(i / 17),
		})
	}
	return out
}

func writeVTB(t *testing.T, path string, samples []trajectory.Sample, opts colstore.Options) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := colstore.NewTrajectoryWriterOptions(f, opts)
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAllVTB(t *testing.T, path string) []trajectory.Sample {
	t.Helper()
	r, err := colstore.OpenTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestRecompressRoundTrip pins the VTB → VTB migration path: recompressing
// a flate-era file with -codec vsnap must preserve every row bit-for-bit
// while actually changing the block codec on disk.
func TestRecompressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	samples := makeSamples()
	in := filepath.Join(dir, "in.vtb")
	writeVTB(t, in, samples, colstore.Options{BlockSize: 512, Codec: colstore.CodecFlate})

	out := filepath.Join(dir, "out.vtb")
	if err := runConvert("-in", in, "-out", out, "-codec", "vsnap"); err != nil {
		t.Fatalf("convert: %v", err)
	}

	got := readAllVTB(t, out)
	if len(got) != len(samples) {
		t.Fatalf("recompressed file has %d rows, want %d", len(got), len(samples))
	}
	for i := range got {
		if got[i] != samples[i] {
			t.Fatalf("row %d differs after recompression: got %+v, want %+v", i, got[i], samples[i])
		}
	}

	// The first block frame's codec byte must now be vsnap (2), not flate.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if codec := data[12]; codec != 2 {
		t.Fatalf("recompressed first block codec = %d, want 2 (vsnap)", codec)
	}
	// And converting back to flate must round-trip too.
	back := filepath.Join(dir, "back.vtb")
	if err := runConvert("-in", out, "-out", back, "-codec", "flate"); err != nil {
		t.Fatalf("convert back: %v", err)
	}
	if got := readAllVTB(t, back); len(got) != len(samples) {
		t.Fatalf("flate round trip has %d rows, want %d", len(got), len(samples))
	}
}

// TestUnknownCodecRefused pins the CLI contract: an unknown codec name must
// fail up front with an error that lists the valid names, and must not
// leave a partial output file behind.
func TestUnknownCodecRefused(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.vtb")
	writeVTB(t, in, makeSamples()[:100], colstore.Options{})
	out := filepath.Join(dir, "out.vtb")

	err := runConvert("-in", in, "-out", out, "-codec", "zstd")
	if err == nil {
		t.Fatal("unknown codec accepted")
	}
	for _, want := range []string{"zstd", "raw", "vsnap", "flate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if _, serr := os.Stat(out); !os.IsNotExist(serr) {
		t.Errorf("refused conversion left output file behind (stat err %v)", serr)
	}
}

// TestCodecRejectedForCSV pins the other refusal: -codec with a .csv output
// is a contradiction and must error rather than be silently ignored.
func TestCodecRejectedForCSV(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.vtb")
	writeVTB(t, in, makeSamples()[:100], colstore.Options{})

	err := runConvert("-in", in, "-out", filepath.Join(dir, "out.csv"), "-codec", "vsnap")
	if err == nil || !strings.Contains(err.Error(), "csv") && !strings.Contains(err.Error(), "CSV") {
		t.Fatalf("want csv-refusal error, got %v", err)
	}
}
