// Command docslint keeps the documentation wired to the code. It enforces
// two invariants CI cannot catch with go vet alone:
//
//  1. Every Go package in the module (root, internal/..., cmd/...,
//     examples/...) carries a package comment, so `go doc` always has
//     something to say about a layer.
//  2. Every relative link in the top-level documents (README.md,
//     docs/ARCHITECTURE.md) resolves to a file or directory that exists,
//     so refactors cannot silently strand the architecture docs.
//
// Usage: docslint [-root dir]. Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root to lint")
	flag.Parse()

	var problems []string
	problems = append(problems, lintPackageComments(*root)...)
	for _, doc := range []string{"README.md", filepath.Join("docs", "ARCHITECTURE.md")} {
		problems = append(problems, lintMarkdownLinks(*root, doc)...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// lintPackageComments walks every directory holding non-test Go files and
// requires at least one file to carry a package doc comment.
func lintPackageComments(root string) []string {
	var problems []string
	pkgFiles := make(map[string][]string) // dir -> non-test .go files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			dir := filepath.Dir(path)
			pkgFiles[dir] = append(pkgFiles[dir], path)
		}
		return nil
	})
	if err != nil {
		return []string{fmt.Sprintf("docslint: walk: %v", err)}
	}
	for dir, files := range pkgFiles {
		documented := false
		fset := token.NewFileSet()
		for _, f := range files {
			parsed, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", f, err))
				continue
			}
			if parsed.Doc != nil && strings.TrimSpace(parsed.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			problems = append(problems, fmt.Sprintf("%s: package has no package comment on any file", dir))
		}
	}
	return problems
}

// linkRe matches markdown inline links and images: [text](target).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// lintMarkdownLinks requires every relative link target in doc to exist on
// disk, resolved against the document's own directory.
func lintMarkdownLinks(root, doc string) []string {
	path := filepath.Join(root, doc)
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", doc, err)}
	}
	var problems []string
	for ln, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", doc, ln+1, m[1]))
			}
		}
	}
	return problems
}
