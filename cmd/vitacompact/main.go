// Command vitacompact merges the accumulated segments of a live dataset's
// segment logs into single large segments re-blocked in global order, so
// zone maps tighten back up and scans touch one file per log instead of
// many:
//
//	vitacompact -data out                 # compact out/seglog/{trajectory,rssi}
//	vitacompact -data out/seglog/trajectory  # compact one log directly
//	vitacompact -data out -min-segments 8    # only merge once 8 pile up
//
// Compaction is crash-safe: the merged segment builds under a temporary
// name, the swap is one manifest commit, and a process killed mid-merge
// leaves the log — and every query against it — untouched. It is a log
// mutation, so run it only when no other writer or compactor has the log
// (readers, including a running vitaserve, are unaffected and pick up the
// merge on their next manifest refresh).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vita/internal/colstore"
	"vita/internal/obs"
	"vita/internal/seglog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vitacompact:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir := flag.String("data", "out", "dataset directory (or a segment log directory)")
	minSegments := flag.Int("min-segments", 2, "merge only when at least this many segments are live")
	useMmap := flag.Bool("mmap", true, "memory-map merge inputs (false = plain file reads)")
	codecStr := flag.String("codec", "", "VTB block codec for the merged segment: raw | vsnap | flate (default vsnap); compacting a flate-era log rewrites it under the new codec")
	logOpts := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(os.Stderr); err != nil {
		return err
	}
	var block colstore.Options
	if *codecStr != "" {
		var err error
		if block.Codec, err = colstore.ParseCodec(*codecStr); err != nil {
			return err
		}
	}

	var logDirs []string
	if seglog.IsLog(*dataDir) {
		logDirs = []string{*dataDir}
	} else {
		for _, sub := range []string{"trajectory", "rssi"} {
			if p := filepath.Join(*dataDir, "seglog", sub); seglog.IsLog(p) {
				logDirs = append(logDirs, p)
			}
		}
	}
	if len(logDirs) == 0 {
		return fmt.Errorf("no segment log at %s (or under %s)", *dataDir, filepath.Join(*dataDir, "seglog"))
	}

	for _, dir := range logDirs {
		l, err := seglog.Open(dir)
		if err != nil {
			return err
		}
		if swept, err := l.SweepOrphans(); err != nil {
			return err
		} else if swept > 0 {
			fmt.Printf("%s: swept %d orphan file(s)\n", dir, swept)
		}
		before := len(l.Snapshot().Segments)
		meta, err := seglog.NewCompactor(l, seglog.CompactorOptions{
			MinSegments: *minSegments,
			DisableMmap: !*useMmap,
			Block:       block,
		}).RunOnce()
		if err != nil {
			return fmt.Errorf("%s: %w", dir, err)
		}
		if meta == nil {
			fmt.Printf("%s: %d segment(s), below -min-segments %d; nothing to do\n", dir, before, *minSegments)
			continue
		}
		fmt.Printf("%s: merged %d segments into %s (%d rows, %d bytes, level %d)\n",
			dir, before, meta.File, meta.Rows, meta.Bytes, meta.Level)
	}
	return nil
}
