// Command vitagen runs Vita's full generation pipeline from a JSON
// configuration and writes the produced data files, following the demo's
// six-step path (paper §5): import DBI → view environment → deploy devices →
// generate objects/trajectories → generate RSSI → run the positioning
// method.
//
// Usage:
//
//	vitagen -config cfg.json -out outdir [-render] [-snapshot 60]
//	vitagen -config cfg.json -format vtb    # columnar binary instead of CSV
//	vitagen -config cfg.json -parallelism 8 # shard generation over 8 workers
//	vitagen -format vtb -segment-mb 64      # live segment log instead of flat files
//	vitagen -default > cfg.json             # print the default config
//
// Generation is sharded by object across a worker pool (-parallelism, or the
// config's "parallelism" field; 0 = all cores). The produced data is
// byte-identical for any worker count.
//
// The bulk outputs (trajectory, rssi) stream into the chosen -format while
// the simulation runs — csv (the paper's textual records, 4-decimal
// quantization) or vtb (the lossless block-columnar binary of
// internal/colstore, which vitaquery scans with zone-map pruning).
// Trajectory rows are written in global time order, RSSI rows grouped by
// object. Derived tables (estimates, proximity) are always CSV.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vita/internal/colstore"
	"vita/internal/core"
	"vita/internal/obs"
	"vita/internal/render"
	"vita/internal/seglog"
	"vita/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vitagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "JSON configuration file (empty = defaults)")
		outDir     = flag.String("out", "out", "output directory for the data files")
		doRender   = flag.Bool("render", false, "render ASCII floor plans with the final snapshot")
		snapshotAt = flag.Float64("snapshot", -1, "extract an object snapshot at this simulation second")
		printDef   = flag.Bool("default", false, "print the default configuration as JSON and exit")
		parallel   = flag.Int("parallelism", -1, "generation worker count (0 = all cores; -1 = value from config; output is identical for any setting)")
		formatStr  = flag.String("format", "csv", "bulk output format: csv | vtb")
		segMB      = flag.Float64("segment-mb", 0, "write bulk outputs as a live segment log, rolling segments at this many MiB (vtb only; 0 = flat files)")
		segRows    = flag.Int("segment-rows", 0, "additionally roll segments after this many rows (implies a segment log; vtb only)")
		codecStr   = flag.String("codec", "", "VTB block codec: raw | vsnap | flate (default vsnap; vtb only)")
	)
	logOpts := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(os.Stderr); err != nil {
		return err
	}

	if *printDef {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(core.DefaultConfig())
	}

	cfg := core.DefaultConfig()
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		loaded, err := core.LoadConfig(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg = loaded
	}

	switch {
	case *parallel >= 0:
		cfg.Parallelism = *parallel
	case *parallel < -1:
		return fmt.Errorf("-parallelism must be >= 0 (or -1 to use the config value), got %d", *parallel)
	}

	format, err := storage.ParseFormat(*formatStr)
	if err != nil {
		return err
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return err
	}
	segmented := *segMB > 0 || *segRows > 0
	if segmented && format != storage.FormatVTB {
		return fmt.Errorf("-segment-mb/-segment-rows require -format vtb (segment logs have no csv form)")
	}
	var block colstore.Options
	if *codecStr != "" {
		if format != storage.FormatVTB {
			return fmt.Errorf("-codec requires -format vtb (csv has no block codec)")
		}
		if block.Codec, err = colstore.ParseCodec(*codecStr); err != nil {
			return err
		}
	}
	var sink interface {
		core.Sink
		Discard() error
	}
	var segSink *core.SegmentedDirSink
	if segmented {
		if segSink, err = core.NewSegmentedDirSink(*outDir, seglog.WriterOptions{
			MaxSegmentBytes: int64(*segMB * (1 << 20)),
			MaxSegmentRows:  *segRows,
			Block:           block,
		}); err != nil {
			return err
		}
		sink = segSink
	} else if sink, err = core.NewDirSinkOptions(*outDir, format, block); err != nil {
		return err
	}
	ds, err := p.RunTo(sink)
	if err != nil {
		// Remove the partial bulk files so a truncated trajectory.vtb from
		// this failed run cannot shadow valid data from an earlier one.
		sink.Discard()
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}
	fmt.Printf("parallelism     %d workers\n", p.Parallelism())

	// Summary, mirroring Figure 1's data products.
	fmt.Printf("building        %s (%d floors, %d partitions, %d doors, %d staircases)\n",
		ds.Building.ID, len(ds.Building.Floors), ds.Building.PartitionCount(),
		ds.Building.DoorCount(), len(ds.Building.Staircases))
	if ds.DBIReport != nil && len(ds.DBIReport.Issues) > 0 {
		fmt.Printf("dbi issues      %d (see report below)\n", len(ds.DBIReport.Issues))
	}
	fmt.Printf("devices         %d\n", ds.Devices.Len())
	fmt.Printf("trajectory rows %d (objects spawned %d)\n", ds.Trajectories.Len(), ds.TrajectoryStats.Spawned)
	fmt.Printf("rssi rows       %d\n", ds.RSSI.Len())
	fmt.Printf("estimates       %d\n", ds.Estimates.Len())
	fmt.Printf("prob estimates  %d\n", len(ds.ProbEstimates))
	fmt.Printf("proximity rows  %d\n", ds.Proximity.Len())
	if ds.Estimates.Len() > 0 {
		stats, floorMiss := core.EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
		fmt.Printf("accuracy        %s (floor mismatches %d)\n", stats, floorMiss)
	}
	if ds.DBIReport != nil {
		for _, issue := range ds.DBIReport.Issues {
			fmt.Println("  dbi:", issue)
		}
	}

	if segmented {
		fmt.Printf("wrote %d trajectory + %d rssi segments to %s\n",
			segSink.TrajectorySegments(), segSink.RSSISegments(), filepath.Join(*outDir, "seglog"))
	} else {
		for _, name := range []string{"trajectory" + format.Ext(), "rssi" + format.Ext()} {
			if st, err := os.Stat(filepath.Join(*outDir, name)); err == nil {
				fmt.Printf("wrote %-14s %d bytes\n", name, st.Size())
			}
		}
		fmt.Printf("wrote %s files to %s\n", strings.ToUpper(string(format)), *outDir)
	}

	if *doRender || *snapshotAt >= 0 {
		at := *snapshotAt
		if at < 0 {
			at = cfg.Trajectory.Duration
		}
		snap := ds.Trajectories.SnapshotAt(at)
		fmt.Printf("\nsnapshot at t=%.0fs: %d objects\n", at, len(snap))
		fmt.Print(render.Building(ds.Building, ds.Devices.All(), snap, render.Options{Width: 100}))
	}
	return nil
}
