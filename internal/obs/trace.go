package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"time"
)

// Span is one node of a query trace: an operator (or logical stage) with its
// observed work. The serve layer builds a Span tree per traced request and
// returns it in the response's "trace" field; the same tree feeds the
// slow-query log. All counts are totals over the span's lifetime — this is
// an EXPLAIN ANALYZE record, not a streaming event.
type Span struct {
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`

	Batches   int   `json:"batches,omitempty"`
	Rows      int   `json:"rows,omitempty"`
	WallNanos int64 `json:"wall_ns"`

	// Scan-only: zone-map pruning and decode work, copied from the scan
	// cursor's stats when the operator closes.
	BlocksTotal   int `json:"blocks_total,omitempty"`
	BlocksPruned  int `json:"blocks_pruned,omitempty"`
	BlocksScanned int `json:"blocks_scanned,omitempty"`
	RowsScanned   int `json:"rows_scanned,omitempty"`
	RowsMatched   int `json:"rows_matched,omitempty"`

	Children []*Span `json:"children,omitempty"`
}

// AddChild appends and returns a new child span.
func (s *Span) AddChild(op string) *Span {
	c := &Span{Op: op}
	s.Children = append(s.Children, c)
	return c
}

// AddWall accumulates elapsed wall time onto the span.
func (s *Span) AddWall(d time.Duration) { s.WallNanos += int64(d) }

// Wall returns the span's accumulated wall time.
func (s *Span) Wall() time.Duration { return time.Duration(s.WallNanos) }

// SpanCount returns the number of spans in the tree rooted at s.
func (s *Span) SpanCount() int {
	n := 1
	for _, c := range s.Children {
		n += c.SpanCount()
	}
	return n
}

// WriteTree renders the span tree as indented text, one operator per line —
// the human-facing form printed by vitaquery -trace.
func (s *Span) WriteTree(w io.Writer) {
	s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	fmt.Fprintf(w, "%s", s.Op)
	if s.Detail != "" {
		fmt.Fprintf(w, " (%s)", s.Detail)
	}
	fmt.Fprintf(w, ": rows=%d batches=%d wall=%s", s.Rows, s.Batches, time.Duration(s.WallNanos).Round(time.Microsecond))
	if s.BlocksTotal > 0 {
		fmt.Fprintf(w, " blocks=%d/%d pruned=%d rows_scanned=%d matched=%d",
			s.BlocksScanned, s.BlocksTotal, s.BlocksPruned, s.RowsScanned, s.RowsMatched)
	}
	io.WriteString(w, "\n")
	for _, c := range s.Children {
		c.writeTree(w, depth+1)
	}
}

// NewRequestID returns a 16-hex-char random request identifier for log
// correlation (the X-Request-Id header).
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to a
		// constant rather than take the request down.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
