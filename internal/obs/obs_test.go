package obs

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "first as counter")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic re-registering counter as gauge")
		}
	}()
	r.Gauge("dual", "now as gauge")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 5.555 {
		t.Fatalf("sum = %v, want 5.555", got)
	}

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 5.555",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabelsAndExposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "endpoint", "status")
	v.With("/v1/range", "200").Add(3)
	v.With("/v1/knn", "400").Inc()
	if v.With("/v1/range", "200").Value() != 3 {
		t.Fatalf("labeled series not shared across With calls")
	}

	g := r.GaugeVec("quoted", `has "quotes" and \slashes`, "k")
	g.With(`a"b\c`).Set(1)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`http_requests_total{endpoint="/v1/knn",status="400"} 1`,
		`http_requests_total{endpoint="/v1/range",status="200"} 3`,
		`# HELP quoted has "quotes" and \\slashes`,
		`quoted{k="a\"b\\c"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted series order within a family.
	if strings.Index(out, `endpoint="/v1/knn"`) > strings.Index(out, `endpoint="/v1/range"`) {
		t.Errorf("labeled series not sorted:\n%s", out)
	}
}

func TestFuncMetricsReplaceOnReregister(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn_gauge", "func gauge", func() float64 { return 1 })
	r.GaugeFunc("fn_gauge", "func gauge", func() float64 { return 42 })
	r.CounterFunc("fn_total", "func counter", func() float64 { return 7 })

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fn_gauge 42") {
		t.Errorf("re-registered func did not replace binding:\n%s", out)
	}
	if !strings.Contains(out, "fn_total 7") {
		t.Errorf("missing func counter:\n%s", out)
	}
}

func TestConcurrentMetricsAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "concurrent counter")
	h := r.HistogramVec("conc_seconds", "concurrent histogram", nil, "endpoint")
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.With("e").Observe(float64(i) / 1000)
				if i%50 == 0 {
					r.WritePrometheus(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.With("e").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSpanTree(t *testing.T) {
	root := &Span{Op: "Range"}
	scan := root.AddChild("Scan")
	scan.Detail = "t in [0,100)"
	scan.Rows = 10
	scan.Batches = 2
	scan.BlocksTotal = 5
	scan.BlocksPruned = 3
	scan.BlocksScanned = 2
	scan.AddWall(1500 * time.Microsecond)
	if got := root.SpanCount(); got != 2 {
		t.Fatalf("span count = %d, want 2", got)
	}
	var b bytes.Buffer
	root.WriteTree(&b)
	out := b.String()
	if !strings.Contains(out, "Range") || !strings.Contains(out, "  Scan (t in [0,100))") {
		t.Errorf("tree rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, "blocks=2/5 pruned=3") {
		t.Errorf("tree missing scan stats:\n%s", out)
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request IDs %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("request IDs collide: %q", a)
	}
}

func TestLogSetup(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterLogFlags(fs)
	if err := fs.Parse([]string{"-log-format", "json", "-log-level", "warn"}); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	logger, err := o.Setup(&b)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hidden")
	logger.Warn("visible", "k", "v")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line emitted at warn level:\n%s", out)
	}
	if !strings.Contains(out, `"msg":"visible"`) || !strings.Contains(out, `"k":"v"`) {
		t.Errorf("json log line missing fields:\n%s", out)
	}

	bad := &LogOptions{Format: "xml"}
	if _, err := bad.Setup(io.Discard); err == nil {
		t.Errorf("expected error for unknown format")
	}
	bad = &LogOptions{Format: "text", Level: "loud"}
	if _, err := bad.Setup(io.Discard); err == nil {
		t.Errorf("expected error for unknown level")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Version == "" || b.Go == "" || b.Commit == "" {
		t.Fatalf("incomplete build info: %+v", b)
	}
	if Uptime() <= 0 {
		t.Fatalf("uptime not positive")
	}
	r := NewRegistry()
	RegisterBuildInfo(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vita_build_info{") {
		t.Errorf("missing vita_build_info:\n%s", buf.String())
	}
}
