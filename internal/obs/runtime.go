package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeSampler caches one runtime.ReadMemStats (and /proc/self read, where
// available) per scrape burst. Every go_*/process_* series is a func metric,
// and a scrape evaluates a dozen of them back to back; without the cache each
// series would stop the world once per sample line. Within maxAge the whole
// exposition reads one consistent snapshot.
type runtimeSampler struct {
	mu     sync.Mutex
	maxAge time.Duration
	taken  time.Time
	mem    runtime.MemStats
	goro   int
	proc   procStats
	procOK bool
}

// snapshot returns the cached sample, refreshing it when older than maxAge.
func (s *runtimeSampler) snapshot() (*runtimeSampler, func()) {
	s.mu.Lock()
	if time.Since(s.taken) > s.maxAge || s.taken.IsZero() {
		runtime.ReadMemStats(&s.mem)
		s.goro = runtime.NumGoroutine()
		s.proc, s.procOK = readProcStats()
		s.taken = time.Now()
	}
	return s, s.mu.Unlock
}

// mem returns fn applied to a fresh-enough MemStats snapshot.
func (s *runtimeSampler) memStat(fn func(*runtime.MemStats) float64) func() float64 {
	return func() float64 {
		snap, release := s.snapshot()
		defer release()
		return fn(&snap.mem)
	}
}

// procStat returns fn applied to a fresh-enough process snapshot.
func (s *runtimeSampler) procStat(fn func(procStats) float64) func() float64 {
	return func() float64 {
		snap, release := s.snapshot()
		defer release()
		return fn(snap.proc)
	}
}

// RegisterRuntimeMetrics exposes the Go runtime and OS process series a real
// deployment pages on — goroutine count, heap and GC behavior, CPU time,
// RSS, and file-descriptor usage — as go_*/process_* func metrics on r,
// following the Prometheus client conventions for these names. Underlying
// runtime/procfs reads are cached for 100ms so one scrape costs one
// ReadMemStats, not one per series. The process_* series needing /proc/self
// are registered only where that is available (Linux); process_start_time
// and CPU/memory series from the runtime are registered everywhere.
// Registering twice on the same registry is a harmless rebind.
func RegisterRuntimeMetrics(r *Registry) {
	s := &runtimeSampler{maxAge: 100 * time.Millisecond}

	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 {
			snap, release := s.snapshot()
			defer release()
			return float64(snap.goro)
		})
	r.GaugeFunc("go_gomaxprocs", "GOMAXPROCS: simultaneously executing OS threads running Go code.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })

	mem := func(name, help string, fn func(*runtime.MemStats) float64) {
		r.GaugeFunc(name, help, s.memStat(fn))
	}
	memTotal := func(name, help string, fn func(*runtime.MemStats) float64) {
		r.CounterFunc(name, help, s.memStat(fn))
	}
	mem("go_memstats_alloc_bytes", "Bytes of allocated heap objects.",
		func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) })
	memTotal("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) })
	mem("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.",
		func(m *runtime.MemStats) float64 { return float64(m.Sys) })
	mem("go_memstats_heap_inuse_bytes", "Bytes in in-use heap spans.",
		func(m *runtime.MemStats) float64 { return float64(m.HeapInuse) })
	mem("go_memstats_heap_objects", "Number of allocated heap objects.",
		func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) })
	mem("go_memstats_next_gc_bytes", "Heap size target of the next GC cycle.",
		func(m *runtime.MemStats) float64 { return float64(m.NextGC) })
	mem("go_memstats_last_gc_time_seconds", "Unix time of the last completed GC cycle.",
		func(m *runtime.MemStats) float64 { return float64(m.LastGC) / 1e9 })
	memTotal("go_gc_cycles_total", "Completed GC cycles.",
		func(m *runtime.MemStats) float64 { return float64(m.NumGC) })
	memTotal("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 })
	mem("go_gc_cpu_fraction", "Fraction of available CPU time used by the GC since program start.",
		func(m *runtime.MemStats) float64 { return m.GCCPUFraction })

	r.GaugeFunc("process_start_time_seconds", "Unix time the process started.",
		func() float64 { return float64(startTime.UnixNano()) / 1e9 })
	r.GaugeFunc("process_uptime_seconds", "Seconds since the process started.",
		func() float64 { return Uptime().Seconds() })

	if _, ok := readProcStats(); !ok {
		return // no procfs on this platform; the go_* series still cover the runtime
	}
	proc := func(name, help string, counter bool, fn func(procStats) float64) {
		if counter {
			r.CounterFunc(name, help, s.procStat(fn))
		} else {
			r.GaugeFunc(name, help, s.procStat(fn))
		}
	}
	proc("process_resident_memory_bytes", "Resident set size in bytes.", false,
		func(p procStats) float64 { return p.rssBytes })
	proc("process_virtual_memory_bytes", "Virtual memory size in bytes.", false,
		func(p procStats) float64 { return p.vsizeBytes })
	proc("process_cpu_seconds_total", "Total user and system CPU time spent.", true,
		func(p procStats) float64 { return p.cpuSeconds })
	proc("process_open_fds", "Open file descriptors.", false,
		func(p procStats) float64 { return p.openFDs })
	proc("process_max_fds", "Soft limit on open file descriptors.", false,
		func(p procStats) float64 { return p.maxFDs })
	proc("process_num_threads", "OS threads in the process.", false,
		func(p procStats) float64 { return p.threads })
}
