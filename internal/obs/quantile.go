package obs

import (
	"math"
	"sync/atomic"
)

// QuantileHistogram records observations into logarithmically spaced buckets
// and answers arbitrary quantile queries with a bounded relative error — the
// client-side complement to the fixed-bucket Prometheus Histogram, whose
// hand-picked bucket edges cannot report a p99 more precisely than the gap
// between two edges. The load harness uses one per endpoint to report
// p50/p90/p99/p99.9 honestly over millions of latency samples in O(buckets)
// memory.
//
// Bucket i covers [Min·Growth^i, Min·Growth^(i+1)); Quantile returns the
// geometric midpoint of the bucket holding the requested rank, so the
// relative error of any reported quantile is at most √Growth − 1 (about 2%
// for the default 1.04 growth factor). Values below Min land in the first
// bucket and values at or above Max in the last; the exact observed minimum
// and maximum are tracked separately and returned for the extreme quantiles,
// so the error bound degrades only for interior ranks that fall into the two
// clamp buckets.
//
// Observe is lock-free (one atomic add on a bucket, CAS loops for sum and
// extrema) and safe for concurrent use with Quantile and the other readers;
// a concurrent snapshot is weakly consistent, which is fine for progress
// reporting and final reports taken after workers stop.
type QuantileHistogram struct {
	min    float64 // lower edge of bucket 0
	logMin float64
	invLog float64 // 1 / ln(Growth)
	growth float64

	counts  []atomic.Uint64
	count   atomic.Uint64
	sum     Gauge
	minSeen atomic.Uint64 // math.Float64bits of the smallest observation
	maxSeen atomic.Uint64 // math.Float64bits of the largest observation
}

// Default layout for latency-in-seconds histograms: 1µs to ~1000s with ~2%
// quantile error, 711 buckets (~6 KiB of counters).
const (
	defQuantileMin    = 1e-6
	defQuantileMax    = 1200.0
	defQuantileGrowth = 1.04
)

// NewQuantileHistogram returns a histogram whose buckets cover [min, max)
// with the given per-bucket growth factor (> 1). The bucket count is
// ceil(ln(max/min) / ln(growth)) + 2 clamp buckets.
func NewQuantileHistogram(min, max, growth float64) *QuantileHistogram {
	if !(min > 0) || !(max > min) || !(growth > 1) {
		panic("obs: NewQuantileHistogram wants 0 < min < max and growth > 1")
	}
	n := int(math.Ceil(math.Log(max/min)/math.Log(growth))) + 2
	h := &QuantileHistogram{
		min:    min,
		logMin: math.Log(min),
		invLog: 1 / math.Log(growth),
		growth: growth,
		counts: make([]atomic.Uint64, n),
	}
	h.minSeen.Store(math.Float64bits(math.Inf(1)))
	h.maxSeen.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// NewLatencyHistogram returns the stock latency layout: seconds from 1µs to
// 20 minutes with ≤ ~2% relative quantile error.
func NewLatencyHistogram() *QuantileHistogram {
	return NewQuantileHistogram(defQuantileMin, defQuantileMax, defQuantileGrowth)
}

// bucketOf maps a value to its bucket index, clamping below min and above
// the top edge.
func (h *QuantileHistogram) bucketOf(v float64) int {
	if v < h.min {
		return 0
	}
	i := int((math.Log(v)-h.logMin)*h.invLog) + 1
	if i >= len(h.counts) {
		return len(h.counts) - 1
	}
	return i
}

// Observe records one value. Negative and NaN values are recorded in the
// underflow bucket (they count, but report as the observed minimum).
func (h *QuantileHistogram) Observe(v float64) {
	i := 0
	if v > 0 && !math.IsNaN(v) {
		i = h.bucketOf(v)
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	casFloor(&h.minSeen, v)
	casCeil(&h.maxSeen, v)
}

// casFloor lowers the stored float64 bits to v if v is smaller.
func casFloor(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) || bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// casCeil raises the stored float64 bits to v if v is larger.
func casCeil(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) || bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *QuantileHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *QuantileHistogram) Sum() float64 { return h.sum.Value() }

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *QuantileHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Value() / float64(n)
}

// Min returns the smallest observation (0 when empty).
func (h *QuantileHistogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minSeen.Load())
}

// Max returns the largest observation (0 when empty).
func (h *QuantileHistogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxSeen.Load())
}

// Quantile returns the value at quantile q ∈ [0, 1] with relative error at
// most √Growth − 1 (see the type comment). q ≤ 0 returns the exact minimum,
// q ≥ 1 the exact maximum, and an empty histogram returns 0. The answer is
// the geometric midpoint of the bucket containing the rank-⌈q·count⌉
// observation, clamped into [Min(), Max()] so a nearly-empty bucket range
// never reports a value outside what was actually observed.
func (h *QuantileHistogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	bucket := len(h.counts) - 1
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			bucket = i
			break
		}
	}
	var v float64
	switch bucket {
	case 0:
		v = h.min // underflow: everything below the first edge
	case len(h.counts) - 1:
		v = h.Max() // overflow bucket: the exact max is the best estimate
	default:
		lo := h.min * math.Pow(h.growth, float64(bucket-1))
		v = lo * math.Sqrt(h.growth) // geometric midpoint of [lo, lo·growth)
	}
	return math.Min(math.Max(v, h.Min()), h.Max())
}
