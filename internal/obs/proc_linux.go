//go:build linux

package obs

import (
	"os"
	"strconv"
	"strings"
	"syscall"
)

// procStats is one sample of the OS-level process state read from
// /proc/self. Fields are float64 because they feed func metrics directly.
type procStats struct {
	rssBytes   float64
	vsizeBytes float64
	cpuSeconds float64
	openFDs    float64
	maxFDs     float64
	threads    float64
}

// clockTicksPerSecond is Linux's USER_HZ; fixed at 100 on every architecture
// Go supports (the sysconf(_SC_CLK_TCK) value userspace sees).
const clockTicksPerSecond = 100

// readProcStats samples /proc/self. ok is false when procfs is missing or
// unreadable (containers with a masked /proc, non-Linux builds).
func readProcStats() (procStats, bool) {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return procStats{}, false
	}
	// Field 2 (comm) may contain spaces; everything after the closing paren
	// is space-separated. Fields below are numbered from 1 per proc(5):
	// 14 utime, 15 stime, 20 num_threads, 23 vsize, 24 rss (pages).
	i := strings.LastIndexByte(string(data), ')')
	if i < 0 {
		return procStats{}, false
	}
	f := strings.Fields(string(data[i+1:])) // f[0] is field 3 (state)
	fieldAt := func(n int) float64 {
		idx := n - 3
		if idx < 0 || idx >= len(f) {
			return 0
		}
		v, _ := strconv.ParseFloat(f[idx], 64)
		return v
	}
	var st procStats
	st.cpuSeconds = (fieldAt(14) + fieldAt(15)) / clockTicksPerSecond
	st.threads = fieldAt(20)
	st.vsizeBytes = fieldAt(23)
	st.rssBytes = fieldAt(24) * float64(os.Getpagesize())

	if ents, err := os.ReadDir("/proc/self/fd"); err == nil {
		st.openFDs = float64(len(ents))
	}
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil {
		st.maxFDs = float64(lim.Cur)
	}
	return st, true
}
