package obs

import (
	"bufio"
	"bytes"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact text rendered for one of each metric
// shape — unlabeled counter, labeled counter, gauge, func metric, and a
// labeled histogram with cumulative le buckets, +Inf, _sum/_count, and label
// escaping. Scrapers parse this format byte by byte; any drift is a break.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs\nprocessed \\ overall.").Add(3)
	v := r.CounterVec("req_total", "Requests.", "ep", "code")
	v.With("/x", "200").Add(2)
	v.With("/a", "500").Inc()
	r.Gauge("temp", "A gauge.").Set(1.5)
	h := r.HistogramVec("lat_seconds", "Latency.", []float64{0.1, 1}, "ep")
	esc := `q"\`
	h.With(esc).Observe(0.25)
	h.With(esc).Observe(0.5)
	h.With(esc).Observe(2)
	r.GaugeFunc("fn_gauge", "Computed.", func() float64 { return 7 })

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs\nprocessed \\ overall.
# TYPE jobs_total counter
jobs_total 3
# HELP req_total Requests.
# TYPE req_total counter
req_total{ep="/a",code="500"} 1
req_total{ep="/x",code="200"} 2
# HELP temp A gauge.
# TYPE temp gauge
temp 1.5
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{ep="q\"\\",le="0.1"} 0
lat_seconds_bucket{ep="q\"\\",le="1"} 2
lat_seconds_bucket{ep="q\"\\",le="+Inf"} 3
lat_seconds_sum{ep="q\"\\"} 2.75
lat_seconds_count{ep="q\"\\"} 3
# HELP fn_gauge Computed.
# TYPE fn_gauge gauge
fn_gauge 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// parseExposition turns rendered text into "name{labels}" → value, failing
// on any malformed sample line.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestRuntimeMetrics asserts the go_*/process_* series registered by
// RegisterRuntimeMetrics are present and carry sane live values.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // rebinding must be harmless

	// Touch the allocator so the memstats series cannot be all-zero.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	m := parseExposition(t, b.String())

	positive := []string{
		"go_goroutines", "go_gomaxprocs",
		"go_memstats_alloc_bytes", "go_memstats_alloc_bytes_total",
		"go_memstats_sys_bytes", "go_memstats_heap_inuse_bytes",
		"go_memstats_heap_objects", "go_memstats_next_gc_bytes",
		"process_start_time_seconds", "process_uptime_seconds",
	}
	for _, name := range positive {
		v, ok := m[name]
		if !ok {
			t.Errorf("missing series %s", name)
		} else if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	// GC counters exist but may legitimately still be zero in a fresh process.
	for _, name := range []string{"go_gc_cycles_total", "go_gc_pause_seconds_total", "go_gc_cpu_fraction"} {
		if v, ok := m[name]; !ok {
			t.Errorf("missing series %s", name)
		} else if v < 0 {
			t.Errorf("%s = %v, want >= 0", name, v)
		}
	}

	if runtime.GOOS == "linux" {
		rss := m["process_resident_memory_bytes"]
		if rss < 1<<20 || rss > 1<<42 {
			t.Errorf("process_resident_memory_bytes = %v, want within (1MiB, 4TiB)", rss)
		}
		if m["process_virtual_memory_bytes"] < rss {
			t.Errorf("vsize %v < rss %v", m["process_virtual_memory_bytes"], rss)
		}
		if m["process_open_fds"] < 1 {
			t.Errorf("process_open_fds = %v, want >= 1", m["process_open_fds"])
		}
		if m["process_max_fds"] < m["process_open_fds"] {
			t.Errorf("max_fds %v < open_fds %v", m["process_max_fds"], m["process_open_fds"])
		}
		if m["process_num_threads"] < 1 {
			t.Errorf("process_num_threads = %v, want >= 1", m["process_num_threads"])
		}
		if v, ok := m["process_cpu_seconds_total"]; !ok || v < 0 {
			t.Errorf("process_cpu_seconds_total = %v, ok=%v", v, ok)
		}
	}
}
