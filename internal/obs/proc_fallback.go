//go:build !linux

package obs

// procStats mirrors the Linux sampler's shape on platforms without procfs;
// readProcStats always reports ok=false there, so RegisterRuntimeMetrics
// skips the process_* series that would have no source.
type procStats struct {
	rssBytes   float64
	vsizeBytes float64
	cpuSeconds float64
	openFDs    float64
	maxFDs     float64
	threads    float64
}

// readProcStats reports that no OS process sampler is available.
func readProcStats() (procStats, bool) { return procStats{}, false }
