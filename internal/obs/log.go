package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogOptions is the shared logging configuration every CLI exposes through
// the same flag pair, so operators configure vitaserve, vitagen, and
// vitacompact identically.
type LogOptions struct {
	Format string // "text" or "json"
	Level  string // "debug", "info", "warn", "error"
}

// RegisterLogFlags adds -log-format and -log-level to fs and returns the
// options they populate.
func RegisterLogFlags(fs *flag.FlagSet) *LogOptions {
	o := &LogOptions{}
	fs.StringVar(&o.Format, "log-format", "text", "log output format: text or json")
	fs.StringVar(&o.Level, "log-level", "info", "minimum log level: debug, info, warn, or error")
	return o
}

// Setup builds a slog.Logger writing to w per the options, installs it as
// the process default, and returns it. An unknown format or level is an
// error (and leaves the default logger untouched).
func (o *LogOptions) Setup(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(o.Level)
	if err != nil {
		return nil, err
	}
	hopts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(o.Format) {
	case "", "text":
		h = slog.NewTextHandler(w, hopts)
	case "json":
		h = slog.NewJSONHandler(w, hopts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", o.Format)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	return logger, nil
}

// ParseLevel maps a level name to its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}
