package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestQuantileHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty = %v, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty extrema: min=%v max=%v", h.Min(), h.Max())
	}
}

func TestQuantileHistogramSingleObservation(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.123)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	// With one observation min == max, so the [Min, Max] clamp makes every
	// quantile exact.
	for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.99, 1, 3} {
		if got := h.Quantile(q); got != 0.123 {
			t.Fatalf("Quantile(%v) = %v, want exactly 0.123", q, got)
		}
	}
}

func TestQuantileHistogramOutOfRangeValues(t *testing.T) {
	h := NewQuantileHistogram(1e-3, 10, 1.05)

	// Below the first bucket edge: clamped, and exact via the min clamp.
	h.Observe(1e-9)
	if got := h.Quantile(0.5); got != 1e-9 {
		t.Fatalf("underflow quantile = %v, want 1e-9", got)
	}

	// Above the top edge: the overflow bucket reports the exact max.
	h2 := NewQuantileHistogram(1e-3, 10, 1.05)
	h2.Observe(12345.0)
	if got := h2.Quantile(0.5); got != 12345.0 {
		t.Fatalf("overflow quantile = %v, want 12345", got)
	}

	// Negative and NaN observations count but report as the observed floor.
	h3 := NewQuantileHistogram(1e-3, 10, 1.05)
	h3.Observe(-5)
	h3.Observe(math.NaN())
	if h3.Count() != 2 {
		t.Fatalf("count = %d, want 2", h3.Count())
	}
}

// TestQuantileHistogramErrorBound checks the documented contract: for any
// quantile, the reported value is within √growth − 1 relative error of the
// exact rank statistic over the same observations.
func TestQuantileHistogramErrorBound(t *testing.T) {
	const n = 20000
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over [50µs, 5s], the realistic latency spread.
		v := math.Exp(math.Log(50e-6) + rng.Float64()*math.Log(5/50e-6))
		vals[i] = v
		h.Observe(v)
	}
	sort.Float64s(vals)

	bound := math.Sqrt(defQuantileGrowth) - 1 + 1e-12
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q*n)) - 1
		if rank < 0 {
			rank = 0
		}
		exact := vals[rank]
		got := h.Quantile(q)
		rel := math.Abs(got-exact) / exact
		if rel > bound {
			t.Errorf("Quantile(%v) = %v, exact %v: relative error %.4f > bound %.4f", q, got, exact, rel, bound)
		}
	}
	if got := h.Quantile(1); got != vals[n-1] {
		t.Errorf("Quantile(1) = %v, want exact max %v", got, vals[n-1])
	}
	if got := h.Max(); got != vals[n-1] {
		t.Errorf("Max = %v, want %v", got, vals[n-1])
	}
	if got := h.Min(); got != vals[0] {
		t.Errorf("Min = %v, want %v", got, vals[0])
	}
	wantMean := 0.0
	for _, v := range vals {
		wantMean += v
	}
	wantMean /= n
	if got := h.Mean(); math.Abs(got-wantMean)/wantMean > 1e-9 {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
}

func TestQuantileHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i+1) / 1e4)
				if i%256 == 0 {
					h.Quantile(0.99) // readers race writers by design
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	p50, p99, max := h.Quantile(0.5), h.Quantile(0.99), h.Max()
	if !(p50 <= p99 && p99 <= max) {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v max=%v", p50, p99, max)
	}
}

func TestQuantileHistogramBadLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for growth <= 1")
		}
	}()
	NewQuantileHistogram(1, 10, 1)
}
