// Package obs is Vita's observability layer: a lock-cheap metrics registry
// with Prometheus text exposition, shared structured-logging setup on
// log/slog, span trees for per-operator query tracing, and build-info
// stamping. It depends only on the standard library, so every other layer —
// storage, seglog, plan, serve, the CLIs — can instrument itself without
// import cycles or third-party baggage.
//
// The three concerns it bundles are the three signals a long-lived serving
// process needs:
//
//   - Metrics (metrics.go): Counter, Gauge, and fixed-bucket Histogram
//     series, optionally labeled (the *Vec variants) or computed on scrape
//     (the *Func variants, which read existing atomic counters so
//     instrumentation never double-counts). A Registry renders them all in
//     Prometheus text format — vitaserve's GET /metricsz.
//   - Logs (log.go): one flag pair (-log-format text|json, -log-level)
//     shared by every CLI, configuring the process-wide slog default.
//   - Traces (trace.go): Span trees recording per-operator rows, batches,
//     wall time, and block-pruning stats — the payload behind ?trace=1 and
//     the slow-query log — plus request-ID generation for log correlation.
//
// Most callers use the process-wide Default registry; tests that assert on
// exact series pass a fresh NewRegistry instead.
package obs

// std is the process-wide default registry — what vitaserve exposes at
// /metricsz and what package-level instrumentation (seglog) registers on.
var std = NewRegistry()

// Default returns the process-wide metrics registry.
func Default() *Registry { return std }
