package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency histogram layout (seconds): sub-ms
// cache-hit responses up through multi-second cold scans.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them in Prometheus text format.
// Registration is get-or-register: asking for an existing name with the same
// shape returns the existing metric (so two servers in one process share
// series); a name re-registered with a different type or label set panics —
// that is a programming error, not a runtime condition. The hot path (Inc,
// Add, Observe on an already-held metric) takes no registry locks at all.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry. Most code uses Default instead.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// family is one named metric: its metadata and its series (one per label
// combination; unlabeled metrics hold a single series under the empty key).
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string

	mu     sync.RWMutex
	series map[string]any // label-values key -> *Counter | *Gauge | *Histogram | funcSeries
	order  []string
}

// lookup returns the family for name, creating it with the given shape on
// first use and validating the shape on every later one.
func (r *Registry) lookup(name, help, typ string, labels []string) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.fams[name]; f == nil {
			f = &family{name: name, help: help, typ: typ, labels: labels, series: map[string]any{}}
			r.fams[name] = f
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d label(s), was %s with %d",
			name, typ, len(labels), f.typ, len(f.labels)))
	}
	return f
}

// child returns the series for one label-value combination, creating it with
// mk on first use. Combined label values are joined with \xff, which cannot
// appear in a well-formed label value.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s == nil {
		s = mk()
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// --- Counter ---

// Counter is a monotonically increasing integer series.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the series monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns the named unlabeled counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, "counter", nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on first
// use. Handlers resolve their series once at setup, not per request.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// CounterVec returns the named labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, "counter", labels)}
}

// --- Gauge ---

// Gauge is a float series that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the named unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge", nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec returns the named labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, "gauge", labels)}
}

// --- Func-backed series ---

// funcSeries is a series whose value is computed at scrape time — the bridge
// from existing atomic counters (cache stats, manifest generation) to the
// exposition without double-counting plumbing.
type funcSeries struct {
	mu sync.Mutex
	fn func() float64
}

func (s *funcSeries) value() float64 {
	s.mu.Lock()
	fn := s.fn
	s.mu.Unlock()
	return fn()
}

// registerFunc installs fn as the named series. Re-registering replaces the
// function — the latest binding wins, so a process that opens a second
// Dataset (tests, reloads) scrapes the live one.
func (r *Registry) registerFunc(name, help, typ string, fn func() float64) {
	f := r.lookup(name, help, typ, nil)
	s := f.child(nil, func() any { return &funcSeries{fn: fn} }).(*funcSeries)
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

// CounterFunc exposes fn as a counter evaluated at scrape time. fn must be
// monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "counter", fn)
}

// GaugeFunc exposes fn as a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "gauge", fn)
}

// --- Histogram ---

// Histogram counts observations into fixed buckets (cumulative `le` upper
// bounds in the exposition, like Prometheus client histograms) and tracks
// their sum. Observe is lock-free: one atomic add per observation plus a
// CAS-loop float add for the sum.
type Histogram struct {
	upper  []float64 // sorted bucket upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    Gauge
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Histogram returns the named unlabeled histogram with the given bucket
// upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.lookup(name, help, "histogram", nil)
	return f.child(nil, func() any { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.buckets) }).(*Histogram)
}

// HistogramVec returns the named labeled histogram family (nil buckets =
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, "histogram", labels), buckets: buckets}
}

// --- Exposition ---

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families in registration order and
// labeled series sorted by label values, so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, len(f.order))
	copy(keys, f.order)
	series := make([]any, 0, len(keys))
	for _, k := range keys {
		series = append(series, f.series[k])
	}
	f.mu.RUnlock()
	if len(series) == 0 {
		return
	}
	sort.Sort(&keyedSeries{keys: keys, series: series})

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for i, key := range keys {
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, "\xff")
		}
		switch s := series[i].(type) {
		case *Counter:
			writeSample(b, f.name, f.labels, values, "", "", float64(s.Value()))
		case *Gauge:
			writeSample(b, f.name, f.labels, values, "", "", s.Value())
		case *funcSeries:
			writeSample(b, f.name, f.labels, values, "", "", s.value())
		case *Histogram:
			var cum uint64
			for j, upper := range s.upper {
				cum += s.counts[j].Load()
				writeSample(b, f.name+"_bucket", f.labels, values, "le", formatFloat(upper), float64(cum))
			}
			cum += s.counts[len(s.upper)].Load()
			writeSample(b, f.name+"_bucket", f.labels, values, "le", "+Inf", float64(cum))
			writeSample(b, f.name+"_sum", f.labels, values, "", "", s.Sum())
			writeSample(b, f.name+"_count", f.labels, values, "", "", float64(cum))
		}
	}
}

// keyedSeries sorts label keys and their series in lockstep.
type keyedSeries struct {
	keys   []string
	series []any
}

func (k *keyedSeries) Len() int           { return len(k.keys) }
func (k *keyedSeries) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k *keyedSeries) Swap(i, j int) {
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
	k.series[i], k.series[j] = k.series[j], k.series[i]
}

// writeSample renders one exposition line, appending an extra label (the
// histogram's le) when given.
func writeSample(b *strings.Builder, name string, labels, values []string, extraK, extraV string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraK != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraK)
			b.WriteString(`="`)
			b.WriteString(extraV)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
