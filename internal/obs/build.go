package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Version and Commit identify the build; release builds stamp them with
//
//	go build -ldflags "-X vita/internal/obs.Version=v1.2.3 -X vita/internal/obs.Commit=abc1234"
//
// Unstamped builds report "dev" and whatever VCS revision the Go toolchain
// embedded, if any.
var (
	Version = "dev"
	Commit  = ""
)

var startTime = time.Now()

// BuildInfo describes the running binary.
type BuildInfo struct {
	Version string `json:"version"`
	Commit  string `json:"commit"`
	Go      string `json:"go"`
}

// Build returns the binary's version, commit, and Go toolchain version,
// falling back to the VCS revision embedded by the Go toolchain when Commit
// was not stamped via ldflags.
func Build() BuildInfo {
	commit := Commit
	if commit == "" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					commit = s.Value
					if len(commit) > 12 {
						commit = commit[:12]
					}
					break
				}
			}
		}
	}
	if commit == "" {
		commit = "unknown"
	}
	return BuildInfo{Version: Version, Commit: commit, Go: runtime.Version()}
}

// Uptime returns how long the process has been running.
func Uptime() time.Duration { return time.Since(startTime) }

// RegisterBuildInfo exposes the vita_build_info gauge (constant 1 with
// version/commit/go labels) on r — the standard Prometheus idiom for joining
// build metadata onto other series.
func RegisterBuildInfo(r *Registry) {
	b := Build()
	r.GaugeVec("vita_build_info", "Build metadata; value is always 1.",
		"version", "commit", "go").With(b.Version, b.Commit, b.Go).Set(1)
}
