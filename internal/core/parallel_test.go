package core

import (
	"bytes"
	"fmt"
	"testing"

	"vita/internal/storage"
)

// TestParallelismByteIdenticalCSV is the pipeline-level reproducibility
// guarantee of sharded generation: for a fixed seed, every Parallelism value
// must serialize to exactly the same trajectory and RSSI CSV bytes.
func TestParallelismByteIdenticalCSV(t *testing.T) {
	type output struct{ traj, rssi []byte }
	run := func(p int) output {
		t.Helper()
		ds := runPipeline(t, func(c *Config) {
			c.Parallelism = p
			c.Objects.ArrivalRate = 0.03        // mid-run births must not break ordering
			c.Positioning = PositioningConfig{} // generation layers only
		})
		var tb, rb bytes.Buffer
		if err := storage.WriteTrajectoryCSV(&tb, ds.Trajectories.All()); err != nil {
			t.Fatal(err)
		}
		if err := storage.WriteRSSICSV(&rb, ds.RSSI.All()); err != nil {
			t.Fatal(err)
		}
		if tb.Len() == 0 || rb.Len() == 0 {
			t.Fatal("empty CSV output")
		}
		return output{traj: tb.Bytes(), rssi: rb.Bytes()}
	}

	base := run(1)
	for _, p := range []int{2, 8} {
		p := p
		t.Run(fmt.Sprintf("parallelism=%d", p), func(t *testing.T) {
			got := run(p)
			if !bytes.Equal(got.traj, base.traj) {
				t.Errorf("trajectory CSV differs from sequential output (%d vs %d bytes)",
					len(got.traj), len(base.traj))
			}
			if !bytes.Equal(got.rssi, base.rssi) {
				t.Errorf("RSSI CSV differs from sequential output (%d vs %d bytes)",
					len(got.rssi), len(base.rssi))
			}
		})
	}
}

// TestParallelismFullPipelineDeterminism runs the positioning layer too: the
// derived estimates must also be identical, since every stage draws from
// streams keyed only by the seed.
func TestParallelismFullPipelineDeterminism(t *testing.T) {
	run := func(p int) *Dataset {
		return runPipeline(t, func(c *Config) { c.Parallelism = p })
	}
	a, b := run(1), run(4)
	if a.Trajectories.Len() != b.Trajectories.Len() {
		t.Fatalf("trajectory counts differ: %d vs %d", a.Trajectories.Len(), b.Trajectories.Len())
	}
	am, bm := a.RSSI.All(), b.RSSI.All()
	if len(am) != len(bm) {
		t.Fatalf("RSSI counts differ: %d vs %d", len(am), len(bm))
	}
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("RSSI measurement %d differs: %+v vs %+v", i, am[i], bm[i])
		}
	}
	ae, be := a.Estimates.All(), b.Estimates.All()
	if len(ae) != len(be) {
		t.Fatalf("estimate counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("estimate %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

// TestPipelineAppendsTimeSorted pins the collector-to-storage contract: the
// pipeline's appends arrive in time order, so the store never needs a repair
// sort.
func TestPipelineAppendsTimeSorted(t *testing.T) {
	ds := runPipeline(t, func(c *Config) { c.Parallelism = 4 })
	if n := ds.Trajectories.Unsorted(); n != 0 {
		t.Errorf("%d objects landed out of time order in the store", n)
	}
}

func TestNewPipelineRejectsNegativeParallelism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = -1
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("negative parallelism accepted")
	}
}
