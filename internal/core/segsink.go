package core

import (
	"errors"
	"os"
	"path/filepath"

	"vita/internal/colstore"
	"vita/internal/positioning"
	"vita/internal/rssi"
	"vita/internal/seglog"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// SegmentedDirSink writes a run's bulk outputs as live segment logs instead
// of flat files: dir/seglog/trajectory and dir/seglog/rssi each hold rolling
// VTB segments under a manifest (internal/seglog), so a query daemon can
// serve the dataset while generation is still appending — every sealed
// segment is immediately visible to manifest readers, and a crash costs at
// most the segment being filled. Derived tables (estimates, proximity) still
// land as CSV in dir at Close, exactly like DirSink. The bulk format is
// necessarily VTB; segment logs have no CSV form.
type SegmentedDirSink struct {
	dir  string
	traj *seglog.Writer[trajectory.Sample]
	rssi *seglog.Writer[rssi.Measurement]

	estimates []positioning.Estimate
	proximity []positioning.ProximityRecord
}

// TrajectoryLogDir returns the trajectory segment log directory under a
// dataset directory — the layout contract between SegmentedDirSink and
// serve.Open.
func TrajectoryLogDir(dir string) string { return filepath.Join(dir, "seglog", "trajectory") }

// RSSILogDir returns the RSSI segment log directory under a dataset
// directory.
func RSSILogDir(dir string) string { return filepath.Join(dir, "seglog", "rssi") }

// NewSegmentedDirSink creates (or resumes) the segment logs under dir and
// opens rolling writers for the bulk outputs. opts applies to both logs —
// roll thresholds and block encoding.
func NewSegmentedDirSink(dir string, opts seglog.WriterOptions) (*SegmentedDirSink, error) {
	trajLog, err := seglog.OpenOrCreate(TrajectoryLogDir(dir), colstore.KindTrajectory)
	if err != nil {
		return nil, err
	}
	rssiLog, err := seglog.OpenOrCreate(RSSILogDir(dir), colstore.KindRSSI)
	if err != nil {
		return nil, err
	}
	s := &SegmentedDirSink{dir: dir}
	if s.traj, err = seglog.NewTrajectoryWriter(trajLog, opts); err != nil {
		return nil, err
	}
	if s.rssi, err = seglog.NewRSSIWriter(rssiLog, opts); err != nil {
		s.traj.Abort()
		return nil, err
	}
	return s, nil
}

// Dir returns the dataset directory.
func (s *SegmentedDirSink) Dir() string { return s.dir }

// Format returns the bulk output format — always VTB for segment logs.
func (s *SegmentedDirSink) Format() storage.Format { return storage.FormatVTB }

// TrajectorySegments returns how many trajectory segments have sealed.
func (s *SegmentedDirSink) TrajectorySegments() int { return s.traj.Segments() }

// RSSISegments returns how many RSSI segments have sealed.
func (s *SegmentedDirSink) RSSISegments() int { return s.rssi.Segments() }

// Trajectory implements Sink.
func (s *SegmentedDirSink) Trajectory(sm trajectory.Sample) error { return s.traj.Write(sm) }

// RSSI implements Sink.
func (s *SegmentedDirSink) RSSI(m rssi.Measurement) error { return s.rssi.Write(m) }

// Estimates implements Sink; the table is written at Close, and only when
// non-empty.
func (s *SegmentedDirSink) Estimates(es []positioning.Estimate) error {
	s.estimates = es
	return nil
}

// Proximity implements Sink; the table is written at Close, and only when
// non-empty.
func (s *SegmentedDirSink) Proximity(rs []positioning.ProximityRecord) error {
	s.proximity = rs
	return nil
}

// Close seals the final segments and materializes the derived CSV tables.
func (s *SegmentedDirSink) Close() error {
	var errs []error
	errs = append(errs, s.traj.Close(), s.rssi.Close())
	if len(s.estimates) > 0 {
		errs = append(errs, writeFileWith(filepath.Join(s.dir, "estimates.csv"), func(f *os.File) error {
			return storage.WriteEstimateCSV(f, s.estimates)
		}))
	}
	if len(s.proximity) > 0 {
		errs = append(errs, writeFileWith(filepath.Join(s.dir, "proximity.csv"), func(f *os.File) error {
			return storage.WriteProximityCSV(f, s.proximity)
		}))
	}
	return errors.Join(errs...)
}

// Discard abandons a failed run the segment-log way: the segments being
// filled are dropped, the sealed prefix stays — the logs remain consistent,
// holding exactly the data that committed before the failure. Call it
// instead of Close, never after.
func (s *SegmentedDirSink) Discard() error {
	return errors.Join(s.traj.Abort(), s.rssi.Abort())
}
