package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"vita/internal/colstore"
	"vita/internal/positioning"
	"vita/internal/rssi"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// Sink receives a run's data products as the pipeline produces them, record
// by record, so a sink can persist a run of any size without the pipeline
// buffering output for it. Trajectory samples arrive in global time order
// (straight from the generation layer's merge collector); RSSI measurements
// arrive grouped by ascending object ID, time-ordered per object and device
// within each group (the replay order of the RSSI generator, and the same
// order the batch CSV path always used). The small derived tables
// (estimates, proximity) arrive once, after the positioning layer.
//
// The pipeline never calls Close; the caller that created the sink closes it
// after RunTo returns, which is what flushes footers and buffers.
type Sink interface {
	// Trajectory receives one ground-truth sample; calls are serialized.
	Trajectory(s trajectory.Sample) error
	// RSSI receives one raw measurement; calls are serialized.
	RSSI(m rssi.Measurement) error
	// Estimates receives the positioning output (possibly empty).
	Estimates(es []positioning.Estimate) error
	// Proximity receives the proximity output (possibly empty).
	Proximity(rs []positioning.ProximityRecord) error
	// Close flushes and releases everything the sink holds.
	Close() error
}

// recordWriter is the streaming shape shared by the CSV and VTB trajectory
// writers (and, with its own record type, the RSSI ones).
type recordWriter[T any] interface {
	Write(T) error
	Close() error
}

// DirSink writes a run's data products into a directory, as
// trajectory.<ext> and rssi.<ext> in the chosen bulk format plus
// estimates.csv and proximity.csv (derived tables stay CSV: they are small,
// and the text form is what the evaluation tooling consumes). Because the
// bulk rows stream straight off the pipeline, the trajectory file carries
// global time order (ties by object ID) — the order that makes VTB zone
// maps maximally selective for time-window scans — while the RSSI file is
// object-grouped, which instead makes object-ID pruning sharp.
type DirSink struct {
	dir    string
	format storage.Format

	trajFile, rssiFile *os.File
	traj               recordWriter[trajectory.Sample]
	rssi               recordWriter[rssi.Measurement]

	estimates []positioning.Estimate
	proximity []positioning.ProximityRecord
}

// NewDirSink creates dir (if needed) and opens streaming writers for the
// bulk outputs in the given format.
func NewDirSink(dir string, format storage.Format) (*DirSink, error) {
	return NewDirSinkOptions(dir, format, colstore.Options{})
}

// NewDirSinkOptions is NewDirSink with explicit VTB block options (codec,
// block size). The options only apply when format is FormatVTB; CSV output
// ignores them.
func NewDirSinkOptions(dir string, format storage.Format, block colstore.Options) (*DirSink, error) {
	switch format {
	case storage.FormatCSV, storage.FormatVTB:
	default:
		return nil, fmt.Errorf("core: unknown sink format %q", format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &DirSink{dir: dir, format: format}
	var err error
	if s.trajFile, err = os.Create(filepath.Join(dir, "trajectory"+format.Ext())); err != nil {
		return nil, err
	}
	if s.rssiFile, err = os.Create(filepath.Join(dir, "rssi"+format.Ext())); err != nil {
		s.trajFile.Close()
		return nil, err
	}
	if format == storage.FormatVTB {
		s.traj = colstore.NewTrajectoryWriterOptions(s.trajFile, block)
		s.rssi = colstore.NewRSSIWriterOptions(s.rssiFile, block)
	} else {
		if s.traj, err = storage.NewTrajectoryCSVWriter(s.trajFile); err == nil {
			s.rssi, err = storage.NewRSSICSVWriter(s.rssiFile)
		}
		if err != nil {
			s.trajFile.Close()
			s.rssiFile.Close()
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the output directory.
func (s *DirSink) Dir() string { return s.dir }

// Format returns the bulk output format.
func (s *DirSink) Format() storage.Format { return s.format }

// Trajectory implements Sink.
func (s *DirSink) Trajectory(sm trajectory.Sample) error { return s.traj.Write(sm) }

// RSSI implements Sink.
func (s *DirSink) RSSI(m rssi.Measurement) error { return s.rssi.Write(m) }

// Estimates implements Sink; the table is written at Close, and only when
// non-empty.
func (s *DirSink) Estimates(es []positioning.Estimate) error {
	s.estimates = es
	return nil
}

// Proximity implements Sink; the table is written at Close, and only when
// non-empty.
func (s *DirSink) Proximity(rs []positioning.ProximityRecord) error {
	s.proximity = rs
	return nil
}

// Close flushes the bulk writers (for VTB this writes the footer index) and
// materializes the derived CSV tables.
func (s *DirSink) Close() error {
	var errs []error
	errs = append(errs, s.traj.Close(), s.trajFile.Close())
	errs = append(errs, s.rssi.Close(), s.rssiFile.Close())
	if len(s.estimates) > 0 {
		errs = append(errs, writeFileWith(filepath.Join(s.dir, "estimates.csv"), func(f *os.File) error {
			return storage.WriteEstimateCSV(f, s.estimates)
		}))
	}
	if len(s.proximity) > 0 {
		errs = append(errs, writeFileWith(filepath.Join(s.dir, "proximity.csv"), func(f *os.File) error {
			return storage.WriteProximityCSV(f, s.proximity)
		}))
	}
	return errors.Join(errs...)
}

// Discard abandons a failed run: it closes the underlying files without
// flushing guarantees and removes the bulk outputs, so a truncated
// trajectory/rssi file (a VTB file without its footer, say) cannot shadow
// valid data from an earlier run. Call it instead of Close, never after.
func (s *DirSink) Discard() error {
	s.traj.Close()
	s.trajFile.Close()
	s.rssi.Close()
	s.rssiFile.Close()
	return errors.Join(
		os.Remove(s.trajFile.Name()),
		os.Remove(s.rssiFile.Name()),
	)
}

func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
