package core

import (
	"fmt"
	"os"
	"runtime"
	"strings"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/model"
	"vita/internal/object"
	"vita/internal/positioning"
	"vita/internal/rng"
	"vita/internal/rssi"
	"vita/internal/storage"
	"vita/internal/topo"
	"vita/internal/trajectory"
)

// Dataset is everything one pipeline run produced, mirroring the data types
// of Figure 1: indoor environment data, positioning device data, raw
// trajectory data, raw RSSI data, and positioning data.
type Dataset struct {
	Building *model.Building
	Topo     *topo.Topology
	// DBIReport lists the data errors identified (and repaired) while
	// processing the DBI file.
	DBIReport *ifc.Report

	Devices      *storage.DeviceStore
	Trajectories *storage.TrajectoryStore
	RSSI         *storage.RSSIStore

	// Estimates holds trilateration / deterministic fingerprinting output.
	Estimates *storage.EstimateStore
	// ProbEstimates holds probabilistic fingerprinting output.
	ProbEstimates []positioning.ProbEstimate
	// Proximity holds proximity output.
	Proximity *storage.ProximityStore
	// RadioMap is the fingerprinting training data, when built.
	RadioMap *positioning.RadioMap

	TrajectoryStats trajectory.Stats
}

// Pipeline executes the three layers in order. Each controller is exposed so
// callers (and the examples) can also drive stages individually.
type Pipeline struct {
	cfg Config
}

// NewPipeline validates the configuration and returns a runnable pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Building.Source == "" {
		return nil, fmt.Errorf("core: config has no building source")
	}
	if cfg.Trajectory.Duration <= 0 {
		return nil, fmt.Errorf("core: config has non-positive duration")
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("core: negative parallelism")
	}
	return &Pipeline{cfg: cfg}, nil
}

// Parallelism returns the effective worker count of the run: the configured
// value, or GOMAXPROCS when unset.
func (p *Pipeline) Parallelism() int {
	if p.cfg.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.cfg.Parallelism
}

// Run executes the full pipeline: DBI processing, device deployment, object
// and trajectory generation, RSSI generation, and positioning.
func (p *Pipeline) Run() (*Dataset, error) {
	return p.RunTo(nil)
}

// RunTo executes the pipeline like Run while additionally streaming the data
// products into sink as they are produced: trajectory samples record by
// record in global time order (directly off the generation layer's merge
// collector, so a columnar writer sees them without the pipeline buffering
// for it), RSSI measurements record by record in the generator's
// object-grouped replay order, and the derived positioning tables once at
// the end. A nil sink is equivalent to Run. The caller owns sink and must
// Close it after RunTo returns; a sink error aborts the run.
func (p *Pipeline) RunTo(sink Sink) (*Dataset, error) {
	r := rng.New(p.cfg.Seed)
	ds := &Dataset{
		Trajectories: storage.NewTrajectoryStore(),
		RSSI:         storage.NewRSSIStore(),
		Estimates:    storage.NewEstimateStore(),
		Proximity:    storage.NewProximityStore(),
	}
	// The emit callbacks cannot return errors, so the first sink failure is
	// latched here and checked after each stage.
	var sinkErr error

	// ----- Infrastructure Layer -----
	env := IndoorEnvironmentController{Config: p.cfg.Building}
	topology, report, err := env.Load()
	if err != nil {
		return nil, err
	}
	ds.Topo = topology
	ds.Building = topology.B
	ds.DBIReport = report

	devCtl := PositioningDeviceController{Configs: p.cfg.Devices}
	devs, err := devCtl.Deploy(topology, r.Split())
	if err != nil {
		return nil, err
	}
	ds.Devices, err = storage.NewDeviceStore(devs)
	if err != nil {
		return nil, err
	}

	// ----- Moving Object Layer -----
	objCtl := MovingObjectController{
		Objects:     p.cfg.Objects,
		Trajectory:  p.cfg.Trajectory,
		Parallelism: p.Parallelism(),
	}
	emitTraj := ds.Trajectories.Append
	if sink != nil {
		emitTraj = func(s trajectory.Sample) {
			ds.Trajectories.Append(s)
			if sinkErr == nil {
				sinkErr = sink.Trajectory(s)
			}
		}
	}
	stats, err := objCtl.Generate(topology, r.Split(), emitTraj)
	if err != nil {
		return nil, err
	}
	if sinkErr != nil {
		return nil, fmt.Errorf("core: trajectory sink: %w", sinkErr)
	}
	ds.TrajectoryStats = stats

	// ----- Positioning Layer -----
	emitRSSI := ds.RSSI.Append
	if sink != nil {
		emitRSSI = func(m rssi.Measurement) {
			ds.RSSI.Append(m)
			if sinkErr == nil {
				sinkErr = sink.RSSI(m)
			}
		}
	}
	rssiCtl := RSSIMeasurementController{Config: p.cfg.RSSI, Parallelism: p.Parallelism()}
	if _, err := rssiCtl.Generate(topology, devs, ds.Trajectories.All(), r.Split(), emitRSSI); err != nil {
		return nil, err
	}
	if sinkErr != nil {
		return nil, fmt.Errorf("core: rssi sink: %w", sinkErr)
	}

	pmc := PositioningMethodController{Config: p.cfg.Positioning, RSSIModel: p.cfg.RSSI.model()}
	if err := pmc.Run(topology, devs, ds, r.Split()); err != nil {
		return nil, err
	}
	if sink != nil {
		if err := sink.Estimates(ds.Estimates.All()); err != nil {
			return nil, fmt.Errorf("core: estimates sink: %w", err)
		}
		if err := sink.Proximity(ds.Proximity.All()); err != nil {
			return nil, fmt.Errorf("core: proximity sink: %w", err)
		}
	}
	return ds, nil
}

// IndoorEnvironmentController loads and constructs the host indoor
// environment from a DBI source (paper §2, layer 1).
type IndoorEnvironmentController struct {
	Config BuildingConfig
}

// Load parses the DBI source and builds the topology.
func (c IndoorEnvironmentController) Load() (*topo.Topology, *ifc.Report, error) {
	src := c.Config.Source
	var text string
	switch {
	case src == "synthetic:office":
		text = ifc.OfficeIFC()
	case src == "synthetic:mall":
		text = ifc.MallIFC()
	case src == "synthetic:clinic":
		text = ifc.ClinicIFC()
	case strings.HasPrefix(src, "file:"):
		data, err := os.ReadFile(strings.TrimPrefix(src, "file:"))
		if err != nil {
			return nil, nil, fmt.Errorf("core: read DBI file: %w", err)
		}
		text = string(data)
	default:
		return nil, nil, fmt.Errorf("core: unknown building source %q", src)
	}

	f, err := ifc.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	b, report, err := ifc.Extract(f, ifc.DefaultExtractOptions())
	if err != nil {
		return nil, report, err
	}
	if err := c.applyObstacles(b); err != nil {
		return nil, report, err
	}
	if err := c.applyDoorDirections(b); err != nil {
		return nil, report, err
	}

	opts := topo.DefaultOptions()
	if c.Config.Decompose != nil && !*c.Config.Decompose {
		opts.Decompose = nil
	}
	if c.Config.MaxPartitionArea > 0 && opts.Decompose != nil {
		opts.Decompose.MaxArea = c.Config.MaxPartitionArea
	}
	topology, err := topo.Build(b, opts)
	if err != nil {
		return nil, report, err
	}
	return topology, report, nil
}

// applyObstacles deploys the configured obstacles onto their floors.
func (c IndoorEnvironmentController) applyObstacles(b *model.Building) error {
	for i, oc := range c.Config.Obstacles {
		f, ok := b.Floor(oc.Floor)
		if !ok {
			return fmt.Errorf("core: obstacle %d references unknown floor %d", i, oc.Floor)
		}
		poly := geom.Rect(oc.MinX, oc.MinY, oc.MaxX, oc.MaxY)
		if err := poly.Validate(); err != nil {
			return fmt.Errorf("core: obstacle %d: %w", i, err)
		}
		f.Obstacles = append(f.Obstacles, &model.Obstacle{
			ID:      fmt.Sprintf("user-obstacle-%d", i+1),
			Floor:   oc.Floor,
			Polygon: poly,
		})
	}
	return nil
}

// applyDoorDirections configures door directionality. It needs door
// connectivity, so it runs a ConnectDoors pass first (idempotent —
// topo.Build re-runs it after decomposition).
func (c IndoorEnvironmentController) applyDoorDirections(b *model.Building) error {
	if len(c.Config.OneWayDoors) == 0 {
		return nil
	}
	if err := topo.ConnectDoors(b); err != nil {
		return err
	}
	for _, ow := range c.Config.OneWayDoors {
		var door *model.Door
		for _, level := range b.FloorLevels() {
			for _, d := range b.Floors[level].Doors {
				if d.ID == ow.Door {
					door = d
				}
			}
		}
		if door == nil {
			return fmt.Errorf("core: one-way door %q not found", ow.Door)
		}
		switch {
		case rootOf(door.Partitions[0]) == ow.From && rootOf(door.Partitions[1]) == ow.To:
			door.Direction = model.AToB
		case rootOf(door.Partitions[1]) == ow.From && rootOf(door.Partitions[0]) == ow.To:
			door.Direction = model.BToA
		default:
			return fmt.Errorf("core: one-way door %q does not connect %q and %q (connects %v)",
				ow.Door, ow.From, ow.To, door.Partitions)
		}
	}
	return nil
}

func rootOf(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] == '.' {
			return id[:i]
		}
	}
	return id
}

// PositioningDeviceController deploys the configured positioning devices
// (paper §2, layer 1).
type PositioningDeviceController struct {
	Configs []DeviceConfig
}

// Deploy places every configured device batch.
func (c PositioningDeviceController) Deploy(t *topo.Topology, r *rng.Rand) ([]*device.Device, error) {
	var out []*device.Device
	for i, dc := range c.Configs {
		spec, err := dc.spec()
		if err != nil {
			return nil, fmt.Errorf("core: device config %d: %w", i, err)
		}
		devs, err := device.Deploy(t.B, dc.Floor, spec, r)
		if err != nil {
			return nil, fmt.Errorf("core: device config %d: %w", i, err)
		}
		out = append(out, devs...)
	}
	return out, nil
}

// MovingObjectController generates moving objects and raw trajectories
// (paper §2, layer 2).
type MovingObjectController struct {
	Objects    ObjectConfig
	Trajectory TrajectoryConfig
	// Parallelism shards objects across this many workers (0 = GOMAXPROCS);
	// output is identical for any value.
	Parallelism int
}

// Generate runs the movement engine, emitting samples to emit in global
// time order (the streaming collector's guarantee). With Parallelism > 1,
// emit may be called from worker goroutines, but never concurrently.
func (c MovingObjectController) Generate(t *topo.Topology, r *rng.Rand, emit func(trajectory.Sample)) (trajectory.Stats, error) {
	pattern, err := c.Objects.pattern()
	if err != nil {
		return trajectory.Stats{}, err
	}
	dist, err := c.Objects.distribution()
	if err != nil {
		return trajectory.Stats{}, err
	}
	spawnCfg := object.SpawnConfig{
		InitialCount:       c.Objects.Count,
		MinLifespan:        c.Objects.MinLifespan,
		MaxLifespan:        c.Objects.MaxLifespan,
		MaxSpeed:           c.Objects.MaxSpeed,
		Pattern:            pattern,
		Distribution:       dist,
		ArrivalRate:        c.Objects.ArrivalRate,
		EmergingPartitions: c.Objects.EmergingPartitions,
	}
	if spawnCfg.MinLifespan <= 0 {
		spawnCfg.MinLifespan = c.Trajectory.Duration / 2
	}
	if spawnCfg.MaxLifespan < spawnCfg.MinLifespan {
		spawnCfg.MaxLifespan = c.Trajectory.Duration
	}
	if spawnCfg.MaxSpeed <= 0 {
		spawnCfg.MaxSpeed = 1.5
	}
	sp, err := object.NewSpawner(t, spawnCfg)
	if err != nil {
		return trajectory.Stats{}, err
	}
	eng, err := trajectory.NewEngine(t, sp, trajectory.Config{
		Duration:       c.Trajectory.Duration,
		Tick:           c.Trajectory.Tick,
		SampleInterval: c.Trajectory.SampleInterval,
		Speed:          topo.DefaultSpeedModel(),
		Parallelism:    c.Parallelism,
	}, r)
	if err != nil {
		return trajectory.Stats{}, err
	}
	return eng.Run(emit)
}

// RSSIMeasurementController generates raw RSSI measurements (paper §2,
// layer 3).
type RSSIMeasurementController struct {
	Config RSSIConfig
	// Parallelism shards object replays across this many workers
	// (0 = GOMAXPROCS); output is identical for any value.
	Parallelism int
}

// Generate replays trajectories against devices.
func (c RSSIMeasurementController) Generate(t *topo.Topology, devs []*device.Device,
	samples []trajectory.Sample, r *rng.Rand, emit func(rssi.Measurement)) (int, error) {
	gen, err := rssi.NewGenerator(t, devs, rssi.Config{
		Model:          c.Config.model(),
		SampleInterval: c.Config.SampleInterval,
		Parallelism:    c.Parallelism,
	})
	if err != nil {
		return 0, err
	}
	return gen.Generate(samples, r, emit)
}

// PositioningMethodController derives positioning data from raw RSSI data
// with the chosen method (paper §2, layer 3).
type PositioningMethodController struct {
	Config    PositioningConfig
	RSSIModel rssi.PathLossModel
}

// Run fills the dataset's positioning outputs in place.
func (c PositioningMethodController) Run(t *topo.Topology, devs []*device.Device, ds *Dataset, r *rng.Rand) error {
	ms := ds.RSSI.All()
	switch c.Config.Method {
	case "":
		return nil // positioning step skipped
	case "trilateration":
		tr, err := positioning.NewTrilateration(t, devs, positioning.TrilaterationConfig{
			Convert:        positioning.DefaultConversion(c.RSSIModel),
			SampleInterval: c.Config.SampleInterval,
		})
		if err != nil {
			return err
		}
		est, err := tr.Estimate(ms)
		if err != nil {
			return err
		}
		ds.Estimates.Append(est...)
		return nil
	case "fingerprint", "fingerprinting":
		algo, err := c.Config.algorithm()
		if err != nil {
			return err
		}
		rm, err := positioning.BuildRadioMap(t, devs, positioning.RadioMapConfig{
			Spacing: c.Config.Spacing,
			Model:   c.RSSIModel,
		}, r)
		if err != nil {
			return err
		}
		ds.RadioMap = rm
		fp, err := positioning.NewFingerprinting(rm, devs, positioning.FingerprintConfig{
			Algorithm:      algo,
			K:              c.Config.K,
			SampleInterval: c.Config.SampleInterval,
		})
		if err != nil {
			return err
		}
		if algo == positioning.NaiveBayes {
			pe, err := fp.EstimateProbabilistic(ms)
			if err != nil {
				return err
			}
			ds.ProbEstimates = pe
			// Also materialize the argmax as deterministic records.
			est, err := fp.Estimate(ms)
			if err != nil {
				return err
			}
			ds.Estimates.Append(est...)
			return nil
		}
		est, err := fp.Estimate(ms)
		if err != nil {
			return err
		}
		ds.Estimates.Append(est...)
		return nil
	case "proximity":
		px, err := positioning.NewProximity(devs, positioning.ProximityConfig{})
		if err != nil {
			return err
		}
		recs, err := px.Records(ms)
		if err != nil {
			return err
		}
		ds.Proximity.Append(recs...)
		return nil
	default:
		return fmt.Errorf("core: unknown positioning method %q", c.Config.Method)
	}
}
