package core

import (
	"strings"
	"testing"
)

func runPipeline(t testing.TB, mutate func(*Config)) *Dataset {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Trajectory.Duration = 120
	cfg.Objects.Count = 10
	cfg.Objects.MinLifespan = 60
	cfg.Objects.MaxLifespan = 120
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatalf("new pipeline: %v", err)
	}
	ds, err := p.Run()
	if err != nil {
		t.Fatalf("run pipeline: %v", err)
	}
	return ds
}

func TestPipelineEndToEndFingerprint(t *testing.T) {
	ds := runPipeline(t, nil)
	if ds.Trajectories.Len() == 0 {
		t.Fatal("no trajectory samples generated")
	}
	if ds.RSSI.Len() == 0 {
		t.Fatal("no RSSI measurements generated")
	}
	if ds.Estimates.Len() == 0 {
		t.Fatal("no positioning estimates generated")
	}
	if ds.RadioMap == nil || len(ds.RadioMap.Refs) == 0 {
		t.Fatal("no radio map built")
	}
	stats, _ := EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
	if stats.N == 0 {
		t.Fatal("no estimates evaluated against ground truth")
	}
	if stats.Mean <= 0 || stats.Mean > 25 {
		t.Errorf("implausible fingerprinting mean error %.2fm", stats.Mean)
	}
}

func TestPipelineTrilateration(t *testing.T) {
	ds := runPipeline(t, func(c *Config) {
		c.Positioning = PositioningConfig{Method: "trilateration"}
		// Denser deployment so windows see >= 3 devices.
		c.Devices = []DeviceConfig{
			{Floor: 0, Model: "coverage", Type: "wifi", Count: 12},
			{Floor: 1, Model: "coverage", Type: "wifi", Count: 12},
		}
	})
	if ds.Estimates.Len() == 0 {
		t.Fatal("no trilateration estimates")
	}
	stats, _ := EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
	if stats.N == 0 || stats.Mean > 30 {
		t.Errorf("implausible trilateration error stats: %s", stats)
	}
}

func TestPipelineProximityRFID(t *testing.T) {
	ds := runPipeline(t, func(c *Config) {
		c.Positioning = PositioningConfig{Method: "proximity"}
		c.Devices = []DeviceConfig{
			{Floor: 0, Model: "check-point", Type: "rfid"},
			{Floor: 1, Model: "check-point", Type: "rfid"},
		}
	})
	if ds.Proximity.Len() == 0 {
		t.Fatal("no proximity records")
	}
	for _, r := range ds.Proximity.All() {
		if r.TE < r.TS {
			t.Fatalf("inverted detection period: %+v", r)
		}
	}
}

func TestPipelineProbabilisticFingerprint(t *testing.T) {
	ds := runPipeline(t, func(c *Config) {
		c.Positioning = PositioningConfig{Method: "fingerprint", Algorithm: "bayes", K: 5}
	})
	if len(ds.ProbEstimates) == 0 {
		t.Fatal("no probabilistic estimates")
	}
	for _, pe := range ds.ProbEstimates {
		var sum float64
		for _, c := range pe.Candidates {
			if c.Prob < 0 || c.Prob > 1.0001 {
				t.Fatalf("probability out of range: %v", c.Prob)
			}
			sum += c.Prob
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("probabilities sum to %.4f, want 1", sum)
		}
	}
}

func TestPipelineDeterminism(t *testing.T) {
	a := runPipeline(t, nil)
	b := runPipeline(t, nil)
	if a.Trajectories.Len() != b.Trajectories.Len() {
		t.Errorf("trajectory counts differ across identical runs: %d vs %d",
			a.Trajectories.Len(), b.Trajectories.Len())
	}
	if a.RSSI.Len() != b.RSSI.Len() {
		t.Errorf("RSSI counts differ: %d vs %d", a.RSSI.Len(), b.RSSI.Len())
	}
	as, bs := a.Trajectories.All(), b.Trajectories.All()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, as[i], bs[i])
		}
	}
}

func TestPipelineAllBuildings(t *testing.T) {
	for _, src := range []string{"synthetic:office", "synthetic:mall", "synthetic:clinic"} {
		src := src
		t.Run(src, func(t *testing.T) {
			ds := runPipeline(t, func(c *Config) {
				c.Building.Source = src
				c.Devices = []DeviceConfig{{Floor: 0, Model: "coverage", Type: "wifi", Count: 8}}
			})
			if ds.Trajectories.Len() == 0 {
				t.Errorf("%s: no samples", src)
			}
		})
	}
}

func TestLoadConfig(t *testing.T) {
	js := `{
		"seed": 7,
		"building": {"source": "synthetic:mall"},
		"objects": {"count": 5, "min_lifespan": 30, "max_lifespan": 60, "max_speed": 1.2,
		            "distribution": "crowd-outliers"},
		"trajectory": {"duration": 60},
		"positioning": {"method": "proximity"}
	}`
	cfg, err := LoadConfig(strings.NewReader(js))
	if err != nil {
		t.Fatalf("load config: %v", err)
	}
	if cfg.Seed != 7 || cfg.Building.Source != "synthetic:mall" {
		t.Errorf("config not applied: %+v", cfg)
	}
	if cfg.Objects.Distribution != "crowd-outliers" {
		t.Errorf("distribution not applied")
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Building.Source = ""
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("expected error for missing building source")
	}
	cfg = DefaultConfig()
	cfg.Trajectory.Duration = 0
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("expected error for zero duration")
	}
	cfg = DefaultConfig()
	cfg.Positioning.Method = "warp-drive"
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err == nil {
		t.Error("expected error for unknown positioning method")
	}
}
