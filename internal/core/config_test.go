package core

import (
	"testing"

	"vita/internal/object"
	"vita/internal/positioning"
	"vita/internal/topo"
)

func TestObjectConfigPattern(t *testing.T) {
	cases := []struct {
		in        ObjectConfig
		intention object.Intention
		routing   topo.Metric
		behavior  object.Behavior
		wantErr   bool
	}{
		{ObjectConfig{}, object.DestinationIntent, topo.MinDistance, object.WalkStay, false},
		{ObjectConfig{Intention: "random-way", Routing: "min-time", Behavior: "constant-walk"},
			object.RandomWayIntent, topo.MinTime, object.ConstantWalk, false},
		{ObjectConfig{Intention: "teleport"}, 0, 0, 0, true},
		{ObjectConfig{Routing: "warp"}, 0, 0, 0, true},
		{ObjectConfig{Behavior: "moonwalk"}, 0, 0, 0, true},
	}
	for i, c := range cases {
		p, err := c.in.pattern()
		if c.wantErr {
			if err == nil {
				t.Errorf("case %d: error expected", i)
			}
			continue
		}
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if p.Intention != c.intention || p.Routing != c.routing || p.Behavior != c.behavior {
			t.Errorf("case %d: pattern = %+v", i, p)
		}
	}
	// Stay bounds applied.
	p, err := ObjectConfig{MinStay: 5, MaxStay: 50}.pattern()
	if err != nil {
		t.Fatal(err)
	}
	if p.MinStay != 5 || p.MaxStay != 50 {
		t.Errorf("stay bounds not applied: %+v", p)
	}
}

func TestObjectConfigDistribution(t *testing.T) {
	if d, err := (ObjectConfig{}).distribution(); err != nil || d.Name() != "uniform" {
		t.Errorf("default distribution = %v, %v", d, err)
	}
	d, err := (ObjectConfig{Distribution: "crowd-outliers", CrowdFraction: 0.9}).distribution()
	if err != nil || d.Name() != "crowd-outliers" {
		t.Errorf("crowd-outliers = %v, %v", d, err)
	}
	if _, err := (ObjectConfig{Distribution: "bimodal"}).distribution(); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestRSSIConfigModel(t *testing.T) {
	m := RSSIConfig{}.model()
	if m.Exponent != 2.2 || !m.UseLineOfSight {
		t.Errorf("default model = %+v", m)
	}
	m = RSSIConfig{
		Exponent:           3,
		CalibrationA:       -50,
		WallLoss:           9,
		FluctuationSigma:   4,
		DisableLineOfSight: true,
		ConstantPenalty:    2,
	}.model()
	if m.Exponent != 3 || m.CalibrationA != -50 || m.WallLoss != 9 ||
		m.FluctuationSigma != 4 || m.UseLineOfSight || m.ConstantObstaclePenalty != 2 {
		t.Errorf("overrides not applied: %+v", m)
	}
}

func TestDeviceConfigSpec(t *testing.T) {
	spec, err := DeviceConfig{Model: "coverage", Type: "wifi", Count: 4}.spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Count != 4 || spec.Props != nil {
		t.Errorf("spec = %+v", spec)
	}
	spec, err = DeviceConfig{Model: "check-point", Type: "rfid", DetectionRange: 2, SampleInterval: 0.25}.spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Props == nil || spec.Props.DetectionRange != 2 || spec.Props.SampleInterval != 0.25 {
		t.Errorf("props overrides missing: %+v", spec.Props)
	}
	if _, err := (DeviceConfig{Model: "coverage", Type: "sonar"}).spec(); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := (DeviceConfig{Model: "scatter", Type: "wifi"}).spec(); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestPositioningConfigAlgorithm(t *testing.T) {
	if a, err := (PositioningConfig{}).algorithm(); err != nil || a != positioning.KNN {
		t.Errorf("default algorithm = %v, %v", a, err)
	}
	if a, err := (PositioningConfig{Algorithm: "bayes"}).algorithm(); err != nil || a != positioning.NaiveBayes {
		t.Errorf("bayes = %v, %v", a, err)
	}
	if _, err := (PositioningConfig{Algorithm: "svm"}).algorithm(); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestLoadConfigFromFileSource(t *testing.T) {
	// Building.Source = "file:..." path errors surface cleanly.
	env := IndoorEnvironmentController{Config: BuildingConfig{Source: "file:/nonexistent/x.ifc"}}
	if _, _, err := env.Load(); err == nil {
		t.Error("missing DBI file accepted")
	}
	env = IndoorEnvironmentController{Config: BuildingConfig{Source: "teleport:office"}}
	if _, _, err := env.Load(); err == nil {
		t.Error("unknown source accepted")
	}
}
