// Package core wires Vita's three-layer pipeline together (paper §2,
// Figures 1-2): the Interface (DBI Processor + Configuration Loader), the
// Producer with its five controllers (Indoor Environment, Positioning
// Device, Moving Object, RSSI Measurement, Positioning Method), and the
// Storage repositories the layers exchange data with.
package core

import (
	"encoding/json"
	"fmt"
	"io"

	"vita/internal/device"
	"vita/internal/object"
	"vita/internal/positioning"
	"vita/internal/rssi"
	"vita/internal/topo"
)

// Config is the user-editable generation configuration consumed by the
// Configuration Loader. Zero values select documented defaults so a minimal
// config runs end to end.
type Config struct {
	// Seed drives every random choice of the run; identical configs with
	// identical seeds produce identical data.
	Seed uint64 `json:"seed"`
	// Parallelism is the number of workers trajectory and RSSI generation
	// shard their objects across. 0 (the default) selects GOMAXPROCS, 1
	// runs fully sequentially. The produced data is byte-identical for any
	// value: every shard draws from an RNG stream derived deterministically
	// from the seed and the object ID.
	Parallelism int `json:"parallelism,omitempty"`

	Building    BuildingConfig    `json:"building"`
	Devices     []DeviceConfig    `json:"devices"`
	Objects     ObjectConfig      `json:"objects"`
	Trajectory  TrajectoryConfig  `json:"trajectory"`
	RSSI        RSSIConfig        `json:"rssi"`
	Positioning PositioningConfig `json:"positioning"`
}

// BuildingConfig selects and processes the host indoor environment.
type BuildingConfig struct {
	// Source is "synthetic:office", "synthetic:mall", "synthetic:clinic" or
	// "file:<path>" pointing at an IFC DBI file.
	Source string `json:"source"`
	// Decompose toggles irregular-partition decomposition (default on).
	Decompose *bool `json:"decompose,omitempty"`
	// MaxPartitionArea overrides the decomposition size threshold (m²).
	MaxPartitionArea float64 `json:"max_partition_area,omitempty"`
	// OneWayDoors restricts doors to one passing direction — the door
	// directionality customization of the Indoor Environment Controller
	// (paper §2).
	OneWayDoors []OneWayDoorConfig `json:"one_way_doors,omitempty"`
	// Obstacles deploys extra axis-aligned obstacles that block both
	// movement line-of-sight and radio line-of-sight (paper §2: "deploy
	// obstacles to further customize the host indoor environment").
	Obstacles []ObstacleConfig `json:"obstacles,omitempty"`
}

// OneWayDoorConfig restricts the named door so that movement is only
// possible from partition From to partition To (IDs as in the DBI file;
// decomposed children match their parent).
type OneWayDoorConfig struct {
	Door string `json:"door"`
	From string `json:"from"`
	To   string `json:"to"`
}

// ObstacleConfig is one axis-aligned rectangular obstacle.
type ObstacleConfig struct {
	Floor int     `json:"floor"`
	MinX  float64 `json:"min_x"`
	MinY  float64 `json:"min_y"`
	MaxX  float64 `json:"max_x"`
	MaxY  float64 `json:"max_y"`
}

// DeviceConfig deploys one batch of positioning devices on one floor.
type DeviceConfig struct {
	Floor int `json:"floor"`
	// Model is "coverage" or "check-point".
	Model string `json:"model"`
	// Type is "wifi", "bluetooth" or "rfid".
	Type string `json:"type"`
	// Count is the device budget (coverage requires it; check-point treats
	// it as a cap, 0 = unlimited).
	Count int `json:"count"`
	// DetectionRange/SampleInterval override the per-type defaults when > 0.
	DetectionRange float64 `json:"detection_range,omitempty"`
	SampleInterval float64 `json:"sample_interval,omitempty"`
}

// ObjectConfig configures the Moving Object Layer.
type ObjectConfig struct {
	Count       int     `json:"count"`
	MinLifespan float64 `json:"min_lifespan"`
	MaxLifespan float64 `json:"max_lifespan"`
	MaxSpeed    float64 `json:"max_speed"`
	// Distribution is "uniform" or "crowd-outliers".
	Distribution  string   `json:"distribution"`
	CrowdFraction float64  `json:"crowd_fraction,omitempty"`
	HotPartitions []string `json:"hot_partitions,omitempty"`
	// ArrivalRate is the Poisson rate (objects/s) of new objects.
	ArrivalRate        float64  `json:"arrival_rate,omitempty"`
	EmergingPartitions []string `json:"emerging_partitions,omitempty"`
	// Intention is "destination" or "random-way"; Routing is "min-distance"
	// or "min-time"; Behavior is "walk-stay" or "constant-walk".
	Intention string  `json:"intention,omitempty"`
	Routing   string  `json:"routing,omitempty"`
	Behavior  string  `json:"behavior,omitempty"`
	MinStay   float64 `json:"min_stay,omitempty"`
	MaxStay   float64 `json:"max_stay,omitempty"`
}

// TrajectoryConfig configures raw trajectory generation.
type TrajectoryConfig struct {
	Duration float64 `json:"duration"`
	Tick     float64 `json:"tick,omitempty"`
	// SampleInterval is the ground-truth sampling period (s).
	SampleInterval float64 `json:"sample_interval,omitempty"`
}

// RSSIConfig configures raw RSSI generation.
type RSSIConfig struct {
	Exponent         float64 `json:"exponent,omitempty"`
	CalibrationA     float64 `json:"calibration_a,omitempty"`
	WallLoss         float64 `json:"wall_loss,omitempty"`
	FluctuationSigma float64 `json:"fluctuation_sigma,omitempty"`
	// SampleInterval overrides every device's sampling period when > 0.
	SampleInterval float64 `json:"sample_interval,omitempty"`
	// DisableLineOfSight switches the obstacle term to a constant penalty.
	DisableLineOfSight bool    `json:"disable_line_of_sight,omitempty"`
	ConstantPenalty    float64 `json:"constant_penalty,omitempty"`
}

// PositioningConfig selects and configures the positioning method.
type PositioningConfig struct {
	// Method is "trilateration", "fingerprint" or "proximity"; empty skips
	// the positioning step.
	Method string `json:"method"`
	// SampleInterval is the positioning sampling period (s) — distinct from
	// the trajectory and RSSI frequencies (paper §2).
	SampleInterval float64 `json:"sample_interval,omitempty"`
	// Algorithm is "knn" or "bayes" (fingerprint only).
	Algorithm string `json:"algorithm,omitempty"`
	K         int    `json:"k,omitempty"`
	// Spacing is the radio-map reference grid spacing (fingerprint only).
	Spacing float64 `json:"spacing,omitempty"`
}

// DefaultConfig returns a runnable configuration: the synthetic office,
// Wi-Fi coverage deployment, 40 uniformly distributed objects, ten simulated
// minutes, fingerprinting with kNN.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		Building: BuildingConfig{Source: "synthetic:office"},
		Devices: []DeviceConfig{
			{Floor: 0, Model: "coverage", Type: "wifi", Count: 8},
			{Floor: 1, Model: "check-point", Type: "wifi", Count: 8},
		},
		Objects: ObjectConfig{
			Count:        40,
			MinLifespan:  300,
			MaxLifespan:  600,
			MaxSpeed:     1.6,
			Distribution: "uniform",
		},
		Trajectory:  TrajectoryConfig{Duration: 600, SampleInterval: 1},
		RSSI:        RSSIConfig{},
		Positioning: PositioningConfig{Method: "fingerprint", Algorithm: "knn"},
	}
}

// LoadConfig reads a JSON configuration (the Configuration Loader of the
// Interface component).
func LoadConfig(r io.Reader) (Config, error) {
	cfg := DefaultConfig()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("core: decode config: %w", err)
	}
	return cfg, nil
}

// --- translation helpers to the layer-specific configs ---

func (c ObjectConfig) pattern() (object.Pattern, error) {
	p := object.DefaultPattern()
	switch c.Intention {
	case "", "destination":
		p.Intention = object.DestinationIntent
	case "random-way":
		p.Intention = object.RandomWayIntent
	default:
		return p, fmt.Errorf("core: unknown intention %q", c.Intention)
	}
	switch c.Routing {
	case "", "min-distance":
		p.Routing = topo.MinDistance
	case "min-time":
		p.Routing = topo.MinTime
	default:
		return p, fmt.Errorf("core: unknown routing %q", c.Routing)
	}
	switch c.Behavior {
	case "", "walk-stay":
		p.Behavior = object.WalkStay
	case "constant-walk":
		p.Behavior = object.ConstantWalk
	default:
		return p, fmt.Errorf("core: unknown behavior %q", c.Behavior)
	}
	if c.MinStay > 0 {
		p.MinStay = c.MinStay
	}
	if c.MaxStay > 0 {
		p.MaxStay = c.MaxStay
	}
	return p, nil
}

func (c ObjectConfig) distribution() (object.Distribution, error) {
	switch c.Distribution {
	case "", "uniform":
		return object.Uniform{}, nil
	case "crowd-outliers":
		return object.CrowdOutliers{
			CrowdFraction: c.CrowdFraction,
			HotPartitions: c.HotPartitions,
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown distribution %q", c.Distribution)
	}
}

func (c RSSIConfig) model() rssi.PathLossModel {
	m := rssi.DefaultPathLossModel()
	if c.Exponent > 0 {
		m.Exponent = c.Exponent
	}
	if c.CalibrationA != 0 {
		m.CalibrationA = c.CalibrationA
	}
	if c.WallLoss > 0 {
		m.WallLoss = c.WallLoss
	}
	if c.FluctuationSigma > 0 {
		m.FluctuationSigma = c.FluctuationSigma
	}
	if c.DisableLineOfSight {
		m.UseLineOfSight = false
		m.ConstantObstaclePenalty = c.ConstantPenalty
	}
	return m
}

func (c DeviceConfig) spec() (device.DeploySpec, error) {
	typ, err := device.ParseType(c.Type)
	if err != nil {
		return device.DeploySpec{}, err
	}
	mdl, err := device.ParseDeploymentModel(c.Model)
	if err != nil {
		return device.DeploySpec{}, err
	}
	spec := device.DeploySpec{Model: mdl, Type: typ, Count: c.Count}
	if c.DetectionRange > 0 || c.SampleInterval > 0 {
		p := device.DefaultProperties(typ)
		if c.DetectionRange > 0 {
			p.DetectionRange = c.DetectionRange
		}
		if c.SampleInterval > 0 {
			p.SampleInterval = c.SampleInterval
		}
		spec.Props = &p
	}
	return spec, nil
}

func (c PositioningConfig) algorithm() (positioning.FingerprintAlgorithm, error) {
	switch c.Algorithm {
	case "", "knn":
		return positioning.KNN, nil
	case "bayes", "naive-bayes":
		return positioning.NaiveBayes, nil
	default:
		return 0, fmt.Errorf("core: unknown fingerprint algorithm %q", c.Algorithm)
	}
}
