package core

import (
	"fmt"
	"sort"

	"vita/internal/geom"
	"vita/internal/positioning"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// ErrorStats summarizes positioning error against the preserved ground
// truth — the evaluation use case motivating the toolkit (paper §1 purpose
// (2)).
type ErrorStats struct {
	N      int
	Mean   float64
	Median float64
	P95    float64
	Max    float64
}

// String implements fmt.Stringer.
func (s ErrorStats) String() string {
	return fmt.Sprintf("n=%d mean=%.2fm median=%.2fm p95=%.2fm max=%.2fm",
		s.N, s.Mean, s.Median, s.P95, s.Max)
}

// EvaluateEstimates compares positioning estimates against the raw
// trajectory ground truth: for each estimate, the true position at the
// estimate's timestamp is linearly interpolated from the trajectory samples
// and the Euclidean error taken. Estimates whose true floor differs from
// the estimated floor contribute the floor-mismatch count instead.
func EvaluateEstimates(truth *storage.TrajectoryStore, ests []positioning.Estimate) (ErrorStats, int) {
	var errs []float64
	floorMiss := 0
	for _, e := range ests {
		pt, floor, ok := truthAt(truth, e.ObjID, e.T)
		if !ok {
			continue
		}
		if floor != e.Loc.Floor {
			floorMiss++
			continue
		}
		errs = append(errs, pt.Dist(e.Loc.Point))
	}
	return summarize(errs), floorMiss
}

// PartitionHitRate returns the fraction of estimates whose partition (or its
// decomposition parent) matches the ground-truth partition — the symbolic
// accuracy notion used for proximity-grade data.
func PartitionHitRate(truth *storage.TrajectoryStore, ests []positioning.Estimate) float64 {
	if len(ests) == 0 {
		return 0
	}
	hits := 0
	for _, e := range ests {
		series := truth.Series(e.ObjID)
		if len(series) == 0 {
			continue
		}
		idx := sort.Search(len(series), func(i int) bool { return series[i].T >= e.T })
		if idx >= len(series) {
			idx = len(series) - 1
		}
		if sameOrParent(series[idx].Loc.Partition, e.Loc.Partition) {
			hits++
		}
	}
	return float64(hits) / float64(len(ests))
}

// sameOrParent treats decomposed siblings ("P.1", "P.2") as matching their
// parent and each other.
func sameOrParent(a, b string) bool {
	return root(a) == root(b)
}

func root(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] == '.' {
			return id[:i]
		}
	}
	return id
}

// truthAt interpolates the ground-truth position of an object at time t.
func truthAt(truth *storage.TrajectoryStore, objID int, t float64) (geom.Point, int, bool) {
	series := truth.Series(objID)
	if len(series) == 0 {
		return geom.Point{}, 0, false
	}
	idx := sort.Search(len(series), func(i int) bool { return series[i].T >= t })
	var a, b trajectory.Sample
	switch {
	case idx == 0:
		a, b = series[0], series[0]
	case idx >= len(series):
		a, b = series[len(series)-1], series[len(series)-1]
	default:
		a, b = series[idx-1], series[idx]
	}
	if a.Loc.Floor != b.Loc.Floor {
		if t-a.T <= b.T-t {
			b = a
		} else {
			a = b
		}
	}
	var frac float64
	if b.T > a.T {
		frac = (t - a.T) / (b.T - a.T)
	}
	return a.Loc.Point.Lerp(b.Loc.Point, frac), a.Loc.Floor, true
}

func summarize(errs []float64) ErrorStats {
	if len(errs) == 0 {
		return ErrorStats{}
	}
	sort.Float64s(errs)
	var sum float64
	for _, e := range errs {
		sum += e
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(errs)-1))
		return errs[i]
	}
	return ErrorStats{
		N:      len(errs),
		Mean:   sum / float64(len(errs)),
		Median: pct(0.5),
		P95:    pct(0.95),
		Max:    errs[len(errs)-1],
	}
}
