package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vita/internal/colstore"
	"vita/internal/positioning"
	"vita/internal/rssi"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// teeSink records the exact record streams a wrapped sink was fed, so tests
// can compare file contents against precisely what the writer saw (the
// trajectory stream arrives in global time order — not the (object, time)
// order of TrajectoryStore.All — and the RSSI stream in the generator's
// object-grouped order).
type teeSink struct {
	inner   Sink
	samples []trajectory.Sample
	ms      []rssi.Measurement
}

func (ts *teeSink) Trajectory(s trajectory.Sample) error {
	ts.samples = append(ts.samples, s)
	return ts.inner.Trajectory(s)
}

func (ts *teeSink) RSSI(m rssi.Measurement) error {
	ts.ms = append(ts.ms, m)
	return ts.inner.RSSI(m)
}

func (ts *teeSink) Estimates(es []positioning.Estimate) error        { return ts.inner.Estimates(es) }
func (ts *teeSink) Proximity(rs []positioning.ProximityRecord) error { return ts.inner.Proximity(rs) }
func (ts *teeSink) Close() error                                     { return ts.inner.Close() }

// runToDir runs the small test pipeline at parallelism p, streaming into a
// DirSink of the given format, and returns the recorded streams plus the
// sink dir.
func runToDir(t *testing.T, p int, format storage.Format) (*teeSink, string) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Trajectory.Duration = 120
	cfg.Objects.Count = 10
	cfg.Objects.MinLifespan = 60
	cfg.Objects.MaxLifespan = 120
	cfg.Parallelism = p
	cfg.Positioning = PositioningConfig{Method: "trilateration"}

	dir := t.TempDir()
	sink, err := NewDirSink(dir, format)
	if err != nil {
		t.Fatalf("new sink: %v", err)
	}
	tee := &teeSink{inner: sink}
	pl, err := NewPipeline(cfg)
	if err != nil {
		t.Fatalf("new pipeline: %v", err)
	}
	if _, err := pl.RunTo(tee); err != nil {
		t.Fatalf("run to sink: %v", err)
	}
	if err := tee.Close(); err != nil {
		t.Fatalf("close sink: %v", err)
	}
	return tee, dir
}

// TestDirSinkVTBLosslessParallel is the acceptance round trip: at
// parallelism 1 and 8 the streamed VTB files must decode to exactly the
// samples the writer was fed (bit-for-bit), and both parallelism settings
// must produce byte-identical files.
func TestDirSinkVTBLosslessParallel(t *testing.T) {
	dirs := map[int]string{}
	for _, p := range []int{1, 8} {
		tee, dir := runToDir(t, p, storage.FormatVTB)
		dirs[p] = dir

		r, err := colstore.OpenTrajectory(filepath.Join(dir, "trajectory.vtb"))
		if err != nil {
			t.Fatalf("p=%d: open trajectory.vtb: %v", p, err)
		}
		got, err := r.ReadAll()
		r.Close()
		if err != nil {
			t.Fatalf("p=%d: read trajectory.vtb: %v", p, err)
		}
		want := tee.samples
		if len(got) != len(want) || len(got) == 0 {
			t.Fatalf("p=%d: decoded %d samples, want %d (>0)", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("p=%d: sample %d differs after VTB round trip:\n got %+v\nwant %+v",
					p, i, got[i], want[i])
			}
		}

		rr, err := colstore.OpenRSSI(filepath.Join(dir, "rssi.vtb"))
		if err != nil {
			t.Fatalf("p=%d: open rssi.vtb: %v", p, err)
		}
		gotM, err := rr.ReadAll()
		rr.Close()
		if err != nil {
			t.Fatalf("p=%d: read rssi.vtb: %v", p, err)
		}
		wantM := tee.ms
		if len(gotM) != len(wantM) || len(gotM) == 0 {
			t.Fatalf("p=%d: decoded %d measurements, want %d (>0)", p, len(gotM), len(wantM))
		}
		for i := range gotM {
			if gotM[i] != wantM[i] {
				t.Fatalf("p=%d: measurement %d differs after VTB round trip:\n got %+v\nwant %+v",
					p, i, gotM[i], wantM[i])
			}
		}
	}

	for _, name := range []string{"trajectory.vtb", "rssi.vtb"} {
		a, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[8], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between parallelism 1 and 8 (%d vs %d bytes)", name, len(a), len(b))
		}
	}
}

// TestDirSinkCSVMatchesBatchWriters guarantees the streaming CSV sink
// matches the batch writers applied to the same record stream byte for
// byte (the stream is globally time-ordered, which is also the order the
// sink files carry).
func TestDirSinkCSVMatchesBatchWriters(t *testing.T) {
	tee, dir := runToDir(t, 4, storage.FormatCSV)

	var wantTraj bytes.Buffer
	if err := storage.WriteTrajectoryCSV(&wantTraj, tee.samples); err != nil {
		t.Fatal(err)
	}
	gotTraj, err := os.ReadFile(filepath.Join(dir, "trajectory.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTraj, wantTraj.Bytes()) {
		t.Errorf("streamed trajectory.csv differs from batch writer output")
	}

	var wantRSSI bytes.Buffer
	if err := storage.WriteRSSICSV(&wantRSSI, tee.ms); err != nil {
		t.Fatal(err)
	}
	gotRSSI, err := os.ReadFile(filepath.Join(dir, "rssi.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRSSI, wantRSSI.Bytes()) {
		t.Errorf("streamed rssi.csv differs from batch writer output")
	}

	// The positioning method ran, so the derived table must exist.
	if _, err := os.Stat(filepath.Join(dir, "estimates.csv")); err != nil {
		t.Errorf("estimates.csv missing: %v", err)
	}
}

// TestRunToSinkErrorAborts: a failing sink must abort the run with its
// error, not silently drop data.
func TestRunToSinkErrorAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trajectory.Duration = 60
	cfg.Objects.Count = 4
	cfg.Objects.MinLifespan = 30
	cfg.Objects.MaxLifespan = 60
	cfg.Positioning = PositioningConfig{}
	pl, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.RunTo(failingSink{}); err == nil {
		t.Fatal("RunTo with a failing sink succeeded")
	}
}

type failingSink struct{}

func (failingSink) Trajectory(trajectory.Sample) error { return fmt.Errorf("disk full") }
func (failingSink) RSSI(rssi.Measurement) error        { return fmt.Errorf("disk full") }
func (failingSink) Estimates([]positioning.Estimate) error {
	return nil
}
func (failingSink) Proximity([]positioning.ProximityRecord) error { return nil }
func (failingSink) Close() error                                  { return nil }

// TestDirSinkDiscardRemovesPartialOutputs: abandoning a failed run must not
// leave a footer-less VTB file behind to shadow valid data.
func TestDirSinkDiscardRemovesPartialOutputs(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirSink(dir, storage.FormatVTB)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Trajectory(trajectory.Sample{ObjID: 1, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Discard(); err != nil {
		t.Fatalf("discard: %v", err)
	}
	for _, name := range []string{"trajectory.vtb", "rssi.vtb"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s still exists after Discard (err=%v)", name, err)
		}
	}
}
