package core

import (
	"math"
	"testing"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/positioning"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

func truthStore() *storage.TrajectoryStore {
	s := storage.NewTrajectoryStore()
	// Object 1 walks from (0,0) to (10,0) over 10s on floor 0.
	for tt := 0.0; tt <= 10; tt++ {
		s.Append(trajectory.Sample{
			ObjID: 1,
			Loc:   model.At("b", 0, "P", geom.Pt(tt, 0)),
			T:     tt,
		})
	}
	return s
}

func TestEvaluateEstimatesInterpolates(t *testing.T) {
	s := truthStore()
	ests := []positioning.Estimate{
		// Exact hit at an interpolated instant: truth at t=2.5 is (2.5, 0).
		{ObjID: 1, Loc: model.At("b", 0, "P", geom.Pt(2.5, 0)), T: 2.5},
		// 3m error at t=7: truth (7,0), estimate (7,3).
		{ObjID: 1, Loc: model.At("b", 0, "P", geom.Pt(7, 3)), T: 7},
	}
	stats, floorMiss := EvaluateEstimates(s, ests)
	if floorMiss != 0 {
		t.Errorf("floor mismatches = %d", floorMiss)
	}
	if stats.N != 2 {
		t.Fatalf("N = %d", stats.N)
	}
	if math.Abs(stats.Mean-1.5) > 1e-9 {
		t.Errorf("mean = %v, want 1.5", stats.Mean)
	}
	if math.Abs(stats.Max-3) > 1e-9 {
		t.Errorf("max = %v, want 3", stats.Max)
	}
}

func TestEvaluateEstimatesFloorMismatch(t *testing.T) {
	s := truthStore()
	ests := []positioning.Estimate{
		{ObjID: 1, Loc: model.At("b", 1, "P", geom.Pt(5, 0)), T: 5},
	}
	stats, floorMiss := EvaluateEstimates(s, ests)
	if floorMiss != 1 || stats.N != 0 {
		t.Errorf("floorMiss=%d N=%d", floorMiss, stats.N)
	}
}

func TestEvaluateEstimatesUnknownObject(t *testing.T) {
	s := truthStore()
	ests := []positioning.Estimate{
		{ObjID: 42, Loc: model.At("b", 0, "P", geom.Pt(0, 0)), T: 1},
	}
	stats, _ := EvaluateEstimates(s, ests)
	if stats.N != 0 {
		t.Errorf("unknown object evaluated: N=%d", stats.N)
	}
}

func TestEvaluateEstimatesClampsOutsideTimeRange(t *testing.T) {
	s := truthStore()
	ests := []positioning.Estimate{
		{ObjID: 1, Loc: model.At("b", 0, "P", geom.Pt(0, 0)), T: -5},
		{ObjID: 1, Loc: model.At("b", 0, "P", geom.Pt(10, 0)), T: 99},
	}
	stats, _ := EvaluateEstimates(s, ests)
	if stats.N != 2 || stats.Max > 1e-9 {
		t.Errorf("clamped evaluation wrong: %+v", stats)
	}
}

func TestPartitionHitRateCollapsesChildren(t *testing.T) {
	s := storage.NewTrajectoryStore()
	s.Append(trajectory.Sample{ObjID: 1, Loc: model.At("b", 0, "P.1", geom.Pt(0, 0)), T: 0})
	ests := []positioning.Estimate{
		{ObjID: 1, Loc: model.At("b", 0, "P.2", geom.Pt(0, 0)), T: 0}, // sibling
		{ObjID: 1, Loc: model.At("b", 0, "Q", geom.Pt(0, 0)), T: 0},   // miss
	}
	if hr := PartitionHitRate(s, ests); math.Abs(hr-0.5) > 1e-9 {
		t.Errorf("hit rate = %v, want 0.5", hr)
	}
	if hr := PartitionHitRate(s, nil); hr != 0 {
		t.Errorf("empty estimates hit rate = %v", hr)
	}
}

func TestErrorStatsString(t *testing.T) {
	s := ErrorStats{N: 3, Mean: 1.5, Median: 1, P95: 2, Max: 3}
	if s.String() == "" {
		t.Error("empty ErrorStats string")
	}
}
