package core

import (
	"testing"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/topo"
)

// TestOneWayDoorConfig verifies the Indoor Environment Controller's door
// directionality customization (paper §2): a door restricted to
// room → hallway must not admit movement back into the room through it.
func TestOneWayDoorConfig(t *testing.T) {
	env := IndoorEnvironmentController{Config: BuildingConfig{
		Source: "synthetic:office",
		OneWayDoors: []OneWayDoorConfig{
			{Door: "F0-DS1", From: "F0-S1", To: "F0-HALL"},
		},
	}}
	topology, _, err := env.Load()
	if err != nil {
		t.Fatal(err)
	}
	var door *model.Door
	for _, d := range topology.B.Floors[0].Doors {
		if d.ID == "F0-DS1" {
			door = d
		}
	}
	if door == nil {
		t.Fatal("door missing")
	}
	if door.Direction == model.Both {
		t.Fatal("directionality not applied")
	}
	// Routing into the room must fail: F0-S1 has only that one door.
	from := model.At("office", 0, "", geom.Pt(2, 10)) // hallway
	to := model.At("office", 0, "", geom.Pt(12, 4))   // inside F0-S1
	if _, err := topology.Route(from, to, topo.MinDistance, topo.DefaultSpeedModel()); err == nil {
		t.Error("route into one-way room should fail")
	}
	// Routing out of the room must succeed.
	if _, err := topology.Route(to, from, topo.MinDistance, topo.DefaultSpeedModel()); err != nil {
		t.Errorf("route out of one-way room failed: %v", err)
	}
}

func TestOneWayDoorConfigErrors(t *testing.T) {
	cases := []BuildingConfig{
		{Source: "synthetic:office", OneWayDoors: []OneWayDoorConfig{
			{Door: "NOPE", From: "A", To: "B"}}},
		{Source: "synthetic:office", OneWayDoors: []OneWayDoorConfig{
			{Door: "F0-DS1", From: "F0-S9", To: "F0-HALL"}}},
	}
	for i, cfg := range cases {
		env := IndoorEnvironmentController{Config: cfg}
		if _, _, err := env.Load(); err == nil {
			t.Errorf("case %d: invalid one-way door accepted", i)
		}
	}
}

// TestObstacleConfig verifies user-deployed obstacles block radio line of
// sight (paper §2).
func TestObstacleConfig(t *testing.T) {
	plain := IndoorEnvironmentController{Config: BuildingConfig{Source: "synthetic:office"}}
	tpPlain, _, err := plain.Load()
	if err != nil {
		t.Fatal(err)
	}
	withObs := IndoorEnvironmentController{Config: BuildingConfig{
		Source: "synthetic:office",
		Obstacles: []ObstacleConfig{
			{Floor: 0, MinX: 17, MinY: 9, MaxX: 19, MaxY: 11},
		},
	}}
	tpObs, _, err := withObs.Load()
	if err != nil {
		t.Fatal(err)
	}
	a, b := geom.Pt(14, 10), geom.Pt(22, 10)
	if n := tpPlain.Crossings(0, a, b); n != 0 {
		t.Fatalf("baseline hallway path blocked: %d crossings", n)
	}
	if n := tpObs.Crossings(0, a, b); n == 0 {
		t.Error("user obstacle does not block line of sight")
	}
}

func TestObstacleConfigErrors(t *testing.T) {
	cases := []BuildingConfig{
		{Source: "synthetic:office", Obstacles: []ObstacleConfig{
			{Floor: 9, MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}},
		{Source: "synthetic:office", Obstacles: []ObstacleConfig{
			{Floor: 0, MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}}}, // zero area
	}
	for i, cfg := range cases {
		env := IndoorEnvironmentController{Config: cfg}
		if _, _, err := env.Load(); err == nil {
			t.Errorf("case %d: invalid obstacle accepted", i)
		}
	}
}

// TestObstacleAffectsPipelineRSSI runs the full pipeline with and without a
// large obstacle and checks the RSSI distribution shifts down.
func TestObstacleAffectsPipelineRSSI(t *testing.T) {
	mean := func(obst []ObstacleConfig) float64 {
		cfg := DefaultConfig()
		cfg.Trajectory.Duration = 60
		cfg.Objects.Count = 8
		cfg.Objects.MinLifespan = 60
		cfg.Objects.MaxLifespan = 60
		cfg.Building.Obstacles = obst
		cfg.Positioning.Method = ""
		p, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		n := 0
		for _, m := range ds.RSSI.All() {
			sum += m.RSSI
			n++
		}
		if n == 0 {
			t.Fatal("no RSSI rows")
		}
		return sum / float64(n)
	}
	clear := mean(nil)
	blocked := mean([]ObstacleConfig{
		{Floor: 0, MinX: 1, MinY: 8.5, MaxX: 39, MaxY: 11.5}, // wall down the hallway
	})
	if blocked >= clear {
		t.Errorf("obstacle did not weaken RSSI: clear=%.2f blocked=%.2f", clear, blocked)
	}
}
