package seglog

import (
	"os"
	"path/filepath"
	"testing"

	"vita/internal/colstore"
	"vita/internal/rssi"
)

func TestCompactMergesToGlobalOrder(t *testing.T) {
	samples := logSamples(500)
	l := writeLog(t, t.TempDir(), samples, 64)
	before := l.Snapshot()

	meta, err := NewCompactor(l, CompactorOptions{MinSegments: 2, Block: colstore.Options{BlockSize: 128}}).RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil {
		t.Fatal("compaction skipped above threshold")
	}
	man := l.Snapshot()
	if len(man.Segments) != 1 {
		t.Fatalf("post-compaction segments = %d, want 1", len(man.Segments))
	}
	if man.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", man.Compactions)
	}
	if man.Generation <= before.Generation {
		t.Fatalf("generation did not advance: %d -> %d", before.Generation, man.Generation)
	}
	if got := man.Segments[0]; got.Level != 1 || got.Rows != len(samples) {
		t.Fatalf("merged meta = %+v, want level 1 / %d rows", got, len(samples))
	}
	got := readLog(t, l)
	if len(got) != len(samples) {
		t.Fatalf("merged rows = %d, want %d", len(got), len(samples))
	}
	for i := range got {
		if !sampleEqual(got[i], samples[i]) {
			t.Fatalf("row %d out of order after merge", i)
		}
	}
	// Zone maps re-blocked into global time order never overlap in time.
	r, err := colstore.OpenTrajectory(l.SegmentPath(man.Segments[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	zones := r.Blocks()
	for i := 1; i < len(zones); i++ {
		if zones[i].T0 < zones[i-1].T1 {
			t.Fatalf("blocks %d/%d overlap in time: [%g,%g] then [%g,%g]",
				i-1, i, zones[i-1].T0, zones[i-1].T1, zones[i].T0, zones[i].T1)
		}
	}
	// Superseded files are gone (no readers held them).
	for _, m := range before.Segments {
		if _, err := os.Stat(l.SegmentPath(m)); !os.IsNotExist(err) {
			t.Errorf("superseded %s still on disk", m.File)
		}
	}
}

func TestCompactBelowThresholdIsNoop(t *testing.T) {
	l := writeLog(t, t.TempDir(), logSamples(100), 64)
	before := l.Snapshot()
	meta, err := NewCompactor(l, CompactorOptions{MinSegments: 4}).RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Fatal("compaction ran below threshold")
	}
	if got := l.Snapshot(); got.Generation != before.Generation {
		t.Fatal("no-op compaction advanced the generation")
	}
}

func TestCompactTombstonesUntilReadersDrain(t *testing.T) {
	l := writeLog(t, t.TempDir(), logSamples(300), 64)
	before := l.Snapshot()
	held := before.Segments[0]

	// A reader holds the first segment open (and registered) mid-compaction.
	r, err := colstore.OpenTrajectory(l.SegmentPath(held))
	if err != nil {
		t.Fatal(err)
	}
	l.RetainFiles(held.File)

	if _, err := NewCompactor(l, CompactorOptions{MinSegments: 2}).RunOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(l.SegmentPath(held)); err != nil {
		t.Fatal("held segment deleted before its reader drained")
	}
	// The reader still decodes its file byte-identically post-compaction.
	rows, err := r.ReadAll()
	if err != nil || len(rows) != held.Rows {
		t.Fatalf("held reader broken after compaction: %d rows, %v", len(rows), err)
	}
	r.Close()
	l.ReleaseFiles(held.File)
	if _, err := os.Stat(l.SegmentPath(held)); !os.IsNotExist(err) {
		t.Fatal("tombstoned segment survived the last release")
	}
}

func TestCompactCrashMidMergeLeavesLogIntact(t *testing.T) {
	dir := t.TempDir()
	samples := logSamples(300)
	l := writeLog(t, dir, samples, 64)
	before := l.Snapshot()

	// Simulate the compactor dying mid-merge: the half-built output exists
	// under its tmp name, the manifest untouched.
	id := l.reserveID()
	if err := os.WriteFile(filepath.Join(dir, segName(id)+".tmp"), []byte("half a segment"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh open sees the exact pre-crash snapshot, byte for byte.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := l2.Snapshot()
	if man.Generation != before.Generation || len(man.Segments) != len(before.Segments) {
		t.Fatalf("crash changed the manifest: %+v", man)
	}
	got := readLog(t, l2)
	for i := range got {
		if !sampleEqual(got[i], samples[i]) {
			t.Fatalf("row %d differs after crash", i)
		}
	}

	// Retrying the compaction (which sweeps first via the writer path, or
	// just overwrites the tmp) succeeds.
	if _, err := l2.SweepOrphans(); err != nil {
		t.Fatal(err)
	}
	meta, err := NewCompactor(l2, CompactorOptions{MinSegments: 2}).RunOnce()
	if err != nil || meta == nil {
		t.Fatalf("retry after crash failed: %+v, %v", meta, err)
	}
	if got := readLog(t, l2); len(got) != len(samples) {
		t.Fatalf("post-retry rows = %d, want %d", len(got), len(samples))
	}
}

func TestCompactAppendDuringMergeKeepsNewSegments(t *testing.T) {
	dir := t.TempDir()
	samples := logSamples(400)
	l := writeLog(t, dir, samples[:256], 64)

	c := NewCompactor(l, CompactorOptions{MinSegments: 2})
	w, err := NewTrajectoryWriter(l, WriterOptions{MaxSegmentRows: 1 << 30, Block: colstore.Options{BlockSize: 32}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[256:] {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	meta, err := c.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil {
		t.Fatal("compaction skipped")
	}
	// RunOnce snapshots at call time, so it merged everything here; the
	// mid-merge append case is the replaceSegments contract: segments not in
	// the removed set stay, in order. Exercise it directly.
	man := l.Snapshot()
	if len(man.Segments) != 1 || man.Segments[0].Rows != len(samples) {
		t.Fatalf("merged manifest = %+v", man.Segments)
	}
	got := readLog(t, l)
	for i := range got {
		if !sampleEqual(got[i], samples[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestReplaceSegmentsKeepsMidMergeAppends(t *testing.T) {
	l := writeLog(t, t.TempDir(), logSamples(300), 64) // 5 segments
	man := l.Snapshot()
	inputs := man.Segments[:3]

	// A writer appended segments 3,4 after the merge snapshotted 0..2.
	id := l.reserveID()
	added := SegmentMeta{ID: id, File: segName(id), Rows: 192, Level: 1}
	if err := os.WriteFile(l.SegmentPath(added), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.replaceSegments(inputs, added); err != nil {
		t.Fatal(err)
	}
	got := l.Snapshot().Segments
	if len(got) != 3 {
		t.Fatalf("segments = %d, want merged + 2 appends", len(got))
	}
	if got[0].ID != added.ID || got[1].ID != man.Segments[3].ID || got[2].ID != man.Segments[4].ID {
		t.Fatalf("order after replace: %v", got)
	}

	// Replacing segments that already left the manifest must fail loudly.
	if err := l.replaceSegments(inputs, added); err == nil {
		t.Fatal("stale replace succeeded")
	}
}

func TestCompactRSSIPreservesGroupOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, colstore.KindRSSI)
	if err != nil {
		t.Fatal(err)
	}
	ms := logMeasurements(400)
	w, err := NewRSSIWriter(l, WriterOptions{MaxSegmentRows: 96, Block: colstore.Options{BlockSize: 32}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(l.Snapshot().Segments); n < 2 {
		t.Fatalf("need multiple segments, got %d", n)
	}
	meta, err := NewCompactor(l, CompactorOptions{MinSegments: 2}).RunOnce()
	if err != nil || meta == nil {
		t.Fatalf("rssi compaction: %+v, %v", meta, err)
	}
	r, err := colstore.OpenRSSI(l.SegmentPath(l.Snapshot().Segments[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ms) {
		t.Fatalf("merged %d measurements, want %d", len(got), len(ms))
	}
	for i := range got {
		if !measurementEqual(got[i], ms[i]) {
			t.Fatalf("measurement %d differs: %+v vs %+v", i, got[i], ms[i])
		}
	}
}

// The package doc endorses a Writer and a Compactor coexisting in one
// process; reserveID must burn IDs so the compactor can never build its
// output under the name of the writer's in-progress segment.
func TestWriterAndCompactorReserveDistinctIDs(t *testing.T) {
	dir := t.TempDir()
	samples := logSamples(120)
	l, err := OpenOrCreate(dir, colstore.KindTrajectory)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewTrajectoryWriter(l, WriterOptions{MaxSegmentRows: 25, Block: colstore.Options{BlockSize: 8}})
	if err != nil {
		t.Fatal(err)
	}
	// Seal four segments, then leave a fifth in progress (its tmp file open).
	for _, s := range samples[:110] {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if w.f == nil {
		t.Fatal("expected an in-progress segment")
	}
	inProgress := w.id

	// Compact the sealed segments mid-write, in the same process.
	meta, err := NewCompactor(l, CompactorOptions{MinSegments: 2, Block: colstore.Options{BlockSize: 8}}).RunOnce()
	if err != nil || meta == nil {
		t.Fatalf("mid-write compaction: %+v, %v", meta, err)
	}
	if meta.ID == inProgress {
		t.Fatalf("compactor reused the writer's in-progress ID %d", inProgress)
	}

	// The writer's open segment survives the merge untouched.
	for _, s := range samples[110:] {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, m := range l.Snapshot().Segments {
		if seen[m.ID] {
			t.Fatalf("duplicate segment ID %d in manifest", m.ID)
		}
		seen[m.ID] = true
	}
	got := readLog(t, l)
	if len(got) != len(samples) {
		t.Fatalf("rows after concurrent merge = %d, want %d", len(got), len(samples))
	}
	for i := range got {
		if !sampleEqual(got[i], samples[i]) {
			t.Fatalf("row %d corrupted by concurrent merge", i)
		}
	}
}

func TestCompactorMinSegmentsFloor(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 4}, {-3, 4}, {1, 2}, {2, 2}, {7, 7},
	} {
		if got := (CompactorOptions{MinSegments: tc.in}).withDefaults().MinSegments; got != tc.want {
			t.Errorf("withDefaults(MinSegments=%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func measurementEqual(a, b rssi.Measurement) bool {
	return a.ObjID == b.ObjID && a.DeviceID == b.DeviceID && a.RSSI == b.RSSI && a.T == b.T
}
