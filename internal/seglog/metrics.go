package seglog

import "vita/internal/obs"

// The mutating paths report to the process-default registry: under the
// single-mutator rule the writer, compactor, and server share one process, so
// one registry sees the whole mutation story and vitaserve's /metricsz
// exposes it. Series are labelled by record kind where a log's kind matters.
var (
	metricSealed = obs.Default().CounterVec("vita_seglog_segments_sealed_total",
		"Segments sealed and committed to the manifest by writers.", "kind")
	metricCompactionRuns = obs.Default().CounterVec("vita_seglog_compaction_runs_total",
		"Completed compaction merges.", "kind")
	metricCompactionDur = obs.Default().HistogramVec("vita_seglog_compaction_duration_seconds",
		"Wall time of completed compaction merges.", nil, "kind")
	metricCompactionBytes = obs.Default().CounterVec("vita_seglog_compaction_bytes_merged_total",
		"Input bytes consumed by completed compaction merges.", "kind")
	metricCompactionErrs = obs.Default().Counter("vita_seglog_compaction_errors_total",
		"Compaction attempts that failed.")
	metricOrphansSwept = obs.Default().Counter("vita_seglog_orphans_swept_total",
		"Orphan segment files removed by crash-recovery sweeps.")
)
