package seglog

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// logSamples is a deterministic time-ordered stream (ties by object ID) —
// the order the generation pipeline delivers.
func logSamples(n int) []trajectory.Sample {
	var out []trajectory.Sample
	parts := []string{"lobby", "office-a", "corridor"}
	for t := 0; len(out) < n; t++ {
		for o := 0; o < 4 && len(out) < n; o++ {
			out = append(out, trajectory.Sample{
				ObjID: o,
				Loc: model.At("hq", o%2, parts[(o+t)%len(parts)],
					geom.Pt(float64((t*7+o)%30), float64((t*3+o)%15))),
				T: float64(t),
			})
		}
	}
	return out
}

// logMeasurements is a deterministic object-grouped stream — the order the
// RSSI generator replays.
func logMeasurements(n int) []rssi.Measurement {
	var out []rssi.Measurement
	for o := 0; len(out) < n; o++ {
		for t := 0; t < 7 && len(out) < n; t++ {
			out = append(out, rssi.Measurement{
				ObjID: o, DeviceID: "dev-" + string(rune('a'+t%3)),
				RSSI: -40 - float64((o*t)%30), T: float64(t),
			})
		}
	}
	return out
}

func sampleEqual(a, b trajectory.Sample) bool {
	return a.ObjID == b.ObjID && a.Loc == b.Loc &&
		math.Float64bits(a.T) == math.Float64bits(b.T)
}

// writeLog streams samples into a fresh trajectory log in dir, rolling every
// maxRows rows, and returns the log.
func writeLog(t *testing.T, dir string, samples []trajectory.Sample, maxRows int) *Log {
	t.Helper()
	l, err := OpenOrCreate(dir, colstore.KindTrajectory)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewTrajectoryWriter(l, WriterOptions{
		MaxSegmentRows: maxRows,
		Block:          colstore.Options{BlockSize: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return l
}

// readLog decodes every live segment in manifest order and concatenates.
func readLog(t *testing.T, l *Log) []trajectory.Sample {
	t.Helper()
	var out []trajectory.Sample
	for _, m := range l.Snapshot().Segments {
		r, err := colstore.OpenTrajectory(l.SegmentPath(m))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
		out = append(out, rows...)
	}
	return out
}

func TestWriterRollsAndRoundTrips(t *testing.T) {
	samples := logSamples(1000)
	l := writeLog(t, t.TempDir(), samples, 96)

	man := l.Snapshot()
	wantSegs := (len(samples) + 95) / 96
	if len(man.Segments) != wantSegs {
		t.Fatalf("segments = %d, want %d", len(man.Segments), wantSegs)
	}
	if man.Rows() != len(samples) {
		t.Fatalf("manifest rows = %d, want %d", man.Rows(), len(samples))
	}
	for i, m := range man.Segments {
		if m.Rows == 0 || m.Bytes == 0 {
			t.Fatalf("segment %d has empty meta: %+v", i, m)
		}
		if m.T0 > m.T1 {
			t.Fatalf("segment %d time span inverted: %+v", i, m)
		}
		if m.Level != 0 {
			t.Fatalf("fresh segment %d at level %d", i, m.Level)
		}
	}
	got := readLog(t, l)
	if len(got) != len(samples) {
		t.Fatalf("round trip %d rows, want %d", len(got), len(samples))
	}
	for i := range got {
		if !sampleEqual(got[i], samples[i]) {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, got[i], samples[i])
		}
	}
}

func TestWriterByteThresholdRolls(t *testing.T) {
	l, err := Create(t.TempDir(), colstore.KindTrajectory)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny blocks + tiny byte budget force a roll roughly every block.
	w, err := NewTrajectoryWriter(l, WriterOptions{
		MaxSegmentBytes: 1 << 10,
		Block:           colstore.Options{BlockSize: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range logSamples(400) {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(l.Snapshot().Segments); n < 2 {
		t.Fatalf("byte threshold never rolled: %d segments", n)
	}
}

func TestWriterResumesAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	samples := logSamples(300)
	writeLog(t, dir, samples[:150], 64)

	// A second process opens the same log and appends.
	l2, err := OpenOrCreate(dir, colstore.KindTrajectory)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewTrajectoryWriter(l2, WriterOptions{MaxSegmentRows: 64, Block: colstore.Options{BlockSize: 32}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[150:] {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	man := l2.Snapshot()
	seen := map[uint64]bool{}
	for _, m := range man.Segments {
		if seen[m.ID] {
			t.Fatalf("segment ID %d reused", m.ID)
		}
		seen[m.ID] = true
	}
	got := readLog(t, l2)
	if len(got) != len(samples) {
		t.Fatalf("resumed log holds %d rows, want %d", len(got), len(samples))
	}
	for i := range got {
		if !sampleEqual(got[i], samples[i]) {
			t.Fatalf("row %d mismatch after resume", i)
		}
	}
}

func TestOpenIgnoresCrashArtifacts(t *testing.T) {
	dir := t.TempDir()
	samples := logSamples(200)
	l := writeLog(t, dir, samples, 64)
	man := l.Snapshot()

	// Simulate a crash mid-mutation: a partial segment tmp, a fully written
	// but uncommitted segment, and a torn manifest tmp.
	if err := os.WriteFile(filepath.Join(dir, segName(99)+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, segName(98))
	if err := os.WriteFile(orphan, []byte("VTB1 but not really"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName+".tmp"), []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh reader recovers to the last consistent snapshot.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man2 := l2.Snapshot()
	if man2.Generation != man.Generation || len(man2.Segments) != len(man.Segments) {
		t.Fatalf("recovered manifest differs: gen %d/%d, %d/%d segments",
			man2.Generation, man.Generation, len(man2.Segments), len(man.Segments))
	}
	got := readLog(t, l2)
	if len(got) != len(samples) {
		t.Fatalf("recovered rows = %d, want %d", len(got), len(samples))
	}

	// The next mutator sweeps the artifacts.
	w, err := NewTrajectoryWriter(l2, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	for _, leftover := range []string{segName(99) + ".tmp", segName(98), ManifestName + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, leftover)); !os.IsNotExist(err) {
			t.Errorf("%s survived the sweep", leftover)
		}
	}
}

func TestWriterAbortKeepsSealedPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, colstore.KindTrajectory)
	if err != nil {
		t.Fatal(err)
	}
	samples := logSamples(150)
	w, err := NewTrajectoryWriter(l, WriterOptions{MaxSegmentRows: 64, Block: colstore.Options{BlockSize: 32}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	// 150 rows = 2 sealed segments + 22 rows in flight; Abort drops those.
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	got := readLog(t, l)
	if len(got) != 128 {
		t.Fatalf("aborted log holds %d rows, want the sealed 128", len(got))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("abort left %s behind", e.Name())
		}
	}
}

func TestKindMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, colstore.KindRSSI); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrajectoryWriter(l, WriterOptions{}); err == nil {
		t.Fatal("trajectory writer accepted an rssi log")
	}
	if _, err := OpenOrCreate(dir, colstore.KindTrajectory); err == nil {
		t.Fatal("OpenOrCreate accepted a kind mismatch")
	}
}
