package seglog

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"time"

	"vita/internal/colstore"
	"vita/internal/storage"
)

// CompactorOptions tunes background compaction.
type CompactorOptions struct {
	// MinSegments is how many live segments it takes before a merge runs
	// (default 4; the floor is 2 — merging one segment is a no-op).
	MinSegments int
	// Block tunes the VTB encoding of the merged segment.
	Block colstore.Options
	// DisableMmap forces pread for the merge's input readers.
	DisableMmap bool
	// OnError receives errors from the background Run loop (nil = dropped).
	// RunOnce returns errors directly and never calls it.
	OnError func(error)
}

func (o CompactorOptions) withDefaults() CompactorOptions {
	if o.MinSegments <= 0 {
		o.MinSegments = 4
	} else if o.MinSegments < 2 {
		o.MinSegments = 2
	}
	return o
}

// Compactor merges a log's accumulated small segments into one large segment
// re-blocked into global order — time order (ties by object) for trajectory
// logs, object-group order for RSSI logs — so zone maps tighten back up and
// scans touch one file instead of many. The merge never blocks readers or
// the writer: inputs are immutable, the output builds under a .tmp name, and
// the swap is one manifest commit. Superseded files are deleted only after
// in-process readers drain (tombstones); a compactor killed mid-merge leaves
// an orphan .tmp and an untouched manifest, so queries are byte-identical
// before and after the crash.
//
// A Compactor is a log mutator: run it in the writer's process or, under the
// single-mutator rule, as the log's only mutating process.
type Compactor struct {
	log  *Log
	opts CompactorOptions
}

// NewCompactor returns a compactor over l.
func NewCompactor(l *Log, opts CompactorOptions) *Compactor {
	return &Compactor{log: l, opts: opts.withDefaults()}
}

// RunOnce merges the current live segments into one if at least MinSegments
// are live, returning the merged segment's meta (nil when below threshold).
func (c *Compactor) RunOnce() (*SegmentMeta, error) {
	meta, err := c.runOnce()
	if err != nil {
		metricCompactionErrs.Inc()
		slog.Warn("compaction failed", "dir", c.log.dir, "error", err.Error())
	}
	return meta, err
}

func (c *Compactor) runOnce() (*SegmentMeta, error) {
	man := c.log.Snapshot()
	if len(man.Segments) < c.opts.MinSegments {
		return nil, nil
	}
	start := time.Now()
	inputs := man.Segments
	paths := make([]string, len(inputs))
	level := 0
	var inBytes int64
	for i, m := range inputs {
		paths[i] = c.log.SegmentPath(m)
		level = max(level, m.Level)
		inBytes += m.Bytes
	}

	id := c.log.reserveID()
	tmp := filepath.Join(c.log.dir, segName(id)+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	meta, err := c.merge(f, paths)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, filepath.Join(c.log.dir, segName(id))); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	st, err := os.Stat(filepath.Join(c.log.dir, segName(id)))
	if err != nil {
		return nil, err
	}
	meta.ID, meta.File, meta.Bytes, meta.Level = id, segName(id), st.Size(), level+1
	if err := c.log.replaceSegments(inputs, meta); err != nil {
		os.Remove(filepath.Join(c.log.dir, segName(id)))
		return nil, err
	}
	kind := c.log.kind.String()
	elapsed := time.Since(start)
	metricCompactionRuns.With(kind).Inc()
	metricCompactionDur.With(kind).Observe(elapsed.Seconds())
	metricCompactionBytes.With(kind).Add(inBytes)
	slog.Info("compaction",
		"kind", kind, "inputs", len(inputs), "segment", meta.ID, "level", meta.Level,
		"rows", meta.Rows, "bytes", meta.Bytes, "bytes_merged", inBytes,
		"duration_ms", elapsed.Milliseconds())
	return &meta, nil
}

// merge streams every input row through the k-way merged cursor into one
// fresh VTB stream, fsyncing before return. Inputs are opened with the
// Sequential hint: a compaction reads each file exactly once, front to back,
// and should not evict the serving path's hot pages.
func (c *Compactor) merge(f *os.File, paths []string) (SegmentMeta, error) {
	copts := storage.CursorOptions{DisableMmap: c.opts.DisableMmap, Sequential: true}
	meta := SegmentMeta{T0: math.Inf(1), T1: math.Inf(-1)}
	var err error
	switch c.log.kind {
	case colstore.KindTrajectory:
		var cur storage.TrajectoryCursor
		if cur, err = storage.OpenTrajectoryCursorMulti(paths, colstore.Predicate{}, copts); err != nil {
			return meta, err
		}
		w := colstore.NewTrajectoryWriterOptions(f, c.opts.Block)
		for cur.Next() {
			b := cur.Batch()
			for i := 0; i < b.Len(); i++ {
				if err := w.Write(b.Row(i)); err != nil {
					cur.Close()
					return meta, err
				}
			}
			meta.Rows += b.Len()
			meta.T0 = min(meta.T0, b.T[0])
			meta.T1 = max(meta.T1, b.T[b.Len()-1])
		}
		if err = cur.Close(); err == nil {
			err = w.Close()
		}
	case colstore.KindRSSI:
		var cur storage.RSSICursor
		if cur, err = storage.OpenRSSICursorMulti(paths, colstore.Predicate{}, copts); err != nil {
			return meta, err
		}
		w := colstore.NewRSSIWriterOptions(f, c.opts.Block)
		for cur.Next() {
			b := cur.Batch()
			for i := 0; i < b.Len(); i++ {
				if err := w.Write(b.Row(i)); err != nil {
					cur.Close()
					return meta, err
				}
			}
			meta.Rows += b.Len()
			for i := 0; i < b.Len(); i++ {
				meta.T0 = min(meta.T0, b.T[i])
				meta.T1 = max(meta.T1, b.T[i])
			}
		}
		if err = cur.Close(); err == nil {
			err = w.Close()
		}
	default:
		return meta, fmt.Errorf("seglog: cannot compact kind %s", c.log.kind)
	}
	if err != nil {
		return meta, err
	}
	if meta.Rows == 0 {
		meta.T0, meta.T1 = 0, 0
	}
	return meta, f.Sync()
}

// Run compacts every interval until ctx is cancelled, reporting errors to
// OnError and carrying on — a transient failure (disk full, say) should not
// end background maintenance.
func (c *Compactor) Run(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := c.RunOnce(); err != nil && c.opts.OnError != nil {
				c.opts.OnError(err)
			}
		}
	}
}
