package seglog

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	"vita/internal/colstore"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// WriterOptions tunes segment roll-over.
type WriterOptions struct {
	// MaxSegmentBytes rolls a segment once its on-disk size (measured at
	// block-flush granularity) reaches this many bytes (default 64 MiB).
	MaxSegmentBytes int64
	// MaxSegmentRows additionally rolls after this many rows (0 = no row
	// bound). Small row bounds are how tests and demos force multi-segment
	// logs out of tiny datasets.
	MaxSegmentRows int
	// Block tunes the VTB encoding inside each segment.
	Block colstore.Options
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	return o
}

// recordEncoder is the streaming shape shared by the two VTB writers.
type recordEncoder[T any] interface {
	Write(T) error
	Close() error
}

// Writer streams records into a log, sealing a segment and starting the next
// whenever a threshold trips. Sealing is the crash-safety pivot: the VTB
// footer is written, the file synced and renamed from its .tmp name, and
// only then does the manifest commit — so at every instant the manifest
// names only complete, validated segments, and a crash costs at most the
// rows of the segment being filled.
//
// A Writer is the log's single mutator (see the package comment); calls are
// serialized by the caller, like every pipeline sink.
type Writer[T any] struct {
	log    *Log
	opts   WriterOptions
	newEnc func(io.Writer, colstore.Options) recordEncoder[T]
	timeOf func(T) float64

	f      *os.File
	cw     countingWriter
	enc    recordEncoder[T]
	id     uint64
	rows   int
	t0, t1 float64
	sealed int
	closed bool
}

// NewTrajectoryWriter returns a rolling writer of trajectory segments.
// Orphans of an earlier crash are swept on construction.
func NewTrajectoryWriter(l *Log, opts WriterOptions) (*Writer[trajectory.Sample], error) {
	return newWriter(l, colstore.KindTrajectory, opts,
		func(w io.Writer, o colstore.Options) recordEncoder[trajectory.Sample] {
			return colstore.NewTrajectoryWriterOptions(w, o)
		},
		func(s trajectory.Sample) float64 { return s.T })
}

// NewRSSIWriter returns a rolling writer of RSSI segments.
func NewRSSIWriter(l *Log, opts WriterOptions) (*Writer[rssi.Measurement], error) {
	return newWriter(l, colstore.KindRSSI, opts,
		func(w io.Writer, o colstore.Options) recordEncoder[rssi.Measurement] {
			return colstore.NewRSSIWriterOptions(w, o)
		},
		func(m rssi.Measurement) float64 { return m.T })
}

func newWriter[T any](l *Log, kind colstore.Kind, opts WriterOptions,
	newEnc func(io.Writer, colstore.Options) recordEncoder[T], timeOf func(T) float64) (*Writer[T], error) {
	if l.kind != kind {
		return nil, fmt.Errorf("seglog: log %s holds %s records, want %s", l.dir, l.kind, kind)
	}
	if _, err := l.SweepOrphans(); err != nil {
		return nil, err
	}
	return &Writer[T]{log: l, opts: opts.withDefaults(), newEnc: newEnc, timeOf: timeOf}, nil
}

// Write appends one record, rolling the current segment when a threshold
// trips. The byte threshold is observed at block-flush granularity (the VTB
// writer buffers one block), so segments overshoot by at most one encoded
// block.
func (w *Writer[T]) Write(rec T) error {
	if w.closed {
		return fmt.Errorf("seglog: write after Close")
	}
	if w.enc == nil {
		if err := w.openSegment(); err != nil {
			return err
		}
	}
	if err := w.enc.Write(rec); err != nil {
		return err
	}
	t := w.timeOf(rec)
	if w.rows == 0 {
		w.t0, w.t1 = t, t
	} else {
		w.t0, w.t1 = min(w.t0, t), max(w.t1, t)
	}
	w.rows++
	if (w.opts.MaxSegmentRows > 0 && w.rows >= w.opts.MaxSegmentRows) ||
		w.cw.n >= w.opts.MaxSegmentBytes {
		return w.seal()
	}
	return nil
}

// Roll seals the segment being filled (if it holds any rows) so its data
// becomes visible to readers without waiting for a threshold.
func (w *Writer[T]) Roll() error {
	if w.closed {
		return fmt.Errorf("seglog: roll after Close")
	}
	if w.rows == 0 {
		return nil
	}
	return w.seal()
}

// Close seals the final segment and retires the writer.
func (w *Writer[T]) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.rows > 0 {
		return w.seal()
	}
	return w.abortOpenSegment()
}

// Abort discards the segment being filled — its tmp file is removed, sealed
// segments stay. Call it instead of Close when a run fails: the log keeps
// the consistent prefix that already committed.
func (w *Writer[T]) Abort() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.abortOpenSegment()
}

// Segments returns how many segments this writer has sealed.
func (w *Writer[T]) Segments() int { return w.sealed }

// Log returns the underlying log.
func (w *Writer[T]) Log() *Log { return w.log }

func (w *Writer[T]) openSegment() error {
	w.id = w.log.reserveID()
	f, err := os.Create(filepath.Join(w.log.dir, segName(w.id)+".tmp"))
	if err != nil {
		return err
	}
	w.f = f
	w.cw = countingWriter{w: f}
	w.enc = w.newEnc(&w.cw, w.opts.Block)
	w.rows = 0
	return nil
}

// seal completes the current segment: footer, fsync, rename into place,
// manifest commit.
func (w *Writer[T]) seal() error {
	if err := w.enc.Close(); err != nil {
		w.abortOpenSegment()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.abortOpenSegment()
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.f.Name())
		w.f, w.enc = nil, nil
		return err
	}
	tmp := w.f.Name()
	final := filepath.Join(w.log.dir, segName(w.id))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		w.f, w.enc = nil, nil
		return err
	}
	st, err := os.Stat(final)
	if err != nil {
		// The segment is renamed into place but uncommitted; the next mutator
		// sweeps it. Reset so later Write/Abort calls see no open segment.
		w.f, w.enc = nil, nil
		w.rows = 0
		return err
	}
	meta := SegmentMeta{
		ID: w.id, File: segName(w.id),
		Rows: w.rows, Bytes: st.Size(),
		T0: w.t0, T1: w.t1,
	}
	w.f, w.enc = nil, nil
	w.rows = 0
	if err := w.log.appendSegment(meta); err != nil {
		// The file is in place but unreferenced; the next mutator sweeps it.
		slog.Warn("segment commit failed",
			"kind", w.log.kind.String(), "segment", meta.ID, "file", meta.File,
			"error", err.Error())
		return err
	}
	w.sealed++
	metricSealed.With(w.log.kind.String()).Inc()
	slog.Info("segment sealed",
		"kind", w.log.kind.String(), "segment", meta.ID, "file", meta.File,
		"rows", meta.Rows, "bytes", meta.Bytes)
	return nil
}

func (w *Writer[T]) abortOpenSegment() error {
	if w.f == nil {
		return nil
	}
	name := w.f.Name()
	w.f.Close()
	w.f, w.enc = nil, nil
	w.rows = 0
	return os.Remove(name)
}

// countingWriter counts bytes so roll-over can watch the segment's on-disk
// size without stat calls.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
