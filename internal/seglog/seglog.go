// Package seglog turns a dataset from one immutable VTB file into a live,
// append-able log of immutable VTB segment files governed by a manifest —
// the LSM-shaped evolution that lets vitaserve answer queries over data that
// never stops arriving. A Writer rolls small time-ordered segments at a
// size/row threshold; a Compactor merges accumulated segments back into one
// large segment re-blocked into global order so zone maps stay tight. Every
// mutation is a write-temp → fsync → rename → manifest store sequence, so a
// crash at any instant leaves the log at its last consistent snapshot:
// readers see only segments the manifest names, and recovery is simply
// ignoring (or sweeping) orphan files.
//
// Concurrency contract: any number of reader processes may Open a log and
// Reload its manifest, but at most one *mutating* process — a Writer or a
// Compactor — may run per log at a time. Within one process Writer and
// Compactor may coexist (the Log serializes manifest updates and
// replaceSegments tolerates appends that land mid-merge). Superseded segment
// files are deleted only once in-process readers drain (RetainFiles /
// ReleaseFiles); on unix, unlinking a file another process still has mapped
// is safe — the pages live until that process closes.
package seglog

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"vita/internal/colstore"
)

// ManifestName is the file that makes a directory a segment log.
const ManifestName = "MANIFEST.json"

// manifestVersion guards against reading manifests written by a future,
// incompatible layout.
const manifestVersion = 1

// SegmentMeta describes one immutable segment file, mirroring the zone-map
// idea one level up: T0/T1 let a scan skip whole segments before opening
// them.
type SegmentMeta struct {
	// ID is unique for the life of the log and never reused, which is what
	// lets caches key decoded blocks by (segment ID, block) and invalidate
	// precisely.
	ID    uint64  `json:"id"`
	File  string  `json:"file"` // relative to the log directory
	Rows  int     `json:"rows"`
	Bytes int64   `json:"bytes"`
	T0    float64 `json:"t0"`
	T1    float64 `json:"t1"`
	// Level counts compaction rounds: freshly rolled segments are level 0,
	// a merge output is one above its highest input.
	Level int `json:"level"`
}

// Manifest is the log's atomic root: the ordered list of live segments plus
// the counters readers need to detect and classify change.
type Manifest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"` // "trajectory" or "rssi"
	// Generation increments on every manifest store; a reader that sees an
	// unchanged generation knows the segment set is byte-identical.
	Generation uint64 `json:"generation"`
	// NextID is the lowest segment ID never yet committed.
	NextID uint64 `json:"next_id"`
	// Compactions counts completed merges over the log's lifetime.
	Compactions uint64        `json:"compactions"`
	Segments    []SegmentMeta `json:"segments"`
}

// Log is a handle on a segment-log directory. The in-memory manifest mirrors
// the on-disk one; mutators update both atomically (disk first), readers
// Reload to pick up other processes' mutations.
type Log struct {
	dir  string
	kind colstore.Kind

	mu   sync.Mutex
	man  Manifest
	refs map[string]int  // in-process readers per segment file
	tomb map[string]bool // superseded files awaiting the last release
}

// IsLog reports whether dir contains a segment-log manifest.
func IsLog(dir string) bool {
	st, err := os.Stat(filepath.Join(dir, ManifestName))
	return err == nil && st.Mode().IsRegular()
}

// Open opens an existing segment log.
func Open(dir string) (*Log, error) {
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	kind, err := parseKind(man.Kind)
	if err != nil {
		return nil, err
	}
	return &Log{dir: dir, kind: kind, man: man, refs: map[string]int{}, tomb: map[string]bool{}}, nil
}

// Create initializes a new empty segment log for records of the given kind,
// creating dir as needed. It fails if dir already holds a manifest.
func Create(dir string, kind colstore.Kind) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if IsLog(dir) {
		return nil, fmt.Errorf("seglog: %s already holds a manifest", dir)
	}
	l := &Log{
		dir:  dir,
		kind: kind,
		man: Manifest{
			Version:    manifestVersion,
			Kind:       kind.String(),
			Generation: 1,
		},
		refs: map[string]int{},
		tomb: map[string]bool{},
	}
	if err := l.storeManifestLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// OpenOrCreate opens the log at dir, creating an empty one if none exists.
func OpenOrCreate(dir string, kind colstore.Kind) (*Log, error) {
	if IsLog(dir) {
		l, err := Open(dir)
		if err != nil {
			return nil, err
		}
		if l.kind != kind {
			return nil, fmt.Errorf("seglog: %s holds %s records, want %s", dir, l.kind, kind)
		}
		return l, nil
	}
	return Create(dir, kind)
}

// LoadManifest reads and validates the manifest in dir without constructing
// a Log.
func LoadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("seglog: parse %s: %w", ManifestName, err)
	}
	if man.Version != manifestVersion {
		return Manifest{}, fmt.Errorf("seglog: unsupported manifest version %d", man.Version)
	}
	if _, err := parseKind(man.Kind); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Kind returns the record kind the log holds.
func (l *Log) Kind() colstore.Kind { return l.kind }

// Snapshot returns a copy of the current in-memory manifest.
func (l *Log) Snapshot() Manifest {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.man.copy()
}

// Generation returns the current manifest generation.
func (l *Log) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.man.Generation
}

// Reload re-reads the manifest from disk — how a reader process observes a
// writer or compactor running elsewhere. The single-mutator rule makes this
// safe for a pure reader: disk is always at least as new as memory.
func (l *Log) Reload() (Manifest, error) {
	man, err := LoadManifest(l.dir)
	if err != nil {
		return Manifest{}, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if man.Generation >= l.man.Generation {
		// IDs reserved in memory but not yet committed are absent from disk;
		// keep them burned so an in-process mutator never re-issues one.
		man.NextID = max(man.NextID, l.man.NextID)
		l.man = man
	}
	return l.man.copy(), nil
}

// SegmentPath returns the absolute path of a segment.
func (l *Log) SegmentPath(m SegmentMeta) string { return filepath.Join(l.dir, m.File) }

// RetainFiles registers in-process readers of the named segment files, so a
// compaction that supersedes them defers deletion until ReleaseFiles.
func (l *Log) RetainFiles(files ...string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, f := range files {
		l.refs[f]++
	}
}

// ReleaseFiles drops reader registrations; a tombstoned file whose last
// reader just left is deleted here — the "only after readers drain" half of
// compaction.
func (l *Log) ReleaseFiles(files ...string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, f := range files {
		if l.refs[f]--; l.refs[f] <= 0 {
			delete(l.refs, f)
			if l.tomb[f] {
				delete(l.tomb, f)
				os.Remove(filepath.Join(l.dir, f))
			}
		}
	}
}

// SweepOrphans removes segment files a crash left behind: *.tmp remnants and
// seg-*.vtb files the manifest does not name. Only the log's single mutating
// process may call it (a reader cannot tell an orphan from a segment another
// process committed a moment ago). Returns how many files were removed.
func (l *Log) SweepOrphans() (int, error) {
	l.mu.Lock()
	live := make(map[string]bool, len(l.man.Segments))
	for _, m := range l.man.Segments {
		live[m.File] = true
	}
	l.mu.Unlock()
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || live[name] {
			continue
		}
		orphan := strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".vtb"))
		if !orphan {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		metricOrphansSwept.Add(int64(removed))
		slog.Info("orphan sweep", "dir", l.dir, "removed", removed)
	}
	return removed, nil
}

// reserveID hands out the next segment ID and burns it in memory, so a
// Writer and a Compactor coexisting in one process can never build under the
// same file name. The advanced NextID persists with the next manifest commit;
// if the process crashes first, restart reuses the unburned ID — safe,
// because the only trace an uncommitted ID leaves is an orphan tmp file,
// which gets swept.
func (l *Log) reserveID() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.man.NextID
	l.man.NextID++
	return id
}

// appendSegment commits one freshly sealed segment: manifest to disk first,
// then memory.
func (l *Log) appendSegment(meta SegmentMeta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.man.copy()
	next.Segments = append(next.Segments, meta)
	next.Generation++
	if meta.ID >= next.NextID {
		next.NextID = meta.ID + 1
	}
	return l.commitLocked(next)
}

// replaceSegments commits a compaction: the removed segments leave the
// manifest, added takes the first removed segment's position (segments a
// writer appended mid-merge keep their place after it). Removed files are
// deleted immediately unless in-process readers still hold them, in which
// case they are tombstoned for the last ReleaseFiles.
func (l *Log) replaceSegments(removed []SegmentMeta, added SegmentMeta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	gone := make(map[uint64]bool, len(removed))
	for _, m := range removed {
		gone[m.ID] = true
	}
	next := l.man.copy()
	segs := make([]SegmentMeta, 0, len(next.Segments)-len(removed)+1)
	matched, placed := 0, false
	for _, m := range next.Segments {
		if gone[m.ID] {
			matched++
			if !placed {
				segs = append(segs, added)
				placed = true
			}
			continue
		}
		segs = append(segs, m)
	}
	if matched != len(removed) {
		// A removed segment is already gone: some other mutator violated the
		// single-mutator rule (or the caller merged from a stale snapshot).
		return fmt.Errorf("seglog: replace: %d of %d input segments no longer in manifest", len(removed)-matched, len(removed))
	}
	if !placed {
		segs = append(segs, added)
	}
	next.Segments = segs
	next.Generation++
	next.Compactions++
	if added.ID >= next.NextID {
		next.NextID = added.ID + 1
	}
	if err := l.commitLocked(next); err != nil {
		return err
	}
	for _, m := range removed {
		if l.refs[m.File] > 0 {
			l.tomb[m.File] = true
			continue
		}
		os.Remove(filepath.Join(l.dir, m.File))
	}
	return nil
}

// commitLocked stores next to disk and, on success, adopts it in memory.
// Callers hold mu.
func (l *Log) commitLocked(next Manifest) error {
	saved := l.man
	l.man = next
	if err := l.storeManifestLocked(); err != nil {
		l.man = saved
		return err
	}
	return nil
}

// storeManifestLocked writes the manifest atomically: temp file in the same
// directory, fsync, rename over the live name, fsync the directory. A crash
// anywhere in the sequence leaves either the old manifest or the new one —
// never a torn mix. Callers hold mu.
func (l *Log) storeManifestLocked() error {
	data, err := json.MarshalIndent(l.man, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(l.dir, ManifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(l.dir)
}

// copy returns a manifest with its own segment slice.
func (m Manifest) copy() Manifest {
	out := m
	out.Segments = make([]SegmentMeta, len(m.Segments))
	copy(out.Segments, m.Segments)
	return out
}

// TimeSpan returns the [min T0, max T1] over the live segments, false when
// the log is empty.
func (m Manifest) TimeSpan() (float64, float64, bool) {
	if len(m.Segments) == 0 {
		return 0, 0, false
	}
	t0, t1 := m.Segments[0].T0, m.Segments[0].T1
	for _, s := range m.Segments[1:] {
		t0, t1 = min(t0, s.T0), max(t1, s.T1)
	}
	return t0, t1, true
}

// Rows returns the total live row count.
func (m Manifest) Rows() int {
	n := 0
	for _, s := range m.Segments {
		n += s.Rows
	}
	return n
}

// MaxLevel returns the highest live segment level (0 for an empty log).
func (m Manifest) MaxLevel() int {
	lv := 0
	for _, s := range m.Segments {
		lv = max(lv, s.Level)
	}
	return lv
}

// segName renders the canonical segment file name for an ID.
func segName(id uint64) string { return fmt.Sprintf("seg-%08d.vtb", id) }

func parseKind(s string) (colstore.Kind, error) {
	switch s {
	case colstore.KindTrajectory.String():
		return colstore.KindTrajectory, nil
	case colstore.KindRSSI.String():
		return colstore.KindRSSI, nil
	default:
		return 0, fmt.Errorf("seglog: unknown record kind %q", s)
	}
}

// syncDir fsyncs a directory so a rename within it is durable. Sync errors
// are tolerated (some filesystems refuse to sync directories): the rename
// itself is still atomic, only its durability window widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	_ = d.Sync()
	return d.Close()
}
