package storage

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vita/internal/colstore"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

func rssiMeasurements() []rssi.Measurement {
	var out []rssi.Measurement
	for o := 0; o < 6; o++ {
		for t := 0; t < 300; t++ {
			out = append(out, rssi.Measurement{
				ObjID:    o,
				DeviceID: []string{"ap-0", "ap-1", "ap-2"}[t%3],
				RSSI:     -40 - float64(t%30),
				T:        float64(t),
			})
		}
	}
	return out
}

func writeTrajectoryVTB(t *testing.T, path string, samples []trajectory.Sample) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := colstore.NewTrajectoryWriterOptions(f, colstore.Options{BlockSize: 256})
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func writeRSSIVTB(t *testing.T, path string, ms []rssi.Measurement) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := colstore.NewRSSIWriterOptions(f, colstore.Options{BlockSize: 256})
	for _, m := range ms {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRSSICursorBothFormats requires the RSSI batch cursor to yield
// exactly the rows (and stats) of ScanRSSIFile for the same predicate, on a
// VTB file (mmap and pread) and on a CSV file — the measurement-side twin of
// TestOpenTrajectoryCursorBothFormats.
func TestOpenRSSICursorBothFormats(t *testing.T) {
	ms := rssiMeasurements()
	dir := t.TempDir()

	vtbPath := filepath.Join(dir, "rssi.vtb")
	writeRSSIVTB(t, vtbPath, ms)

	csvPath := filepath.Join(dir, "rssi.csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRSSICSV(cf, ms); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}

	preds := map[string]colstore.Predicate{
		"all":    {},
		"window": colstore.TimeWindow(50, 120),
		"object": {HasObj: true, Obj: 3},
		"empty":  colstore.TimeWindow(1e6, 2e6),
	}
	cases := []struct {
		name       string
		path       string
		wantFormat Format
		opts       CursorOptions
	}{
		{"vtb-mmap", vtbPath, FormatVTB, CursorOptions{}},
		{"vtb-pread", vtbPath, FormatVTB, CursorOptions{DisableMmap: true}},
		{"csv", csvPath, FormatCSV, CursorOptions{}},
	}
	for _, tc := range cases {
		for name, pred := range preds {
			t.Run(tc.name+"/"+name, func(t *testing.T) {
				var want []rssi.Measurement
				wantStats, _, err := ScanRSSIFile(tc.path, pred, func(m rssi.Measurement) {
					want = append(want, m)
				})
				if err != nil {
					t.Fatal(err)
				}
				cur, format, err := OpenRSSICursorOptions(tc.path, pred, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				if format != tc.wantFormat {
					t.Fatalf("format = %s, want %s", format, tc.wantFormat)
				}
				var got []rssi.Measurement
				for cur.Next() {
					if cur.Batch().Len() == 0 {
						t.Fatal("Next returned an empty batch")
					}
					got = cur.Batch().AppendTo(got)
				}
				if err := cur.Close(); err != nil {
					t.Fatal(err)
				}
				if cur.Stats() != wantStats {
					t.Errorf("stats differ: cursor %+v, scan %+v", cur.Stats(), wantStats)
				}
				if len(got) != len(want) {
					t.Fatalf("cursor yielded %d rows, scan %d", len(got), len(want))
				}
				for i := range got {
					if got[i].ObjID != want[i].ObjID || got[i].DeviceID != want[i].DeviceID ||
						math.Float64bits(got[i].RSSI) != math.Float64bits(want[i].RSSI) ||
						math.Float64bits(got[i].T) != math.Float64bits(want[i].T) {
						t.Fatalf("row %d differs: got %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestTrajectoryMergeCursorMatchesSingleFile splits one time-ordered stream
// into contiguous segment files — the exact shape internal/seglog rolls — and
// requires the merge cursor over the pieces to reproduce the single-file
// cursor row for row, under every predicate. Splitting mid-timestamp also
// exercises the input-index tie-break: equal (T, ObjID) keys never exist, but
// equal T across inputs does, and the earlier segment must win.
func TestTrajectoryMergeCursorMatchesSingleFile(t *testing.T) {
	samples := cursorSamples()
	dir := t.TempDir()

	single := filepath.Join(dir, "all.vtb")
	writeTrajectoryVTB(t, single, samples)

	// Uneven splits, one cutting through a timestamp run.
	bounds := []int{0, 700, 701, 1700, len(samples)}
	var parts []string
	for i := 0; i+1 < len(bounds); i++ {
		p := filepath.Join(dir, "seg-"+string(rune('a'+i))+".vtb")
		writeTrajectoryVTB(t, p, samples[bounds[i]:bounds[i+1]])
		parts = append(parts, p)
	}

	preds := map[string]colstore.Predicate{
		"all":    {},
		"window": colstore.TimeWindow(100, 250),
		"object": {HasObj: true, Obj: 2},
		"empty":  colstore.TimeWindow(1e6, 2e6),
	}
	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			wantCur, _, err := OpenTrajectoryCursorOptions(single, pred, CursorOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var want []trajectory.Sample
			for wantCur.Next() {
				want = wantCur.Batch().AppendTo(want)
			}
			if err := wantCur.Close(); err != nil {
				t.Fatal(err)
			}

			cur, err := OpenTrajectoryCursorMulti(parts, pred, CursorOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var got []trajectory.Sample
			for cur.Next() {
				got = cur.Batch().AppendTo(got)
			}
			if cur.Stats().RowsMatched != len(got) {
				t.Errorf("RowsMatched = %d, rows yielded %d", cur.Stats().RowsMatched, len(got))
			}
			if err := cur.Close(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("merge yielded %d rows, single file %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d differs: got %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestRSSIMergeCursorMatchesSingleFile is the RSSI twin: object-grouped
// measurements split into contiguous segment files must merge back into the
// single-file stream, including a split inside one object's run (the
// (ObjID, input index) key keeps the earlier segment's rows first).
func TestRSSIMergeCursorMatchesSingleFile(t *testing.T) {
	ms := rssiMeasurements()
	dir := t.TempDir()

	single := filepath.Join(dir, "all.vtb")
	writeRSSIVTB(t, single, ms)

	bounds := []int{0, 450, 900, len(ms)} // 450 cuts object 1's run in half
	var parts []string
	for i := 0; i+1 < len(bounds); i++ {
		p := filepath.Join(dir, "seg-"+string(rune('a'+i))+".vtb")
		writeRSSIVTB(t, p, ms[bounds[i]:bounds[i+1]])
		parts = append(parts, p)
	}

	preds := map[string]colstore.Predicate{
		"all":    {},
		"window": colstore.TimeWindow(50, 120),
		"object": {HasObj: true, Obj: 1},
	}
	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			var want []rssi.Measurement
			if _, _, err := ScanRSSIFile(single, pred, func(m rssi.Measurement) {
				want = append(want, m)
			}); err != nil {
				t.Fatal(err)
			}

			cur, err := OpenRSSICursorMulti(parts, pred, CursorOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var got []rssi.Measurement
			for cur.Next() {
				got = cur.Batch().AppendTo(got)
			}
			if err := cur.Close(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("merge yielded %d rows, single file %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d differs: got %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestMergeCursorSingleInputPassThrough: a one-path Multi open must not wrap
// the cursor in merge machinery.
func TestMergeCursorSingleInputPassThrough(t *testing.T) {
	samples := cursorSamples()
	dir := t.TempDir()
	p := filepath.Join(dir, "one.vtb")
	writeTrajectoryVTB(t, p, samples)

	cur, err := OpenTrajectoryCursorMulti([]string{p}, colstore.Predicate{}, CursorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.(*trajectoryMergeCursor); ok {
		t.Fatal("single input was wrapped in a merge cursor")
	}
	n := 0
	for cur.Next() {
		n += cur.Batch().Len()
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if n != len(samples) {
		t.Fatalf("yielded %d rows, want %d", n, len(samples))
	}
}
