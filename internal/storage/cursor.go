package storage

import (
	"encoding/csv"
	"io"
	"os"

	"vita/internal/colstore"
)

// TrajectoryCursor is the format-agnostic batch iterator over a trajectory
// file: pull one decoded column batch at a time instead of receiving a
// callback per row, so huge scans run in O(block) memory with no per-row
// call overhead. VTB files iterate the zone-map-pruned block cursor of
// internal/colstore (memory-mapped by default); CSV files parse rows into
// batches of the same shape. Rows, order, and stats match
// ScanTrajectoryFile with the same predicate.
//
//	cur, format, err := storage.OpenTrajectoryCursor(path, pred)
//	if err != nil { ... }
//	defer cur.Close()
//	for cur.Next() {
//		b := cur.Batch()
//		... b.T, b.X, b.Y, or b.Row(i) ...
//	}
//	if err := cur.Err(); err != nil { ... }
type TrajectoryCursor interface {
	// Next advances to the next non-empty batch of matching rows.
	Next() bool
	// Batch returns the current batch, valid until the next Next or Close.
	Batch() *colstore.TrajectoryBatch
	// Err returns the first error the cursor hit, if any.
	Err() error
	// Stats returns the scan statistics accumulated so far.
	Stats() colstore.ScanStats
	// Close releases the cursor and the underlying file, returning Err.
	Close() error
}

// CursorOptions tunes OpenTrajectoryCursorOptions.
type CursorOptions struct {
	// DisableMmap forces the pread path for VTB files (CSV never maps).
	DisableMmap bool
	// Sequential hints that the file will be scanned once front to back
	// (madvise(MADV_SEQUENTIAL) on mmap-backed VTB readers) — set it for
	// cold full-file passes like compaction merges. CSV ignores it.
	Sequential bool
}

func (o CursorOptions) open() colstore.OpenOptions {
	return colstore.OpenOptions{DisableMmap: o.DisableMmap, Sequential: o.Sequential}
}

// OpenTrajectoryCursor opens a batch cursor over the trajectory file at
// path in either format (detected by magic bytes) with default options —
// VTB files are memory-mapped where the platform allows.
func OpenTrajectoryCursor(path string, pred colstore.Predicate) (TrajectoryCursor, Format, error) {
	return OpenTrajectoryCursorOptions(path, pred, CursorOptions{})
}

// OpenTrajectoryCursorOptions is OpenTrajectoryCursor with explicit options.
func OpenTrajectoryCursorOptions(path string, pred colstore.Predicate, opts CursorOptions) (TrajectoryCursor, Format, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return nil, "", err
	}
	if format == FormatVTB {
		r, err := colstore.OpenTrajectoryOptions(path, opts.open())
		if err != nil {
			return nil, format, err
		}
		return &vtbTrajectoryCursor{r: r, cur: r.Cursor(pred)}, format, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, format, err
	}
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = 7
	cr.ReuseRecord = true
	return &csvTrajectoryCursor{f: f, cr: cr, pred: pred}, format, nil
}

// vtbTrajectoryCursor couples a colstore cursor to the reader it borrows,
// closing both together.
type vtbTrajectoryCursor struct {
	r   *colstore.TrajectoryReader
	cur *colstore.TrajectoryCursor
}

func (c *vtbTrajectoryCursor) Next() bool                       { return c.cur.Next() }
func (c *vtbTrajectoryCursor) Batch() *colstore.TrajectoryBatch { return c.cur.Batch() }
func (c *vtbTrajectoryCursor) Err() error                       { return c.cur.Err() }
func (c *vtbTrajectoryCursor) Stats() colstore.ScanStats        { return c.cur.Stats() }
func (c *vtbTrajectoryCursor) Close() error {
	err := c.cur.Close()
	if cerr := c.r.Close(); err == nil {
		err = cerr
	}
	return err
}

// csvCursorBatchSize is how many parsed CSV rows one batch holds — the same
// order of magnitude as a VTB block, so both formats present comparable
// batch granularity.
const csvCursorBatchSize = 4096

// csvTrajectoryCursor adapts the streaming CSV parser to the batch shape.
// CSV has no block structure, so stats report rows only (like
// ScanTrajectoryFile on CSV).
type csvTrajectoryCursor struct {
	f      *os.File
	cr     *csv.Reader
	pred   colstore.Predicate
	batch  colstore.TrajectoryBatch
	stats  colstore.ScanStats
	row    int
	err    error
	closed bool
	done   bool
}

func (c *csvTrajectoryCursor) Next() bool {
	if c.err != nil || c.closed || c.done {
		return false
	}
	c.batch.Reset()
	for c.batch.Len() < csvCursorBatchSize {
		rec, err := c.cr.Read()
		if err == io.EOF {
			c.done = true
			break
		}
		if err != nil {
			c.err = err
			return false
		}
		c.row++
		if c.row == 1 {
			continue // header row
		}
		s, err := parseTrajectoryRecord(rec)
		if err != nil {
			c.err = err
			return false
		}
		c.stats.RowsScanned++
		if c.pred.MatchTrajectory(s) {
			c.stats.RowsMatched++
			c.batch.Append(s)
		}
	}
	return c.batch.Len() > 0
}

func (c *csvTrajectoryCursor) Batch() *colstore.TrajectoryBatch { return &c.batch }
func (c *csvTrajectoryCursor) Err() error                       { return c.err }
func (c *csvTrajectoryCursor) Stats() colstore.ScanStats        { return c.stats }

func (c *csvTrajectoryCursor) Close() error {
	if !c.closed {
		c.closed = true
		if cerr := c.f.Close(); c.err == nil && cerr != nil {
			c.err = cerr
		}
	}
	return c.err
}
