package storage

import (
	"encoding/csv"
	"io"
	"os"

	"vita/internal/colstore"
)

// RSSICursor is the format-agnostic batch iterator over an RSSI file — the
// measurement-side twin of TrajectoryCursor, with the same contract: pull one
// decoded column batch at a time, O(block) memory however large the file.
// Rows, order, and stats match ScanRSSIFile with the same predicate (floor
// and box constraints do not apply to RSSI rows and are ignored).
type RSSICursor interface {
	// Next advances to the next non-empty batch of matching rows.
	Next() bool
	// Batch returns the current batch, valid until the next Next or Close.
	Batch() *colstore.RSSIBatch
	// Err returns the first error the cursor hit, if any.
	Err() error
	// Stats returns the scan statistics accumulated so far.
	Stats() colstore.ScanStats
	// Close releases the cursor and the underlying file, returning Err.
	Close() error
}

// OpenRSSICursor opens a batch cursor over the RSSI file at path in either
// format (detected by magic bytes) with default options.
func OpenRSSICursor(path string, pred colstore.Predicate) (RSSICursor, Format, error) {
	return OpenRSSICursorOptions(path, pred, CursorOptions{})
}

// OpenRSSICursorOptions is OpenRSSICursor with explicit options.
func OpenRSSICursorOptions(path string, pred colstore.Predicate, opts CursorOptions) (RSSICursor, Format, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return nil, "", err
	}
	if format == FormatVTB {
		r, err := colstore.OpenRSSIOptions(path, opts.open())
		if err != nil {
			return nil, format, err
		}
		return &vtbRSSICursor{r: r, cur: r.Cursor(pred)}, format, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, format, err
	}
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = 4
	cr.ReuseRecord = true
	pred.HasFloor, pred.HasBox = false, false
	return &csvRSSICursor{f: f, cr: cr, pred: pred}, format, nil
}

// vtbRSSICursor couples a colstore cursor to the reader it borrows, closing
// both together.
type vtbRSSICursor struct {
	r   *colstore.RSSIReader
	cur *colstore.RSSICursor
}

func (c *vtbRSSICursor) Next() bool                 { return c.cur.Next() }
func (c *vtbRSSICursor) Batch() *colstore.RSSIBatch { return c.cur.Batch() }
func (c *vtbRSSICursor) Err() error                 { return c.cur.Err() }
func (c *vtbRSSICursor) Stats() colstore.ScanStats  { return c.cur.Stats() }
func (c *vtbRSSICursor) Close() error {
	err := c.cur.Close()
	if cerr := c.r.Close(); err == nil {
		err = cerr
	}
	return err
}

// csvRSSICursor adapts the streaming CSV parser to the batch shape; see
// csvTrajectoryCursor.
type csvRSSICursor struct {
	f      *os.File
	cr     *csv.Reader
	pred   colstore.Predicate
	batch  colstore.RSSIBatch
	stats  colstore.ScanStats
	row    int
	err    error
	closed bool
	done   bool
}

func (c *csvRSSICursor) Next() bool {
	if c.err != nil || c.closed || c.done {
		return false
	}
	c.batch.Reset()
	for c.batch.Len() < csvCursorBatchSize {
		rec, err := c.cr.Read()
		if err == io.EOF {
			c.done = true
			break
		}
		if err != nil {
			c.err = err
			return false
		}
		c.row++
		if c.row == 1 {
			continue // header row
		}
		m, err := parseRSSIRecord(rec)
		if err != nil {
			c.err = err
			return false
		}
		c.stats.RowsScanned++
		if c.pred.MatchRSSI(m) {
			c.stats.RowsMatched++
			c.batch.Append(m)
		}
	}
	return c.batch.Len() > 0
}

func (c *csvRSSICursor) Batch() *colstore.RSSIBatch { return &c.batch }
func (c *csvRSSICursor) Err() error                 { return c.err }
func (c *csvRSSICursor) Stats() colstore.ScanStats  { return c.stats }

func (c *csvRSSICursor) Close() error {
	if !c.closed {
		c.closed = true
		if cerr := c.f.Close(); c.err == nil && cerr != nil {
			c.err = cerr
		}
	}
	return c.err
}
