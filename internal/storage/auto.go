package storage

import (
	"fmt"
	"os"

	"vita/internal/colstore"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// This file bridges the two on-disk encodings — the CSV codecs of this
// package and the columnar VTB format of internal/colstore — behind
// format-agnostic entry points. Detection is by magic bytes, not extension,
// so existing CSV workflows keep working whatever the files are named.

// Format identifies an on-disk dataset encoding.
type Format string

const (
	// FormatCSV is the textual record format of the paper (§4.2), quantized
	// to 4 decimal places.
	FormatCSV Format = "csv"
	// FormatVTB is the block-compressed columnar binary format of
	// internal/colstore: lossless and zone-map indexed.
	FormatVTB Format = "vtb"
)

// Ext returns the conventional file extension for the format.
func (f Format) Ext() string { return "." + string(f) }

// ParseFormat validates a user-supplied format name.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatCSV, FormatVTB:
		return Format(s), nil
	default:
		return "", fmt.Errorf("storage: unknown format %q (want %q or %q)", s, FormatCSV, FormatVTB)
	}
}

// DetectFormat sniffs the file's magic bytes: VTB files are recognized by
// their header, anything else is assumed CSV.
func DetectFormat(path string) (Format, error) {
	_, isVTB, err := colstore.Sniff(path)
	if err != nil {
		return "", err
	}
	if isVTB {
		return FormatVTB, nil
	}
	return FormatCSV, nil
}

// ScanTrajectoryFile streams the samples of a trajectory file in either
// format that match pred to emit, in O(block) memory. For VTB files the scan
// prunes whole blocks via zone maps; for CSV it degrades to a row-by-row
// parse with row filtering (stats then report zero blocks). The detected
// format is returned alongside the scan stats.
func ScanTrajectoryFile(path string, pred colstore.Predicate, emit func(trajectory.Sample)) (colstore.ScanStats, Format, error) {
	return ScanTrajectoryFileParallel(path, pred, 1, emit)
}

// ScanTrajectoryFileParallel is ScanTrajectoryFile with block decode spread
// over a worker pool for VTB files (parallelism 0 = GOMAXPROCS, 1 =
// sequential). Emitted rows and their order are identical at every
// parallelism level; CSV files always parse sequentially.
func ScanTrajectoryFileParallel(path string, pred colstore.Predicate, parallelism int, emit func(trajectory.Sample)) (colstore.ScanStats, Format, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return colstore.ScanStats{}, "", err
	}
	if format == FormatVTB {
		r, err := colstore.OpenTrajectory(path)
		if err != nil {
			return colstore.ScanStats{}, format, err
		}
		defer r.Close()
		stats, err := r.ScanParallel(pred, parallelism, emit)
		return stats, format, err
	}
	f, err := os.Open(path)
	if err != nil {
		return colstore.ScanStats{}, format, err
	}
	defer f.Close()
	var stats colstore.ScanStats
	err = ScanTrajectoryCSV(f, func(s trajectory.Sample) {
		stats.RowsScanned++
		if pred.MatchTrajectory(s) {
			stats.RowsMatched++
			emit(s)
		}
	})
	return stats, format, err
}

// ReadTrajectoryFile loads a whole trajectory file in either format,
// reporting which format it detected.
func ReadTrajectoryFile(path string) ([]trajectory.Sample, Format, error) {
	var out []trajectory.Sample
	_, format, err := ScanTrajectoryFile(path, colstore.Predicate{}, func(s trajectory.Sample) {
		out = append(out, s)
	})
	return out, format, err
}

// ScanRSSIFile streams the measurements of an RSSI file in either format
// that match pred (time/object constraints) to emit.
func ScanRSSIFile(path string, pred colstore.Predicate, emit func(rssi.Measurement)) (colstore.ScanStats, Format, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return colstore.ScanStats{}, "", err
	}
	if format == FormatVTB {
		r, err := colstore.OpenRSSI(path)
		if err != nil {
			return colstore.ScanStats{}, format, err
		}
		defer r.Close()
		stats, err := r.Scan(pred, emit)
		return stats, format, err
	}
	f, err := os.Open(path)
	if err != nil {
		return colstore.ScanStats{}, format, err
	}
	defer f.Close()
	var stats colstore.ScanStats
	err = ScanRSSICSV(f, func(m rssi.Measurement) {
		stats.RowsScanned++
		if pred.MatchRSSI(m) {
			stats.RowsMatched++
			emit(m)
		}
	})
	return stats, format, err
}

// ReadRSSIFile loads a whole RSSI file in either format.
func ReadRSSIFile(path string) ([]rssi.Measurement, Format, error) {
	var out []rssi.Measurement
	_, format, err := ScanRSSIFile(path, colstore.Predicate{}, func(m rssi.Measurement) {
		out = append(out, m)
	})
	return out, format, err
}
