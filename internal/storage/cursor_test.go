package storage

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/trajectory"
)

func cursorSamples() []trajectory.Sample {
	var out []trajectory.Sample
	for t := 0; t < 500; t++ {
		for o := 0; o < 6; o++ {
			out = append(out, trajectory.Sample{
				ObjID: o,
				Loc:   model.At("hq", o%2, []string{"lobby", "lab", "hall"}[o%3], geom.Pt(float64(t%40), float64(o))),
				T:     float64(t),
			})
		}
	}
	return out
}

// TestOpenTrajectoryCursorBothFormats requires the batch cursor to yield
// exactly the rows (and stats) of ScanTrajectoryFile for the same predicate,
// on a VTB file (mmap and pread) and on a CSV file.
func TestOpenTrajectoryCursorBothFormats(t *testing.T) {
	samples := cursorSamples()
	dir := t.TempDir()

	vtbPath := filepath.Join(dir, "trajectory.vtb")
	vf, err := os.Create(vtbPath)
	if err != nil {
		t.Fatal(err)
	}
	w := colstore.NewTrajectoryWriterOptions(vf, colstore.Options{BlockSize: 256})
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vf.Close(); err != nil {
		t.Fatal(err)
	}

	csvPath := filepath.Join(dir, "trajectory.csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrajectoryCSV(cf, samples); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}

	preds := map[string]colstore.Predicate{
		"all":    {},
		"window": colstore.TimeWindow(100, 250),
		"object": {HasObj: true, Obj: 2},
		"empty":  colstore.TimeWindow(1e6, 2e6),
	}
	cases := []struct {
		name       string
		path       string
		wantFormat Format
		opts       CursorOptions
	}{
		{"vtb-mmap", vtbPath, FormatVTB, CursorOptions{}},
		{"vtb-pread", vtbPath, FormatVTB, CursorOptions{DisableMmap: true}},
		{"csv", csvPath, FormatCSV, CursorOptions{}},
	}
	for _, tc := range cases {
		for name, pred := range preds {
			t.Run(tc.name+"/"+name, func(t *testing.T) {
				var want []trajectory.Sample
				wantStats, _, err := ScanTrajectoryFile(tc.path, pred, func(s trajectory.Sample) {
					want = append(want, s)
				})
				if err != nil {
					t.Fatal(err)
				}
				cur, format, err := OpenTrajectoryCursorOptions(tc.path, pred, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				if format != tc.wantFormat {
					t.Fatalf("format = %s, want %s", format, tc.wantFormat)
				}
				var got []trajectory.Sample
				for cur.Next() {
					if cur.Batch().Len() == 0 {
						t.Fatal("Next returned an empty batch")
					}
					got = cur.Batch().AppendTo(got)
				}
				if err := cur.Close(); err != nil {
					t.Fatal(err)
				}
				if cur.Stats() != wantStats {
					t.Errorf("stats differ: cursor %+v, scan %+v", cur.Stats(), wantStats)
				}
				if len(got) != len(want) {
					t.Fatalf("cursor yielded %d rows, scan %d", len(got), len(want))
				}
				for i := range got {
					if got[i].ObjID != want[i].ObjID ||
						got[i].Loc != want[i].Loc ||
						math.Float64bits(got[i].T) != math.Float64bits(want[i].T) {
						t.Fatalf("row %d differs: got %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestOpenTrajectoryCursorMissing covers the error paths: absent file and a
// directory instead of a file.
func TestOpenTrajectoryCursorMissing(t *testing.T) {
	if _, _, err := OpenTrajectoryCursor(filepath.Join(t.TempDir(), "nope.vtb"), colstore.Predicate{}); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}
