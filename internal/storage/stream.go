package storage

import (
	"sort"

	"vita/internal/trajectory"
)

// This file implements the "commonly used functions and query processing
// algorithms" of the Data Stream APIs module (paper §2, Storage): the
// aggregate queries indoor mobility analytics keeps asking of the generated
// data — dwell times, partition flows, visit counts, population curves and
// per-device load.
//
// Every aggregate that walks consecutive samples (DwellTimes, FlowMatrix)
// assumes each object's series is time-sorted; a transition computed from an
// unsorted series would attribute negative dwell or phantom flows. The
// aggregates read through TrajectoryStore.Series, which enforces that
// invariant: series appended in time order (what the generation pipeline's
// order-preserving collector emits) pass through untouched, and series
// flagged by an out-of-order append are sorted before use. See the
// TrajectoryStore invariant note in repos.go.

// rootPartition collapses decomposed sub-partitions ("P.2") onto their
// original DBI space ("P") so analytics aggregate at the granularity users
// configured.
func rootPartition(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] == '.' {
			return id[:i]
		}
	}
	return id
}

// DwellTimes returns, per object, the total seconds spent in each (root)
// partition, attributing each inter-sample gap to the partition of its
// earlier sample.
func DwellTimes(ts *TrajectoryStore) map[int]map[string]float64 {
	out := make(map[int]map[string]float64)
	for _, id := range ts.Objects() {
		series := ts.Series(id)
		if len(series) < 2 {
			continue
		}
		acc := make(map[string]float64)
		for i := 1; i < len(series); i++ {
			acc[rootPartition(series[i-1].Loc.Partition)] += series[i].T - series[i-1].T
		}
		out[id] = acc
	}
	return out
}

// FlowMatrix returns the number of observed transitions between (root)
// partitions across consecutive samples of each object. Self-transitions are
// excluded.
func FlowMatrix(ts *TrajectoryStore) map[string]map[string]int {
	out := make(map[string]map[string]int)
	for _, id := range ts.Objects() {
		series := ts.Series(id)
		for i := 1; i < len(series); i++ {
			from := rootPartition(series[i-1].Loc.Partition)
			to := rootPartition(series[i].Loc.Partition)
			if from == to || from == "" || to == "" {
				continue
			}
			if out[from] == nil {
				out[from] = make(map[string]int)
			}
			out[from][to]++
		}
	}
	return out
}

// VisitCounts returns, per (root) partition, how many distinct objects ever
// appeared in it.
func VisitCounts(ts *TrajectoryStore) map[string]int {
	seen := make(map[string]map[int]bool)
	ts.Scan(func(s trajectory.Sample) bool {
		p := rootPartition(s.Loc.Partition)
		if p == "" {
			return true
		}
		if seen[p] == nil {
			seen[p] = make(map[int]bool)
		}
		seen[p][s.ObjID] = true
		return true
	})
	out := make(map[string]int, len(seen))
	for p, objs := range seen {
		out[p] = len(objs)
	}
	return out
}

// PopulationOverTime returns the number of distinct objects observed in each
// time bucket of the given width, from t=0 to the last sample.
func PopulationOverTime(ts *TrajectoryStore, bucket float64) []int {
	if bucket <= 0 {
		bucket = 60
	}
	var maxT float64
	ts.Scan(func(s trajectory.Sample) bool {
		if s.T > maxT {
			maxT = s.T
		}
		return true
	})
	n := int(maxT/bucket) + 1
	sets := make([]map[int]bool, n)
	ts.Scan(func(s trajectory.Sample) bool {
		i := int(s.T / bucket)
		if sets[i] == nil {
			sets[i] = make(map[int]bool)
		}
		sets[i][s.ObjID] = true
		return true
	})
	out := make([]int, n)
	for i, set := range sets {
		out[i] = len(set)
	}
	return out
}

// TopPartitions returns the k partitions with the highest visit counts, most
// visited first; ties break lexicographically.
func TopPartitions(ts *TrajectoryStore, k int) []string {
	counts := VisitCounts(ts)
	keys := make([]string, 0, len(counts))
	for p := range counts {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if k > 0 && len(keys) > k {
		keys = keys[:k]
	}
	return keys
}

// DeviceLoad returns, per device, the number of RSSI measurements observed
// in each time bucket of the given width.
func DeviceLoad(rs *RSSIStore, bucket float64) map[string][]int {
	if bucket <= 0 {
		bucket = 60
	}
	all := rs.All()
	var maxT float64
	for _, m := range all {
		if m.T > maxT {
			maxT = m.T
		}
	}
	n := int(maxT/bucket) + 1
	out := make(map[string][]int)
	for _, m := range all {
		if out[m.DeviceID] == nil {
			out[m.DeviceID] = make([]int, n)
		}
		out[m.DeviceID][int(m.T/bucket)]++
	}
	return out
}
