package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

func autoSamples() []trajectory.Sample {
	var out []trajectory.Sample
	for i := 0; i < 300; i++ {
		out = append(out, trajectory.Sample{
			ObjID: i % 6,
			Loc:   model.At("b", i%2, "p", geom.Pt(float64(i%40), 2.25)),
			T:     float64(i / 6),
		})
	}
	return out
}

// writeBoth materializes the same samples in both formats, with a
// deliberately misleading extension on the VTB file to prove detection is by
// magic bytes.
func writeBoth(t *testing.T) (csvPath, vtbPath string, samples []trajectory.Sample) {
	t.Helper()
	samples = autoSamples()
	dir := t.TempDir()

	csvPath = filepath.Join(dir, "trajectory.csv")
	var buf bytes.Buffer
	if err := WriteTrajectoryCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csvPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	vtbPath = filepath.Join(dir, "actually-vtb.csv")
	var vbuf bytes.Buffer
	w := colstore.NewTrajectoryWriterOptions(&vbuf, colstore.Options{BlockSize: 50})
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(vtbPath, vbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return csvPath, vtbPath, samples
}

func TestDetectFormatByMagic(t *testing.T) {
	csvPath, vtbPath, _ := writeBoth(t)
	if f, err := DetectFormat(csvPath); err != nil || f != FormatCSV {
		t.Errorf("DetectFormat(csv) = %v, %v", f, err)
	}
	// Extension says .csv, magic says VTB: magic must win.
	if f, err := DetectFormat(vtbPath); err != nil || f != FormatVTB {
		t.Errorf("DetectFormat(vtb-with-csv-extension) = %v, %v", f, err)
	}
}

// TestScanTrajectoryFileFormatAgnostic runs the same predicate over both
// encodings of one dataset: matched rows must agree (up to CSV
// quantization, which the integer-valued fixture sidesteps), and only the
// VTB path may prune blocks.
func TestScanTrajectoryFileFormatAgnostic(t *testing.T) {
	csvPath, vtbPath, samples := writeBoth(t)
	pred := colstore.TimeWindow(10, 20)

	var want []trajectory.Sample
	for _, s := range samples {
		if s.T >= 10 && s.T <= 20 {
			want = append(want, s)
		}
	}

	for _, tc := range []struct {
		path   string
		format Format
	}{
		{csvPath, FormatCSV},
		{vtbPath, FormatVTB},
	} {
		var got []trajectory.Sample
		stats, format, err := ScanTrajectoryFile(tc.path, pred, func(s trajectory.Sample) {
			got = append(got, s)
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
		if format != tc.format {
			t.Errorf("%s: detected format %s", tc.format, format)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: matched %d rows, want %d", tc.format, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d = %+v, want %+v", tc.format, i, got[i], want[i])
			}
		}
		if tc.format == FormatVTB && stats.BlocksPruned == 0 {
			t.Errorf("VTB scan pruned no blocks: %+v", stats)
		}
		if tc.format == FormatCSV && stats.BlocksTotal != 0 {
			t.Errorf("CSV scan reported blocks: %+v", stats)
		}
	}
}

func TestReadRSSIFileBothFormats(t *testing.T) {
	ms := []rssi.Measurement{
		{ObjID: 1, DeviceID: "wifi-1", RSSI: -42.5, T: 0.5},
		{ObjID: 2, DeviceID: "wifi-2", RSSI: -77.25, T: 1},
	}
	dir := t.TempDir()

	csvPath := filepath.Join(dir, "rssi.csv")
	var buf bytes.Buffer
	if err := WriteRSSICSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csvPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	vtbPath := filepath.Join(dir, "rssi.vtb")
	var vbuf bytes.Buffer
	w := colstore.NewRSSIWriter(&vbuf)
	for _, m := range ms {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(vtbPath, vbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{csvPath, vtbPath} {
		got, _, err := ReadRSSIFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(got) != len(ms) {
			t.Fatalf("%s: read %d rows, want %d", path, len(got), len(ms))
		}
		for i := range got {
			if got[i] != ms[i] {
				t.Fatalf("%s: row %d = %+v, want %+v", path, i, got[i], ms[i])
			}
		}
	}
}
