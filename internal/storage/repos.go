// Package storage is Vita's Storage component (paper §2, §4.2): repositories
// for every generated data type with spatial/temporal indices, the Data
// Stream APIs used by the Producer, and CSV persistence. It replaces the
// paper's PostgreSQL+PostGIS deployment with stdlib-only in-memory stores
// (see DESIGN.md §2).
package storage

import (
	"fmt"
	"sort"
	"sync"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/index"
	"vita/internal/positioning"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// TrajectoryStore keeps raw trajectory records (o_id, loc, t) ordered by
// time per object. It is safe for concurrent appends.
//
// Invariant: every read path (Series, All, Scan, and the stream aggregates
// built on them) requires each object's series to be time-sorted. Appends
// arriving in per-object time order — what the generation pipeline's
// order-preserving collector guarantees — keep the invariant for free; an
// out-of-order append is detected in O(1) and flags the series so the next
// read repairs it with an explicit sort. Readers therefore never observe
// unsorted data, and the common in-order case never pays for sorting.
type TrajectoryStore struct {
	mu    sync.RWMutex
	byObj map[int][]trajectory.Sample
	// lastT tracks each object's newest timestamp; dirty marks objects whose
	// appends violated time order and whose series must be sorted on read.
	lastT map[int]float64
	dirty map[int]bool
	count int
}

// NewTrajectoryStore returns an empty store.
func NewTrajectoryStore() *TrajectoryStore {
	return &TrajectoryStore{
		byObj: make(map[int][]trajectory.Sample),
		lastT: make(map[int]float64),
		dirty: make(map[int]bool),
	}
}

// Append adds one sample. Appending in per-object time order is the fast
// path; an out-of-order sample marks the object's series for lazy sorting.
func (s *TrajectoryStore) Append(sm trajectory.Sample) {
	s.mu.Lock()
	if last, ok := s.lastT[sm.ObjID]; !ok || sm.T >= last {
		s.lastT[sm.ObjID] = sm.T
	} else {
		s.dirty[sm.ObjID] = true
	}
	s.byObj[sm.ObjID] = append(s.byObj[sm.ObjID], sm)
	s.count++
	s.mu.Unlock()
}

// Unsorted returns how many objects currently hold out-of-order series —
// diagnostics for the time-sorted invariant above (0 for pipeline output).
func (s *TrajectoryStore) Unsorted() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.dirty)
}

// Len returns the number of stored samples.
func (s *TrajectoryStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Objects returns the stored object IDs, sorted.
func (s *TrajectoryStore) Objects() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.byObj))
	for id := range s.byObj {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Series returns the time-ordered samples of one object. Series stored in
// time order (the pipeline's guarantee) are returned as a plain copy; a
// series flagged by an out-of-order Append is repaired in place with one
// stable sort and unflagged, so only the first read after a violation pays
// for sorting.
func (s *TrajectoryStore) Series(objID int) []trajectory.Sample {
	s.mu.RLock()
	if !s.dirty[objID] {
		src := s.byObj[objID]
		out := make([]trajectory.Sample, len(src))
		copy(out, src)
		s.mu.RUnlock()
		return out
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty[objID] { // re-check: another reader may have repaired it
		src := s.byObj[objID]
		sort.SliceStable(src, func(i, j int) bool { return src[i].T < src[j].T })
		s.lastT[objID] = src[len(src)-1].T
		delete(s.dirty, objID)
	}
	src := s.byObj[objID]
	out := make([]trajectory.Sample, len(src))
	copy(out, src)
	return out
}

// All returns every sample ordered by (object, time).
func (s *TrajectoryStore) All() []trajectory.Sample {
	var out []trajectory.Sample
	for _, id := range s.Objects() {
		out = append(out, s.Series(id)...)
	}
	return out
}

// Scan calls fn for every sample in (object, time) order; returning false
// stops the scan. This is the streaming read of the Data Stream APIs.
func (s *TrajectoryStore) Scan(fn func(trajectory.Sample) bool) {
	for _, id := range s.Objects() {
		for _, sm := range s.Series(id) {
			if !fn(sm) {
				return
			}
		}
	}
}

// TimeRange returns the samples of an object within [t0, t1].
func (s *TrajectoryStore) TimeRange(objID int, t0, t1 float64) []trajectory.Sample {
	series := s.Series(objID)
	lo := sort.Search(len(series), func(i int) bool { return series[i].T >= t0 })
	hi := sort.Search(len(series), func(i int) bool { return series[i].T > t1 })
	out := make([]trajectory.Sample, hi-lo)
	copy(out, series[lo:hi])
	return out
}

// WindowQuery returns the samples within the spatial box on the given floor
// and the time window — the snapshot-extraction query of the demo (§5
// step 4).
func (s *TrajectoryStore) WindowQuery(floor int, box geom.BBox, t0, t1 float64) []trajectory.Sample {
	var out []trajectory.Sample
	s.Scan(func(sm trajectory.Sample) bool {
		if sm.Loc.Floor == floor && sm.T >= t0 && sm.T <= t1 && box.Contains(sm.Loc.Point) {
			out = append(out, sm)
		}
		return true
	})
	return out
}

// SnapshotAt returns each object's last known sample at or before t — the
// paper's pause-and-extract-a-snapshot operation.
func (s *TrajectoryStore) SnapshotAt(t float64) []trajectory.Sample {
	var out []trajectory.Sample
	for _, id := range s.Objects() {
		series := s.Series(id)
		idx := sort.Search(len(series), func(i int) bool { return series[i].T > t })
		if idx > 0 {
			out = append(out, series[idx-1])
		}
	}
	return out
}

// RSSIStore keeps raw RSSI measurements (o_id, d_id, rssi, t).
type RSSIStore struct {
	mu  sync.RWMutex
	all []rssi.Measurement
}

// NewRSSIStore returns an empty store.
func NewRSSIStore() *RSSIStore { return &RSSIStore{} }

// Append adds one measurement.
func (s *RSSIStore) Append(m rssi.Measurement) {
	s.mu.Lock()
	s.all = append(s.all, m)
	s.mu.Unlock()
}

// Len returns the number of measurements.
func (s *RSSIStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.all)
}

// All returns a copy of every measurement ordered by (object, time, device).
func (s *RSSIStore) All() []rssi.Measurement {
	s.mu.RLock()
	out := make([]rssi.Measurement, len(s.all))
	copy(out, s.all)
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].ObjID != out[j].ObjID {
			return out[i].ObjID < out[j].ObjID
		}
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].DeviceID < out[j].DeviceID
	})
	return out
}

// ByObject returns the measurements of one object in time order.
func (s *RSSIStore) ByObject(objID int) []rssi.Measurement {
	var out []rssi.Measurement
	for _, m := range s.All() {
		if m.ObjID == objID {
			out = append(out, m)
		}
	}
	return out
}

// ByDevice returns the measurements observed by one device in time order.
func (s *RSSIStore) ByDevice(devID string) []rssi.Measurement {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []rssi.Measurement
	for _, m := range s.all {
		if m.DeviceID == devID {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// DeviceStore indexes deployed devices spatially per floor.
type DeviceStore struct {
	devs    []*device.Device
	byFloor map[int]*index.RTree
	byID    map[string]*device.Device
}

// NewDeviceStore indexes the given deployment.
func NewDeviceStore(devs []*device.Device) (*DeviceStore, error) {
	s := &DeviceStore{
		devs:    devs,
		byFloor: make(map[int]*index.RTree),
		byID:    make(map[string]*device.Device, len(devs)),
	}
	perFloor := make(map[int][]index.Item)
	for _, d := range devs {
		if _, dup := s.byID[d.ID]; dup {
			return nil, fmt.Errorf("storage: duplicate device ID %s", d.ID)
		}
		s.byID[d.ID] = d
		perFloor[d.Floor] = append(perFloor[d.Floor], d)
	}
	for fl, items := range perFloor {
		s.byFloor[fl] = index.BulkLoad(items)
	}
	return s, nil
}

// Len returns the number of devices.
func (s *DeviceStore) Len() int { return len(s.devs) }

// All returns the deployment.
func (s *DeviceStore) All() []*device.Device { return s.devs }

// Get resolves a device by ID.
func (s *DeviceStore) Get(id string) (*device.Device, bool) {
	d, ok := s.byID[id]
	return d, ok
}

// InRangeOf returns the devices on the floor whose detection disc covers pt.
func (s *DeviceStore) InRangeOf(floor int, pt geom.Point) []*device.Device {
	idx, ok := s.byFloor[floor]
	if !ok {
		return nil
	}
	var out []*device.Device
	for _, it := range idx.SearchPoint(pt, nil) {
		d := it.(*device.Device)
		if d.InRange(pt) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Nearest returns up to k devices on the floor closest to pt.
func (s *DeviceStore) Nearest(floor int, pt geom.Point, k int) []*device.Device {
	idx, ok := s.byFloor[floor]
	if !ok {
		return nil
	}
	items := idx.Nearest(pt, k)
	out := make([]*device.Device, 0, len(items))
	for _, it := range items {
		out = append(out, it.(*device.Device))
	}
	return out
}

// EstimateStore keeps deterministic positioning records.
type EstimateStore struct {
	mu  sync.RWMutex
	all []positioning.Estimate
}

// NewEstimateStore returns an empty store.
func NewEstimateStore() *EstimateStore { return &EstimateStore{} }

// Append adds estimates.
func (s *EstimateStore) Append(es ...positioning.Estimate) {
	s.mu.Lock()
	s.all = append(s.all, es...)
	s.mu.Unlock()
}

// Len returns the number of estimates.
func (s *EstimateStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.all)
}

// All returns the estimates ordered by (object, time).
func (s *EstimateStore) All() []positioning.Estimate {
	s.mu.RLock()
	out := make([]positioning.Estimate, len(s.all))
	copy(out, s.all)
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].ObjID != out[j].ObjID {
			return out[i].ObjID < out[j].ObjID
		}
		return out[i].T < out[j].T
	})
	return out
}

// ByObject returns one object's estimates in time order.
func (s *EstimateStore) ByObject(objID int) []positioning.Estimate {
	var out []positioning.Estimate
	for _, e := range s.All() {
		if e.ObjID == objID {
			out = append(out, e)
		}
	}
	return out
}

// ProximityStore keeps proximity records.
type ProximityStore struct {
	mu  sync.RWMutex
	all []positioning.ProximityRecord
}

// NewProximityStore returns an empty store.
func NewProximityStore() *ProximityStore { return &ProximityStore{} }

// Append adds records.
func (s *ProximityStore) Append(rs ...positioning.ProximityRecord) {
	s.mu.Lock()
	s.all = append(s.all, rs...)
	s.mu.Unlock()
}

// Len returns the number of records.
func (s *ProximityStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.all)
}

// All returns the records ordered by (object, device, ts).
func (s *ProximityStore) All() []positioning.ProximityRecord {
	s.mu.RLock()
	out := make([]positioning.ProximityRecord, len(s.all))
	copy(out, s.all)
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].ObjID != out[j].ObjID {
			return out[i].ObjID < out[j].ObjID
		}
		if out[i].DeviceID != out[j].DeviceID {
			return out[i].DeviceID < out[j].DeviceID
		}
		return out[i].TS < out[j].TS
	})
	return out
}

// CollocatedWith returns the objects detected by the device during [t0, t1].
func (s *ProximityStore) CollocatedWith(devID string, t0, t1 float64) []int {
	seen := make(map[int]bool)
	for _, r := range s.All() {
		if r.DeviceID == devID && r.TS <= t1 && r.TE >= t0 {
			seen[r.ObjID] = true
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
