package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/positioning"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// The CSV codecs persist the paper's record formats (§4.2):
//
//	trajectory:  o_id, building, floor, partition, x, y, t
//	rssi:        o_id, d_id, rssi, t
//	estimate:    o_id, building, floor, partition, x, y, t
//	proximity:   o_id, d_id, ts, te

// TrajectoryCSVWriter streams trajectory samples as CSV rows. It writes the
// header up front so it can be fed record-by-record from the generation
// pipeline; Close flushes buffered rows but leaves the underlying writer
// open.
type TrajectoryCSVWriter struct {
	cw *csv.Writer
}

// NewTrajectoryCSVWriter returns a streaming writer, having written the
// header row.
func NewTrajectoryCSVWriter(w io.Writer) (*TrajectoryCSVWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"o_id", "building", "floor", "partition", "x", "y", "t"}); err != nil {
		return nil, fmt.Errorf("storage: write trajectory header: %w", err)
	}
	return &TrajectoryCSVWriter{cw: cw}, nil
}

// Write appends one sample row.
func (w *TrajectoryCSVWriter) Write(s trajectory.Sample) error {
	rec := []string{
		strconv.Itoa(s.ObjID),
		s.Loc.Building,
		strconv.Itoa(s.Loc.Floor),
		s.Loc.Partition,
		fmtF(s.Loc.Point.X),
		fmtF(s.Loc.Point.Y),
		fmtF(s.T),
	}
	if err := w.cw.Write(rec); err != nil {
		return fmt.Errorf("storage: write trajectory row: %w", err)
	}
	return nil
}

// Close flushes buffered rows.
func (w *TrajectoryCSVWriter) Close() error {
	w.cw.Flush()
	return w.cw.Error()
}

// WriteTrajectoryCSV writes samples as CSV with a header row.
func WriteTrajectoryCSV(w io.Writer, samples []trajectory.Sample) error {
	tw, err := NewTrajectoryCSVWriter(w)
	if err != nil {
		return err
	}
	for _, s := range samples {
		if err := tw.Write(s); err != nil {
			return err
		}
	}
	return tw.Close()
}

// parseTrajectoryRecord converts one post-header CSV record to a sample.
func parseTrajectoryRecord(rec []string) (trajectory.Sample, error) {
	objID, err := strconv.Atoi(rec[0])
	if err != nil {
		return trajectory.Sample{}, fmt.Errorf("storage: bad o_id %q", rec[0])
	}
	floor, err := strconv.Atoi(rec[2])
	if err != nil {
		return trajectory.Sample{}, fmt.Errorf("storage: bad floor %q", rec[2])
	}
	x, y, t, err := parse3(rec[4], rec[5], rec[6])
	if err != nil {
		return trajectory.Sample{}, err
	}
	return trajectory.Sample{
		ObjID: objID,
		Loc:   model.At(rec[1], floor, rec[3], geom.Pt(x, y)),
		T:     t,
	}, nil
}

// ScanTrajectoryCSV parses CSV written by WriteTrajectoryCSV row by row,
// without materializing the file.
func ScanTrajectoryCSV(r io.Reader, emit func(trajectory.Sample)) error {
	return scanRows(r, 7, func(rec []string) error {
		s, err := parseTrajectoryRecord(rec)
		if err != nil {
			return err
		}
		emit(s)
		return nil
	})
}

// ReadTrajectoryCSV parses CSV written by WriteTrajectoryCSV.
func ReadTrajectoryCSV(r io.Reader) ([]trajectory.Sample, error) {
	var out []trajectory.Sample
	if err := ScanTrajectoryCSV(r, func(s trajectory.Sample) { out = append(out, s) }); err != nil {
		return nil, fmt.Errorf("storage: read trajectory: %w", err)
	}
	return out, nil
}

// RSSICSVWriter streams RSSI measurements as CSV rows; see
// TrajectoryCSVWriter for the streaming contract.
type RSSICSVWriter struct {
	cw *csv.Writer
}

// NewRSSICSVWriter returns a streaming writer, having written the header
// row.
func NewRSSICSVWriter(w io.Writer) (*RSSICSVWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"o_id", "d_id", "rssi", "t"}); err != nil {
		return nil, fmt.Errorf("storage: write rssi header: %w", err)
	}
	return &RSSICSVWriter{cw: cw}, nil
}

// Write appends one measurement row.
func (w *RSSICSVWriter) Write(m rssi.Measurement) error {
	rec := []string{strconv.Itoa(m.ObjID), m.DeviceID, fmtF(m.RSSI), fmtF(m.T)}
	if err := w.cw.Write(rec); err != nil {
		return fmt.Errorf("storage: write rssi row: %w", err)
	}
	return nil
}

// Close flushes buffered rows.
func (w *RSSICSVWriter) Close() error {
	w.cw.Flush()
	return w.cw.Error()
}

// WriteRSSICSV writes measurements as CSV with a header row.
func WriteRSSICSV(w io.Writer, ms []rssi.Measurement) error {
	rw, err := NewRSSICSVWriter(w)
	if err != nil {
		return err
	}
	for _, m := range ms {
		if err := rw.Write(m); err != nil {
			return err
		}
	}
	return rw.Close()
}

// parseRSSIRecord converts one post-header CSV record to a measurement.
func parseRSSIRecord(rec []string) (rssi.Measurement, error) {
	objID, err := strconv.Atoi(rec[0])
	if err != nil {
		return rssi.Measurement{}, fmt.Errorf("storage: bad o_id %q", rec[0])
	}
	v, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return rssi.Measurement{}, fmt.Errorf("storage: bad rssi %q", rec[2])
	}
	t, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return rssi.Measurement{}, fmt.Errorf("storage: bad t %q", rec[3])
	}
	return rssi.Measurement{ObjID: objID, DeviceID: rec[1], RSSI: v, T: t}, nil
}

// ScanRSSICSV parses CSV written by WriteRSSICSV row by row, without
// materializing the file.
func ScanRSSICSV(r io.Reader, emit func(rssi.Measurement)) error {
	return scanRows(r, 4, func(rec []string) error {
		m, err := parseRSSIRecord(rec)
		if err != nil {
			return err
		}
		emit(m)
		return nil
	})
}

// ReadRSSICSV parses CSV written by WriteRSSICSV.
func ReadRSSICSV(r io.Reader) ([]rssi.Measurement, error) {
	var out []rssi.Measurement
	if err := ScanRSSICSV(r, func(m rssi.Measurement) { out = append(out, m) }); err != nil {
		return nil, fmt.Errorf("storage: read rssi: %w", err)
	}
	return out, nil
}

// WriteEstimateCSV writes positioning estimates as CSV with a header row.
func WriteEstimateCSV(w io.Writer, es []positioning.Estimate) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"o_id", "building", "floor", "partition", "x", "y", "t"}); err != nil {
		return fmt.Errorf("storage: write estimate header: %w", err)
	}
	for _, e := range es {
		rec := []string{
			strconv.Itoa(e.ObjID),
			e.Loc.Building,
			strconv.Itoa(e.Loc.Floor),
			e.Loc.Partition,
			fmtF(e.Loc.Point.X),
			fmtF(e.Loc.Point.Y),
			fmtF(e.T),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write estimate row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadEstimateCSV parses CSV written by WriteEstimateCSV.
func ReadEstimateCSV(r io.Reader) ([]positioning.Estimate, error) {
	rows, err := readAll(r, 7)
	if err != nil {
		return nil, fmt.Errorf("storage: read estimate: %w", err)
	}
	out := make([]positioning.Estimate, 0, len(rows))
	for _, rec := range rows {
		objID, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("storage: bad o_id %q", rec[0])
		}
		floor, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("storage: bad floor %q", rec[2])
		}
		x, y, t, err := parse3(rec[4], rec[5], rec[6])
		if err != nil {
			return nil, err
		}
		out = append(out, positioning.Estimate{
			ObjID: objID,
			Loc:   model.At(rec[1], floor, rec[3], geom.Pt(x, y)),
			T:     t,
		})
	}
	return out, nil
}

// WriteProximityCSV writes proximity records as CSV with a header row.
func WriteProximityCSV(w io.Writer, rs []positioning.ProximityRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"o_id", "d_id", "ts", "te"}); err != nil {
		return fmt.Errorf("storage: write proximity header: %w", err)
	}
	for _, r := range rs {
		rec := []string{strconv.Itoa(r.ObjID), r.DeviceID, fmtF(r.TS), fmtF(r.TE)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write proximity row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadProximityCSV parses CSV written by WriteProximityCSV.
func ReadProximityCSV(r io.Reader) ([]positioning.ProximityRecord, error) {
	rows, err := readAll(r, 4)
	if err != nil {
		return nil, fmt.Errorf("storage: read proximity: %w", err)
	}
	out := make([]positioning.ProximityRecord, 0, len(rows))
	for _, rec := range rows {
		objID, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("storage: bad o_id %q", rec[0])
		}
		ts, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("storage: bad ts %q", rec[2])
		}
		te, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("storage: bad te %q", rec[3])
		}
		out = append(out, positioning.ProximityRecord{ObjID: objID, DeviceID: rec[1], TS: ts, TE: te})
	}
	return out, nil
}

func readAll(r io.Reader, fields int) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = fields
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return rows[1:], nil // skip header
}

// scanRows streams the post-header records of r to parse, reusing one
// record buffer.
func scanRows(r io.Reader, fields int, parse func([]string) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = fields
	cr.ReuseRecord = true
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if i == 0 {
			continue // header row
		}
		if err := parse(rec); err != nil {
			return err
		}
	}
}

func parse3(a, b, c string) (float64, float64, float64, error) {
	x, err := strconv.ParseFloat(a, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("storage: bad number %q", a)
	}
	y, err := strconv.ParseFloat(b, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("storage: bad number %q", b)
	}
	t, err := strconv.ParseFloat(c, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("storage: bad number %q", c)
	}
	return x, y, t, nil
}

// fmtF renders floats with exactly 4 decimal places. CSV output is therefore
// LOSSY: coordinates and timestamps are quantized to 1e-4 (0.1 mm / 0.1 ms),
// so a CSV round trip reproduces values only to ±5e-5 — see the tolerance
// test in csv_test.go. Workflows needing bit-exact ground truth should use
// the VTB format (internal/colstore), whose round trip is lossless.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
