package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/positioning"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// The CSV codecs persist the paper's record formats (§4.2):
//
//	trajectory:  o_id, building, floor, partition, x, y, t
//	rssi:        o_id, d_id, rssi, t
//	estimate:    o_id, building, floor, partition, x, y, t
//	proximity:   o_id, d_id, ts, te

// WriteTrajectoryCSV writes samples as CSV with a header row.
func WriteTrajectoryCSV(w io.Writer, samples []trajectory.Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"o_id", "building", "floor", "partition", "x", "y", "t"}); err != nil {
		return fmt.Errorf("storage: write trajectory header: %w", err)
	}
	for _, s := range samples {
		rec := []string{
			strconv.Itoa(s.ObjID),
			s.Loc.Building,
			strconv.Itoa(s.Loc.Floor),
			s.Loc.Partition,
			fmtF(s.Loc.Point.X),
			fmtF(s.Loc.Point.Y),
			fmtF(s.T),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write trajectory row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrajectoryCSV parses CSV written by WriteTrajectoryCSV.
func ReadTrajectoryCSV(r io.Reader) ([]trajectory.Sample, error) {
	rows, err := readAll(r, 7)
	if err != nil {
		return nil, fmt.Errorf("storage: read trajectory: %w", err)
	}
	out := make([]trajectory.Sample, 0, len(rows))
	for _, rec := range rows {
		objID, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("storage: bad o_id %q", rec[0])
		}
		floor, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("storage: bad floor %q", rec[2])
		}
		x, y, t, err := parse3(rec[4], rec[5], rec[6])
		if err != nil {
			return nil, err
		}
		out = append(out, trajectory.Sample{
			ObjID: objID,
			Loc:   model.At(rec[1], floor, rec[3], geom.Pt(x, y)),
			T:     t,
		})
	}
	return out, nil
}

// WriteRSSICSV writes measurements as CSV with a header row.
func WriteRSSICSV(w io.Writer, ms []rssi.Measurement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"o_id", "d_id", "rssi", "t"}); err != nil {
		return fmt.Errorf("storage: write rssi header: %w", err)
	}
	for _, m := range ms {
		rec := []string{strconv.Itoa(m.ObjID), m.DeviceID, fmtF(m.RSSI), fmtF(m.T)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write rssi row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRSSICSV parses CSV written by WriteRSSICSV.
func ReadRSSICSV(r io.Reader) ([]rssi.Measurement, error) {
	rows, err := readAll(r, 4)
	if err != nil {
		return nil, fmt.Errorf("storage: read rssi: %w", err)
	}
	out := make([]rssi.Measurement, 0, len(rows))
	for _, rec := range rows {
		objID, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("storage: bad o_id %q", rec[0])
		}
		v, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("storage: bad rssi %q", rec[2])
		}
		t, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("storage: bad t %q", rec[3])
		}
		out = append(out, rssi.Measurement{ObjID: objID, DeviceID: rec[1], RSSI: v, T: t})
	}
	return out, nil
}

// WriteEstimateCSV writes positioning estimates as CSV with a header row.
func WriteEstimateCSV(w io.Writer, es []positioning.Estimate) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"o_id", "building", "floor", "partition", "x", "y", "t"}); err != nil {
		return fmt.Errorf("storage: write estimate header: %w", err)
	}
	for _, e := range es {
		rec := []string{
			strconv.Itoa(e.ObjID),
			e.Loc.Building,
			strconv.Itoa(e.Loc.Floor),
			e.Loc.Partition,
			fmtF(e.Loc.Point.X),
			fmtF(e.Loc.Point.Y),
			fmtF(e.T),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write estimate row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadEstimateCSV parses CSV written by WriteEstimateCSV.
func ReadEstimateCSV(r io.Reader) ([]positioning.Estimate, error) {
	rows, err := readAll(r, 7)
	if err != nil {
		return nil, fmt.Errorf("storage: read estimate: %w", err)
	}
	out := make([]positioning.Estimate, 0, len(rows))
	for _, rec := range rows {
		objID, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("storage: bad o_id %q", rec[0])
		}
		floor, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("storage: bad floor %q", rec[2])
		}
		x, y, t, err := parse3(rec[4], rec[5], rec[6])
		if err != nil {
			return nil, err
		}
		out = append(out, positioning.Estimate{
			ObjID: objID,
			Loc:   model.At(rec[1], floor, rec[3], geom.Pt(x, y)),
			T:     t,
		})
	}
	return out, nil
}

// WriteProximityCSV writes proximity records as CSV with a header row.
func WriteProximityCSV(w io.Writer, rs []positioning.ProximityRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"o_id", "d_id", "ts", "te"}); err != nil {
		return fmt.Errorf("storage: write proximity header: %w", err)
	}
	for _, r := range rs {
		rec := []string{strconv.Itoa(r.ObjID), r.DeviceID, fmtF(r.TS), fmtF(r.TE)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write proximity row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadProximityCSV parses CSV written by WriteProximityCSV.
func ReadProximityCSV(r io.Reader) ([]positioning.ProximityRecord, error) {
	rows, err := readAll(r, 4)
	if err != nil {
		return nil, fmt.Errorf("storage: read proximity: %w", err)
	}
	out := make([]positioning.ProximityRecord, 0, len(rows))
	for _, rec := range rows {
		objID, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("storage: bad o_id %q", rec[0])
		}
		ts, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("storage: bad ts %q", rec[2])
		}
		te, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("storage: bad te %q", rec[3])
		}
		out = append(out, positioning.ProximityRecord{ObjID: objID, DeviceID: rec[1], TS: ts, TE: te})
	}
	return out, nil
}

func readAll(r io.Reader, fields int) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = fields
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return rows[1:], nil // skip header
}

func parse3(a, b, c string) (float64, float64, float64, error) {
	x, err := strconv.ParseFloat(a, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("storage: bad number %q", a)
	}
	y, err := strconv.ParseFloat(b, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("storage: bad number %q", b)
	}
	t, err := strconv.ParseFloat(c, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("storage: bad number %q", c)
	}
	return x, y, t, nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
