package storage

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/positioning"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

func sample(obj int, floor int, x, y, t float64) trajectory.Sample {
	return trajectory.Sample{
		ObjID: obj,
		Loc:   model.At("b", floor, "P", geom.Pt(x, y)),
		T:     t,
	}
}

func TestTrajectoryStoreBasics(t *testing.T) {
	s := NewTrajectoryStore()
	s.Append(sample(2, 0, 1, 1, 10))
	s.Append(sample(1, 0, 0, 0, 0))
	s.Append(sample(1, 0, 5, 0, 5))
	s.Append(sample(1, 1, 9, 9, 9))
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Objects(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Objects = %v", got)
	}
	series := s.Series(1)
	if len(series) != 3 || series[0].T != 0 || series[2].T != 9 {
		t.Fatalf("Series = %+v", series)
	}
	if got := s.TimeRange(1, 4, 9); len(got) != 2 {
		t.Fatalf("TimeRange = %d", len(got))
	}
	all := s.All()
	if len(all) != 4 || all[0].ObjID != 1 {
		t.Fatalf("All = %+v", all)
	}
	n := 0
	s.Scan(func(trajectory.Sample) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("Scan early stop broken: %d", n)
	}
}

func TestTrajectoryStoreSnapshotAndWindow(t *testing.T) {
	s := NewTrajectoryStore()
	s.Append(sample(1, 0, 0, 0, 0))
	s.Append(sample(1, 0, 10, 0, 10))
	s.Append(sample(2, 0, 5, 5, 3))
	snap := s.SnapshotAt(5)
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d", len(snap))
	}
	for _, sm := range snap {
		if sm.T > 5 {
			t.Errorf("snapshot sample after cutoff: %v", sm.T)
		}
	}
	win := s.WindowQuery(0, geom.BBox{Min: geom.Pt(4, 4), Max: geom.Pt(6, 6)}, 0, 10)
	if len(win) != 1 || win[0].ObjID != 2 {
		t.Fatalf("window = %+v", win)
	}
	if got := s.WindowQuery(1, geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}, 0, 10); len(got) != 0 {
		t.Error("wrong-floor window matched")
	}
}

func TestTrajectoryStoreConcurrentAppend(t *testing.T) {
	s := NewTrajectoryStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Append(sample(g, 0, float64(i), 0, float64(i)))
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("concurrent Len = %d", s.Len())
	}
}

func TestRSSIStore(t *testing.T) {
	s := NewRSSIStore()
	s.Append(rssi.Measurement{ObjID: 2, DeviceID: "b", RSSI: -50, T: 1})
	s.Append(rssi.Measurement{ObjID: 1, DeviceID: "a", RSSI: -40, T: 2})
	s.Append(rssi.Measurement{ObjID: 1, DeviceID: "b", RSSI: -45, T: 1})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	all := s.All()
	if all[0].ObjID != 1 || all[0].T != 1 {
		t.Errorf("All ordering: %+v", all[0])
	}
	if got := s.ByObject(1); len(got) != 2 {
		t.Errorf("ByObject = %d", len(got))
	}
	if got := s.ByDevice("b"); len(got) != 2 || got[0].T > got[1].T {
		t.Errorf("ByDevice = %+v", got)
	}
}

func TestDeviceStore(t *testing.T) {
	props := device.Properties{DetectionRange: 5}
	devs := []*device.Device{
		{ID: "a", Floor: 0, Position: geom.Pt(0, 0), Props: props},
		{ID: "b", Floor: 0, Position: geom.Pt(10, 0), Props: props},
		{ID: "c", Floor: 1, Position: geom.Pt(0, 0), Props: props},
	}
	s, err := NewDeviceStore(devs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, ok := s.Get("b"); !ok {
		t.Error("Get(b) missing")
	}
	in := s.InRangeOf(0, geom.Pt(3, 0))
	if len(in) != 1 || in[0].ID != "a" {
		t.Errorf("InRangeOf = %+v", in)
	}
	near := s.Nearest(0, geom.Pt(9, 0), 2)
	if len(near) != 2 || near[0].ID != "b" {
		t.Errorf("Nearest = %+v", near)
	}
	if got := s.InRangeOf(5, geom.Pt(0, 0)); got != nil {
		t.Error("unknown floor returned devices")
	}
	if _, err := NewDeviceStore([]*device.Device{{ID: "x"}, {ID: "x"}}); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestEstimateStore(t *testing.T) {
	s := NewEstimateStore()
	s.Append(
		positioning.Estimate{ObjID: 2, T: 1},
		positioning.Estimate{ObjID: 1, T: 2},
		positioning.Estimate{ObjID: 1, T: 1},
	)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	all := s.All()
	if all[0].ObjID != 1 || all[0].T != 1 || all[2].ObjID != 2 {
		t.Errorf("ordering: %+v", all)
	}
	if got := s.ByObject(1); len(got) != 2 {
		t.Errorf("ByObject = %d", len(got))
	}
}

func TestProximityStore(t *testing.T) {
	s := NewProximityStore()
	s.Append(
		positioning.ProximityRecord{ObjID: 1, DeviceID: "d1", TS: 0, TE: 5},
		positioning.ProximityRecord{ObjID: 2, DeviceID: "d1", TS: 10, TE: 20},
		positioning.ProximityRecord{ObjID: 1, DeviceID: "d2", TS: 7, TE: 8},
	)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := s.CollocatedWith("d1", 4, 12)
	if len(got) != 2 {
		t.Errorf("CollocatedWith = %v", got)
	}
	if got := s.CollocatedWith("d1", 6, 9); len(got) != 0 {
		t.Errorf("out-of-window collocation: %v", got)
	}
}

func TestTrajectoryCSVRoundTrip(t *testing.T) {
	in := []trajectory.Sample{
		sample(1, 0, 1.5, 2.25, 0),
		sample(1, 1, 3, 4, 1),
		sample(2, 0, 0, 0, 0.5),
	}
	var buf bytes.Buffer
	if err := WriteTrajectoryCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrajectoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost rows: %d", len(out))
	}
	for i := range in {
		if in[i].ObjID != out[i].ObjID || in[i].Loc.Floor != out[i].Loc.Floor ||
			in[i].Loc.Point.Dist(out[i].Loc.Point) > 1e-4 {
			t.Errorf("row %d mismatch: %+v vs %+v", i, in[i], out[i])
		}
	}
}

func TestRSSICSVRoundTrip(t *testing.T) {
	in := []rssi.Measurement{
		{ObjID: 1, DeviceID: "a", RSSI: -42.5, T: 0},
		{ObjID: 2, DeviceID: "b", RSSI: -61.125, T: 3.5},
	}
	var buf bytes.Buffer
	if err := WriteRSSICSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRSSICSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].DeviceID != "a" || out[1].RSSI != -61.125 {
		t.Errorf("round trip: %+v", out)
	}
}

func TestEstimateCSVRoundTrip(t *testing.T) {
	in := []positioning.Estimate{
		{ObjID: 1, Loc: model.At("b", 0, "P", geom.Pt(1, 2)), T: 3},
	}
	var buf bytes.Buffer
	if err := WriteEstimateCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEstimateCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Loc.Partition != "P" {
		t.Errorf("round trip: %+v", out)
	}
}

func TestProximityCSVRoundTrip(t *testing.T) {
	in := []positioning.ProximityRecord{
		{ObjID: 1, DeviceID: "d", TS: 0.5, TE: 9.25},
	}
	var buf bytes.Buffer
	if err := WriteProximityCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadProximityCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].TE != 9.25 {
		t.Errorf("round trip: %+v", out)
	}
}

func TestCSVReadErrors(t *testing.T) {
	if _, err := ReadTrajectoryCSV(strings.NewReader("o_id,building,floor,partition,x,y,t\nbad,b,0,P,0,0,0\n")); err == nil {
		t.Error("bad o_id accepted")
	}
	if _, err := ReadRSSICSV(strings.NewReader("o_id,d_id,rssi,t\n1,a,not-a-number,0\n")); err == nil {
		t.Error("bad rssi accepted")
	}
	if _, err := ReadProximityCSV(strings.NewReader("o_id,d_id,ts,te\n1,a,x,0\n")); err == nil {
		t.Error("bad ts accepted")
	}
	// Wrong column count.
	if _, err := ReadTrajectoryCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("wrong field count accepted")
	}
}
