package storage

import (
	"testing"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

func sampleIn(obj int, part string, t float64) trajectory.Sample {
	return trajectory.Sample{
		ObjID: obj,
		Loc:   model.At("b", 0, part, geom.Pt(t, 0)),
		T:     t,
	}
}

// streamStore builds a small trajectory: object 1 moves A(0-10s) → B(15-20s),
// object 2 stays in A.2 (a decomposed child of A) the whole time.
func streamStore() *TrajectoryStore {
	s := NewTrajectoryStore()
	for t := 0.0; t <= 10; t += 5 {
		s.Append(sampleIn(1, "A", t))
	}
	for t := 15.0; t <= 20; t += 5 {
		s.Append(sampleIn(1, "B", t))
	}
	for t := 0.0; t <= 20; t += 5 {
		s.Append(sampleIn(2, "A.2", t))
	}
	return s
}

func TestDwellTimes(t *testing.T) {
	dt := DwellTimes(streamStore())
	// Object 1: 0-10 in A, 10-15 gap attributed to A, 15-20 in B.
	if got := dt[1]["A"]; got != 15 {
		t.Errorf("obj1 dwell in A = %v, want 15", got)
	}
	if got := dt[1]["B"]; got != 5 {
		t.Errorf("obj1 dwell in B = %v, want 5", got)
	}
	// Object 2: full 20s in root A (via child A.2).
	if got := dt[2]["A"]; got != 20 {
		t.Errorf("obj2 dwell in A = %v, want 20", got)
	}
}

func TestFlowMatrix(t *testing.T) {
	fm := FlowMatrix(streamStore())
	if got := fm["A"]["B"]; got != 1 {
		t.Errorf("A->B flow = %d, want 1", got)
	}
	if got := fm["B"]["A"]; got != 0 {
		t.Errorf("B->A flow = %d, want 0", got)
	}
	// Self transitions (A.2 → A.2 collapses to A → A) excluded.
	if _, ok := fm["A"]["A"]; ok {
		t.Error("self transition recorded")
	}
}

func TestVisitCountsAndTopPartitions(t *testing.T) {
	s := streamStore()
	vc := VisitCounts(s)
	if vc["A"] != 2 {
		t.Errorf("A visits = %d, want 2", vc["A"])
	}
	if vc["B"] != 1 {
		t.Errorf("B visits = %d, want 1", vc["B"])
	}
	top := TopPartitions(s, 1)
	if len(top) != 1 || top[0] != "A" {
		t.Errorf("TopPartitions = %v", top)
	}
	all := TopPartitions(s, 0)
	if len(all) != 2 {
		t.Errorf("TopPartitions(0) = %v", all)
	}
}

func TestPopulationOverTime(t *testing.T) {
	pop := PopulationOverTime(streamStore(), 10)
	// Buckets: [0,10): both objects; [10,20): both (1 in B from 15, 2 in A.2);
	// [20,30): both at t=20.
	if len(pop) != 3 {
		t.Fatalf("buckets = %d", len(pop))
	}
	if pop[0] != 2 || pop[1] != 2 {
		t.Errorf("population = %v", pop)
	}
}

func TestDeviceLoad(t *testing.T) {
	rs := NewRSSIStore()
	for _, tm := range []float64{1, 2, 65, 70} {
		rs.Append(rssi.Measurement{ObjID: 1, DeviceID: "d1", RSSI: -50, T: tm})
	}
	rs.Append(rssi.Measurement{ObjID: 1, DeviceID: "d2", RSSI: -50, T: 5})
	load := DeviceLoad(rs, 60)
	if got := load["d1"]; len(got) != 2 || got[0] != 2 || got[1] != 2 {
		t.Errorf("d1 load = %v", got)
	}
	if got := load["d2"]; got[0] != 1 {
		t.Errorf("d2 load = %v", got)
	}
}

// TestAggregatesToleratOutOfOrderAppends is the regression test for the
// time-sorted invariant: appending samples out of time order must flag the
// series, and every aggregate must still compute as if the samples had
// arrived sorted.
func TestAggregatesTolerateOutOfOrderAppends(t *testing.T) {
	sorted := streamStore()

	shuffled := NewTrajectoryStore()
	// Same samples as streamStore, object 1 appended in reversed time order.
	for t := 20.0; t >= 15; t -= 5 {
		shuffled.Append(sampleIn(1, "B", t))
	}
	for t := 10.0; t >= 0; t -= 5 {
		shuffled.Append(sampleIn(1, "A", t))
	}
	for t := 0.0; t <= 20; t += 5 {
		shuffled.Append(sampleIn(2, "A.2", t))
	}

	if shuffled.Unsorted() != 1 {
		t.Fatalf("Unsorted() = %d, want 1 (object 1 out of order)", shuffled.Unsorted())
	}
	if sorted.Unsorted() != 0 {
		t.Fatalf("in-order store flagged %d unsorted objects", sorted.Unsorted())
	}

	a, b := DwellTimes(sorted), DwellTimes(shuffled)
	for obj, want := range a {
		for part, w := range want {
			if got := b[obj][part]; got != w {
				t.Errorf("dwell obj %d part %s = %v, want %v", obj, part, got, w)
			}
		}
	}
	fa, fb := FlowMatrix(sorted), FlowMatrix(shuffled)
	if fb["A"]["B"] != fa["A"]["B"] || fb["B"]["A"] != fa["B"]["A"] {
		t.Errorf("flows differ: sorted %v vs shuffled %v", fa, fb)
	}

	// Series itself must come back time-sorted.
	series := shuffled.Series(1)
	for i := 1; i < len(series); i++ {
		if series[i].T < series[i-1].T {
			t.Fatalf("Series(1) not sorted at %d: %v after %v", i, series[i].T, series[i-1].T)
		}
	}
}

// TestSeriesFastPathPreservesOrder pins the fast path: in-order appends are
// returned exactly as inserted, without a repair sort.
func TestSeriesFastPathPreservesOrder(t *testing.T) {
	s := NewTrajectoryStore()
	for i := 0; i <= 10; i++ {
		s.Append(sampleIn(3, "A", float64(i)))
	}
	if s.Unsorted() != 0 {
		t.Fatalf("in-order appends flagged dirty")
	}
	series := s.Series(3)
	if len(series) != 11 {
		t.Fatalf("len = %d", len(series))
	}
	for i, sm := range series {
		if sm.T != float64(i) {
			t.Fatalf("series[%d].T = %v", i, sm.T)
		}
	}
}

// TestSeriesRepairPersists pins that the repair sort runs once: the first
// read of a flagged series fixes it in place and clears the flag.
func TestSeriesRepairPersists(t *testing.T) {
	s := NewTrajectoryStore()
	s.Append(sampleIn(1, "A", 10))
	s.Append(sampleIn(1, "A", 5)) // out of order
	s.Append(sampleIn(1, "A", 7)) // still out of order vs lastT=10
	if s.Unsorted() != 1 {
		t.Fatalf("Unsorted() = %d, want 1", s.Unsorted())
	}
	series := s.Series(1)
	for i := 1; i < len(series); i++ {
		if series[i].T < series[i-1].T {
			t.Fatalf("Series not sorted: %v after %v", series[i].T, series[i-1].T)
		}
	}
	if s.Unsorted() != 0 {
		t.Errorf("repair not persisted: Unsorted() = %d after read", s.Unsorted())
	}
	// In-order appends after the repair must not re-flag the series.
	s.Append(sampleIn(1, "A", 12))
	if s.Unsorted() != 0 {
		t.Errorf("in-order append after repair re-flagged the series")
	}
	if got := s.Series(1); got[len(got)-1].T != 12 {
		t.Errorf("last sample T = %v, want 12", got[len(got)-1].T)
	}
}
