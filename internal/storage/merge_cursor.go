package storage

import (
	"vita/internal/colstore"
)

// Merged cursors present several sorted inputs — the live segments of an
// internal/seglog dataset — as one cursor in the order a single file holding
// the same rows would have. Each input is already sorted (trajectory segments
// carry global time order, RSSI segments ascending object groups) and inputs
// never interleave *within* an equal key except by input order, so a k-way
// min-scan with input index as the final tie-break reproduces the original
// stream exactly. Segment counts are small (compaction keeps them so), so the
// scan over inputs per row beats a heap on real workloads.
//
// Memory stays O(inputs × batch): one decoded batch per input plus the output
// batch, however large the dataset.

// mergeBatchSize is how many rows one merged output batch holds — matched to
// csvCursorBatchSize and the VTB default block size so downstream consumers
// see the usual batch granularity.
const mergeBatchSize = 4096

// NewTrajectoryMergeCursor merges already-open trajectory cursors into one
// stream ordered by (T, ObjID, input index). The merged cursor owns the
// inputs: its Close closes them all. Inputs must be sorted by (T, ObjID) —
// true of every VTB trajectory file the pipeline writes.
func NewTrajectoryMergeCursor(inputs []TrajectoryCursor) TrajectoryCursor {
	return &trajectoryMergeCursor{
		in:  inputs,
		cur: make([]*colstore.TrajectoryBatch, len(inputs)),
		pos: make([]int, len(inputs)),
	}
}

// OpenTrajectoryCursorMulti opens every path and merges them in time order;
// see NewTrajectoryMergeCursor. A single path opens without merge overhead.
func OpenTrajectoryCursorMulti(paths []string, pred colstore.Predicate, opts CursorOptions) (TrajectoryCursor, error) {
	inputs := make([]TrajectoryCursor, 0, len(paths))
	for _, p := range paths {
		cur, _, err := OpenTrajectoryCursorOptions(p, pred, opts)
		if err != nil {
			for _, c := range inputs {
				c.Close()
			}
			return nil, err
		}
		inputs = append(inputs, cur)
	}
	if len(inputs) == 1 {
		return inputs[0], nil
	}
	return NewTrajectoryMergeCursor(inputs), nil
}

type trajectoryMergeCursor struct {
	in     []TrajectoryCursor
	cur    []*colstore.TrajectoryBatch // current batch per input; nil = drained
	pos    []int
	out    colstore.TrajectoryBatch
	peak   int64
	err    error
	primed bool
	closed bool
}

func (c *trajectoryMergeCursor) Next() bool {
	if c.err != nil || c.closed {
		return false
	}
	if !c.primed {
		c.primed = true
		for i := range c.in {
			c.advance(i)
			if c.err != nil {
				return false
			}
		}
	}
	c.out.Reset()
	for c.out.Len() < mergeBatchSize {
		best := -1
		for i, b := range c.cur {
			if b == nil {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			bb := c.cur[best]
			ti, tb := b.T[c.pos[i]], bb.T[c.pos[best]]
			// Strict comparisons keep the earliest input on full ties, which
			// is the (T, ObjID, input index) order.
			if ti < tb || (ti == tb && b.ObjID[c.pos[i]] < bb.ObjID[c.pos[best]]) {
				best = i
			}
		}
		if best == -1 {
			break // every input drained
		}
		c.out.Append(c.cur[best].Row(c.pos[best]))
		c.pos[best]++
		if c.pos[best] == c.cur[best].Len() {
			c.advance(best)
			if c.err != nil {
				return false
			}
		}
	}
	if n := c.out.Bytes(); n > c.peak {
		c.peak = n
	}
	return c.out.Len() > 0
}

// advance pulls input i's next batch, marking it drained at end of input.
// Holding the previous batch pointer across other inputs' advances is safe:
// a cursor's batch is invalidated only by its own Next.
func (c *trajectoryMergeCursor) advance(i int) {
	if c.in[i].Next() {
		c.cur[i] = c.in[i].Batch()
		c.pos[i] = 0
		return
	}
	c.cur[i] = nil
	if err := c.in[i].Err(); err != nil {
		c.err = err
	}
}

func (c *trajectoryMergeCursor) Batch() *colstore.TrajectoryBatch { return &c.out }
func (c *trajectoryMergeCursor) Err() error                       { return c.err }

// Stats sums the inputs' scan statistics.
func (c *trajectoryMergeCursor) Stats() colstore.ScanStats {
	var st colstore.ScanStats
	for _, in := range c.in {
		s := in.Stats()
		st.BlocksTotal += s.BlocksTotal
		st.BlocksScanned += s.BlocksScanned
		st.BlocksPruned += s.BlocksPruned
		st.RowsScanned += s.RowsScanned
		st.RowsMatched += s.RowsMatched
	}
	return st
}

// PeakDecodedBytes returns the largest merged output batch so far — the
// cursor's own transient footprint (each input additionally holds one decoded
// block at a time).
func (c *trajectoryMergeCursor) PeakDecodedBytes() int64 { return c.peak }

func (c *trajectoryMergeCursor) Close() error {
	if !c.closed {
		c.closed = true
		for _, in := range c.in {
			if cerr := in.Close(); c.err == nil && cerr != nil {
				c.err = cerr
			}
		}
	}
	return c.err
}

// NewRSSIMergeCursor merges already-open RSSI cursors into one stream ordered
// by (ObjID, input index): each object's rows come out grouped, inputs'
// chunks of a split group concatenated in input order — the order a single
// file written by the pipeline would carry. The merged cursor owns the
// inputs.
func NewRSSIMergeCursor(inputs []RSSICursor) RSSICursor {
	return &rssiMergeCursor{
		in:  inputs,
		cur: make([]*colstore.RSSIBatch, len(inputs)),
		pos: make([]int, len(inputs)),
	}
}

// OpenRSSICursorMulti opens every path and merges them in object-group
// order; see NewRSSIMergeCursor.
func OpenRSSICursorMulti(paths []string, pred colstore.Predicate, opts CursorOptions) (RSSICursor, error) {
	inputs := make([]RSSICursor, 0, len(paths))
	for _, p := range paths {
		cur, _, err := OpenRSSICursorOptions(p, pred, opts)
		if err != nil {
			for _, c := range inputs {
				c.Close()
			}
			return nil, err
		}
		inputs = append(inputs, cur)
	}
	if len(inputs) == 1 {
		return inputs[0], nil
	}
	return NewRSSIMergeCursor(inputs), nil
}

type rssiMergeCursor struct {
	in     []RSSICursor
	cur    []*colstore.RSSIBatch
	pos    []int
	out    colstore.RSSIBatch
	err    error
	primed bool
	closed bool
}

func (c *rssiMergeCursor) Next() bool {
	if c.err != nil || c.closed {
		return false
	}
	if !c.primed {
		c.primed = true
		for i := range c.in {
			c.advance(i)
			if c.err != nil {
				return false
			}
		}
	}
	c.out.Reset()
	for c.out.Len() < mergeBatchSize {
		best := -1
		for i, b := range c.cur {
			if b == nil {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			if b.ObjID[c.pos[i]] < c.cur[best].ObjID[c.pos[best]] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c.out.Append(c.cur[best].Row(c.pos[best]))
		c.pos[best]++
		if c.pos[best] == c.cur[best].Len() {
			c.advance(best)
			if c.err != nil {
				return false
			}
		}
	}
	return c.out.Len() > 0
}

func (c *rssiMergeCursor) advance(i int) {
	if c.in[i].Next() {
		c.cur[i] = c.in[i].Batch()
		c.pos[i] = 0
		return
	}
	c.cur[i] = nil
	if err := c.in[i].Err(); err != nil {
		c.err = err
	}
}

func (c *rssiMergeCursor) Batch() *colstore.RSSIBatch { return &c.out }
func (c *rssiMergeCursor) Err() error                 { return c.err }

func (c *rssiMergeCursor) Stats() colstore.ScanStats {
	var st colstore.ScanStats
	for _, in := range c.in {
		s := in.Stats()
		st.BlocksTotal += s.BlocksTotal
		st.BlocksScanned += s.BlocksScanned
		st.BlocksPruned += s.BlocksPruned
		st.RowsScanned += s.RowsScanned
		st.RowsMatched += s.RowsMatched
	}
	return st
}

func (c *rssiMergeCursor) Close() error {
	if !c.closed {
		c.closed = true
		for _, in := range c.in {
			if cerr := in.Close(); c.err == nil && cerr != nil {
				c.err = cerr
			}
		}
	}
	return c.err
}
