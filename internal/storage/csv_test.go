package storage

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/positioning"
	"vita/internal/rng"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// Exhaustive Write*CSV → Read*CSV round-trips: every field must survive,
// including string fields that need CSV quoting and values at the 4-decimal
// precision the writers emit.

func TestTrajectoryCSVRoundTripAllFields(t *testing.T) {
	in := []trajectory.Sample{
		{ObjID: 0, Loc: model.At("office", 0, "F0-HALL.2", geom.Pt(0, 0)), T: 0},
		{ObjID: 41, Loc: model.At("mall, west wing", 3, `P "atrium"`, geom.Pt(12.3456, -7.0001)), T: 359.25},
		{ObjID: 7, Loc: model.At("b", -1, "", geom.Pt(0.0001, 9999.9999)), T: 0.0001},
	}
	var buf bytes.Buffer
	if err := WriteTrajectoryCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrajectoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("rows: got %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ObjID != in[i].ObjID ||
			out[i].Loc.Building != in[i].Loc.Building ||
			out[i].Loc.Floor != in[i].Loc.Floor ||
			out[i].Loc.Partition != in[i].Loc.Partition ||
			out[i].Loc.Point != in[i].Loc.Point ||
			out[i].T != in[i].T {
			t.Errorf("row %d: got %+v, want %+v", i, out[i], in[i])
		}
		if !out[i].Loc.HasPoint {
			t.Errorf("row %d lost HasPoint", i)
		}
	}
}

func TestRSSICSVRoundTripAllFields(t *testing.T) {
	in := []rssi.Measurement{
		{ObjID: 0, DeviceID: "wifi-0", RSSI: -30, T: 0},
		{ObjID: 12, DeviceID: `d,"quoted"`, RSSI: -99.1234, T: 599.5},
		{ObjID: 3, DeviceID: "bt-7", RSSI: 0.0001, T: 0.25},
	}
	var buf bytes.Buffer
	if err := WriteRSSICSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRSSICSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("rows: got %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("row %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestEstimateCSVRoundTripAllFields(t *testing.T) {
	in := []positioning.Estimate{
		{ObjID: 5, Loc: model.At("office", 1, "F1-N2.1", geom.Pt(33.25, 17.75)), T: 42.5},
		{ObjID: 6, Loc: model.At("clinic", 0, "waiting, room", geom.Pt(-1.5, 0)), T: 0},
	}
	var buf bytes.Buffer
	if err := WriteEstimateCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEstimateCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("rows: got %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ObjID != in[i].ObjID ||
			out[i].Loc.Building != in[i].Loc.Building ||
			out[i].Loc.Floor != in[i].Loc.Floor ||
			out[i].Loc.Partition != in[i].Loc.Partition ||
			out[i].Loc.Point != in[i].Loc.Point ||
			out[i].T != in[i].T {
			t.Errorf("row %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestProximityCSVRoundTripAllFields(t *testing.T) {
	in := []positioning.ProximityRecord{
		{ObjID: 1, DeviceID: "rfid-3", TS: 0, TE: 12.75},
		{ObjID: 2, DeviceID: "rfid-3", TS: 100.0001, TE: 100.0002},
	}
	var buf bytes.Buffer
	if err := WriteProximityCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadProximityCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("rows: got %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("row %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

// TestCSVRoundTripGenerated round-trips a larger randomized batch at the
// writers' 4-decimal precision.
func TestCSVRoundTripGenerated(t *testing.T) {
	r := rng.New(99)
	q := func(v float64) float64 { return float64(int(v*10000)) / 10000 } // 4-decimal grid
	in := make([]trajectory.Sample, 500)
	for i := range in {
		in[i] = trajectory.Sample{
			ObjID: r.Intn(50),
			Loc: model.At("office", r.Intn(3), "P", geom.Pt(
				q(r.Range(-100, 100)), q(r.Range(-100, 100)))),
			T: q(r.Range(0, 600)),
		}
	}
	var buf bytes.Buffer
	if err := WriteTrajectoryCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrajectoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("rows: got %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("row %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestCSVEmptyRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrajectoryCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if out, err := ReadTrajectoryCSV(&buf); err != nil || len(out) != 0 {
		t.Fatalf("empty trajectory round trip: %v, %d rows", err, len(out))
	}
	// A completely empty reader (no header) is not an error either.
	if out, err := ReadEstimateCSV(strings.NewReader("")); err != nil || len(out) != 0 {
		t.Fatalf("empty estimate read: %v, %d rows", err, len(out))
	}
}

// TestCSVQuantizationTolerance pins the documented lossiness of the CSV
// codec: fmtF quantizes to 4 decimal places, so full-precision values come
// back within ±5e-5 but generally not bit-exact. (The VTB codec of
// internal/colstore is the lossless counterpart; see its round-trip tests.)
func TestCSVQuantizationTolerance(t *testing.T) {
	in := []trajectory.Sample{
		{ObjID: 1, Loc: model.At("b", 0, "p", geom.Pt(math.Pi, math.Sqrt2)), T: 1.0 / 3.0},
		{ObjID: 2, Loc: model.At("b", 1, "p", geom.Pt(-math.E, 1e-5)), T: 123.456789},
	}
	var buf bytes.Buffer
	if err := WriteTrajectoryCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrajectoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 5e-5 // half of the 1e-4 quantum
	exact := true
	for i := range in {
		for _, d := range []float64{
			out[i].Loc.Point.X - in[i].Loc.Point.X,
			out[i].Loc.Point.Y - in[i].Loc.Point.Y,
			out[i].T - in[i].T,
		} {
			if math.Abs(d) > tol {
				t.Errorf("row %d drifted by %g (> %g)", i, d, tol)
			}
			if d != 0 {
				exact = false
			}
		}
	}
	if exact {
		t.Error("full-precision values survived CSV exactly; quantization doc (and this test) are stale")
	}
}
