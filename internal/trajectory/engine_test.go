package trajectory

import (
	"math"
	"testing"

	"vita/internal/ifc"
	"vita/internal/object"
	"vita/internal/rng"
	"vita/internal/topo"
)

func officeTopo(t testing.TB) *topo.Topology {
	t.Helper()
	f, err := ifc.Parse(ifc.OfficeIFC())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(b, topo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func runEngine(t testing.TB, seed uint64, cfg Config, spawn object.SpawnConfig) ([]Sample, Stats) {
	t.Helper()
	tp := officeTopo(t)
	sp, err := object.NewSpawner(tp, spawn)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tp, sp, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	stats, err := eng.Run(func(s Sample) { samples = append(samples, s) })
	if err != nil {
		t.Fatal(err)
	}
	return samples, stats
}

func defaultSpawn() object.SpawnConfig {
	return object.SpawnConfig{
		InitialCount: 8,
		MinLifespan:  120, MaxLifespan: 120,
		MaxSpeed: 1.6,
		Pattern:  object.DefaultPattern(),
	}
}

func TestEngineProducesOrderedSamples(t *testing.T) {
	samples, stats := runEngine(t, 1, Config{Duration: 120, SampleInterval: 1}, defaultSpawn())
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	if stats.Spawned != 8 {
		t.Errorf("spawned %d", stats.Spawned)
	}
	// Per-object timestamps strictly increasing.
	last := map[int]float64{}
	for _, s := range samples {
		if prev, ok := last[s.ObjID]; ok && s.T <= prev {
			t.Fatalf("object %d samples out of order: %v after %v", s.ObjID, s.T, prev)
		}
		last[s.ObjID] = s.T
	}
}

func TestEngineSamplesInsideBuilding(t *testing.T) {
	tp := officeTopo(t)
	samples, _ := runEngine(t, 2, Config{Duration: 120, SampleInterval: 1}, defaultSpawn())
	for _, s := range samples {
		f, ok := tp.B.Floor(s.Loc.Floor)
		if !ok {
			t.Fatalf("sample on unknown floor %d", s.Loc.Floor)
		}
		bb := f.BBox().Expand(0.5)
		if !bb.Contains(s.Loc.Point) {
			t.Fatalf("sample outside building: %v", s.Loc)
		}
		if s.Loc.Partition == "" {
			t.Fatalf("sample without partition at t=%v", s.T)
		}
	}
}

func TestEngineSpeedBound(t *testing.T) {
	spawn := defaultSpawn()
	spawn.MaxSpeed = 1.5
	samples, _ := runEngine(t, 3, Config{Duration: 120, SampleInterval: 1}, spawn)
	byObj := map[int][]Sample{}
	for _, s := range samples {
		byObj[s.ObjID] = append(byObj[s.ObjID], s)
	}
	for id, series := range byObj {
		for i := 1; i < len(series); i++ {
			a, b := series[i-1], series[i]
			if a.Loc.Floor != b.Loc.Floor {
				continue // stair traversal teleports floors at leg end
			}
			dt := b.T - a.T
			dist := a.Loc.Point.Dist(b.Loc.Point)
			// Allow slack for leg transitions within one sampling period.
			if dist > spawn.MaxSpeed*dt*1.6+0.5 {
				t.Fatalf("object %d moved %.2fm in %.2fs (max speed %.1f)", id, dist, dt, spawn.MaxSpeed)
			}
		}
	}
}

func TestEngineLifespanRespected(t *testing.T) {
	spawn := defaultSpawn()
	spawn.MinLifespan, spawn.MaxLifespan = 30, 40
	samples, stats := runEngine(t, 4, Config{Duration: 120, SampleInterval: 1}, spawn)
	for _, s := range samples {
		if s.T > 41 {
			t.Fatalf("sample at t=%v past max lifespan", s.T)
		}
	}
	if stats.Died != 8 {
		t.Errorf("died = %d, want 8", stats.Died)
	}
}

func TestEngineSamplingFrequencyControlsVolume(t *testing.T) {
	coarse, _ := runEngine(t, 5, Config{Duration: 100, SampleInterval: 5}, defaultSpawn())
	fine, _ := runEngine(t, 5, Config{Duration: 100, SampleInterval: 1}, defaultSpawn())
	ratio := float64(len(fine)) / float64(len(coarse))
	if ratio < 4 || ratio > 6 {
		t.Errorf("sample volume ratio = %.2f, want ≈5 (fine=%d coarse=%d)", ratio, len(fine), len(coarse))
	}
}

func TestEngineDeterminism(t *testing.T) {
	a, _ := runEngine(t, 7, Config{Duration: 60, SampleInterval: 1}, defaultSpawn())
	b, _ := runEngine(t, 7, Config{Duration: 60, SampleInterval: 1}, defaultSpawn())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestEngineRandomWayStaysConnected(t *testing.T) {
	spawn := defaultSpawn()
	spawn.Pattern.Intention = object.RandomWayIntent
	samples, stats := runEngine(t, 8, Config{Duration: 120, SampleInterval: 1}, spawn)
	if len(samples) == 0 {
		t.Fatal("no samples under random-way")
	}
	if stats.RoutesPlanned == 0 {
		t.Error("random-way planned no routes")
	}
}

func TestEngineWalkStayActuallyStays(t *testing.T) {
	spawn := defaultSpawn()
	spawn.Pattern.Behavior = object.WalkStay
	spawn.Pattern.MinStay, spawn.Pattern.MaxStay = 20, 30
	samples, _ := runEngine(t, 9, Config{Duration: 120, SampleInterval: 1}, spawn)
	// Some object must exhibit a period of near-zero movement (a stay).
	byObj := map[int][]Sample{}
	for _, s := range samples {
		byObj[s.ObjID] = append(byObj[s.ObjID], s)
	}
	stays := 0
	for _, series := range byObj {
		run := 0
		for i := 1; i < len(series); i++ {
			if series[i].Loc.Point.Dist(series[i-1].Loc.Point) < 0.01 {
				run++
				if run >= 10 { // >= 10s motionless
					stays++
					break
				}
			} else {
				run = 0
			}
		}
	}
	if stays == 0 {
		t.Error("walk-stay produced no observable stays")
	}
}

func TestEngineTotalDistanceConsistent(t *testing.T) {
	_, stats := runEngine(t, 10, Config{Duration: 120, SampleInterval: 1}, defaultSpawn())
	if stats.TotalDistance <= 0 {
		t.Fatal("no distance walked")
	}
	// 8 objects × 120s × max 1.6 m/s is a hard upper bound.
	if stats.TotalDistance > 8*120*1.6 {
		t.Errorf("distance %.1f exceeds physical bound", stats.TotalDistance)
	}
}

func TestConfigValidation(t *testing.T) {
	tp := officeTopo(t)
	sp, err := object.NewSpawner(tp, defaultSpawn())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(tp, sp, Config{Duration: 0}, rng.New(1)); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := NewEngine(tp, sp, Config{Duration: 10, Tick: -1}, rng.New(1)); err == nil {
		t.Error("negative tick accepted")
	}
}

func TestEngineCrossFloorMovement(t *testing.T) {
	// Long-lived objects in a two-floor building should eventually change
	// floors via the staircase.
	spawn := defaultSpawn()
	spawn.InitialCount = 12
	samples, _ := runEngine(t, 11, Config{Duration: 240, SampleInterval: 1}, spawn)
	floorsSeen := map[int]map[int]bool{}
	for _, s := range samples {
		if floorsSeen[s.ObjID] == nil {
			floorsSeen[s.ObjID] = map[int]bool{}
		}
		floorsSeen[s.ObjID][s.Loc.Floor] = true
	}
	crossed := 0
	for _, fl := range floorsSeen {
		if len(fl) > 1 {
			crossed++
		}
	}
	if crossed == 0 {
		t.Error("no object ever changed floors in 240s")
	}
}

func TestStatsSampleCountMatchesEmit(t *testing.T) {
	samples, stats := runEngine(t, 12, Config{Duration: 60, SampleInterval: 2}, defaultSpawn())
	if stats.Samples != len(samples) {
		t.Errorf("stats.Samples=%d, emitted=%d", stats.Samples, len(samples))
	}
	if math.Abs(float64(stats.Samples)-float64(8*31)) > float64(8*31)*0.2 {
		t.Errorf("sample count %d far from expected ≈%d", stats.Samples, 8*31)
	}
}
