package trajectory

import "sync"

// Run simulates the configured duration, calling emit for every trajectory
// sample in global time order (ties broken by ascending object ID). Passing
// a nil emit discards samples (useful for benchmarks that only need the
// movement work).
//
// The run is sharded by object across cfg.Parallelism workers: the full
// roster (initial population plus Poisson arrivals) is scheduled up-front
// from the engine's master RNG, each object is simulated on a stream derived
// deterministically from (master RNG, object ID), and the per-object streams
// are merged by a watermark Collector. Output is therefore byte-identical
// for every Parallelism value, including the sequential Parallelism=1 case,
// which runs inline without goroutines.
//
// emit is never invoked concurrently, but with Parallelism > 1 it is called
// from worker goroutines rather than the caller's.
func (e *Engine) Run(emit func(Sample)) (Stats, error) {
	objs, err := e.spawner.ScheduleUntil(e.cfg.Duration, e.rnd)
	if err != nil {
		return e.stats, err
	}
	e.objects = append(e.objects, objs...)
	e.stats.Spawned += len(objs)

	streams := e.rnd.Streams()
	perObj := make([]Stats, len(objs))

	var col *Collector
	if emit != nil {
		col = NewCollector(emit)
		for _, o := range objs {
			col.Expect(o.ID, o.Birth)
		}
	}

	// simulate runs one object on its derived stream and hands the finished
	// sample stream to the collector.
	simulate := func(i int) {
		o := objs[i]
		sim := &objectSim{eng: e, o: o, rnd: streams.Stream(uint64(o.ID))}
		if col == nil {
			sim.run(nil)
		} else {
			var samples []Sample
			sim.run(func(s Sample) { samples = append(samples, s) })
			col.Deliver(o.ID, samples)
		}
		perObj[i] = sim.st
	}

	if workers := e.cfg.workers(); workers > 1 && len(objs) > 1 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Static round-robin sharding: worker w owns objects
				// w, w+workers, ... — in ascending birth order, which keeps
				// the collector's watermark advancing steadily.
				for i := w; i < len(objs); i += workers {
					simulate(i)
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i := range objs {
			simulate(i)
		}
	}

	if col != nil {
		col.Close()
	}
	// Reduce per-object stats in roster order so float accumulation is
	// deterministic regardless of worker scheduling.
	for i := range perObj {
		e.stats.add(perObj[i])
	}
	return e.stats, nil
}
