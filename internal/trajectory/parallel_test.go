package trajectory

import (
	"sort"
	"testing"

	"vita/internal/object"
	"vita/internal/rng"
)

func runEngineP(t testing.TB, seed uint64, parallelism int, spawn object.SpawnConfig) ([]Sample, Stats) {
	t.Helper()
	tp := officeTopo(t)
	sp, err := object.NewSpawner(tp, spawn)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tp, sp, Config{
		Duration: 120, SampleInterval: 1, Parallelism: parallelism,
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	stats, err := eng.Run(func(s Sample) { samples = append(samples, s) })
	if err != nil {
		t.Fatal(err)
	}
	return samples, stats
}

// TestParallelIdenticalToSequential is the core reproducibility guarantee of
// sharded generation: any worker count produces the exact same samples, in
// the exact same order, with the exact same stats.
func TestParallelIdenticalToSequential(t *testing.T) {
	spawn := defaultSpawn()
	spawn.InitialCount = 12
	spawn.ArrivalRate = 0.05 // exercise mid-run births across shards
	spawn.MinLifespan, spawn.MaxLifespan = 40, 110

	base, baseStats := runEngineP(t, 77, 1, spawn)
	if len(base) == 0 {
		t.Fatal("no samples from sequential run")
	}
	for _, p := range []int{2, 4, 8} {
		got, gotStats := runEngineP(t, 77, p, spawn)
		if len(got) != len(base) {
			t.Fatalf("parallelism %d: %d samples, sequential %d", p, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("parallelism %d: sample %d differs: %+v vs %+v", p, i, got[i], base[i])
			}
		}
		if gotStats != baseStats {
			t.Errorf("parallelism %d: stats differ: %+v vs %+v", p, gotStats, baseStats)
		}
	}
}

// TestParallelEmitOrder asserts the documented global emit order:
// nondecreasing time, ties broken by ascending object ID.
func TestParallelEmitOrder(t *testing.T) {
	spawn := defaultSpawn()
	spawn.InitialCount = 10
	spawn.ArrivalRate = 0.05
	spawn.MinLifespan, spawn.MaxLifespan = 40, 110
	samples, _ := runEngineP(t, 5, 4, spawn)
	for i := 1; i < len(samples); i++ {
		a, b := samples[i-1], samples[i]
		if b.T < a.T || (b.T == a.T && b.ObjID <= a.ObjID) {
			t.Fatalf("emit order violated at %d: (%v,%d) then (%v,%d)", i, a.T, a.ObjID, b.T, b.ObjID)
		}
	}
}

// TestParallelNilEmit keeps the benchmark path (movement work only) working
// under parallelism, with the same stats as the emitting run.
func TestParallelNilEmit(t *testing.T) {
	tp := officeTopo(t)
	for _, p := range []int{1, 4} {
		sp, err := object.NewSpawner(tp, defaultSpawn())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(tp, sp, Config{Duration: 60, SampleInterval: 1, Parallelism: p}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Samples == 0 {
			t.Errorf("parallelism %d: nil-emit run counted no samples", p)
		}
	}
}

func TestConfigParallelismValidation(t *testing.T) {
	tp := officeTopo(t)
	sp, err := object.NewSpawner(tp, defaultSpawn())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(tp, sp, Config{Duration: 10, Parallelism: -1}, rng.New(1)); err == nil {
		t.Error("negative parallelism accepted")
	}
	if (Config{Parallelism: 0}).workers() < 1 {
		t.Error("zero parallelism must resolve to at least one worker")
	}
}

func TestScheduleUntilMatchesIncrementalArrivals(t *testing.T) {
	tp := officeTopo(t)
	spawn := defaultSpawn()
	spawn.ArrivalRate = 0.1

	mk := func() *object.Spawner {
		sp, err := object.NewSpawner(tp, spawn)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	all, err := mk().ScheduleUntil(120, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}

	// Incremental ticked arrivals over the same stream must yield the same
	// roster: same IDs, births, lifespans, speeds, start locations.
	r := rng.New(9)
	sp := mk()
	inc, err := sp.Initial(r)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for tt := 0.25; tt <= 120; tt += 0.25 {
		batch, err := sp.ArrivalsUntil(prev, tt, r)
		if err != nil {
			t.Fatal(err)
		}
		inc = append(inc, batch...)
		prev = tt
	}
	if len(all) != len(inc) {
		t.Fatalf("roster sizes differ: schedule %d vs incremental %d", len(all), len(inc))
	}
	if len(all) <= spawn.InitialCount {
		t.Fatalf("no arrivals scheduled (got %d objects)", len(all))
	}
	for i := range all {
		a, b := all[i], inc[i]
		if a.ID != b.ID || a.Birth != b.Birth || a.Lifespan != b.Lifespan ||
			a.MaxSpeed != b.MaxSpeed || a.Loc != b.Loc {
			t.Fatalf("object %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// --- collector unit tests ---

func s(obj int, t float64) Sample { return Sample{ObjID: obj, T: t} }

func TestCollectorMergesTimeSorted(t *testing.T) {
	var got []Sample
	c := NewCollector(func(sm Sample) { got = append(got, sm) })
	c.Expect(1, 0)
	c.Expect(2, 0)
	c.Expect(3, 50)

	// Deliver out of object order; nothing may be emitted past the pending
	// watermark (object 2 still out, birth 0).
	c.Deliver(3, []Sample{s(3, 50), s(3, 60)})
	c.Deliver(1, []Sample{s(1, 0), s(1, 10), s(1, 55)})
	if len(got) != 0 {
		t.Fatalf("emitted %d samples while object 2 (birth 0) pending", len(got))
	}
	c.Deliver(2, []Sample{s(2, 0), s(2, 10), s(2, 20)})
	c.Close()

	want := []Sample{
		s(1, 0), s(2, 0), s(1, 10), s(2, 10), s(2, 20), s(3, 50), s(1, 55), s(3, 60),
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if c.Emitted() != len(want) {
		t.Errorf("Emitted() = %d, want %d", c.Emitted(), len(want))
	}
}

func TestCollectorStreamsBeforeCompletion(t *testing.T) {
	var got []Sample
	c := NewCollector(func(sm Sample) { got = append(got, sm) })
	c.Expect(1, 0)
	c.Expect(2, 100)
	c.Deliver(1, []Sample{s(1, 0), s(1, 50), s(1, 150)})
	// Object 2 is born at t=100: everything before that is already safe.
	if len(got) != 2 {
		t.Fatalf("expected the 2 pre-watermark samples to stream out, got %d", len(got))
	}
	c.Deliver(2, []Sample{s(2, 100)})
	if len(got) != 4 {
		t.Fatalf("expected full drain after last delivery, got %d", len(got))
	}
}

func TestCollectorEmptyStreams(t *testing.T) {
	var got []Sample
	c := NewCollector(func(sm Sample) { got = append(got, sm) })
	c.Expect(1, 0)
	c.Expect(2, 10)
	c.Deliver(2, nil) // died before its first sample instant
	c.Deliver(1, []Sample{s(1, 0), s(1, 20)})
	c.Close()
	if len(got) != 2 {
		t.Fatalf("emitted %d, want 2", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].T < got[j].T }) {
		t.Error("merged output not time-sorted")
	}
}
