package trajectory

import (
	"fmt"
	"testing"

	"vita/internal/object"
	"vita/internal/rng"
)

// BenchmarkEngineRun measures sharded trajectory generation at several
// worker counts (60 objects, 300 simulated seconds). Near-linear scaling up
// to the core count is the goal; p=1 is the sequential baseline.
func BenchmarkEngineRun(b *testing.B) {
	tp := officeTopo(b)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp, err := object.NewSpawner(tp, object.SpawnConfig{
					InitialCount: 60,
					MinLifespan:  300, MaxLifespan: 300,
					MaxSpeed: 1.6,
					Pattern:  object.DefaultPattern(),
				})
				if err != nil {
					b.Fatal(err)
				}
				eng, err := NewEngine(tp, sp, Config{
					Duration: 300, Tick: 0.25, SampleInterval: 1, Parallelism: p,
				}, rng.New(42))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(func(Sample) {}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollector measures the merge overhead alone: 64 pre-built
// per-object streams funneled through the watermark collector.
func BenchmarkCollector(b *testing.B) {
	const objects, perObj = 64, 300
	streams := make([][]Sample, objects)
	for o := 0; o < objects; o++ {
		ss := make([]Sample, perObj)
		for k := 0; k < perObj; k++ {
			ss[k] = Sample{ObjID: o + 1, T: float64(k)}
		}
		streams[o] = ss
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		c := NewCollector(func(Sample) { n++ })
		for o := range streams {
			c.Expect(o+1, 0)
		}
		for o := range streams {
			c.Deliver(o+1, streams[o])
		}
		c.Close()
		if n != objects*perObj {
			b.Fatalf("merged %d samples, want %d", n, objects*perObj)
		}
	}
}
