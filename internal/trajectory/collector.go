package trajectory

import (
	"container/heap"
	"sync"
)

// Collector merges per-object, time-sorted sample streams into one globally
// time-sorted stream without a terminal post-sort. It is the order-preserving
// funnel between sharded generation workers and the storage layer: workers
// Deliver each finished object's samples, and the collector forwards samples
// to the sink as soon as ordering is provably safe.
//
// Safety is tracked with a birth-time watermark. Every expected object is
// registered with its birth time before delivery starts; since an object's
// first sample cannot precede its birth, every buffered sample earlier than
// the minimum birth among still-pending objects can be emitted immediately.
// Ties on the timestamp are broken by ascending object ID, which makes the
// merged order identical to simulating all objects jointly on one goroutine.
//
// Deliver is safe for concurrent use; the sink is always invoked serially
// (under the collector's lock) and must not call back into the collector.
type Collector struct {
	mu   sync.Mutex
	sink func(Sample)

	// births is a lazy-deletion min-heap of the birth times of objects that
	// have not been delivered yet; delivered marks entries to skip.
	births    birthHeap
	delivered map[int]bool
	pending   int

	streams streamHeap
	emitted int
}

// NewCollector returns a collector forwarding merged samples to sink.
func NewCollector(sink func(Sample)) *Collector {
	return &Collector{sink: sink, delivered: make(map[int]bool)}
}

// Expect registers an upcoming per-object stream and its birth time. All
// Expect calls must precede the first Deliver of the run.
func (c *Collector) Expect(objID int, birth float64) {
	c.mu.Lock()
	heap.Push(&c.births, birthEntry{birth: birth, id: objID})
	c.pending++
	c.mu.Unlock()
}

// Deliver hands over the complete, time-sorted sample stream of one object
// and flushes every buffered sample that is now safely ordered.
func (c *Collector) Deliver(objID int, samples []Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delivered[objID] = true
	c.pending--
	if len(samples) > 0 {
		heap.Push(&c.streams, streamEntry{samples: samples, id: objID})
	}
	c.drain()
}

// Emitted returns how many samples have been forwarded to the sink so far.
func (c *Collector) Emitted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.emitted
}

// Close flushes everything still buffered. Call it after every expected
// object was delivered (the usual case, where it is a no-op because the last
// Deliver already drained) or when abandoning a run early.
func (c *Collector) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = 0
	c.births = c.births[:0]
	c.drain()
}

// drain forwards buffered samples while they are provably next in the merged
// order. Caller holds c.mu.
func (c *Collector) drain() {
	for len(c.streams) > 0 {
		if c.pending > 0 {
			// Discard watermark entries of objects already delivered.
			for len(c.births) > 0 && c.delivered[c.births[0].id] {
				heap.Pop(&c.births)
			}
			if len(c.births) > 0 && c.streams[0].head().T >= c.births[0].birth {
				return // an undelivered object may still produce earlier samples
			}
		}
		top := &c.streams[0]
		c.sink(top.head())
		c.emitted++
		top.pos++
		if top.pos >= len(top.samples) {
			heap.Pop(&c.streams)
		} else {
			heap.Fix(&c.streams, 0)
		}
	}
}

type birthEntry struct {
	birth float64
	id    int
}

type birthHeap []birthEntry

func (h birthHeap) Len() int { return len(h) }
func (h birthHeap) Less(i, j int) bool {
	if h[i].birth != h[j].birth {
		return h[i].birth < h[j].birth
	}
	return h[i].id < h[j].id
}
func (h birthHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *birthHeap) Push(x interface{}) { *h = append(*h, x.(birthEntry)) }
func (h *birthHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// streamEntry is one partially consumed per-object stream, keyed by the
// timestamp of its next sample.
type streamEntry struct {
	samples []Sample
	pos     int
	id      int
}

func (s streamEntry) head() Sample { return s.samples[s.pos] }

type streamHeap []streamEntry

func (h streamHeap) Len() int { return len(h) }
func (h streamHeap) Less(i, j int) bool {
	a, b := h[i].head(), h[j].head()
	if a.T != b.T {
		return a.T < b.T
	}
	return h[i].id < h[j].id
}
func (h streamHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x interface{}) { *h = append(*h, x.(streamEntry)) }
func (h *streamHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
