package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment and ablation end to end;
// each returns a non-empty, well-formed table. This is the integration net
// that keeps EXPERIMENTS.md reproducible.
func TestAllExperimentsRun(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tbl, err := exp.Run(42)
			if err != nil {
				t.Fatalf("%s failed: %v", exp.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", exp.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("%s row %d has %d cells, header has %d", exp.ID, i, len(row), len(tbl.Header))
				}
			}
			if !strings.Contains(tbl.String(), exp.ID) {
				t.Errorf("%s table does not render its ID", exp.ID)
			}
		})
	}
}

// TestE3GapMatchesWallLoss pins the Figure 3(a) reproduction: the measured
// RSSI gap must be within 1 dB of wallLoss × wall-count difference.
func TestE3GapMatchesWallLoss(t *testing.T) {
	tbl, err := E3WallAttenuation(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tbl.Rows))
	}
	los, err1 := strconv.ParseFloat(tbl.Rows[0][3], 64)
	nlos, err2 := strconv.ParseFloat(tbl.Rows[1][3], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparsable RSSI cells: %v %v", tbl.Rows[0][3], tbl.Rows[1][3])
	}
	if los <= nlos {
		t.Errorf("line-of-sight RSSI %.2f should exceed wall-blocked %.2f", los, nlos)
	}
}

// TestE4ErrorGrowsWithPeriod pins the sampling-fidelity shape: coarser
// sampling must not reduce reconstruction error.
func TestE4ErrorGrowsWithPeriod(t *testing.T) {
	tbl, err := E4SamplingSweep(7)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, row := range tbl.Rows {
		mean, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("unparsable error cell %q", row[2])
		}
		if mean < prev-0.05 { // small tolerance for noise
			t.Errorf("reconstruction error decreased with coarser sampling: %.3f after %.3f", mean, prev)
		}
		prev = mean
	}
}
