package experiments

import (
	"fmt"
	"time"

	"vita/internal/core"
	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/index"
	"vita/internal/rng"
	"vita/internal/topo"
)

// AblationLoS compares the explicit line-of-sight obstacle term against a
// constant penalty (DESIGN.md §5): LoS noise makes fingerprints more
// location-specific, improving fingerprinting accuracy.
func AblationLoS(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A1",
		Title:  "ablation: line-of-sight wall noise vs constant penalty",
		Header: []string{"obstacle model", "rssi rows", "fp mean err m", "fp median m"},
		Notes:  "wall-aware Nob differentiates rooms; replacing it with a constant blurs fingerprints.",
	}
	for _, los := range []bool{true, false} {
		cfg := smallRun(seed)
		cfg.RSSI.DisableLineOfSight = !los
		cfg.RSSI.ConstantPenalty = 6
		ds, err := run(cfg)
		if err != nil {
			return nil, err
		}
		stats, _ := core.EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
		name := "line-of-sight crossings"
		if !los {
			name = "constant penalty"
		}
		t.AddRow(name, ds.RSSI.Len(), stats.Mean, stats.Median)
	}
	return t, nil
}

// AblationIndex compares R-tree and grid indices on the device-in-range
// workload.
func AblationIndex(seed uint64) (*Table, error) {
	r := rng.New(seed)
	topology, err := officeTopo()
	if err != nil {
		return nil, err
	}
	devs, err := device.Deploy(topology.B, 0, device.DeploySpec{
		Model: device.Coverage, Type: device.WiFi, Count: 64,
	}, r)
	if err != nil {
		return nil, err
	}
	items := make([]index.Item, len(devs))
	for i, d := range devs {
		items[i] = d
	}
	rt := index.BulkLoad(items)
	bb := topology.B.Floors[0].BBox()
	grid := index.NewGrid(bb.Expand(40), 10)
	for _, it := range items {
		grid.Insert(it)
	}

	queries := make([]geom.Point, 2000)
	for i := range queries {
		queries[i] = geom.Pt(r.Range(bb.Min.X, bb.Max.X), r.Range(bb.Min.Y, bb.Max.Y))
	}

	t := &Table{
		ID:     "A2",
		Title:  "ablation: R-tree vs grid for device-in-range lookup (64 devices)",
		Header: []string{"index", "total results", "µs/query"},
		Notes:  "both return identical result sets; relative speed depends on device density and range.",
	}
	var rtreeTotal int
	start := time.Now()
	for _, q := range queries {
		for _, it := range rt.SearchPoint(q, nil) {
			if it.(*device.Device).InRange(q) {
				rtreeTotal++
			}
		}
	}
	rtUS := float64(time.Since(start).Microseconds()) / float64(len(queries))

	var gridTotal int
	start = time.Now()
	for _, q := range queries {
		for _, it := range grid.Search(geom.BBox{Min: q, Max: q}, nil) {
			if it.(*device.Device).InRange(q) {
				gridTotal++
			}
		}
	}
	gridUS := float64(time.Since(start).Microseconds()) / float64(len(queries))

	if rtreeTotal != gridTotal {
		return nil, fmt.Errorf("A2: result mismatch rtree=%d grid=%d", rtreeTotal, gridTotal)
	}
	t.AddRow("r-tree", rtreeTotal, rtUS)
	t.AddRow("grid", gridTotal, gridUS)
	return t, nil
}

// AblationRadioMapDensity sweeps the reference-location grid spacing.
func AblationRadioMapDensity(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A3",
		Title:  "ablation: radio-map reference density vs fingerprinting accuracy",
		Header: []string{"spacing m", "reference points", "mean err m", "median m"},
		Notes:  "denser reference grids reduce quantization error until signal noise dominates.",
	}
	for _, spacing := range []float64{2, 4, 8} {
		cfg := smallRun(seed)
		cfg.Positioning = core.PositioningConfig{Method: "fingerprint", Spacing: spacing}
		ds, err := run(cfg)
		if err != nil {
			return nil, err
		}
		stats, _ := core.EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
		refs := 0
		if ds.RadioMap != nil {
			refs = len(ds.RadioMap.Refs)
		}
		t.AddRow(spacing, refs, stats.Mean, stats.Median)
	}
	return t, nil
}

// AblationDecomposition toggles irregular-partition decomposition and
// measures its effect on the environment and routing.
func AblationDecomposition(seed uint64) (*Table, error) {
	r := rng.New(seed)
	t := &Table{
		ID:     "A4",
		Title:  "ablation: irregular-partition decomposition (mall atrium)",
		Header: []string{"decomposition", "partitions", "graph nodes", "routable pairs /30", "mean route m"},
		Notes:  "decomposition adds partitions and graph nodes; straight-leg routes through convex pieces respect the L-shaped atrium geometry.",
	}
	for _, on := range []bool{true, false} {
		f, err := ifc.Parse(ifc.MallIFC())
		if err != nil {
			return nil, err
		}
		b, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
		if err != nil {
			return nil, err
		}
		opts := topo.DefaultOptions()
		if !on {
			opts.Decompose = nil
		}
		topology, err := topo.Build(b, opts)
		if err != nil {
			return nil, err
		}
		nodes, _ := topology.GraphSize()
		routable := 0
		var meanDist float64
		rr := r.Split()
		for i := 0; i < 30; i++ {
			from, to, ok := randomODPair(topology, rr)
			if !ok {
				continue
			}
			route, err := topology.Route(from, to, topo.MinDistance, topo.DefaultSpeedModel())
			if err != nil {
				continue
			}
			routable++
			meanDist += route.Distance
		}
		if routable > 0 {
			meanDist /= float64(routable)
		}
		name := "on"
		if !on {
			name = "off"
		}
		t.AddRow(name, topology.B.PartitionCount(), nodes, routable, meanDist)
	}
	return t, nil
}
