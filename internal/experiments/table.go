// Package experiments implements the reproduction experiments of DESIGN.md
// §4 (E1-E10) and the ablations of §5. The paper is a demonstration and has
// no quantitative tables; each experiment here realizes one of its figures
// or behavioral claims as a measurable table. cmd/vitabench prints the
// tables; the root bench_test.go wraps each as a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result, printable as an aligned text table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes states the expected shape from the paper and how the measurement
	// relates to it.
	Notes string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(seed uint64) (*Table, error)
}

// All returns every experiment and ablation in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"E1", "pipeline end-to-end data flow", E1Pipeline},
		{"E2", "deployment models and initial distributions (Figure 3)", E2Deployment},
		{"E3", "RSSI wall attenuation (Figure 3a)", E3WallAttenuation},
		{"E4", "trajectory sampling-frequency sweep", E4SamplingSweep},
		{"E5", "positioning accuracy by method and noise", E5Accuracy},
		{"E6", "routing schemes: min-distance vs min-time", E6Routing},
		{"E7", "DBI processing and staircase linking", E7DBIProcessing},
		{"E8", "storage and data stream API queries", E8StorageQueries},
		{"E9", "Poisson arrival process", E9Arrivals},
		{"E10", "method-device combinations (demo step 6)", E10Combos},
		{"A1", "ablation: line-of-sight obstacle noise", AblationLoS},
		{"A2", "ablation: R-tree vs grid index", AblationIndex},
		{"A3", "ablation: radio-map reference density", AblationRadioMapDensity},
		{"A4", "ablation: irregular-partition decomposition", AblationDecomposition},
	}
}
