package experiments

import (
	"fmt"
	"math"
	"time"

	"vita/internal/core"
	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/model"
	"vita/internal/object"
	"vita/internal/positioning"
	"vita/internal/rng"
	"vita/internal/rssi"
	"vita/internal/storage"
	"vita/internal/topo"
	"vita/internal/trajectory"
)

// smallRun returns a fast default config for experiment-scale runs.
func smallRun(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Trajectory.Duration = 180
	cfg.Objects.Count = 20
	cfg.Objects.MinLifespan = 120
	cfg.Objects.MaxLifespan = 180
	return cfg
}

func run(cfg core.Config) (*core.Dataset, error) {
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

// E1Pipeline reproduces Figure 1's data flow end to end: every stage's output
// volume and the run wall time per building.
func E1Pipeline(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "pipeline end-to-end data flow (Figure 1, demo steps 1-6)",
		Header: []string{"building", "partitions", "devices", "traj rows", "rssi rows", "pos rows", "wall ms"},
		Notes:  "every stage of Figure 1 produces data; counts grow monotonically down the pipeline (rssi >= traj coverage within range).",
	}
	for _, src := range []string{"synthetic:office", "synthetic:mall", "synthetic:clinic"} {
		cfg := smallRun(seed)
		cfg.Building.Source = src
		cfg.Devices = []core.DeviceConfig{
			{Floor: 0, Model: "coverage", Type: "wifi", Count: 8},
		}
		start := time.Now()
		ds, err := run(cfg)
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", src, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		t.AddRow(src, ds.Building.PartitionCount(), ds.Devices.Len(),
			ds.Trajectories.Len(), ds.RSSI.Len(), ds.Estimates.Len(), ms)
	}
	return t, nil
}

// E2Deployment reproduces Figure 3's two-floor example: coverage deployment
// on the ground floor, check-point on the first floor, and the
// crowd-outliers initial distribution.
func E2Deployment(seed uint64) (*Table, error) {
	r := rng.New(seed)
	topology, err := officeTopo()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E2",
		Title:  "deployment models and crowd-outliers distribution (Figure 3)",
		Header: []string{"metric", "value"},
		Notes:  "coverage devices sit near walls with large separation; check-point devices sit at entrances/hotspots; most crowd-outliers objects concentrate in hot areas.",
	}

	cov, err := device.Deploy(topology.B, 0, device.DeploySpec{Model: device.Coverage, Type: device.WiFi, Count: 8}, r)
	if err != nil {
		return nil, err
	}
	chk, err := device.Deploy(topology.B, 1, device.DeploySpec{Model: device.CheckPoint, Type: device.WiFi}, r)
	if err != nil {
		return nil, err
	}
	f0 := topology.B.Floors[0]
	t.AddRow("coverage devices (F0)", len(cov))
	t.AddRow("coverage min pairwise separation (m)", device.MinPairwiseDistance(cov))
	t.AddRow("coverage mean wall distance (m)", device.MeanWallDistance(f0, cov))
	t.AddRow("check-point devices (F1)", len(chk))

	// Crowd-outliers: place 500 objects, count the fraction in hot areas.
	dist := object.CrowdOutliers{CrowdFraction: 0.8}
	hot := 0
	const n = 500
	for i := 0; i < n; i++ {
		loc, err := dist.Place(topology, r)
		if err != nil {
			return nil, err
		}
		p, ok := topology.B.Partition(loc.Floor, loc.Partition)
		if ok && p.Polygon.Area() >= 50 && p.Kind != model.KindHallway {
			hot++
		}
	}
	t.AddRow("crowd-outliers: objects placed", n)
	t.AddRow("crowd-outliers: fraction in hot areas", float64(hot)/n)

	uniDist := object.Uniform{}
	uniHot := 0
	for i := 0; i < n; i++ {
		loc, err := uniDist.Place(topology, r)
		if err != nil {
			return nil, err
		}
		p, ok := topology.B.Partition(loc.Floor, loc.Partition)
		if ok && p.Polygon.Area() >= 50 && p.Kind != model.KindHallway {
			uniHot++
		}
	}
	t.AddRow("uniform: fraction in same areas (baseline)", float64(uniHot)/n)
	return t, nil
}

// E3WallAttenuation reproduces the Figure 3(a) claim: at equal transmission
// distance, the device behind walls (d1) measures a weaker RSSI than the
// line-of-sight device (d2), by about WallLoss per wall.
func E3WallAttenuation(seed uint64) (*Table, error) {
	r := rng.New(seed)
	topology, err := officeTopo()
	if err != nil {
		return nil, err
	}
	m := rssi.DefaultPathLossModel()
	// Object in the hallway; two probes at equal distance: d2 along the open
	// hallway (line of sight), d1 across a room wall. The x=18 offset keeps
	// both paths away from door openings (doors sit at x = 4, 12, 20, ...).
	p := geom.Pt(18, 10)
	losDev := &device.Device{ID: "d2", Type: device.WiFi, Floor: 0,
		Position: geom.Pt(26, 10), Props: device.DefaultProperties(device.WiFi)}
	nlosDev := &device.Device{ID: "d1", Type: device.WiFi, Floor: 0,
		Position: geom.Pt(18, 2), Props: device.DefaultProperties(device.WiFi)}

	distLoS := losDev.Position.Dist(p)
	distNLoS := nlosDev.Position.Dist(p)
	cLoS := topology.Crossings(0, losDev.Position, p)
	cNLoS := topology.Crossings(0, nlosDev.Position, p)

	const samples = 2000
	var sumLoS, sumNLoS float64
	for i := 0; i < samples; i++ {
		sumLoS += m.At(distLoS, cLoS, losDev, r)
		sumNLoS += m.At(distNLoS, cNLoS, nlosDev, r)
	}
	meanLoS := sumLoS / samples
	meanNLoS := sumNLoS / samples

	t := &Table{
		ID:     "E3",
		Title:  "RSSI wall attenuation at equal transmission distance (Figure 3a)",
		Header: []string{"probe", "distance m", "walls crossed", "mean rssi dBm"},
		Notes: fmt.Sprintf("expected gap = wallLoss × wall difference = %.1f dB; measured gap = %.2f dB.",
			m.WallLoss*float64(cNLoS-cLoS), meanLoS-meanNLoS),
	}
	t.AddRow("d2 (line of sight)", distLoS, cLoS, meanLoS)
	t.AddRow("d1 (behind walls)", distNLoS, cNLoS, meanNLoS)
	if cNLoS <= cLoS {
		return nil, fmt.Errorf("E3: probe geometry broken: nlos crossings %d <= los crossings %d", cNLoS, cLoS)
	}
	return t, nil
}

// E4SamplingSweep quantifies the paper's ground-truth claim: finer trajectory
// sampling preserves movement more faithfully. Reconstruction error of
// linear interpolation grows with the sampling period.
func E4SamplingSweep(seed uint64) (*Table, error) {
	topology, err := officeTopo()
	if err != nil {
		return nil, err
	}
	sp, err := object.NewSpawner(topology, object.SpawnConfig{
		InitialCount: 10,
		MinLifespan:  180, MaxLifespan: 180,
		MaxSpeed: 1.6,
		Pattern:  object.DefaultPattern(),
	})
	if err != nil {
		return nil, err
	}
	eng, err := trajectory.NewEngine(topology, sp, trajectory.Config{
		Duration: 180, Tick: 0.25, SampleInterval: 0.5,
	}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	store := storage.NewTrajectoryStore()
	if _, err := eng.Run(store.Append); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "E4",
		Title:  "ground-truth fidelity vs trajectory sampling period",
		Header: []string{"sampling period s", "kept samples", "mean reconstruction error m", "max error m"},
		Notes:  "error of linearly interpolating the 0.5s reference from the downsampled series; finer sampling = finer ground truth (paper §1).",
	}
	for _, period := range []float64{1, 2, 5, 10} {
		var errSum, errMax float64
		var kept, n int
		for _, id := range store.Objects() {
			ref := store.Series(id)
			down := downsample(ref, period)
			kept += len(down)
			for _, s := range ref {
				p, ok := interpAt(down, s.T)
				if !ok || s.Loc.Floor != p.floor {
					continue
				}
				e := s.Loc.Point.Dist(p.pt)
				errSum += e
				if e > errMax {
					errMax = e
				}
				n++
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("E4: no reconstruction points at period %.1f", period)
		}
		t.AddRow(period, kept, errSum/float64(n), errMax)
	}
	return t, nil
}

type interpPoint struct {
	pt    geom.Point
	floor int
}

func downsample(series []trajectory.Sample, period float64) []trajectory.Sample {
	var out []trajectory.Sample
	next := series[0].T
	for _, s := range series {
		if s.T >= next-1e-9 {
			out = append(out, s)
			next = s.T + period
		}
	}
	return out
}

func interpAt(series []trajectory.Sample, t float64) (interpPoint, bool) {
	if len(series) == 0 {
		return interpPoint{}, false
	}
	lo := 0
	for lo+1 < len(series) && series[lo+1].T <= t {
		lo++
	}
	a := series[lo]
	if lo+1 >= len(series) {
		return interpPoint{pt: a.Loc.Point, floor: a.Loc.Floor}, true
	}
	b := series[lo+1]
	if a.Loc.Floor != b.Loc.Floor {
		return interpPoint{pt: a.Loc.Point, floor: a.Loc.Floor}, true
	}
	frac := 0.0
	if b.T > a.T {
		frac = (t - a.T) / (b.T - a.T)
	}
	return interpPoint{pt: a.Loc.Point.Lerp(b.Loc.Point, frac), floor: a.Loc.Floor}, true
}

// E5Accuracy compares the three positioning methods under increasing signal
// fluctuation.
func E5Accuracy(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "positioning accuracy by method and fluctuation noise",
		Header: []string{"method", "sigma dB", "estimates", "mean err m", "median m", "p95 m"},
		Notes:  "trilateration degrades faster with noise than fingerprinting; proximity error is bounded by device detection range.",
	}
	for _, sigma := range []float64{1, 2, 4, 8} {
		for _, method := range []string{"trilateration", "fingerprint", "proximity"} {
			cfg := smallRun(seed)
			cfg.RSSI.FluctuationSigma = sigma
			cfg.Devices = []core.DeviceConfig{
				{Floor: 0, Model: "coverage", Type: "wifi", Count: 12},
				{Floor: 1, Model: "coverage", Type: "wifi", Count: 12},
			}
			cfg.Positioning = core.PositioningConfig{Method: method}
			ds, err := run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E5 %s sigma=%.0f: %w", method, sigma, err)
			}
			switch method {
			case "proximity":
				stats := proximityError(ds)
				t.AddRow(method, sigma, stats.N, stats.Mean, stats.Median, stats.P95)
			default:
				stats, _ := core.EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
				t.AddRow(method, sigma, stats.N, stats.Mean, stats.Median, stats.P95)
			}
		}
	}
	return t, nil
}

// proximityError treats the detecting device's position as the estimate at
// the middle of each detection period.
func proximityError(ds *core.Dataset) core.ErrorStats {
	var ests []positioning.Estimate
	for _, r := range ds.Proximity.All() {
		d, ok := ds.Devices.Get(r.DeviceID)
		if !ok {
			continue
		}
		ests = append(ests, positioning.Estimate{
			ObjID: r.ObjID,
			Loc:   model.At(ds.Building.ID, d.Floor, "", d.Position),
			T:     (r.TS + r.TE) / 2,
		})
	}
	stats, _ := core.EvaluateEstimates(ds.Trajectories, ests)
	return stats
}

// E6Routing compares the two routing schemas of §3.1 over random OD pairs in
// the mall, whose corridor (fast hallway) and atrium (slow public area) form
// parallel paths so the two metrics genuinely diverge.
func E6Routing(seed uint64) (*Table, error) {
	f, err := ifc.Parse(ifc.MallIFC())
	if err != nil {
		return nil, err
	}
	b, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
	if err != nil {
		return nil, err
	}
	topology, err := topo.Build(b, topo.DefaultOptions())
	if err != nil {
		return nil, err
	}
	r := rng.New(seed)
	sm := topo.DefaultSpeedModel()
	const pairs = 60
	var dDist, dTime, tDist, tTime float64
	n, diverged := 0, 0
	for i := 0; i < pairs; i++ {
		from, to, ok := randomODPair(topology, r)
		if !ok {
			continue
		}
		rd, err1 := topology.Route(from, to, topo.MinDistance, sm)
		rt, err2 := topology.Route(from, to, topo.MinTime, sm)
		if err1 != nil || err2 != nil {
			continue
		}
		dDist += rd.Distance
		dTime += rd.Time
		tDist += rt.Distance
		tTime += rt.Time
		if rt.Distance > rd.Distance+0.01 {
			diverged++
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("E6: no routable OD pairs")
	}
	fn := float64(n)
	t := &Table{
		ID:     "E6",
		Title:  "routing schemes over random OD pairs (mall: fast corridor vs slow atrium)",
		Header: []string{"schema", "pairs", "mean distance m", "mean time s", "paths diverged"},
		Notes:  "min-distance minimizes meters, min-time minimizes seconds; min-time accepts longer detours through the fast corridor.",
	}
	t.AddRow("min-distance", n, dDist/fn, dTime/fn, "-")
	t.AddRow("min-time", n, tDist/fn, tTime/fn, diverged)
	if tTime > dTime+1e-9 {
		return nil, fmt.Errorf("E6: min-time mean %.2fs slower than min-distance %.2fs", tTime/fn, dTime/fn)
	}
	if dDist > tDist+1e-9 {
		return nil, fmt.Errorf("E6: min-distance mean %.2fm longer than min-time %.2fm", dDist/fn, tDist/fn)
	}
	return t, nil
}

func randomODPair(t *topo.Topology, r *rng.Rand) (model.Location, model.Location, bool) {
	var parts []*model.Partition
	for _, level := range t.B.FloorLevels() {
		parts = append(parts, t.B.Floors[level].Partitions...)
	}
	if len(parts) < 2 {
		return model.Location{}, model.Location{}, false
	}
	pa := parts[r.Intn(len(parts))]
	pb := parts[r.Intn(len(parts))]
	if pa == pb {
		return model.Location{}, model.Location{}, false
	}
	from := model.At(t.B.ID, pa.Floor, pa.ID, topo.RandomPointIn(pa, r.Float64))
	to := model.At(t.B.ID, pb.Floor, pb.ID, topo.RandomPointIn(pb, r.Float64))
	return from, to, true
}

// E7DBIProcessing measures the §4.1 pipeline: parse, repair, decompose,
// link staircases, index.
func E7DBIProcessing(seed uint64) (*Table, error) {
	_ = seed
	t := &Table{
		ID:     "E7",
		Title:  "DBI processing: parse, repair, decompose, link (paper §4.1)",
		Header: []string{"building", "ifc bytes", "spaces", "partitions after", "doors", "stairs linked", "issues", "parse+build ms"},
		Notes:  "multi-floor staircases all resolve via the two-step linking algorithm; irregular/oversized partitions are decomposed.",
	}
	sources := map[string]string{
		"office": ifc.OfficeIFC(),
		"mall":   ifc.MallIFC(),
		"clinic": ifc.ClinicIFC(),
	}
	for _, name := range []string{"office", "mall", "clinic"} {
		text := sources[name]
		start := time.Now()
		f, err := ifc.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", name, err)
		}
		b, rep, err := ifc.Extract(f, ifc.DefaultExtractOptions())
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", name, err)
		}
		spaces := b.PartitionCount()
		topology, err := topo.Build(b, topo.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", name, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		linked := 0
		for _, s := range b.Staircases {
			if s.Linked {
				linked++
			}
		}
		t.AddRow(name, len(text), spaces, topology.B.PartitionCount(),
			topology.B.DoorCount(), fmt.Sprintf("%d/%d", linked, len(b.Staircases)),
			len(rep.Issues), ms)
	}
	return t, nil
}

// E8StorageQueries exercises the Data Stream APIs on a generated dataset.
func E8StorageQueries(seed uint64) (*Table, error) {
	cfg := smallRun(seed)
	ds, err := run(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E8",
		Title:  "storage and data stream API queries",
		Header: []string{"query", "results", "µs/op"},
		Notes:  "spatial/temporal repositories answer the snapshot, window and nearest-device queries used by the GUI demo (paper §5 step 4).",
	}
	timeIt := func(name string, iters int, fn func() int) {
		start := time.Now()
		res := 0
		for i := 0; i < iters; i++ {
			res = fn()
		}
		us := float64(time.Since(start).Microseconds()) / float64(iters)
		t.AddRow(name, res, us)
	}
	objs := ds.Trajectories.Objects()
	if len(objs) == 0 {
		return nil, fmt.Errorf("E8: empty trajectory store")
	}
	bb := ds.Building.Floors[0].BBox()
	timeIt("snapshot at t=90s", 50, func() int { return len(ds.Trajectories.SnapshotAt(90)) })
	timeIt("time range obj[0] [30,90]", 200, func() int { return len(ds.Trajectories.TimeRange(objs[0], 30, 90)) })
	timeIt("window query F0 half-floor", 50, func() int {
		half := geom.BBox{Min: bb.Min, Max: geom.Pt(bb.Center().X, bb.Max.Y)}
		return len(ds.Trajectories.WindowQuery(0, half, 0, 60))
	})
	timeIt("devices in range of center", 500, func() int {
		return len(ds.Devices.InRangeOf(0, bb.Center()))
	})
	timeIt("3 nearest devices", 500, func() int {
		return len(ds.Devices.Nearest(0, bb.Center(), 3))
	})
	return t, nil
}

// E9Arrivals validates the Poisson arrival process of §3.1.
func E9Arrivals(seed uint64) (*Table, error) {
	cfg := smallRun(seed)
	cfg.Objects.Count = 0
	cfg.Objects.ArrivalRate = 0.2 // objects per second
	cfg.Trajectory.Duration = 600
	cfg.Objects.MinLifespan = 60
	cfg.Objects.MaxLifespan = 120
	cfg.Positioning.Method = ""
	ds, err := run(cfg)
	if err != nil {
		return nil, err
	}
	arrived := ds.TrajectoryStats.Spawned
	expected := cfg.Objects.ArrivalRate * cfg.Trajectory.Duration
	t := &Table{
		ID:     "E9",
		Title:  "Poisson arrivals of new objects (paper §3.1 lifespan)",
		Header: []string{"metric", "value"},
		Notes:  "arrivals over 600s at rate 0.2/s should total ≈120 (within sampling noise).",
	}
	t.AddRow("configured rate (obj/s)", cfg.Objects.ArrivalRate)
	t.AddRow("duration (s)", cfg.Trajectory.Duration)
	t.AddRow("expected arrivals", expected)
	t.AddRow("observed arrivals", arrived)
	dev := math.Abs(float64(arrived)-expected) / expected
	t.AddRow("relative deviation", dev)
	if dev > 0.35 {
		return nil, fmt.Errorf("E9: arrival count %d deviates %.0f%% from expectation %.0f", arrived, dev*100, expected)
	}
	return t, nil
}

// E10Combos runs the demo's device+method combinations (paper §5 step 6).
func E10Combos(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "demo combinations: RFID+proximity, Bluetooth+trilateration, Wi-Fi+fingerprinting",
		Header: []string{"combo", "devices", "rssi rows", "output rows", "accuracy"},
		Notes:  "all three §5 combinations produce valid positioning data; accuracy is mean error (m) or, for proximity, mean collocation error (m).",
	}
	type combo struct {
		name   string
		dev    string
		method string
		model  string
	}
	combos := []combo{
		{"rfid+proximity", "rfid", "proximity", "check-point"},
		{"bluetooth+trilateration", "bluetooth", "trilateration", "coverage"},
		{"wifi+fingerprinting", "wifi", "fingerprint", "coverage"},
	}
	for _, c := range combos {
		cfg := smallRun(seed)
		count := 12
		if c.dev == "bluetooth" {
			count = 24 // short range needs density for >=3 circles
		}
		cfg.Devices = []core.DeviceConfig{
			{Floor: 0, Model: c.model, Type: c.dev, Count: count},
			{Floor: 1, Model: c.model, Type: c.dev, Count: count},
		}
		cfg.Positioning = core.PositioningConfig{Method: c.method}
		ds, err := run(cfg)
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", c.name, err)
		}
		var rows int
		var acc float64
		switch c.method {
		case "proximity":
			rows = ds.Proximity.Len()
			acc = proximityError(ds).Mean
		default:
			rows = ds.Estimates.Len()
			stats, _ := core.EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
			acc = stats.Mean
		}
		if rows == 0 {
			return nil, fmt.Errorf("E10 %s: no output rows", c.name)
		}
		t.AddRow(c.name, ds.Devices.Len(), ds.RSSI.Len(), rows, acc)
	}
	return t, nil
}

// officeTopo builds the office topology through the full IFC path.
func officeTopo() (*topo.Topology, error) {
	f, err := ifc.Parse(ifc.OfficeIFC())
	if err != nil {
		return nil, err
	}
	b, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
	if err != nil {
		return nil, err
	}
	return topo.Build(b, topo.DefaultOptions())
}
