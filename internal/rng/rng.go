// Package rng provides the deterministic pseudo-random substrate for all Vita
// generators. Every generator in the toolkit takes an explicit *rng.Rand so
// that a seed fully determines the produced data — the property the paper
// relies on for preserving "ground truth" alongside derived positioning data.
package rng

import "math"

// Rand is a small, fast deterministic PRNG (SplitMix64 core). It is NOT safe
// for concurrent use; derive one per goroutine with Split.
type Rand struct {
	state uint64
	// cached second normal variate from Box-Muller
	hasGauss bool
	gauss    float64
}

// New returns a Rand seeded with seed. Any seed value, including zero, is
// valid.
func New(seed uint64) *Rand {
	r := &Rand{state: seed}
	// Warm up so that small seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from the parent's subsequent output.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche function used to
// scatter stream keys so that numerically adjacent inputs yield unrelated
// generator states.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Streams is a family of statistically independent generators keyed by an
// integer id. Unlike repeated Split calls, Stream(i) is a pure function of
// (family key, i): streams can be materialized in any order, from any
// goroutine, and the result is identical — the property parallel sharded
// generation relies on for worker-count-independent reproducibility.
type Streams struct {
	key uint64
}

// Streams consumes exactly one value from r and returns the derived family.
// Two calls on the same parent state yield different families.
func (r *Rand) Streams() Streams {
	return Streams{key: r.Uint64()}
}

// NewStreams returns the stream family keyed directly by key — for callers
// that manage seeds themselves.
func NewStreams(key uint64) Streams { return Streams{key: key} }

// Stream returns the generator for id i. Every call with the same i returns
// a fresh generator positioned at the start of the same sequence. The id is
// passed through mix64 before keying so that consecutive ids (object 1, 2,
// 3, ...) do not produce shifted copies of one SplitMix64 sequence.
func (s Streams) Stream(i uint64) *Rand {
	return New(mix64(s.key ^ mix64(i^0xd1342543de82ef95)))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate lambda (mean 1/lambda).
// It panics when lambda <= 0.
func (r *Rand) ExpFloat64(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: ExpFloat64 with non-positive lambda")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / lambda
}

// Poisson returns a Poisson variate with mean lambda. For large lambda it
// uses the normal approximation; it panics when lambda < 0.
func (r *Rand) Poisson(lambda float64) int {
	switch {
	case lambda < 0:
		panic("rng: Poisson with negative lambda")
	case lambda == 0:
		return 0
	case lambda > 500:
		v := math.Round(r.Normal(lambda, math.Sqrt(lambda)))
		if v < 0 {
			return 0
		}
		return int(v)
	}
	// Knuth's method.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// WeightedIndex returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive total weight panics.
func (r *Rand) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n elements using swap (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
