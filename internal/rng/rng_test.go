package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds collide %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntn(t *testing.T) {
	r := New(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Intn bucket %d badly skewed: %d/100000", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("normal mean = %v, want 5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("normal variance = %v, want 4", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(0.5)
		if v < 0 {
			t.Fatalf("negative exponential %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("exp mean = %v, want 2", mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpFloat64(0) did not panic")
		}
	}()
	r.ExpFloat64(0)
}

func TestPoissonMoments(t *testing.T) {
	r := New(17)
	for _, lambda := range []float64{0.5, 4, 30, 800} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		tol := 4 * math.Sqrt(lambda/n) * 3
		if tol < 0.05 {
			tol = 0.05
		}
		if math.Abs(mean-lambda) > lambda*0.05+tol {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(19)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedIndex(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Error("all-zero weights did not panic")
		}
	}()
	r.WeightedIndex([]float64{0, 0})
}

func TestPerm(t *testing.T) {
	r := New(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(42)
	child := a.Split()
	// The child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 100; i++ {
		if a.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("Split stream tracks parent stream")
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 8)
		if v < -3 || v >= 8 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(31)
	n := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	frac := float64(n) / 100000
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", frac)
	}
}
