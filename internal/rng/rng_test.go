package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds collide %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntn(t *testing.T) {
	r := New(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Intn bucket %d badly skewed: %d/100000", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("normal mean = %v, want 5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("normal variance = %v, want 4", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(0.5)
		if v < 0 {
			t.Fatalf("negative exponential %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("exp mean = %v, want 2", mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpFloat64(0) did not panic")
		}
	}()
	r.ExpFloat64(0)
}

func TestPoissonMoments(t *testing.T) {
	r := New(17)
	for _, lambda := range []float64{0.5, 4, 30, 800} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		tol := 4 * math.Sqrt(lambda/n) * 3
		if tol < 0.05 {
			tol = 0.05
		}
		if math.Abs(mean-lambda) > lambda*0.05+tol {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(19)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedIndex(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Error("all-zero weights did not panic")
		}
	}()
	r.WeightedIndex([]float64{0, 0})
}

func TestPerm(t *testing.T) {
	r := New(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(42)
	child := a.Split()
	// The child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 100; i++ {
		if a.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("Split stream tracks parent stream")
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 8)
		if v < -3 || v >= 8 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(31)
	n := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	frac := float64(n) / 100000
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", frac)
	}
}

func TestStreamsDeterministic(t *testing.T) {
	a := New(42).Streams()
	b := New(42).Streams()
	for i := uint64(0); i < 8; i++ {
		ra, rb := a.Stream(i), b.Stream(i)
		for k := 0; k < 16; k++ {
			if va, vb := ra.Uint64(), rb.Uint64(); va != vb {
				t.Fatalf("stream %d draw %d differs: %x vs %x", i, k, va, vb)
			}
		}
	}
}

func TestStreamsOrderIndependent(t *testing.T) {
	s := New(7).Streams()
	// Materializing streams in different orders must not change them.
	forward := make([]uint64, 8)
	for i := uint64(0); i < 8; i++ {
		forward[i] = s.Stream(i).Uint64()
	}
	for i := uint64(8); i > 0; i-- {
		if v := s.Stream(i - 1).Uint64(); v != forward[i-1] {
			t.Fatalf("stream %d differs when created in reverse order", i-1)
		}
	}
}

func TestStreamsConsumesOneParentDraw(t *testing.T) {
	a, b := New(9), New(9)
	a.Streams()
	b.Uint64()
	if a.Uint64() != b.Uint64() {
		t.Error("Streams must consume exactly one parent draw")
	}
}

func TestStreamsAdjacentIDsDecorrelated(t *testing.T) {
	// SplitMix64 states that differ by the additive constant produce shifted
	// copies of one sequence; Stream must avoid that for consecutive ids.
	s := New(3).Streams()
	const n = 64
	seq := make(map[uint64][]uint64)
	for i := uint64(0); i < 4; i++ {
		r := s.Stream(i)
		out := make([]uint64, n)
		for k := range out {
			out[k] = r.Uint64()
		}
		seq[i] = out
	}
	for i := uint64(0); i < 3; i++ {
		shifted := 0
		for k := 0; k+1 < n; k++ {
			if seq[i][k+1] == seq[i+1][k] || seq[i][k] == seq[i+1][k] {
				shifted++
			}
		}
		if shifted > 0 {
			t.Errorf("streams %d and %d share %d aligned values", i, i+1, shifted)
		}
	}
}

func TestStreamsDistinctFamilies(t *testing.T) {
	r := New(11)
	f1 := r.Streams()
	f2 := r.Streams()
	if f1.Stream(0).Uint64() == f2.Stream(0).Uint64() {
		t.Error("two families from one parent produced identical streams")
	}
	if NewStreams(5).Stream(1).Uint64() != NewStreams(5).Stream(1).Uint64() {
		t.Error("NewStreams not deterministic")
	}
}

func TestStreamStatisticalUniformity(t *testing.T) {
	// Pooled output of many per-id streams should still be uniform.
	s := New(17).Streams()
	const streams, per = 64, 256
	var sum float64
	for i := uint64(0); i < streams; i++ {
		r := s.Stream(i)
		for k := 0; k < per; k++ {
			sum += r.Float64()
		}
	}
	mean := sum / (streams * per)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("pooled stream mean = %v, want ~0.5", mean)
	}
}
