// Package model defines Vita's host indoor environment: buildings, floors,
// partitions, doors with directionality, staircases and obstacles, plus the
// Location type shared by all generated data records (paper §2, §4.1, §4.2).
package model

import (
	"fmt"

	"vita/internal/geom"
)

// PartitionKind classifies a partition for semantics and movement rules.
type PartitionKind int

// Partition kinds recognized by the semantic extractor.
const (
	KindRoom PartitionKind = iota
	KindHallway
	KindStaircase
	KindPublicArea
	KindCanteen
)

// String implements fmt.Stringer.
func (k PartitionKind) String() string {
	switch k {
	case KindRoom:
		return "room"
	case KindHallway:
		return "hallway"
	case KindStaircase:
		return "staircase"
	case KindPublicArea:
		return "public-area"
	case KindCanteen:
		return "canteen"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Partition is an indoor space unit (a room, a hallway, or a decomposed
// sub-partition of an irregular space).
type Partition struct {
	ID      string
	Name    string
	Floor   int
	Polygon geom.Polygon
	Kind    PartitionKind
	// Parent is the original partition ID when this partition resulted from
	// irregular-shape decomposition; empty otherwise.
	Parent string
}

// Bounds implements index.Item.
func (p *Partition) Bounds() geom.BBox { return p.Polygon.BBox() }

// Contains reports whether the floor-plane point lies in the partition.
func (p *Partition) Contains(pt geom.Point) bool { return p.Polygon.Contains(pt) }

// Center returns the partition centroid.
func (p *Partition) Center() geom.Point { return p.Polygon.Centroid() }

// DoorDirection encodes door directionality (paper §2: the Indoor Environment
// Controller lets users configure door directionality, e.g. one-way security
// doors).
type DoorDirection int

// Door directionality values.
const (
	// Both allows movement in both directions.
	Both DoorDirection = iota
	// AToB allows movement only from Partitions[0] to Partitions[1].
	AToB
	// BToA allows movement only from Partitions[1] to Partitions[0].
	BToA
)

// String implements fmt.Stringer.
func (d DoorDirection) String() string {
	switch d {
	case Both:
		return "both"
	case AToB:
		return "a->b"
	case BToA:
		return "b->a"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// Door connects exactly two partitions on one floor (doors to the building
// exterior use the empty partition ID "" on one side).
type Door struct {
	ID         string
	Name       string
	Floor      int
	Position   geom.Point
	Width      float64
	Partitions [2]string
	Direction  DoorDirection
}

// Bounds implements index.Item.
func (d *Door) Bounds() geom.BBox {
	half := d.Width / 2
	if half <= 0 {
		half = 0.5
	}
	return geom.BBox{Min: d.Position, Max: d.Position}.Expand(half)
}

// Leads reports whether the door permits movement from partition `from` to
// partition `to`.
func (d *Door) Leads(from, to string) bool {
	switch {
	case d.Partitions[0] == from && d.Partitions[1] == to:
		return d.Direction != BToA
	case d.Partitions[1] == from && d.Partitions[0] == to:
		return d.Direction != AToB
	default:
		return false
	}
}

// Other returns the partition on the opposite side of the door from p, and
// false when p is not incident to the door.
func (d *Door) Other(p string) (string, bool) {
	switch p {
	case d.Partitions[0]:
		return d.Partitions[1], true
	case d.Partitions[1]:
		return d.Partitions[0], true
	default:
		return "", false
	}
}

// Staircase is modeled as IFC models it: a bag of 3D boundary points whose
// floor connectivity is not given and must be resolved by the two-step
// algorithm in internal/topo (paper §4.1).
type Staircase struct {
	ID     string
	Name   string
	Points []geom.Point3

	// Resolved connectivity (filled by topo.LinkStaircases).
	UpperFloor     int
	LowerFloor     int
	UpperPartition string
	LowerPartition string
	Linked         bool

	// TravelTime is the seconds needed to traverse the staircase; used by
	// minimum-walking-time routing.
	TravelTime float64
}

// UpperEntry returns the floor-plane entry point on the upper floor: the
// centroid of the staircase's highest vertices.
func (s *Staircase) UpperEntry() geom.Point { return s.entryAt(true) }

// LowerEntry returns the floor-plane entry point on the lower floor.
func (s *Staircase) LowerEntry() geom.Point { return s.entryAt(false) }

func (s *Staircase) entryAt(upper bool) geom.Point {
	if len(s.Points) == 0 {
		return geom.Point{}
	}
	extreme := s.Points[0].Z
	for _, p := range s.Points {
		if (upper && p.Z > extreme) || (!upper && p.Z < extreme) {
			extreme = p.Z
		}
	}
	var c geom.Point
	n := 0
	for _, p := range s.Points {
		if absf(p.Z-extreme) < 0.5 {
			c = c.Add(p.XY())
			n++
		}
	}
	if n == 0 {
		return geom.Point{}
	}
	return c.Scale(1 / float64(n))
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Obstacle is a user-deployed obstruction (paper §2: "deploy obstacles to
// further customize the host indoor environment"). Obstacles block both
// movement and line of sight.
type Obstacle struct {
	ID      string
	Floor   int
	Polygon geom.Polygon
}

// Bounds implements index.Item.
func (o *Obstacle) Bounds() geom.BBox { return o.Polygon.BBox() }
