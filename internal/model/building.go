package model

import (
	"fmt"
	"sort"
)

// Building is the host indoor environment: a set of floors connected by
// staircases.
type Building struct {
	ID         string
	Name       string
	Floors     map[int]*Floor
	Staircases []*Staircase
}

// NewBuilding returns an empty building.
func NewBuilding(id, name string) *Building {
	return &Building{ID: id, Name: name, Floors: make(map[int]*Floor)}
}

// AddFloor registers a floor, rejecting duplicate levels.
func (b *Building) AddFloor(f *Floor) error {
	if _, dup := b.Floors[f.Level]; dup {
		return fmt.Errorf("model: duplicate floor level %d in building %s", f.Level, b.ID)
	}
	b.Floors[f.Level] = f
	return nil
}

// Floor returns the floor at the given level.
func (b *Building) Floor(level int) (*Floor, bool) {
	f, ok := b.Floors[level]
	return f, ok
}

// FloorLevels returns the sorted list of floor levels.
func (b *Building) FloorLevels() []int {
	levels := make([]int, 0, len(b.Floors))
	for l := range b.Floors {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	return levels
}

// Partition resolves a partition by floor and ID.
func (b *Building) Partition(floor int, id string) (*Partition, bool) {
	f, ok := b.Floors[floor]
	if !ok {
		return nil, false
	}
	return f.Partition(id)
}

// PartitionCount returns the total number of partitions across floors.
func (b *Building) PartitionCount() int {
	n := 0
	for _, f := range b.Floors {
		n += len(f.Partitions)
	}
	return n
}

// DoorCount returns the total number of doors across floors.
func (b *Building) DoorCount() int {
	n := 0
	for _, f := range b.Floors {
		n += len(f.Doors)
	}
	return n
}

// Validate checks structural invariants of the environment: every door
// references existing partitions on its floor, partitions have valid
// polygons, and linked staircases reference existing floors/partitions.
func (b *Building) Validate() error {
	for _, level := range b.FloorLevels() {
		f := b.Floors[level]
		for _, p := range f.Partitions {
			if err := p.Polygon.Validate(); err != nil {
				return fmt.Errorf("model: building %s floor %d partition %s: %w", b.ID, level, p.ID, err)
			}
		}
		for _, d := range f.Doors {
			for _, pid := range d.Partitions {
				if pid == "" {
					continue // exterior door side
				}
				if _, ok := f.Partition(pid); !ok {
					return fmt.Errorf("model: building %s floor %d door %s references unknown partition %s",
						b.ID, level, d.ID, pid)
				}
			}
		}
	}
	for _, s := range b.Staircases {
		if !s.Linked {
			continue
		}
		if _, ok := b.Partition(s.UpperFloor, s.UpperPartition); !ok {
			return fmt.Errorf("model: staircase %s upper link %d/%s unresolved", s.ID, s.UpperFloor, s.UpperPartition)
		}
		if _, ok := b.Partition(s.LowerFloor, s.LowerPartition); !ok {
			return fmt.Errorf("model: staircase %s lower link %d/%s unresolved", s.ID, s.LowerFloor, s.LowerPartition)
		}
	}
	return nil
}
