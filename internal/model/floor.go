package model

import (
	"fmt"
	"sort"

	"vita/internal/geom"
)

// Floor is one storey of a building.
type Floor struct {
	Level      int // 0 = ground floor
	Name       string
	Elevation  float64 // meters above building datum
	Height     float64 // floor-to-ceiling height
	Partitions []*Partition
	Doors      []*Door
	Obstacles  []*Obstacle

	byID map[string]*Partition
}

// NewFloor returns an empty floor at the given level.
func NewFloor(level int, elevation, height float64) *Floor {
	return &Floor{
		Level:     level,
		Elevation: elevation,
		Height:    height,
		byID:      make(map[string]*Partition),
	}
}

// AddPartition appends p, rejecting duplicate IDs and wrong-floor partitions.
func (f *Floor) AddPartition(p *Partition) error {
	if p.Floor != f.Level {
		return fmt.Errorf("model: partition %s declares floor %d, added to floor %d", p.ID, p.Floor, f.Level)
	}
	if _, dup := f.byID[p.ID]; dup {
		return fmt.Errorf("model: duplicate partition ID %s on floor %d", p.ID, f.Level)
	}
	f.Partitions = append(f.Partitions, p)
	f.byID[p.ID] = p
	return nil
}

// RemovePartition deletes the partition with the given ID, returning whether
// it existed. Used by the decomposer when replacing an irregular partition
// with its sub-partitions.
func (f *Floor) RemovePartition(id string) bool {
	if _, ok := f.byID[id]; !ok {
		return false
	}
	delete(f.byID, id)
	for i, p := range f.Partitions {
		if p.ID == id {
			f.Partitions = append(f.Partitions[:i], f.Partitions[i+1:]...)
			break
		}
	}
	return true
}

// Partition returns the partition with the given ID.
func (f *Floor) Partition(id string) (*Partition, bool) {
	p, ok := f.byID[id]
	return p, ok
}

// PartitionAt returns the partition containing pt, preferring the smallest
// containing partition when decomposition nests boundaries.
func (f *Floor) PartitionAt(pt geom.Point) (*Partition, bool) {
	var best *Partition
	bestArea := 0.0
	for _, p := range f.Partitions {
		if p.Contains(pt) {
			a := p.Polygon.Area()
			if best == nil || a < bestArea {
				best, bestArea = p, a
			}
		}
	}
	return best, best != nil
}

// BBox returns the bounding box of all partitions on the floor.
func (f *Floor) BBox() geom.BBox {
	b := geom.EmptyBBox()
	for _, p := range f.Partitions {
		b = b.Union(p.Bounds())
	}
	return b
}

// DoorsOf returns the doors incident to the given partition, in stable order.
func (f *Floor) DoorsOf(partitionID string) []*Door {
	var out []*Door
	for _, d := range f.Doors {
		if d.Partitions[0] == partitionID || d.Partitions[1] == partitionID {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WallSet builds the set of wall segments on this floor for line-of-sight
// computations: every partition boundary edge, with gaps punched at doors
// (clearance = door width), plus all obstacle edges.
func (f *Floor) WallSet() *geom.WallSet {
	ws := geom.NewWallSet(nil)
	for _, p := range f.Partitions {
		for _, e := range p.Polygon.Edges() {
			for _, piece := range punchDoors(e, f.Doors) {
				ws.Add(piece)
			}
		}
	}
	for _, o := range f.Obstacles {
		for _, e := range o.Polygon.Edges() {
			ws.Add(e)
		}
	}
	return ws
}

// punchDoors removes from edge the intervals covered by door openings whose
// position lies (near) on the edge.
func punchDoors(edge geom.Segment, doors []*Door) []geom.Segment {
	length := edge.Length()
	if length < geom.Eps {
		return nil
	}
	type gap struct{ lo, hi float64 }
	var gaps []gap
	for _, d := range doors {
		if edge.DistToPoint(d.Position) > 0.25 {
			continue
		}
		c := edge.ClosestPoint(d.Position)
		t := c.Dist(edge.A) / length
		half := (d.Width / 2) / length
		if half <= 0 {
			half = 0.5 / length
		}
		gaps = append(gaps, gap{lo: t - half, hi: t + half})
	}
	if len(gaps) == 0 {
		return []geom.Segment{edge}
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i].lo < gaps[j].lo })
	var out []geom.Segment
	cur := 0.0
	for _, g := range gaps {
		if g.lo > cur {
			out = append(out, geom.Seg(edge.At(cur), edge.At(min1(g.lo))))
		}
		if g.hi > cur {
			cur = g.hi
		}
	}
	if cur < 1 {
		out = append(out, geom.Seg(edge.At(cur), edge.B))
	}
	return out
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}
