package model

import (
	"math"
	"testing"

	"vita/internal/geom"
)

func twoRoomFloor(t *testing.T) *Floor {
	t.Helper()
	f := NewFloor(0, 0, 3)
	a := &Partition{ID: "A", Name: "Room A", Floor: 0, Polygon: geom.Rect(0, 0, 10, 10)}
	b := &Partition{ID: "B", Name: "Room B", Floor: 0, Polygon: geom.Rect(10, 0, 20, 10)}
	if err := f.AddPartition(a); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPartition(b); err != nil {
		t.Fatal(err)
	}
	f.Doors = append(f.Doors, &Door{
		ID: "D1", Floor: 0, Position: geom.Pt(10, 5), Width: 1,
		Partitions: [2]string{"A", "B"},
	})
	return f
}

func TestFloorAddPartitionRejections(t *testing.T) {
	f := NewFloor(0, 0, 3)
	p := &Partition{ID: "A", Floor: 1, Polygon: geom.Rect(0, 0, 1, 1)}
	if err := f.AddPartition(p); err == nil {
		t.Error("wrong-floor partition accepted")
	}
	p.Floor = 0
	if err := f.AddPartition(p); err != nil {
		t.Fatal(err)
	}
	dup := &Partition{ID: "A", Floor: 0, Polygon: geom.Rect(1, 1, 2, 2)}
	if err := f.AddPartition(dup); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestPartitionAt(t *testing.T) {
	f := twoRoomFloor(t)
	p, ok := f.PartitionAt(geom.Pt(5, 5))
	if !ok || p.ID != "A" {
		t.Errorf("PartitionAt(5,5) = %v, %v", p, ok)
	}
	p, ok = f.PartitionAt(geom.Pt(15, 5))
	if !ok || p.ID != "B" {
		t.Errorf("PartitionAt(15,5) = %v, %v", p, ok)
	}
	if _, ok := f.PartitionAt(geom.Pt(50, 50)); ok {
		t.Error("point outside all partitions matched")
	}
}

func TestRemovePartition(t *testing.T) {
	f := twoRoomFloor(t)
	if !f.RemovePartition("A") {
		t.Fatal("RemovePartition returned false")
	}
	if f.RemovePartition("A") {
		t.Error("double remove returned true")
	}
	if _, ok := f.Partition("A"); ok {
		t.Error("removed partition still resolvable")
	}
	if len(f.Partitions) != 1 {
		t.Errorf("partition slice not updated: %d", len(f.Partitions))
	}
}

func TestDoorLeadsAndOther(t *testing.T) {
	d := &Door{Partitions: [2]string{"A", "B"}}
	for _, dir := range []DoorDirection{Both, AToB, BToA} {
		d.Direction = dir
		ab := d.Leads("A", "B")
		ba := d.Leads("B", "A")
		switch dir {
		case Both:
			if !ab || !ba {
				t.Error("Both should allow both directions")
			}
		case AToB:
			if !ab || ba {
				t.Error("AToB wrong")
			}
		case BToA:
			if ab || !ba {
				t.Error("BToA wrong")
			}
		}
	}
	if d.Leads("A", "C") {
		t.Error("unrelated partitions lead")
	}
	if o, ok := d.Other("A"); !ok || o != "B" {
		t.Errorf("Other(A) = %v, %v", o, ok)
	}
	if _, ok := d.Other("Z"); ok {
		t.Error("Other(Z) found")
	}
}

func TestWallSetPunchesDoors(t *testing.T) {
	f := twoRoomFloor(t)
	ws := f.WallSet()
	// A path through the door position must have line of sight.
	if !ws.HasLineOfSight(geom.Pt(9, 5), geom.Pt(11, 5)) {
		t.Error("door opening blocked")
	}
	// A path through the shared wall away from the door must be blocked (the
	// wall appears twice: once per room boundary).
	if n := ws.Crossings(geom.Pt(9, 1), geom.Pt(11, 1)); n == 0 {
		t.Error("solid wall not blocking")
	}
}

func TestStaircaseEntries(t *testing.T) {
	s := &Staircase{Points: []geom.Point3{
		geom.Pt3(0, 0, 0), geom.Pt3(2, 0, 0),
		geom.Pt3(0, 0, 3.5), geom.Pt3(2, 0, 3.5),
	}}
	up := s.UpperEntry()
	lo := s.LowerEntry()
	if !up.Eq(geom.Pt(1, 0)) {
		t.Errorf("UpperEntry = %v", up)
	}
	if !lo.Eq(geom.Pt(1, 0)) {
		t.Errorf("LowerEntry = %v", lo)
	}
}

func TestBuildingValidate(t *testing.T) {
	b := NewBuilding("b", "B")
	f := twoRoomFloor(t)
	if err := b.AddFloor(f); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("valid building rejected: %v", err)
	}
	// Dangling door reference.
	f.Doors = append(f.Doors, &Door{ID: "DX", Floor: 0, Position: geom.Pt(5, 0),
		Partitions: [2]string{"A", "MISSING"}})
	if err := b.Validate(); err == nil {
		t.Error("dangling door reference accepted")
	}
	f.Doors = f.Doors[:len(f.Doors)-1]
	// Unresolved staircase link.
	b.Staircases = append(b.Staircases, &Staircase{
		ID: "S", Linked: true, UpperFloor: 7, UpperPartition: "Z",
		LowerFloor: 0, LowerPartition: "A",
	})
	if err := b.Validate(); err == nil {
		t.Error("unresolved staircase accepted")
	}
}

func TestBuildingAccessors(t *testing.T) {
	b := NewBuilding("b", "B")
	if err := b.AddFloor(twoRoomFloor(t)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFloor(NewFloor(2, 7, 3)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFloor(NewFloor(2, 7, 3)); err == nil {
		t.Error("duplicate floor accepted")
	}
	levels := b.FloorLevels()
	if len(levels) != 2 || levels[0] != 0 || levels[1] != 2 {
		t.Errorf("FloorLevels = %v", levels)
	}
	if b.PartitionCount() != 2 || b.DoorCount() != 1 {
		t.Errorf("counts = %d, %d", b.PartitionCount(), b.DoorCount())
	}
	if _, ok := b.Partition(0, "A"); !ok {
		t.Error("Partition(0, A) missing")
	}
	if _, ok := b.Partition(9, "A"); ok {
		t.Error("Partition on missing floor found")
	}
}

func TestLocation(t *testing.T) {
	l := At("b", 1, "P", geom.Pt(3, 4))
	if !l.HasPoint || l.String() == "" {
		t.Error("At location malformed")
	}
	s := AtPartition("b", 1, "P")
	if s.HasPoint {
		t.Error("symbolic location has a point")
	}
	o := At("b", 1, "Q", geom.Pt(0, 0))
	d, ok := l.Dist(o)
	if !ok || math.Abs(d-5) > 1e-9 {
		t.Errorf("Dist = %v, %v", d, ok)
	}
	if _, ok := l.Dist(At("b", 2, "P", geom.Pt(0, 0))); ok {
		t.Error("cross-floor Dist succeeded")
	}
	if _, ok := l.Dist(s); ok {
		t.Error("Dist to symbolic location succeeded")
	}
}

func TestSemanticsRules(t *testing.T) {
	b := NewBuilding("b", "B")
	f := NewFloor(0, 0, 3)
	canteen := &Partition{ID: "C", Name: "Staff Canteen", Floor: 0, Polygon: geom.Rect(0, 0, 5, 5)}
	hall := &Partition{ID: "H", Name: "Main Corridor", Floor: 0, Polygon: geom.Rect(5, 0, 30, 4)}
	big := &Partition{ID: "G", Name: "Lobby", Floor: 0, Polygon: geom.Rect(0, 5, 20, 20)}
	for _, p := range []*Partition{canteen, hall, big} {
		if err := f.AddPartition(p); err != nil {
			t.Fatal(err)
		}
	}
	// Give the lobby three doors so the public-area rule fires.
	for i, pos := range []geom.Point{geom.Pt(5, 10), geom.Pt(10, 5), geom.Pt(0, 10)} {
		f.Doors = append(f.Doors, &Door{
			ID: string(rune('a' + i)), Floor: 0, Position: pos,
			Partitions: [2]string{"G", ""},
		})
	}
	if err := b.AddFloor(f); err != nil {
		t.Fatal(err)
	}
	n := ApplySemantics(b, DefaultSemanticRules(3, 60))
	if n < 3 {
		t.Errorf("ApplySemantics classified %d, want >= 3", n)
	}
	if canteen.Kind != KindCanteen {
		t.Errorf("canteen kind = %v", canteen.Kind)
	}
	if hall.Kind != KindHallway {
		t.Errorf("hallway kind = %v", hall.Kind)
	}
	if big.Kind != KindPublicArea {
		t.Errorf("lobby kind = %v", big.Kind)
	}
}

func TestKindAndDirectionStrings(t *testing.T) {
	for _, k := range []PartitionKind{KindRoom, KindHallway, KindStaircase, KindPublicArea, KindCanteen, PartitionKind(99)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	for _, d := range []DoorDirection{Both, AToB, BToA, DoorDirection(99)} {
		if d.String() == "" {
			t.Error("empty direction string")
		}
	}
}
