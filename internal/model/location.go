package model

import (
	"fmt"

	"vita/internal/geom"
)

// Location identifies where something is, in the paper's composite format:
// buildingID + floorID plus either a partition ID, a coordinate point, or
// both (paper §4.2).
type Location struct {
	Building  string
	Floor     int
	Partition string
	Point     geom.Point
	// HasPoint distinguishes a symbolic (partition-only) location from a
	// coordinate one; proximity output is symbolic, trilateration output is
	// coordinate.
	HasPoint bool
}

// At returns a coordinate location.
func At(building string, floor int, partition string, pt geom.Point) Location {
	return Location{Building: building, Floor: floor, Partition: partition, Point: pt, HasPoint: true}
}

// AtPartition returns a symbolic, partition-level location.
func AtPartition(building string, floor int, partition string) Location {
	return Location{Building: building, Floor: floor, Partition: partition}
}

// String implements fmt.Stringer.
func (l Location) String() string {
	if l.HasPoint {
		return fmt.Sprintf("%s/F%d/%s@%s", l.Building, l.Floor, l.Partition, l.Point)
	}
	return fmt.Sprintf("%s/F%d/%s", l.Building, l.Floor, l.Partition)
}

// SameFloor reports whether the two locations are in the same building and
// floor.
func (l Location) SameFloor(o Location) bool {
	return l.Building == o.Building && l.Floor == o.Floor
}

// Dist returns the Euclidean distance between two coordinate locations on the
// same floor, and false when either lacks a coordinate or floors differ (the
// caller should then use the indoor walking distance from internal/topo).
func (l Location) Dist(o Location) (float64, bool) {
	if !l.HasPoint || !o.HasPoint || !l.SameFloor(o) {
		return 0, false
	}
	return l.Point.Dist(o.Point), true
}
