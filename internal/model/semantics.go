package model

import "strings"

// SemanticRule maps entity attributes to a partition kind. Vita "supports
// semantic extraction by defining empirical rules" (paper §4.1): a canteen is
// identified when the entity name contains "canteen" or "dining room"; a
// public area is recognized from its door connectivity and floorage.
type SemanticRule struct {
	// Name identifies the rule in diagnostics.
	Name string
	// Apply inspects the partition in the context of its floor and returns
	// the kind to assign and whether the rule fired.
	Apply func(p *Partition, f *Floor) (PartitionKind, bool)
}

// DefaultSemanticRules returns the paper's example rules plus a hallway
// heuristic. minPublicDoors and minPublicArea parameterize the public-area
// rule ("door connectivity and floorage").
func DefaultSemanticRules(minPublicDoors int, minPublicArea float64) []SemanticRule {
	return []SemanticRule{
		{
			Name: "canteen-by-name",
			Apply: func(p *Partition, _ *Floor) (PartitionKind, bool) {
				n := strings.ToLower(p.Name)
				if strings.Contains(n, "canteen") || strings.Contains(n, "dining room") {
					return KindCanteen, true
				}
				return 0, false
			},
		},
		{
			Name: "hallway-by-name",
			Apply: func(p *Partition, _ *Floor) (PartitionKind, bool) {
				n := strings.ToLower(p.Name)
				if strings.Contains(n, "hallway") || strings.Contains(n, "corridor") {
					return KindHallway, true
				}
				return 0, false
			},
		},
		{
			Name: "public-area-by-connectivity-and-floorage",
			Apply: func(p *Partition, f *Floor) (PartitionKind, bool) {
				if len(f.DoorsOf(p.ID)) >= minPublicDoors && p.Polygon.Area() >= minPublicArea {
					return KindPublicArea, true
				}
				return 0, false
			},
		},
	}
}

// ApplySemantics runs the rules over every partition of the building in rule
// order; the first matching rule wins. Partitions already classified as
// staircases are left untouched. It returns how many partitions were
// (re)classified.
func ApplySemantics(b *Building, rules []SemanticRule) int {
	n := 0
	for _, level := range b.FloorLevels() {
		f := b.Floors[level]
		for _, p := range f.Partitions {
			if p.Kind == KindStaircase {
				continue
			}
			for _, r := range rules {
				if kind, ok := r.Apply(p, f); ok {
					if p.Kind != kind {
						p.Kind = kind
						n++
					}
					break
				}
			}
		}
	}
	return n
}
