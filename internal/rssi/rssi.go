// Package rssi implements Vita's raw RSSI measurement generation (paper
// §3.2): a generic, flexible log-distance path loss model
//
//	rssi(dBm) = -10·n·log10(dt) + A + Nob + Nf
//
// where dt is the transmission distance, A the calibration RSSI at 1 m,
// Nob the noise caused by obstacles like walls and doors, and Nf the noise
// from signal fluctuation (temperature, humidity, ...). The obstacle term is
// computed from explicit line-of-sight wall crossings, realizing the paper's
// Figure 3(a) example where a device behind walls measures a weaker signal
// than one at the same distance with clear line of sight.
package rssi

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/rng"
	"vita/internal/topo"
	"vita/internal/trajectory"
)

// Measurement is one raw RSSI record (o_id, d_id, rssi) with its timestamp
// (paper §4.2).
type Measurement struct {
	ObjID    int
	DeviceID string
	RSSI     float64
	T        float64
}

// PathLossModel holds the user-definable variables of the RSSI formula.
type PathLossModel struct {
	// Exponent is the path loss exponent n; device-specific exponents
	// override it when positive on the device's properties.
	Exponent float64
	// CalibrationA is the default RSSI at 1 m; device properties override it
	// when non-zero.
	CalibrationA float64
	// WallLoss is the dB lost per wall crossed (the Nob term is
	// -WallLoss × crossings).
	WallLoss float64
	// FluctuationSigma is the standard deviation of the Gaussian Nf term.
	FluctuationSigma float64
	// UseLineOfSight enables the wall-crossing obstacle term; when false a
	// constant HalfObstaclePenalty applies instead (the ablation baseline of
	// DESIGN.md §5).
	UseLineOfSight bool
	// ConstantObstaclePenalty replaces the LoS term when UseLineOfSight is
	// false.
	ConstantObstaclePenalty float64
}

// DefaultPathLossModel returns the paper's quick-customization defaults.
func DefaultPathLossModel() PathLossModel {
	return PathLossModel{
		Exponent:         2.2,
		CalibrationA:     -38,
		WallLoss:         6,
		FluctuationSigma: 2,
		UseLineOfSight:   true,
	}
}

// Validate rejects impossible configurations.
func (m PathLossModel) Validate() error {
	if m.Exponent <= 0 {
		return fmt.Errorf("rssi: non-positive path loss exponent")
	}
	if m.FluctuationSigma < 0 {
		return fmt.Errorf("rssi: negative fluctuation sigma")
	}
	if m.WallLoss < 0 {
		return fmt.Errorf("rssi: negative wall loss")
	}
	return nil
}

// At computes one RSSI value for an object at distance dt meters with the
// given number of wall crossings. r supplies the fluctuation noise; a nil r
// yields the noise-free expectation.
func (m PathLossModel) At(dt float64, crossings int, dev *device.Device, r *rng.Rand) float64 {
	if dt < 1 {
		dt = 1 // the model is calibrated at 1 m; clamp inside
	}
	n := m.Exponent
	if dev != nil && dev.Props.PathLossExponent > 0 {
		n = dev.Props.PathLossExponent
	}
	a := m.CalibrationA
	if dev != nil && dev.Props.CalibrationA != 0 {
		a = dev.Props.CalibrationA
	}
	v := -10*n*math.Log10(dt) + a
	if m.UseLineOfSight {
		v -= m.WallLoss * float64(crossings)
	} else {
		v -= m.ConstantObstaclePenalty
	}
	if r != nil && m.FluctuationSigma > 0 {
		v += r.Normal(0, m.FluctuationSigma)
	}
	return v
}

// InvertDistance converts an RSSI value back to an estimated transmission
// distance, ignoring the noise terms — the default RSSI conversion function
// offered to trilateration users (paper §3.3: "a default function is also
// provided").
func (m PathLossModel) InvertDistance(rssiVal float64, dev *device.Device) float64 {
	n := m.Exponent
	if dev != nil && dev.Props.PathLossExponent > 0 {
		n = dev.Props.PathLossExponent
	}
	a := m.CalibrationA
	if dev != nil && dev.Props.CalibrationA != 0 {
		a = dev.Props.CalibrationA
	}
	return math.Pow(10, (a-rssiVal)/(10*n))
}

// Config configures measurement generation.
type Config struct {
	Model PathLossModel
	// SampleInterval overrides every device's own sampling interval when
	// positive — the paper exposes a dedicated sampling frequency for raw
	// RSSI generation (§2: RSSI Measurement Controller).
	SampleInterval float64
	// Parallelism is the number of workers object trajectories are sharded
	// across. 0 selects GOMAXPROCS; 1 runs fully sequentially. Any value
	// produces identical measurements for the same rng.
	Parallelism int
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}

// Generator produces raw RSSI measurements by replaying raw trajectories
// against the deployed devices.
type Generator struct {
	topo    *topo.Topology
	devices []*device.Device
	cfg     Config
	// byFloor groups devices for fast per-sample lookup.
	byFloor map[int][]*device.Device
}

// NewGenerator builds a generator for the given deployment.
func NewGenerator(t *topo.Topology, devs []*device.Device, cfg Config) (*Generator, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("rssi: negative parallelism")
	}
	g := &Generator{topo: t, devices: devs, cfg: cfg, byFloor: make(map[int][]*device.Device)}
	for _, d := range devs {
		g.byFloor[d.Floor] = append(g.byFloor[d.Floor], d)
	}
	return g, nil
}

// Generate replays the trajectory samples (which must be in time order per
// object) and emits measurements at each device's sampling instants. Linear
// interpolation between consecutive same-floor samples reconstructs the
// object position at the device's sampling times.
//
// r keys the fluctuation noise: each object's replay draws from a stream
// derived deterministically from (r, object ID), and objects are sharded
// across cfg.Parallelism workers. Output is byte-identical for any worker
// count. Measurements are emitted grouped by ascending object ID (time
// order per object and device within each group); emit is never invoked
// concurrently.
func (g *Generator) Generate(samples []trajectory.Sample, r *rng.Rand, emit func(Measurement)) (int, error) {
	if emit == nil {
		return 0, fmt.Errorf("rssi: nil emit callback")
	}
	byObj := groupByObject(samples)
	// Deterministic object order.
	ids := make([]int, 0, len(byObj))
	for id := range byObj {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	streams := r.Streams()

	if workers := g.cfg.workers(); workers > 1 && len(ids) > 1 {
		// Shard trajectories across workers and emit in object-ID order so
		// parallel output matches the sequential path. Emission streams: as
		// soon as the contiguous prefix of objects is done, its buffered
		// measurements are flushed and released. The transient buffer holds
		// only objects finished ahead of the lowest unfinished ID — small in
		// the typical similar-sized-trajectory case, though a pathologically
		// long first object can stall the flush behind it.
		results := make([][]Measurement, len(ids))
		done := make([]bool, len(ids))
		var (
			mu    sync.Mutex
			next  int
			count int
			wg    sync.WaitGroup
		)
		finish := func(i int, ms []Measurement) {
			mu.Lock()
			defer mu.Unlock()
			results[i] = ms
			done[i] = true
			for next < len(ids) && done[next] {
				for _, m := range results[next] {
					emit(m)
				}
				count += len(results[next])
				results[next] = nil
				next++
			}
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(ids); i += workers {
					id := ids[i]
					var ms []Measurement
					g.generateForObject(id, byObj[id], streams.Stream(uint64(id)),
						func(m Measurement) { ms = append(ms, m) })
					finish(i, ms)
				}
			}(w)
		}
		wg.Wait()
		return count, nil
	}

	count := 0
	for _, id := range ids {
		count += g.generateForObject(id, byObj[id], streams.Stream(uint64(id)), emit)
	}
	return count, nil
}

func (g *Generator) generateForObject(id int, traj []trajectory.Sample, r *rng.Rand, emit func(Measurement)) int {
	if len(traj) == 0 {
		return 0
	}
	count := 0
	for _, dev := range g.devices {
		interval := dev.Props.SampleInterval
		if g.cfg.SampleInterval > 0 {
			interval = g.cfg.SampleInterval
		}
		if interval <= 0 {
			interval = 1
		}
		start := traj[0].T
		end := traj[len(traj)-1].T
		// Align device sampling instants to the global clock.
		t0 := math.Ceil(start/interval) * interval
		seg := 0
		for t := t0; t <= end+geom.Eps; t += interval {
			// Advance to the segment containing t.
			for seg+1 < len(traj) && traj[seg+1].T < t {
				seg++
			}
			pos, floor, ok := interpolate(traj, seg, t)
			if !ok || floor != dev.Floor {
				continue
			}
			dist := dev.Position.Dist(pos)
			if dist > dev.Props.DetectionRange {
				continue
			}
			crossings := 0
			if g.cfg.Model.UseLineOfSight {
				crossings = g.topo.Crossings(floor, dev.Position, pos)
			}
			emit(Measurement{
				ObjID:    id,
				DeviceID: dev.ID,
				RSSI:     g.cfg.Model.At(dist, crossings, dev, r),
				T:        t,
			})
			count++
		}
	}
	return count
}

// interpolate returns the object position at time t from the trajectory
// segment starting at index seg. It fails across floor changes.
func interpolate(traj []trajectory.Sample, seg int, t float64) (geom.Point, int, bool) {
	a := traj[seg]
	if seg+1 >= len(traj) {
		if math.Abs(a.T-t) <= 1.0 {
			return a.Loc.Point, a.Loc.Floor, true
		}
		return geom.Point{}, 0, false
	}
	b := traj[seg+1]
	if t < a.T-geom.Eps || t > b.T+geom.Eps {
		return geom.Point{}, 0, false
	}
	if a.Loc.Floor != b.Loc.Floor {
		// Mid-staircase; attribute to the nearer endpoint's floor.
		if t-a.T <= b.T-t {
			return a.Loc.Point, a.Loc.Floor, true
		}
		return b.Loc.Point, b.Loc.Floor, true
	}
	if b.T-a.T < geom.Eps {
		return a.Loc.Point, a.Loc.Floor, true
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.Loc.Point.Lerp(b.Loc.Point, frac), a.Loc.Floor, true
}

func groupByObject(samples []trajectory.Sample) map[int][]trajectory.Sample {
	out := make(map[int][]trajectory.Sample)
	for _, s := range samples {
		out[s.ObjID] = append(out[s.ObjID], s)
	}
	return out
}
