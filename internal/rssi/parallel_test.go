package rssi

import (
	"fmt"
	"testing"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rng"
	"vita/internal/trajectory"
)

// benchTrajectories builds a multi-object walk past a grid of devices.
func benchTrajectories(n, steps int) []trajectory.Sample {
	var out []trajectory.Sample
	for id := 1; id <= n; id++ {
		for i := 0; i <= steps; i++ {
			out = append(out, trajectory.Sample{
				ObjID: id,
				Loc:   model.At("office", 0, "F0-S0", geom.Pt(float64(i%30), float64(2+id%15))),
				T:     float64(i),
			})
		}
	}
	return out
}

func gridDevices(n int) []*device.Device {
	devs := make([]*device.Device, n)
	for i := range devs {
		props := device.DefaultProperties(device.WiFi)
		props.SampleInterval = 1
		devs[i] = &device.Device{
			ID: fmt.Sprintf("d%02d", i), Type: device.WiFi, Floor: 0,
			Position: geom.Pt(float64(3+(i%5)*7), float64(3+(i/5)*6)),
			Props:    props,
		}
	}
	return devs
}

// TestGenerateParallelIdentical asserts the RSSI reproducibility guarantee:
// the same seed yields byte-identical measurements for any worker count.
func TestGenerateParallelIdentical(t *testing.T) {
	tp := officeTopo(t)
	traj := benchTrajectories(9, 60)
	devs := gridDevices(8)

	run := func(p int) []Measurement {
		gen, err := NewGenerator(tp, devs, Config{Model: DefaultPathLossModel(), Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		var ms []Measurement
		n, err := gen.Generate(traj, rng.New(11), func(m Measurement) { ms = append(ms, m) })
		if err != nil {
			t.Fatal(err)
		}
		if n != len(ms) {
			t.Fatalf("count %d != emitted %d", n, len(ms))
		}
		return ms
	}

	base := run(1)
	if len(base) == 0 {
		t.Fatal("no measurements generated")
	}
	for _, p := range []int{2, 4, 8} {
		got := run(p)
		if len(got) != len(base) {
			t.Fatalf("parallelism %d: %d measurements, sequential %d", p, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("parallelism %d: measurement %d differs: %+v vs %+v", p, i, got[i], base[i])
			}
		}
	}
}

// TestGenerateEmitOrder asserts the documented emission order: ascending
// object ID, and per (object, device) ascending time.
func TestGenerateEmitOrder(t *testing.T) {
	tp := officeTopo(t)
	gen, err := NewGenerator(tp, gridDevices(6), Config{Model: DefaultPathLossModel(), Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if _, err := gen.Generate(benchTrajectories(7, 40), rng.New(2), func(m Measurement) { ms = append(ms, m) }); err != nil {
		t.Fatal(err)
	}
	lastObj := 0
	lastT := map[[2]string]float64{}
	for _, m := range ms {
		if m.ObjID < lastObj {
			t.Fatalf("object order violated: %d after %d", m.ObjID, lastObj)
		}
		if m.ObjID > lastObj {
			lastObj = m.ObjID
			lastT = map[[2]string]float64{}
		}
		key := [2]string{fmt.Sprint(m.ObjID), m.DeviceID}
		if prev, ok := lastT[key]; ok && m.T <= prev {
			t.Fatalf("time order violated for obj %d dev %s: %v after %v", m.ObjID, m.DeviceID, m.T, prev)
		}
		lastT[key] = m.T
	}
}

func TestNewGeneratorRejectsNegativeParallelism(t *testing.T) {
	tp := officeTopo(t)
	if _, err := NewGenerator(tp, nil, Config{Model: DefaultPathLossModel(), Parallelism: -2}); err == nil {
		t.Error("negative parallelism accepted")
	}
}

// BenchmarkGenerate measures RSSI synthesis at several worker counts over a
// fixed 40-object, 120-second replay against 12 devices.
func BenchmarkGenerate(b *testing.B) {
	tp := officeTopo(b)
	traj := benchTrajectories(40, 120)
	devs := gridDevices(12)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			gen, err := NewGenerator(tp, devs, Config{Model: DefaultPathLossModel(), Parallelism: p})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Generate(traj, rng.New(uint64(i+1)), func(Measurement) {}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
