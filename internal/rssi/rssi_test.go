package rssi

import (
	"math"
	"testing"
	"testing/quick"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/model"
	"vita/internal/rng"
	"vita/internal/topo"
	"vita/internal/trajectory"
)

func officeTopo(t testing.TB) *topo.Topology {
	t.Helper()
	f, err := ifc.Parse(ifc.OfficeIFC())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(b, topo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestPathLossMonotonicInDistance(t *testing.T) {
	m := DefaultPathLossModel()
	prev := math.Inf(1)
	for _, d := range []float64{1, 2, 5, 10, 20, 50} {
		v := m.At(d, 0, nil, nil)
		if v >= prev {
			t.Fatalf("RSSI not decreasing: %v at %vm after %v", v, d, prev)
		}
		prev = v
	}
}

func TestPathLossWallPenalty(t *testing.T) {
	m := DefaultPathLossModel()
	clear := m.At(10, 0, nil, nil)
	blocked := m.At(10, 2, nil, nil)
	want := m.WallLoss * 2
	if got := clear - blocked; math.Abs(got-want) > 1e-9 {
		t.Errorf("wall penalty = %v, want %v", got, want)
	}
}

func TestPathLossConstantPenaltyMode(t *testing.T) {
	m := DefaultPathLossModel()
	m.UseLineOfSight = false
	m.ConstantObstaclePenalty = 4
	a := m.At(10, 0, nil, nil)
	b := m.At(10, 5, nil, nil) // crossings ignored
	if a != b {
		t.Errorf("constant mode should ignore crossings: %v vs %v", a, b)
	}
	m2 := DefaultPathLossModel()
	if m.At(10, 0, nil, nil) >= m2.At(10, 0, nil, nil) {
		t.Error("constant penalty not applied")
	}
}

func TestPathLossClampsBelowOneMeter(t *testing.T) {
	m := DefaultPathLossModel()
	if m.At(0.01, 0, nil, nil) != m.At(1, 0, nil, nil) {
		t.Error("sub-meter distances must clamp to the 1m calibration point")
	}
}

func TestDeviceOverrides(t *testing.T) {
	m := DefaultPathLossModel()
	d := &device.Device{Props: device.Properties{CalibrationA: -60, PathLossExponent: 3}}
	base := m.At(10, 0, nil, nil)
	dev := m.At(10, 0, d, nil)
	want := -10*3*math.Log10(10) + -60
	if math.Abs(dev-want) > 1e-9 {
		t.Errorf("device-specific RSSI = %v, want %v", dev, want)
	}
	if dev == base {
		t.Error("device overrides ignored")
	}
}

func TestInvertDistanceRoundTrip(t *testing.T) {
	m := DefaultPathLossModel()
	for _, d := range []float64{1, 3, 7.5, 20, 34} {
		v := m.At(d, 0, nil, nil) // noise-free
		got := m.InvertDistance(v, nil)
		if math.Abs(got-d) > 1e-6*d {
			t.Errorf("InvertDistance(%v) = %v, want %v", v, got, d)
		}
	}
}

func TestQuickInvertDistanceMonotonic(t *testing.T) {
	m := DefaultPathLossModel()
	f := func(a, b float64) bool {
		ra := -30 - math.Abs(math.Mod(a, 70))
		rb := -30 - math.Abs(math.Mod(b, 70))
		da := m.InvertDistance(ra, nil)
		db := m.InvertDistance(rb, nil)
		if ra == rb {
			return da == db
		}
		// Weaker RSSI must invert to a larger distance.
		if ra < rb {
			return da >= db
		}
		return da <= db
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFluctuationStatistics(t *testing.T) {
	m := DefaultPathLossModel()
	m.FluctuationSigma = 3
	r := rng.New(1)
	const n = 20000
	base := m.At(10, 0, nil, nil)
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := m.At(10, 0, nil, r)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-base) > 0.1 {
		t.Errorf("noisy mean %v deviates from %v", mean, base)
	}
	if math.Abs(sd-3) > 0.15 {
		t.Errorf("noise sd = %v, want 3", sd)
	}
}

func TestModelValidate(t *testing.T) {
	bad := []PathLossModel{
		{Exponent: 0, FluctuationSigma: 1},
		{Exponent: 2, FluctuationSigma: -1},
		{Exponent: 2, WallLoss: -3},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
	if err := DefaultPathLossModel().Validate(); err != nil {
		t.Errorf("default model rejected: %v", err)
	}
}

func TestGeneratorRangeGating(t *testing.T) {
	tp := officeTopo(t)
	props := device.DefaultProperties(device.WiFi)
	props.DetectionRange = 5
	props.SampleInterval = 1
	dev := &device.Device{ID: "d1", Type: device.WiFi, Floor: 0,
		Position: geom.Pt(4, 4), Props: props}
	gen, err := NewGenerator(tp, []*device.Device{dev}, Config{Model: DefaultPathLossModel()})
	if err != nil {
		t.Fatal(err)
	}
	// One object walking straight through the detection range.
	var traj []trajectory.Sample
	for i := 0; i <= 20; i++ {
		traj = append(traj, trajectory.Sample{
			ObjID: 1,
			Loc:   model.At("office", 0, "F0-S0", geom.Pt(float64(i), 4)),
			T:     float64(i),
		})
	}
	var ms []Measurement
	n, err := gen.Generate(traj, rng.New(2), func(m Measurement) { ms = append(ms, m) })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ms) || n == 0 {
		t.Fatalf("generated %d/%d", n, len(ms))
	}
	// Only within ±5m of x=4, i.e. t in [0,9]: x(t)=t.
	for _, m := range ms {
		if m.T < -0.001 || m.T > 9.001 {
			t.Errorf("measurement at t=%v outside detection window", m.T)
		}
		if m.DeviceID != "d1" || m.ObjID != 1 {
			t.Errorf("wrong identifiers: %+v", m)
		}
	}
}

func TestGeneratorSampleIntervalOverride(t *testing.T) {
	tp := officeTopo(t)
	props := device.DefaultProperties(device.WiFi)
	props.SampleInterval = 1
	dev := &device.Device{ID: "d1", Type: device.WiFi, Floor: 0,
		Position: geom.Pt(4, 4), Props: props}
	var traj []trajectory.Sample
	for i := 0; i <= 10; i++ {
		traj = append(traj, trajectory.Sample{
			ObjID: 1, Loc: model.At("office", 0, "F0-S0", geom.Pt(4, 4)), T: float64(i),
		})
	}
	count := func(interval float64) int {
		gen, err := NewGenerator(tp, []*device.Device{dev},
			Config{Model: DefaultPathLossModel(), SampleInterval: interval})
		if err != nil {
			t.Fatal(err)
		}
		n, err := gen.Generate(traj, rng.New(3), func(Measurement) {})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	fine, coarse := count(0.5), count(2)
	if fine <= coarse {
		t.Errorf("override ignored: fine=%d coarse=%d", fine, coarse)
	}
}

func TestGeneratorFloorSeparation(t *testing.T) {
	tp := officeTopo(t)
	dev := &device.Device{ID: "d1", Type: device.WiFi, Floor: 1,
		Position: geom.Pt(4, 4), Props: device.DefaultProperties(device.WiFi)}
	traj := []trajectory.Sample{
		{ObjID: 1, Loc: model.At("office", 0, "F0-S0", geom.Pt(4, 4)), T: 0},
		{ObjID: 1, Loc: model.At("office", 0, "F0-S0", geom.Pt(4, 4)), T: 10},
	}
	gen, err := NewGenerator(tp, []*device.Device{dev}, Config{Model: DefaultPathLossModel()})
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Generate(traj, rng.New(4), func(Measurement) {})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("device on floor 1 heard object on floor 0: %d measurements", n)
	}
}

func TestGeneratorNilEmit(t *testing.T) {
	tp := officeTopo(t)
	gen, err := NewGenerator(tp, nil, Config{Model: DefaultPathLossModel()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(nil, rng.New(1), nil); err == nil {
		t.Error("nil emit accepted")
	}
}
