package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/seglog"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// writeSegmented streams samples into a fresh trajectory segment log at dir,
// rolling every maxRows rows.
func writeSegmented(t *testing.T, dir string, samples []trajectory.Sample, maxRows int) *seglog.Log {
	t.Helper()
	l, err := seglog.OpenOrCreate(dir, colstore.KindTrajectory)
	if err != nil {
		t.Fatal(err)
	}
	appendSegmented(t, l, samples, maxRows)
	return l
}

func appendSegmented(t *testing.T, l *seglog.Log, samples []trajectory.Sample, maxRows int) {
	t.Helper()
	w, err := seglog.NewTrajectoryWriter(l, seglog.WriterOptions{
		MaxSegmentRows: maxRows,
		Block:          colstore.Options{BlockSize: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// operatorText runs the five operators plus info and concatenates their
// exact CLI text — the byte-parity probe for single-file vs segmented.
func operatorText(t *testing.T, ds *Dataset) string {
	t.Helper()
	var buf bytes.Buffer
	rresp, err := ds.Range(RangeRequest{Floor: 1, Box: geom.BBox{Min: geom.Pt(3, 2), Max: geom.Pt(17, 12)}, T0: 100, T1: 130})
	if err != nil {
		t.Fatal(err)
	}
	rresp.WriteText(&buf)
	kresp, err := ds.KNN(KNNRequest{Floor: 0, At: geom.Pt(10, 7.5), T: 300, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	kresp.WriteText(&buf)
	dresp, err := ds.Density(DensityRequest{T: 300})
	if err != nil {
		t.Fatal(err)
	}
	dresp.WriteText(&buf)
	tresp, err := ds.Traj(TrajRequest{Obj: 3, T0: 100, T1: 400})
	if err != nil {
		t.Fatal(err)
	}
	tresp.WriteText(&buf)
	wresp, err := ds.Dwell(DwellRequest{Floor: -1, T0: 100, T1: 400})
	if err != nil {
		t.Fatal(err)
	}
	wresp.WriteText(&buf)
	iresp, err := ds.Info(false)
	if err != nil {
		t.Fatal(err)
	}
	iresp.WriteText(&buf)
	return buf.String()
}

// TestSegmentedMatchesSingleFile is the acceptance gate for multi-segment
// serving: the same rows as one flat VTB file and as a segment log — before
// compaction, after full compaction, and mid-way (a merged segment plus
// fresh tail segments) — produce byte-identical operator output, in both the
// cached daemon configuration and the streaming one-shot configuration.
func TestSegmentedMatchesSingleFile(t *testing.T) {
	samples := testSamples()
	flatDir := t.TempDir()
	writeDataset(t, flatDir, storage.FormatVTB, samples)

	segDir := t.TempDir() // 5 fresh segments
	writeSegmented(t, segDir, samples, len(samples)/5+1)

	compactedDir := t.TempDir() // 1 merged segment
	lc := writeSegmented(t, compactedDir, samples, len(samples)/5+1)
	if m, err := seglog.NewCompactor(lc, seglog.CompactorOptions{MinSegments: 2}).RunOnce(); err != nil || m == nil {
		t.Fatalf("compaction: %+v, %v", m, err)
	}

	mixedDir := t.TempDir() // merged prefix + 2 fresh tail segments
	cut := len(samples) * 3 / 5
	lm := writeSegmented(t, mixedDir, samples[:cut], cut/3+1)
	if m, err := seglog.NewCompactor(lm, seglog.CompactorOptions{MinSegments: 2}).RunOnce(); err != nil || m == nil {
		t.Fatalf("mixed compaction: %+v, %v", m, err)
	}
	appendSegmented(t, lm, samples[cut:], (len(samples)-cut)/2+1)

	configs := map[string]Config{
		"cached":    {WatchInterval: -1},
		"streaming": {CacheBytes: -1, IndexEntries: -1, WatchInterval: -1},
	}
	for name, cfg := range configs {
		flat, err := Open(flatDir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := operatorText(t, flat)
		flat.Close()
		for _, tc := range []struct {
			label string
			dir   string
			segs  int
		}{
			{"pre-compaction", segDir, 5},
			{"post-compaction", compactedDir, 1},
			{"mid-compaction", mixedDir, 3},
		} {
			ds, err := Open(tc.dir, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, tc.label, err)
			}
			if got := ds.Segments(); got != tc.segs {
				t.Errorf("%s/%s: segments = %d, want %d", name, tc.label, got, tc.segs)
			}
			if got := operatorText(t, ds); got != want {
				t.Errorf("%s/%s: operator output differs from single file\n got: %q\nwant: %q",
					name, tc.label, got[:min(len(got), 400)], want[:min(len(want), 400)])
			}
			ds.Close()
		}
	}
}

// TestRefreshPicksUpAppend checks that a manifest refresh folds a writer's
// new segments into serving without reopening the dataset.
func TestRefreshPicksUpAppend(t *testing.T) {
	samples := testSamples()
	cut := len(samples) / 2
	dir := t.TempDir()
	l := writeSegmented(t, dir, samples[:cut], cut/2+1)

	ds, err := Open(dir, Config{WatchInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if got := ds.Len(); got != cut {
		t.Fatalf("pre-append Len = %d, want %d", got, cut)
	}

	appendSegmented(t, l, samples[cut:], len(samples)-cut)
	changed, err := ds.Refresh()
	if err != nil || !changed {
		t.Fatalf("refresh after append: changed=%v err=%v", changed, err)
	}
	if got := ds.Len(); got != len(samples) {
		t.Fatalf("post-append Len = %d, want %d", got, len(samples))
	}
	if ds.Refreshes() != 1 {
		t.Errorf("refreshes = %d, want 1", ds.Refreshes())
	}
	// A second refresh with no new generation is a no-op.
	if changed, err := ds.Refresh(); err != nil || changed {
		t.Fatalf("idle refresh: changed=%v err=%v", changed, err)
	}

	// Parity against a flat file holding all rows, post-refresh.
	flatDir := t.TempDir()
	writeDataset(t, flatDir, storage.FormatVTB, samples)
	flat, err := Open(flatDir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if got, want := operatorText(t, ds), operatorText(t, flat); got != want {
		t.Error("refreshed dataset output differs from flat file")
	}
}

// TestIndexCacheInvalidatedOnRefresh is the regression test for the stale
// per-predicate index cache: an index built before new data arrives must not
// answer queries after the refresh.
func TestIndexCacheInvalidatedOnRefresh(t *testing.T) {
	samples := testSamples()
	cut := len(samples) / 2
	dir := t.TempDir()
	l := writeSegmented(t, dir, samples[:cut], cut/2+1)

	ds, err := Open(dir, Config{WatchInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	// Whole-dataset window: builds and caches an index over the first half.
	q := RangeRequest{Floor: -1, Box: geom.BBox{Min: geom.Pt(-1e9, -1e9), Max: geom.Pt(1e9, 1e9)}, T0: 0, T1: 1e9}
	before, err := ds.Range(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Hits) != cut {
		t.Fatalf("pre-append hits = %d, want %d", len(before.Hits), cut)
	}
	// Same query again is served from the cached index.
	if resp, err := ds.Range(q); err != nil || !resp.Stats.IndexCached {
		t.Fatalf("warm query not index-cached: %+v, %v", resp.Stats, err)
	}

	appendSegmented(t, l, samples[cut:], len(samples)-cut)
	if _, err := ds.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ds.IndexInvalidations() == 0 {
		t.Error("refresh invalidated no index entries")
	}
	after, err := ds.Range(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.IndexCached {
		t.Error("post-refresh query served from a stale cached index")
	}
	if len(after.Hits) != len(samples) {
		t.Errorf("post-refresh hits = %d, want %d — stale index survived the refresh",
			len(after.Hits), len(samples))
	}
}

// TestBlockCacheInvalidationIsPrecise checks the (segment, block) cache
// keys: an append invalidates nothing (old segments' blocks stay warm), a
// compaction invalidates exactly the superseded segments' blocks.
func TestBlockCacheInvalidationIsPrecise(t *testing.T) {
	samples := testSamples()
	cut := len(samples) / 2
	dir := t.TempDir()
	l := writeSegmented(t, dir, samples[:cut], cut/2+1)

	// Index cache off so every query exercises the block path.
	ds, err := Open(dir, Config{IndexEntries: -1, WatchInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	all := colstore.Predicate{}
	if _, _, err := ds.Samples(all); err != nil {
		t.Fatal(err) // warm the cache
	}

	appendSegmented(t, l, samples[cut:], len(samples)-cut)
	if _, err := ds.Refresh(); err != nil {
		t.Fatal(err)
	}
	if n := ds.BlockInvalidations(); n != 0 {
		t.Errorf("append invalidated %d blocks; old segments should stay warm", n)
	}
	_, stats, err := ds.Samples(all)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits == 0 {
		t.Error("no cache hits after append — old segments' blocks went cold")
	}

	if m, err := seglog.NewCompactor(ds.SegLog(), seglog.CompactorOptions{MinSegments: 2}).RunOnce(); err != nil || m == nil {
		t.Fatalf("compaction: %+v, %v", m, err)
	}
	if _, err := ds.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ds.BlockInvalidations() == 0 {
		t.Error("compaction refresh invalidated no blocks")
	}
	got, stats, err := ds.Samples(all)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 1 {
		t.Errorf("post-compaction scan fanned over %d segments, want 1", stats.Segments)
	}
	if len(got) != len(samples) {
		t.Fatalf("post-compaction rows = %d, want %d", len(got), len(samples))
	}
	for i := range got {
		if got[i] != samples[i] {
			t.Fatalf("row %d differs post-compaction", i)
		}
	}
}

// TestServeIgnoresCrashArtifacts opens a log bearing the debris of a writer
// and compactor both killed mid-mutation; serving sees exactly the committed
// rows.
func TestServeIgnoresCrashArtifacts(t *testing.T) {
	samples := testSamples()
	dir := t.TempDir()
	writeSegmented(t, dir, samples, len(samples)/3+1)

	for _, junk := range []string{"seg-00000099.vtb.tmp", "seg-00000098.vtb", seglog.ManifestName + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("not a segment"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	ds, err := Open(dir, Config{WatchInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if got := ds.Len(); got != len(samples) {
		t.Fatalf("Len with crash artifacts = %d, want %d", got, len(samples))
	}
	flatDir := t.TempDir()
	writeDataset(t, flatDir, storage.FormatVTB, samples)
	flat, err := Open(flatDir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if operatorText(t, ds) != operatorText(t, flat) {
		t.Error("crash artifacts changed query output")
	}
}

// TestWatcherPicksUpAppend exercises the background watcher end to end: a
// dataset opened with a short watch interval folds in an append without any
// explicit Refresh call.
func TestWatcherPicksUpAppend(t *testing.T) {
	samples := testSamples()
	cut := len(samples) / 2
	dir := t.TempDir()
	l := writeSegmented(t, dir, samples[:cut], cut)

	ds, err := Open(dir, Config{WatchInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	appendSegmented(t, l, samples[cut:], len(samples)-cut)

	deadline := time.Now().Add(5 * time.Second)
	for ds.Len() != len(samples) {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never picked up the append: Len = %d, want %d", ds.Len(), len(samples))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
