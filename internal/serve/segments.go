package serve

import (
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"vita/internal/colstore"
	"vita/internal/seglog"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// The segment registry is how a Dataset serves data that is still being
// written: instead of one trajectory reader it holds an immutable snapshot of
// open readers — a segmentSet — built from one manifest generation of an
// internal/seglog log. Queries retain the set they started on, so a refresh
// or compaction mid-query never closes a file out from under a scan; the old
// set's readers close when the last in-flight query drains. Single-file
// datasets ride the same machinery as a static one-segment set (segment ID 0,
// no log), so there is exactly one scan pipeline to get right.

// segReader is one open segment: its VTB reader, its resident zone maps, and
// a reference count tying the reader's (and the log file's) lifetime to the
// segment sets that include it.
type segReader struct {
	id    uint64
	file  string // manifest-relative name; "" for single-file datasets
	tr    *colstore.TrajectoryReader
	zones []colstore.ZoneMap
	log   *seglog.Log // nil for single-file datasets
	refs  atomic.Int32
}

func (s *segReader) retain() { s.refs.Add(1) }

// release drops one reference; the last one closes the reader and, for log
// segments, lets the log delete the file if compaction tombstoned it.
func (s *segReader) release() {
	if s.refs.Add(-1) == 0 {
		_ = s.tr.Close()
		if s.log != nil {
			s.log.ReleaseFiles(s.file)
		}
	}
}

// segmentSet is an immutable snapshot of the segments serving one manifest
// generation. It is born with one reference (the Dataset's ownership);
// queries retain it for their duration, so swapping in a new set never
// invalidates a scan in flight.
type segmentSet struct {
	gen  uint64
	segs []*segReader
	refs atomic.Int32
}

func newSegmentSet(gen uint64, segs []*segReader) *segmentSet {
	set := &segmentSet{gen: gen, segs: segs}
	set.refs.Store(1)
	return set
}

func (s *segmentSet) retain() { s.refs.Add(1) }

func (s *segmentSet) release() {
	if s.refs.Add(-1) == 0 {
		for _, sg := range s.segs {
			sg.release()
		}
	}
}

// acquireSet retains and returns the current segment set, or nil after Close
// (and for CSV datasets, which have no segments).
func (d *Dataset) acquireSet() *segmentSet {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cur != nil {
		d.cur.retain()
	}
	return d.cur
}

// buildSet opens readers for every segment in man, reusing prev's readers for
// segments both generations share — a refresh after an append re-opens only
// the new tail, and a refresh after compaction opens one merged file.
func (d *Dataset) buildSet(man seglog.Manifest, prev *segmentSet) (*segmentSet, error) {
	held := make(map[uint64]*segReader)
	if prev != nil {
		for _, sg := range prev.segs {
			held[sg.id] = sg
		}
	}
	segs := make([]*segReader, 0, len(man.Segments))
	fail := func(err error) (*segmentSet, error) {
		for _, sg := range segs {
			sg.release()
		}
		return nil, err
	}
	for _, m := range man.Segments {
		if sg, ok := held[m.ID]; ok {
			sg.retain()
			segs = append(segs, sg)
			continue
		}
		// Register the file with the log before opening so an in-process
		// compactor that supersedes it mid-build tombstones it instead of
		// deleting it out from under the reader.
		d.log.RetainFiles(m.File)
		tr, err := colstore.OpenTrajectoryOptions(d.log.SegmentPath(m), colstore.OpenOptions{DisableMmap: d.disableMmap})
		if err != nil {
			d.log.ReleaseFiles(m.File)
			return fail(fmt.Errorf("serve: segment %s: %w", m.File, err))
		}
		sg := &segReader{id: m.ID, file: m.File, tr: tr, zones: tr.Blocks(), log: d.log}
		sg.refs.Store(1)
		segs = append(segs, sg)
	}
	return newSegmentSet(man.Generation, segs), nil
}

// Refresh reloads the log's manifest and, if its generation moved, swaps in a
// segment set for the new generation, reporting whether anything changed.
// In-flight queries keep the set they started on; caches are invalidated
// precisely — block entries only for segments that left the live set, the
// per-predicate index cache entirely (its entries summarize data that just
// changed). The watcher goroutine calls this on a timer; callers embedding a
// Dataset can call it directly after writing.
func (d *Dataset) Refresh() (bool, error) {
	if d.log == nil {
		return false, nil
	}
	// One refresh at a time; concurrent queries are unaffected (d.mu is held
	// only for the pointer swap).
	d.refreshMu.Lock()
	defer d.refreshMu.Unlock()

	man, err := d.log.Reload()
	if err != nil {
		return false, err
	}

	d.mu.Lock()
	prev := d.cur
	if prev == nil {
		d.mu.Unlock()
		return false, errClosed
	}
	if man.Generation == prev.gen {
		d.mu.Unlock()
		return false, nil
	}
	prev.retain()
	d.mu.Unlock()

	next, err := d.buildSet(man, prev)
	if err != nil {
		prev.release()
		return false, err
	}

	d.mu.Lock()
	old := d.cur
	if old == nil { // closed while building
		d.mu.Unlock()
		prev.release()
		next.release()
		return false, errClosed
	}
	d.cur = next
	d.man = man
	d.mu.Unlock()

	if d.cache != nil {
		live := make(map[uint64]bool, len(next.segs))
		for _, sg := range next.segs {
			live[sg.id] = true
		}
		var dead []uint64
		for _, sg := range old.segs {
			if !live[sg.id] {
				dead = append(dead, sg.id)
			}
		}
		d.blockInval.Add(d.cache.EvictSegments(dead))
	}
	if d.idx != nil {
		// Index keys are generation-prefixed, so stale entries could never be
		// served — clearing reclaims their memory immediately instead of
		// waiting for LRU pressure to find them.
		d.idxInval.Add(int64(d.idx.clear()))
	}
	old.release()  // the Dataset's ownership of the displaced set
	prev.release() // this refresh's temporary hold
	d.refreshes.Add(1)
	slog.Info("manifest refresh",
		"generation", man.Generation,
		"segments", len(next.segs),
		"compactions", man.Compactions,
		"dir", d.dir)
	return true, nil
}

// watch polls the manifest until Close. Refresh errors are logged at debug
// and otherwise dropped: a torn-state read (a writer mid-commit in another
// process) heals on the next tick, and there is no caller to report to.
func (d *Dataset) watch(every time.Duration) {
	defer d.watchWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-d.stopWatch:
			return
		case <-t.C:
			if _, err := d.Refresh(); err != nil && err != errClosed {
				slog.Debug("manifest watch refresh", "error", err.Error(), "dir", d.dir)
			}
		}
	}
}

// segmentCursor starts a batch scan of pred's matches across every segment in
// the set, merged into global time order. A single segment scans directly —
// no merge overhead on the single-file path.
func segmentCursor(set *segmentSet, pred colstore.Predicate) storage.TrajectoryCursor {
	if len(set.segs) == 1 {
		return set.segs[0].tr.Cursor(pred)
	}
	curs := make([]storage.TrajectoryCursor, len(set.segs))
	for i, sg := range set.segs {
		curs[i] = sg.tr.Cursor(pred)
	}
	return storage.NewTrajectoryMergeCursor(curs)
}

// mergeSampleRuns merges per-segment filtered rows into (T, ObjID, run index)
// order — the order the same rows carry in a single file, since each run is
// already so ordered and runs are contiguous chunks of one original stream.
func mergeSampleRuns(runs [][]trajectory.Sample) []trajectory.Sample {
	n := 0
	for _, r := range runs {
		n += len(r)
	}
	out := make([]trajectory.Sample, 0, n)
	pos := make([]int, len(runs))
	for {
		best := -1
		for i, r := range runs {
			if pos[i] >= len(r) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			a, b := &r[pos[i]], &runs[best][pos[best]]
			// Strict comparisons keep the earliest run on full ties.
			if a.T < b.T || (a.T == b.T && a.ObjID < b.ObjID) {
				best = i
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, runs[best][pos[best]])
		pos[best]++
	}
}
