package serve

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"vita/internal/geom"
	"vita/internal/storage"
)

// TestDatasetMmapParity opens the same VTB dataset mmap-backed and
// pread-backed and requires identical operator answers in both warm-cache
// and streaming (cache-less) configurations.
func TestDatasetMmapParity(t *testing.T) {
	configs := map[string]Config{
		"cached":    {},
		"streaming": {CacheBytes: -1, IndexEntries: -1, Parallelism: 1},
	}
	rangeReq := RangeRequest{Floor: 0, Box: geom.BBox{Min: geom.Pt(2, 2), Max: geom.Pt(18, 12)}, T0: 100, T1: 200}
	knnReq := KNNRequest{Floor: 0, At: geom.Pt(10, 8), T: 150, K: 3}
	trajReq := TrajRequest{Obj: 2, T0: 0, T1: 300}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			mcfg := cfg
			pcfg := cfg
			pcfg.DisableMmap = true
			mm := openTestDataset(t, storage.FormatVTB, mcfg)
			pr := openTestDataset(t, storage.FormatVTB, pcfg)
			if pr.Mmapped() {
				t.Fatal("DisableMmap dataset reports Mmapped")
			}
			mRange, err := mm.Range(rangeReq)
			if err != nil {
				t.Fatal(err)
			}
			pRange, err := pr.Range(rangeReq)
			if err != nil {
				t.Fatal(err)
			}
			if len(mRange.Hits) == 0 {
				t.Fatal("range query matched nothing")
			}
			if !reflect.DeepEqual(mRange.Hits, pRange.Hits) || !reflect.DeepEqual(mRange.Objects, pRange.Objects) {
				t.Error("range answers differ between mmap and pread")
			}
			mKNN, _ := mm.KNN(knnReq)
			pKNN, _ := pr.KNN(knnReq)
			if !reflect.DeepEqual(mKNN.Neighbors, pKNN.Neighbors) {
				t.Error("knn answers differ between mmap and pread")
			}
			mTraj, _ := mm.Traj(trajReq)
			pTraj, _ := pr.Traj(trajReq)
			if !reflect.DeepEqual(mTraj.Samples, pTraj.Samples) {
				t.Error("traj answers differ between mmap and pread")
			}
		})
	}
}

// TestStreamingPeakDecodedBytes checks that the cache-less cursor path
// reports a bounded peak: at most one decoded block's batch, never the whole
// matched result set.
func TestStreamingPeakDecodedBytes(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{CacheBytes: -1, IndexEntries: -1, Parallelism: 1})
	resp, err := ds.Range(RangeRequest{Floor: -1, Box: geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}, T0: 0, T1: 600})
	if err != nil {
		t.Fatal(err)
	}
	st := resp.Stats
	if st.PeakDecodedBytes <= 0 {
		t.Fatalf("streaming load reported no peak decoded bytes: %+v", st)
	}
	if st.Scan.BlocksScanned < 2 {
		t.Fatalf("test dataset too small to observe streaming (%d blocks scanned)", st.Scan.BlocksScanned)
	}
	// The whole-file load decodes BlocksScanned blocks; a streaming peak
	// must be far below the total decoded volume. Rows are uniform here, so
	// total ≈ peak × blocks; require peak < total/2 to prove bounding
	// without depending on exact sizes.
	total := int64(st.Scan.RowsScanned) * 50 // loose lower bound: >50 B/row in column form
	if st.PeakDecodedBytes >= total/2 {
		t.Fatalf("peak %d not clearly below total decoded volume (~%d): streaming not bounded",
			st.PeakDecodedBytes, total)
	}
	// Peak is the pre-filter decode footprint: a highly selective predicate
	// (one object) decodes the same full blocks, so its peak must match the
	// wide query's, not the few rows that survive filtering.
	sresp, err := ds.Traj(TrajRequest{Obj: 1, T0: 0, T1: 600})
	if err != nil {
		t.Fatal(err)
	}
	if sresp.Stats.PeakDecodedBytes < st.PeakDecodedBytes/2 {
		t.Fatalf("selective query peak %d far below wide query peak %d: peak measured post-filter",
			sresp.Stats.PeakDecodedBytes, st.PeakDecodedBytes)
	}

	// The warm-cache path does not stream and must not claim a peak.
	warm := openTestDataset(t, storage.FormatVTB, Config{})
	wresp, err := warm.Range(RangeRequest{Floor: -1, Box: geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}, T0: 0, T1: 600})
	if err != nil {
		t.Fatal(err)
	}
	if wresp.Stats.PeakDecodedBytes != 0 {
		t.Fatalf("cached path reported peak decoded bytes %d", wresp.Stats.PeakDecodedBytes)
	}
}

// TestServerPprof checks that the profiling endpoints are absent by default
// and served after EnablePprof.
func TestServerPprof(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	plain := httptest.NewServer(NewServer(ds).Handler())
	defer plain.Close()
	res, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode == http.StatusOK {
		t.Fatal("pprof served without EnablePprof")
	}

	srv := NewServer(ds)
	srv.EnablePprof()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, res.StatusCode)
		}
	}
	// The operators still work with pprof mounted.
	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d with pprof enabled", res.StatusCode)
	}
}
