package serve

import (
	"os"
	"path/filepath"
	"testing"

	"vita/internal/colstore"
	"vita/internal/seglog"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// appendSegmentedCodec is appendSegmented with an explicit block codec, so a
// test can grow one log across codec eras.
func appendSegmentedCodec(t *testing.T, l *seglog.Log, samples []trajectory.Sample, maxRows int, codec colstore.Codec) {
	t.Helper()
	w, err := seglog.NewTrajectoryWriter(l, seglog.WriterOptions{
		MaxSegmentRows: maxRows,
		Block:          colstore.Options{BlockSize: 512, Codec: codec},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// firstBlockCodec reads the codec byte of the first block frame of a VTB
// file: header (8 bytes) | storedLen (u32) | codec (u8) | ...
func firstBlockCodec(t *testing.T, path string) byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 13 {
		t.Fatalf("%s: too short (%d bytes)", path, len(data))
	}
	return data[12]
}

// TestMixedCodecSegmentsServeParity is the serving gate for codec
// migration: one segment log whose segments were written in different codec
// eras (flate, then raw, then vsnap) must serve byte-identical operator
// output to a flat single-file dataset of the same rows — and compacting
// that mixed log must both preserve the output and rewrite the merged
// segment under the current default codec (vsnap), which is exactly the
// migration path for flate-era archives.
func TestMixedCodecSegmentsServeParity(t *testing.T) {
	samples := testSamples()
	flatDir := t.TempDir()
	writeDataset(t, flatDir, storage.FormatVTB, samples)

	segDir := t.TempDir()
	l, err := seglog.OpenOrCreate(filepath.Join(segDir, "seglog", "trajectory"), colstore.KindTrajectory)
	if err != nil {
		t.Fatal(err)
	}
	third := len(samples) / 3
	eras := []struct {
		rows  []trajectory.Sample
		codec colstore.Codec
	}{
		{samples[:third], colstore.CodecFlate},
		{samples[third : 2*third], colstore.CodecRaw},
		{samples[2*third:], colstore.CodecVSnap},
	}
	for _, era := range eras {
		appendSegmentedCodec(t, l, era.rows, len(era.rows), era.codec)
	}

	flat, err := Open(flatDir, Config{WatchInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := operatorText(t, flat)
	flat.Close()

	check := func(label string, wantSegs int) {
		t.Helper()
		ds, err := Open(segDir, Config{WatchInterval: -1})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		defer ds.Close()
		if got := ds.Segments(); got != wantSegs {
			t.Errorf("%s: segments = %d, want %d", label, got, wantSegs)
		}
		if got := operatorText(t, ds); got != want {
			t.Errorf("%s: operator output differs from single file\n got: %q\nwant: %q",
				label, got[:min(len(got), 400)], want[:min(len(want), 400)])
		}
	}
	check("mixed-codec eras", 3)

	// Compaction with default options: the merged segment must come out
	// under the default codec regardless of what the inputs used.
	meta, err := seglog.NewCompactor(l, seglog.CompactorOptions{MinSegments: 2}).RunOnce()
	if err != nil || meta == nil {
		t.Fatalf("compaction: %+v, %v", meta, err)
	}
	merged := filepath.Join(l.Dir(), meta.File)
	if got := firstBlockCodec(t, merged); got != 2 {
		t.Errorf("merged segment's first block codec = %d, want 2 (vsnap)", got)
	}
	check("post-compaction", 1)
}
