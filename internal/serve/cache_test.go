package serve

import (
	"fmt"
	"testing"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/trajectory"
)

// batchOfSize builds a decoded batch of n rows with empty strings, so its
// Bytes() is exactly n*batchRowBytes.
func batchOfSize(n int) *colstore.TrajectoryBatch {
	b := &colstore.TrajectoryBatch{}
	for i := 0; i < n; i++ {
		b.Append(trajectory.Sample{ObjID: i, T: float64(i),
			Loc: model.Location{Point: geom.Pt(1, 2), HasPoint: true}})
	}
	return b
}

// batchRowBytes is the per-row column footprint batchOfSize produces.
var batchRowBytes = batchOfSize(1).Bytes()

func TestBlockCacheEvictionOrder(t *testing.T) {
	// Budget holds exactly three one-row blocks.
	c := NewBlockCache(3 * batchRowBytes)
	for i := 0; i < 3; i++ {
		c.Put(0, i, batchOfSize(1))
	}
	if got := c.keysMRU(); len(got) != 3 || got[0].block != 2 || got[2].block != 0 {
		t.Fatalf("MRU order after fills: %v", got)
	}
	// Touch block 0: it becomes most recent, so block 1 is now LRU.
	if _, ok := c.Get(0, 0); !ok {
		t.Fatal("block 0 missing")
	}
	c.Put(0, 3, batchOfSize(1))
	if _, ok := c.Get(0, 1); ok {
		t.Error("block 1 survived eviction despite being LRU")
	}
	for _, want := range []int{0, 2, 3} {
		if _, ok := c.Get(0, want); !ok {
			t.Errorf("%v evicted, want resident", want)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Blocks != 3 {
		t.Errorf("blocks = %d, want 3", st.Blocks)
	}
}

func TestBlockCacheByteAccounting(t *testing.T) {
	c := NewBlockCache(1 << 20)
	b := &colstore.TrajectoryBatch{}
	b.Append(trajectory.Sample{ObjID: 1, Loc: model.At("building", 0, "lobby", geom.Pt(1, 2)), T: 3})
	b.Append(trajectory.Sample{ObjID: 2, Loc: model.AtPartition("b", 1, "p")})
	want := 2*batchRowBytes + int64(len("building")+len("lobby")+len("b")+len("p"))
	if got := b.Bytes(); got != want {
		t.Fatalf("batch Bytes = %d, want %d", got, want)
	}
	c.Put(0, 0, b)
	c.Put(0, 1, batchOfSize(4))
	if st := c.Stats(); st.Bytes != want+4*batchRowBytes {
		t.Errorf("cache bytes = %d, want %d", st.Bytes, want+4*batchRowBytes)
	}
	// Replacing a key adjusts the account instead of double counting.
	c.Put(0, 0, batchOfSize(1))
	if st := c.Stats(); st.Bytes != 5*batchRowBytes {
		t.Errorf("cache bytes after replace = %d, want %d", st.Bytes, 5*batchRowBytes)
	}
}

func TestBlockCacheOversizedBlock(t *testing.T) {
	c := NewBlockCache(2 * batchRowBytes)
	c.Put(0, 0, batchOfSize(10)) // larger than the whole budget
	if st := c.Stats(); st.Blocks != 0 || st.Bytes != 0 {
		t.Errorf("oversized block was cached: %+v", st)
	}
	// A fitting block still works afterwards.
	c.Put(0, 1, batchOfSize(1))
	if _, ok := c.Get(0, 1); !ok {
		t.Error("fitting block not cached")
	}
}

func TestBlockCacheHitMissCounters(t *testing.T) {
	c := NewBlockCache(1 << 20)
	if _, ok := c.Get(0, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(0, 0, batchOfSize(1))
	c.Get(0, 0)
	c.Get(0, 0)
	c.Get(0, 9)
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
}

func TestIndexCacheLRU(t *testing.T) {
	c := newIndexCache(2, -1)
	c.put("a", nil, 10)
	c.put("b", nil, 10)
	c.get("a") // refresh: "b" becomes LRU
	c.put("c", nil, 10)
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("new entry missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestIndexCacheByteBound(t *testing.T) {
	// Count bound alone would hold 10 entries; the byte budget holds 3.
	c := newIndexCache(10, 30)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("k%d", i), nil, 10)
	}
	if c.len() != 3 || c.bytes != 30 {
		t.Fatalf("len/bytes = %d/%d, want 3/30", c.len(), c.bytes)
	}
	for _, gone := range []string{"k0", "k1"} {
		if _, ok := c.get(gone); ok {
			t.Errorf("%s survived byte-bound eviction", gone)
		}
	}
	// An index larger than the whole budget is never cached.
	c.put("huge", nil, 100)
	if _, ok := c.get("huge"); ok {
		t.Error("oversized index was cached")
	}
	// Replacing an entry adjusts the byte account instead of double counting.
	c.put("k4", nil, 25)
	if c.bytes > 30 {
		t.Errorf("bytes = %d after replace, want <= 30", c.bytes)
	}
}
