package serve

import (
	"fmt"
	"time"

	"vita/internal/colstore"
	"vita/internal/obs"
	"vita/internal/plan"
	"vita/internal/query"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// The serve operators execute as plans over internal/plan: each endpoint
// builds a logical operator tree, the planner pushes its structured filters
// into the scan's block predicate (which doubles as the index-cache key),
// and planSource routes the scan leaf through whichever load path the
// dataset is configured for — resident CSV rows, streaming CSV, cache-less
// segment cursors, or the decoded-block cache. The load paths, their stats
// accounting, and the answers they produce are byte-identical to the
// pre-algebra hand-coded operators; the algebra is what makes new analytics
// (Dwell) one plan expression instead of a new bespoke pipeline.

// planSource adapts one query's view of the dataset to plan.Source. It is
// single-use: Open is called once by the compiled plan's scan leaf, and
// finalStats reads the load accounting after the plan drains. For VTB
// datasets the caller pins a segment set for the query's duration and the
// source scans exactly that generation.
type planSource struct {
	d   *Dataset
	set *segmentSet // pinned by the caller; nil for CSV datasets

	cur     plan.TrajectoryCursor // the opened leaf cursor
	samples []trajectory.Sample   // materialized matched rows, when the path produces them
	pre     *Stats                // full load stats, when the path computes them up front
}

// Open selects the dataset's load path for pred. The stats semantics of
// each branch replicate the pre-plan implementations exactly.
func (s *planSource) Open(pred colstore.Predicate) (plan.TrajectoryCursor, error) {
	d := s.d
	switch {
	case d.format == storage.FormatCSV && d.resident != nil:
		// Resident CSV: filter the resident rows, counting every row
		// scanned. The matched rows are retained for index-cache byte
		// accounting, as the materializing path always did.
		s.cur = &memCursor{samples: d.resident, pred: pred, filter: true, keep: &s.samples}
	case d.format == storage.FormatCSV:
		// Streaming CSV (no cache budget): parse straight from disk.
		cur, _, err := storage.OpenTrajectoryCursor(d.path, pred)
		if err != nil {
			return nil, err
		}
		s.cur = cur
	case d.cache == nil:
		// Cache-less VTB: stream the pinned segment set's blocks, merged
		// across segments — one decoded batch per segment in flight.
		s.cur = segmentCursor(s.set, pred)
	default:
		// Cached VTB: zone-map prune, pull hot blocks, decode misses
		// block-parallel, merge to global time order — then serve the
		// matched rows as batches with the load's stats attached.
		samples, st, err := d.samplesFromSet(s.set, pred)
		if err != nil {
			return nil, err
		}
		s.samples = samples
		s.pre = &st
		s.cur = &memCursor{samples: samples, stats: st.Scan}
	}
	return s.cur, nil
}

// finalStats assembles the request's Stats after the plan has drained,
// matching each load path's historical accounting.
func (s *planSource) finalStats() Stats {
	if s.pre != nil {
		return *s.pre
	}
	d := s.d
	st := Stats{Format: string(d.format)}
	if s.cur == nil {
		return st
	}
	st.Scan = s.cur.Stats()
	if d.format == storage.FormatVTB {
		// Every scanned block was a decode on the cache-less path; keep the
		// misses-equal-decodes invariant the cached path maintains.
		st.CacheMisses = st.Scan.BlocksScanned
		// Peak comes from the cursor, which measures each batch before
		// predicate filtering — the full decoded block is what was
		// transiently resident, however few rows survived.
		if p, ok := s.cur.(interface{ PeakDecodedBytes() int64 }); ok {
			st.PeakDecodedBytes = p.PeakDecodedBytes()
		}
		if d.log != nil && s.set != nil {
			st.Segments = len(s.set.segs)
		}
	}
	return st
}

// memCursorBatch is how many rows one in-memory batch carries — the same
// granularity as the CSV cursor, so plans see comparable batch sizes on
// every path.
const memCursorBatch = 4096

// memCursor yields an in-memory sample slice as column batches. In filter
// mode it applies pred row by row and counts scan stats (the resident-CSV
// path); otherwise the rows are already filtered and stats are preset to
// whatever the producer measured (the cached-VTB path).
type memCursor struct {
	samples []trajectory.Sample
	pred    colstore.Predicate
	filter  bool
	keep    *[]trajectory.Sample // filter mode: collect matched rows here
	stats   colstore.ScanStats
	pos     int
	batch   colstore.TrajectoryBatch
	closed  bool
}

func (c *memCursor) Next() bool {
	if c.closed {
		return false
	}
	c.batch.Reset()
	for c.pos < len(c.samples) && c.batch.Len() < memCursorBatch {
		s := c.samples[c.pos]
		c.pos++
		if c.filter {
			c.stats.RowsScanned++
			if !c.pred.MatchTrajectory(s) {
				continue
			}
			c.stats.RowsMatched++
			if c.keep != nil {
				*c.keep = append(*c.keep, s)
			}
		}
		c.batch.Append(s)
	}
	return c.batch.Len() > 0
}

func (c *memCursor) Batch() *colstore.TrajectoryBatch { return &c.batch }
func (c *memCursor) Err() error                       { return nil }
func (c *memCursor) Stats() colstore.ScanStats        { return c.stats }
func (c *memCursor) Close() error {
	c.closed = true
	return nil
}

// indexFor compiles a scan-and-filter plan over the dataset and resolves it
// to the spatio-temporal index of the matching samples. The plan's pushed-
// down scan predicate doubles as the index-cache key (generation-prefixed
// on segmented datasets, so an entry can never outlive the data it
// summarizes); on a miss the plan's batches stream into the index builder,
// so the cache-less configuration never materializes the matched rows —
// peak memory beyond the finished index is one decoded batch per segment,
// which is what Stats.PeakDecodedBytes approximates.
// With traced set, the returned span is "IndexCached" on a cache hit or an
// "IndexBuild" wrapping the plan's per-operator trace on a miss; untraced
// calls compile the plain (span-free) plan and return a nil span.
func (d *Dataset) indexFor(traced bool, preds ...plan.Pred) (*query.TrajectoryIndex, Stats, *obs.Span, error) {
	var set *segmentSet
	if d.format != storage.FormatCSV {
		set = d.acquireSet()
		if set == nil {
			return nil, Stats{Format: string(d.format)}, nil, errClosed
		}
		defer set.release()
	}
	src := &planSource{d: d, set: set}
	p := plan.NewScan(src).Filter(preds...)
	var c *plan.Compiled
	var err error
	if traced {
		c, err = p.CompileTraced()
	} else {
		c, err = p.Compile()
	}
	if err != nil {
		return nil, Stats{Format: string(d.format)}, nil, err
	}

	key := predKey(c.ScanPred(), d.qopts)
	if d.log != nil {
		key = fmt.Sprintf("g%d|%s", set.gen, key)
	}
	if d.idx != nil {
		if ix, ok := d.idx.get(key); ok {
			_ = c.Close()
			st := Stats{Format: string(d.format), IndexCached: true}
			if d.log != nil {
				st.Segments = len(set.segs)
			}
			var span *obs.Span
			if traced {
				span = &obs.Span{Op: "IndexCached", Rows: ix.Len()}
			}
			return ix, st, span, nil
		}
	}

	var span *obs.Span
	var start time.Time
	if traced {
		span = &obs.Span{Op: "IndexBuild", Children: []*obs.Span{c.Trace()}}
		start = time.Now()
	}
	b := query.NewIndexBuilder(d.qopts)
	var sampleBytes int64 // approximate bytes of the matched rows
	for c.Next() {
		batch := c.Batch().Traj
		sampleBytes += batch.Bytes()
		b.AddBatch(batch)
	}
	// Stats first so an error still reports the partial scan, like every
	// other load path.
	stats := src.finalStats()
	if err := c.Close(); err != nil {
		return nil, stats, span, err
	}
	ix := b.Build()
	if traced {
		span.AddWall(time.Since(start))
		span.Rows = ix.Len()
	}
	if d.idx != nil {
		if src.samples != nil {
			sampleBytes = samplesBytes(src.samples)
		}
		// The index holds the samples in per-object series plus R-tree
		// nodes and bucket structure over them; 3x the raw sample bytes is
		// a conservative footprint estimate for the byte bound.
		d.idx.put(key, ix, 3*sampleBytes)
	}
	return ix, stats, span, nil
}

// runPlan compiles and drains an arbitrary plan over the dataset's current
// data — the execution path for operators that are pure algebra (Dwell)
// rather than index lookups. build receives the scan source to anchor the
// plan's leaf; the returned rows carry each output row's Val column.
// With traced set, the returned span is the plan's per-operator trace root
// (nil otherwise).
func (d *Dataset) runPlan(traced bool, build func(plan.Source) *plan.Plan) ([]plan.Row, Stats, *obs.Span, error) {
	var set *segmentSet
	if d.format != storage.FormatCSV {
		set = d.acquireSet()
		if set == nil {
			return nil, Stats{Format: string(d.format)}, nil, errClosed
		}
		defer set.release()
	}
	src := &planSource{d: d, set: set}
	p := build(src)
	var c *plan.Compiled
	var err error
	if traced {
		c, err = p.CompileTraced()
	} else {
		c, err = p.Compile()
	}
	if err != nil {
		return nil, Stats{Format: string(d.format)}, nil, err
	}
	rows, err := plan.CollectRows(c)
	stats := src.finalStats()
	if err != nil {
		return nil, stats, c.Trace(), err
	}
	return rows, stats, c.Trace(), nil
}
