package serve

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/query"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// These tests pin the plan-rewrite guarantee: every operator that used to
// hand-build its load predicate and index now executes as a compiled plan,
// and the answers must be byte-identical to the pre-plan pipeline. The
// oracle re-implements that pipeline directly — hand-filter the known
// samples with the operator's predicate, build the spatio-temporal index
// over the survivors, ask it the same question — and the comparison is on
// JSON bytes, the exact encoding both the HTTP API and the CLI formatters
// consume.

// referenceIndex is the pre-plan load path: filter samples row by row with
// the hand-built predicate and index the survivors.
func referenceIndex(samples []trajectory.Sample, pred colstore.Predicate, opts query.Options) *query.TrajectoryIndex {
	var keep []trajectory.Sample
	for _, s := range samples {
		if pred.MatchTrajectory(s) {
			keep = append(keep, s)
		}
	}
	return query.NewTrajectoryIndex(keep, opts)
}

func jsonBytes(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sameJSON(t *testing.T, name string, got, want any) {
	t.Helper()
	g, w := jsonBytes(t, got), jsonBytes(t, want)
	if !bytes.Equal(g, w) {
		t.Errorf("%s differs from reference:\ngot:  %s\nwant: %s", name, g, w)
	}
}

// TestPlanOperatorParity checks, on every storage backend and both cache
// configurations, that the plan-compiled operators return exactly the rows
// the hand-built predicate + index pipeline returns.
func TestPlanOperatorParity(t *testing.T) {
	samples := testSamples()
	opts := query.Options{} // Dataset is opened with zero Query options
	box := geom.BBox{Min: geom.Pt(1.5, 0.25), Max: geom.Pt(17.75, 9.5)}
	maxGap := query.DefaultOptions().MaxGap

	backends := []struct {
		name   string
		format storage.Format
		cfg    Config
	}{
		{"vtb-cached", storage.FormatVTB, Config{}},
		{"vtb-streaming", storage.FormatVTB, Config{CacheBytes: -1, IndexEntries: -1}},
		{"csv-resident", storage.FormatCSV, Config{}},
		{"csv-streaming", storage.FormatCSV, Config{CacheBytes: -1, IndexEntries: -1}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			ds := openTestDataset(t, be.format, be.cfg)

			// Range: time window + box + floor all push into the scan.
			rq := RangeRequest{Floor: 0, Box: box, T0: 33.5, T1: 147.25}
			rresp, err := ds.Range(rq)
			if err != nil {
				t.Fatal(err)
			}
			rix := referenceIndex(samples, colstore.Predicate{
				HasTime: true, T0: rq.T0, T1: rq.T1,
				HasBox: true, Box: rq.Box,
				HasFloor: true, Floor: rq.Floor,
			}, opts)
			if len(rresp.Hits) == 0 {
				t.Fatal("range matched nothing")
			}
			sameJSON(t, "range hits", rresp.Hits, rix.Range(rq.Floor, rq.Box, rq.T0, rq.T1))

			// KNN: window widened by MaxGap, floor left to the operator.
			kq := KNNRequest{Floor: 1, At: geom.Pt(10.125, 7.625), T: 420.5, K: 4}
			kresp, err := ds.KNN(kq)
			if err != nil {
				t.Fatal(err)
			}
			kix := referenceIndex(samples, colstore.Predicate{
				HasTime: true, T0: kq.T - maxGap, T1: kq.T + maxGap,
			}, opts)
			if len(kresp.Neighbors) == 0 {
				t.Fatal("knn matched nothing")
			}
			sameJSON(t, "knn neighbors", kresp.Neighbors, kix.KNN(kq.Floor, kq.At, kq.T, kq.K))

			// Density at an instant.
			dq := DensityRequest{T: 250}
			dresp, err := ds.Density(dq)
			if err != nil {
				t.Fatal(err)
			}
			dix := referenceIndex(samples, colstore.Predicate{
				HasTime: true, T0: dq.T - maxGap, T1: dq.T + maxGap,
			}, opts)
			if len(dresp.Counts) == 0 {
				t.Fatal("density matched nothing")
			}
			sameJSON(t, "density counts", dresp.Counts, dix.Density(dq.T))

			// Trajectory retrieval for one object.
			tq := TrajRequest{Obj: 5, T0: 100, T1: 500}
			tresp, err := ds.Traj(tq)
			if err != nil {
				t.Fatal(err)
			}
			tix := referenceIndex(samples, colstore.Predicate{
				HasObj: true, Obj: tq.Obj,
				HasTime: true, T0: tq.T0, T1: tq.T1,
			}, opts)
			if len(tresp.Samples) == 0 {
				t.Fatal("traj matched nothing")
			}
			sameJSON(t, "traj samples", tresp.Samples, tix.ObjectTrajectory(tq.Obj, tq.T0, tq.T1))

			// Dwell against an independent row-by-row re-computation.
			wq := DwellRequest{Floor: -1, T0: 50, T1: 450}
			wresp, err := ds.Dwell(wq)
			if err != nil {
				t.Fatal(err)
			}
			if len(wresp.Rooms) == 0 {
				t.Fatal("dwell matched nothing")
			}
			sameJSON(t, "dwell rooms", wresp.Rooms, referenceDwell(samples, wq, maxGap))
		})
	}
}

// referenceDwell recomputes dwell-time-per-room without the plan layer:
// filter the window, order by (object, time), attribute inter-sample gaps up
// to maxGap to the partition the object stayed in, and count distinct
// objects per partition.
func referenceDwell(samples []trajectory.Sample, q DwellRequest, maxGap float64) []DwellRoom {
	var rows []trajectory.Sample
	for _, s := range samples {
		if s.T < q.T0 || s.T > q.T1 {
			continue
		}
		if q.Floor >= 0 && s.Loc.Floor != q.Floor {
			continue
		}
		rows = append(rows, s)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].ObjID != rows[j].ObjID {
			return rows[i].ObjID < rows[j].ObjID
		}
		return rows[i].T < rows[j].T
	})
	seconds := make(map[string]float64)
	objects := make(map[string]map[int]bool)
	for i, s := range rows {
		if objects[s.Loc.Partition] == nil {
			objects[s.Loc.Partition] = make(map[int]bool)
		}
		objects[s.Loc.Partition][s.ObjID] = true
		if i == 0 {
			continue
		}
		prev := rows[i-1]
		dt := s.T - prev.T
		if prev.ObjID == s.ObjID && prev.Loc.Partition == s.Loc.Partition && dt > 0 && dt <= maxGap {
			seconds[s.Loc.Partition] += dt
		}
	}
	rooms := make([]DwellRoom, 0, len(objects))
	for part, objs := range objects {
		rooms = append(rooms, DwellRoom{Partition: part, Seconds: seconds[part], Objects: len(objs)})
	}
	sort.SliceStable(rooms, func(i, j int) bool {
		if rooms[i].Seconds != rooms[j].Seconds {
			return rooms[i].Seconds > rooms[j].Seconds
		}
		return rooms[i].Partition < rooms[j].Partition
	})
	return rooms
}

// TestPlanStatsAccounting checks that the plan-backed operators keep each
// load path's historical Stats semantics.
func TestPlanStatsAccounting(t *testing.T) {
	q := RangeRequest{Floor: 0,
		Box: geom.BBox{Min: geom.Pt(1.5, 0.25), Max: geom.Pt(17.75, 9.5)},
		T0:  33.5, T1: 147.25}

	t.Run("vtb-streaming", func(t *testing.T) {
		ds := openTestDataset(t, storage.FormatVTB, Config{CacheBytes: -1, IndexEntries: -1})
		resp, err := ds.Range(q)
		if err != nil {
			t.Fatal(err)
		}
		st := resp.Stats
		if st.Format != "vtb" {
			t.Errorf("format = %q", st.Format)
		}
		if st.Scan.BlocksPruned == 0 || st.Scan.BlocksScanned >= st.Scan.BlocksTotal {
			t.Errorf("pushed-down window pruned nothing: %+v", st.Scan)
		}
		if st.CacheMisses != st.Scan.BlocksScanned {
			t.Errorf("cache-less path: misses %d != blocks scanned %d", st.CacheMisses, st.Scan.BlocksScanned)
		}
		if st.PeakDecodedBytes <= 0 {
			t.Errorf("streaming path lost peak accounting: %+v", st)
		}
		if st.IndexCached {
			t.Error("cache-less dataset claims a cached index")
		}
	})

	t.Run("vtb-cached", func(t *testing.T) {
		ds := openTestDataset(t, storage.FormatVTB, Config{})
		first, err := ds.Range(q)
		if err != nil {
			t.Fatal(err)
		}
		if first.Stats.IndexCached || first.Stats.CacheMisses == 0 {
			t.Errorf("first pass should decode blocks: %+v", first.Stats)
		}
		second, err := ds.Range(q)
		if err != nil {
			t.Fatal(err)
		}
		if !second.Stats.IndexCached {
			t.Errorf("identical plan did not hit the index cache: %+v", second.Stats)
		}
		sameJSON(t, "cached-pass hits", second.Hits, first.Hits)
	})

	t.Run("csv-resident", func(t *testing.T) {
		ds := openTestDataset(t, storage.FormatCSV, Config{})
		resp, err := ds.Range(q)
		if err != nil {
			t.Fatal(err)
		}
		st := resp.Stats
		if st.Format != "csv" {
			t.Errorf("format = %q", st.Format)
		}
		if st.Scan.RowsScanned != len(testSamples()) {
			t.Errorf("resident CSV scanned %d rows, want every row (%d)", st.Scan.RowsScanned, len(testSamples()))
		}
		if st.Scan.RowsMatched == 0 || st.Scan.RowsMatched >= st.Scan.RowsScanned {
			t.Errorf("implausible match count: %+v", st.Scan)
		}
	})
}

// TestDwellFloorFilter pins the floor predicate: a floor-restricted dwell
// must equal the reference computed over that floor only, and partitions
// only visited on the other floor must vanish.
func TestDwellFloorFilter(t *testing.T) {
	samples := testSamples()
	maxGap := query.DefaultOptions().MaxGap
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	q := DwellRequest{Floor: 1, T0: 0, T1: 600}
	resp, err := ds.Dwell(q)
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, "floor-filtered dwell", resp.Rooms, referenceDwell(samples, q, maxGap))
	all, err := ds.Dwell(DwellRequest{Floor: -1, T0: 0, T1: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rooms) == 0 || len(all.Rooms) == 0 {
		t.Fatal("dwell matched nothing")
	}
	var floorTotal, allTotal float64
	for _, r := range resp.Rooms {
		floorTotal += r.Seconds
	}
	for _, r := range all.Rooms {
		allTotal += r.Seconds
	}
	if floorTotal >= allTotal {
		t.Errorf("floor-filtered dwell %.1fs not below all-floors %.1fs", floorTotal, allTotal)
	}
}
