// Package serve is the query-serving layer over generated datasets: it opens
// a dataset directory once, keeps the VTB footer (and hot decoded blocks)
// resident, and answers the vitaquery operators — range, knn, density, traj —
// repeatedly without paying cold-start per query. Server exposes the
// operators over HTTP with JSON responses; Client is the matching remote
// stub; vitaquery uses Dataset directly for local one-shot queries, so both
// paths share one execution and formatting pipeline.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"vita/internal/colstore"
	"vita/internal/query"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// Config tunes an opened dataset. The zero value selects the defaults.
type Config struct {
	// Query is the spatio-temporal index layout (bucket width, max
	// interpolation gap). Zero fields take query.DefaultOptions values.
	Query query.Options
	// Parallelism is the block-decode worker count (0 = GOMAXPROCS, 1 =
	// sequential).
	Parallelism int
	// CacheBytes bounds the decoded-block LRU cache (default 64 MiB;
	// negative disables caching).
	CacheBytes int64
	// IndexEntries bounds the per-predicate index cache by entry count
	// (default 16; negative disables it).
	IndexEntries int
	// IndexBytes bounds the per-predicate index cache by approximate
	// resident bytes, since a single wide-predicate index can hold a copy
	// of the whole dataset (default 256 MiB; negative caches indexes
	// regardless of size, bounded only by IndexEntries).
	IndexBytes int64
	// DisableMmap forces the pread path for VTB files instead of the
	// default memory-mapped reader — the -mmap=false escape hatch.
	DisableMmap bool
}

func (c Config) withDefaults() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.IndexEntries == 0 {
		c.IndexEntries = 16
	}
	if c.IndexBytes == 0 {
		c.IndexBytes = 256 << 20
	}
	return c
}

// Dataset is an opened trajectory dataset ready to answer queries. For VTB
// files the footer (zone maps) stays resident and decoded blocks are cached;
// for CSV files the rows themselves stay resident (the format has no block
// structure to cache). Safe for concurrent use.
type Dataset struct {
	dir    string
	path   string
	format storage.Format

	tr       *colstore.TrajectoryReader // VTB only
	zones    []colstore.ZoneMap         // VTB only
	resident []trajectory.Sample        // CSV only

	cache *BlockCache
	idx   *indexCache
	par   int
	qopts query.Options
}

// Open opens the trajectory data in dir — trajectory.vtb (preferred) or
// trajectory.csv, detected by magic bytes — and prepares it for serving.
func Open(dir string, cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	var path string
	for _, name := range []string{"trajectory.vtb", "trajectory.csv"} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			path = p
			break
		}
	}
	if path == "" {
		return nil, fmt.Errorf("serve: no trajectory.vtb or trajectory.csv in %s", dir)
	}
	format, err := storage.DetectFormat(path)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		dir:    dir,
		path:   path,
		format: format,
		par:    cfg.Parallelism,
		qopts:  cfg.Query,
	}
	if cfg.CacheBytes > 0 {
		d.cache = NewBlockCache(cfg.CacheBytes)
	}
	if cfg.IndexEntries > 0 {
		d.idx = newIndexCache(cfg.IndexEntries, cfg.IndexBytes)
	}
	if format == storage.FormatVTB {
		tr, err := colstore.OpenTrajectoryOptions(path, colstore.OpenOptions{DisableMmap: cfg.DisableMmap})
		if err != nil {
			return nil, err
		}
		d.tr = tr
		d.zones = tr.Blocks()
	} else if d.cache != nil {
		// CSV has no block structure to cache, so "warm" means the rows
		// themselves stay resident. Without a cache budget (one-shot CLI
		// use) every load streams from disk instead — see Samples.
		samples, _, err := storage.ReadTrajectoryFile(path)
		if err != nil {
			return nil, err
		}
		d.resident = samples
	}
	return d, nil
}

// Close releases the underlying file.
func (d *Dataset) Close() error {
	if d.tr != nil {
		return d.tr.Close()
	}
	return nil
}

// Dir returns the dataset directory.
func (d *Dataset) Dir() string { return d.dir }

// Path returns the trajectory file the dataset serves.
func (d *Dataset) Path() string { return d.path }

// Format returns the detected storage format.
func (d *Dataset) Format() storage.Format { return d.format }

// Blocks returns the number of blocks in a VTB dataset (0 for CSV).
func (d *Dataset) Blocks() int { return len(d.zones) }

// Mmapped reports whether a VTB dataset decodes blocks from a memory-mapped
// region (always false for CSV datasets and on the pread fallback).
func (d *Dataset) Mmapped() bool { return d.tr != nil && d.tr.Mmapped() }

// Len returns the total number of samples without decoding anything (VTB:
// from the footer). A CSV dataset opened without a cache budget streams from
// disk and has no resident count; Len then returns 0.
func (d *Dataset) Len() int {
	if d.tr != nil {
		return d.tr.Len()
	}
	return len(d.resident)
}

// CacheStats returns the block-cache counters (zero value when caching is
// disabled or the dataset is CSV).
func (d *Dataset) CacheStats() CacheStats {
	if d.cache == nil {
		return CacheStats{}
	}
	return d.cache.Stats()
}

// Samples returns the samples matching pred in file order, along with what
// the load cost. VTB datasets prune via zone maps, serve hot blocks from the
// cache, and decode misses block-parallel; CSV datasets filter the resident
// rows. With caching disabled both formats stream instead — one block (or
// CSV row) in flight, nothing unfiltered retained — so one-shot callers like
// vitaquery keep the memory profile of a plain scan.
func (d *Dataset) Samples(pred colstore.Predicate) ([]trajectory.Sample, Stats, error) {
	stats := Stats{Format: string(d.format)}
	if d.tr == nil {
		var out []trajectory.Sample
		if d.resident == nil {
			scan, _, err := storage.ScanTrajectoryFile(d.path, pred, func(s trajectory.Sample) {
				out = append(out, s)
			})
			stats.Scan = scan
			return out, stats, err
		}
		for _, s := range d.resident {
			stats.Scan.RowsScanned++
			if pred.MatchTrajectory(s) {
				stats.Scan.RowsMatched++
				out = append(out, s)
			}
		}
		return out, stats, nil
	}

	if d.cache == nil {
		var out []trajectory.Sample
		scan, err := d.tr.ScanParallel(pred, d.par, func(s trajectory.Sample) {
			out = append(out, s)
		})
		stats.Scan = scan
		// Every scanned block was a decode; keep the misses-equal-decodes
		// invariant the cached path maintains.
		stats.CacheMisses = scan.BlocksScanned
		return out, stats, err
	}

	stats.Scan.BlocksTotal = len(d.zones)
	surviving := make([]int, 0, len(d.zones))
	for i, zm := range d.zones {
		if pred.SkipBlock(zm) {
			stats.Scan.BlocksPruned++
		} else {
			surviving = append(surviving, i)
		}
	}

	// First pass: pull what the cache already holds, and collect misses.
	batches := make([]*colstore.TrajectoryBatch, len(surviving))
	var misses []int // indexes into surviving
	for j, i := range surviving {
		if cached, ok := d.cache.Get(i); ok {
			batches[j] = cached
			stats.CacheHits++
			continue
		}
		misses = append(misses, j)
	}
	stats.CacheMisses = len(misses)

	// Second pass: decode the misses block-parallel (straight out of the
	// mmap region on the default open path) and cache the decoded batches.
	if err := d.decodeMisses(surviving, misses, batches); err != nil {
		return nil, stats, err
	}

	// Merge in file order, filtering rows with the exact Scan semantics.
	var out []trajectory.Sample
	for j := range surviving {
		b := batches[j]
		stats.Scan.BlocksScanned++
		stats.Scan.RowsScanned += b.Len()
		for i := 0; i < b.Len(); i++ {
			if s := b.Row(i); pred.MatchTrajectory(s) {
				stats.Scan.RowsMatched++
				out = append(out, s)
			}
		}
	}
	return out, stats, nil
}

// decodeMisses decodes the missing blocks (surviving[j] for j in misses)
// into batches[j] using up to d.par workers, inserting each into the cache.
func (d *Dataset) decodeMisses(surviving, misses []int, batches []*colstore.TrajectoryBatch) error {
	workers := d.par
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers <= 1 {
		for _, j := range misses {
			if err := d.decodeOne(surviving[j], j, batches); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < len(misses); k += workers {
				j := misses[k]
				if err := d.decodeOne(surviving[j], j, batches); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *Dataset) decodeOne(block, j int, batches []*colstore.TrajectoryBatch) error {
	decoded, err := d.tr.DecodeBlockBatch(block)
	if err != nil {
		return err
	}
	batches[j] = decoded
	d.cache.Put(block, decoded)
	return nil
}

// indexFor returns the spatio-temporal index over the samples matching pred,
// from the index cache when the same predicate (and index options) was
// served before.
//
// On a VTB dataset without a block cache (the one-shot vitaquery
// configuration) the index is built straight from the batch cursor: blocks
// decode out of the mmap region one at a time into the index builder, so
// peak memory beyond the finished index is a single decoded batch — which is
// what Stats.PeakDecodedBytes reports.
func (d *Dataset) indexFor(pred colstore.Predicate) (*query.TrajectoryIndex, Stats, error) {
	key := predKey(pred, d.qopts)
	if d.idx != nil {
		if ix, ok := d.idx.get(key); ok {
			return ix, Stats{Format: string(d.format), IndexCached: true}, nil
		}
	}
	var ix *query.TrajectoryIndex
	var stats Stats
	var sampleBytes int64 // approximate bytes of the matched rows
	if d.tr != nil && d.cache == nil {
		stats = Stats{Format: string(d.format)}
		b := query.NewIndexBuilder(d.qopts)
		cur := d.tr.Cursor(pred)
		for cur.Next() {
			sampleBytes += cur.Batch().Bytes()
			b.AddBatch(cur.Batch())
		}
		// Stats first so an error still reports the partial scan, like
		// every other load path.
		stats.Scan = cur.Stats()
		// Peak comes from the cursor, which measures each batch before
		// predicate filtering — the full decoded block is what was
		// transiently resident, however few rows survived.
		stats.PeakDecodedBytes = cur.PeakDecodedBytes()
		// Every scanned block was a decode; keep the misses-equal-decodes
		// invariant the cached path maintains.
		stats.CacheMisses = stats.Scan.BlocksScanned
		if err := cur.Close(); err != nil {
			return nil, stats, err
		}
		ix = b.Build()
	} else {
		samples, st, err := d.Samples(pred)
		if err != nil {
			return nil, st, err
		}
		stats = st
		sampleBytes = samplesBytes(samples)
		ix = query.NewTrajectoryIndex(samples, d.qopts)
	}
	if d.idx != nil {
		// The index holds the samples in per-object series plus R-tree
		// nodes and bucket structure over them; 3x the raw sample bytes is
		// a conservative footprint estimate for the byte bound.
		d.idx.put(key, ix, 3*sampleBytes)
	}
	return ix, stats, nil
}

// predKey canonicalizes a predicate + index options into a cache key.
// Identical keys imply identical matched samples and hence identical
// indexes, so index-cache hits cannot change any answer.
func predKey(p colstore.Predicate, o query.Options) string {
	return fmt.Sprintf("t:%v,%g,%g|f:%v,%d|b:%v,%g,%g,%g,%g|o:%v,%d|q:%g,%g",
		p.HasTime, p.T0, p.T1, p.HasFloor, p.Floor,
		p.HasBox, p.Box.Min.X, p.Box.Min.Y, p.Box.Max.X, p.Box.Max.Y,
		p.HasObj, p.Obj, o.BucketWidth, o.MaxGap)
}

// Range answers a range query: the samples inside the box/floor/window and
// the distinct objects among them.
func (d *Dataset) Range(q RangeRequest) (*RangeResponse, error) {
	pred := colstore.Predicate{HasTime: true, T0: q.T0, T1: q.T1, HasBox: true, Box: q.Box}
	if q.Floor >= 0 {
		pred.HasFloor, pred.Floor = true, q.Floor
	}
	ix, stats, err := d.indexFor(pred)
	if err != nil {
		return nil, err
	}
	hits := ix.Range(q.Floor, q.Box, q.T0, q.T1)
	seen := make(map[int]bool)
	for _, s := range hits {
		seen[s.ObjID] = true
	}
	objs := make([]int, 0, len(seen))
	for id := range seen {
		objs = append(objs, id)
	}
	sort.Ints(objs)
	return &RangeResponse{Query: q, Hits: hits, Objects: objs, Stats: stats}, nil
}

// KNN answers a k-nearest-neighbors query at an instant. Like the CLI, it
// loads only the samples within MaxGap of T so interpolation still sees its
// bracketing samples, and leaves floor filtering to the operator.
func (d *Dataset) KNN(q KNNRequest) (*KNNResponse, error) {
	opts := d.queryOptions()
	ix, stats, err := d.indexFor(colstore.TimeWindow(q.T-opts.MaxGap, q.T+opts.MaxGap))
	if err != nil {
		return nil, err
	}
	return &KNNResponse{Query: q, Neighbors: ix.KNN(q.Floor, q.At, q.T, q.K), Stats: stats}, nil
}

// Density answers a per-partition snapshot density query at an instant.
func (d *Dataset) Density(q DensityRequest) (*DensityResponse, error) {
	opts := d.queryOptions()
	ix, stats, err := d.indexFor(colstore.TimeWindow(q.T-opts.MaxGap, q.T+opts.MaxGap))
	if err != nil {
		return nil, err
	}
	return &DensityResponse{Query: q, Counts: ix.Density(q.T), Stats: stats}, nil
}

// Traj answers a trajectory-retrieval query for one object.
func (d *Dataset) Traj(q TrajRequest) (*TrajResponse, error) {
	ix, stats, err := d.indexFor(colstore.Predicate{
		HasObj: true, Obj: q.Obj,
		HasTime: true, T0: q.T0, T1: q.T1,
	})
	if err != nil {
		return nil, err
	}
	return &TrajResponse{Query: q, Samples: ix.ObjectTrajectory(q.Obj, q.T0, q.T1), Stats: stats}, nil
}

// Info summarizes the dataset.
func (d *Dataset) Info() (*InfoResponse, error) {
	ix, stats, err := d.indexFor(colstore.Predicate{})
	if err != nil {
		return nil, err
	}
	t0, t1, ok := ix.TimeSpan()
	resp := &InfoResponse{
		Samples: ix.Len(),
		Objects: len(ix.Objects()),
		Floors:  ix.Floors(),
		T0:      t0,
		T1:      t1,
		Empty:   !ok,
		Stats:   stats,
	}
	return resp, nil
}

// queryOptions returns the effective index options with defaults applied,
// so MaxGap-derived predicates match what the index itself will use.
func (d *Dataset) queryOptions() query.Options {
	o := d.qopts
	if o.BucketWidth <= 0 {
		o.BucketWidth = query.DefaultOptions().BucketWidth
	}
	if o.MaxGap <= 0 {
		o.MaxGap = query.DefaultOptions().MaxGap
	}
	return o
}

// indexCache is a small LRU of built spatio-temporal indexes keyed by
// canonical predicate, bounded both by entry count and by approximate
// resident bytes — a wide predicate (empty, or a full-window range) builds
// an index over a copy of the whole dataset, so a count bound alone would
// leave daemon memory unbounded. One warm entry turns a repeated query into
// pure index lookup — no block reads at all.
type indexCache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64 // <= 0: no byte bound
	bytes    int64
	order    []string // front = most recently used
	entries  map[string]indexEntry
}

type indexEntry struct {
	ix    *query.TrajectoryIndex
	bytes int64
}

func newIndexCache(max int, maxBytes int64) *indexCache {
	return &indexCache{max: max, maxBytes: maxBytes, entries: make(map[string]indexEntry)}
}

func (c *indexCache) get(key string) (*query.TrajectoryIndex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.touch(key)
	}
	return e.ix, ok
}

// put inserts an index whose resident footprint is approximately bytes,
// evicting LRU entries until both bounds hold. An index larger than the
// whole byte budget is not cached at all.
func (c *indexCache) put(key string, ix *query.TrajectoryIndex, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && bytes > c.maxBytes {
		return
	}
	if old, ok := c.entries[key]; ok {
		c.bytes -= old.bytes
		c.touch(key)
	} else {
		c.order = append([]string{key}, c.order...)
	}
	c.entries[key] = indexEntry{ix: ix, bytes: bytes}
	c.bytes += bytes
	for len(c.order) > c.max || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		last := c.order[len(c.order)-1]
		c.order = c.order[:len(c.order)-1]
		c.bytes -= c.entries[last].bytes
		delete(c.entries, last)
	}
}

// touch moves key to the front of the recency order. Callers hold mu.
func (c *indexCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[1:i+1], c.order[:i])
			c.order[0] = key
			return
		}
	}
}

func (c *indexCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
