// Package serve is the query-serving layer over generated datasets: it opens
// a dataset directory once, keeps the VTB footer (and hot decoded blocks)
// resident, and answers the vitaquery operators — range, knn, density, traj —
// repeatedly without paying cold-start per query. Server exposes the
// operators over HTTP with JSON responses; Client is the matching remote
// stub; vitaquery uses Dataset directly for local one-shot queries, so both
// paths share one execution and formatting pipeline.
package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vita/internal/colstore"
	"vita/internal/obs"
	"vita/internal/plan"
	"vita/internal/query"
	"vita/internal/seglog"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// errClosed is returned by queries racing Close.
var errClosed = errors.New("serve: dataset closed")

// Config tunes an opened dataset. The zero value selects the defaults.
type Config struct {
	// Query is the spatio-temporal index layout (bucket width, max
	// interpolation gap). Zero fields take query.DefaultOptions values.
	Query query.Options
	// Parallelism is the block-decode worker count (0 = GOMAXPROCS, 1 =
	// sequential).
	Parallelism int
	// CacheBytes bounds the decoded-block LRU cache (default 64 MiB;
	// negative disables caching).
	CacheBytes int64
	// IndexEntries bounds the per-predicate index cache by entry count
	// (default 16; negative disables it).
	IndexEntries int
	// IndexBytes bounds the per-predicate index cache by approximate
	// resident bytes, since a single wide-predicate index can hold a copy
	// of the whole dataset (default 256 MiB; negative caches indexes
	// regardless of size, bounded only by IndexEntries).
	IndexBytes int64
	// DisableMmap forces the pread path for VTB files instead of the
	// default memory-mapped reader — the -mmap=false escape hatch.
	DisableMmap bool
	// WatchInterval is how often a segmented dataset polls its manifest for
	// new generations (default 1s; negative disables the watcher, leaving
	// refreshes to explicit Refresh calls). Ignored for single-file and CSV
	// datasets, which never change underneath the server.
	WatchInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.IndexEntries == 0 {
		c.IndexEntries = 16
	}
	if c.IndexBytes == 0 {
		c.IndexBytes = 256 << 20
	}
	if c.WatchInterval == 0 {
		c.WatchInterval = time.Second
	}
	return c
}

// Dataset is an opened trajectory dataset ready to answer queries. VTB data
// is served through a segment set (see segments.go): a single trajectory.vtb
// is one static segment, a seglog directory is however many segments its
// manifest currently lists, with a watcher folding in new generations as a
// writer appends or a compactor merges. Zone maps stay resident per segment
// and decoded blocks are cached across refreshes; CSV files keep the rows
// themselves resident (the format has no block structure to cache). Safe for
// concurrent use.
type Dataset struct {
	dir         string
	path        string
	format      storage.Format
	disableMmap bool

	log *seglog.Log // segmented VTB only

	mu  sync.Mutex      // guards cur and man
	cur *segmentSet     // VTB only; nil after Close
	man seglog.Manifest // last adopted manifest (segmented only)

	resident []trajectory.Sample // CSV only

	cache *BlockCache
	idx   *indexCache
	par   int
	qopts query.Options

	refreshMu  sync.Mutex // serializes Refresh
	refreshes  atomic.Int64
	blockInval atomic.Int64
	idxInval   atomic.Int64

	stopWatch chan struct{}
	watchWG   sync.WaitGroup
}

// Open opens the trajectory data in dir and prepares it for serving. A
// segment log — dir itself, or the pipeline's seglog/trajectory subdirectory
// — takes priority, since a log next to a flat file means the dataset is
// live; otherwise trajectory.vtb (preferred) or trajectory.csv, detected by
// magic bytes.
func Open(dir string, cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	d := &Dataset{
		dir:         dir,
		par:         cfg.Parallelism,
		qopts:       cfg.Query,
		disableMmap: cfg.DisableMmap,
	}
	if cfg.CacheBytes > 0 {
		d.cache = NewBlockCache(cfg.CacheBytes)
	}
	if cfg.IndexEntries > 0 {
		d.idx = newIndexCache(cfg.IndexEntries, cfg.IndexBytes)
	}

	logDir := ""
	if seglog.IsLog(dir) {
		logDir = dir
	} else if p := filepath.Join(dir, "seglog", "trajectory"); seglog.IsLog(p) {
		logDir = p
	}
	if logDir != "" {
		return openSegmented(d, logDir, cfg)
	}

	var path string
	for _, name := range []string{"trajectory.vtb", "trajectory.csv"} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			path = p
			break
		}
	}
	if path == "" {
		return nil, fmt.Errorf("serve: no segment log, trajectory.vtb, or trajectory.csv in %s", dir)
	}
	format, err := storage.DetectFormat(path)
	if err != nil {
		return nil, err
	}
	d.path = path
	d.format = format
	if format == storage.FormatVTB {
		tr, err := colstore.OpenTrajectoryOptions(path, colstore.OpenOptions{DisableMmap: cfg.DisableMmap})
		if err != nil {
			return nil, err
		}
		sg := &segReader{id: 0, tr: tr, zones: tr.Blocks()}
		sg.refs.Store(1)
		d.cur = newSegmentSet(0, []*segReader{sg})
	} else if d.cache != nil {
		// CSV has no block structure to cache, so "warm" means the rows
		// themselves stay resident. Without a cache budget (one-shot CLI
		// use) every load streams from disk instead — see Samples.
		samples, _, err := storage.ReadTrajectoryFile(path)
		if err != nil {
			return nil, err
		}
		d.resident = samples
	}
	return d, nil
}

// openSegmented finishes Open for a segment-log dataset: open the current
// generation's readers and start the manifest watcher.
func openSegmented(d *Dataset, logDir string, cfg Config) (*Dataset, error) {
	l, err := seglog.Open(logDir)
	if err != nil {
		return nil, err
	}
	if l.Kind() != colstore.KindTrajectory {
		return nil, fmt.Errorf("serve: %s is a %s log, want trajectory", logDir, l.Kind())
	}
	d.log = l
	d.path = filepath.Join(logDir, seglog.ManifestName)
	d.format = storage.FormatVTB
	man := l.Snapshot()
	set, err := d.buildSet(man, nil)
	if err != nil {
		return nil, err
	}
	d.cur = set
	d.man = man
	if cfg.WatchInterval > 0 {
		d.stopWatch = make(chan struct{})
		d.watchWG.Add(1)
		go d.watch(cfg.WatchInterval)
	}
	return d, nil
}

// Close stops the manifest watcher and releases the dataset's hold on its
// segment readers; readers of in-flight queries close as those queries drain.
func (d *Dataset) Close() error {
	if d.stopWatch != nil {
		close(d.stopWatch)
		d.watchWG.Wait()
		d.stopWatch = nil
	}
	d.mu.Lock()
	set := d.cur
	d.cur = nil
	d.mu.Unlock()
	if set != nil {
		set.release()
	}
	return nil
}

// Dir returns the dataset directory.
func (d *Dataset) Dir() string { return d.dir }

// Path returns the trajectory file the dataset serves.
func (d *Dataset) Path() string { return d.path }

// Format returns the detected storage format.
func (d *Dataset) Format() storage.Format { return d.format }

// Blocks returns the number of blocks across a VTB dataset's live segments
// (0 for CSV).
func (d *Dataset) Blocks() int {
	set := d.acquireSet()
	if set == nil {
		return 0
	}
	defer set.release()
	n := 0
	for _, sg := range set.segs {
		n += len(sg.zones)
	}
	return n
}

// Mmapped reports whether a VTB dataset decodes blocks from memory-mapped
// regions — true when every live segment mapped (always false for CSV
// datasets and on the pread fallback).
func (d *Dataset) Mmapped() bool {
	set := d.acquireSet()
	if set == nil {
		return false
	}
	defer set.release()
	if len(set.segs) == 0 {
		return false
	}
	for _, sg := range set.segs {
		if !sg.tr.Mmapped() {
			return false
		}
	}
	return true
}

// Len returns the total number of samples without decoding anything (VTB:
// from the footers). A CSV dataset opened without a cache budget streams from
// disk and has no resident count; Len then returns 0.
func (d *Dataset) Len() int {
	if d.format == storage.FormatCSV {
		return len(d.resident)
	}
	set := d.acquireSet()
	if set == nil {
		return 0
	}
	defer set.release()
	n := 0
	for _, sg := range set.segs {
		n += sg.tr.Len()
	}
	return n
}

// Segments returns how many live segments the dataset currently serves (0
// for single-file and CSV datasets, which are not segmented).
func (d *Dataset) Segments() int {
	if d.log == nil {
		return 0
	}
	set := d.acquireSet()
	if set == nil {
		return 0
	}
	defer set.release()
	return len(set.segs)
}

// Generation returns the manifest generation being served (0 when not
// segmented).
func (d *Dataset) Generation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil || d.cur == nil {
		return 0
	}
	return d.cur.gen
}

// Compactions returns how many compactions the served manifest records.
func (d *Dataset) Compactions() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.man.Compactions
}

// Refreshes returns how many manifest generations the dataset has folded in.
func (d *Dataset) Refreshes() int64 { return d.refreshes.Load() }

// BlockInvalidations returns how many cached blocks refreshes have dropped
// because their segment left the live set.
func (d *Dataset) BlockInvalidations() int64 { return d.blockInval.Load() }

// IndexInvalidations returns how many cached indexes refreshes have dropped.
func (d *Dataset) IndexInvalidations() int64 { return d.idxInval.Load() }

// SegLog returns the underlying segment log, or nil when the dataset is a
// single file. vitaserve uses it to run an in-process compactor under the
// single-mutator rule.
func (d *Dataset) SegLog() *seglog.Log { return d.log }

// CacheStats returns the block-cache counters (zero value when caching is
// disabled or the dataset is CSV).
func (d *Dataset) CacheStats() CacheStats {
	if d.cache == nil {
		return CacheStats{}
	}
	return d.cache.Stats()
}

// Samples returns the samples matching pred in global time order (the order
// a single file holding the same rows carries), along with what the load
// cost. VTB datasets prune via zone maps per segment, serve hot blocks from
// the cache, decode misses block-parallel, and merge multi-segment results;
// CSV datasets filter the resident rows. With caching disabled both formats
// stream instead — one block (or CSV row) in flight per segment, nothing
// unfiltered retained — so one-shot callers like vitaquery keep the memory
// profile of a plain scan.
func (d *Dataset) Samples(pred colstore.Predicate) ([]trajectory.Sample, Stats, error) {
	if d.format == storage.FormatCSV {
		stats := Stats{Format: string(d.format)}
		var out []trajectory.Sample
		if d.resident == nil {
			scan, _, err := storage.ScanTrajectoryFile(d.path, pred, func(s trajectory.Sample) {
				out = append(out, s)
			})
			stats.Scan = scan
			return out, stats, err
		}
		for _, s := range d.resident {
			stats.Scan.RowsScanned++
			if pred.MatchTrajectory(s) {
				stats.Scan.RowsMatched++
				out = append(out, s)
			}
		}
		return out, stats, nil
	}
	set := d.acquireSet()
	if set == nil {
		return nil, Stats{Format: string(d.format)}, errClosed
	}
	defer set.release()
	return d.samplesFromSet(set, pred)
}

// samplesFromSet is the VTB load path over one pinned segment set, so a
// caller building an index sees exactly the generation its cache key names.
func (d *Dataset) samplesFromSet(set *segmentSet, pred colstore.Predicate) ([]trajectory.Sample, Stats, error) {
	stats := Stats{Format: string(d.format)}
	if d.log != nil {
		stats.Segments = len(set.segs)
	}

	if d.cache == nil {
		var out []trajectory.Sample
		if len(set.segs) == 1 {
			scan, err := set.segs[0].tr.ScanParallel(pred, d.par, func(s trajectory.Sample) {
				out = append(out, s)
			})
			stats.Scan = scan
			// Every scanned block was a decode; keep the misses-equal-decodes
			// invariant the cached path maintains.
			stats.CacheMisses = scan.BlocksScanned
			return out, stats, err
		}
		cur := segmentCursor(set, pred)
		for cur.Next() {
			b := cur.Batch()
			for i := 0; i < b.Len(); i++ {
				out = append(out, b.Row(i))
			}
		}
		stats.Scan = cur.Stats()
		stats.CacheMisses = stats.Scan.BlocksScanned
		return out, stats, cur.Close()
	}

	// First pass, per segment: prune via zone maps, pull what the cache
	// already holds, and collect misses.
	surviving := make([][]int, len(set.segs))
	batches := make([][]*colstore.TrajectoryBatch, len(set.segs))
	var misses []blockRef
	for si, sg := range set.segs {
		stats.Scan.BlocksTotal += len(sg.zones)
		for i, zm := range sg.zones {
			if pred.SkipBlock(zm) {
				stats.Scan.BlocksPruned++
			} else {
				surviving[si] = append(surviving[si], i)
			}
		}
		batches[si] = make([]*colstore.TrajectoryBatch, len(surviving[si]))
		for j, i := range surviving[si] {
			if cached, ok := d.cache.Get(sg.id, i); ok {
				batches[si][j] = cached
				stats.CacheHits++
				continue
			}
			misses = append(misses, blockRef{sg: sg, block: i, si: si, j: j})
		}
	}
	stats.CacheMisses = len(misses)

	// Second pass: decode the misses block-parallel (straight out of the
	// mmap region on the default open path) and cache the decoded batches.
	if err := d.decodeMisses(misses, batches); err != nil {
		return nil, stats, err
	}

	// Filter each segment's blocks in file order with the exact Scan
	// semantics, then merge the per-segment runs into global time order.
	runs := make([][]trajectory.Sample, len(set.segs))
	for si := range set.segs {
		for _, b := range batches[si] {
			stats.Scan.BlocksScanned++
			stats.Scan.RowsScanned += b.Len()
			for i := 0; i < b.Len(); i++ {
				if s := b.Row(i); pred.MatchTrajectory(s) {
					stats.Scan.RowsMatched++
					runs[si] = append(runs[si], s)
				}
			}
		}
	}
	if len(runs) == 1 {
		return runs[0], stats, nil
	}
	return mergeSampleRuns(runs), stats, nil
}

// blockRef names one block to decode: which segment, which block, and where
// the decoded batch lands.
type blockRef struct {
	sg    *segReader
	block int
	si, j int // destination: batches[si][j]
}

// decodeMisses decodes the missing blocks into their batch slots using up to
// d.par workers, inserting each into the cache under its segment's ID.
func (d *Dataset) decodeMisses(misses []blockRef, batches [][]*colstore.TrajectoryBatch) error {
	decode := func(ref blockRef) error {
		decoded, err := ref.sg.tr.DecodeBlockBatch(ref.block)
		if err != nil {
			return err
		}
		batches[ref.si][ref.j] = decoded
		d.cache.Put(ref.sg.id, ref.block, decoded)
		return nil
	}
	workers := d.par
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers <= 1 {
		for _, ref := range misses {
			if err := decode(ref); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < len(misses); k += workers {
				if err := decode(misses[k]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// predKey canonicalizes a predicate + index options into a cache key.
// Identical keys imply identical matched samples and hence identical
// indexes, so index-cache hits cannot change any answer.
func predKey(p colstore.Predicate, o query.Options) string {
	return fmt.Sprintf("t:%v,%g,%g|f:%v,%d|b:%v,%g,%g,%g,%g|o:%v,%d|q:%g,%g",
		p.HasTime, p.T0, p.T1, p.HasFloor, p.Floor,
		p.HasBox, p.Box.Min.X, p.Box.Min.Y, p.Box.Max.X, p.Box.Max.Y,
		p.HasObj, p.Obj, o.BucketWidth, o.MaxGap)
}

// opTrace assembles an operator's root span: total wall time, the
// index-build (or plan) subtree, and the index-probe phase. When off, every
// method is a no-op and finish returns nil, so untraced requests carry no
// trace machinery at all.
type opTrace struct {
	on         bool
	op         string
	start      time.Time
	probeStart time.Time
}

func newOpTrace(on bool, op string) opTrace {
	t := opTrace{on: on, op: op}
	if on {
		t.start = time.Now()
	}
	return t
}

// startProbe marks the beginning of the index-probe phase (after the index
// is built or fetched).
func (t *opTrace) startProbe() {
	if t.on {
		t.probeStart = time.Now()
	}
}

// finish builds the root span over the child subtree (index build or plan
// trace); rows is the operator's result cardinality.
func (t *opTrace) finish(child *obs.Span, rows int) *obs.Span {
	if !t.on {
		return nil
	}
	root := &obs.Span{Op: t.op, Rows: rows}
	if child != nil {
		root.Children = append(root.Children, child)
	}
	if !t.probeStart.IsZero() {
		probe := &obs.Span{Op: "IndexProbe", Rows: rows}
		probe.AddWall(time.Since(t.probeStart))
		root.Children = append(root.Children, probe)
	}
	root.AddWall(time.Since(t.start))
	return root
}

// Range answers a range query: the samples inside the box/floor/window and
// the distinct objects among them. The plan's time/box/floor filters all
// push down into the scan predicate, so the pre-index load prunes blocks
// exactly as the hand-built predicate did.
func (d *Dataset) Range(q RangeRequest) (*RangeResponse, error) {
	t := newOpTrace(q.Trace, "Range")
	preds := []plan.Pred{plan.TimeBetween(q.T0, q.T1), plan.InBox(q.Box)}
	if q.Floor >= 0 {
		preds = append(preds, plan.OnFloor(q.Floor))
	}
	ix, stats, buildSpan, err := d.indexFor(q.Trace, preds...)
	if err != nil {
		return nil, err
	}
	t.startProbe()
	hits := ix.Range(q.Floor, q.Box, q.T0, q.T1)
	seen := make(map[int]bool)
	for _, s := range hits {
		seen[s.ObjID] = true
	}
	objs := make([]int, 0, len(seen))
	for id := range seen {
		objs = append(objs, id)
	}
	sort.Ints(objs)
	resp := &RangeResponse{Query: q, Hits: hits, Objects: objs, Stats: stats}
	resp.Trace = t.finish(buildSpan, len(hits))
	return resp, nil
}

// KNN answers a k-nearest-neighbors query at an instant. Like the CLI, it
// loads only the samples within MaxGap of T so interpolation still sees its
// bracketing samples, and leaves floor filtering to the operator.
func (d *Dataset) KNN(q KNNRequest) (*KNNResponse, error) {
	t := newOpTrace(q.Trace, "KNN")
	opts := d.queryOptions()
	ix, stats, buildSpan, err := d.indexFor(q.Trace, plan.TimeBetween(q.T-opts.MaxGap, q.T+opts.MaxGap))
	if err != nil {
		return nil, err
	}
	t.startProbe()
	neighbors := ix.KNN(q.Floor, q.At, q.T, q.K)
	resp := &KNNResponse{Query: q, Neighbors: neighbors, Stats: stats}
	resp.Trace = t.finish(buildSpan, len(neighbors))
	return resp, nil
}

// Density answers a per-partition snapshot density query at an instant.
func (d *Dataset) Density(q DensityRequest) (*DensityResponse, error) {
	t := newOpTrace(q.Trace, "Density")
	opts := d.queryOptions()
	ix, stats, buildSpan, err := d.indexFor(q.Trace, plan.TimeBetween(q.T-opts.MaxGap, q.T+opts.MaxGap))
	if err != nil {
		return nil, err
	}
	t.startProbe()
	counts := ix.Density(q.T)
	resp := &DensityResponse{Query: q, Counts: counts, Stats: stats}
	resp.Trace = t.finish(buildSpan, len(counts))
	return resp, nil
}

// Traj answers a trajectory-retrieval query for one object.
func (d *Dataset) Traj(q TrajRequest) (*TrajResponse, error) {
	t := newOpTrace(q.Trace, "Traj")
	ix, stats, buildSpan, err := d.indexFor(q.Trace, plan.ObjEq(q.Obj), plan.TimeBetween(q.T0, q.T1))
	if err != nil {
		return nil, err
	}
	t.startProbe()
	samples := ix.ObjectTrajectory(q.Obj, q.T0, q.T1)
	resp := &TrajResponse{Query: q, Samples: samples, Stats: stats}
	resp.Trace = t.finish(buildSpan, len(samples))
	return resp, nil
}

// Dwell answers dwell-time-per-room: for every partition, the total seconds
// objects spent in it during the window, and how many distinct objects were
// seen there. Unlike the other operators it is pure plan algebra — no
// spatio-temporal index — composed exactly as a user of the plan package
// would write it: filter the window (pushed down to block pruning), order
// by (object, time), derive per-row dwell gaps, aggregate per (partition,
// object), then roll up per partition summing seconds and counting the
// distinct objects.
func (d *Dataset) Dwell(q DwellRequest) (*DwellResponse, error) {
	opts := d.queryOptions()
	preds := []plan.Pred{plan.TimeBetween(q.T0, q.T1)}
	if q.Floor >= 0 {
		preds = append(preds, plan.OnFloor(q.Floor))
	}
	t := newOpTrace(q.Trace, "Dwell")
	rows, stats, planSpan, err := d.runPlan(q.Trace, func(src plan.Source) *plan.Plan {
		return plan.NewScan(src).
			Filter(preds...).
			OrderBy(plan.Asc(plan.ColObjID), plan.Asc(plan.ColT)).
			Derive(plan.DwellGaps(opts.MaxGap)).
			Aggregate(plan.By(plan.ColPartition, plan.ColObjID), plan.Sum(plan.ColVal, plan.ColVal)).
			Aggregate(plan.By(plan.ColPartition), plan.Sum(plan.ColVal, plan.ColVal), plan.CountInto(plan.ColObjID))
	})
	if err != nil {
		return nil, err
	}
	rooms := make([]DwellRoom, 0, len(rows))
	for _, r := range rows {
		rooms = append(rooms, DwellRoom{
			Partition: r.Sample.Loc.Partition,
			Seconds:   r.Val,
			Objects:   r.Sample.ObjID,
		})
	}
	// Longest-dwelled room first; name breaks ties, so output is stable.
	sort.SliceStable(rooms, func(i, j int) bool {
		if rooms[i].Seconds != rooms[j].Seconds {
			return rooms[i].Seconds > rooms[j].Seconds
		}
		return rooms[i].Partition < rooms[j].Partition
	})
	resp := &DwellResponse{Query: q, Rooms: rooms, Stats: stats}
	resp.Trace = t.finish(planSpan, len(rooms))
	return resp, nil
}

// Info summarizes the dataset. With trace set the response carries the
// span tree of the full-dataset index build behind the summary.
func (d *Dataset) Info(trace bool) (*InfoResponse, error) {
	t := newOpTrace(trace, "Info")
	ix, stats, buildSpan, err := d.indexFor(trace)
	if err != nil {
		return nil, err
	}
	t0, t1, ok := ix.TimeSpan()
	bounds, _ := ix.Bounds()
	resp := &InfoResponse{
		Samples: ix.Len(),
		Objects: len(ix.Objects()),
		Floors:  ix.Floors(),
		T0:      t0,
		T1:      t1,
		Bounds:  bounds,
		Empty:   !ok,
		Stats:   stats,
	}
	resp.Trace = t.finish(buildSpan, ix.Len())
	return resp, nil
}

// queryOptions returns the effective index options with defaults applied,
// so MaxGap-derived predicates match what the index itself will use.
func (d *Dataset) queryOptions() query.Options {
	o := d.qopts
	if o.BucketWidth <= 0 {
		o.BucketWidth = query.DefaultOptions().BucketWidth
	}
	if o.MaxGap <= 0 {
		o.MaxGap = query.DefaultOptions().MaxGap
	}
	return o
}

// indexCache is a small LRU of built spatio-temporal indexes keyed by
// canonical predicate, bounded both by entry count and by approximate
// resident bytes — a wide predicate (empty, or a full-window range) builds
// an index over a copy of the whole dataset, so a count bound alone would
// leave daemon memory unbounded. One warm entry turns a repeated query into
// pure index lookup — no block reads at all.
type indexCache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64 // <= 0: no byte bound
	bytes    int64
	order    []string // front = most recently used
	entries  map[string]indexEntry
}

type indexEntry struct {
	ix    *query.TrajectoryIndex
	bytes int64
}

func newIndexCache(max int, maxBytes int64) *indexCache {
	return &indexCache{max: max, maxBytes: maxBytes, entries: make(map[string]indexEntry)}
}

func (c *indexCache) get(key string) (*query.TrajectoryIndex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.touch(key)
	}
	return e.ix, ok
}

// put inserts an index whose resident footprint is approximately bytes,
// evicting LRU entries until both bounds hold. An index larger than the
// whole byte budget is not cached at all.
func (c *indexCache) put(key string, ix *query.TrajectoryIndex, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && bytes > c.maxBytes {
		return
	}
	if old, ok := c.entries[key]; ok {
		c.bytes -= old.bytes
		c.touch(key)
	} else {
		c.order = append([]string{key}, c.order...)
	}
	c.entries[key] = indexEntry{ix: ix, bytes: bytes}
	c.bytes += bytes
	for len(c.order) > c.max || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		last := c.order[len(c.order)-1]
		c.order = c.order[:len(c.order)-1]
		c.bytes -= c.entries[last].bytes
		delete(c.entries, last)
	}
}

// touch moves key to the front of the recency order. Callers hold mu.
func (c *indexCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[1:i+1], c.order[:i])
			c.order[0] = key
			return
		}
	}
}

func (c *indexCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// clear drops every entry, returning how many there were. Refresh calls it
// when the dataset moves to a new manifest generation: the entries' keys
// name the old generation and will never be asked for again.
func (c *indexCache) clear() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[string]indexEntry)
	c.order = nil
	c.bytes = 0
	return n
}
