package serve

import (
	"fmt"
	"io"
	"sort"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/obs"
	"vita/internal/query"
	"vita/internal/trajectory"
)

// Request/response types for the four query operators plus info. They are
// the single source of truth for three surfaces at once: Dataset methods
// (local execution), the HTTP JSON API (vitaserve), and Client (vitaquery
// -server). The WriteText formatters render exactly what vitaquery has
// always printed, so local and served output are byte-identical by
// construction — all three paths marshal through the same structs and the
// same format strings, and float64 values survive the JSON round trip
// exactly (encoding/json emits shortest round-trip representations).

// Stats describes how much work one request cost: the underlying scan
// (blocks pruned/decoded, rows), block-cache effectiveness, and whether the
// built index itself came from cache (in which case no blocks were touched
// at all).
type Stats struct {
	// Format is the dataset's storage format ("vtb" or "csv").
	Format string `json:"format"`
	// Scan reports zone-map pruning and row counts. On a CSV dataset only
	// the row counters are meaningful.
	Scan colstore.ScanStats `json:"scan"`
	// CacheHits and CacheMisses count decoded-block cache lookups for this
	// request (VTB only; misses equal blocks decoded).
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// IndexCached reports that the request was answered from a cached
	// spatio-temporal index without touching blocks.
	IndexCached bool `json:"index_cached"`
	// PeakDecodedBytes is the largest decoded batch held at any instant
	// while streaming this request's blocks through the index builder
	// (cursor path only — the one-shot, cache-less configuration). It is
	// the observable form of the bounded-memory claim: however large the
	// file, the scan's transient footprint is one block's batch.
	PeakDecodedBytes int64 `json:"peak_decoded_bytes,omitempty"`
	// Segments is how many live segments the request's scan fanned across
	// (segmented datasets only; omitted for single-file and CSV).
	Segments int `json:"segments,omitempty"`
}

// RangeRequest asks for every sample inside box on floor during [T0, T1].
// Floor -1 searches all floors.
type RangeRequest struct {
	Floor int       `json:"floor"`
	Box   geom.BBox `json:"box"`
	T0    float64   `json:"t0"`
	T1    float64   `json:"t1"`
	// Trace asks for a per-operator span tree in the response. Not part of
	// the query identity, so excluded from the wire encoding of the query
	// echo (the HTTP server reads it from ?trace=1).
	Trace bool `json:"-"`
}

// RangeResponse carries the matching samples ordered by (object, time).
type RangeResponse struct {
	Query   RangeRequest        `json:"query"`
	Hits    []trajectory.Sample `json:"hits"`
	Objects []int               `json:"objects"`
	Stats   Stats               `json:"stats"`
	Trace   *obs.Span           `json:"trace,omitempty"`
}

// WriteText renders the response exactly as `vitaquery range` prints it.
func (r *RangeResponse) WriteText(w io.Writer) error {
	for _, s := range r.Hits {
		if _, err := fmt.Fprintf(w, "obj %-4d t %8.2f  %s\n", s.ObjID, s.T, s.Loc); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d samples, %d distinct objects in %v × [%g, %g]\n",
		len(r.Hits), len(r.Objects), r.Query.Box, r.Query.T0, r.Query.T1)
	return err
}

// KNNRequest asks for the K objects on Floor nearest to At at instant T.
type KNNRequest struct {
	Floor int        `json:"floor"`
	At    geom.Point `json:"at"`
	T     float64    `json:"t"`
	K     int        `json:"k"`
	Trace bool       `json:"-"`
}

// KNNResponse carries the neighbors, nearest first.
type KNNResponse struct {
	Query     KNNRequest       `json:"query"`
	Neighbors []query.Neighbor `json:"neighbors"`
	Stats     Stats            `json:"stats"`
	Trace     *obs.Span        `json:"trace,omitempty"`
}

// WriteText renders the response exactly as `vitaquery knn` prints it.
func (r *KNNResponse) WriteText(w io.Writer) error {
	for i, n := range r.Neighbors {
		if _, err := fmt.Fprintf(w, "#%d  obj %-4d dist %6.2fm  %s\n", i+1, n.ObjID, n.Dist, n.Loc); err != nil {
			return err
		}
	}
	return nil
}

// DensityRequest asks for the per-partition object counts at instant T.
type DensityRequest struct {
	T     float64 `json:"t"`
	Trace bool    `json:"-"`
}

// DensityResponse carries the snapshot density per partition.
type DensityResponse struct {
	Query  DensityRequest `json:"query"`
	Counts map[string]int `json:"counts"`
	Stats  Stats          `json:"stats"`
	Trace  *obs.Span      `json:"trace,omitempty"`
}

// WriteText renders the response exactly as `vitaquery density` prints it:
// partitions by descending count (name-ascending ties), then a summary.
func (r *DensityResponse) WriteText(w io.Writer) error {
	parts := make([]string, 0, len(r.Counts))
	for p := range r.Counts {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool {
		if r.Counts[parts[i]] != r.Counts[parts[j]] {
			return r.Counts[parts[i]] > r.Counts[parts[j]]
		}
		return parts[i] < parts[j]
	})
	total := 0
	for _, p := range parts {
		if _, err := fmt.Fprintf(w, "%-16s %d\n", p, r.Counts[p]); err != nil {
			return err
		}
		total += r.Counts[p]
	}
	_, err := fmt.Fprintf(w, "%d objects in %d partitions at t=%g\n", total, len(parts), r.Query.T)
	return err
}

// TrajRequest asks for object Obj's samples during [T0, T1].
type TrajRequest struct {
	Obj   int     `json:"obj"`
	T0    float64 `json:"t0"`
	T1    float64 `json:"t1"`
	Trace bool    `json:"-"`
}

// TrajResponse carries the object's samples in time order.
type TrajResponse struct {
	Query   TrajRequest         `json:"query"`
	Samples []trajectory.Sample `json:"samples"`
	Stats   Stats               `json:"stats"`
	Trace   *obs.Span           `json:"trace,omitempty"`
}

// WriteText renders the response exactly as `vitaquery traj` prints it.
func (r *TrajResponse) WriteText(w io.Writer) error {
	for _, s := range r.Samples {
		if _, err := fmt.Fprintf(w, "t %8.2f  %s\n", s.T, s.Loc); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d samples for object %d\n", len(r.Samples), r.Query.Obj)
	return err
}

// DwellRequest asks how long objects dwelled in each partition during
// [T0, T1]. Floor -1 includes all floors.
type DwellRequest struct {
	Floor int     `json:"floor"`
	T0    float64 `json:"t0"`
	T1    float64 `json:"t1"`
	Trace bool    `json:"-"`
}

// DwellRoom is one partition's dwell summary.
type DwellRoom struct {
	Partition string `json:"partition"`
	// Seconds is the total dwell time accumulated across all objects:
	// consecutive same-object samples in the partition no further apart
	// than the index's MaxGap contribute their gap.
	Seconds float64 `json:"seconds"`
	// Objects is how many distinct objects were observed in the partition.
	Objects int `json:"objects"`
}

// DwellResponse carries the rooms, longest total dwell first.
type DwellResponse struct {
	Query DwellRequest `json:"query"`
	Rooms []DwellRoom  `json:"rooms"`
	Stats Stats        `json:"stats"`
	Trace *obs.Span    `json:"trace,omitempty"`
}

// WriteText renders the response exactly as `vitaquery dwell` prints it.
func (r *DwellResponse) WriteText(w io.Writer) error {
	var total float64
	for _, room := range r.Rooms {
		if _, err := fmt.Fprintf(w, "%-16s %10.1f s  %d objects\n", room.Partition, room.Seconds, room.Objects); err != nil {
			return err
		}
		total += room.Seconds
	}
	_, err := fmt.Fprintf(w, "%g s total dwell across %d partitions in [%g, %g]\n",
		total, len(r.Rooms), r.Query.T0, r.Query.T1)
	return err
}

// InfoResponse summarizes the dataset.
type InfoResponse struct {
	Samples int     `json:"samples"`
	Objects int     `json:"objects"`
	Floors  []int   `json:"floors"`
	T0      float64 `json:"t0"`
	T1      float64 `json:"t1"`
	// Bounds is the tight bounding box over every sample location. It is
	// carried on the JSON surface only (WriteText is frozen for CLI output
	// parity); workload generators use it to draw spatial parameters that
	// actually hit the data.
	Bounds geom.BBox `json:"bounds"`
	// Empty reports a dataset with no samples (T0/T1 then meaningless).
	Empty bool      `json:"empty"`
	Stats Stats     `json:"stats"`
	Trace *obs.Span `json:"trace,omitempty"`
}

// WriteText renders the response exactly as `vitaquery info` prints it.
func (r *InfoResponse) WriteText(w io.Writer) error {
	if r.Empty {
		_, err := fmt.Fprintln(w, "empty dataset")
		return err
	}
	if _, err := fmt.Fprintf(w, "samples   %d\n", r.Samples); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "objects   %d\n", r.Objects); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "floors    %v\n", r.Floors); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "time span [%g, %g] s\n", r.T0, r.T1)
	return err
}
