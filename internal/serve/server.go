package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vita/internal/geom"
	"vita/internal/obs"
)

// Server exposes a Dataset's query operators over HTTP with JSON responses:
//
//	GET /v1/range?floor=0&box=0,0,20,15&t0=0&t1=120
//	GET /v1/knn?floor=0&at=10,7.5&t=60&k=5
//	GET /v1/density?t=60
//	GET /v1/traj?obj=3&t0=0&t1=300
//	GET /v1/dwell?floor=0&t0=0&t1=600
//	GET /v1/info
//	GET /healthz
//	GET /statsz
//
// Every operator response embeds its per-request Stats (blocks
// pruned/decoded, cache hits/misses); /statsz aggregates them across the
// server's lifetime. Errors come back as {"error": "..."} with a 4xx/5xx
// status.
type Server struct {
	ds      *Dataset
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the observability middleware
	httpS   *http.Server
	start   time.Time
	opts    ServerOptions
	logger  *slog.Logger
	reg     *obs.Registry

	// endpoints bounds the metric label space: only registered paths get
	// their own series, everything else lands in "other".
	endpoints map[string]bool
	reqDur    *obs.HistogramVec
	reqCount  *obs.CounterVec

	requests  [opCount]atomic.Int64
	errors    atomic.Int64
	inFlight  atomic.Int64
	pruned    atomic.Int64
	decoded   atomic.Int64
	idxHits   atomic.Int64
	testDelay time.Duration // test hook: stall every operator request
}

// ServerOptions tunes the server's observability surface. The zero value
// serves metrics on the process-wide default registry and logs through the
// default slog logger, with the slow-query log disabled.
type ServerOptions struct {
	// SlowQuery, when positive, traces every operator request and logs the
	// span tree of any request that takes at least this long. (Tracing must
	// be on for the whole request — a trace cannot be reconstructed after
	// the fact — but the trace is stripped from the response unless the
	// client asked for it with ?trace=1.)
	SlowQuery time.Duration
	// Metrics is the registry behind GET /metricsz (nil = obs.Default()).
	// Tests that assert on exact series pass a fresh obs.NewRegistry.
	Metrics *obs.Registry
	// Logger receives request, error, and slow-query logs (nil =
	// slog.Default()).
	Logger *slog.Logger
}

// Operator slots for the per-operator request counters.
const (
	opRange = iota
	opKNN
	opDensity
	opTraj
	opDwell
	opInfo
	opCount
)

var opNames = [opCount]string{"range", "knn", "density", "traj", "dwell", "info"}

// NewServer wraps an opened dataset in an HTTP query server with default
// observability options.
func NewServer(ds *Dataset) *Server { return NewServerWith(ds, ServerOptions{}) }

// NewServerWith wraps an opened dataset in an HTTP query server with
// explicit observability options.
func NewServerWith(ds *Dataset, opts ServerOptions) *Server {
	s := &Server{ds: ds, mux: http.NewServeMux(), start: time.Now(), opts: opts}
	s.logger = opts.Logger
	if s.logger == nil {
		s.logger = slog.Default()
	}
	s.reg = opts.Metrics
	if s.reg == nil {
		s.reg = obs.Default()
	}
	s.httpS = &http.Server{}
	routes := map[string]http.HandlerFunc{
		"/v1/range":   s.handleRange,
		"/v1/knn":     s.handleKNN,
		"/v1/density": s.handleDensity,
		"/v1/traj":    s.handleTraj,
		"/v1/dwell":   s.handleDwell,
		"/v1/info":    s.handleInfo,
		"/healthz":    s.handleHealthz,
		"/statsz":     s.handleStatsz,
		"/metricsz":   s.handleMetricsz,
	}
	s.endpoints = make(map[string]bool, len(routes))
	for path, h := range routes {
		s.mux.HandleFunc("GET "+path, h)
		s.endpoints[path] = true
	}
	s.registerMetrics()
	s.handler = s.withObs(s.mux)
	s.httpS.Handler = s.handler
	return s
}

// Handler returns the server's HTTP handler, observability middleware
// included (useful with httptest).
func (s *Server) Handler() http.Handler { return s.handler }

// registerMetrics exposes the server's and dataset's existing atomic
// counters on the registry as scrape-time func metrics — one source of
// truth, no double counting — plus the live request vectors.
func (s *Server) registerMetrics() {
	r := s.reg
	s.reqDur = r.HistogramVec("vita_http_request_duration_seconds",
		"HTTP request latency in seconds by endpoint.", nil, "endpoint")
	s.reqCount = r.CounterVec("vita_http_requests_total",
		"HTTP requests by endpoint and response status.", "endpoint", "status")

	counter := func(name, help string, fn func() int64) {
		r.CounterFunc(name, help, func() float64 { return float64(fn()) })
	}
	gauge := func(name, help string, fn func() int64) {
		r.GaugeFunc(name, help, func() float64 { return float64(fn()) })
	}
	gauge("vita_http_in_flight", "Operator requests currently executing.", s.inFlight.Load)
	counter("vita_http_errors_total", "Requests answered with an error body.", s.errors.Load)
	counter("vita_blocks_pruned_total", "Blocks skipped by zone-map pruning across all requests.", s.pruned.Load)
	counter("vita_blocks_decoded_total", "Blocks decoded (block-cache misses) across all requests.", s.decoded.Load)
	counter("vita_index_cache_hits_total", "Requests answered from a cached predicate index.", s.idxHits.Load)

	ds := s.ds
	gauge("vita_index_cache_entries", "Predicate indexes currently cached.", func() int64 {
		if ds.idx == nil {
			return 0
		}
		return int64(ds.idx.len())
	})
	counter("vita_index_cache_invalidations_total", "Cached indexes dropped by manifest refreshes.", ds.IndexInvalidations)
	counter("vita_block_cache_hits_total", "Decoded-block cache hits.", func() int64 { return ds.CacheStats().Hits })
	counter("vita_block_cache_misses_total", "Decoded-block cache misses.", func() int64 { return ds.CacheStats().Misses })
	counter("vita_block_cache_evictions_total", "Decoded blocks evicted by the cache's byte bound.", func() int64 { return ds.CacheStats().Evictions })
	counter("vita_block_cache_invalidations_total", "Cached blocks dropped because their segment left the live set.", ds.BlockInvalidations)
	gauge("vita_block_cache_bytes", "Bytes of decoded blocks resident in the cache.", func() int64 { return ds.CacheStats().Bytes })
	gauge("vita_block_cache_blocks", "Decoded blocks resident in the cache.", func() int64 { return int64(ds.CacheStats().Blocks) })

	gauge("vita_dataset_segments", "Live segments currently served (0 when not segmented).", func() int64 { return int64(ds.Segments()) })
	gauge("vita_dataset_generation", "Manifest generation currently served.", func() int64 { return int64(ds.Generation()) })
	counter("vita_compactions_total", "Compactions recorded by the served manifest (cross-process).", func() int64 { return int64(ds.Compactions()) })
	counter("vita_manifest_refreshes_total", "Manifest generations the dataset has folded in.", ds.Refreshes)
	obs.RegisterBuildInfo(r)
	obs.RegisterRuntimeMetrics(r)
}

// reqCtxKey carries per-request observability state through the context.
type reqCtxKey struct{}

type reqInfo struct {
	id    string
	start time.Time
}

// reqInfoFrom returns the request's observability state, or nil when the
// handler runs outside the middleware.
func reqInfoFrom(r *http.Request) *reqInfo {
	info, _ := r.Context().Value(reqCtxKey{}).(*reqInfo)
	return info
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// withObs wraps the mux in the observability middleware: request-ID
// generation (honoring a caller-supplied X-Request-Id) echoed in the
// response header, per-endpoint latency histograms and status-labeled
// request counters, and a structured request log line (info for /v1
// operators, debug for everything else).
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		info := &reqInfo{id: id, start: time.Now()}
		r = r.WithContext(context.WithValue(r.Context(), reqCtxKey{}, info))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		dur := time.Since(info.start)

		ep := r.URL.Path
		if !s.endpoints[ep] {
			ep = "other"
		}
		s.reqDur.With(ep).Observe(dur.Seconds())
		s.reqCount.With(ep, strconv.Itoa(rec.status)).Inc()

		logFn := s.logger.Debug
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			logFn = s.logger.Info
		}
		logFn("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(dur)/float64(time.Millisecond),
			"request_id", id)
	})
}

// finishTrace completes an operator request's tracing: it emits the
// slow-query log when the request crossed the threshold, then strips the
// trace from the response unless the client asked for it. No-op when the
// response carries no trace (tracing off).
func (s *Server) finishTrace(r *http.Request, wantTrace bool, trace **obs.Span) {
	if *trace == nil {
		return
	}
	if s.opts.SlowQuery > 0 {
		if info := reqInfoFrom(r); info != nil {
			if dur := time.Since(info.start); dur >= s.opts.SlowQuery {
				js, _ := json.Marshal(*trace)
				s.logger.Warn("slow query",
					"path", r.URL.Path,
					"query", r.URL.RawQuery,
					"duration_ms", float64(dur)/float64(time.Millisecond),
					"threshold_ms", float64(s.opts.SlowQuery)/float64(time.Millisecond),
					"request_id", info.id,
					"trace", string(js))
			}
		}
	}
	if !wantTrace {
		*trace = nil
	}
}

// traceParams reads the request's tracing decision: wantTrace is the
// client's ?trace=1 ask; doTrace additionally covers the slow-query log,
// which needs the trace recorded up front for every request it might flag.
func (s *Server) traceParams(r *http.Request) (wantTrace, doTrace bool) {
	wantTrace = r.URL.Query().Get("trace") == "1"
	return wantTrace, wantTrace || s.opts.SlowQuery > 0
}

// EnablePprof mounts net/http/pprof's profiling endpoints under
// /debug/pprof/ on the server's mux (vitaserve's -pprof flag), so a running
// daemon can be CPU/heap/goroutine-profiled in place:
//
//	go tool pprof http://host:port/debug/pprof/profile?seconds=30
//	go tool pprof http://host:port/debug/pprof/heap
//
// Call before Serve. The endpoints expose internals — keep them off (the
// default) unless the listen address is trusted.
//
// EnablePprof also turns on block and mutex profiling at the
// DefaultPprofOptions sampling rates; without those runtime knobs the
// /debug/pprof/{block,mutex} profiles are permanently empty. Use
// EnablePprofWith to tune or disable them.
func (s *Server) EnablePprof() { s.EnablePprofWith(DefaultPprofOptions()) }

// PprofOptions tunes the runtime profiling rates EnablePprofWith applies.
type PprofOptions struct {
	// BlockProfileRate is the argument to runtime.SetBlockProfileRate: one
	// blocking event per rate nanoseconds blocked is sampled. 1 samples
	// every event (costly), 0 leaves the current setting untouched, < 0
	// disables block profiling.
	BlockProfileRate int
	// MutexProfileFraction is the argument to
	// runtime.SetMutexProfileFraction: 1/fraction of mutex contention events
	// are sampled. 1 samples every event, 0 leaves the current setting
	// untouched, < 0 disables mutex profiling.
	MutexProfileFraction int
}

// DefaultPprofOptions samples a blocking event per 10ms cumulatively blocked
// and 1 in 5 mutex contention events — cheap enough for a production daemon,
// dense enough that a loaded server produces non-empty profiles.
func DefaultPprofOptions() PprofOptions {
	return PprofOptions{BlockProfileRate: 10 * 1000 * 1000, MutexProfileFraction: 5}
}

// EnablePprofWith mounts the pprof endpoints like EnablePprof and applies
// explicit block/mutex sampling rates. The runtime settings are process-wide,
// not per-server.
func (s *Server) EnablePprofWith(opts PprofOptions) {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	switch {
	case opts.BlockProfileRate > 0:
		runtime.SetBlockProfileRate(opts.BlockProfileRate)
	case opts.BlockProfileRate < 0:
		runtime.SetBlockProfileRate(0)
	}
	switch {
	case opts.MutexProfileFraction > 0:
		runtime.SetMutexProfileFraction(opts.MutexProfileFraction)
	case opts.MutexProfileFraction < 0:
		runtime.SetMutexProfileFraction(0)
	}
}

// Serve accepts connections on l until Shutdown. It returns nil after a
// clean shutdown. Serve may be called at most once per Server.
func (s *Server) Serve(l net.Listener) error {
	if err := s.httpS.Serve(l); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Shutdown stops accepting new connections and waits — up to the context's
// deadline — for in-flight requests to drain.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpS.Shutdown(ctx)
}

// RunUntilSignal serves on l until one of sigs arrives (or ctx is
// cancelled), then drains in-flight requests for up to drainTimeout before
// returning. A clean drain returns nil.
func (s *Server) RunUntilSignal(ctx context.Context, l net.Listener, drainTimeout time.Duration, sigs ...os.Signal) error {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, sigs...)
	defer signal.Stop(sigCh)

	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(l) }()

	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-sigCh:
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return <-errCh
}

// track wraps one operator request: counts it, applies the test delay, and
// folds the per-request stats into the lifetime aggregates.
func (s *Server) track(op int, stats *Stats) {
	s.requests[op].Add(1)
	if s.testDelay > 0 {
		time.Sleep(s.testDelay)
	}
	if stats != nil {
		s.pruned.Add(int64(stats.Scan.BlocksPruned))
		// Scan.BlocksScanned counts every surviving block, cache-served or
		// not; only the misses actually decoded anything.
		s.decoded.Add(int64(stats.CacheMisses))
		if stats.IndexCached {
			s.idxHits.Add(1)
		}
	}
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	q := RangeRequest{Floor: -1}
	var err error
	if v := r.URL.Query().Get("floor"); v != "" {
		if q.Floor, err = strconv.Atoi(v); err != nil {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("bad floor %q", v))
			return
		}
	}
	if q.Box, err = ParseBox(r.URL.Query().Get("box")); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if q.T0, q.T1, err = parseWindow(r, 0, 0); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	wantTrace, doTrace := s.traceParams(r)
	q.Trace = doTrace
	resp, err := s.ds.Range(q)
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	s.track(opRange, &resp.Stats)
	s.finishTrace(r, wantTrace, &resp.Trace)
	s.writeJSON(w, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	q := KNNRequest{Floor: 0, K: 5}
	var err error
	if v := r.URL.Query().Get("floor"); v != "" {
		if q.Floor, err = strconv.Atoi(v); err != nil {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("bad floor %q", v))
			return
		}
	}
	if q.At, err = ParsePoint(r.URL.Query().Get("at")); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if q.T, err = parseFloatParam(r, "t", 0); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if v := r.URL.Query().Get("k"); v != "" {
		if q.K, err = strconv.Atoi(v); err != nil {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("bad k %q", v))
			return
		}
	}
	wantTrace, doTrace := s.traceParams(r)
	q.Trace = doTrace
	resp, err := s.ds.KNN(q)
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	s.track(opKNN, &resp.Stats)
	s.finishTrace(r, wantTrace, &resp.Trace)
	s.writeJSON(w, resp)
}

func (s *Server) handleDensity(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	t, err := parseFloatParam(r, "t", 0)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	wantTrace, doTrace := s.traceParams(r)
	resp, err := s.ds.Density(DensityRequest{T: t, Trace: doTrace})
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	s.track(opDensity, &resp.Stats)
	s.finishTrace(r, wantTrace, &resp.Trace)
	s.writeJSON(w, resp)
}

func (s *Server) handleTraj(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	q := TrajRequest{}
	var err error
	if v := r.URL.Query().Get("obj"); v != "" {
		if q.Obj, err = strconv.Atoi(v); err != nil {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("bad obj %q", v))
			return
		}
	}
	if q.T0, q.T1, err = parseWindow(r, 0, 1e18); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	wantTrace, doTrace := s.traceParams(r)
	q.Trace = doTrace
	resp, err := s.ds.Traj(q)
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	s.track(opTraj, &resp.Stats)
	s.finishTrace(r, wantTrace, &resp.Trace)
	s.writeJSON(w, resp)
}

func (s *Server) handleDwell(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	q := DwellRequest{Floor: -1}
	var err error
	if v := r.URL.Query().Get("floor"); v != "" {
		if q.Floor, err = strconv.Atoi(v); err != nil {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("bad floor %q", v))
			return
		}
	}
	if q.T0, q.T1, err = parseWindow(r, 0, 1e18); err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	wantTrace, doTrace := s.traceParams(r)
	q.Trace = doTrace
	resp, err := s.ds.Dwell(q)
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	s.track(opDwell, &resp.Stats)
	s.finishTrace(r, wantTrace, &resp.Trace)
	s.writeJSON(w, resp)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	wantTrace, doTrace := s.traceParams(r)
	resp, err := s.ds.Info(doTrace)
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, err)
		return
	}
	s.track(opInfo, &resp.Stats)
	s.finishTrace(r, wantTrace, &resp.Trace)
	s.writeJSON(w, resp)
}

// Health is the /healthz payload: liveness plus build identity, so one
// probe answers "is it up" and "what exactly is running".
type Health struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	Commit        string  `json:"commit"`
	Go            string  `json:"go"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	b := obs.Build()
	s.writeJSON(w, Health{
		Status:        "ok",
		Version:       b.Version,
		Commit:        b.Commit,
		Go:            b.Go,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleMetricsz serves the registry in Prometheus text exposition format.
func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.errors.Add(1)
	}
}

// ServerStats is the /statsz payload: lifetime request counters, cache
// effectiveness, and dataset identity.
type ServerStats struct {
	Dataset       string           `json:"dataset"`
	Format        string           `json:"format"`
	Samples       int              `json:"samples"`
	Blocks        int              `json:"blocks"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	InFlight      int64            `json:"in_flight"`
	Requests      map[string]int64 `json:"requests"`
	Errors        int64            `json:"errors"`
	BlocksPruned  int64            `json:"blocks_pruned"`
	BlocksDecoded int64            `json:"blocks_decoded"`
	IndexHits     int64            `json:"index_hits"`
	IndexEntries  int              `json:"index_entries"`
	Cache         CacheStats       `json:"cache"`

	// Live-dataset counters; all zero for single-file and CSV datasets.
	Segments           int    `json:"segments"`
	Generation         uint64 `json:"generation"`
	Compactions        uint64 `json:"compactions"`
	Refreshes          int64  `json:"refreshes"`
	BlockInvalidations int64  `json:"block_invalidations"`
	IndexInvalidations int64  `json:"index_invalidations"`
}

// Stats returns a snapshot of the server's lifetime counters.
func (s *Server) Stats() ServerStats {
	reqs := make(map[string]int64, opCount)
	for op, name := range opNames {
		reqs[name] = s.requests[op].Load()
	}
	st := ServerStats{
		Dataset:       s.ds.Path(),
		Format:        string(s.ds.Format()),
		Samples:       s.ds.Len(),
		Blocks:        s.ds.Blocks(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inFlight.Load(),
		Requests:      reqs,
		Errors:        s.errors.Load(),
		BlocksPruned:  s.pruned.Load(),
		BlocksDecoded: s.decoded.Load(),
		IndexHits:     s.idxHits.Load(),
		Cache:         s.ds.CacheStats(),

		Segments:           s.ds.Segments(),
		Generation:         s.ds.Generation(),
		Compactions:        s.ds.Compactions(),
		Refreshes:          s.ds.Refreshes(),
		BlockInvalidations: s.ds.BlockInvalidations(),
		IndexInvalidations: s.ds.IndexInvalidations(),
	}
	if s.ds.idx != nil {
		st.IndexEntries = s.ds.idx.len()
	}
	return st
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.Stats())
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.errors.Add(1)
	}
}

// errorBody is the structured error envelope every failed request returns:
// the message plus the request ID, so a client-side report can be joined
// against the server's logs.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func (s *Server) fail(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.errors.Add(1)
	var id string
	if info := reqInfoFrom(r); info != nil {
		id = info.id
	}
	s.logger.Warn("request failed",
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"error", err.Error(),
		"request_id", id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), RequestID: id})
}

func parseFloatParam(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return f, nil
}

func parseWindow(r *http.Request, defT0, defT1 float64) (t0, t1 float64, err error) {
	if t0, err = parseFloatParam(r, "t0", defT0); err != nil {
		return
	}
	t1, err = parseFloatParam(r, "t1", defT1)
	return
}

// ParseBox parses "x0,y0,x1,y1" — the wire and CLI encoding of a query box.
func ParseBox(s string) (geom.BBox, error) {
	var v [4]float64
	if err := parseFloats(s, v[:]); err != nil {
		return geom.BBox{}, fmt.Errorf("bad box %q, want x0,y0,x1,y1", s)
	}
	return geom.BBox{Min: geom.Pt(v[0], v[1]), Max: geom.Pt(v[2], v[3])}, nil
}

// FormatBox renders a box in the ParseBox encoding with full float64
// round-trip precision.
func FormatBox(b geom.BBox) string {
	return formatFloats(b.Min.X, b.Min.Y, b.Max.X, b.Max.Y)
}

// ParsePoint parses "x,y" — the wire and CLI encoding of a query point.
func ParsePoint(s string) (geom.Point, error) {
	var v [2]float64
	if err := parseFloats(s, v[:]); err != nil {
		return geom.Point{}, fmt.Errorf("bad point %q, want x,y", s)
	}
	return geom.Pt(v[0], v[1]), nil
}

// FormatPoint renders a point in the ParsePoint encoding with full float64
// round-trip precision.
func FormatPoint(p geom.Point) string {
	return formatFloats(p.X, p.Y)
}

func parseFloats(s string, out []float64) error {
	parts := strings.Split(s, ",")
	if len(parts) != len(out) {
		return fmt.Errorf("want %d comma-separated numbers", len(out))
	}
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("bad number %q", p)
		}
		out[i] = f
	}
	return nil
}

func formatFloats(vs ...float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
