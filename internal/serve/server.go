package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vita/internal/geom"
)

// Server exposes a Dataset's query operators over HTTP with JSON responses:
//
//	GET /v1/range?floor=0&box=0,0,20,15&t0=0&t1=120
//	GET /v1/knn?floor=0&at=10,7.5&t=60&k=5
//	GET /v1/density?t=60
//	GET /v1/traj?obj=3&t0=0&t1=300
//	GET /v1/dwell?floor=0&t0=0&t1=600
//	GET /v1/info
//	GET /healthz
//	GET /statsz
//
// Every operator response embeds its per-request Stats (blocks
// pruned/decoded, cache hits/misses); /statsz aggregates them across the
// server's lifetime. Errors come back as {"error": "..."} with a 4xx/5xx
// status.
type Server struct {
	ds    *Dataset
	mux   *http.ServeMux
	httpS *http.Server
	start time.Time

	requests  [opCount]atomic.Int64
	errors    atomic.Int64
	inFlight  atomic.Int64
	pruned    atomic.Int64
	decoded   atomic.Int64
	idxHits   atomic.Int64
	testDelay time.Duration // test hook: stall every operator request
}

// Operator slots for the per-operator request counters.
const (
	opRange = iota
	opKNN
	opDensity
	opTraj
	opDwell
	opInfo
	opCount
)

var opNames = [opCount]string{"range", "knn", "density", "traj", "dwell", "info"}

// NewServer wraps an opened dataset in an HTTP query server.
func NewServer(ds *Dataset) *Server {
	s := &Server{ds: ds, mux: http.NewServeMux(), start: time.Now()}
	s.httpS = &http.Server{Handler: s.mux}
	s.mux.HandleFunc("GET /v1/range", s.handleRange)
	s.mux.HandleFunc("GET /v1/knn", s.handleKNN)
	s.mux.HandleFunc("GET /v1/density", s.handleDensity)
	s.mux.HandleFunc("GET /v1/traj", s.handleTraj)
	s.mux.HandleFunc("GET /v1/dwell", s.handleDwell)
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// Handler returns the server's HTTP handler (useful with httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// EnablePprof mounts net/http/pprof's profiling endpoints under
// /debug/pprof/ on the server's mux (vitaserve's -pprof flag), so a running
// daemon can be CPU/heap/goroutine-profiled in place:
//
//	go tool pprof http://host:port/debug/pprof/profile?seconds=30
//	go tool pprof http://host:port/debug/pprof/heap
//
// Call before Serve. The endpoints expose internals — keep them off (the
// default) unless the listen address is trusted.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve accepts connections on l until Shutdown. It returns nil after a
// clean shutdown. Serve may be called at most once per Server.
func (s *Server) Serve(l net.Listener) error {
	if err := s.httpS.Serve(l); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Shutdown stops accepting new connections and waits — up to the context's
// deadline — for in-flight requests to drain.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpS.Shutdown(ctx)
}

// RunUntilSignal serves on l until one of sigs arrives (or ctx is
// cancelled), then drains in-flight requests for up to drainTimeout before
// returning. A clean drain returns nil.
func (s *Server) RunUntilSignal(ctx context.Context, l net.Listener, drainTimeout time.Duration, sigs ...os.Signal) error {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, sigs...)
	defer signal.Stop(sigCh)

	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(l) }()

	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-sigCh:
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return <-errCh
}

// track wraps one operator request: counts it, applies the test delay, and
// folds the per-request stats into the lifetime aggregates.
func (s *Server) track(op int, stats *Stats) {
	s.requests[op].Add(1)
	if s.testDelay > 0 {
		time.Sleep(s.testDelay)
	}
	if stats != nil {
		s.pruned.Add(int64(stats.Scan.BlocksPruned))
		// Scan.BlocksScanned counts every surviving block, cache-served or
		// not; only the misses actually decoded anything.
		s.decoded.Add(int64(stats.CacheMisses))
		if stats.IndexCached {
			s.idxHits.Add(1)
		}
	}
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	q := RangeRequest{Floor: -1}
	var err error
	if v := r.URL.Query().Get("floor"); v != "" {
		if q.Floor, err = strconv.Atoi(v); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad floor %q", v))
			return
		}
	}
	if q.Box, err = ParseBox(r.URL.Query().Get("box")); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if q.T0, q.T1, err = parseWindow(r, 0, 0); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.ds.Range(q)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.track(opRange, &resp.Stats)
	s.writeJSON(w, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	q := KNNRequest{Floor: 0, K: 5}
	var err error
	if v := r.URL.Query().Get("floor"); v != "" {
		if q.Floor, err = strconv.Atoi(v); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad floor %q", v))
			return
		}
	}
	if q.At, err = ParsePoint(r.URL.Query().Get("at")); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if q.T, err = parseFloatParam(r, "t", 0); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if v := r.URL.Query().Get("k"); v != "" {
		if q.K, err = strconv.Atoi(v); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad k %q", v))
			return
		}
	}
	resp, err := s.ds.KNN(q)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.track(opKNN, &resp.Stats)
	s.writeJSON(w, resp)
}

func (s *Server) handleDensity(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	t, err := parseFloatParam(r, "t", 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.ds.Density(DensityRequest{T: t})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.track(opDensity, &resp.Stats)
	s.writeJSON(w, resp)
}

func (s *Server) handleTraj(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	q := TrajRequest{}
	var err error
	if v := r.URL.Query().Get("obj"); v != "" {
		if q.Obj, err = strconv.Atoi(v); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad obj %q", v))
			return
		}
	}
	if q.T0, q.T1, err = parseWindow(r, 0, 1e18); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.ds.Traj(q)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.track(opTraj, &resp.Stats)
	s.writeJSON(w, resp)
}

func (s *Server) handleDwell(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	q := DwellRequest{Floor: -1}
	var err error
	if v := r.URL.Query().Get("floor"); v != "" {
		if q.Floor, err = strconv.Atoi(v); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad floor %q", v))
			return
		}
	}
	if q.T0, q.T1, err = parseWindow(r, 0, 1e18); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.ds.Dwell(q)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.track(opDwell, &resp.Stats)
	s.writeJSON(w, resp)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	resp, err := s.ds.Info()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.track(opInfo, &resp.Stats)
	s.writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok"})
}

// ServerStats is the /statsz payload: lifetime request counters, cache
// effectiveness, and dataset identity.
type ServerStats struct {
	Dataset       string           `json:"dataset"`
	Format        string           `json:"format"`
	Samples       int              `json:"samples"`
	Blocks        int              `json:"blocks"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	InFlight      int64            `json:"in_flight"`
	Requests      map[string]int64 `json:"requests"`
	Errors        int64            `json:"errors"`
	BlocksPruned  int64            `json:"blocks_pruned"`
	BlocksDecoded int64            `json:"blocks_decoded"`
	IndexHits     int64            `json:"index_hits"`
	IndexEntries  int              `json:"index_entries"`
	Cache         CacheStats       `json:"cache"`

	// Live-dataset counters; all zero for single-file and CSV datasets.
	Segments           int    `json:"segments"`
	Generation         uint64 `json:"generation"`
	Compactions        uint64 `json:"compactions"`
	Refreshes          int64  `json:"refreshes"`
	BlockInvalidations int64  `json:"block_invalidations"`
	IndexInvalidations int64  `json:"index_invalidations"`
}

// Stats returns a snapshot of the server's lifetime counters.
func (s *Server) Stats() ServerStats {
	reqs := make(map[string]int64, opCount)
	for op, name := range opNames {
		reqs[name] = s.requests[op].Load()
	}
	st := ServerStats{
		Dataset:       s.ds.Path(),
		Format:        string(s.ds.Format()),
		Samples:       s.ds.Len(),
		Blocks:        s.ds.Blocks(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inFlight.Load(),
		Requests:      reqs,
		Errors:        s.errors.Load(),
		BlocksPruned:  s.pruned.Load(),
		BlocksDecoded: s.decoded.Load(),
		IndexHits:     s.idxHits.Load(),
		Cache:         s.ds.CacheStats(),

		Segments:           s.ds.Segments(),
		Generation:         s.ds.Generation(),
		Compactions:        s.ds.Compactions(),
		Refreshes:          s.ds.Refreshes(),
		BlockInvalidations: s.ds.BlockInvalidations(),
		IndexInvalidations: s.ds.IndexInvalidations(),
	}
	if s.ds.idx != nil {
		st.IndexEntries = s.ds.idx.len()
	}
	return st
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.Stats())
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.errors.Add(1)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func parseFloatParam(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return f, nil
}

func parseWindow(r *http.Request, defT0, defT1 float64) (t0, t1 float64, err error) {
	if t0, err = parseFloatParam(r, "t0", defT0); err != nil {
		return
	}
	t1, err = parseFloatParam(r, "t1", defT1)
	return
}

// ParseBox parses "x0,y0,x1,y1" — the wire and CLI encoding of a query box.
func ParseBox(s string) (geom.BBox, error) {
	var v [4]float64
	if err := parseFloats(s, v[:]); err != nil {
		return geom.BBox{}, fmt.Errorf("bad box %q, want x0,y0,x1,y1", s)
	}
	return geom.BBox{Min: geom.Pt(v[0], v[1]), Max: geom.Pt(v[2], v[3])}, nil
}

// FormatBox renders a box in the ParseBox encoding with full float64
// round-trip precision.
func FormatBox(b geom.BBox) string {
	return formatFloats(b.Min.X, b.Min.Y, b.Max.X, b.Max.Y)
}

// ParsePoint parses "x,y" — the wire and CLI encoding of a query point.
func ParsePoint(s string) (geom.Point, error) {
	var v [2]float64
	if err := parseFloats(s, v[:]); err != nil {
		return geom.Point{}, fmt.Errorf("bad point %q, want x,y", s)
	}
	return geom.Pt(v[0], v[1]), nil
}

// FormatPoint renders a point in the ParsePoint encoding with full float64
// round-trip precision.
func FormatPoint(p geom.Point) string {
	return formatFloats(p.X, p.Y)
}

func parseFloats(s string, out []float64) error {
	parts := strings.Split(s, ",")
	if len(parts) != len(out) {
		return fmt.Errorf("want %d comma-separated numbers", len(out))
	}
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("bad number %q", p)
		}
		out[i] = f
	}
	return nil
}

func formatFloats(vs ...float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
