package serve

import (
	"bufio"
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vita/internal/geom"
	"vita/internal/obs"
	"vita/internal/storage"
)

// quietLogger drops all request logs, keeping concurrent tests readable.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// scrapeMetrics fetches /metricsz and parses every sample line into
// "name{labels}" → value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	res, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("metricsz: HTTP %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metricsz content type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("metricsz: unparseable line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("metricsz: bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsUnderConcurrentQueriesAndRefresh is the observability
// acceptance gate: a segmented dataset serves a battery of concurrent
// queries (some traced, some failing) while the manifest refreshes
// mid-flight, and afterwards /metricsz and /statsz must agree exactly —
// histogram counts equal request counts, status labels partition them, and
// every counter is monotonic between scrapes.
func TestMetricsUnderConcurrentQueriesAndRefresh(t *testing.T) {
	samples := testSamples()
	half := len(samples) / 2
	dir := t.TempDir()
	l := writeSegmented(t, dir, samples[:half], half/3+1)

	ds, err := Open(dir, Config{WatchInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })

	reg := obs.NewRegistry()
	srv := NewServerWith(ds, ServerOptions{Metrics: reg, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}

	const workers, iters = 8, 5
	box := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(40, 20)}
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := RangeRequest{Floor: -1, Box: box, T0: float64(i * 10), T1: float64(i*10 + 50)}
				q.Trace = w%2 == 0 // half the workers ask for traces
				if _, err := c.Range(q); err != nil {
					errs <- err
				}
				if _, err := c.KNN(KNNRequest{Floor: 0, At: geom.Pt(10, 7.5), T: 100, K: 3}); err != nil {
					errs <- err
				}
				if _, err := c.Traj(TrajRequest{Obj: w, T0: 0, T1: 600}); err != nil {
					errs <- err
				}
				// One malformed request per iteration: must count as a 400,
				// not a request the operator counters see.
				res, err := http.Get(ts.URL + "/v1/range?box=bogus")
				if err != nil {
					errs <- err
					continue
				}
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
				if res.StatusCode != http.StatusBadRequest {
					t.Errorf("bad request got HTTP %d", res.StatusCode)
				}
			}
		}(w)
	}

	// Mid-flight: roll in the second half of the data in two batches with a
	// refresh after each, so in-flight queries span two generation changes.
	mid := scrapeMetrics(t, ts.URL)
	cut := (half + len(samples)) / 2
	for _, batch := range [][2]int{{half, cut}, {cut, len(samples)}} {
		chunk := samples[batch[0]:batch[1]]
		appendSegmented(t, l, chunk, len(chunk)+1)
		if changed, err := ds.Refresh(); err != nil {
			t.Fatal(err)
		} else if !changed {
			t.Fatal("refresh saw no new generation after an append")
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := scrapeMetrics(t, ts.URL)

	// Counters never move backwards, under any interleaving.
	for series, v1 := range mid {
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		monotonic := strings.HasSuffix(name, "_total") ||
			strings.HasSuffix(name, "_count") || strings.HasSuffix(name, "_sum")
		if !monotonic {
			continue
		}
		if v2, ok := final[series]; ok && v2 < v1 {
			t.Errorf("%s went backwards: %g -> %g", series, v1, v2)
		}
	}

	// Exact accounting: every worker iteration issued one good and one bad
	// range, one knn, one traj.
	n := float64(workers * iters)
	checks := map[string]float64{
		`vita_http_requests_total{endpoint="/v1/range",status="200"}`:    n,
		`vita_http_requests_total{endpoint="/v1/range",status="400"}`:    n,
		`vita_http_requests_total{endpoint="/v1/knn",status="200"}`:      n,
		`vita_http_requests_total{endpoint="/v1/traj",status="200"}`:     n,
		`vita_http_request_duration_seconds_count{endpoint="/v1/range"}`: 2 * n,
		`vita_http_request_duration_seconds_count{endpoint="/v1/knn"}`:   n,
		`vita_http_request_duration_seconds_count{endpoint="/v1/traj"}`:  n,
		`vita_http_errors_total`:        n,
		`vita_manifest_refreshes_total`: 2,
		`vita_dataset_generation`:       float64(ds.Generation()),
	}
	for series, want := range checks {
		if got := final[series]; got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
	for _, series := range []string{
		`vita_blocks_pruned_total`,
		`vita_blocks_decoded_total`,
		`vita_block_cache_hits_total`,
		`vita_dataset_segments`,
	} {
		if final[series] == 0 {
			t.Errorf("%s is zero after the query battery", series)
		}
	}
	b := obs.Build()
	if _, ok := final[`vita_build_info{version="`+b.Version+`",commit="`+b.Commit+`",go="`+b.Go+`"}`]; !ok {
		t.Error("vita_build_info series missing")
	}

	// /statsz must agree with the scrape: operator counters only see the
	// requests that parsed.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests["range"] != int64(n) || st.Requests["knn"] != int64(n) || st.Requests["traj"] != int64(n) {
		t.Errorf("statsz request counts %v, want %g per operator", st.Requests, n)
	}
	if st.Errors != int64(n) {
		t.Errorf("statsz errors = %d, want %g", st.Errors, n)
	}
	if st.Refreshes != 2 {
		t.Errorf("statsz refreshes = %d, want 2", st.Refreshes)
	}
	if float64(st.BlocksPruned) != final[`vita_blocks_pruned_total`] {
		t.Errorf("statsz pruned %d != metricsz %g", st.BlocksPruned, final[`vita_blocks_pruned_total`])
	}
}

// findServeSpan walks a span tree for the first span with the given op.
func findServeSpan(s *obs.Span, op string) *obs.Span {
	if s == nil {
		return nil
	}
	if s.Op == op {
		return s
	}
	for _, c := range s.Children {
		if got := findServeSpan(c, op); got != nil {
			return got
		}
	}
	return nil
}

// TestTraceMatchesResponseStats pins the trace contract on every surface:
// the span tree's row and pruning counts must equal the response's Stats,
// locally and over HTTP — and be absent entirely when not asked for.
func TestTraceMatchesResponseStats(t *testing.T) {
	// No index cache, so every traced query shows the full IndexBuild→Scan
	// chain rather than an IndexCached hit.
	ds := openTestDataset(t, storage.FormatVTB, Config{IndexEntries: -1})
	ts := httptest.NewServer(NewServerWith(ds, ServerOptions{Logger: quietLogger(), Metrics: obs.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}

	box := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(40, 20)}
	q := RangeRequest{Floor: -1, Box: box, T0: 50, T1: 150, Trace: true}

	local, err := ds.Range(q)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Range(q)
	if err != nil {
		t.Fatal(err)
	}
	for surface, resp := range map[string]*RangeResponse{"local": local, "remote": remote} {
		root := resp.Trace
		if root == nil {
			t.Fatalf("%s: traced request returned no trace", surface)
		}
		if root.Op != "Range" {
			t.Errorf("%s: root span %q, want Range", surface, root.Op)
		}
		if root.Rows != len(resp.Hits) {
			t.Errorf("%s: root rows %d != %d hits", surface, root.Rows, len(resp.Hits))
		}
		scan := findServeSpan(root, "Scan")
		if scan == nil {
			t.Fatalf("%s: no Scan span in trace", surface)
		}
		if scan.BlocksScanned != resp.Stats.Scan.BlocksScanned ||
			scan.BlocksPruned != resp.Stats.Scan.BlocksPruned ||
			scan.RowsMatched != resp.Stats.Scan.RowsMatched {
			t.Errorf("%s: scan span (%d scanned, %d pruned, %d matched) != stats (%d, %d, %d)",
				surface, scan.BlocksScanned, scan.BlocksPruned, scan.RowsMatched,
				resp.Stats.Scan.BlocksScanned, resp.Stats.Scan.BlocksPruned, resp.Stats.Scan.RowsMatched)
		}
		if probe := findServeSpan(root, "IndexProbe"); probe == nil {
			t.Errorf("%s: no IndexProbe span", surface)
		}
	}

	// Dwell runs as pure plan algebra: its trace is the operator tree.
	dw, err := c.Dwell(DwellRequest{Floor: -1, T0: 50, T1: 450, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if dw.Trace == nil || dw.Trace.Op != "Dwell" {
		t.Fatalf("dwell trace root: %+v", dw.Trace)
	}
	if dw.Trace.Rows != len(dw.Rooms) {
		t.Errorf("dwell root rows %d != %d rooms", dw.Trace.Rows, len(dw.Rooms))
	}
	if dw.Trace.SpanCount() < 3 {
		t.Errorf("dwell trace has %d spans; want the full operator chain", dw.Trace.SpanCount())
	}

	// Untraced requests must carry no trace — on the wire or locally.
	plain, err := c.Range(RangeRequest{Floor: -1, Box: box, T0: 50, T1: 150})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced remote request returned a trace")
	}
	lp, err := ds.Range(RangeRequest{Floor: -1, Box: box, T0: 51, T1: 150})
	if err != nil {
		t.Fatal(err)
	}
	if lp.Trace != nil {
		t.Error("untraced local request returned a trace")
	}
}

// syncBuf is a concurrency-safe log sink.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLog forces the threshold to one nanosecond: every operator
// request must emit a slow-query log line with its trace — while the
// response stays trace-free unless the client opted in with ?trace=1.
func TestSlowQueryLog(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	var buf syncBuf
	srv := NewServerWith(ds, ServerOptions{
		SlowQuery: time.Nanosecond,
		Logger:    slog.New(slog.NewJSONHandler(&buf, nil)),
		Metrics:   obs.NewRegistry(),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}

	box := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(40, 20)}
	resp, err := c.Range(RangeRequest{Floor: -1, Box: box, T0: 0, T1: 100})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Error("slow-query tracing leaked into an untraced response")
	}
	log := buf.String()
	if !strings.Contains(log, `"msg":"slow query"`) {
		t.Fatalf("no slow-query log line:\n%s", log)
	}
	if !strings.Contains(log, `\"op\":\"Range\"`) {
		t.Errorf("slow-query log carries no trace:\n%s", log)
	}

	traced, err := c.Range(RangeRequest{Floor: -1, Box: box, T0: 0, T1: 100, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Error("?trace=1 returned no trace under the slow-query regime")
	}
}

// TestRequestIDAndErrorBody checks the join key between client reports and
// server logs: a caller-supplied X-Request-Id is echoed in the response
// header and the structured error body.
func TestRequestIDAndErrorBody(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	ts := httptest.NewServer(NewServerWith(ds, ServerOptions{Logger: quietLogger(), Metrics: obs.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)

	req, err := http.NewRequest("GET", ts.URL+"/v1/range?box=bogus", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-supplied-42")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", res.StatusCode)
	}
	if got := res.Header.Get("X-Request-Id"); got != "caller-supplied-42" {
		t.Errorf("echoed request ID %q", got)
	}
	body, _ := io.ReadAll(res.Body)
	if !strings.Contains(string(body), `"request_id":"caller-supplied-42"`) {
		t.Errorf("error body lacks the request ID: %s", body)
	}
	if !strings.Contains(string(body), `"error":`) {
		t.Errorf("error body lacks a message: %s", body)
	}

	// Without a caller ID the server mints one: 16 hex chars.
	res2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res2.Body)
	res2.Body.Close()
	if id := res2.Header.Get("X-Request-Id"); len(id) != 16 {
		t.Errorf("generated request ID %q, want 16 hex chars", id)
	}
}

// TestMetricszRuntimeSeries checks a stock server's /metricsz carries the
// go_*/process_* runtime series, with live (sane) values — no opt-in
// required.
func TestMetricszRuntimeSeries(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	ts := httptest.NewServer(NewServerWith(ds, ServerOptions{Logger: quietLogger(), Metrics: obs.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)

	m := scrapeMetrics(t, ts.URL)
	for _, name := range []string{
		"go_goroutines", "go_gomaxprocs",
		"go_memstats_alloc_bytes", "go_memstats_sys_bytes",
		"go_memstats_heap_inuse_bytes",
	} {
		if v, ok := m[name]; !ok {
			t.Errorf("missing runtime series %s", name)
		} else if v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
	if runtime.GOOS == "linux" {
		rss, ok := m["process_resident_memory_bytes"]
		if !ok {
			t.Fatal("missing process_resident_memory_bytes on linux")
		}
		if rss < 1<<20 || rss > 1<<42 {
			t.Errorf("process_resident_memory_bytes = %g, not a plausible RSS", rss)
		}
		if m["process_open_fds"] < 1 {
			t.Errorf("process_open_fds = %g, want >= 1", m["process_open_fds"])
		}
	}
	if m["process_uptime_seconds"] < 0 {
		t.Errorf("process_uptime_seconds = %g, want >= 0", m["process_uptime_seconds"])
	}
}

// TestClientOptionsTransport checks NewClient produces a dedicated tuned
// transport (not a shared http.DefaultClient) and that its timeout actually
// fires — the knobs vitaload leans on for high-concurrency replay.
func TestClientOptionsTransport(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	ts := httptest.NewServer(NewServerWith(ds, ServerOptions{Logger: quietLogger(), Metrics: obs.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL, ClientOptions{Timeout: 5 * time.Second, MaxIdleConnsPerHost: 64, MaxConnsPerHost: 64})
	if c.HTTP == nil || c.HTTP == http.DefaultClient {
		t.Fatal("NewClient must build a dedicated http.Client")
	}
	tr, ok := c.HTTP.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T, want *http.Transport", c.HTTP.Transport)
	}
	if tr == http.DefaultTransport {
		t.Fatal("NewClient must clone, not share, http.DefaultTransport")
	}
	if tr.MaxIdleConnsPerHost != 64 || tr.MaxConnsPerHost != 64 {
		t.Errorf("transport knobs: idle/host=%d conns/host=%d, want 64/64", tr.MaxIdleConnsPerHost, tr.MaxConnsPerHost)
	}
	if _, err := c.Info(false); err != nil {
		t.Fatalf("tuned client request failed: %v", err)
	}

	// A stalled server must trip the timeout instead of hanging the caller.
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(stall.Close)
	slow := NewClient(stall.URL, ClientOptions{Timeout: 50 * time.Millisecond})
	start := time.Now()
	if _, err := slow.Info(false); err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not bound the request")
	}
}

// TestInfoBounds checks /v1/info carries the dataset's spatial bounding box
// on the JSON surface, identically local and remote.
func TestInfoBounds(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	ts := httptest.NewServer(NewServerWith(ds, ServerOptions{Logger: quietLogger(), Metrics: obs.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}

	local, err := ds.Info(false)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Info(false)
	if err != nil {
		t.Fatal(err)
	}
	if local.Bounds != remote.Bounds {
		t.Errorf("bounds differ: local %v remote %v", local.Bounds, remote.Bounds)
	}
	b := remote.Bounds
	if !(b.Min.X < b.Max.X && b.Min.Y < b.Max.Y) {
		t.Errorf("degenerate bounds %v for a multi-sample dataset", b)
	}
}

// TestHealthzBuildInfo checks /healthz now answers "what exactly is
// running", through the typed client.
func TestHealthzBuildInfo(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	ts := httptest.NewServer(NewServerWith(ds, ServerOptions{Logger: quietLogger(), Metrics: obs.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	if h.Version == "" || h.Go == "" {
		t.Errorf("build identity incomplete: %+v", h)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("negative uptime %g", h.UptimeSeconds)
	}
}
