package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// testSamples builds a deterministic dataset: objects wander across two
// floors and several partitions over 600 seconds, one sample per second, in
// global time order like generator output.
func testSamples() []trajectory.Sample {
	var out []trajectory.Sample
	parts := []string{"lobby", "office-a", "office-b", "corridor"}
	for t := 0; t < 600; t++ {
		for o := 0; o < 8; o++ {
			x := float64((t*7+o*13)%40) + float64(o)/8
			y := float64((t*3+o*5)%20) + float64(t%2)/4
			out = append(out, trajectory.Sample{
				ObjID: o,
				Loc: model.At("office", (o+t/300)%2, parts[(o+t/60)%len(parts)],
					geom.Pt(x, y)),
				T: float64(t),
			})
		}
	}
	return out
}

// writeDataset persists samples into dir as trajectory.vtb or trajectory.csv.
func writeDataset(t *testing.T, dir string, format storage.Format, samples []trajectory.Sample) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if format == storage.FormatVTB {
		w := colstore.NewTrajectoryWriterOptions(&buf, colstore.Options{BlockSize: 512})
		for _, s := range samples {
			if err := w.Write(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := storage.WriteTrajectoryCSV(&buf, samples); err != nil {
			t.Fatal(err)
		}
	}
	name := "trajectory" + format.Ext()
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func openTestDataset(t *testing.T, format storage.Format, cfg Config) *Dataset {
	t.Helper()
	dir := t.TempDir()
	writeDataset(t, dir, format, testSamples())
	ds, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

func TestDatasetSamplesMatchesScan(t *testing.T) {
	samples := testSamples()
	for _, format := range []storage.Format{storage.FormatVTB, storage.FormatCSV} {
		ds := openTestDataset(t, format, Config{})
		preds := []colstore.Predicate{
			{},
			colstore.TimeWindow(100, 160),
			{HasObj: true, Obj: 3, HasTime: true, T0: 50, T1: 400},
			{HasFloor: true, Floor: 1, HasBox: true,
				Box: geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(20, 10)}},
		}
		for pi, pred := range preds {
			var want []trajectory.Sample
			for _, s := range samples {
				if pred.MatchTrajectory(s) {
					want = append(want, s)
				}
			}
			// Run twice: the second pass must serve VTB blocks from cache and
			// still produce identical rows.
			for pass := 0; pass < 2; pass++ {
				got, stats, err := ds.Samples(pred)
				if err != nil {
					t.Fatalf("%s pred %d pass %d: %v", format, pi, pass, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s pred %d pass %d: %d rows, want %d", format, pi, pass, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] && format == storage.FormatVTB {
						t.Fatalf("%s pred %d pass %d: row %d differs", format, pi, pass, i)
					}
				}
				if format == storage.FormatVTB && pass == 1 && stats.CacheMisses != 0 {
					t.Errorf("pred %d second pass missed cache %d times", pi, stats.CacheMisses)
				}
			}
		}
	}
}

func TestDatasetParallelismEquivalence(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, storage.FormatVTB, testSamples())
	pred := colstore.TimeWindow(50, 450)
	var want []trajectory.Sample
	for _, p := range []int{1, 2, 8} {
		ds, err := Open(dir, Config{Parallelism: p, CacheBytes: -1, IndexEntries: -1})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ds.Samples(pred)
		ds.Close()
		if err != nil {
			t.Fatal(err)
		}
		if p == 1 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d rows, want %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("p=%d: row %d differs", p, i)
			}
		}
	}
}

// TestServerParity is the core serving guarantee: for every operator, the
// response obtained over HTTP renders byte-identically to the one computed
// locally — on both storage formats.
func TestServerParity(t *testing.T) {
	for _, format := range []storage.Format{storage.FormatVTB, storage.FormatCSV} {
		ds := openTestDataset(t, format, Config{})
		ts := httptest.NewServer(NewServer(ds).Handler())
		t.Cleanup(ts.Close)
		c := &Client{Base: ts.URL}

		box := geom.BBox{Min: geom.Pt(1.5, 0.25), Max: geom.Pt(17.75, 9.5)}
		{
			q := RangeRequest{Floor: 0, Box: box, T0: 33.5, T1: 147.25}
			local, err := ds.Range(q)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := c.Range(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(local.Hits) == 0 {
				t.Fatalf("%s: range query matched nothing", format)
			}
			compareText(t, string(format)+"/range", local, remote)
		}
		{
			q := KNNRequest{Floor: 1, At: geom.Pt(10.125, 7.625), T: 420.5, K: 4}
			local, err := ds.KNN(q)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := c.KNN(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(local.Neighbors) == 0 {
				t.Fatalf("%s: knn query matched nothing", format)
			}
			compareText(t, string(format)+"/knn", local, remote)
		}
		{
			q := DensityRequest{T: 250}
			local, err := ds.Density(q)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := c.Density(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(local.Counts) == 0 {
				t.Fatalf("%s: density query matched nothing", format)
			}
			compareText(t, string(format)+"/density", local, remote)
		}
		{
			q := TrajRequest{Obj: 5, T0: 100, T1: 500}
			local, err := ds.Traj(q)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := c.Traj(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(local.Samples) == 0 {
				t.Fatalf("%s: traj query matched nothing", format)
			}
			compareText(t, string(format)+"/traj", local, remote)
		}
		{
			q := DwellRequest{Floor: -1, T0: 50, T1: 450}
			local, err := ds.Dwell(q)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := c.Dwell(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(local.Rooms) == 0 {
				t.Fatalf("%s: dwell query matched nothing", format)
			}
			compareText(t, string(format)+"/dwell", local, remote)
		}
		{
			local, err := ds.Info(false)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := c.Info(false)
			if err != nil {
				t.Fatal(err)
			}
			compareText(t, string(format)+"/info", local, remote)
		}
	}
}

func compareText(t *testing.T, name string, local, remote interface {
	WriteText(w io.Writer) error
}) {
	t.Helper()
	var lb, rb bytes.Buffer
	if err := local.WriteText(&lb); err != nil {
		t.Fatalf("%s local render: %v", name, err)
	}
	if err := remote.WriteText(&rb); err != nil {
		t.Fatalf("%s remote render: %v", name, err)
	}
	if !bytes.Equal(lb.Bytes(), rb.Bytes()) {
		t.Errorf("%s output differs:\nlocal:\n%s\nremote:\n%s", name, lb.String(), rb.String())
	}
}

func TestServerStatsAndHealth(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	srv := NewServer(ds)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}

	if !c.Healthy() {
		t.Fatal("healthz failed")
	}
	q := RangeRequest{Floor: -1, Box: geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(40, 20)}, T0: 0, T1: 100}
	first, err := c.Range(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.IndexCached {
		t.Error("first request claims a cached index")
	}
	if first.Stats.CacheMisses == 0 || first.Stats.Scan.BlocksScanned == 0 {
		t.Errorf("first request shows no block work: %+v", first.Stats)
	}
	if first.Stats.Scan.BlocksPruned == 0 {
		t.Errorf("windowed request pruned nothing: %+v", first.Stats)
	}
	second, err := c.Range(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.IndexCached {
		t.Errorf("repeat request did not hit the index cache: %+v", second.Stats)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests["range"] != 2 {
		t.Errorf("statsz range count = %d, want 2", st.Requests["range"])
	}
	if st.IndexHits != 1 {
		t.Errorf("statsz index hits = %d, want 1", st.IndexHits)
	}
	if st.Format != "vtb" || st.Samples != ds.Len() || st.Blocks == 0 {
		t.Errorf("statsz dataset identity wrong: %+v", st)
	}
	if st.Cache.Misses == 0 {
		t.Errorf("statsz cache counters empty: %+v", st.Cache)
	}
}

func TestServerBadRequests(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	ts := httptest.NewServer(NewServer(ds).Handler())
	t.Cleanup(ts.Close)

	for _, path := range []string{
		"/v1/range?box=1,2,3",        // malformed box
		"/v1/range?box=a,b,c,d",      // non-numeric box
		"/v1/knn?at=5",               // malformed point
		"/v1/knn?at=1,2&k=x",         // non-numeric k
		"/v1/density?t=zzz",          // non-numeric instant
		"/v1/traj?obj=nope",          // non-numeric object
		"/v1/range?box=0,0,1,1&t0=x", // non-numeric window
	} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(res.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decoding error body: %v", path, err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest || e.Error == "" {
			t.Errorf("%s: status %d, error %q; want 400 with message", path, res.StatusCode, e.Error)
		}
	}
}

// TestServerGracefulShutdown drives Shutdown while a slow request is in
// flight: the request must complete successfully and Serve must return nil.
func TestServerGracefulShutdown(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	srv := NewServer(ds)
	srv.testDelay = 300 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	c := &Client{Base: "http://" + l.Addr().String()}
	waitHealthy(t, c)

	var wg sync.WaitGroup
	var reqErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, reqErr = c.Info(false)
	}()
	time.Sleep(100 * time.Millisecond) // let the slow request reach the handler

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if reqErr != nil {
		t.Errorf("in-flight request failed during drain: %v", reqErr)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve returned %v after clean shutdown", err)
	}
	// The listener is closed: new connections must fail.
	if c.Healthy() {
		t.Error("server still answering after shutdown")
	}
}

// TestRunUntilSignal sends this process a real SIGTERM while a request is in
// flight and checks the daemon loop drains and exits cleanly.
func TestRunUntilSignal(t *testing.T) {
	ds := openTestDataset(t, storage.FormatVTB, Config{})
	srv := NewServer(ds)
	srv.testDelay = 300 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() {
		runErr <- srv.RunUntilSignal(context.Background(), l, 5*time.Second, syscall.SIGTERM)
	}()

	c := &Client{Base: "http://" + l.Addr().String()}
	waitHealthy(t, c)

	var wg sync.WaitGroup
	var reqErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, reqErr = c.Info(false)
	}()
	time.Sleep(100 * time.Millisecond)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("RunUntilSignal: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunUntilSignal did not return after SIGTERM")
	}
	wg.Wait()
	if reqErr != nil {
		t.Errorf("in-flight request failed during signal drain: %v", reqErr)
	}
}

func waitHealthy(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Healthy() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

func TestParseFormatRoundTrip(t *testing.T) {
	boxes := []geom.BBox{
		{Min: geom.Pt(0, 0), Max: geom.Pt(20, 15)},
		{Min: geom.Pt(-3.25, 0.1), Max: geom.Pt(1e18, 0.30000000000000004)},
	}
	for _, b := range boxes {
		got, err := ParseBox(FormatBox(b))
		if err != nil {
			t.Fatal(err)
		}
		if got != b {
			t.Errorf("box round trip: got %+v, want %+v", got, b)
		}
	}
	p := geom.Pt(10.7, 7.500000000000001)
	got, err := ParsePoint(FormatPoint(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("point round trip: got %+v, want %+v", got, p)
	}
	if _, err := ParseBox("1,2,3"); err == nil {
		t.Error("short box parsed")
	}
	if _, err := ParsePoint("x,y"); err == nil {
		t.Error("non-numeric point parsed")
	}
}
