package serve

import (
	"container/list"
	"sync"

	"vita/internal/colstore"
	"vita/internal/trajectory"
)

// blockKey names one decoded block: which segment it came from and its block
// index within that segment's file. Segment IDs are never reused (the log
// reserves them monotonically; single-file datasets are segment 0 forever),
// so a key can never alias a block from a different file — which is what
// makes invalidation after compaction precise: evict the dead segment IDs,
// keep everything else warm.
type blockKey struct {
	seg   uint64
	block int
}

// BlockCache is a size-bounded LRU cache of decoded VTB blocks, keyed by
// (segment ID, block index). It holds fully decoded, unfiltered column
// batches — the shape block decode produces, and ~25% smaller resident than
// the equivalent []Sample — so one cached decode serves every predicate;
// callers filter rows with colstore.Predicate.MatchTrajectory over Batch.Row.
// Byte accounting is the decoded-batch footprint
// (colstore.TrajectoryBatch.Bytes). Safe for concurrent use.
type BlockCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[blockKey]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   blockKey
	batch *colstore.TrajectoryBatch
	bytes int64
}

// NewBlockCache returns a cache that holds at most maxBytes of decoded
// batches. maxBytes <= 0 disables caching: every Get misses and Put is a
// no-op.
func NewBlockCache(maxBytes int64) *BlockCache {
	return &BlockCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[blockKey]*list.Element),
	}
}

// Get returns the cached batch for a segment's block and marks it most
// recently used. The returned batch is shared — callers must not modify it.
func (c *BlockCache) Get(seg uint64, block int) (*colstore.TrajectoryBatch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[blockKey{seg, block}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).batch, true
}

// Put inserts the decoded batch for a segment's block, evicting
// least-recently-used entries until the byte budget holds. A block larger
// than the whole budget is not cached at all.
func (c *BlockCache) Put(seg uint64, block int, batch *colstore.TrajectoryBatch) {
	size := batch.Bytes()
	key := blockKey{seg, block}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.bytes += size - el.Value.(*cacheEntry).bytes
		el.Value.(*cacheEntry).batch = batch
		el.Value.(*cacheEntry).bytes = size
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, batch: batch, bytes: size})
		c.bytes += size
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// EvictSegments drops every cached block belonging to one of the given
// segment IDs — called when a manifest refresh retires segments (compaction
// superseded them) — and returns how many entries were dropped. Blocks of
// surviving segments stay warm; these drops are invalidations, not budget
// pressure, so the evictions counter is untouched.
func (c *BlockCache) EvictSegments(dead []uint64) int64 {
	if len(dead) == 0 {
		return 0
	}
	gone := make(map[uint64]bool, len(dead))
	for _, id := range dead {
		gone[id] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var dropped int64
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); gone[e.key.seg] {
			c.ll.Remove(el)
			delete(c.entries, e.key)
			c.bytes -= e.bytes
			dropped++
		}
		el = next
	}
	return dropped
}

// CacheStats is a point-in-time snapshot of cache effectiveness and size.
type CacheStats struct {
	Blocks    int   `json:"blocks"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats returns a snapshot of the cache counters.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Blocks:    len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// keysMRU returns the cached block keys from most to least recently used
// (test hook for eviction-order assertions).
func (c *BlockCache) keysMRU() []blockKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]blockKey, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// sampleFixedBytes approximates the in-memory footprint of one sample minus
// its string payloads: the struct itself (ObjID, Location with two string
// headers, Point, HasPoint, T) rounded to 96 bytes.
const sampleFixedBytes = 96

// samplesBytes approximates the resident size of materialized rows: fixed
// struct cost per row plus the string bytes they reference. The figure feeds
// the index cache's byte budget; it intentionally ignores allocator slack
// and string interning, so treat budgets as approximate.
func samplesBytes(rows []trajectory.Sample) int64 {
	n := int64(len(rows)) * sampleFixedBytes
	for i := range rows {
		n += int64(len(rows[i].Loc.Building) + len(rows[i].Loc.Partition))
	}
	return n
}
