package serve

import (
	"container/list"
	"sync"

	"vita/internal/colstore"
	"vita/internal/trajectory"
)

// BlockCache is a size-bounded LRU cache of decoded VTB blocks, keyed by
// block index within the owning dataset's trajectory file. It holds fully
// decoded, unfiltered column batches — the shape block decode produces, and
// ~25% smaller resident than the equivalent []Sample — so one cached decode
// serves every predicate; callers filter rows with
// colstore.Predicate.MatchTrajectory over Batch.Row. Byte accounting is the
// decoded-batch footprint (colstore.TrajectoryBatch.Bytes). Safe for
// concurrent use.
type BlockCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[int]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	block int
	batch *colstore.TrajectoryBatch
	bytes int64
}

// NewBlockCache returns a cache that holds at most maxBytes of decoded
// batches. maxBytes <= 0 disables caching: every Get misses and Put is a
// no-op.
func NewBlockCache(maxBytes int64) *BlockCache {
	return &BlockCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[int]*list.Element),
	}
}

// Get returns the cached batch for a block and marks it most recently used.
// The returned batch is shared — callers must not modify it.
func (c *BlockCache) Get(block int) (*colstore.TrajectoryBatch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[block]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).batch, true
}

// Put inserts the decoded batch for a block, evicting least-recently-used
// entries until the byte budget holds. A block larger than the whole budget
// is not cached at all.
func (c *BlockCache) Put(block int, batch *colstore.TrajectoryBatch) {
	size := batch.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxBytes {
		return
	}
	if el, ok := c.entries[block]; ok {
		c.bytes += size - el.Value.(*cacheEntry).bytes
		el.Value.(*cacheEntry).batch = batch
		el.Value.(*cacheEntry).bytes = size
		c.ll.MoveToFront(el)
	} else {
		c.entries[block] = c.ll.PushFront(&cacheEntry{block: block, batch: batch, bytes: size})
		c.bytes += size
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, e.block)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness and size.
type CacheStats struct {
	Blocks    int   `json:"blocks"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats returns a snapshot of the cache counters.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Blocks:    len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// keysMRU returns the cached block indexes from most to least recently used
// (test hook for eviction-order assertions).
func (c *BlockCache) keysMRU() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).block)
	}
	return out
}

// sampleFixedBytes approximates the in-memory footprint of one sample minus
// its string payloads: the struct itself (ObjID, Location with two string
// headers, Point, HasPoint, T) rounded to 96 bytes.
const sampleFixedBytes = 96

// samplesBytes approximates the resident size of materialized rows: fixed
// struct cost per row plus the string bytes they reference. The figure feeds
// the index cache's byte budget; it intentionally ignores allocator slack
// and string interning, so treat budgets as approximate.
func samplesBytes(rows []trajectory.Sample) int64 {
	n := int64(len(rows)) * sampleFixedBytes
	for i := range rows {
		n += int64(len(rows[i].Loc.Building) + len(rows[i].Loc.Partition))
	}
	return n
}
