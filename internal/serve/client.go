package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is the remote counterpart of Dataset: the same operator methods
// with the same request/response types, executed by a running vitaserve
// daemon. Query parameters are rendered with full float64 round-trip
// precision, so a remote query sees bit-identical parameters — and returns
// bit-identical results — to a local one.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:7617".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// ClientOptions tunes the HTTP transport behind a Client. The zero value
// keeps stdlib defaults, which cap idle connections at 2 per host — far too
// few for a load generator fanning hundreds of concurrent requests at one
// server (every extra request pays a fresh TCP handshake).
type ClientOptions struct {
	// Timeout bounds one whole request (dial + write + read). Zero means no
	// timeout.
	Timeout time.Duration
	// MaxIdleConnsPerHost raises the per-host idle keep-alive pool (stdlib
	// default 2). Set it to at least the expected concurrency.
	MaxIdleConnsPerHost int
	// MaxConnsPerHost caps total connections per host, 0 = unlimited. Use it
	// to hold a closed-loop load test at exactly N connections.
	MaxConnsPerHost int
}

// NewClient returns a Client for the server at base with a dedicated
// transport tuned by opts. The transport is a clone of
// http.DefaultTransport, so proxy and TLS environment handling carry over.
func NewClient(base string, opts ClientOptions) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	if opts.MaxIdleConnsPerHost > 0 {
		tr.MaxIdleConnsPerHost = opts.MaxIdleConnsPerHost
		if tr.MaxIdleConns > 0 && tr.MaxIdleConns < opts.MaxIdleConnsPerHost {
			tr.MaxIdleConns = opts.MaxIdleConnsPerHost
		}
	}
	tr.MaxConnsPerHost = opts.MaxConnsPerHost
	return &Client{
		Base: base,
		HTTP: &http.Client{Transport: tr, Timeout: opts.Timeout},
	}
}

// setTrace adds the ?trace=1 ask to the query when the request wants a
// span tree back.
func setTrace(v url.Values, trace bool) {
	if trace {
		v.Set("trace", "1")
	}
}

// Range executes a range query on the server.
func (c *Client) Range(q RangeRequest) (*RangeResponse, error) {
	v := url.Values{}
	v.Set("floor", strconv.Itoa(q.Floor))
	v.Set("box", FormatBox(q.Box))
	v.Set("t0", formatFloats(q.T0))
	v.Set("t1", formatFloats(q.T1))
	setTrace(v, q.Trace)
	var resp RangeResponse
	if err := c.get("/v1/range", v, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// KNN executes a k-nearest-neighbors query on the server.
func (c *Client) KNN(q KNNRequest) (*KNNResponse, error) {
	v := url.Values{}
	v.Set("floor", strconv.Itoa(q.Floor))
	v.Set("at", FormatPoint(q.At))
	v.Set("t", formatFloats(q.T))
	v.Set("k", strconv.Itoa(q.K))
	setTrace(v, q.Trace)
	var resp KNNResponse
	if err := c.get("/v1/knn", v, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Density executes a snapshot-density query on the server.
func (c *Client) Density(q DensityRequest) (*DensityResponse, error) {
	v := url.Values{}
	v.Set("t", formatFloats(q.T))
	setTrace(v, q.Trace)
	var resp DensityResponse
	if err := c.get("/v1/density", v, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Traj executes a trajectory-retrieval query on the server.
func (c *Client) Traj(q TrajRequest) (*TrajResponse, error) {
	v := url.Values{}
	v.Set("obj", strconv.Itoa(q.Obj))
	v.Set("t0", formatFloats(q.T0))
	v.Set("t1", formatFloats(q.T1))
	setTrace(v, q.Trace)
	var resp TrajResponse
	if err := c.get("/v1/traj", v, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Dwell executes a dwell-time query on the server.
func (c *Client) Dwell(q DwellRequest) (*DwellResponse, error) {
	v := url.Values{}
	v.Set("floor", strconv.Itoa(q.Floor))
	v.Set("t0", formatFloats(q.T0))
	v.Set("t1", formatFloats(q.T1))
	setTrace(v, q.Trace)
	var resp DwellResponse
	if err := c.get("/v1/dwell", v, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Info fetches the dataset summary from the server.
func (c *Client) Info(trace bool) (*InfoResponse, error) {
	v := url.Values{}
	setTrace(v, trace)
	var resp InfoResponse
	if err := c.get("/v1/info", v, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's lifetime counters (/statsz).
func (c *Client) Stats() (*ServerStats, error) {
	var resp ServerStats
	if err := c.get("/statsz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthy reports whether the server answers /healthz.
func (c *Client) Healthy() bool {
	var resp Health
	return c.get("/healthz", nil, &resp) == nil && resp.Status == "ok"
}

// Health fetches the server's liveness and build identity (/healthz).
func (c *Client) Health() (*Health, error) {
	var resp Health
	if err := c.get("/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) get(path string, v url.Values, out any) error {
	u := strings.TrimRight(c.Base, "/") + path
	if len(v) > 0 {
		u += "?" + v.Encode()
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	res, err := hc.Get(u)
	if err != nil {
		return fmt.Errorf("serve: GET %s: %w", path, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(res.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s: %s (HTTP %d)", path, e.Error, res.StatusCode)
		}
		return fmt.Errorf("serve: %s: HTTP %d", path, res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: %s: decode response: %w", path, err)
	}
	return nil
}
