package device

import (
	"strings"
	"testing"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rng"
)

func testBuilding(t *testing.T) *model.Building {
	t.Helper()
	b := model.NewBuilding("tb", "Test Building")
	f := model.NewFloor(0, 0, 3)
	parts := []*model.Partition{
		{ID: "R1", Floor: 0, Polygon: geom.Rect(0, 0, 12, 10)},
		{ID: "R2", Floor: 0, Polygon: geom.Rect(12, 0, 24, 10)},
		{ID: "HALL", Floor: 0, Polygon: geom.Rect(0, 10, 24, 14), Kind: model.KindHallway},
	}
	for _, p := range parts {
		if err := f.AddPartition(p); err != nil {
			t.Fatal(err)
		}
	}
	f.Doors = append(f.Doors,
		&model.Door{ID: "D1", Floor: 0, Position: geom.Pt(6, 10), Width: 1,
			Partitions: [2]string{"R1", "HALL"}},
		&model.Door{ID: "D2", Floor: 0, Position: geom.Pt(18, 10), Width: 1,
			Partitions: [2]string{"R2", "HALL"}},
	)
	if err := b.AddFloor(f); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseType(t *testing.T) {
	for in, want := range map[string]Type{"wifi": WiFi, "bt": Bluetooth, "rfid": RFID} {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseType("laser"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestParseDeploymentModel(t *testing.T) {
	if m, err := ParseDeploymentModel("coverage"); err != nil || m != Coverage {
		t.Error("coverage parse failed")
	}
	if m, err := ParseDeploymentModel("check-point"); err != nil || m != CheckPoint {
		t.Error("check-point parse failed")
	}
	if _, err := ParseDeploymentModel("random"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestDefaultPropertiesOrdering(t *testing.T) {
	w, bt, rf := DefaultProperties(WiFi), DefaultProperties(Bluetooth), DefaultProperties(RFID)
	if !(w.DetectionRange > bt.DetectionRange && bt.DetectionRange > rf.DetectionRange) {
		t.Errorf("range ordering broken: wifi=%v bt=%v rfid=%v",
			w.DetectionRange, bt.DetectionRange, rf.DetectionRange)
	}
}

func TestCoverageDeployment(t *testing.T) {
	b := testBuilding(t)
	r := rng.New(5)
	devs, err := Deploy(b, 0, DeploySpec{Model: Coverage, Type: WiFi, Count: 6}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 6 {
		t.Fatalf("deployed %d, want 6", len(devs))
	}
	f := b.Floors[0]
	// Devices must sit inside some partition and near a wall.
	for _, d := range devs {
		if _, ok := f.PartitionAt(d.Position); !ok {
			t.Errorf("device %s outside all partitions at %v", d.ID, d.Position)
		}
	}
	if md := MeanWallDistance(f, devs); md > 1.0 {
		t.Errorf("coverage devices too far from walls: mean %v", md)
	}
	if sep := MinPairwiseDistance(devs); sep < 2 {
		t.Errorf("coverage devices too close together: min separation %v", sep)
	}
	// IDs unique and typed.
	seen := map[string]bool{}
	for _, d := range devs {
		if seen[d.ID] {
			t.Errorf("duplicate ID %s", d.ID)
		}
		seen[d.ID] = true
		if !strings.Contains(d.ID, "wifi") {
			t.Errorf("ID %s missing type", d.ID)
		}
	}
}

func TestCoverageRequiresCount(t *testing.T) {
	b := testBuilding(t)
	if _, err := Deploy(b, 0, DeploySpec{Model: Coverage, Type: WiFi}, rng.New(1)); err == nil {
		t.Error("coverage without count accepted")
	}
}

func TestCheckpointDeployment(t *testing.T) {
	b := testBuilding(t)
	devs, err := Deploy(b, 0, DeploySpec{Model: CheckPoint, Type: RFID, HotspotMinArea: 100}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Two doors, plus hotspots for partitions >= 100 m² (R1=120, R2=120).
	if len(devs) != 4 {
		t.Fatalf("deployed %d, want 4 (2 doors + 2 hotspots)", len(devs))
	}
	// First devices sit exactly at the door positions.
	if !devs[0].Position.Eq(geom.Pt(6, 10)) || !devs[1].Position.Eq(geom.Pt(18, 10)) {
		t.Errorf("door devices misplaced: %v, %v", devs[0].Position, devs[1].Position)
	}
	// Cap respected.
	capped, err := Deploy(b, 0, DeploySpec{Model: CheckPoint, Type: RFID, Count: 2}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Errorf("cap ignored: %d", len(capped))
	}
}

func TestDeployUnknownFloor(t *testing.T) {
	b := testBuilding(t)
	if _, err := Deploy(b, 9, DeploySpec{Model: Coverage, Type: WiFi, Count: 2}, rng.New(1)); err == nil {
		t.Error("unknown floor accepted")
	}
}

func TestDeviceInRangeAndBounds(t *testing.T) {
	d := &Device{ID: "x", Position: geom.Pt(10, 10), Props: Properties{DetectionRange: 5}}
	if !d.InRange(geom.Pt(13, 13)) {
		t.Error("in-range point rejected")
	}
	if d.InRange(geom.Pt(20, 20)) {
		t.Error("out-of-range point accepted")
	}
	bb := d.Bounds()
	if !bb.Contains(geom.Pt(5, 5)) || !bb.Contains(geom.Pt(15, 15)) {
		t.Error("bounds do not cover the detection disc")
	}
}

func TestPropsOverride(t *testing.T) {
	b := testBuilding(t)
	props := Properties{DetectionRange: 2.5, SampleInterval: 7, CalibrationA: -70, PathLossExponent: 3}
	devs, err := Deploy(b, 0, DeploySpec{Model: Coverage, Type: WiFi, Count: 2, Props: &props}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		if d.Props != props {
			t.Errorf("props not applied: %+v", d.Props)
		}
	}
}

func TestDeterministicDeployment(t *testing.T) {
	b := testBuilding(t)
	a, err := Deploy(b, 0, DeploySpec{Model: Coverage, Type: WiFi, Count: 5}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Deploy(b, 0, DeploySpec{Model: Coverage, Type: WiFi, Count: 5}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Position.Eq(c[i].Position) {
			t.Fatalf("deployment not deterministic at %d: %v vs %v", i, a[i].Position, c[i].Position)
		}
	}
}
