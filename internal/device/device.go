// Package device models indoor positioning devices (Wi-Fi access points,
// Bluetooth beacons, RFID readers) and the two deployment models of paper
// §3.2: the coverage model (wall-adjacent, maximally separated — how access
// points are installed) and the check-point model (entrances and hotspots —
// how RFID readers are installed).
package device

import (
	"fmt"

	"vita/internal/geom"
)

// Type is the radio technology of a positioning device.
type Type int

// Device types supported by the toolkit (paper §1: "Wi-Fi, Bluetooth, RFID,
// etc.").
const (
	WiFi Type = iota
	Bluetooth
	RFID
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case WiFi:
		return "wifi"
	case Bluetooth:
		return "bluetooth"
	case RFID:
		return "rfid"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseType parses a device type name.
func ParseType(s string) (Type, error) {
	switch s {
	case "wifi", "wi-fi", "WiFi":
		return WiFi, nil
	case "bluetooth", "bt", "ble":
		return Bluetooth, nil
	case "rfid", "RFID":
		return RFID, nil
	default:
		return 0, fmt.Errorf("device: unknown type %q", s)
	}
}

// Properties are the type-dependent radio properties of a device (paper §2:
// "type-dependent properties (e.g., the detection range of RFID readers)").
type Properties struct {
	// DetectionRange is the maximum distance (m) at which the device observes
	// an object.
	DetectionRange float64
	// SampleInterval is the seconds between two detection operations.
	SampleInterval float64
	// CalibrationA is the RSSI (dBm) measured at 1 m — the A term of the path
	// loss model.
	CalibrationA float64
	// PathLossExponent is the n term of the path loss model for this radio.
	PathLossExponent float64
}

// DefaultProperties returns the per-type defaults ("a default setting of
// these variables is provided for a quick customization", §3.2).
func DefaultProperties(t Type) Properties {
	switch t {
	case WiFi:
		return Properties{DetectionRange: 35, SampleInterval: 2, CalibrationA: -38, PathLossExponent: 2.2}
	case Bluetooth:
		return Properties{DetectionRange: 12, SampleInterval: 1, CalibrationA: -55, PathLossExponent: 2.0}
	case RFID:
		return Properties{DetectionRange: 3, SampleInterval: 0.5, CalibrationA: -60, PathLossExponent: 1.8}
	default:
		return Properties{DetectionRange: 10, SampleInterval: 2, CalibrationA: -50, PathLossExponent: 2.0}
	}
}

// Device is one deployed positioning device.
type Device struct {
	ID       string
	Type     Type
	Floor    int
	Position geom.Point
	Props    Properties
}

// Bounds implements index.Item: the detection disc's bounding box.
func (d *Device) Bounds() geom.BBox {
	return geom.BBox{Min: d.Position, Max: d.Position}.Expand(d.Props.DetectionRange)
}

// InRange reports whether a point on the same floor is within detection
// range.
func (d *Device) InRange(p geom.Point) bool {
	return d.Position.Dist(p) <= d.Props.DetectionRange
}
