package device

import (
	"fmt"
	"math"
	"sort"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rng"
)

// DeploymentModel selects how devices are placed on a floor (paper §3.2).
type DeploymentModel int

// Deployment models.
const (
	// Coverage places devices close to walls (for power supply) and
	// maximally separated from each other (for signal coverage) — the model
	// commonly used for access points.
	Coverage DeploymentModel = iota
	// CheckPoint places devices at entrances to rooms and at hotspots inside
	// large rooms.
	CheckPoint
)

// String implements fmt.Stringer.
func (m DeploymentModel) String() string {
	if m == CheckPoint {
		return "check-point"
	}
	return "coverage"
}

// ParseDeploymentModel parses a deployment model name.
func ParseDeploymentModel(s string) (DeploymentModel, error) {
	switch s {
	case "coverage":
		return Coverage, nil
	case "check-point", "checkpoint":
		return CheckPoint, nil
	default:
		return 0, fmt.Errorf("device: unknown deployment model %q", s)
	}
}

// DeploySpec configures one deployment run on one floor.
type DeploySpec struct {
	Model DeploymentModel
	Type  Type
	// Count is the number of devices to deploy (Coverage) or the cap on
	// devices (CheckPoint; 0 = no cap).
	Count int
	// Props overrides the per-type defaults when non-zero.
	Props *Properties
	// WallOffset is how far inside the wall devices sit (Coverage).
	WallOffset float64
	// HotspotMinArea is the partition area (m²) above which CheckPoint adds
	// an in-room hotspot device at the partition center.
	HotspotMinArea float64
}

// Deploy places devices on the given floor of the building according to the
// spec and returns them. IDs are prefixed with the floor and type. The
// generator r drives tie-breaking; deployment is deterministic for a fixed
// seed.
func Deploy(b *model.Building, floor int, spec DeploySpec, r *rng.Rand) ([]*Device, error) {
	f, ok := b.Floor(floor)
	if !ok {
		return nil, fmt.Errorf("device: building %s has no floor %d", b.ID, floor)
	}
	props := DefaultProperties(spec.Type)
	if spec.Props != nil {
		props = *spec.Props
	}
	if spec.WallOffset <= 0 {
		spec.WallOffset = 0.3
	}
	if spec.HotspotMinArea <= 0 {
		spec.HotspotMinArea = 80
	}

	var positions []geom.Point
	switch spec.Model {
	case Coverage:
		if spec.Count <= 0 {
			return nil, fmt.Errorf("device: coverage deployment needs a positive Count")
		}
		positions = coveragePositions(f, spec.Count, spec.WallOffset, r)
	case CheckPoint:
		positions = checkpointPositions(f, spec.HotspotMinArea)
		if spec.Count > 0 && len(positions) > spec.Count {
			positions = positions[:spec.Count]
		}
	default:
		return nil, fmt.Errorf("device: unknown deployment model %d", spec.Model)
	}

	out := make([]*Device, len(positions))
	for i, p := range positions {
		out[i] = &Device{
			ID:       fmt.Sprintf("%s-F%d-%s-%d", b.ID, floor, spec.Type, i+1),
			Type:     spec.Type,
			Floor:    floor,
			Position: p,
			Props:    props,
		}
	}
	return out, nil
}

// coveragePositions implements the coverage model: candidate points along
// partition walls, then farthest-point sampling for maximum separation.
func coveragePositions(f *model.Floor, count int, wallOffset float64, r *rng.Rand) []geom.Point {
	candidates := wallCandidates(f, wallOffset)
	if len(candidates) == 0 {
		return nil
	}
	if count >= len(candidates) {
		return candidates
	}
	// Farthest-point sampling: start from a random candidate, greedily add
	// the candidate maximizing the distance to the chosen set.
	chosen := make([]geom.Point, 0, count)
	chosen = append(chosen, candidates[r.Intn(len(candidates))])
	minDist := make([]float64, len(candidates))
	for i, c := range candidates {
		minDist[i] = c.Dist(chosen[0])
	}
	for len(chosen) < count {
		bestI := 0
		bestD := -1.0
		for i, d := range minDist {
			if d > bestD {
				bestD, bestI = d, i
			}
		}
		p := candidates[bestI]
		chosen = append(chosen, p)
		for i, c := range candidates {
			if d := c.Dist(p); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return chosen
}

// wallCandidates returns points along every partition boundary, pushed
// slightly toward the partition interior (devices hang on walls).
func wallCandidates(f *model.Floor, offset float64) []geom.Point {
	const spacing = 4.0 // candidate every 4 m of wall
	var out []geom.Point
	for _, p := range f.Partitions {
		center := p.Center()
		for _, e := range p.Polygon.Edges() {
			n := int(e.Length()/spacing) + 1
			for i := 0; i <= n; i++ {
				pt := e.At(float64(i) / float64(n))
				// Push toward the partition center so the device sits inside.
				dir := center.Sub(pt).Unit()
				in := pt.Add(dir.Scale(offset))
				if p.Contains(in) {
					out = append(out, in)
				}
			}
		}
	}
	return out
}

// checkpointPositions implements the check-point model: a device at every
// door (room entrance) plus one at the center of each large partition
// (hotspot). Results are ordered: doors first (by ID), then hotspots by
// decreasing area.
func checkpointPositions(f *model.Floor, hotspotMinArea float64) []geom.Point {
	doors := append([]*model.Door(nil), f.Doors...)
	sort.Slice(doors, func(i, j int) bool { return doors[i].ID < doors[j].ID })
	var out []geom.Point
	for _, d := range doors {
		if d.Name == "virtual pass-through" {
			continue // decomposition artifacts are not real entrances
		}
		out = append(out, d.Position)
	}
	type hs struct {
		pt   geom.Point
		area float64
	}
	var hotspots []hs
	for _, p := range f.Partitions {
		if a := p.Polygon.Area(); a >= hotspotMinArea {
			hotspots = append(hotspots, hs{pt: p.Center(), area: a})
		}
	}
	sort.Slice(hotspots, func(i, j int) bool {
		if hotspots[i].area != hotspots[j].area {
			return hotspots[i].area > hotspots[j].area
		}
		return less(hotspots[i].pt, hotspots[j].pt)
	})
	for _, h := range hotspots {
		out = append(out, h.pt)
	}
	return out
}

func less(a, b geom.Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// MinPairwiseDistance returns the smallest pairwise distance among device
// positions — the separation statistic reported by experiment E2.
func MinPairwiseDistance(devs []*Device) float64 {
	best := math.Inf(1)
	for i := 0; i < len(devs); i++ {
		for j := i + 1; j < len(devs); j++ {
			if d := devs[i].Position.Dist(devs[j].Position); d < best {
				best = d
			}
		}
	}
	return best
}

// MeanWallDistance returns the mean distance from each device to the nearest
// partition boundary on its floor — coverage-model devices should be
// wall-adjacent.
func MeanWallDistance(f *model.Floor, devs []*Device) float64 {
	if len(devs) == 0 {
		return 0
	}
	var total float64
	for _, d := range devs {
		best := math.Inf(1)
		for _, p := range f.Partitions {
			if dd := p.Polygon.DistToBoundary(d.Position); dd < best {
				best = dd
			}
		}
		total += best
	}
	return total / float64(len(devs))
}
