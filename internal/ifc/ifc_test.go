package ifc

import (
	"math"
	"strings"
	"testing"

	"vita/internal/model"
)

const tinyIFC = `ISO-10303-21;
HEADER;
FILE_DESCRIPTION(('test'),'2;1');
FILE_NAME('tiny.ifc','2016-09-05',(''),(''),'v','v','');
FILE_SCHEMA(('IFC2X3'));
ENDSEC;
DATA;
#1=IFCBUILDING('tiny','Tiny Building');
#2=IFCBUILDINGSTOREY('tiny-F0',#1,'Ground',0,0.,3.);
#10=IFCCARTESIANPOINT((0.,0.));
#11=IFCCARTESIANPOINT((10.,0.));
#12=IFCCARTESIANPOINT((10.,8.));
#13=IFCCARTESIANPOINT((0.,8.));
#20=IFCPOLYLINE((#10,#11,#12,#13));
#30=IFCSPACE('R1',#2,'Room One',#20);
#40=IFCCARTESIANPOINT((10.,4.));
#41=IFCDOOR('D1',#2,'Door One',#40,0.9);
ENDSEC;
END-ISO-10303-21;
`

func TestParseTiny(t *testing.T) {
	f, err := Parse(tinyIFC)
	if err != nil {
		t.Fatal(err)
	}
	if f.SchemaName != "IFC2X3" {
		t.Errorf("schema = %q", f.SchemaName)
	}
	if f.FileName != "tiny.ifc" {
		t.Errorf("file name = %q", f.FileName)
	}
	if len(f.Instances) != 10 {
		t.Errorf("instances = %d, want 10", len(f.Instances))
	}
	sp := f.ByType("IFCSPACE")
	if len(sp) != 1 || sp[0].ID != 30 {
		t.Fatalf("spaces = %+v", sp)
	}
	if sp[0].Args[0].Str != "R1" {
		t.Errorf("space guid = %q", sp[0].Args[0].Str)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"no header":       "ISO-10303-21;\nDATA;\nENDSEC;\n",
		"unterminated":    "ISO-10303-21;\nHEADER;\nFILE_NAME('x\n",
		"bad instance":    "ISO-10303-21;\nHEADER;\nENDSEC;\nDATA;\n#x=FOO();\nENDSEC;\n",
		"duplicate id":    strings.Replace(tinyIFC, "#11=IFCCARTESIANPOINT((10.,0.));", "#10=IFCCARTESIANPOINT((10.,0.));", 1),
		"missing endsec":  "ISO-10303-21;\nHEADER;\nENDSEC;\nDATA;\n#1=IFCBUILDING('a','b');\n",
		"garbage in data": "ISO-10303-21;\nHEADER;\nENDSEC;\nDATA;\n???\nENDSEC;\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	src := strings.Replace(tinyIFC, "'Room One'", "'O''Brien''s Room'", 1)
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sp := f.ByType("IFCSPACE")[0]
	if got := sp.Args[2].Str; got != "O'Brien's Room" {
		t.Errorf("escaped string = %q", got)
	}
}

func TestExtractTiny(t *testing.T) {
	f, err := Parse(tinyIFC)
	if err != nil {
		t.Fatal(err)
	}
	b, rep, err := Extract(f, DefaultExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 0 {
		t.Errorf("unexpected errors: %v", rep.Errors())
	}
	if b.ID != "tiny" || b.PartitionCount() != 1 || b.DoorCount() != 1 {
		t.Errorf("building = %s parts=%d doors=%d", b.ID, b.PartitionCount(), b.DoorCount())
	}
	fl := b.Floors[0]
	p := fl.Partitions[0]
	if math.Abs(p.Polygon.Area()-80) > 1e-9 {
		t.Errorf("space area = %v", p.Polygon.Area())
	}
}

func TestExtractRepairsDuplicateVertices(t *testing.T) {
	src := strings.Replace(tinyIFC,
		"#20=IFCPOLYLINE((#10,#11,#12,#13));",
		"#20=IFCPOLYLINE((#10,#10,#11,#12,#13,#10));", 1)
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, rep, err := Extract(f, DefaultExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.PartitionCount() != 1 {
		t.Fatal("space lost during repair")
	}
	repaired := 0
	for _, is := range rep.Issues {
		if is.Repaired {
			repaired++
		}
	}
	if repaired == 0 {
		t.Errorf("no repairs recorded: %v", rep.Issues)
	}
	if got := len(b.Floors[0].Partitions[0].Polygon); got != 4 {
		t.Errorf("repaired polygon has %d vertices, want 4", got)
	}
}

func TestExtractDropsOffBoundaryDoor(t *testing.T) {
	src := strings.Replace(tinyIFC,
		"#40=IFCCARTESIANPOINT((10.,4.));",
		"#40=IFCCARTESIANPOINT((50.,50.));", 1)
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, rep, err := Extract(f, DefaultExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.DoorCount() != 0 {
		t.Error("far-off door kept")
	}
	if len(rep.Errors()) == 0 {
		t.Error("no error recorded for dropped door")
	}
}

func TestExtractSnapsNearbyDoor(t *testing.T) {
	src := strings.Replace(tinyIFC,
		"#40=IFCCARTESIANPOINT((10.,4.));",
		"#40=IFCCARTESIANPOINT((10.8,4.));", 1)
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Extract(f, DefaultExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.DoorCount() != 1 {
		t.Fatal("snappable door dropped")
	}
	d := b.Floors[0].Doors[0]
	if math.Abs(d.Position.X-10) > 1e-6 {
		t.Errorf("door not snapped: %v", d.Position)
	}
}

func TestExtractDropsSelfIntersectingSpace(t *testing.T) {
	src := strings.Replace(tinyIFC,
		"#20=IFCPOLYLINE((#10,#11,#12,#13));",
		"#20=IFCPOLYLINE((#10,#12,#11,#13));", 1)
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Extract(f, DefaultExtractOptions()); err == nil {
		t.Error("extraction with zero valid spaces should fail")
	}
}

func TestExtractDanglingRefs(t *testing.T) {
	src := strings.Replace(tinyIFC,
		"#30=IFCSPACE('R1',#2,'Room One',#20);",
		"#30=IFCSPACE('R1',#2,'Room One',#99);", 1)
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Extract(f, DefaultExtractOptions()); err == nil {
		t.Error("dangling polyline ref should kill the only space")
	}
}

func TestSyntheticBuildingsRoundTrip(t *testing.T) {
	builders := map[string]func() string{
		"office": OfficeIFC,
		"mall":   MallIFC,
		"clinic": ClinicIFC,
	}
	for name, gen := range builders {
		name, gen := name, gen
		t.Run(name, func(t *testing.T) {
			text := gen()
			f, err := Parse(text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			b, rep, err := Extract(f, DefaultExtractOptions())
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			if errs := rep.Errors(); len(errs) != 0 {
				t.Fatalf("synthetic %s has DBI errors: %v", name, errs)
			}
			// Write→parse→extract must preserve entity counts and total area.
			text2 := Write(b)
			f2, err := Parse(text2)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			b2, _, err := Extract(f2, DefaultExtractOptions())
			if err != nil {
				t.Fatalf("re-extract: %v", err)
			}
			if b.PartitionCount() != b2.PartitionCount() || b.DoorCount() != b2.DoorCount() ||
				len(b.Staircases) != len(b2.Staircases) {
				t.Errorf("round trip changed counts: %d/%d doors %d/%d stairs %d/%d",
					b.PartitionCount(), b2.PartitionCount(), b.DoorCount(), b2.DoorCount(),
					len(b.Staircases), len(b2.Staircases))
			}
			area1, area2 := totalArea(b), totalArea(b2)
			if math.Abs(area1-area2) > 1e-6*(1+area1) {
				t.Errorf("round trip changed area: %v vs %v", area1, area2)
			}
		})
	}
}

func totalArea(b *model.Building) float64 {
	var total float64
	for _, level := range b.FloorLevels() {
		for _, p := range b.Floors[level].Partitions {
			total += p.Polygon.Area()
		}
	}
	return total
}
