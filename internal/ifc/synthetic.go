package ifc

import (
	"fmt"

	"vita/internal/geom"
	"vita/internal/model"
)

// This file provides the synthetic DBI generators that stand in for the real
// clinic/mall/office IFC files used in the paper's demonstration (§5 step 1).
// Each generator builds a model.Building whose IFC text (via Write) feeds the
// normal Parse→Extract path, so the pipeline is always exercised through
// real file parsing. See DESIGN.md §2 for the substitution rationale.

// OfficeSpec parameterizes the synthetic office building, modeled on the
// two-floor floor plans of Figure 3: rooms on both sides of a central
// hallway, a staircase connecting the floors, and a canteen on the ground
// floor.
type OfficeSpec struct {
	Floors       int     // number of storeys, >= 1
	RoomsPerSide int     // rooms along each side of the hallway
	RoomWidth    float64 // meters along the hallway
	RoomDepth    float64 // meters away from the hallway
	HallwayWidth float64
	FloorHeight  float64
}

// DefaultOfficeSpec returns the two-floor office used across examples and
// benchmarks.
func DefaultOfficeSpec() OfficeSpec {
	return OfficeSpec{
		Floors:       2,
		RoomsPerSide: 5,
		RoomWidth:    8,
		RoomDepth:    8,
		HallwayWidth: 4,
		FloorHeight:  3.5,
	}
}

// Office builds the synthetic office building.
func Office(spec OfficeSpec) *model.Building {
	if spec.Floors < 1 {
		spec.Floors = 1
	}
	if spec.RoomsPerSide < 1 {
		spec.RoomsPerSide = 1
	}
	b := model.NewBuilding("office", "Synthetic Office Building")
	width := float64(spec.RoomsPerSide) * spec.RoomWidth
	hallY0 := spec.RoomDepth
	hallY1 := spec.RoomDepth + spec.HallwayWidth

	for level := 0; level < spec.Floors; level++ {
		f := model.NewFloor(level, float64(level)*spec.FloorHeight, spec.FloorHeight)
		f.Name = fmt.Sprintf("Office Floor %d", level)
		mustAdd := func(p *model.Partition) {
			if err := f.AddPartition(p); err != nil {
				panic("ifc: synthetic office: " + err.Error())
			}
		}

		// Central hallway spanning the full width.
		hall := &model.Partition{
			ID:      fmt.Sprintf("F%d-HALL", level),
			Name:    fmt.Sprintf("Hallway %d", level),
			Floor:   level,
			Polygon: geom.Rect(0, hallY0, width, hallY1),
			Kind:    model.KindHallway,
		}
		mustAdd(hall)

		for i := 0; i < spec.RoomsPerSide; i++ {
			x0 := float64(i) * spec.RoomWidth
			x1 := x0 + spec.RoomWidth
			// South rooms (below the hallway).
			south := &model.Partition{
				ID:      fmt.Sprintf("F%d-S%d", level, i),
				Name:    fmt.Sprintf("Office %d%02d", level, i),
				Floor:   level,
				Polygon: geom.Rect(x0, 0, x1, hallY0),
			}
			// Ground-floor room S0 is the canteen (exercises the semantic
			// rules of §4.1).
			if level == 0 && i == 0 {
				south.Name = "Canteen"
			}
			mustAdd(south)
			f.Doors = append(f.Doors, &model.Door{
				ID:       fmt.Sprintf("F%d-DS%d", level, i),
				Name:     fmt.Sprintf("Door S%d", i),
				Floor:    level,
				Position: geom.Pt(x0+spec.RoomWidth/2, hallY0),
				Width:    1.0,
			})
			// North rooms (above the hallway).
			north := &model.Partition{
				ID:      fmt.Sprintf("F%d-N%d", level, i),
				Name:    fmt.Sprintf("Office %d%02d", level, spec.RoomsPerSide+i),
				Floor:   level,
				Polygon: geom.Rect(x0, hallY1, x1, hallY1+spec.RoomDepth),
			}
			mustAdd(north)
			f.Doors = append(f.Doors, &model.Door{
				ID:       fmt.Sprintf("F%d-DN%d", level, i),
				Name:     fmt.Sprintf("Door N%d", i),
				Floor:    level,
				Position: geom.Pt(x0+spec.RoomWidth/2, hallY1),
				Width:    1.0,
			})
		}
		if err := b.AddFloor(f); err != nil {
			panic("ifc: synthetic office: " + err.Error())
		}
	}

	// One staircase per floor gap, at the east end of the hallway. As in real
	// IFC the stair is only a bag of 3D points; topo.LinkStaircases resolves
	// connectivity.
	for level := 0; level+1 < spec.Floors; level++ {
		zLo := float64(level) * spec.FloorHeight
		zHi := float64(level+1) * spec.FloorHeight
		x := width - 1.5
		yMid := (hallY0 + hallY1) / 2
		b.Staircases = append(b.Staircases, &model.Staircase{
			ID:   fmt.Sprintf("ST-%d-%d", level, level+1),
			Name: fmt.Sprintf("Staircase %d-%d", level, level+1),
			Points: []geom.Point3{
				geom.Pt3(x-1, yMid-1, zLo), geom.Pt3(x+1, yMid-1, zLo),
				geom.Pt3(x-1, yMid+1, zLo), geom.Pt3(x+1, yMid+1, zLo),
				geom.Pt3(x-1, yMid-1, zHi), geom.Pt3(x+1, yMid-1, zHi),
				geom.Pt3(x-1, yMid+1, zHi), geom.Pt3(x+1, yMid+1, zHi),
			},
			TravelTime: 15,
		})
	}
	return b
}

// MallSpec parameterizes the synthetic shopping mall: two floors of shops
// around a central atrium and cross corridors; some shops are "on sale" and
// serve as the crowd hot areas of the crowd-outliers distribution (§3.1).
type MallSpec struct {
	Floors        int
	ShopsPerSide  int
	ShopWidth     float64
	ShopDepth     float64
	CorridorWidth float64
	FloorHeight   float64
	OnSaleEvery   int // every k-th shop is named "... (on sale)"
}

// DefaultMallSpec returns the standard two-floor mall.
func DefaultMallSpec() MallSpec {
	return MallSpec{
		Floors:        2,
		ShopsPerSide:  8,
		ShopWidth:     10,
		ShopDepth:     12,
		CorridorWidth: 6,
		FloorHeight:   4.5,
		OnSaleEvery:   4,
	}
}

// Mall builds the synthetic mall.
func Mall(spec MallSpec) *model.Building {
	if spec.Floors < 1 {
		spec.Floors = 1
	}
	if spec.ShopsPerSide < 1 {
		spec.ShopsPerSide = 1
	}
	if spec.OnSaleEvery < 1 {
		spec.OnSaleEvery = 4
	}
	b := model.NewBuilding("mall", "Synthetic Shopping Mall")
	width := float64(spec.ShopsPerSide) * spec.ShopWidth
	corrY0 := spec.ShopDepth
	corrY1 := spec.ShopDepth + spec.CorridorWidth

	shopNo := 1
	for level := 0; level < spec.Floors; level++ {
		f := model.NewFloor(level, float64(level)*spec.FloorHeight, spec.FloorHeight)
		f.Name = fmt.Sprintf("Mall Level %d", level)
		mustAdd := func(p *model.Partition) {
			if err := f.AddPartition(p); err != nil {
				panic("ifc: synthetic mall: " + err.Error())
			}
		}

		corr := &model.Partition{
			ID:      fmt.Sprintf("F%d-CORR", level),
			Name:    fmt.Sprintf("Corridor %d", level),
			Floor:   level,
			Polygon: geom.Rect(0, corrY0, width, corrY1),
			Kind:    model.KindHallway,
		}
		mustAdd(corr)

		// Atrium above the corridor: a large irregular (L-shaped) public
		// space that exercises the irregular-partition decomposition of §4.1.
		atr := &model.Partition{
			ID:    fmt.Sprintf("F%d-ATRIUM", level),
			Name:  fmt.Sprintf("Atrium %d", level),
			Floor: level,
			Polygon: geom.Polygon{
				geom.Pt(0, corrY1), geom.Pt(width, corrY1),
				geom.Pt(width, corrY1+spec.ShopDepth),
				geom.Pt(width/2, corrY1+spec.ShopDepth),
				geom.Pt(width/2, corrY1+spec.ShopDepth/2),
				geom.Pt(0, corrY1+spec.ShopDepth/2),
			},
		}
		mustAdd(atr)
		f.Doors = append(f.Doors, &model.Door{
			ID:       fmt.Sprintf("F%d-DATR", level),
			Name:     "Atrium entrance",
			Floor:    level,
			Position: geom.Pt(width/4, corrY1),
			Width:    3.0,
		})
		f.Doors = append(f.Doors, &model.Door{
			ID:       fmt.Sprintf("F%d-DATR2", level),
			Name:     "Atrium entrance east",
			Floor:    level,
			Position: geom.Pt(3*width/4, corrY1),
			Width:    3.0,
		})

		for i := 0; i < spec.ShopsPerSide; i++ {
			x0 := float64(i) * spec.ShopWidth
			x1 := x0 + spec.ShopWidth
			name := fmt.Sprintf("Shop %d", shopNo)
			if shopNo%spec.OnSaleEvery == 0 {
				name += " (on sale)"
			}
			if level == 0 && i == spec.ShopsPerSide-1 {
				name = "Food Court Dining Room"
			}
			shop := &model.Partition{
				ID:      fmt.Sprintf("F%d-SHOP%d", level, i),
				Name:    name,
				Floor:   level,
				Polygon: geom.Rect(x0, 0, x1, corrY0),
			}
			mustAdd(shop)
			f.Doors = append(f.Doors, &model.Door{
				ID:       fmt.Sprintf("F%d-DSHOP%d", level, i),
				Name:     fmt.Sprintf("%s entrance", name),
				Floor:    level,
				Position: geom.Pt(x0+spec.ShopWidth/2, corrY0),
				Width:    2.0,
			})
			shopNo++
		}
		if err := b.AddFloor(f); err != nil {
			panic("ifc: synthetic mall: " + err.Error())
		}
	}

	for level := 0; level+1 < spec.Floors; level++ {
		zLo := float64(level) * spec.FloorHeight
		zHi := float64(level+1) * spec.FloorHeight
		x := width / 2
		y := (corrY0 + corrY1) / 2
		b.Staircases = append(b.Staircases, &model.Staircase{
			ID:   fmt.Sprintf("ESC-%d-%d", level, level+1),
			Name: fmt.Sprintf("Escalator %d-%d", level, level+1),
			Points: []geom.Point3{
				geom.Pt3(x-2, y-1, zLo), geom.Pt3(x+2, y-1, zLo),
				geom.Pt3(x-2, y+1, zLo), geom.Pt3(x+2, y+1, zLo),
				geom.Pt3(x-2, y-1, zHi), geom.Pt3(x+2, y-1, zHi),
				geom.Pt3(x-2, y+1, zHi), geom.Pt3(x+2, y+1, zHi),
			},
			TravelTime: 25,
		})
	}
	return b
}

// ClinicSpec parameterizes the synthetic clinic: a waiting hall, a corridor
// of consultation rooms, a pharmacy and a canteen on a single floor — the
// setting for RFID + proximity check-point tracking (§5 step 6).
type ClinicSpec struct {
	ConsultRooms int
	RoomWidth    float64
	RoomDepth    float64
	HallDepth    float64
	FloorHeight  float64
}

// DefaultClinicSpec returns the standard single-floor clinic.
func DefaultClinicSpec() ClinicSpec {
	return ClinicSpec{
		ConsultRooms: 6,
		RoomWidth:    5,
		RoomDepth:    6,
		HallDepth:    10,
		FloorHeight:  3.2,
	}
}

// Clinic builds the synthetic clinic.
func Clinic(spec ClinicSpec) *model.Building {
	if spec.ConsultRooms < 1 {
		spec.ConsultRooms = 1
	}
	b := model.NewBuilding("clinic", "Synthetic Clinic")
	width := float64(spec.ConsultRooms) * spec.RoomWidth
	corrW := 3.0
	corrY0 := spec.RoomDepth
	corrY1 := corrY0 + corrW

	f := model.NewFloor(0, 0, spec.FloorHeight)
	f.Name = "Clinic Ground Floor"
	mustAdd := func(p *model.Partition) {
		if err := f.AddPartition(p); err != nil {
			panic("ifc: synthetic clinic: " + err.Error())
		}
	}

	corr := &model.Partition{
		ID:      "F0-CORR",
		Name:    "Corridor",
		Floor:   0,
		Polygon: geom.Rect(0, corrY0, width, corrY1),
		Kind:    model.KindHallway,
	}
	mustAdd(corr)

	hall := &model.Partition{
		ID:      "F0-WAIT",
		Name:    "Waiting Hall",
		Floor:   0,
		Polygon: geom.Rect(0, corrY1, width, corrY1+spec.HallDepth),
	}
	mustAdd(hall)
	f.Doors = append(f.Doors,
		&model.Door{ID: "F0-DWAIT", Name: "Waiting hall door", Floor: 0,
			Position: geom.Pt(width/2, corrY1), Width: 2.5},
		&model.Door{ID: "F0-DMAIN", Name: "Main entrance", Floor: 0,
			Position: geom.Pt(width/2, corrY1+spec.HallDepth), Width: 3.0,
			Partitions: [2]string{"F0-WAIT", ""}},
	)

	for i := 0; i < spec.ConsultRooms; i++ {
		x0 := float64(i) * spec.RoomWidth
		x1 := x0 + spec.RoomWidth
		name := fmt.Sprintf("Consultation Room %d", i+1)
		if i == spec.ConsultRooms-1 {
			name = "Pharmacy"
		}
		if i == spec.ConsultRooms-2 && spec.ConsultRooms >= 2 {
			name = "Staff Canteen"
		}
		room := &model.Partition{
			ID:      fmt.Sprintf("F0-R%d", i),
			Name:    name,
			Floor:   0,
			Polygon: geom.Rect(x0, 0, x1, corrY0),
		}
		mustAdd(room)
		f.Doors = append(f.Doors, &model.Door{
			ID:       fmt.Sprintf("F0-DR%d", i),
			Name:     name + " door",
			Floor:    0,
			Position: geom.Pt(x0+spec.RoomWidth/2, corrY0),
			Width:    1.2,
		})
	}
	if err := b.AddFloor(f); err != nil {
		panic("ifc: synthetic clinic: " + err.Error())
	}
	return b
}

// OfficeIFC, MallIFC and ClinicIFC return ready-to-parse DBI file contents
// for the default specs.
func OfficeIFC() string { return Write(Office(DefaultOfficeSpec())) }

// MallIFC returns the default mall DBI file contents.
func MallIFC() string { return Write(Mall(DefaultMallSpec())) }

// ClinicIFC returns the default clinic DBI file contents.
func ClinicIFC() string { return Write(Clinic(DefaultClinicSpec())) }
