package ifc

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"vita/internal/topo"
)

// TestQuickOfficeSpecsRoundTrip: any sane office spec produces a DBI file
// that parses, extracts with zero unrepaired errors, and preserves counts
// through a write/parse cycle.
func TestQuickOfficeSpecsRoundTrip(t *testing.T) {
	f := func(floors, rooms uint8) bool {
		spec := OfficeSpec{
			Floors:       1 + int(floors%4),
			RoomsPerSide: 1 + int(rooms%8),
			RoomWidth:    6,
			RoomDepth:    7,
			HallwayWidth: 3,
			FloorHeight:  3,
		}
		b := Office(spec)
		text := Write(b)
		parsed, err := Parse(text)
		if err != nil {
			return false
		}
		b2, rep, err := Extract(parsed, DefaultExtractOptions())
		if err != nil || len(rep.Errors()) != 0 {
			return false
		}
		wantParts := spec.Floors * (2*spec.RoomsPerSide + 1)
		if b2.PartitionCount() != wantParts {
			return false
		}
		return len(b2.Staircases) == spec.Floors-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickOfficeTopologyBuilds: the derived topology builds and links every
// staircase for any sane spec.
func TestQuickOfficeTopologyBuilds(t *testing.T) {
	f := func(floors uint8) bool {
		spec := DefaultOfficeSpec()
		spec.Floors = 1 + int(floors%4)
		b := Office(spec)
		tp, err := topo.Build(b, topo.DefaultOptions())
		if err != nil {
			return false
		}
		for _, s := range tp.B.Staircases {
			if !s.Linked {
				return false
			}
		}
		nodes, edges := tp.GraphSize()
		return nodes > 0 && edges > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestMallSpecVariants: shop counts and floor counts scale the mall as
// configured.
func TestMallSpecVariants(t *testing.T) {
	for _, shops := range []int{1, 4, 12} {
		spec := DefaultMallSpec()
		spec.ShopsPerSide = shops
		spec.Floors = 1
		b := Mall(spec)
		// corridor + atrium + shops per floor
		if got := b.PartitionCount(); got != shops+2 {
			t.Errorf("shops=%d: partitions = %d, want %d", shops, got, shops+2)
		}
		if len(b.Staircases) != 0 {
			t.Errorf("single-floor mall has staircases")
		}
	}
	spec := DefaultMallSpec()
	spec.Floors = 3
	if b := Mall(spec); len(b.Staircases) != 2 {
		t.Errorf("3-floor mall staircases = %d, want 2", len(Mall(spec).Staircases))
	}
}

// TestClinicSpecVariants: consult rooms scale the clinic.
func TestClinicSpecVariants(t *testing.T) {
	for _, rooms := range []int{1, 3, 9} {
		spec := DefaultClinicSpec()
		spec.ConsultRooms = rooms
		b := Clinic(spec)
		// corridor + waiting hall + rooms
		if got := b.PartitionCount(); got != rooms+2 {
			t.Errorf("rooms=%d: partitions = %d, want %d", rooms, got, rooms+2)
		}
	}
}

// TestSyntheticSemantics: the semantic extractor finds the canteens the
// generators plant (paper §4.1's example rule).
func TestSyntheticSemantics(t *testing.T) {
	b := Office(DefaultOfficeSpec())
	tp, err := topo.Build(b, topo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, level := range tp.B.FloorLevels() {
		for _, p := range tp.B.Floors[level].Partitions {
			if p.Kind.String() == "canteen" {
				found = true
			}
		}
	}
	if !found {
		t.Error("canteen not identified by semantic rules")
	}
}

// TestWriterNumberFormat: coordinates survive Write→Parse with full
// precision (STEP requires a decimal point on reals; strconv accepts the
// trailing-dot form the writer emits once normalized).
func TestWriterNumberFormat(t *testing.T) {
	for _, v := range []float64{0, 1, -2.5, 1e-3, 12345.6789} {
		s := num(v)
		if len(s) > 0 && s[len(s)-1] == '.' {
			s += "0"
		}
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparsable number %q: %v", s, err)
		}
		if math.Abs(back-v) > 1e-12*(1+math.Abs(v)) {
			t.Errorf("num(%v) = %q round-trips to %v", v, s, back)
		}
	}
}
