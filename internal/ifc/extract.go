package ifc

import (
	"fmt"
	"math"

	"vita/internal/geom"
	"vita/internal/model"
)

// Severity grades a DBI issue found during extraction.
type Severity int

// Issue severities.
const (
	SevWarning Severity = iota
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Issue is one DBI data error identified through geometry calculations
// (paper §4.1), together with whether the repair pass fixed it.
type Issue struct {
	Severity Severity
	Entity   string
	Message  string
	Repaired bool
}

// String implements fmt.Stringer.
func (i Issue) String() string {
	state := "unrepaired"
	if i.Repaired {
		state = "repaired"
	}
	return fmt.Sprintf("[%s] %s: %s (%s)", i.Severity, i.Entity, i.Message, state)
}

// Report collects the issues of one extraction run.
type Report struct {
	Issues []Issue
}

func (r *Report) add(sev Severity, entity, msg string, repaired bool) {
	r.Issues = append(r.Issues, Issue{Severity: sev, Entity: entity, Message: msg, Repaired: repaired})
}

// Errors returns the unrepaired errors.
func (r *Report) Errors() []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Severity == SevError && !i.Repaired {
			out = append(out, i)
		}
	}
	return out
}

// ExtractOptions tune the repair pass.
type ExtractOptions struct {
	// SnapDoorDist is the maximum distance over which an off-boundary door is
	// snapped to the nearest partition boundary. Doors farther than this are
	// dropped with an error.
	SnapDoorDist float64
	// DefaultFloorHeight is used when a storey omits its height.
	DefaultFloorHeight float64
}

// DefaultExtractOptions returns the defaults used by the toolkit.
func DefaultExtractOptions() ExtractOptions {
	return ExtractOptions{SnapDoorDist: 2.0, DefaultFloorHeight: 3.0}
}

// Extract converts a parsed STEP file into a model.Building, running the
// error-identification and repair pass of paper §4.1. The returned report
// lists every issue found; extraction succeeds as long as at least one valid
// storey with one valid space remains.
func Extract(f *File, opts ExtractOptions) (*model.Building, *Report, error) {
	rep := &Report{}
	ex := &extractor{f: f, opts: opts, rep: rep}
	b, err := ex.run()
	if err != nil {
		return nil, rep, err
	}
	return b, rep, nil
}

type extractor struct {
	f    *File
	opts ExtractOptions
	rep  *Report
}

func (ex *extractor) run() (*model.Building, error) {
	buildings := ex.f.ByType("IFCBUILDING")
	if len(buildings) == 0 {
		return nil, fmt.Errorf("ifc: no IFCBUILDING instance")
	}
	if len(buildings) > 1 {
		ex.rep.add(SevWarning, "IFCBUILDING", "multiple buildings; extracting the first", false)
	}
	bi := buildings[0]
	id := stringArg(bi.Args, 0, fmt.Sprintf("building-%d", bi.ID))
	name := stringArg(bi.Args, 1, id)
	b := model.NewBuilding(id, name)

	storeys := make(map[int]*model.Floor) // instance id → floor
	for _, st := range ex.f.ByType("IFCBUILDINGSTOREY") {
		// ('guid', #building, 'name', level, elevation[, height])
		level := int(numArg(st.Args, 3, 0))
		elev := numArg(st.Args, 4, float64(level)*ex.opts.DefaultFloorHeight)
		height := numArg(st.Args, 5, ex.opts.DefaultFloorHeight)
		fl := model.NewFloor(level, elev, height)
		fl.Name = stringArg(st.Args, 2, fmt.Sprintf("floor-%d", level))
		if err := b.AddFloor(fl); err != nil {
			ex.rep.add(SevError, entityName(st), err.Error(), false)
			continue
		}
		storeys[st.ID] = fl
	}
	if len(storeys) == 0 {
		return nil, fmt.Errorf("ifc: no valid IFCBUILDINGSTOREY instance")
	}

	spaceCount := 0
	for _, sp := range ex.f.ByType("IFCSPACE") {
		if ex.extractSpace(sp, storeys, b) {
			spaceCount++
		}
	}
	if spaceCount == 0 {
		return nil, fmt.Errorf("ifc: no valid IFCSPACE instance")
	}

	for _, d := range ex.f.ByType("IFCDOOR") {
		ex.extractDoor(d, storeys)
	}
	for _, s := range ex.f.ByType("IFCSTAIR") {
		ex.extractStair(s, b)
	}
	for _, w := range ex.f.ByType("IFCWALL") {
		ex.extractWall(w, storeys)
	}
	return b, nil
}

// extractSpace parses one IFCSPACE ('guid', #storey, 'name', #polyline) and
// reports whether a partition was added.
func (ex *extractor) extractSpace(sp *Instance, storeys map[int]*model.Floor, b *model.Building) bool {
	ent := entityName(sp)
	fl, ok := ex.storeyOf(sp, 1, storeys)
	if !ok {
		return false
	}
	poly, ok := ex.polylineOf(sp, 3)
	if !ok {
		return false
	}
	poly = ex.repairPolygon(ent, poly)
	if err := poly.Validate(); err != nil {
		ex.rep.add(SevError, ent, "invalid space polygon: "+err.Error(), false)
		return false
	}
	if poly.SelfIntersects() {
		ex.rep.add(SevError, ent, "self-intersecting space polygon; space dropped", false)
		return false
	}
	p := &model.Partition{
		ID:      stringArg(sp.Args, 0, fmt.Sprintf("space-%d", sp.ID)),
		Name:    stringArg(sp.Args, 2, ""),
		Floor:   fl.Level,
		Polygon: poly,
	}
	if err := fl.AddPartition(p); err != nil {
		ex.rep.add(SevError, ent, err.Error(), false)
		return false
	}
	return true
}

// repairPolygon removes consecutive duplicates and an explicit closing vertex,
// recording repairs.
func (ex *extractor) repairPolygon(ent string, poly geom.Polygon) geom.Polygon {
	if len(poly) > 1 && poly[0].Eq(poly[len(poly)-1]) {
		poly = poly[:len(poly)-1]
		ex.rep.add(SevWarning, ent, "polygon explicitly closed; closing vertex removed", true)
	}
	out := poly[:0:0]
	dups := 0
	for _, p := range poly {
		if len(out) > 0 && out[len(out)-1].Eq(p) {
			dups++
			continue
		}
		out = append(out, p)
	}
	if dups > 0 {
		ex.rep.add(SevWarning, ent, fmt.Sprintf("%d duplicate consecutive vertices removed", dups), true)
	}
	return out
}

// extractDoor parses one IFCDOOR ('guid', #storey, 'name', #point, width).
// Doors not on any partition boundary are snapped when close enough,
// otherwise dropped — the geometry-calculation error check of §4.1.
func (ex *extractor) extractDoor(d *Instance, storeys map[int]*model.Floor) {
	ent := entityName(d)
	fl, ok := ex.storeyOf(d, 1, storeys)
	if !ok {
		return
	}
	pt, ok := ex.pointOf(d, 3)
	if !ok {
		return
	}
	width := numArg(d.Args, 4, 0.9)
	if width <= 0 {
		ex.rep.add(SevWarning, ent, "non-positive door width; default 0.9m used", true)
		width = 0.9
	}

	// Find the nearest partition boundary.
	bestDist := math.Inf(1)
	var bestPt geom.Point
	for _, p := range fl.Partitions {
		c := p.Polygon.ClosestBoundaryPoint(pt)
		if dd := c.Dist(pt); dd < bestDist {
			bestDist, bestPt = dd, c
		}
	}
	if bestDist > 0.2 {
		if bestDist > ex.opts.SnapDoorDist {
			ex.rep.add(SevError, ent,
				fmt.Sprintf("door %.2fm from any partition boundary; dropped", bestDist), false)
			return
		}
		ex.rep.add(SevWarning, ent,
			fmt.Sprintf("door %.2fm off boundary; snapped", bestDist), true)
		pt = bestPt
	}
	fl.Doors = append(fl.Doors, &model.Door{
		ID:       stringArg(d.Args, 0, fmt.Sprintf("door-%d", d.ID)),
		Name:     stringArg(d.Args, 2, ""),
		Floor:    fl.Level,
		Position: pt,
		Width:    width,
	})
}

// extractStair parses one IFCSTAIR ('guid', 'name', (#pt3...), travelTime).
// As in real IFC, the stair is just a bag of 3D points; connectivity is
// resolved later by topo.LinkStaircases.
func (ex *extractor) extractStair(s *Instance, b *model.Building) {
	ent := entityName(s)
	if len(s.Args) < 3 || s.Args[2].Kind != VList {
		ex.rep.add(SevError, ent, "stair without point list; dropped", false)
		return
	}
	var pts []geom.Point3
	for _, v := range s.Args[2].List {
		if v.Kind != VRef {
			continue
		}
		in, ok := ex.f.Get(v.Ref)
		if !ok || in.Type != "IFCCARTESIANPOINT" {
			ex.rep.add(SevError, ent, fmt.Sprintf("dangling point ref #%d", v.Ref), false)
			continue
		}
		coords := listNums(in.Args, 0)
		if len(coords) < 3 {
			ex.rep.add(SevWarning, ent, "stair point without Z; assumed 0", true)
			coords = append(coords, 0)
		}
		pts = append(pts, geom.Pt3(coords[0], coords[1], coords[2]))
	}
	if len(pts) < 2 {
		ex.rep.add(SevError, ent, "stair with fewer than 2 valid points; dropped", false)
		return
	}
	b.Staircases = append(b.Staircases, &model.Staircase{
		ID:         stringArg(s.Args, 0, fmt.Sprintf("stair-%d", s.ID)),
		Name:       stringArg(s.Args, 1, ""),
		Points:     pts,
		TravelTime: numArg(s.Args, 3, 20),
	})
}

// extractWall parses one IFCWALL ('guid', #storey, #polyline) into an
// obstacle polygon.
func (ex *extractor) extractWall(w *Instance, storeys map[int]*model.Floor) {
	ent := entityName(w)
	fl, ok := ex.storeyOf(w, 1, storeys)
	if !ok {
		return
	}
	poly, ok := ex.polylineOf(w, 2)
	if !ok {
		return
	}
	poly = ex.repairPolygon(ent, poly)
	if err := poly.Validate(); err != nil {
		ex.rep.add(SevError, ent, "invalid wall polygon: "+err.Error(), false)
		return
	}
	fl.Obstacles = append(fl.Obstacles, &model.Obstacle{
		ID:      stringArg(w.Args, 0, fmt.Sprintf("wall-%d", w.ID)),
		Floor:   fl.Level,
		Polygon: poly,
	})
}

// --- reference helpers ---

func (ex *extractor) storeyOf(in *Instance, argIdx int, storeys map[int]*model.Floor) (*model.Floor, bool) {
	if len(in.Args) <= argIdx || in.Args[argIdx].Kind != VRef {
		ex.rep.add(SevError, entityName(in), "missing storey reference; dropped", false)
		return nil, false
	}
	fl, ok := storeys[in.Args[argIdx].Ref]
	if !ok {
		ex.rep.add(SevError, entityName(in),
			fmt.Sprintf("dangling storey ref #%d; dropped", in.Args[argIdx].Ref), false)
		return nil, false
	}
	return fl, true
}

func (ex *extractor) polylineOf(in *Instance, argIdx int) (geom.Polygon, bool) {
	ent := entityName(in)
	if len(in.Args) <= argIdx || in.Args[argIdx].Kind != VRef {
		ex.rep.add(SevError, ent, "missing polyline reference; dropped", false)
		return nil, false
	}
	pl, ok := ex.f.Get(in.Args[argIdx].Ref)
	if !ok || pl.Type != "IFCPOLYLINE" {
		ex.rep.add(SevError, ent, fmt.Sprintf("dangling polyline ref #%d; dropped", in.Args[argIdx].Ref), false)
		return nil, false
	}
	if len(pl.Args) == 0 || pl.Args[0].Kind != VList {
		ex.rep.add(SevError, ent, "polyline without point list; dropped", false)
		return nil, false
	}
	var poly geom.Polygon
	for _, v := range pl.Args[0].List {
		if v.Kind != VRef {
			continue
		}
		ptIn, ok := ex.f.Get(v.Ref)
		if !ok || ptIn.Type != "IFCCARTESIANPOINT" {
			ex.rep.add(SevError, ent, fmt.Sprintf("dangling point ref #%d", v.Ref), false)
			continue
		}
		coords := listNums(ptIn.Args, 0)
		if len(coords) < 2 {
			ex.rep.add(SevError, ent, "point with fewer than 2 coordinates", false)
			continue
		}
		poly = append(poly, geom.Pt(coords[0], coords[1]))
	}
	return poly, true
}

func (ex *extractor) pointOf(in *Instance, argIdx int) (geom.Point, bool) {
	ent := entityName(in)
	if len(in.Args) <= argIdx || in.Args[argIdx].Kind != VRef {
		ex.rep.add(SevError, ent, "missing point reference; dropped", false)
		return geom.Point{}, false
	}
	ptIn, ok := ex.f.Get(in.Args[argIdx].Ref)
	if !ok || ptIn.Type != "IFCCARTESIANPOINT" {
		ex.rep.add(SevError, ent, fmt.Sprintf("dangling point ref #%d; dropped", in.Args[argIdx].Ref), false)
		return geom.Point{}, false
	}
	coords := listNums(ptIn.Args, 0)
	if len(coords) < 2 {
		ex.rep.add(SevError, ent, "point with fewer than 2 coordinates; dropped", false)
		return geom.Point{}, false
	}
	return geom.Pt(coords[0], coords[1]), true
}

// --- argument helpers ---

func entityName(in *Instance) string {
	return fmt.Sprintf("%s#%d", in.Type, in.ID)
}

func stringArg(args []Value, i int, def string) string {
	if i < len(args) && args[i].Kind == VString && args[i].Str != "" {
		return args[i].Str
	}
	return def
}

func numArg(args []Value, i int, def float64) float64 {
	if i < len(args) && args[i].Kind == VNumber {
		return args[i].Num
	}
	return def
}

// listNums extracts the numbers of a nested list argument, e.g. the
// coordinate list of IFCCARTESIANPOINT((x, y[, z])).
func listNums(args []Value, i int) []float64 {
	if i >= len(args) || args[i].Kind != VList {
		return nil
	}
	var out []float64
	for _, v := range args[i].List {
		if v.Kind == VNumber {
			out = append(out, v.Num)
		}
	}
	return out
}
