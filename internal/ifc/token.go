// Package ifc implements the digital building information (DBI) interface of
// Vita's Infrastructure Layer: a parser and writer for a subset of the
// Industry Foundation Classes STEP physical file format (ISO 10303-21), the
// DBI-error identification and repair pass of paper §4.1, and synthetic
// building generators (office / mall / clinic) that emit the same format so
// the whole pipeline is exercised through real file parsing.
//
// Supported entity types: IFCBUILDING, IFCBUILDINGSTOREY, IFCCARTESIANPOINT,
// IFCPOLYLINE, IFCSPACE, IFCDOOR, IFCSTAIR, IFCWALL.
package ifc

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF    tokenKind = iota
	tokRef              // #123
	tokIdent            // IFCSPACE, ISO-10303-21, HEADER...
	tokString           // 'text'
	tokNumber           // 12, -3.5, 1.0E-2
	tokLParen
	tokRParen
	tokComma
	tokSemicolon
	tokEquals
	tokDollar // $ (null)
	tokStar   // * (derived)
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string { return fmt.Sprintf("%q@%d", t.text, t.line) }

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ifc: line %d: "+format, append([]interface{}{l.line}, args...)...)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			// Block comment.
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errf("unterminated comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return l.scan()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scan() (token, error) {
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '#':
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return token{}, l.errf("bare '#'")
		}
		return token{kind: tokRef, text: l.src[start:l.pos], line: l.line}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				// STEP escapes a quote by doubling it.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), line: l.line}, nil
			}
			if l.src[l.pos] == '\n' {
				l.line++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, l.errf("unterminated string")
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", line: l.line}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", line: l.line}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: l.line}, nil
	case c == ';':
		l.pos++
		return token{kind: tokSemicolon, text: ";", line: l.line}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEquals, text: "=", line: l.line}, nil
	case c == '$':
		l.pos++
		return token{kind: tokDollar, text: "$", line: l.line}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", line: l.line}, nil
	case c == '-' || c == '+' || isDigit(c):
		l.pos++
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if isDigit(c) || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+' {
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case isIdentStart(rune(c)):
		l.pos++
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if isIdentStart(r) || unicode.IsDigit(r) || r == '-' {
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}
