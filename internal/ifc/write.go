package ifc

import (
	"fmt"
	"strings"

	"vita/internal/geom"
	"vita/internal/model"
)

// Write serializes a model.Building into the STEP subset understood by Parse.
// Round-tripping Write→Parse→Extract reproduces the building (up to staircase
// link resolution, which is recomputed by internal/topo).
func Write(b *model.Building) string {
	w := &writer{sb: &strings.Builder{}, nextID: 1}
	w.header(b)
	w.sb.WriteString("DATA;\n")

	bid := w.emit("IFCBUILDING('%s','%s')", escape(b.ID), escape(b.Name))
	storeyIDs := make(map[int]int)
	for _, level := range b.FloorLevels() {
		f := b.Floors[level]
		storeyIDs[level] = w.emit("IFCBUILDINGSTOREY('%s',#%d,'%s',%d,%s,%s)",
			escape(fmt.Sprintf("%s-F%d", b.ID, level)), bid, escape(f.Name),
			level, num(f.Elevation), num(f.Height))
	}
	for _, level := range b.FloorLevels() {
		f := b.Floors[level]
		st := storeyIDs[level]
		for _, p := range f.Partitions {
			pl := w.polyline(p.Polygon)
			w.emit("IFCSPACE('%s',#%d,'%s',#%d)", escape(p.ID), st, escape(p.Name), pl)
		}
		for _, d := range f.Doors {
			pt := w.point2(d.Position)
			w.emit("IFCDOOR('%s',#%d,'%s',#%d,%s)", escape(d.ID), st, escape(d.Name), pt, num(d.Width))
		}
		for _, o := range f.Obstacles {
			pl := w.polyline(o.Polygon)
			w.emit("IFCWALL('%s',#%d,#%d)", escape(o.ID), st, pl)
		}
	}
	for _, s := range b.Staircases {
		refs := make([]string, len(s.Points))
		for i, p := range s.Points {
			refs[i] = fmt.Sprintf("#%d", w.point3(p))
		}
		w.emit("IFCSTAIR('%s','%s',(%s),%s)", escape(s.ID), escape(s.Name),
			strings.Join(refs, ","), num(s.TravelTime))
	}
	w.sb.WriteString("ENDSEC;\nEND-ISO-10303-21;\n")
	return w.sb.String()
}

type writer struct {
	sb     *strings.Builder
	nextID int
}

func (w *writer) header(b *model.Building) {
	fmt.Fprintf(w.sb, "ISO-10303-21;\nHEADER;\n")
	fmt.Fprintf(w.sb, "FILE_DESCRIPTION(('Vita synthetic DBI'),'2;1');\n")
	fmt.Fprintf(w.sb, "FILE_NAME('%s.ifc','2016-09-05',(''),(''),'vita','vita','');\n", escape(b.ID))
	fmt.Fprintf(w.sb, "FILE_SCHEMA(('IFC2X3'));\nENDSEC;\n")
}

func (w *writer) emit(format string, args ...interface{}) int {
	id := w.nextID
	w.nextID++
	fmt.Fprintf(w.sb, "#%d=", id)
	fmt.Fprintf(w.sb, format, args...)
	w.sb.WriteString(";\n")
	return id
}

func (w *writer) point2(p geom.Point) int {
	return w.emit("IFCCARTESIANPOINT((%s,%s))", num(p.X), num(p.Y))
}

func (w *writer) point3(p geom.Point3) int {
	return w.emit("IFCCARTESIANPOINT((%s,%s,%s))", num(p.X), num(p.Y), num(p.Z))
}

func (w *writer) polyline(pg geom.Polygon) int {
	refs := make([]string, len(pg))
	for i, p := range pg {
		refs[i] = fmt.Sprintf("#%d", w.point2(p))
	}
	return w.emit("IFCPOLYLINE((%s))", strings.Join(refs, ","))
}

func num(v float64) string {
	s := fmt.Sprintf("%g", v)
	if !strings.ContainsAny(s, ".eE") {
		s += "."
	}
	return s
}

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }
