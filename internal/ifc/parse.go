package ifc

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is one argument of a STEP entity instance: a string, a number, a
// reference to another instance, a nested list, or null ($ / *).
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64
	Ref  int
	List []Value
}

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	VNull ValueKind = iota
	VString
	VNumber
	VRef
	VList
	VEnum // unquoted identifier argument, e.g. .T.
)

// Instance is one `#id=TYPE(args);` data line.
type Instance struct {
	ID   int
	Type string
	Args []Value
	Line int
}

// File is a parsed STEP file: the header fields we keep plus the instance
// map.
type File struct {
	SchemaName string
	FileName   string
	Instances  map[int]*Instance
	// Order preserves the textual order of instance IDs.
	Order []int
}

// Get returns the instance with the given id.
func (f *File) Get(id int) (*Instance, bool) {
	in, ok := f.Instances[id]
	return in, ok
}

// ByType returns all instances of the given (upper-case) type in file order.
func (f *File) ByType(typ string) []*Instance {
	var out []*Instance
	for _, id := range f.Order {
		if in := f.Instances[id]; in.Type == typ {
			out = append(out, in)
		}
	}
	return out
}

type parser struct {
	lx  *lexer
	cur token
}

// Parse parses STEP source text into a File. Parsing is strict about
// structure (tokens, sections) but deliberately tolerant about entity
// content: semantic errors are handled later by the Extract repair pass,
// mirroring the paper's separation of parsing and error identification.
func Parse(src string) (*File, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{Instances: make(map[int]*Instance)}

	if err := p.expectIdent("ISO-10303-21"); err != nil {
		return nil, err
	}
	if err := p.expect(tokSemicolon); err != nil {
		return nil, err
	}
	if err := p.parseHeader(f); err != nil {
		return nil, err
	}
	if err := p.parseData(f); err != nil {
		return nil, err
	}
	// Trailer: END-ISO-10303-21;
	if p.cur.kind == tokIdent && p.cur.text == "END-ISO-10303-21" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind == tokSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) expect(kind tokenKind) error {
	if p.cur.kind != kind {
		return fmt.Errorf("ifc: line %d: unexpected token %s", p.cur.line, p.cur)
	}
	return p.advance()
}

func (p *parser) expectIdent(name string) error {
	if p.cur.kind != tokIdent || p.cur.text != name {
		return fmt.Errorf("ifc: line %d: expected %s, got %s", p.cur.line, name, p.cur)
	}
	return p.advance()
}

// parseHeader consumes HEADER;...ENDSEC; keeping FILE_NAME and FILE_SCHEMA.
func (p *parser) parseHeader(f *File) error {
	if err := p.expectIdent("HEADER"); err != nil {
		return err
	}
	if err := p.expect(tokSemicolon); err != nil {
		return err
	}
	for {
		if p.cur.kind == tokIdent && p.cur.text == "ENDSEC" {
			if err := p.advance(); err != nil {
				return err
			}
			return p.expect(tokSemicolon)
		}
		if p.cur.kind == tokEOF {
			return fmt.Errorf("ifc: unexpected EOF in header")
		}
		if p.cur.kind != tokIdent {
			return fmt.Errorf("ifc: line %d: expected header entity, got %s", p.cur.line, p.cur)
		}
		name := p.cur.text
		if err := p.advance(); err != nil {
			return err
		}
		args, err := p.parseList()
		if err != nil {
			return err
		}
		if err := p.expect(tokSemicolon); err != nil {
			return err
		}
		switch name {
		case "FILE_NAME":
			if len(args) > 0 && args[0].Kind == VString {
				f.FileName = args[0].Str
			}
		case "FILE_SCHEMA":
			if len(args) > 0 && args[0].Kind == VList && len(args[0].List) > 0 {
				f.SchemaName = args[0].List[0].Str
			}
		}
	}
}

func (p *parser) parseData(f *File) error {
	if err := p.expectIdent("DATA"); err != nil {
		return err
	}
	if err := p.expect(tokSemicolon); err != nil {
		return err
	}
	for {
		switch {
		case p.cur.kind == tokIdent && p.cur.text == "ENDSEC":
			if err := p.advance(); err != nil {
				return err
			}
			return p.expect(tokSemicolon)
		case p.cur.kind == tokEOF:
			return fmt.Errorf("ifc: unexpected EOF in data section")
		case p.cur.kind == tokRef:
			line := p.cur.line
			id, err := strconv.Atoi(strings.TrimPrefix(p.cur.text, "#"))
			if err != nil {
				return fmt.Errorf("ifc: line %d: bad instance id %q", line, p.cur.text)
			}
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expect(tokEquals); err != nil {
				return err
			}
			if p.cur.kind != tokIdent {
				return fmt.Errorf("ifc: line %d: expected entity type, got %s", p.cur.line, p.cur)
			}
			typ := strings.ToUpper(p.cur.text)
			if err := p.advance(); err != nil {
				return err
			}
			args, err := p.parseList()
			if err != nil {
				return err
			}
			if err := p.expect(tokSemicolon); err != nil {
				return err
			}
			if _, dup := f.Instances[id]; dup {
				return fmt.Errorf("ifc: line %d: duplicate instance #%d", line, id)
			}
			f.Instances[id] = &Instance{ID: id, Type: typ, Args: args, Line: line}
			f.Order = append(f.Order, id)
		default:
			return fmt.Errorf("ifc: line %d: expected instance, got %s", p.cur.line, p.cur)
		}
	}
}

// parseList parses a parenthesized, comma-separated argument list.
func (p *parser) parseList() ([]Value, error) {
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []Value
	if p.cur.kind == tokRParen {
		return out, p.advance()
	}
	for {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		switch p.cur.kind {
		case tokComma:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokRParen:
			return out, p.advance()
		default:
			return nil, fmt.Errorf("ifc: line %d: expected ',' or ')', got %s", p.cur.line, p.cur)
		}
	}
}

func (p *parser) parseValue() (Value, error) {
	switch p.cur.kind {
	case tokString:
		v := Value{Kind: VString, Str: p.cur.text}
		return v, p.advance()
	case tokNumber:
		n, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("ifc: line %d: bad number %q", p.cur.line, p.cur.text)
		}
		return Value{Kind: VNumber, Num: n}, p.advance()
	case tokRef:
		id, err := strconv.Atoi(strings.TrimPrefix(p.cur.text, "#"))
		if err != nil {
			return Value{}, fmt.Errorf("ifc: line %d: bad ref %q", p.cur.line, p.cur.text)
		}
		return Value{Kind: VRef, Ref: id}, p.advance()
	case tokDollar, tokStar:
		return Value{Kind: VNull}, p.advance()
	case tokLParen:
		list, err := p.parseList()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VList, List: list}, nil
	case tokIdent:
		v := Value{Kind: VEnum, Str: p.cur.text}
		return v, p.advance()
	default:
		return Value{}, fmt.Errorf("ifc: line %d: unexpected token %s in value", p.cur.line, p.cur)
	}
}
