package object

import (
	"math"
	"testing"

	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/model"
	"vita/internal/rng"
	"vita/internal/topo"
)

func mallTopo(t testing.TB) *topo.Topology {
	t.Helper()
	f, err := ifc.Parse(ifc.MallIFC())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(b, topo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestUniformPlacesInsidePartitions(t *testing.T) {
	tp := mallTopo(t)
	r := rng.New(1)
	for i := 0; i < 300; i++ {
		loc, err := (Uniform{}).Place(tp, r)
		if err != nil {
			t.Fatal(err)
		}
		p, ok := tp.B.Partition(loc.Floor, loc.Partition)
		if !ok {
			t.Fatalf("placed in unknown partition %s", loc.Partition)
		}
		if !p.Contains(loc.Point) {
			t.Fatalf("point %v outside its partition %s", loc.Point, p.ID)
		}
	}
}

func TestCrowdOutliersConcentrates(t *testing.T) {
	tp := mallTopo(t)
	r := rng.New(2)
	dist := CrowdOutliers{CrowdFraction: 0.8}
	// The mall names some shops "(on sale)": those are the hot areas.
	hot, err := dist.hotAreas(tp.B)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 {
		t.Fatal("no hot areas auto-selected")
	}
	hotIDs := map[string]bool{}
	for _, p := range hot {
		hotIDs[p.ID] = true
	}
	const n = 1000
	inHot := 0
	for i := 0; i < n; i++ {
		loc, err := dist.Place(tp, r)
		if err != nil {
			t.Fatal(err)
		}
		if hotIDs[loc.Partition] {
			inHot++
		}
	}
	frac := float64(inHot) / n
	// Hot partitions cover a small area fraction; crowd fraction 0.8 should
	// land well above a uniform baseline.
	if frac < 0.5 {
		t.Errorf("crowd fraction = %.2f, want >= 0.5", frac)
	}
}

func TestCrowdOutliersExplicitHotPartitions(t *testing.T) {
	tp := mallTopo(t)
	r := rng.New(3)
	dist := CrowdOutliers{CrowdFraction: 1.0, HotPartitions: []string{"F0-SHOP1"}}
	for i := 0; i < 100; i++ {
		loc, err := dist.Place(tp, r)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := tp.B.Partition(loc.Floor, loc.Partition)
		if p.ID != "F0-SHOP1" && p.Parent != "F0-SHOP1" {
			t.Fatalf("object escaped the only hot partition: %s", loc.Partition)
		}
	}
	bad := CrowdOutliers{HotPartitions: []string{"NOPE"}}
	if _, err := bad.Place(tp, r); err == nil {
		t.Error("unknown hot partition accepted")
	}
}

func TestSpawnConfigValidate(t *testing.T) {
	good := SpawnConfig{InitialCount: 1, MinLifespan: 10, MaxLifespan: 20, MaxSpeed: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	cases := []SpawnConfig{
		{InitialCount: -1, MinLifespan: 10, MaxLifespan: 20, MaxSpeed: 1},
		{MinLifespan: 0, MaxLifespan: 20, MaxSpeed: 1},
		{MinLifespan: 30, MaxLifespan: 20, MaxSpeed: 1},
		{MinLifespan: 10, MaxLifespan: 20, MaxSpeed: 0},
		{MinLifespan: 10, MaxLifespan: 20, MaxSpeed: 1, ArrivalRate: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSpawnerInitialPopulation(t *testing.T) {
	tp := mallTopo(t)
	sp, err := NewSpawner(tp, SpawnConfig{
		InitialCount: 25,
		MinLifespan:  100, MaxLifespan: 200,
		MaxSpeed: 2,
		Pattern:  DefaultPattern(),
	})
	if err != nil {
		t.Fatal(err)
	}
	objs, err := sp.Initial(rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 25 {
		t.Fatalf("spawned %d", len(objs))
	}
	ids := map[int]bool{}
	for _, o := range objs {
		if err := o.Validate(); err != nil {
			t.Errorf("invalid object: %v", err)
		}
		if o.Lifespan < 100 || o.Lifespan > 200 {
			t.Errorf("lifespan %v outside bounds", o.Lifespan)
		}
		if o.MaxSpeed < 1 || o.MaxSpeed > 2 {
			t.Errorf("speed %v outside [1,2]", o.MaxSpeed)
		}
		if ids[o.ID] {
			t.Errorf("duplicate object ID %d", o.ID)
		}
		ids[o.ID] = true
		if !o.Alive(o.Birth) || o.Alive(o.Death()) {
			t.Error("Alive boundaries wrong")
		}
	}
}

func TestSpawnerArrivalsRate(t *testing.T) {
	tp := mallTopo(t)
	const rate = 0.5
	const horizon = 2000.0
	sp, err := NewSpawner(tp, SpawnConfig{
		InitialCount: 0,
		MinLifespan:  10, MaxLifespan: 20,
		MaxSpeed:    1,
		ArrivalRate: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	if _, err := sp.Initial(r); err != nil {
		t.Fatal(err)
	}
	var arrivals []*Object
	prev := 0.0
	for tt := 10.0; tt <= horizon; tt += 10 {
		batch, err := sp.ArrivalsUntil(prev, tt, r)
		if err != nil {
			t.Fatal(err)
		}
		arrivals = append(arrivals, batch...)
		prev = tt
	}
	expected := rate * horizon
	got := float64(len(arrivals))
	if math.Abs(got-expected) > expected*0.15 {
		t.Errorf("arrivals = %v, expected ≈ %v", got, expected)
	}
	// Birth times must be non-decreasing and within the horizon.
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Birth < arrivals[i-1].Birth {
			t.Fatal("arrival births not ordered")
		}
	}
}

func TestSpawnerEmergingPartitions(t *testing.T) {
	tp := mallTopo(t)
	sp, err := NewSpawner(tp, SpawnConfig{
		InitialCount: 0,
		MinLifespan:  10, MaxLifespan: 20,
		MaxSpeed:           1,
		ArrivalRate:        1,
		EmergingPartitions: []string{"F0-CORR"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	if _, err := sp.Initial(r); err != nil {
		t.Fatal(err)
	}
	batch, err := sp.ArrivalsUntil(0, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 {
		t.Fatal("no arrivals")
	}
	for _, o := range batch {
		p, ok := tp.B.Partition(o.Loc.Floor, o.Loc.Partition)
		if !ok || (p.ID != "F0-CORR" && p.Parent != "F0-CORR") {
			t.Fatalf("arrival outside emerging partition: %s", o.Loc.Partition)
		}
	}
}

func TestPatternStrings(t *testing.T) {
	if DestinationIntent.String() != "destination" || RandomWayIntent.String() != "random-way" {
		t.Error("intention strings")
	}
	if ConstantWalk.String() != "constant-walk" || WalkStay.String() != "walk-stay" {
		t.Error("behavior strings")
	}
	if PhaseWalking.String() == "" || PhaseStaying.String() == "" || PhaseDead.String() == "" {
		t.Error("phase strings")
	}
}

func TestObjectValidate(t *testing.T) {
	o := &Object{ID: 1, Lifespan: 0, MaxSpeed: 1}
	if err := o.Validate(); err == nil {
		t.Error("zero lifespan accepted")
	}
	o = &Object{ID: 1, Lifespan: 10, MaxSpeed: 0}
	if err := o.Validate(); err == nil {
		t.Error("zero speed accepted")
	}
	o = &Object{ID: 1, Lifespan: 10, MaxSpeed: 1, Loc: model.At("b", 0, "p", geom.Pt(1, 1))}
	if err := o.Validate(); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
	if !o.Position().Eq(geom.Pt(1, 1)) {
		t.Error("Position accessor")
	}
}
