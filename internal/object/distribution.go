package object

import (
	"fmt"
	"sort"
	"strings"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rng"
	"vita/internal/topo"
)

// Distribution places newly created objects in the building (paper §3.1
// "Initial Distribution").
type Distribution interface {
	// Place returns an initial location for one object.
	Place(t *topo.Topology, r *rng.Rand) (model.Location, error)
	// Name identifies the model in reports.
	Name() string
}

// Uniform distributes objects evenly over the whole building: a partition is
// chosen with probability proportional to its area, then a point uniformly
// inside it.
type Uniform struct{}

// Name implements Distribution.
func (Uniform) Name() string { return "uniform" }

// Place implements Distribution.
func (Uniform) Place(t *topo.Topology, r *rng.Rand) (model.Location, error) {
	parts, weights := partitionAreas(t.B)
	if len(parts) == 0 {
		return model.Location{}, fmt.Errorf("object: building has no partitions")
	}
	p := parts[r.WeightedIndex(weights)]
	pt := topo.RandomPointIn(p, r.Float64)
	return model.At(t.B.ID, p.Floor, p.ID, pt), nil
}

// CrowdOutliers captures the paper's more common scenario: "a vast majority
// of objects are located around several hot areas to form crowds while
// others are distributed randomly as outliers", e.g. customers gathering
// around shops on sale.
type CrowdOutliers struct {
	// CrowdFraction is the probability a new object joins a crowd rather
	// than being an outlier. Typical: 0.8.
	CrowdFraction float64
	// CrowdRadius is the dispersion (m) of crowd members around the hot
	// area's anchor point.
	CrowdRadius float64
	// HotPartitions names the hot areas. Empty = auto-select: partitions
	// whose name contains "(on sale)", else the largest partitions.
	HotPartitions []string
	// NumHotAreas bounds auto-selection (default 3).
	NumHotAreas int
}

// Name implements Distribution.
func (CrowdOutliers) Name() string { return "crowd-outliers" }

// Place implements Distribution.
func (c CrowdOutliers) Place(t *topo.Topology, r *rng.Rand) (model.Location, error) {
	frac := c.CrowdFraction
	if frac <= 0 {
		frac = 0.8
	}
	radius := c.CrowdRadius
	if radius <= 0 {
		radius = 3
	}
	hot, err := c.hotAreas(t.B)
	if err != nil {
		return model.Location{}, err
	}
	if len(hot) == 0 || !r.Bool(frac) {
		return Uniform{}.Place(t, r) // outlier
	}
	p := hot[r.Intn(len(hot))]
	anchor := p.Center()
	// Gaussian scatter around the anchor, rejected into the partition.
	for i := 0; i < 64; i++ {
		pt := geom.Pt(anchor.X+r.Normal(0, radius/2), anchor.Y+r.Normal(0, radius/2))
		if p.Contains(pt) {
			return model.At(t.B.ID, p.Floor, p.ID, pt), nil
		}
	}
	return model.At(t.B.ID, p.Floor, p.ID, anchor), nil
}

// hotAreas resolves the configured or auto-selected hot partitions.
func (c CrowdOutliers) hotAreas(b *model.Building) ([]*model.Partition, error) {
	var out []*model.Partition
	if len(c.HotPartitions) > 0 {
		for _, id := range c.HotPartitions {
			found := false
			for _, level := range b.FloorLevels() {
				f := b.Floors[level]
				for _, p := range f.Partitions {
					if p.ID == id || p.Parent == id {
						out = append(out, p)
						found = true
					}
				}
			}
			if !found {
				return nil, fmt.Errorf("object: hot partition %q not found", id)
			}
		}
		return out, nil
	}
	// Auto: "(on sale)" shops first.
	for _, level := range b.FloorLevels() {
		for _, p := range b.Floors[level].Partitions {
			if strings.Contains(strings.ToLower(p.Name), "(on sale)") {
				out = append(out, p)
			}
		}
	}
	if len(out) > 0 {
		return out, nil
	}
	// Fallback: the largest non-hallway partitions.
	n := c.NumHotAreas
	if n <= 0 {
		n = 3
	}
	var all []*model.Partition
	for _, level := range b.FloorLevels() {
		for _, p := range b.Floors[level].Partitions {
			if p.Kind != model.KindHallway && p.Kind != model.KindStaircase {
				all = append(all, p)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		ai, aj := all[i].Polygon.Area(), all[j].Polygon.Area()
		if ai != aj {
			return ai > aj
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}

func partitionAreas(b *model.Building) ([]*model.Partition, []float64) {
	var parts []*model.Partition
	var weights []float64
	for _, level := range b.FloorLevels() {
		for _, p := range b.Floors[level].Partitions {
			parts = append(parts, p)
			weights = append(weights, p.Polygon.Area())
		}
	}
	return parts, weights
}
