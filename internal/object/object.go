// Package object implements Vita's Moving Object Layer configuration (paper
// §2, §3.1): moving objects with lifespans, initial distribution models
// (uniform, crowd-outliers), Poisson arrivals of new objects, and moving
// patterns composed of intention, routing and behavior.
package object

import (
	"fmt"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/topo"
)

// Intention is what drives an object's movement (paper §3.1: destination
// model vs random-way model).
type Intention int

// Intentions.
const (
	// DestinationIntent objects move toward chosen destinations.
	DestinationIntent Intention = iota
	// RandomWayIntent objects wander to random nearby places.
	RandomWayIntent
)

// String implements fmt.Stringer.
func (i Intention) String() string {
	if i == RandomWayIntent {
		return "random-way"
	}
	return "destination"
}

// Behavior is how an object executes its movement (paper §3.1: "pre-defined
// mechanisms to configure details such as the change of speed, the stop
// during the moving").
type Behavior int

// Behaviors.
const (
	// ConstantWalk walks at a steady speed without stopping.
	ConstantWalk Behavior = iota
	// WalkStay alternates between "walking along the path to its
	// destination" and "staying at the destination or a location on path"
	// after random periods of time.
	WalkStay
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	if b == WalkStay {
		return "walk-stay"
	}
	return "constant-walk"
}

// Pattern bundles the three moving-pattern aspects of §3.1.
type Pattern struct {
	Intention Intention
	Routing   topo.Metric
	Behavior  Behavior
	// MinStay/MaxStay bound the random stay duration (seconds) of WalkStay.
	MinStay, MaxStay float64
	// MinWalk/MaxWalk bound the walking period (seconds) before WalkStay may
	// pause mid-path; <= 0 means objects only stay at destinations.
	MinWalk, MaxWalk float64
	// SpeedJitter is the relative per-leg speed variation in [0,1): each leg
	// walks at speed uniformly drawn from maxSpeed*(1±SpeedJitter)/... — see
	// trajectory engine.
	SpeedJitter float64
}

// DefaultPattern returns a destination-driven walk-stay pattern.
func DefaultPattern() Pattern {
	return Pattern{
		Intention:   DestinationIntent,
		Routing:     topo.MinDistance,
		Behavior:    WalkStay,
		MinStay:     10,
		MaxStay:     120,
		SpeedJitter: 0.2,
	}
}

// Phase is the movement state of an object at an instant.
type Phase int

// Phases of an object's life.
const (
	PhaseWalking Phase = iota
	PhaseStaying
	PhaseDead
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseWalking:
		return "walking"
	case PhaseStaying:
		return "staying"
	default:
		return "dead"
	}
}

// Object is one indoor moving object.
type Object struct {
	ID       int
	Birth    float64 // simulation seconds
	Lifespan float64 // seconds; Death = Birth + Lifespan
	MaxSpeed float64 // m/s
	Pattern  Pattern

	// Dynamic state owned by the trajectory engine.
	Loc       model.Location
	Phase     Phase
	StayUntil float64
	// route progress
	Route    *topo.Route
	LegIndex int
	LegFrac  float64
	LegSpeed float64
}

// Death returns the simulation time at which the object disappears.
func (o *Object) Death() float64 { return o.Birth + o.Lifespan }

// Alive reports whether the object exists at time t.
func (o *Object) Alive(t float64) bool { return t >= o.Birth && t < o.Death() }

// Position returns the object's current coordinate.
func (o *Object) Position() geom.Point { return o.Loc.Point }

// Validate rejects impossible configurations.
func (o *Object) Validate() error {
	if o.Lifespan <= 0 {
		return fmt.Errorf("object %d: non-positive lifespan %.2f", o.ID, o.Lifespan)
	}
	if o.MaxSpeed <= 0 {
		return fmt.Errorf("object %d: non-positive max speed %.2f", o.ID, o.MaxSpeed)
	}
	return nil
}
