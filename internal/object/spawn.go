package object

import (
	"fmt"

	"vita/internal/model"
	"vita/internal/rng"
	"vita/internal/topo"
)

// SpawnConfig configures object generation (paper §2: "number, maximum
// speed, moving pattern, and lifespan"; §3.1: lifespan between user-specified
// bounds plus Poisson arrivals of new objects at configured emerging
// locations).
type SpawnConfig struct {
	// InitialCount objects exist at t=0.
	InitialCount int
	// MinLifespan/MaxLifespan bound each object's random lifespan (seconds).
	MinLifespan, MaxLifespan float64
	// MaxSpeed is the upper bound of object speed (m/s); per-object max
	// speeds are drawn uniformly from [0.5*MaxSpeed, MaxSpeed].
	MaxSpeed float64
	// Pattern is the moving pattern applied to all spawned objects.
	Pattern Pattern
	// Distribution places the initial population.
	Distribution Distribution

	// ArrivalRate is the Poisson rate (objects/second) of new objects during
	// the generation period; 0 disables arrivals.
	ArrivalRate float64
	// EmergingPartitions are where new objects appear (e.g. building
	// entrances). Empty = use Distribution for arrivals too.
	EmergingPartitions []string
}

// Validate rejects impossible configurations.
func (c SpawnConfig) Validate() error {
	if c.InitialCount < 0 {
		return fmt.Errorf("object: negative initial count")
	}
	if c.MinLifespan <= 0 || c.MaxLifespan < c.MinLifespan {
		return fmt.Errorf("object: invalid lifespan bounds [%.1f, %.1f]", c.MinLifespan, c.MaxLifespan)
	}
	if c.MaxSpeed <= 0 {
		return fmt.Errorf("object: non-positive max speed")
	}
	if c.ArrivalRate < 0 {
		return fmt.Errorf("object: negative arrival rate")
	}
	return nil
}

// Spawner creates objects: the initial population and Poisson arrivals.
type Spawner struct {
	cfg    SpawnConfig
	topo   *topo.Topology
	nextID int
	// nextArrival is the simulation time of the next Poisson arrival.
	nextArrival float64
}

// NewSpawner returns a Spawner for the building topology.
func NewSpawner(t *topo.Topology, cfg SpawnConfig) (*Spawner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Distribution == nil {
		cfg.Distribution = Uniform{}
	}
	return &Spawner{cfg: cfg, topo: t, nextID: 1}, nil
}

// Initial creates the t=0 population.
func (s *Spawner) Initial(r *rng.Rand) ([]*Object, error) {
	out := make([]*Object, 0, s.cfg.InitialCount)
	for i := 0; i < s.cfg.InitialCount; i++ {
		loc, err := s.cfg.Distribution.Place(s.topo, r)
		if err != nil {
			return nil, err
		}
		out = append(out, s.newObject(0, loc, r))
	}
	if s.cfg.ArrivalRate > 0 {
		s.nextArrival = r.ExpFloat64(s.cfg.ArrivalRate)
	}
	return out, nil
}

// ScheduleUntil materializes the full population of a run up-front: the t=0
// population followed by every Poisson arrival in (0, duration]. Because the
// arrival process is a chain of exponential inter-arrival draws, the object
// set (IDs, birth times, lifespans, speeds, initial locations) is identical
// to what incremental ArrivalsUntil calls over the same period would
// produce. Knowing the whole roster before simulation starts is what lets
// the trajectory engine shard objects across workers and merge their sample
// streams in time order.
func (s *Spawner) ScheduleUntil(duration float64, r *rng.Rand) ([]*Object, error) {
	out, err := s.Initial(r)
	if err != nil {
		return nil, err
	}
	arrivals, err := s.ArrivalsUntil(0, duration, r)
	if err != nil {
		return nil, err
	}
	return append(out, arrivals...), nil
}

// ArrivalsUntil creates the objects arriving in (prev, now] per the Poisson
// process.
func (s *Spawner) ArrivalsUntil(prev, now float64, r *rng.Rand) ([]*Object, error) {
	if s.cfg.ArrivalRate <= 0 {
		return nil, nil
	}
	var out []*Object
	for s.nextArrival <= now {
		t := s.nextArrival
		loc, err := s.emergingLocation(r)
		if err != nil {
			return nil, err
		}
		out = append(out, s.newObject(t, loc, r))
		s.nextArrival = t + r.ExpFloat64(s.cfg.ArrivalRate)
	}
	return out, nil
}

func (s *Spawner) emergingLocation(r *rng.Rand) (model.Location, error) {
	if len(s.cfg.EmergingPartitions) == 0 {
		return s.cfg.Distribution.Place(s.topo, r)
	}
	id := s.cfg.EmergingPartitions[r.Intn(len(s.cfg.EmergingPartitions))]
	// Accept decomposed children of the configured partition.
	var cands []*model.Partition
	for _, level := range s.topo.B.FloorLevels() {
		for _, p := range s.topo.B.Floors[level].Partitions {
			if p.ID == id || p.Parent == id {
				cands = append(cands, p)
			}
		}
	}
	if len(cands) == 0 {
		return model.Location{}, fmt.Errorf("object: emerging partition %q not found", id)
	}
	p := cands[r.Intn(len(cands))]
	pt := topo.RandomPointIn(p, r.Float64)
	return model.At(s.topo.B.ID, p.Floor, p.ID, pt), nil
}

func (s *Spawner) newObject(birth float64, loc model.Location, r *rng.Rand) *Object {
	o := &Object{
		ID:       s.nextID,
		Birth:    birth,
		Lifespan: r.Range(s.cfg.MinLifespan, s.cfg.MaxLifespan),
		MaxSpeed: r.Range(0.5*s.cfg.MaxSpeed, s.cfg.MaxSpeed),
		Pattern:  s.cfg.Pattern,
		Loc:      loc,
		Phase:    PhaseWalking,
	}
	s.nextID++
	return o
}
