// Package render draws ASCII floor plans — the CLI stand-in for the paper's
// GUI map view (Figure 4): partitions, doors, staircases, deployed devices
// and moving-object snapshots.
package render

import (
	"fmt"
	"strings"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/trajectory"
)

// Options control rendering.
type Options struct {
	// Width is the character width of the canvas (height follows the floor
	// aspect ratio; terminal cells are ~2x taller than wide).
	Width int
}

// Floor renders one floor with optional devices and a trajectory snapshot.
func Floor(f *model.Floor, devs []*device.Device, snapshot []trajectory.Sample, opts Options) string {
	if opts.Width <= 0 {
		opts.Width = 80
	}
	bb := f.BBox()
	if bb.IsEmpty() {
		return "(empty floor)\n"
	}
	w := opts.Width
	h := int(float64(w) * bb.Height() / bb.Width() / 2)
	if h < 4 {
		h = 4
	}
	canvas := make([][]byte, h)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(p geom.Point, c byte) {
		x := int((p.X - bb.Min.X) / bb.Width() * float64(w-1))
		y := int((p.Y - bb.Min.Y) / bb.Height() * float64(h-1))
		y = h - 1 - y // screen y grows downward
		if x >= 0 && x < w && y >= 0 && y < h {
			canvas[y][x] = c
		}
	}

	// Partition boundaries.
	for _, p := range f.Partitions {
		for _, e := range p.Polygon.Edges() {
			steps := int(e.Length()*2) + 1
			for i := 0; i <= steps; i++ {
				plot(e.At(float64(i)/float64(steps)), '#')
			}
		}
	}
	// Doors.
	for _, d := range f.Doors {
		if d.Name == "virtual pass-through" {
			continue
		}
		plot(d.Position, '+')
	}
	// Devices.
	for _, dv := range devs {
		if dv.Floor != f.Level {
			continue
		}
		plot(dv.Position, 'D')
	}
	// Objects.
	for _, s := range snapshot {
		if s.Loc.Floor == f.Level {
			plot(s.Loc.Point, 'o')
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Floor %d (%s): %d partitions, %d doors  [#=wall +=door D=device o=object]\n",
		f.Level, f.Name, len(f.Partitions), len(f.Doors))
	for _, row := range canvas {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Building renders every floor of a building in level order.
func Building(b *model.Building, devs []*device.Device, snapshot []trajectory.Sample, opts Options) string {
	var sb strings.Builder
	for _, level := range b.FloorLevels() {
		sb.WriteString(Floor(b.Floors[level], devs, snapshot, opts))
		sb.WriteByte('\n')
	}
	return sb.String()
}
