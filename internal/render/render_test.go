package render

import (
	"strings"
	"testing"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/model"
	"vita/internal/trajectory"
)

func TestFloorRenderContainsMarkers(t *testing.T) {
	b := ifc.Office(ifc.DefaultOfficeSpec())
	f := b.Floors[0]
	devs := []*device.Device{
		{ID: "d", Floor: 0, Position: geom.Pt(20, 10), Props: device.DefaultProperties(device.WiFi)},
	}
	snap := []trajectory.Sample{
		{ObjID: 1, Loc: model.At("office", 0, "F0-S0", geom.Pt(4, 4)), T: 0},
	}
	out := Floor(f, devs, snap, Options{Width: 80})
	if !strings.Contains(out, "#") {
		t.Error("no walls rendered")
	}
	if !strings.Contains(out, "+") {
		t.Error("no doors rendered")
	}
	if !strings.Contains(out, "D") {
		t.Error("no device rendered")
	}
	if !strings.Contains(out, "o") {
		t.Error("no object rendered")
	}
	if !strings.Contains(out, "Floor 0") {
		t.Error("no header rendered")
	}
}

func TestBuildingRendersAllFloors(t *testing.T) {
	b := ifc.Office(ifc.DefaultOfficeSpec())
	out := Building(b, nil, nil, Options{Width: 60})
	if !strings.Contains(out, "Floor 0") || !strings.Contains(out, "Floor 1") {
		t.Error("missing floors in building render")
	}
}

func TestEmptyFloor(t *testing.T) {
	f := model.NewFloor(0, 0, 3)
	if out := Floor(f, nil, nil, Options{}); !strings.Contains(out, "empty") {
		t.Errorf("empty floor render = %q", out)
	}
}

func TestWrongFloorMarkersSkipped(t *testing.T) {
	b := ifc.Office(ifc.DefaultOfficeSpec())
	f := b.Floors[0]
	devs := []*device.Device{
		{ID: "d", Floor: 1, Position: geom.Pt(20, 10), Props: device.DefaultProperties(device.WiFi)},
	}
	snap := []trajectory.Sample{
		{ObjID: 1, Loc: model.At("office", 1, "F1-S0", geom.Pt(4, 4)), T: 0},
	}
	out := Floor(f, devs, snap, Options{Width: 80})
	if strings.Contains(out, "D") || strings.Contains(out, "o") {
		// "Floor" contains 'o'; check the canvas only.
		lines := strings.SplitN(out, "\n", 2)
		if len(lines) == 2 && (strings.Contains(lines[1], "D") || strings.Contains(lines[1], "o")) {
			t.Error("wrong-floor markers rendered")
		}
	}
}
