package topo

import (
	"fmt"
	"sort"

	"vita/internal/geom"
	"vita/internal/model"
)

// DecomposeOptions control the irregular-partition decomposition of §4.1:
// "rooms or hallways with irregular shapes are decomposed into balanced,
// smaller partitions according to their sizes and shapes".
type DecomposeOptions struct {
	// MaxArea splits any partition larger than this (m²). <= 0 disables the
	// size criterion.
	MaxArea float64
	// MaxAspect splits any partition whose bounding-box aspect ratio exceeds
	// this. <= 0 disables the shape criterion.
	MaxAspect float64
	// SplitNonConvex splits partitions with reflex vertices regardless of
	// size.
	SplitNonConvex bool
	// MaxDepth bounds the recursion (a safety net for degenerate shapes).
	MaxDepth int
}

// DefaultDecomposeOptions returns the defaults used by the toolkit.
func DefaultDecomposeOptions() DecomposeOptions {
	return DecomposeOptions{MaxArea: 120, MaxAspect: 4, SplitNonConvex: true, MaxDepth: 8}
}

// Decompose replaces every irregular partition of the building with balanced
// sub-partitions, re-homes doors onto the resulting children, and inserts
// pass-through virtual doors along each cut so routing across the original
// space stays possible. It returns the number of partitions added (children
// minus removed parents).
func Decompose(b *model.Building, opts DecomposeOptions) (int, error) {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 8
	}
	added := 0
	for _, level := range b.FloorLevels() {
		f := b.Floors[level]
		// Snapshot: we mutate f.Partitions while iterating.
		originals := append([]*model.Partition(nil), f.Partitions...)
		for _, p := range originals {
			n, err := decomposePartition(f, p, opts)
			if err != nil {
				return added, err
			}
			added += n
		}
	}
	return added, nil
}

func needsSplit(poly geom.Polygon, opts DecomposeOptions, depth int) bool {
	if depth >= opts.MaxDepth {
		return false
	}
	if opts.MaxArea > 0 && poly.Area() > opts.MaxArea {
		return true
	}
	if opts.MaxAspect > 0 && poly.AspectRatio() > opts.MaxAspect {
		return true
	}
	if opts.SplitNonConvex && !poly.IsConvex() {
		return true
	}
	return false
}

func decomposePartition(f *model.Floor, p *model.Partition, opts DecomposeOptions) (int, error) {
	if !needsSplit(p.Polygon, opts, 0) {
		return 0, nil
	}
	parent := p.ID
	if p.Parent != "" {
		parent = p.Parent
	}
	pieces, cuts := splitRecursive(p.Polygon, opts, 0)
	if len(pieces) <= 1 {
		return 0, nil
	}
	if !f.RemovePartition(p.ID) {
		return 0, fmt.Errorf("topo: decompose: partition %s vanished from floor %d", p.ID, f.Level)
	}
	children := make([]*model.Partition, len(pieces))
	for i, poly := range pieces {
		children[i] = &model.Partition{
			ID:      fmt.Sprintf("%s.%d", p.ID, i+1),
			Name:    p.Name,
			Floor:   p.Floor,
			Polygon: poly,
			Kind:    p.Kind,
			Parent:  parent,
		}
		if err := f.AddPartition(children[i]); err != nil {
			return 0, err
		}
	}
	rehomeDoors(f, p.ID, children)
	addCutDoors(f, p.ID, cuts, children)
	return len(children) - 1, nil
}

// splitRecursive splits poly until balanced, returning the pieces and the cut
// segments introduced.
func splitRecursive(poly geom.Polygon, opts DecomposeOptions, depth int) ([]geom.Polygon, []geom.Segment) {
	if !needsSplit(poly, opts, depth) {
		return []geom.Polygon{poly}, nil
	}
	bb := poly.BBox()
	c := poly.Centroid()
	var a, b geom.Point
	if bb.Width() >= bb.Height() {
		// Cut vertically through the centroid.
		a, b = geom.Pt(c.X, bb.Min.Y-1), geom.Pt(c.X, bb.Max.Y+1)
	} else {
		a, b = geom.Pt(bb.Min.X-1, c.Y), geom.Pt(bb.Max.X+1, c.Y)
	}
	left, right := poly.SplitByLine(a, b)
	if len(left) < 3 || len(right) < 3 ||
		left.Area() < geom.Eps || right.Area() < geom.Eps {
		return []geom.Polygon{poly}, nil
	}
	cut := cutSegment(left, a, b)
	lp, lc := splitRecursive(left, opts, depth+1)
	rp, rc := splitRecursive(right, opts, depth+1)
	pieces := append(lp, rp...)
	cuts := append([]geom.Segment{cut}, append(lc, rc...)...)
	return pieces, cuts
}

// cutSegment returns the portion of the split line lying on the piece
// boundary: the extreme boundary vertices of the piece that lie on the line
// a→b.
func cutSegment(piece geom.Polygon, a, b geom.Point) geom.Segment {
	dir := b.Sub(a).Unit()
	var onLine []geom.Point
	for _, p := range piece {
		if absDistToLine(p, a, dir) < 1e-6 {
			onLine = append(onLine, p)
		}
	}
	if len(onLine) < 2 {
		return geom.Seg(a, b)
	}
	// Extremes along the line direction.
	minT, maxT := onLine[0], onLine[0]
	minV, maxV := onLine[0].Sub(a).Dot(dir), onLine[0].Sub(a).Dot(dir)
	for _, p := range onLine[1:] {
		t := p.Sub(a).Dot(dir)
		if t < minV {
			minV, minT = t, p
		}
		if t > maxV {
			maxV, maxT = t, p
		}
	}
	return geom.Seg(minT, maxT)
}

func absDistToLine(p, a, unitDir geom.Point) float64 {
	d := unitDir.Cross(p.Sub(a))
	if d < 0 {
		return -d
	}
	return d
}

// rehomeDoors rewrites door partition references from the removed parent to
// the child whose boundary hosts the door.
func rehomeDoors(f *model.Floor, removedID string, children []*model.Partition) {
	for _, d := range f.Doors {
		for side := 0; side < 2; side++ {
			if d.Partitions[side] != removedID {
				continue
			}
			best := ""
			bestDist := doorSnapTol
			for _, c := range children {
				if dd := c.Polygon.DistToBoundary(d.Position); dd <= bestDist {
					best, bestDist = c.ID, dd
				}
			}
			if best == "" && len(children) > 0 {
				// Fall back to the nearest child.
				best = children[0].ID
				bd := children[0].Polygon.DistToBoundary(d.Position)
				for _, c := range children[1:] {
					if dd := c.Polygon.DistToBoundary(d.Position); dd < bd {
						best, bd = c.ID, dd
					}
				}
			}
			d.Partitions[side] = best
		}
	}
}

// addCutDoors inserts a wide pass-through virtual door at the midpoint of
// every cut, connecting the two children adjacent to it.
func addCutDoors(f *model.Floor, parentID string, cuts []geom.Segment, children []*model.Partition) {
	for i, cut := range cuts {
		mid := cut.Midpoint()
		var adj []*model.Partition
		for _, c := range children {
			if c.Polygon.DistToBoundary(mid) <= doorSnapTol {
				adj = append(adj, c)
			}
		}
		if len(adj) < 2 {
			continue
		}
		sort.Slice(adj, func(x, y int) bool {
			return adj[x].Polygon.DistToBoundary(mid) < adj[y].Polygon.DistToBoundary(mid)
		})
		f.Doors = append(f.Doors, &model.Door{
			ID:         fmt.Sprintf("%s-cut%d", parentID, i+1),
			Name:       "virtual pass-through",
			Floor:      f.Level,
			Position:   mid,
			Width:      cut.Length(),
			Partitions: [2]string{adj[0].ID, adj[1].ID},
		})
	}
}
