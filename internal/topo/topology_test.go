package topo

import (
	"testing"

	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/model"
)

// officeTopo parses the synthetic office through the full IFC path and builds
// its topology.
func officeTopo(t testing.TB) *Topology {
	t.Helper()
	f, err := ifc.Parse(ifc.OfficeIFC())
	if err != nil {
		t.Fatalf("parse office IFC: %v", err)
	}
	b, rep, err := ifc.Extract(f, ifc.DefaultExtractOptions())
	if err != nil {
		t.Fatalf("extract office: %v", err)
	}
	if errs := rep.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected DBI errors: %v", errs)
	}
	topo, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatalf("build topology: %v", err)
	}
	return topo
}

func TestConnectDoorsOffice(t *testing.T) {
	topo := officeTopo(t)
	f := topo.B.Floors[0]
	for _, d := range f.Doors {
		if d.Partitions[0] == "" {
			t.Errorf("door %s has no primary partition", d.ID)
		}
	}
	// A south-room door must connect its room (or a decomposed child) to the
	// hallway (or a hallway child).
	var found bool
	for _, d := range f.Doors {
		if d.ID == "F0-DS1" {
			found = true
			ok := false
			for _, pid := range d.Partitions {
				p, exists := f.Partition(pid)
				if exists && (p.Parent == "F0-HALL" || p.ID == "F0-HALL") {
					ok = true
				}
			}
			if !ok {
				t.Errorf("door F0-DS1 connects %v, expected one side in the hallway", d.Partitions)
			}
		}
	}
	if !found {
		t.Fatalf("door F0-DS1 missing")
	}
}

func TestStaircaseLinking(t *testing.T) {
	topo := officeTopo(t)
	if len(topo.B.Staircases) != 1 {
		t.Fatalf("want 1 staircase, got %d", len(topo.B.Staircases))
	}
	s := topo.B.Staircases[0]
	if !s.Linked {
		t.Fatalf("staircase not linked")
	}
	if s.LowerFloor != 0 || s.UpperFloor != 1 {
		t.Errorf("staircase links floors %d-%d, want 0-1", s.LowerFloor, s.UpperFloor)
	}
	lo, ok := topo.B.Partition(s.LowerFloor, s.LowerPartition)
	if !ok {
		t.Fatalf("lower partition %s missing", s.LowerPartition)
	}
	// The stair sits in the hallway.
	if lo.ID != "F0-HALL" && lo.Parent != "F0-HALL" {
		t.Errorf("stair lower partition = %s (parent %s), want hallway", lo.ID, lo.Parent)
	}
}

func TestCrossFloorRoute(t *testing.T) {
	topo := officeTopo(t)
	from := model.At("office", 0, "", geom.Pt(4, 4))   // inside F0-S0 (canteen)
	to := model.At("office", 1, "", geom.Pt(36, 18.5)) // inside F1-N4
	r, err := topo.Route(from, to, MinDistance, DefaultSpeedModel())
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if r.Distance <= 0 || r.Time <= 0 {
		t.Fatalf("degenerate route: %+v", r)
	}
	// Route must traverse the staircase.
	sawStair := false
	for _, wp := range r.Waypoints {
		if wp.Stair {
			sawStair = true
		}
	}
	if !sawStair {
		t.Errorf("cross-floor route does not use the staircase: %+v", r.Waypoints)
	}
	// Endpoint floors must match.
	if r.Waypoints[0].Floor != 0 || r.Waypoints[len(r.Waypoints)-1].Floor != 1 {
		t.Errorf("route endpoints on wrong floors")
	}
}

func TestSameFloorRouteDistanceSanity(t *testing.T) {
	topo := officeTopo(t)
	from := model.At("office", 0, "", geom.Pt(4, 4))
	to := model.At("office", 0, "", geom.Pt(36, 4))
	r, err := topo.Route(from, to, MinDistance, DefaultSpeedModel())
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	euclid := from.Point.Dist(to.Point)
	if r.Distance < euclid-geom.Eps {
		t.Errorf("indoor distance %.2f below Euclidean %.2f", r.Distance, euclid)
	}
	if r.Distance > 4*euclid {
		t.Errorf("indoor distance %.2f implausibly above Euclidean %.2f", r.Distance, euclid)
	}
}

func TestMinTimePrefersFasterHallways(t *testing.T) {
	topo := officeTopo(t)
	from := model.At("office", 0, "", geom.Pt(4, 4))
	to := model.At("office", 0, "", geom.Pt(36, 4))
	sm := DefaultSpeedModel()
	rd, err := topo.Route(from, to, MinDistance, sm)
	if err != nil {
		t.Fatalf("min-dist route: %v", err)
	}
	rt, err := topo.Route(from, to, MinTime, sm)
	if err != nil {
		t.Fatalf("min-time route: %v", err)
	}
	if rt.Time > rd.Time+geom.Eps {
		t.Errorf("min-time route slower (%.2fs) than min-distance route (%.2fs)", rt.Time, rd.Time)
	}
	if rd.Distance > rt.Distance+geom.Eps {
		t.Errorf("min-distance route longer (%.2fm) than min-time route (%.2fm)", rd.Distance, rt.Distance)
	}
}

func TestDecompositionBalances(t *testing.T) {
	topo := officeTopo(t)
	opts := DefaultDecomposeOptions()
	for _, level := range topo.B.FloorLevels() {
		for _, p := range topo.B.Floors[level].Partitions {
			if opts.MaxArea > 0 && p.Polygon.Area() > opts.MaxArea+geom.Eps {
				t.Errorf("partition %s area %.1f exceeds max %.1f", p.ID, p.Polygon.Area(), opts.MaxArea)
			}
		}
	}
	if topo.DecomposedPartitions() == 0 {
		t.Errorf("expected the long hallway to be decomposed")
	}
}

func TestDoorDirectionalityBlocks(t *testing.T) {
	// Build a two-room world with a one-way door.
	b := model.NewBuilding("tiny", "tiny")
	f := model.NewFloor(0, 0, 3)
	pa := &model.Partition{ID: "A", Floor: 0, Polygon: geom.Rect(0, 0, 5, 5)}
	pb := &model.Partition{ID: "B", Floor: 0, Polygon: geom.Rect(5, 0, 10, 5)}
	if err := f.AddPartition(pa); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPartition(pb); err != nil {
		t.Fatal(err)
	}
	f.Doors = append(f.Doors, &model.Door{
		ID: "D", Floor: 0, Position: geom.Pt(5, 2.5), Width: 1,
		Direction: model.AToB,
	})
	if err := b.AddFloor(f); err != nil {
		t.Fatal(err)
	}
	topo, err := Build(b, Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	d := f.Doors[0]
	// ConnectDoors ordered partitions lexicographically: A then B.
	if d.Partitions[0] != "A" || d.Partitions[1] != "B" {
		t.Fatalf("door partitions = %v", d.Partitions)
	}
	fromA := model.At("tiny", 0, "", geom.Pt(2, 2))
	fromB := model.At("tiny", 0, "", geom.Pt(8, 2))
	if _, err := topo.Route(fromA, fromB, MinDistance, DefaultSpeedModel()); err != nil {
		t.Errorf("A->B should be allowed: %v", err)
	}
	if _, err := topo.Route(fromB, fromA, MinDistance, DefaultSpeedModel()); err == nil {
		t.Errorf("B->A should be blocked by door directionality")
	}
}

func TestWallCrossings(t *testing.T) {
	topo := officeTopo(t)
	// Two points in adjacent south rooms on floor 0: the separating wall
	// should be crossed.
	n := topo.Crossings(0, geom.Pt(4, 4), geom.Pt(12, 4))
	if n == 0 {
		t.Errorf("expected wall crossings between adjacent rooms, got 0")
	}
	// Two points within one room: no crossings.
	if n := topo.Crossings(0, geom.Pt(2, 2), geom.Pt(3, 3)); n != 0 {
		t.Errorf("expected 0 crossings within a room, got %d", n)
	}
}
