package topo

import (
	"fmt"

	"vita/internal/geom"
	"vita/internal/index"
	"vita/internal/model"
)

// Options configure topology construction.
type Options struct {
	// Decompose enables irregular-partition decomposition with the given
	// options; nil disables it.
	Decompose *DecomposeOptions
	// Semantics, when non-nil, runs semantic extraction after construction.
	Semantics []model.SemanticRule
}

// DefaultOptions returns the standard construction pipeline: decomposition
// on, default semantic rules.
func DefaultOptions() Options {
	d := DefaultDecomposeOptions()
	return Options{
		Decompose: &d,
		Semantics: model.DefaultSemanticRules(3, 60),
	}
}

// Topology wraps a building with its derived geometrical/topological
// information: door connectivity, staircase links, spatial indices, wall
// sets, and the accessibility graph used for routing (paper §4.1, §2).
type Topology struct {
	B *model.Building

	graph    *graph
	walls    map[int]*geom.WallSet
	partIdx  map[int]*index.RTree
	decomped int
}

// Build derives the full topology of a building: door→partition
// connectivity, optional decomposition, staircase linking, semantic
// extraction, spatial indexing, and the accessibility graph.
func Build(b *model.Building, opts Options) (*Topology, error) {
	if err := ConnectDoors(b); err != nil {
		return nil, err
	}
	decomped := 0
	if opts.Decompose != nil {
		n, err := Decompose(b, *opts.Decompose)
		if err != nil {
			return nil, err
		}
		decomped = n
		// Decomposition may have split the partitions a door touches;
		// reconnect any door left referencing a removed ID is handled by
		// rehoming, but new adjacencies (a door now bordering a child of a
		// different parent) justify a final reconnect pass.
		if err := ConnectDoors(b); err != nil {
			return nil, err
		}
	}
	if err := LinkStaircases(b); err != nil {
		return nil, err
	}
	if opts.Semantics != nil {
		model.ApplySemantics(b, opts.Semantics)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}

	t := &Topology{
		B:        b,
		walls:    make(map[int]*geom.WallSet),
		partIdx:  make(map[int]*index.RTree),
		decomped: decomped,
	}
	for _, level := range b.FloorLevels() {
		f := b.Floors[level]
		t.walls[level] = f.WallSet()
		items := make([]index.Item, 0, len(f.Partitions))
		for _, p := range f.Partitions {
			items = append(items, p)
		}
		t.partIdx[level] = index.BulkLoad(items)
	}
	t.graph = buildGraph(b)
	return t, nil
}

// DecomposedPartitions returns how many extra partitions decomposition
// introduced.
func (t *Topology) DecomposedPartitions() int { return t.decomped }

// Walls returns the wall set of the given floor (nil for unknown floors).
func (t *Topology) Walls(floor int) *geom.WallSet { return t.walls[floor] }

// PartitionAt locates the partition containing pt on the given floor using
// the spatial index.
func (t *Topology) PartitionAt(floor int, pt geom.Point) (*model.Partition, bool) {
	idx, ok := t.partIdx[floor]
	if !ok {
		return nil, false
	}
	var best *model.Partition
	bestArea := 0.0
	for _, it := range idx.SearchPoint(pt, nil) {
		p := it.(*model.Partition)
		if p.Contains(pt) {
			a := p.Polygon.Area()
			if best == nil || a < bestArea {
				best, bestArea = p, a
			}
		}
	}
	return best, best != nil
}

// resolvePartition fills in the partition of a location from its coordinate
// when absent, and validates it when present.
func (t *Topology) resolvePartition(loc model.Location) (string, error) {
	if loc.Partition != "" {
		if _, ok := t.B.Partition(loc.Floor, loc.Partition); ok {
			return loc.Partition, nil
		}
		// The caller may hold a pre-decomposition ID; fall through to
		// coordinate resolution.
	}
	if !loc.HasPoint {
		return "", fmt.Errorf("topo: location %s has neither a known partition nor a coordinate", loc)
	}
	p, ok := t.PartitionAt(loc.Floor, loc.Point)
	if !ok {
		return "", fmt.Errorf("topo: location %s lies in no partition", loc)
	}
	return p.ID, nil
}

// Route computes a route between two locations under the given metric and
// speed model.
func (t *Topology) Route(from, to model.Location, metric Metric, sm SpeedModel) (*Route, error) {
	return t.route(from, to, metric, sm)
}

// WalkingDistance returns the minimum indoor walking distance between two
// locations in meters.
func (t *Topology) WalkingDistance(from, to model.Location) (float64, error) {
	r, err := t.route(from, to, MinDistance, DefaultSpeedModel())
	if err != nil {
		return 0, err
	}
	return r.Distance, nil
}

// GraphSize returns the number of nodes and directed edges of the
// accessibility graph (diagnostics and benchmarks).
func (t *Topology) GraphSize() (nodes, edges int) {
	nodes = len(t.graph.nodes)
	for _, a := range t.graph.adj {
		edges += len(a)
	}
	return
}

// Crossings counts the walls crossed by the straight path a→b on the given
// floor; it backs the RSSI obstacle-noise term.
func (t *Topology) Crossings(floor int, a, b geom.Point) int {
	ws, ok := t.walls[floor]
	if !ok {
		return 0
	}
	return ws.Crossings(a, b)
}

// RandomPointIn returns a point sampled uniformly from the partition's
// polygon (rejection sampling over its bounding box). rnd must return
// uniform values in [0,1).
func RandomPointIn(p *model.Partition, rnd func() float64) geom.Point {
	bb := p.Polygon.BBox()
	for i := 0; i < 1024; i++ {
		pt := geom.Pt(
			bb.Min.X+rnd()*bb.Width(),
			bb.Min.Y+rnd()*bb.Height(),
		)
		if p.Contains(pt) {
			return pt
		}
	}
	return p.Center()
}
