// Package topo derives Vita's geometrical/topological information from the
// host indoor environment (paper §4.1): door→partition connectivity,
// irregular-partition decomposition, the two-step staircase-linking
// algorithm, and indoor routing by minimum walking distance or minimum
// walking time (§3.1).
package topo

import (
	"fmt"
	"sort"

	"vita/internal/model"
)

// doorSnapTol is how close a door must be to a partition boundary to be
// considered incident to it.
const doorSnapTol = 0.3

// ConnectDoors computes, for every door of the building, the (up to) two
// partitions it connects, through topology and geometry computations. Doors
// incident to fewer than two partitions get the exterior ("") on the open
// side. It returns an error for doors incident to no partition at all.
func ConnectDoors(b *model.Building) error {
	for _, level := range b.FloorLevels() {
		f := b.Floors[level]
		for _, d := range f.Doors {
			if err := connectDoor(f, d); err != nil {
				return err
			}
		}
	}
	return nil
}

func connectDoor(f *model.Floor, d *model.Door) error {
	type cand struct {
		id   string
		dist float64
	}
	var cands []cand
	for _, p := range f.Partitions {
		dist := p.Polygon.DistToBoundary(d.Position)
		if dist <= doorSnapTol {
			cands = append(cands, cand{id: p.ID, dist: dist})
		}
	}
	if len(cands) == 0 {
		return fmt.Errorf("topo: door %s on floor %d touches no partition boundary", d.ID, f.Level)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	d.Partitions[0] = cands[0].id
	if len(cands) > 1 {
		d.Partitions[1] = cands[1].id
	} else {
		d.Partitions[1] = "" // exterior
	}
	return nil
}
