package topo

import (
	"fmt"
	"math"

	"vita/internal/geom"
	"vita/internal/model"
)

// zCluster is how far (meters) a vertex may be from the extreme elevation and
// still count as an "upper (lower) vertex" of the staircase boundary.
const zCluster = 0.5

// LinkStaircases resolves the floor and partition connectivity of every
// staircase with the two-step algorithm of paper §4.1:
//
//  1. Identify the upper (lower) vertices on the staircase boundary by
//     geometry computation, and select as the upper (lower) connected floor
//     the floor having the maximum intersection with those vertices.
//  2. Within the connected floor, return the partition containing the
//     upper (lower) vertices as the connected partition.
//
// It returns an error when any staircase cannot be linked.
func LinkStaircases(b *model.Building) error {
	for _, s := range b.Staircases {
		if err := linkStaircase(b, s); err != nil {
			return err
		}
	}
	return nil
}

func linkStaircase(b *model.Building, s *model.Staircase) error {
	if len(s.Points) == 0 {
		return fmt.Errorf("topo: staircase %s has no boundary points", s.ID)
	}
	upper := extremeVertices(s.Points, true)
	lower := extremeVertices(s.Points, false)

	upFloor, err := floorByMaxIntersection(b, upper)
	if err != nil {
		return fmt.Errorf("topo: staircase %s upper link: %w", s.ID, err)
	}
	loFloor, err := floorByMaxIntersection(b, lower)
	if err != nil {
		return fmt.Errorf("topo: staircase %s lower link: %w", s.ID, err)
	}
	if upFloor.Level == loFloor.Level {
		return fmt.Errorf("topo: staircase %s links floor %d to itself", s.ID, upFloor.Level)
	}
	upPart, err := containingPartition(upFloor, upper)
	if err != nil {
		return fmt.Errorf("topo: staircase %s upper partition: %w", s.ID, err)
	}
	loPart, err := containingPartition(loFloor, lower)
	if err != nil {
		return fmt.Errorf("topo: staircase %s lower partition: %w", s.ID, err)
	}
	s.UpperFloor = upFloor.Level
	s.LowerFloor = loFloor.Level
	s.UpperPartition = upPart.ID
	s.LowerPartition = loPart.ID
	s.Linked = true
	return nil
}

// extremeVertices returns the boundary vertices within zCluster of the
// maximum (upper=true) or minimum elevation.
func extremeVertices(pts []geom.Point3, upper bool) []geom.Point3 {
	extreme := pts[0].Z
	for _, p := range pts {
		if (upper && p.Z > extreme) || (!upper && p.Z < extreme) {
			extreme = p.Z
		}
	}
	var out []geom.Point3
	for _, p := range pts {
		if math.Abs(p.Z-extreme) <= zCluster {
			out = append(out, p)
		}
	}
	return out
}

// floorByMaxIntersection selects the floor whose vertical extent
// [elevation, elevation+height) contains the most of the given vertices —
// "the floor having the maximum intersection with the upper (lower)
// vertices" (§4.1). Elevation ties break toward the lower level.
func floorByMaxIntersection(b *model.Building, verts []geom.Point3) (*model.Floor, error) {
	var best *model.Floor
	bestCount := 0
	for _, level := range b.FloorLevels() {
		f := b.Floors[level]
		count := 0
		for _, v := range verts {
			if v.Z >= f.Elevation-zCluster && v.Z < f.Elevation+f.Height-zCluster {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = f, count
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no floor intersects the vertex elevations")
	}
	return best, nil
}

// containingPartition returns the partition on f containing the centroid of
// the given vertices, falling back to the partition nearest to it.
func containingPartition(f *model.Floor, verts []geom.Point3) (*model.Partition, error) {
	var c geom.Point
	for _, v := range verts {
		c = c.Add(v.XY())
	}
	c = c.Scale(1 / float64(len(verts)))
	if p, ok := f.PartitionAt(c); ok {
		return p, nil
	}
	// Fall back to the nearest partition; real DBI data often places the
	// stair footprint just outside a space boundary.
	var best *model.Partition
	bestDist := math.Inf(1)
	for _, p := range f.Partitions {
		if d := p.Polygon.DistToBoundary(c); d < bestDist {
			best, bestDist = p, d
		}
	}
	if best == nil || bestDist > 2.0 {
		return nil, fmt.Errorf("no partition contains or borders the stair footprint at %s", c)
	}
	return best, nil
}
