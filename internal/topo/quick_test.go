package topo

import (
	"math"
	"testing"
	"testing/quick"

	"vita/internal/ifc"
	"vita/internal/model"
	"vita/internal/rng"
)

// TestQuickRouteAtLeastEuclidean: for random same-floor OD pairs, the indoor
// walking distance is never below the Euclidean distance.
func TestQuickRouteAtLeastEuclidean(t *testing.T) {
	tp := officeTopo(t)
	r := rng.New(99)
	sm := DefaultSpeedModel()
	f := func(seed uint64) bool {
		rr := rng.New(seed ^ r.Uint64())
		from, to, ok := randomPairSameBuilding(tp, rr)
		if !ok {
			return true
		}
		route, err := tp.Route(from, to, MinDistance, sm)
		if err != nil {
			return true // disconnected pairs are fine
		}
		if from.Floor != to.Floor {
			return route.Distance > 0
		}
		return route.Distance >= from.Point.Dist(to.Point)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickRouteSymmetry: with all doors bidirectional, A→B and B→A routes
// have equal length (the graph is symmetric).
func TestQuickRouteSymmetry(t *testing.T) {
	tp := officeTopo(t)
	r := rng.New(123)
	sm := DefaultSpeedModel()
	f := func(seed uint64) bool {
		rr := rng.New(seed ^ r.Uint64())
		from, to, ok := randomPairSameBuilding(tp, rr)
		if !ok {
			return true
		}
		fwd, err1 := tp.Route(from, to, MinDistance, sm)
		rev, err2 := tp.Route(to, from, MinDistance, sm)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return math.Abs(fwd.Distance-rev.Distance) < 1e-6*(1+fwd.Distance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickRouteWaypointsConnected: consecutive same-floor waypoints of a
// route are never absurdly far apart, and the route starts/ends at the
// queried points.
func TestQuickRouteWaypointsConnected(t *testing.T) {
	tp := officeTopo(t)
	r := rng.New(7)
	sm := DefaultSpeedModel()
	f := func(seed uint64) bool {
		rr := rng.New(seed ^ r.Uint64())
		from, to, ok := randomPairSameBuilding(tp, rr)
		if !ok {
			return true
		}
		route, err := tp.Route(from, to, MinDistance, sm)
		if err != nil {
			return true
		}
		wps := route.Waypoints
		if len(wps) < 2 {
			return false
		}
		if !wps[0].Point.Eq(from.Point) || !wps[len(wps)-1].Point.Eq(to.Point) {
			return false
		}
		var sum float64
		for i := 1; i < len(wps); i++ {
			if wps[i].Floor == wps[i-1].Floor {
				sum += wps[i].Point.Dist(wps[i-1].Point)
			}
		}
		// Same-floor leg sum can never exceed the reported total distance.
		return sum <= route.Distance+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDecompositionPreservesArea: decomposition must not change the total
// floor area.
func TestDecompositionPreservesArea(t *testing.T) {
	parse := func() *model.Building {
		f, err := ifc.Parse(ifc.MallIFC())
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	area := func(b *model.Building) float64 {
		var total float64
		for _, level := range b.FloorLevels() {
			for _, p := range b.Floors[level].Partitions {
				total += p.Polygon.Area()
			}
		}
		return total
	}
	plain := parse()
	before := area(plain)
	if err := ConnectDoors(plain); err != nil {
		t.Fatal(err)
	}
	added, err := Decompose(plain, DefaultDecomposeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("mall should require decomposition")
	}
	after := area(plain)
	if math.Abs(before-after) > 1e-6*(1+before) {
		t.Errorf("decomposition changed area: %v -> %v", before, after)
	}
	// All children must record their parent and be convex-or-depth-bounded.
	for _, level := range plain.FloorLevels() {
		for _, p := range plain.Floors[level].Partitions {
			if p.Parent != "" && p.Parent == p.ID {
				t.Errorf("partition %s is its own parent", p.ID)
			}
		}
	}
}

func randomPairSameBuilding(tp *Topology, r *rng.Rand) (model.Location, model.Location, bool) {
	var parts []*model.Partition
	for _, level := range tp.B.FloorLevels() {
		parts = append(parts, tp.B.Floors[level].Partitions...)
	}
	if len(parts) < 2 {
		return model.Location{}, model.Location{}, false
	}
	pa := parts[r.Intn(len(parts))]
	pb := parts[r.Intn(len(parts))]
	from := model.At(tp.B.ID, pa.Floor, pa.ID, RandomPointIn(pa, r.Float64))
	to := model.At(tp.B.ID, pb.Floor, pb.ID, RandomPointIn(pb, r.Float64))
	return from, to, true
}
