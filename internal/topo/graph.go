package topo

import (
	"container/heap"
	"fmt"
	"math"

	"vita/internal/geom"
	"vita/internal/model"
)

// Metric selects the routing objective (paper §3.1: "a path determined by a
// particular routing schema, e.g., minimum indoor walking distance, minimum
// walking time").
type Metric int

// Routing metrics.
const (
	MinDistance Metric = iota
	MinTime
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	if m == MinTime {
		return "min-time"
	}
	return "min-distance"
}

// Waypoint is one stop of a computed route.
type Waypoint struct {
	Floor     int
	Point     geom.Point
	Partition string
	// Via names the door or staircase crossed to reach this waypoint; empty
	// for the start and for plain in-partition movement.
	Via string
	// Stair is true when the hop onto this waypoint traversed a staircase.
	Stair bool
}

// Route is a computed indoor path.
type Route struct {
	Waypoints []Waypoint
	// Distance is the total walking distance in meters (staircases
	// contribute their 3D length).
	Distance float64
	// Time is the total walking time in seconds under the speed model used
	// for the query.
	Time float64
}

// node is one vertex of the accessibility graph: standing at a portal
// (door or staircase end) inside a specific partition.
type node struct {
	portal    string // door or staircase ID
	partition string
	floor     int
	point     geom.Point
}

// edge is one directed hop.
type edge struct {
	to   int
	dist float64 // meters
	time float64 // extra fixed seconds (stair travel time); walking time is derived from dist
	// stair marks staircase traversals: their walking time is the fixed time
	// only, not dist/speed.
	stair bool
	via   string
}

// graph is the static accessibility graph of a building.
type graph struct {
	nodes []node
	adj   [][]edge
	// byPartition indexes node IDs by (floor, partition).
	byPartition map[partKey][]int
}

type partKey struct {
	floor     int
	partition string
}

// buildGraph constructs the directed door/stair accessibility graph,
// honoring door directionality.
func buildGraph(b *model.Building) *graph {
	g := &graph{byPartition: make(map[partKey][]int)}
	nodeID := make(map[string]int) // portalID+"/"+partition → node index

	addNode := func(portal, partition string, floor int, pt geom.Point) int {
		key := portal + "/" + partition
		if id, ok := nodeID[key]; ok {
			return id
		}
		id := len(g.nodes)
		g.nodes = append(g.nodes, node{portal: portal, partition: partition, floor: floor, point: pt})
		g.adj = append(g.adj, nil)
		nodeID[key] = id
		g.byPartition[partKey{floor, partition}] = append(g.byPartition[partKey{floor, partition}], id)
		return id
	}

	// Door nodes and crossing edges.
	for _, level := range b.FloorLevels() {
		f := b.Floors[level]
		for _, d := range f.Doors {
			a, bSide := d.Partitions[0], d.Partitions[1]
			var na, nb = -1, -1
			if a != "" {
				na = addNode(d.ID, a, level, d.Position)
			}
			if bSide != "" {
				nb = addNode(d.ID, bSide, level, d.Position)
			}
			if na >= 0 && nb >= 0 {
				if d.Leads(a, bSide) {
					g.adj[na] = append(g.adj[na], edge{to: nb, via: d.ID})
				}
				if d.Leads(bSide, a) {
					g.adj[nb] = append(g.adj[nb], edge{to: na, via: d.ID})
				}
			}
		}
	}

	// Staircase nodes and traversal edges (both directions).
	for _, s := range b.Staircases {
		if !s.Linked {
			continue
		}
		up := addNode(s.ID, s.UpperPartition, s.UpperFloor, s.UpperEntry())
		lo := addNode(s.ID, s.LowerPartition, s.LowerFloor, s.LowerEntry())
		length := stairLength(b, s)
		g.adj[up] = append(g.adj[up], edge{to: lo, dist: length, time: s.TravelTime, stair: true, via: s.ID})
		g.adj[lo] = append(g.adj[lo], edge{to: up, dist: length, time: s.TravelTime, stair: true, via: s.ID})
	}

	// Within-partition edges: all portals sharing a partition are mutually
	// reachable by straight-line walking (partitions are convex after
	// decomposition).
	for _, ids := range g.byPartition {
		for i := 0; i < len(ids); i++ {
			for j := 0; j < len(ids); j++ {
				if i == j {
					continue
				}
				a, bn := g.nodes[ids[i]], g.nodes[ids[j]]
				g.adj[ids[i]] = append(g.adj[ids[i]], edge{to: ids[j], dist: a.point.Dist(bn.point)})
			}
		}
	}
	return g
}

// stairLength approximates the 3D walking length of a staircase from its
// entries and the floor gap.
func stairLength(b *model.Building, s *model.Staircase) float64 {
	horiz := s.UpperEntry().Dist(s.LowerEntry())
	var dz float64
	if fu, ok := b.Floors[s.UpperFloor]; ok {
		if fl, ok2 := b.Floors[s.LowerFloor]; ok2 {
			dz = math.Abs(fu.Elevation - fl.Elevation)
		}
	}
	if dz == 0 {
		dz = 3
	}
	// Walking a stair is longer than the straight slope; 1.4 approximates
	// tread-by-tread travel.
	return math.Hypot(horiz, dz) * 1.4
}

// SpeedModel maps partition kinds to walking-speed multipliers, realizing
// minimum-walking-time routing where, e.g., open hallways are faster than
// cluttered rooms.
type SpeedModel struct {
	// Base is the walking speed in m/s the multipliers scale.
	Base float64
	// Factor multiplies Base per partition kind; kinds absent default to 1.
	Factor map[model.PartitionKind]float64
}

// DefaultSpeedModel returns the toolkit default: 1.4 m/s base, faster in
// hallways, slower in crowded public areas and canteens.
func DefaultSpeedModel() SpeedModel {
	return SpeedModel{
		Base: 1.4,
		Factor: map[model.PartitionKind]float64{
			model.KindHallway:    1.25,
			model.KindPublicArea: 0.8,
			model.KindCanteen:    0.7,
		},
	}
}

// speedIn returns the effective speed inside the given partition.
func (sm SpeedModel) speedIn(b *model.Building, floor int, partition string) float64 {
	base := sm.Base
	if base <= 0 {
		base = 1.4
	}
	p, ok := b.Partition(floor, partition)
	if !ok {
		return base
	}
	if f, ok := sm.Factor[p.Kind]; ok && f > 0 {
		return base * f
	}
	return base
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node int
	cost float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].cost < p[j].cost }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// route runs Dijkstra from a source location to a target location over the
// static graph plus two injected query nodes.
func (t *Topology) route(from, to model.Location, metric Metric, sm SpeedModel) (*Route, error) {
	g := t.graph
	fromPart, err := t.resolvePartition(from)
	if err != nil {
		return nil, err
	}
	toPart, err := t.resolvePartition(to)
	if err != nil {
		return nil, err
	}

	// Trivial same-partition route.
	if from.Floor == to.Floor && fromPart == toPart {
		d := from.Point.Dist(to.Point)
		sp := sm.speedIn(t.B, from.Floor, fromPart)
		return &Route{
			Waypoints: []Waypoint{
				{Floor: from.Floor, Point: from.Point, Partition: fromPart},
				{Floor: to.Floor, Point: to.Point, Partition: toPart},
			},
			Distance: d,
			Time:     d / sp,
		}, nil
	}

	n := len(g.nodes)
	src, dst := n, n+1
	total := n + 2

	costOf := func(e edge, fromFloor int, fromPartition string) (cost, dist, tm float64) {
		walkSpeed := sm.speedIn(t.B, fromFloor, fromPartition)
		dist = e.dist
		if e.stair {
			tm = e.time
		} else {
			tm = e.dist / walkSpeed
		}
		if metric == MinTime {
			return tm, dist, tm
		}
		return dist, dist, tm
	}

	// neighbors returns the edges of any node including the injected ones.
	neighbors := func(id int) []edge {
		switch id {
		case src:
			var out []edge
			for _, nid := range g.byPartition[partKey{from.Floor, fromPart}] {
				out = append(out, edge{to: nid, dist: from.Point.Dist(g.nodes[nid].point)})
			}
			return out
		case dst:
			return nil
		default:
			edges := g.adj[id]
			nd := g.nodes[id]
			if nd.floor == to.Floor && nd.partition == toPart {
				edges = append(append([]edge(nil), edges...),
					edge{to: dst, dist: nd.point.Dist(to.Point)})
			}
			return edges
		}
	}
	floorOf := func(id int) (int, string) {
		switch id {
		case src:
			return from.Floor, fromPart
		case dst:
			return to.Floor, toPart
		default:
			return g.nodes[id].floor, g.nodes[id].partition
		}
	}

	const inf = math.MaxFloat64
	costs := make([]float64, total)
	dists := make([]float64, total)
	times := make([]float64, total)
	prev := make([]int, total)
	prevEdge := make([]edge, total)
	for i := range costs {
		costs[i] = inf
		prev[i] = -1
	}
	costs[src] = 0
	h := &pq{{node: src}}
	visited := make([]bool, total)
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		u := it.node
		if visited[u] {
			continue
		}
		visited[u] = true
		if u == dst {
			break
		}
		uFloor, uPart := floorOf(u)
		for _, e := range neighbors(u) {
			c, d, tmm := costOf(e, uFloor, uPart)
			if costs[u]+c < costs[e.to] {
				costs[e.to] = costs[u] + c
				dists[e.to] = dists[u] + d
				times[e.to] = times[u] + tmm
				prev[e.to] = u
				prevEdge[e.to] = e
				heap.Push(h, pqItem{node: e.to, cost: costs[e.to]})
			}
		}
	}
	if costs[dst] == inf {
		return nil, fmt.Errorf("topo: no route from %s to %s", from, to)
	}

	// Reconstruct waypoints.
	var rev []Waypoint
	cur := dst
	for cur != -1 {
		var wp Waypoint
		switch cur {
		case src:
			wp = Waypoint{Floor: from.Floor, Point: from.Point, Partition: fromPart}
		case dst:
			wp = Waypoint{Floor: to.Floor, Point: to.Point, Partition: toPart}
		default:
			nd := g.nodes[cur]
			wp = Waypoint{Floor: nd.floor, Point: nd.point, Partition: nd.partition}
		}
		if cur != src && prev[cur] != -1 {
			wp.Via = prevEdge[cur].via
			wp.Stair = prevEdge[cur].stair
		}
		rev = append(rev, wp)
		cur = prev[cur]
	}
	wps := make([]Waypoint, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		wps = append(wps, rev[i])
	}
	return &Route{Waypoints: wps, Distance: dists[dst], Time: times[dst]}, nil
}
