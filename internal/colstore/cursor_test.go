package colstore

import (
	"bytes"
	"testing"

	"vita/internal/geom"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// cursorPreds is the predicate table shared by the cursor equality tests —
// every pruning and filtering shape the predicate language supports.
func cursorPreds() map[string]Predicate {
	return map[string]Predicate{
		"all":         {},
		"time window": TimeWindow(100, 130),
		"object":      {HasObj: true, Obj: 3},
		"floor":       {HasFloor: true, Floor: 1},
		"box": {HasBox: true,
			Box: geom.BBox{Min: geom.Pt(10, 0), Max: geom.Pt(20, 3)}},
		"combined": {HasTime: true, T0: 50, T1: 400, HasFloor: true, Floor: 0,
			HasBox: true, Box: geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(30, 6)}},
		"nothing": TimeWindow(1e6, 2e6),
	}
}

// collectCursor drains a trajectory cursor into rows + stats.
func collectCursor(t *testing.T, c *TrajectoryCursor) ([]trajectory.Sample, ScanStats) {
	t.Helper()
	var rows []trajectory.Sample
	for c.Next() {
		b := c.Batch()
		if b.Len() == 0 {
			t.Fatal("Next returned an empty batch")
		}
		rows = b.AppendTo(rows)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	return rows, c.Stats()
}

// TestCursorMatchesScan is the equality gate for the batch API: for every
// predicate shape, the cursor's concatenated batches must be exactly the
// rows of Scan — and of ScanParallel at every parallelism — with identical
// ScanStats.
func TestCursorMatchesScan(t *testing.T) {
	samples := gridSamples(10, 600) // 6000 rows over many 256-row blocks
	data := writeTrajectory(t, samples, Options{BlockSize: 256})
	r := readTrajectory(t, data)

	for name, pred := range cursorPreds() {
		t.Run(name, func(t *testing.T) {
			var want []trajectory.Sample
			wantStats, err := r.Scan(pred, func(s trajectory.Sample) { want = append(want, s) })
			if err != nil {
				t.Fatalf("sequential scan: %v", err)
			}
			got, gotStats := collectCursor(t, r.Cursor(pred))
			if gotStats != wantStats {
				t.Errorf("stats differ: cursor %+v, scan %+v", gotStats, wantStats)
			}
			if len(got) != len(want) {
				t.Fatalf("cursor yielded %d rows, scan %d", len(got), len(want))
			}
			for i := range got {
				if !sampleEqual(got[i], want[i]) {
					t.Fatalf("row %d differs: got %+v, want %+v", i, got[i], want[i])
				}
			}
			for _, p := range []int{1, 2, 8} {
				var prows []trajectory.Sample
				pstats, err := r.ScanParallel(pred, p, func(s trajectory.Sample) { prows = append(prows, s) })
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
				if pstats != gotStats {
					t.Errorf("p=%d: stats differ: parallel %+v, cursor %+v", p, pstats, gotStats)
				}
				if len(prows) != len(got) {
					t.Fatalf("p=%d: %d rows, cursor %d", p, len(prows), len(got))
				}
				for i := range prows {
					if !sampleEqual(prows[i], got[i]) {
						t.Fatalf("p=%d: row %d differs", p, i)
					}
				}
			}
		})
	}
}

// TestCursorRSSI checks the RSSI cursor against Scan, including the rule
// that floor/box constraints are dropped for RSSI rows.
func TestCursorRSSI(t *testing.T) {
	var ms []rssi.Measurement
	for i := 0; i < 3000; i++ {
		ms = append(ms, rssi.Measurement{
			ObjID:    i % 12,
			DeviceID: []string{"wifi-1", "wifi-2"}[i%2],
			RSSI:     -40 - float64(i%50),
			T:        float64(i) * 0.5,
		})
	}
	var buf bytes.Buffer
	w := NewRSSIWriterOptions(&buf, Options{BlockSize: 128})
	for _, m := range ms {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewRSSIReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	pred := Predicate{HasTime: true, T0: 100, T1: 900, HasObj: true, Obj: 5,
		HasFloor: true, Floor: 99, HasBox: true, Box: geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}}
	var want []rssi.Measurement
	wantStats, err := r.Scan(pred, func(m rssi.Measurement) { want = append(want, m) })
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test predicate matched nothing")
	}
	c := r.Cursor(pred)
	var got []rssi.Measurement
	for c.Next() {
		got = c.Batch().AppendTo(got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Stats() != wantStats {
		t.Errorf("stats differ: cursor %+v, scan %+v", c.Stats(), wantStats)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor yielded %d rows, scan %d", len(got), len(want))
	}
	for i := range got {
		if !measurementEqual(got[i], want[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestCursorBatchColumns spot-checks that the column view and the row view
// agree, and that batches are rewritten (not reallocated) across blocks.
func TestCursorBatchColumns(t *testing.T) {
	samples := gridSamples(6, 400)
	data := writeTrajectory(t, samples, Options{BlockSize: 128})
	r := readTrajectory(t, data)
	c := r.Cursor(Predicate{})
	defer c.Close()
	first := true
	var firstBatch *TrajectoryBatch
	rows := 0
	for c.Next() {
		b := c.Batch()
		if first {
			firstBatch = b
			first = false
		} else if b != firstBatch {
			t.Fatal("Batch() returned a different batch pointer across Next calls")
		}
		if len(b.Building) != b.Len() || len(b.T) != b.Len() || len(b.HasPoint) != b.Len() {
			t.Fatalf("ragged batch: lens %d/%d/%d vs %d", len(b.Building), len(b.T), len(b.HasPoint), b.Len())
		}
		for i := 0; i < b.Len(); i++ {
			s := b.Row(i)
			if s.T != b.T[i] || int64(s.ObjID) != b.ObjID[i] || s.Loc.Building != b.Building[i] {
				t.Fatalf("row %d disagrees with columns", i)
			}
			if !sampleEqual(s, samples[rows]) {
				t.Fatalf("global row %d differs", rows)
			}
			rows++
		}
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != len(samples) {
		t.Fatalf("cursor yielded %d rows, want %d", rows, len(samples))
	}
}

// TestCursorCorruptBlock checks that a corrupt block surfaces through Err
// (not a panic) and stops iteration.
func TestCursorCorruptBlock(t *testing.T) {
	samples := gridSamples(4, 400)
	data := writeTrajectory(t, samples, Options{BlockSize: 64})
	r := readTrajectory(t, data)
	mid := r.rd.offsets[len(r.rd.offsets)/2]
	mangled := append([]byte{}, data...)
	for i := mid + 12; i < mid+40 && i < int64(len(mangled)); i++ {
		mangled[i] ^= 0xff
	}
	mr, err := NewTrajectoryReader(bytes.NewReader(mangled), int64(len(mangled)))
	if err != nil {
		t.Skip("corruption caught at open; block decode not reachable")
	}
	c := mr.Cursor(Predicate{})
	rows := 0
	for c.Next() {
		rows += c.Batch().Len()
	}
	if c.Err() == nil {
		t.Fatal("cursor over mangled file reported no error")
	}
	if c.Close() == nil {
		t.Fatal("Close did not surface the cursor error")
	}
	if rows >= len(samples) {
		t.Fatalf("cursor yielded %d rows despite corrupt block", rows)
	}
	if c.Next() {
		t.Fatal("Next returned true after error")
	}
}

// TestCursorClose checks that a closed cursor stops iterating and that
// closing twice is safe.
func TestCursorClose(t *testing.T) {
	samples := gridSamples(4, 200)
	data := writeTrajectory(t, samples, Options{BlockSize: 64})
	r := readTrajectory(t, data)
	c := r.Cursor(Predicate{})
	if !c.Next() {
		t.Fatalf("first Next failed: %v", c.Err())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Next() {
		t.Fatal("Next returned true after Close")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCursorStatsAcrossPredicates double-checks the pruning counters line up
// with the zone-map geometry for a window that skips most of the file.
func TestCursorStatsAcrossPredicates(t *testing.T) {
	samples := gridSamples(10, 600)
	data := writeTrajectory(t, samples, Options{BlockSize: 256})
	r := readTrajectory(t, data)
	c := r.Cursor(TimeWindow(100, 130))
	for c.Next() {
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.BlocksPruned == 0 {
		t.Fatalf("no blocks pruned: %+v", st)
	}
	if st.BlocksScanned+st.BlocksPruned != st.BlocksTotal {
		t.Fatalf("block counters inconsistent: %+v", st)
	}
	if st.RowsMatched == 0 {
		t.Fatalf("window matched nothing: %+v", st)
	}
}
