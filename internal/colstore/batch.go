package colstore

import (
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// Column batches are the allocation-light alternative to per-row emit
// callbacks: a cursor decodes one block at a time into a reusable set of
// column slices, so a scan over millions of rows touches a bounded, reused
// region of memory and never materializes []Sample. Consumers either iterate
// columns directly (the vectorized path) or view single rows through Row,
// which builds a Sample value on the stack.

// TrajectoryBatch holds one block's worth of decoded trajectory samples in
// column form. The slices share one length; all are valid until the owning
// cursor's next Next or Close.
type TrajectoryBatch struct {
	ObjID     []int64
	Building  []string
	Floor     []int64
	Partition []string
	X, Y      []float64
	T         []float64
	HasPoint  []bool
}

// Len returns the number of rows in the batch.
func (b *TrajectoryBatch) Len() int { return len(b.ObjID) }

// Row assembles row i as a Sample value. The strings are shared with the
// batch columns (and remain valid after the batch is reused — strings are
// immutable), so Row allocates nothing.
func (b *TrajectoryBatch) Row(i int) trajectory.Sample {
	return trajectory.Sample{
		ObjID: int(b.ObjID[i]),
		Loc: model.Location{
			Building:  b.Building[i],
			Floor:     int(b.Floor[i]),
			Partition: b.Partition[i],
			Point:     geom.Pt(b.X[i], b.Y[i]),
			HasPoint:  b.HasPoint[i],
		},
		T: b.T[i],
	}
}

// Reset truncates the batch to zero rows, keeping column capacity.
func (b *TrajectoryBatch) Reset() {
	b.ObjID = b.ObjID[:0]
	b.Building = b.Building[:0]
	b.Floor = b.Floor[:0]
	b.Partition = b.Partition[:0]
	b.X, b.Y, b.T = b.X[:0], b.Y[:0], b.T[:0]
	b.HasPoint = b.HasPoint[:0]
}

// Append appends one sample's fields to the columns (the write-side
// counterpart of Row; used by the CSV batch adapter in internal/storage).
func (b *TrajectoryBatch) Append(s trajectory.Sample) {
	b.ObjID = append(b.ObjID, int64(s.ObjID))
	b.Building = append(b.Building, s.Loc.Building)
	b.Floor = append(b.Floor, int64(s.Loc.Floor))
	b.Partition = append(b.Partition, s.Loc.Partition)
	b.X = append(b.X, s.Loc.Point.X)
	b.Y = append(b.Y, s.Loc.Point.Y)
	b.T = append(b.T, s.T)
	b.HasPoint = append(b.HasPoint, s.Loc.HasPoint)
}

// AppendTo appends every row to dst as Samples and returns it.
func (b *TrajectoryBatch) AppendTo(dst []trajectory.Sample) []trajectory.Sample {
	for i := 0; i < b.Len(); i++ {
		dst = append(dst, b.Row(i))
	}
	return dst
}

// Bytes approximates the batch's resident footprint: the column backing
// arrays plus the string bytes they reference. Cache layers use it to
// account decoded-block budgets.
func (b *TrajectoryBatch) Bytes() int64 {
	n := int64(b.Len())
	size := n * (8 + 16 + 8 + 16 + 8 + 8 + 8 + 1) // column elements incl. string headers
	for i := range b.Building {
		size += int64(len(b.Building[i]) + len(b.Partition[i]))
	}
	return size
}

// filter compacts the batch in place to the rows matching p, preserving
// order.
func (b *TrajectoryBatch) filter(p Predicate) {
	if !p.HasTime && !p.HasFloor && !p.HasBox && !p.HasObj {
		return
	}
	k := 0
	for i := 0; i < b.Len(); i++ {
		if !p.MatchTrajectory(b.Row(i)) {
			continue
		}
		if i != k {
			b.ObjID[k] = b.ObjID[i]
			b.Building[k] = b.Building[i]
			b.Floor[k] = b.Floor[i]
			b.Partition[k] = b.Partition[i]
			b.X[k], b.Y[k], b.T[k] = b.X[i], b.Y[i], b.T[i]
			b.HasPoint[k] = b.HasPoint[i]
		}
		k++
	}
	b.truncate(k)
}

func (b *TrajectoryBatch) truncate(k int) {
	b.ObjID = b.ObjID[:k]
	b.Building = b.Building[:k]
	b.Floor = b.Floor[:k]
	b.Partition = b.Partition[:k]
	b.X, b.Y, b.T = b.X[:k], b.Y[:k], b.T[:k]
	b.HasPoint = b.HasPoint[:k]
}

// RSSIBatch holds one block's worth of decoded RSSI measurements in column
// form; see TrajectoryBatch for the reuse contract.
type RSSIBatch struct {
	ObjID    []int64
	DeviceID []string
	RSSI     []float64
	T        []float64
}

// Len returns the number of rows in the batch.
func (b *RSSIBatch) Len() int { return len(b.ObjID) }

// Row assembles row i as a Measurement value without allocating.
func (b *RSSIBatch) Row(i int) rssi.Measurement {
	return rssi.Measurement{
		ObjID:    int(b.ObjID[i]),
		DeviceID: b.DeviceID[i],
		RSSI:     b.RSSI[i],
		T:        b.T[i],
	}
}

// Reset truncates the batch to zero rows, keeping column capacity.
func (b *RSSIBatch) Reset() {
	b.ObjID = b.ObjID[:0]
	b.DeviceID = b.DeviceID[:0]
	b.RSSI = b.RSSI[:0]
	b.T = b.T[:0]
}

// Append appends one measurement's fields to the columns (the write-side
// counterpart of Row; used by the CSV batch adapter in internal/storage).
func (b *RSSIBatch) Append(m rssi.Measurement) {
	b.ObjID = append(b.ObjID, int64(m.ObjID))
	b.DeviceID = append(b.DeviceID, m.DeviceID)
	b.RSSI = append(b.RSSI, m.RSSI)
	b.T = append(b.T, m.T)
}

// AppendTo appends every row to dst as Measurements and returns it.
func (b *RSSIBatch) AppendTo(dst []rssi.Measurement) []rssi.Measurement {
	for i := 0; i < b.Len(); i++ {
		dst = append(dst, b.Row(i))
	}
	return dst
}

// Bytes approximates the batch's resident footprint.
func (b *RSSIBatch) Bytes() int64 {
	size := int64(b.Len()) * (8 + 16 + 8 + 8)
	for _, d := range b.DeviceID {
		size += int64(len(d))
	}
	return size
}

// filter compacts the batch in place to the rows matching p (time and
// object constraints; floor/box never apply to RSSI rows).
func (b *RSSIBatch) filter(p Predicate) {
	if !p.HasTime && !p.HasObj {
		return
	}
	k := 0
	for i := 0; i < b.Len(); i++ {
		if !p.MatchRSSI(b.Row(i)) {
			continue
		}
		if i != k {
			b.ObjID[k] = b.ObjID[i]
			b.DeviceID[k] = b.DeviceID[i]
			b.RSSI[k], b.T[k] = b.RSSI[i], b.T[i]
		}
		k++
	}
	b.ObjID = b.ObjID[:k]
	b.DeviceID = b.DeviceID[:k]
	b.RSSI = b.RSSI[:k]
	b.T = b.T[:k]
}
