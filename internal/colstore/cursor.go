package colstore

import "fmt"

// Batch cursors are the scan path for huge result sets: instead of one
// emit(Sample) call per row, the caller pulls one decoded column batch per
// surviving block and iterates columns (or views rows through Batch().Row).
// The cursor owns one pooled decode scratch for its whole lifetime, so a
// steady-state scan performs no per-block allocations at all — the batch the
// caller sees is the scratch's, rewritten in place by every Next.
//
//	cur := r.Cursor(pred)
//	defer cur.Close()
//	for cur.Next() {
//		b := cur.Batch()
//		for i := 0; i < b.Len(); i++ { ... b.T[i], b.X[i], b.Y[i] ... }
//	}
//	if err := cur.Err(); err != nil { ... }
//
// Rows, order, and ScanStats are exactly those of Scan with the same
// predicate — the batches are the same rows, chunked by block.

// TrajectoryCursor iterates a trajectory VTB file batch by batch; obtain one
// from TrajectoryReader.Cursor. Not safe for concurrent use (open one cursor
// per goroutine; the underlying reader supports any number).
type TrajectoryCursor struct {
	rd     *reader
	pred   Predicate
	sc     *decodeScratch
	next   int
	stats  ScanStats
	peak   int64
	err    error
	closed bool
}

// Cursor starts a batch scan of the samples matching pred, in file order,
// skipping blocks via zone maps exactly like Scan.
func (tr *TrajectoryReader) Cursor(pred Predicate) *TrajectoryCursor {
	return &TrajectoryCursor{
		rd:    tr.rd,
		pred:  pred,
		sc:    getScratch(),
		stats: ScanStats{BlocksTotal: len(tr.rd.zones)},
	}
}

// Next advances to the next non-empty batch of matching rows, reporting
// whether one is available. It returns false at end of file, on error (see
// Err), or after Close.
func (c *TrajectoryCursor) Next() bool {
	if c.err != nil || c.closed {
		return false
	}
	for c.next < len(c.rd.zones) {
		i := c.next
		c.next++
		if c.pred.skipBlock(c.rd.zones[i]) {
			c.stats.BlocksPruned++
			continue
		}
		c.stats.BlocksScanned++
		raw, err := c.rd.blockBytes(i, c.sc)
		if err != nil {
			c.err = err
			return false
		}
		if err := decodeTrajectoryBatchInto(raw, &c.sc.batch, c.sc); err != nil {
			c.err = fmt.Errorf("block %d: %w", i, err)
			return false
		}
		c.stats.RowsScanned += c.sc.batch.Len()
		// Peak is measured before filtering: the full decoded block is what
		// was transiently resident, however few rows survive the predicate.
		if n := c.sc.batch.Bytes(); n > c.peak {
			c.peak = n
		}
		c.sc.batch.filter(c.pred)
		c.stats.RowsMatched += c.sc.batch.Len()
		if c.sc.batch.Len() == 0 {
			continue // zone map matched but no row did; pull the next block
		}
		return true
	}
	return false
}

// Batch returns the current batch. It is valid only until the next call to
// Next or Close — copy out (AppendTo) anything that must outlive it.
func (c *TrajectoryCursor) Batch() *TrajectoryBatch { return &c.sc.batch }

// Err returns the first error the cursor hit, if any.
func (c *TrajectoryCursor) Err() error { return c.err }

// Stats returns the scan statistics accumulated so far; after Next has
// returned false they equal what Scan would have reported.
func (c *TrajectoryCursor) Stats() ScanStats { return c.stats }

// PeakDecodedBytes returns the largest pre-filter decoded-batch footprint
// any single block produced so far — the scan's transient high-water mark,
// independent of how selective the predicate is.
func (c *TrajectoryCursor) PeakDecodedBytes() int64 { return c.peak }

// Close releases the cursor's scratch back to the pool (the batch becomes
// invalid) and returns Err. It does not close the underlying reader.
func (c *TrajectoryCursor) Close() error {
	if !c.closed {
		c.closed = true
		putScratch(c.sc)
		c.sc = nil
	}
	return c.err
}

// RSSICursor iterates an RSSI VTB file batch by batch; see TrajectoryCursor
// for the contract.
type RSSICursor struct {
	rd     *reader
	pred   Predicate
	sc     *decodeScratch
	next   int
	stats  ScanStats
	peak   int64
	err    error
	closed bool
}

// Cursor starts a batch scan of the measurements matching pred (time and
// object constraints; floor/box do not apply to RSSI rows), in file order.
func (rr *RSSIReader) Cursor(pred Predicate) *RSSICursor {
	pred.HasFloor, pred.HasBox = false, false
	return &RSSICursor{
		rd:    rr.rd,
		pred:  pred,
		sc:    getScratch(),
		stats: ScanStats{BlocksTotal: len(rr.rd.zones)},
	}
}

// Next advances to the next non-empty batch of matching rows; see
// TrajectoryCursor.Next.
func (c *RSSICursor) Next() bool {
	if c.err != nil || c.closed {
		return false
	}
	for c.next < len(c.rd.zones) {
		i := c.next
		c.next++
		if c.pred.skipBlock(c.rd.zones[i]) {
			c.stats.BlocksPruned++
			continue
		}
		c.stats.BlocksScanned++
		raw, err := c.rd.blockBytes(i, c.sc)
		if err != nil {
			c.err = err
			return false
		}
		if err := decodeRSSIBatchInto(raw, &c.sc.rbatch, c.sc); err != nil {
			c.err = fmt.Errorf("block %d: %w", i, err)
			return false
		}
		c.stats.RowsScanned += c.sc.rbatch.Len()
		if n := c.sc.rbatch.Bytes(); n > c.peak {
			c.peak = n
		}
		c.sc.rbatch.filter(c.pred)
		c.stats.RowsMatched += c.sc.rbatch.Len()
		if c.sc.rbatch.Len() == 0 {
			continue
		}
		return true
	}
	return false
}

// Batch returns the current batch, valid only until the next Next or Close.
func (c *RSSICursor) Batch() *RSSIBatch { return &c.sc.rbatch }

// Err returns the first error the cursor hit, if any.
func (c *RSSICursor) Err() error { return c.err }

// Stats returns the scan statistics accumulated so far.
func (c *RSSICursor) Stats() ScanStats { return c.stats }

// PeakDecodedBytes returns the largest pre-filter decoded-batch footprint
// any single block produced so far.
func (c *RSSICursor) PeakDecodedBytes() int64 { return c.peak }

// Close releases the cursor's scratch back to the pool and returns Err.
func (c *RSSICursor) Close() error {
	if !c.closed {
		c.closed = true
		putScratch(c.sc)
		c.sc = nil
	}
	return c.err
}
