//go:build linux

package colstore

import "syscall"

// madviseSequential hints that data will be read once, front to back, so the
// kernel can read ahead and drop pages behind the scan (OpenOptions.Sequential).
func madviseSequential(data []byte) error {
	return syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}
