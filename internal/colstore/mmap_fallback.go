//go:build !linux && !darwin

package colstore

import (
	"errors"
	"os"
)

// mmapAvailable reports whether this build can memory-map VTB files. On
// platforms without a wired-up mmap, every open silently degrades to the
// io.ReaderAt path — same bytes, same results, pread copies instead of
// page-cache windows.
const mmapAvailable = false

func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("colstore: mmap unavailable on this platform")
}
