//go:build linux || darwin

package colstore

import (
	"fmt"
	"os"
	"syscall"
)

// mmapAvailable reports whether this build can memory-map VTB files.
const mmapAvailable = true

// mmapFile maps the first size bytes of f read-only, returning the mapped
// region and its unmap function. Block decodes then read straight out of the
// OS page cache — no read syscalls, no copies for uncompressed payloads.
// Callers fall back to the io.ReaderAt path on any error.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, fmt.Errorf("colstore: cannot mmap %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("colstore: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
