package colstore

import (
	"bytes"
	"fmt"
	"testing"

	"vita/internal/geom"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// TestScanParallelMatchesSequential is the equality gate for block-parallel
// decode: at every tested parallelism level, ScanParallel must emit exactly
// the rows of the sequential Scan, in the same order, with the same stats.
func TestScanParallelMatchesSequential(t *testing.T) {
	samples := gridSamples(10, 600) // 6000 rows over many 256-row blocks
	data := writeTrajectory(t, samples, Options{BlockSize: 256})
	r := readTrajectory(t, data)

	preds := map[string]Predicate{
		"all":         {},
		"time window": TimeWindow(100, 130),
		"object":      {HasObj: true, Obj: 3},
		"floor":       {HasFloor: true, Floor: 1},
		"box": {HasBox: true,
			Box: geom.BBox{Min: geom.Pt(10, 0), Max: geom.Pt(20, 3)}},
		"combined": {HasTime: true, T0: 50, T1: 400, HasFloor: true, Floor: 0,
			HasBox: true, Box: geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(30, 6)}},
		"nothing": TimeWindow(1e6, 2e6),
	}
	for name, pred := range preds {
		var want []trajectory.Sample
		wantStats, err := r.Scan(pred, func(s trajectory.Sample) { want = append(want, s) })
		if err != nil {
			t.Fatalf("%s: sequential scan: %v", name, err)
		}
		for _, p := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/p=%d", name, p), func(t *testing.T) {
				var got []trajectory.Sample
				gotStats, err := r.ScanParallel(pred, p, func(s trajectory.Sample) { got = append(got, s) })
				if err != nil {
					t.Fatalf("parallel scan: %v", err)
				}
				if gotStats != wantStats {
					t.Errorf("stats differ: got %+v, want %+v", gotStats, wantStats)
				}
				if len(got) != len(want) {
					t.Fatalf("emitted %d rows, want %d", len(got), len(want))
				}
				for i := range got {
					if !sampleEqual(got[i], want[i]) {
						t.Fatalf("row %d differs: got %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

func TestScanParallelRSSI(t *testing.T) {
	var ms []rssi.Measurement
	for i := 0; i < 3000; i++ {
		ms = append(ms, rssi.Measurement{
			ObjID:    i % 12,
			DeviceID: []string{"wifi-1", "wifi-2"}[i%2],
			RSSI:     -40 - float64(i%50),
			T:        float64(i) * 0.5,
		})
	}
	var buf bytes.Buffer
	w := NewRSSIWriterOptions(&buf, Options{BlockSize: 128})
	for _, m := range ms {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewRSSIReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	// Floor/box constraints must be ignored on RSSI rows at any parallelism.
	pred := Predicate{HasTime: true, T0: 100, T1: 900, HasObj: true, Obj: 5,
		HasFloor: true, Floor: 99, HasBox: true, Box: geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}}
	var want []rssi.Measurement
	wantStats, err := r.Scan(pred, func(m rssi.Measurement) { want = append(want, m) })
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test predicate matched nothing")
	}
	for _, p := range []int{1, 2, 8} {
		var got []rssi.Measurement
		gotStats, err := r.ScanParallel(pred, p, func(m rssi.Measurement) { got = append(got, m) })
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if gotStats != wantStats {
			t.Errorf("p=%d: stats differ: got %+v, want %+v", p, gotStats, wantStats)
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: emitted %d rows, want %d", p, len(got), len(want))
		}
		for i := range got {
			if !measurementEqual(got[i], want[i]) {
				t.Fatalf("p=%d: row %d differs", p, i)
			}
		}
	}
}

// TestScanParallelCorruptBlock checks that a decode error inside the pool
// surfaces as an error (not a panic or deadlock) and that no rows from or
// after the failed block are emitted.
func TestScanParallelCorruptBlock(t *testing.T) {
	samples := gridSamples(4, 400)
	data := writeTrajectory(t, samples, Options{BlockSize: 64})
	r := readTrajectory(t, data)
	// Corrupt a block somewhere in the middle of the file.
	mid := r.rd.offsets[len(r.rd.offsets)/2]
	mangled := append([]byte{}, data...)
	for i := mid + 12; i < mid+40 && i < int64(len(mangled)); i++ {
		mangled[i] ^= 0xff
	}
	mr, err := NewTrajectoryReader(bytes.NewReader(mangled), int64(len(mangled)))
	if err != nil {
		t.Skip("corruption caught at open; block decode not reachable")
	}
	for _, p := range []int{2, 8} {
		emitted := 0
		if _, err := mr.ScanParallel(Predicate{}, p, func(trajectory.Sample) { emitted++ }); err == nil {
			t.Fatalf("p=%d: scanning mangled file succeeded", p)
		}
		if emitted >= len(samples) {
			t.Fatalf("p=%d: emitted %d rows despite corrupt block", p, emitted)
		}
	}
}

func TestDecodeBlock(t *testing.T) {
	samples := gridSamples(6, 300)
	data := writeTrajectory(t, samples, Options{BlockSize: 128})
	r := readTrajectory(t, data)
	zones := r.Blocks()
	var all []trajectory.Sample
	for i := range zones {
		rows, err := r.DecodeBlock(i)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if len(rows) != zones[i].Count {
			t.Fatalf("block %d: decoded %d rows, zone map says %d", i, len(rows), zones[i].Count)
		}
		all = append(all, rows...)
	}
	if len(all) != len(samples) {
		t.Fatalf("blocks hold %d rows, want %d", len(all), len(samples))
	}
	for i := range all {
		if !sampleEqual(all[i], samples[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
	if _, err := r.DecodeBlock(-1); err == nil {
		t.Error("DecodeBlock(-1) succeeded")
	}
	if _, err := r.DecodeBlock(len(zones)); err == nil {
		t.Error("DecodeBlock(len) succeeded")
	}
}
