//go:build !linux

package colstore

// madviseSequential is a no-op where the stdlib has no Madvise (darwin's
// syscall package omits it) or where mmap itself is unavailable; the scan
// still works, the kernel just gets no read-ahead hint.
func madviseSequential(data []byte) error { return nil }
