package colstore

import (
	"encoding/binary"
	"fmt"
)

// vsnap is VTB's allocation-free LZ block codec: a snappy/LZ4-style
// byte-oriented compressor with a greedy hash-table matcher and no entropy
// stage. It exists because stdlib flate — the only compressed codec before it
// — allocates its Huffman state per stream (~7 allocs per block, the measured
// remaining cost of compressed scans after the PR 5 pooling work), while an
// LZ-only format needs nothing beyond the caller's reused buffers: encode
// compresses into a scratch slice owned by the writer's blockCompressor, and
// decode inflates into the decode scratch's pooled output with zero
// allocations per block. The price is a weaker ratio than flate (no Huffman
// pass); the win is decode at memcpy-like speed. Both are CI-gated
// (BenchmarkVSNAPVsFlate: decode ≥ 2x flate, size within the documented
// +15%).
//
// # Stream format
//
// A vsnap stream is a sequence of ops, each starting with a uvarint tag whose
// low bit selects the kind:
//
//	literal  tag = length<<1      followed by `length` raw bytes (length ≥ 1)
//	copy     tag = (length-4)<<1 | 1, then uvarint distance
//
// A copy repeats `length` (≥ 4, the minimum match) bytes starting `distance`
// (≥ 1) bytes back in the decoded output; distance < length is legal and
// repeats the run byte-by-byte, LZ77-style. The decoded size is not part of
// the stream — VTB's block frame already declares rawLen, and the decoder
// enforces it exactly: a stream that would write past rawLen, read a
// distance before the start of output, or end mid-op is rejected as corrupt.
// Every bound is checked before any copy, so hostile input errors out
// without panics or over-reads (fuzz-covered by FuzzVSnapDecode).
//
// # Matcher
//
// The encoder is a single-pass greedy matcher over a 2^14-entry hash table
// of 4-byte sequences, with snappy's skip acceleration: the longer the scan
// goes without a match, the larger the stride, so incompressible input
// degrades toward a straight copy instead of hashing every byte. The table
// lives in the compressor (reused across blocks, cleared with a memclr-
// friendly loop), so steady-state encode allocates only when the output
// buffer must grow.

const (
	// vsnapMinMatch is the shortest copy the format can express; shorter
	// repeats are cheaper as literals anyway (tag + distance ≈ 3 bytes).
	vsnapMinMatch = 4
	// vsnapTableBits sizes the matcher's hash table (2^14 entries = 64 KiB
	// of int32, reused across blocks).
	vsnapTableBits = 14
	vsnapTableSize = 1 << vsnapTableBits
)

// vsnapHash maps a 4-byte sequence to a table slot (Knuth multiplicative
// hash; the high bits are the well-mixed ones).
func vsnapHash(u uint32) uint32 { return (u * 2654435761) >> (32 - vsnapTableBits) }

// vsnapAppend appends the vsnap encoding of src to dst and returns it. table
// must hold vsnapTableSize entries; it is cleared here and holds positions+1
// (0 = empty) so the reset is a memclr. The encoding never reads outside src
// and is deterministic for a given src.
func vsnapAppend(dst, src []byte, table []int32) []byte {
	for i := range table {
		table[i] = 0
	}
	// Matches cannot start within the last vsnapMinMatch-1 bytes (a 4-byte
	// load must stay in bounds), so the main loop stops early and the tail is
	// flushed as one literal.
	sLimit := len(src) - vsnapMinMatch
	nextEmit := 0 // start of the pending literal run
	s := 0
	for s <= sLimit {
		// Probe for a match, striding further apart the longer nothing
		// matches (snappy's heuristic: stride = 1 + probes/32, so random
		// data costs ~1 probe per 32 bytes instead of one per byte).
		skip := 32
		cand := 0
		for {
			if s > sLimit {
				goto emitRemainder
			}
			h := vsnapHash(binary.LittleEndian.Uint32(src[s:]))
			cand = int(table[h]) - 1
			table[h] = int32(s + 1)
			if cand >= 0 &&
				binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[s:]) {
				break
			}
			s += skip >> 5
			skip++
		}
		// Flush the literal run behind the match, then extend the match as
		// far as the bytes agree.
		dst = vsnapEmitLiteral(dst, src[nextEmit:s])
		base := s
		s += vsnapMinMatch
		for m := cand + vsnapMinMatch; s < len(src) && src[s] == src[m]; {
			s++
			m++
		}
		dst = vsnapEmitCopy(dst, s-base, base-cand)
		nextEmit = s
		// Seed the table with the position just before the resume point so
		// back-to-back matches across the copy boundary are still found.
		if s > 0 && s <= sLimit {
			h := vsnapHash(binary.LittleEndian.Uint32(src[s-1:]))
			table[h] = int32(s)
		}
	}
emitRemainder:
	return vsnapEmitLiteral(dst, src[nextEmit:])
}

// vsnapEmitLiteral appends a literal op for lit (no-op when empty).
func vsnapEmitLiteral(dst, lit []byte) []byte {
	if len(lit) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(lit))<<1)
	return append(dst, lit...)
}

// vsnapEmitCopy appends a copy op (length ≥ vsnapMinMatch, dist ≥ 1).
func vsnapEmitCopy(dst []byte, length, dist int) []byte {
	dst = binary.AppendUvarint(dst, uint64(length-vsnapMinMatch)<<1|1)
	return binary.AppendUvarint(dst, uint64(dist))
}

// vsnapDecode decompresses src into dst, which must be sized to the block
// frame's declared rawLen. The stream must fill dst exactly. Every length,
// distance, and source bound is validated before any byte moves, so corrupt
// or hostile input (truncated tags, copies reaching before the output start,
// lengths past the declared size) returns an error and never panics,
// over-reads src, or writes outside dst.
func vsnapDecode(dst, src []byte) error {
	d, s := 0, 0
	for s < len(src) {
		tag, n := binary.Uvarint(src[s:])
		if n <= 0 {
			return fmt.Errorf("vsnap: truncated tag at offset %d", s)
		}
		s += n
		if tag&1 == 0 {
			// Literal. Compare in uint64 so a huge declared length cannot
			// wrap when converted to int.
			ln := tag >> 1
			if ln == 0 {
				return fmt.Errorf("vsnap: zero-length literal at offset %d", s)
			}
			if ln > uint64(len(src)-s) {
				return fmt.Errorf("vsnap: literal of %d bytes overruns input (%d left)", ln, len(src)-s)
			}
			if ln > uint64(len(dst)-d) {
				return fmt.Errorf("vsnap: literal of %d bytes overruns declared size (%d left)", ln, len(dst)-d)
			}
			copy(dst[d:], src[s:s+int(ln)])
			s += int(ln)
			d += int(ln)
			continue
		}
		// Copy.
		if tag>>1 > uint64(len(dst)) {
			return fmt.Errorf("vsnap: copy of %d bytes overruns declared size %d", tag>>1, len(dst))
		}
		ln := int(tag>>1) + vsnapMinMatch
		dist64, n := binary.Uvarint(src[s:])
		if n <= 0 {
			return fmt.Errorf("vsnap: truncated copy distance at offset %d", s)
		}
		s += n
		if dist64 == 0 || dist64 > uint64(d) {
			return fmt.Errorf("vsnap: copy distance %d out of range (have %d decoded bytes)", dist64, d)
		}
		if ln > len(dst)-d {
			return fmt.Errorf("vsnap: copy of %d bytes overruns declared size (%d left)", ln, len(dst)-d)
		}
		dist := int(dist64)
		if dist >= ln {
			copy(dst[d:d+ln], dst[d-dist:])
		} else {
			// Overlapping copy: an LZ77 run; must go byte by byte so each
			// output byte can source one written a moment earlier.
			for i := 0; i < ln; i++ {
				dst[d+i] = dst[d-dist+i]
			}
		}
		d += ln
	}
	if d != len(dst) {
		return fmt.Errorf("vsnap: stream decodes to %d bytes, frame declares %d", d, len(dst))
	}
	return nil
}
