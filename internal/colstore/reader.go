package colstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"

	"vita/internal/geom"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// reader owns the kind-independent read machinery: header/footer validation
// and block fetch + decompression. Typed readers layer row decoding and
// predicate evaluation on top.
//
// A reader is backed either by a memory-mapped file (data non-nil; block
// fetch slices the page-cache-backed region with no syscalls or copies) or
// by a plain io.ReaderAt (block fetch preads into the caller's scratch).
type reader struct {
	r       io.ReaderAt
	size    int64
	kind    Kind
	zones   []ZoneMap
	offsets []int64
	closer  io.Closer // set when the reader owns the underlying file

	data   []byte // whole-file image when mmap-backed, else nil
	unmap  func() error
	closed atomic.Bool
}

// OpenOptions tunes how a VTB file is opened. The zero value selects the
// defaults: memory-map when the platform supports it, falling back to pread
// silently when it does not (or when mapping fails).
type OpenOptions struct {
	// DisableMmap forces the io.ReaderAt path even where mmap is available
	// — the escape hatch behind the CLIs' -mmap=false flags.
	DisableMmap bool
	// Sequential declares the access pattern up front: the whole file will
	// be read once, front to back (a compaction merge, a cold full scan).
	// On mmap-backed readers it issues madvise(MADV_SEQUENTIAL) so the
	// kernel reads ahead aggressively and drops pages behind the scan
	// instead of letting a one-shot pass evict the hot working set. A hint
	// only: results are identical with or without it.
	Sequential bool
}

func openReader(r io.ReaderAt, size int64, want Kind) (*reader, error) {
	if size < headerSize+tailSize {
		return nil, fmt.Errorf("colstore: file too short (%d bytes) to be VTB", size)
	}
	var hdr [headerSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("colstore: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != magicHead {
		return nil, fmt.Errorf("colstore: bad magic %q (not a VTB file)", hdr[:4])
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("colstore: unsupported VTB version %d", hdr[4])
	}
	if got := Kind(hdr[5]); got != want {
		return nil, fmt.Errorf("colstore: file holds %s records, want %s", got, want)
	}

	var tail [tailSize]byte
	if _, err := r.ReadAt(tail[:], size-tailSize); err != nil {
		return nil, fmt.Errorf("colstore: read footer tail: %w", err)
	}
	if [4]byte(tail[8:]) != magicTail {
		return nil, fmt.Errorf("colstore: bad footer magic %q (truncated file?)", tail[8:])
	}
	footerOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	if footerOff < headerSize || footerOff > size-tailSize-4 {
		return nil, fmt.Errorf("colstore: footer offset %d out of range", footerOff)
	}
	footer := make([]byte, size-tailSize-footerOff)
	if _, err := r.ReadAt(footer, footerOff); err != nil {
		return nil, fmt.Errorf("colstore: read footer: %w", err)
	}
	blockCount := int(binary.LittleEndian.Uint32(footer[:4]))
	if len(footer) != 4+blockCount*footerEntrySize {
		return nil, fmt.Errorf("colstore: footer is %d bytes, want %d for %d blocks",
			len(footer), 4+blockCount*footerEntrySize, blockCount)
	}

	rd := &reader{r: r, size: size, kind: want,
		zones: make([]ZoneMap, 0, blockCount), offsets: make([]int64, 0, blockCount)}
	for i := 0; i < blockCount; i++ {
		e := footer[4+i*footerEntrySize:]
		off := int64(binary.LittleEndian.Uint64(e[0:]))
		if off < headerSize || off >= footerOff {
			return nil, fmt.Errorf("colstore: block %d offset %d out of range", i, off)
		}
		f64 := func(at int) float64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(e[at:]))
		}
		i32 := func(at int) int {
			return int(int32(binary.LittleEndian.Uint32(e[at:])))
		}
		rd.offsets = append(rd.offsets, off)
		rd.zones = append(rd.zones, ZoneMap{
			Count: int(binary.LittleEndian.Uint32(e[8:])),
			T0:    f64(12), T1: f64(20),
			Box: geom.BBox{
				Min: geom.Pt(f64(28), f64(36)),
				Max: geom.Pt(f64(44), f64(52)),
			},
			FloorMin: i32(60), FloorMax: i32(64),
			FloorMask: binary.LittleEndian.Uint64(e[68:]),
			ObjMin:    i32(76), ObjMax: i32(80),
		})
	}
	return rd, nil
}

// openPath opens the VTB file at path, mmap-backed unless disabled or
// unavailable (then pread-backed). The returned reader owns the file.
func openPath(path string, want Kind, opts OpenOptions) (*reader, error) {
	f, size, err := openFile(path)
	if err != nil {
		return nil, err
	}
	if !opts.DisableMmap {
		if data, unmap, err := mmapFile(f, size); err == nil {
			if opts.Sequential {
				// Best effort; a failed hint changes nothing observable.
				_ = madviseSequential(data)
			}
			rd, err := openReader(bytes.NewReader(data), size, want)
			if err != nil {
				unmap()
				f.Close()
				return nil, err
			}
			rd.data = data
			rd.unmap = unmap
			rd.closer = f
			return rd, nil
		}
		// Mapping failed (unsupported platform, exotic filesystem, empty
		// file): degrade to pread. Results are byte-identical either way.
	}
	rd, err := openReader(f, size, want)
	if err != nil {
		f.Close()
		return nil, err
	}
	rd.closer = f
	return rd, nil
}

// blockBytes fetches and decompresses block i into (at most) the scratch's
// buffers. On the mmap path an uncompressed block comes back as a window
// into the mapped region — zero copies end to end; flate blocks inflate
// through the scratch's pooled decompressor. The result is only valid until
// the scratch's next use.
func (rd *reader) blockBytes(i int, sc *decodeScratch) ([]byte, error) {
	if rd.closed.Load() {
		return nil, fmt.Errorf("colstore: read from closed reader")
	}
	off := rd.offsets[i]
	var frame []byte
	if rd.data != nil {
		frame = rd.data[off : off+9]
	} else {
		var fbuf [9]byte
		if _, err := rd.r.ReadAt(fbuf[:], off); err != nil {
			return nil, fmt.Errorf("colstore: read block %d frame: %w", i, err)
		}
		frame = fbuf[:]
	}
	storedLen := int(binary.LittleEndian.Uint32(frame[0:]))
	codec := frame[4]
	rawLen := int(binary.LittleEndian.Uint32(frame[5:]))
	if int64(storedLen) > rd.size-off-9 {
		return nil, fmt.Errorf("colstore: block %d claims %d bytes past EOF", i, storedLen)
	}
	if rawLen > maxBlockRaw {
		// A corrupt frame must not drive a giant decode allocation; no real
		// block approaches this (see maxBlockRaw).
		return nil, fmt.Errorf("colstore: block %d declares %d raw bytes (limit %d)", i, rawLen, maxBlockRaw)
	}
	var stored []byte
	if rd.data != nil {
		stored = rd.data[off+9 : off+9+int64(storedLen)]
	} else {
		sc.stored = growBytes(sc.stored, storedLen)
		if _, err := rd.r.ReadAt(sc.stored, off+9); err != nil {
			return nil, fmt.Errorf("colstore: read block %d: %w", i, err)
		}
		stored = sc.stored
	}
	raw, err := decompressInto(stored, codec, rawLen, sc)
	if err != nil {
		return nil, fmt.Errorf("colstore: block %d: %w", i, err)
	}
	return raw, nil
}

func (rd *reader) close() error {
	if rd.closed.Swap(true) {
		return nil
	}
	var err error
	if rd.unmap != nil {
		err = rd.unmap()
		rd.data = nil
	}
	if rd.closer != nil {
		if cerr := rd.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (rd *reader) len() int {
	n := 0
	for _, zm := range rd.zones {
		n += zm.Count
	}
	return n
}

// mmapped reports whether block reads come from a memory-mapped region.
func (rd *reader) mmapped() bool { return rd.data != nil }

// TrajectoryReader reads trajectory samples from a VTB file with zone-map
// pruned scans. It is safe for concurrent Scans; Close must not race a scan
// in flight (an mmap-backed reader unmaps its file region on Close).
type TrajectoryReader struct {
	rd *reader
}

// NewTrajectoryReader opens a trajectory VTB image held in r (size bytes).
func NewTrajectoryReader(r io.ReaderAt, size int64) (*TrajectoryReader, error) {
	rd, err := openReader(r, size, KindTrajectory)
	if err != nil {
		return nil, err
	}
	return &TrajectoryReader{rd: rd}, nil
}

// OpenTrajectory opens the trajectory VTB file at path with the default
// options (memory-mapped where available). Close releases the underlying
// file and mapping.
func OpenTrajectory(path string) (*TrajectoryReader, error) {
	return OpenTrajectoryOptions(path, OpenOptions{})
}

// OpenTrajectoryOptions opens the trajectory VTB file at path with explicit
// open options.
func OpenTrajectoryOptions(path string, opts OpenOptions) (*TrajectoryReader, error) {
	rd, err := openPath(path, KindTrajectory, opts)
	if err != nil {
		return nil, err
	}
	return &TrajectoryReader{rd: rd}, nil
}

// Close releases the underlying file (and unmaps the region when
// mmap-backed). Scans after Close fail; samples and batches already decoded
// stay valid — decoding copies every value out of the mapped region.
func (tr *TrajectoryReader) Close() error { return tr.rd.close() }

// Mmapped reports whether the reader decodes blocks from a memory-mapped
// region (false on the io.ReaderAt fallback path).
func (tr *TrajectoryReader) Mmapped() bool { return tr.rd.mmapped() }

// Len returns the total number of samples in the file (from the footer, no
// block reads).
func (tr *TrajectoryReader) Len() int { return tr.rd.len() }

// Blocks returns the per-block zone maps, in file order.
func (tr *TrajectoryReader) Blocks() []ZoneMap {
	out := make([]ZoneMap, len(tr.rd.zones))
	copy(out, tr.rd.zones)
	return out
}

// MatchTrajectory reports whether a trajectory row satisfies the predicate —
// the exact row semantics of a trajectory Scan, exported so other layers
// (CSV fallback, block caches) can filter identically.
func (p Predicate) MatchTrajectory(s trajectory.Sample) bool {
	return p.matchCommon(s.ObjID, s.T) &&
		(!p.HasFloor || s.Loc.Floor == p.Floor) &&
		(!p.HasBox || (s.Loc.HasPoint && p.Box.Contains(s.Loc.Point)))
}

// MatchRSSI reports whether an RSSI row satisfies the predicate. Floor and
// box constraints do not apply to RSSI rows and are ignored.
func (p Predicate) MatchRSSI(m rssi.Measurement) bool {
	return p.matchCommon(m.ObjID, m.T)
}

// Scan streams every sample matching pred to emit, in file order, skipping
// whole blocks whose zone maps rule them out. The returned stats report how
// effective the pruning was. Steady state the scan allocates only
// never-seen-before strings: block fetch, decompression, and column decode
// all run out of pooled scratch buffers.
func (tr *TrajectoryReader) Scan(pred Predicate, emit func(trajectory.Sample)) (ScanStats, error) {
	sc := getScratch()
	defer putScratch(sc)
	stats := ScanStats{BlocksTotal: len(tr.rd.zones)}
	for i, zm := range tr.rd.zones {
		if pred.skipBlock(zm) {
			stats.BlocksPruned++
			continue
		}
		stats.BlocksScanned++
		raw, err := tr.rd.blockBytes(i, sc)
		if err != nil {
			return stats, err
		}
		if err := decodeTrajectoryBatchInto(raw, &sc.batch, sc); err != nil {
			return stats, fmt.Errorf("block %d: %w", i, err)
		}
		for j := 0; j < sc.batch.Len(); j++ {
			stats.RowsScanned++
			s := sc.batch.Row(j)
			if pred.MatchTrajectory(s) {
				stats.RowsMatched++
				emit(s)
			}
		}
	}
	return stats, nil
}

// DecodeBlock decodes block i (0 <= i < len(Blocks())) in full, ignoring any
// predicate, into freshly allocated rows. Safe for concurrent use.
func (tr *TrajectoryReader) DecodeBlock(i int) ([]trajectory.Sample, error) {
	b, err := tr.DecodeBlockBatch(i)
	if err != nil {
		return nil, err
	}
	return b.AppendTo(make([]trajectory.Sample, 0, b.Len())), nil
}

// DecodeBlockBatch decodes block i in full into a freshly allocated column
// batch the caller owns — the cache entry point: a serving layer keeps
// decoded batches resident (their footprint is what Bytes reports), fetches
// them here once, and filters rows itself with Predicate.MatchTrajectory.
// Safe for concurrent use.
func (tr *TrajectoryReader) DecodeBlockBatch(i int) (*TrajectoryBatch, error) {
	if i < 0 || i >= len(tr.rd.zones) {
		return nil, fmt.Errorf("colstore: block index %d out of range [0, %d)", i, len(tr.rd.zones))
	}
	sc := getScratch()
	defer putScratch(sc)
	raw, err := tr.rd.blockBytes(i, sc)
	if err != nil {
		return nil, err
	}
	out := &TrajectoryBatch{}
	if err := decodeTrajectoryBatchInto(raw, out, sc); err != nil {
		return nil, fmt.Errorf("block %d: %w", i, err)
	}
	return out, nil
}

// ReadAll decodes the whole file.
func (tr *TrajectoryReader) ReadAll() ([]trajectory.Sample, error) {
	out := make([]trajectory.Sample, 0, tr.Len())
	_, err := tr.Scan(Predicate{}, func(s trajectory.Sample) { out = append(out, s) })
	return out, err
}

// decodeTrajectoryBatchInto decodes one raw block payload into b's reused
// columns, borrowing intermediates from sc.
func decodeTrajectoryBatchInto(raw []byte, b *TrajectoryBatch, sc *decodeScratch) error {
	c := &cursor{b: raw}
	n := c.count()
	b.Reset()
	b.ObjID = c.intColumnInto(n, b.ObjID)
	b.Building = c.dictColumnInto(n, b.Building, sc)
	b.Floor = c.intColumnInto(n, b.Floor)
	b.Partition = c.dictColumnInto(n, b.Partition, sc)
	b.X = c.floatColumnInto(n, b.X, sc)
	b.Y = c.floatColumnInto(n, b.Y, sc)
	b.T = c.floatColumnInto(n, b.T, sc)
	b.HasPoint = c.bitsetInto(n, b.HasPoint)
	if c.err != nil {
		b.Reset()
		return c.err
	}
	return nil
}

// RSSIReader reads RSSI measurements from a VTB file.
type RSSIReader struct {
	rd *reader
}

// NewRSSIReader opens an RSSI VTB image held in r (size bytes).
func NewRSSIReader(r io.ReaderAt, size int64) (*RSSIReader, error) {
	rd, err := openReader(r, size, KindRSSI)
	if err != nil {
		return nil, err
	}
	return &RSSIReader{rd: rd}, nil
}

// OpenRSSI opens the RSSI VTB file at path with the default options
// (memory-mapped where available). Close releases the underlying file and
// mapping.
func OpenRSSI(path string) (*RSSIReader, error) {
	return OpenRSSIOptions(path, OpenOptions{})
}

// OpenRSSIOptions opens the RSSI VTB file at path with explicit open
// options.
func OpenRSSIOptions(path string, opts OpenOptions) (*RSSIReader, error) {
	rd, err := openPath(path, KindRSSI, opts)
	if err != nil {
		return nil, err
	}
	return &RSSIReader{rd: rd}, nil
}

// Close releases the underlying file (and unmaps the region when
// mmap-backed); see TrajectoryReader.Close.
func (rr *RSSIReader) Close() error { return rr.rd.close() }

// Mmapped reports whether the reader decodes blocks from a memory-mapped
// region.
func (rr *RSSIReader) Mmapped() bool { return rr.rd.mmapped() }

// Len returns the total number of measurements in the file.
func (rr *RSSIReader) Len() int { return rr.rd.len() }

// Blocks returns the per-block zone maps, in file order.
func (rr *RSSIReader) Blocks() []ZoneMap {
	out := make([]ZoneMap, len(rr.rd.zones))
	copy(out, rr.rd.zones)
	return out
}

// Scan streams every measurement matching pred (time and object constraints;
// floor/box do not apply to RSSI rows) to emit, skipping blocks via zone
// maps.
func (rr *RSSIReader) Scan(pred Predicate, emit func(rssi.Measurement)) (ScanStats, error) {
	// Floor and box constraints are meaningless for RSSI rows; drop them so
	// they neither prune blocks nor filter rows.
	pred.HasFloor, pred.HasBox = false, false
	sc := getScratch()
	defer putScratch(sc)
	stats := ScanStats{BlocksTotal: len(rr.rd.zones)}
	for i, zm := range rr.rd.zones {
		if pred.skipBlock(zm) {
			stats.BlocksPruned++
			continue
		}
		stats.BlocksScanned++
		raw, err := rr.rd.blockBytes(i, sc)
		if err != nil {
			return stats, err
		}
		if err := decodeRSSIBatchInto(raw, &sc.rbatch, sc); err != nil {
			return stats, fmt.Errorf("block %d: %w", i, err)
		}
		for j := 0; j < sc.rbatch.Len(); j++ {
			stats.RowsScanned++
			m := sc.rbatch.Row(j)
			if pred.MatchRSSI(m) {
				stats.RowsMatched++
				emit(m)
			}
		}
	}
	return stats, nil
}

// DecodeBlock decodes block i in full, ignoring any predicate; see
// TrajectoryReader.DecodeBlock. Safe for concurrent use.
func (rr *RSSIReader) DecodeBlock(i int) ([]rssi.Measurement, error) {
	b, err := rr.DecodeBlockBatch(i)
	if err != nil {
		return nil, err
	}
	return b.AppendTo(make([]rssi.Measurement, 0, b.Len())), nil
}

// DecodeBlockBatch decodes block i in full into a freshly allocated column
// batch the caller owns; see TrajectoryReader.DecodeBlockBatch. Safe for
// concurrent use.
func (rr *RSSIReader) DecodeBlockBatch(i int) (*RSSIBatch, error) {
	if i < 0 || i >= len(rr.rd.zones) {
		return nil, fmt.Errorf("colstore: block index %d out of range [0, %d)", i, len(rr.rd.zones))
	}
	sc := getScratch()
	defer putScratch(sc)
	raw, err := rr.rd.blockBytes(i, sc)
	if err != nil {
		return nil, err
	}
	out := &RSSIBatch{}
	if err := decodeRSSIBatchInto(raw, out, sc); err != nil {
		return nil, fmt.Errorf("block %d: %w", i, err)
	}
	return out, nil
}

// ReadAll decodes the whole file.
func (rr *RSSIReader) ReadAll() ([]rssi.Measurement, error) {
	out := make([]rssi.Measurement, 0, rr.Len())
	_, err := rr.Scan(Predicate{}, func(m rssi.Measurement) { out = append(out, m) })
	return out, err
}

// decodeRSSIBatchInto decodes one raw block payload into b's reused columns.
func decodeRSSIBatchInto(raw []byte, b *RSSIBatch, sc *decodeScratch) error {
	c := &cursor{b: raw}
	n := c.count()
	b.Reset()
	b.ObjID = c.intColumnInto(n, b.ObjID)
	b.DeviceID = c.dictColumnInto(n, b.DeviceID, sc)
	b.RSSI = c.floatColumnInto(n, b.RSSI, sc)
	b.T = c.floatColumnInto(n, b.T, sc)
	if c.err != nil {
		b.Reset()
		return c.err
	}
	return nil
}

func openFile(path string) (*os.File, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}
