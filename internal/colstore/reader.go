package colstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// reader owns the kind-independent read machinery: header/footer validation
// and block fetch + decompression. Typed readers layer row decoding and
// predicate evaluation on top.
type reader struct {
	r       io.ReaderAt
	size    int64
	kind    Kind
	zones   []ZoneMap
	offsets []int64
	closer  io.Closer // set when the reader owns the underlying file
}

func openReader(r io.ReaderAt, size int64, want Kind) (*reader, error) {
	if size < headerSize+tailSize {
		return nil, fmt.Errorf("colstore: file too short (%d bytes) to be VTB", size)
	}
	var hdr [headerSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("colstore: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != magicHead {
		return nil, fmt.Errorf("colstore: bad magic %q (not a VTB file)", hdr[:4])
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("colstore: unsupported VTB version %d", hdr[4])
	}
	if got := Kind(hdr[5]); got != want {
		return nil, fmt.Errorf("colstore: file holds %s records, want %s", got, want)
	}

	var tail [tailSize]byte
	if _, err := r.ReadAt(tail[:], size-tailSize); err != nil {
		return nil, fmt.Errorf("colstore: read footer tail: %w", err)
	}
	if [4]byte(tail[8:]) != magicTail {
		return nil, fmt.Errorf("colstore: bad footer magic %q (truncated file?)", tail[8:])
	}
	footerOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	if footerOff < headerSize || footerOff > size-tailSize-4 {
		return nil, fmt.Errorf("colstore: footer offset %d out of range", footerOff)
	}
	footer := make([]byte, size-tailSize-footerOff)
	if _, err := r.ReadAt(footer, footerOff); err != nil {
		return nil, fmt.Errorf("colstore: read footer: %w", err)
	}
	blockCount := int(binary.LittleEndian.Uint32(footer[:4]))
	if len(footer) != 4+blockCount*footerEntrySize {
		return nil, fmt.Errorf("colstore: footer is %d bytes, want %d for %d blocks",
			len(footer), 4+blockCount*footerEntrySize, blockCount)
	}

	rd := &reader{r: r, size: size, kind: want,
		zones: make([]ZoneMap, 0, blockCount), offsets: make([]int64, 0, blockCount)}
	for i := 0; i < blockCount; i++ {
		e := footer[4+i*footerEntrySize:]
		off := int64(binary.LittleEndian.Uint64(e[0:]))
		if off < headerSize || off >= footerOff {
			return nil, fmt.Errorf("colstore: block %d offset %d out of range", i, off)
		}
		f64 := func(at int) float64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(e[at:]))
		}
		i32 := func(at int) int {
			return int(int32(binary.LittleEndian.Uint32(e[at:])))
		}
		rd.offsets = append(rd.offsets, off)
		rd.zones = append(rd.zones, ZoneMap{
			Count: int(binary.LittleEndian.Uint32(e[8:])),
			T0:    f64(12), T1: f64(20),
			Box: geom.BBox{
				Min: geom.Pt(f64(28), f64(36)),
				Max: geom.Pt(f64(44), f64(52)),
			},
			FloorMin: i32(60), FloorMax: i32(64),
			FloorMask: binary.LittleEndian.Uint64(e[68:]),
			ObjMin:    i32(76), ObjMax: i32(80),
		})
	}
	return rd, nil
}

// block fetches and decompresses block i.
func (rd *reader) block(i int) ([]byte, error) {
	var frame [9]byte
	if _, err := rd.r.ReadAt(frame[:], rd.offsets[i]); err != nil {
		return nil, fmt.Errorf("colstore: read block %d frame: %w", i, err)
	}
	storedLen := int(binary.LittleEndian.Uint32(frame[0:]))
	codec := frame[4]
	rawLen := int(binary.LittleEndian.Uint32(frame[5:]))
	if int64(storedLen) > rd.size-rd.offsets[i] {
		return nil, fmt.Errorf("colstore: block %d claims %d bytes past EOF", i, storedLen)
	}
	stored := make([]byte, storedLen)
	if _, err := rd.r.ReadAt(stored, rd.offsets[i]+9); err != nil {
		return nil, fmt.Errorf("colstore: read block %d: %w", i, err)
	}
	return decompressBlock(stored, codec, rawLen)
}

func (rd *reader) close() error {
	if rd.closer != nil {
		return rd.closer.Close()
	}
	return nil
}

func (rd *reader) len() int {
	n := 0
	for _, zm := range rd.zones {
		n += zm.Count
	}
	return n
}

// TrajectoryReader reads trajectory samples from a VTB file with zone-map
// pruned scans. It is safe for concurrent Scans.
type TrajectoryReader struct {
	rd *reader
}

// NewTrajectoryReader opens a trajectory VTB image held in r (size bytes).
func NewTrajectoryReader(r io.ReaderAt, size int64) (*TrajectoryReader, error) {
	rd, err := openReader(r, size, KindTrajectory)
	if err != nil {
		return nil, err
	}
	return &TrajectoryReader{rd: rd}, nil
}

// OpenTrajectory opens the trajectory VTB file at path. Close releases the
// underlying file.
func OpenTrajectory(path string) (*TrajectoryReader, error) {
	f, size, err := openFile(path)
	if err != nil {
		return nil, err
	}
	tr, err := NewTrajectoryReader(f, size)
	if err != nil {
		f.Close()
		return nil, err
	}
	tr.rd.closer = f
	return tr, nil
}

// Close releases the underlying file when the reader owns one.
func (tr *TrajectoryReader) Close() error { return tr.rd.close() }

// Len returns the total number of samples in the file (from the footer, no
// block reads).
func (tr *TrajectoryReader) Len() int { return tr.rd.len() }

// Blocks returns the per-block zone maps, in file order.
func (tr *TrajectoryReader) Blocks() []ZoneMap {
	out := make([]ZoneMap, len(tr.rd.zones))
	copy(out, tr.rd.zones)
	return out
}

// MatchTrajectory reports whether a trajectory row satisfies the predicate —
// the exact row semantics of a trajectory Scan, exported so other layers
// (CSV fallback, block caches) can filter identically.
func (p Predicate) MatchTrajectory(s trajectory.Sample) bool {
	return p.matchCommon(s.ObjID, s.T) &&
		(!p.HasFloor || s.Loc.Floor == p.Floor) &&
		(!p.HasBox || (s.Loc.HasPoint && p.Box.Contains(s.Loc.Point)))
}

// MatchRSSI reports whether an RSSI row satisfies the predicate. Floor and
// box constraints do not apply to RSSI rows and are ignored.
func (p Predicate) MatchRSSI(m rssi.Measurement) bool {
	return p.matchCommon(m.ObjID, m.T)
}

// Scan streams every sample matching pred to emit, in file order, skipping
// whole blocks whose zone maps rule them out. The returned stats report how
// effective the pruning was.
func (tr *TrajectoryReader) Scan(pred Predicate, emit func(trajectory.Sample)) (ScanStats, error) {
	stats := ScanStats{BlocksTotal: len(tr.rd.zones)}
	for i, zm := range tr.rd.zones {
		if pred.skipBlock(zm) {
			stats.BlocksPruned++
			continue
		}
		stats.BlocksScanned++
		raw, err := tr.rd.block(i)
		if err != nil {
			return stats, err
		}
		if err := decodeTrajectoryBlock(raw, func(s trajectory.Sample) {
			stats.RowsScanned++
			if pred.MatchTrajectory(s) {
				stats.RowsMatched++
				emit(s)
			}
		}); err != nil {
			return stats, fmt.Errorf("block %d: %w", i, err)
		}
	}
	return stats, nil
}

// DecodeBlock decodes block i (0 <= i < len(Blocks())) in full, ignoring any
// predicate. It is the cache-friendly entry point: a serving layer that keeps
// decoded blocks resident fetches them here once and filters rows itself with
// Predicate.MatchTrajectory. Safe for concurrent use.
func (tr *TrajectoryReader) DecodeBlock(i int) ([]trajectory.Sample, error) {
	if i < 0 || i >= len(tr.rd.zones) {
		return nil, fmt.Errorf("colstore: block index %d out of range [0, %d)", i, len(tr.rd.zones))
	}
	raw, err := tr.rd.block(i)
	if err != nil {
		return nil, err
	}
	out := make([]trajectory.Sample, 0, tr.rd.zones[i].Count)
	if err := decodeTrajectoryBlock(raw, func(s trajectory.Sample) { out = append(out, s) }); err != nil {
		return nil, fmt.Errorf("block %d: %w", i, err)
	}
	return out, nil
}

// ReadAll decodes the whole file.
func (tr *TrajectoryReader) ReadAll() ([]trajectory.Sample, error) {
	out := make([]trajectory.Sample, 0, tr.Len())
	_, err := tr.Scan(Predicate{}, func(s trajectory.Sample) { out = append(out, s) })
	return out, err
}

func decodeTrajectoryBlock(raw []byte, emit func(trajectory.Sample)) error {
	c := &cursor{b: raw}
	n := c.count()
	objIDs := c.intColumn(n)
	buildings := c.dictColumn(n)
	floors := c.intColumn(n)
	parts := c.dictColumn(n)
	xs := c.floatColumn(n)
	ys := c.floatColumn(n)
	ts := c.floatColumn(n)
	hasPt := c.bitset(n)
	if c.err != nil {
		return c.err
	}
	for i := 0; i < n; i++ {
		emit(trajectory.Sample{
			ObjID: int(objIDs[i]),
			Loc: model.Location{
				Building:  buildings[i],
				Floor:     int(floors[i]),
				Partition: parts[i],
				Point:     geom.Pt(xs[i], ys[i]),
				HasPoint:  hasPt[i],
			},
			T: ts[i],
		})
	}
	return nil
}

// RSSIReader reads RSSI measurements from a VTB file.
type RSSIReader struct {
	rd *reader
}

// NewRSSIReader opens an RSSI VTB image held in r (size bytes).
func NewRSSIReader(r io.ReaderAt, size int64) (*RSSIReader, error) {
	rd, err := openReader(r, size, KindRSSI)
	if err != nil {
		return nil, err
	}
	return &RSSIReader{rd: rd}, nil
}

// OpenRSSI opens the RSSI VTB file at path. Close releases the underlying
// file.
func OpenRSSI(path string) (*RSSIReader, error) {
	f, size, err := openFile(path)
	if err != nil {
		return nil, err
	}
	rr, err := NewRSSIReader(f, size)
	if err != nil {
		f.Close()
		return nil, err
	}
	rr.rd.closer = f
	return rr, nil
}

// Close releases the underlying file when the reader owns one.
func (rr *RSSIReader) Close() error { return rr.rd.close() }

// Len returns the total number of measurements in the file.
func (rr *RSSIReader) Len() int { return rr.rd.len() }

// Blocks returns the per-block zone maps, in file order.
func (rr *RSSIReader) Blocks() []ZoneMap {
	out := make([]ZoneMap, len(rr.rd.zones))
	copy(out, rr.rd.zones)
	return out
}

// Scan streams every measurement matching pred (time and object constraints;
// floor/box do not apply to RSSI rows) to emit, skipping blocks via zone
// maps.
func (rr *RSSIReader) Scan(pred Predicate, emit func(rssi.Measurement)) (ScanStats, error) {
	// Floor and box constraints are meaningless for RSSI rows; drop them so
	// they neither prune blocks nor filter rows.
	pred.HasFloor, pred.HasBox = false, false
	stats := ScanStats{BlocksTotal: len(rr.rd.zones)}
	for i, zm := range rr.rd.zones {
		if pred.skipBlock(zm) {
			stats.BlocksPruned++
			continue
		}
		stats.BlocksScanned++
		raw, err := rr.rd.block(i)
		if err != nil {
			return stats, err
		}
		if err := decodeRSSIBlock(raw, func(m rssi.Measurement) {
			stats.RowsScanned++
			if pred.MatchRSSI(m) {
				stats.RowsMatched++
				emit(m)
			}
		}); err != nil {
			return stats, fmt.Errorf("block %d: %w", i, err)
		}
	}
	return stats, nil
}

// DecodeBlock decodes block i in full, ignoring any predicate; see
// TrajectoryReader.DecodeBlock. Safe for concurrent use.
func (rr *RSSIReader) DecodeBlock(i int) ([]rssi.Measurement, error) {
	if i < 0 || i >= len(rr.rd.zones) {
		return nil, fmt.Errorf("colstore: block index %d out of range [0, %d)", i, len(rr.rd.zones))
	}
	raw, err := rr.rd.block(i)
	if err != nil {
		return nil, err
	}
	out := make([]rssi.Measurement, 0, rr.rd.zones[i].Count)
	if err := decodeRSSIBlock(raw, func(m rssi.Measurement) { out = append(out, m) }); err != nil {
		return nil, fmt.Errorf("block %d: %w", i, err)
	}
	return out, nil
}

// ReadAll decodes the whole file.
func (rr *RSSIReader) ReadAll() ([]rssi.Measurement, error) {
	out := make([]rssi.Measurement, 0, rr.Len())
	_, err := rr.Scan(Predicate{}, func(m rssi.Measurement) { out = append(out, m) })
	return out, err
}

func decodeRSSIBlock(raw []byte, emit func(rssi.Measurement)) error {
	c := &cursor{b: raw}
	n := c.count()
	objIDs := c.intColumn(n)
	devices := c.dictColumn(n)
	values := c.floatColumn(n)
	ts := c.floatColumn(n)
	if c.err != nil {
		return c.err
	}
	for i := 0; i < n; i++ {
		emit(rssi.Measurement{
			ObjID:    int(objIDs[i]),
			DeviceID: devices[i],
			RSSI:     values[i],
			T:        ts[i],
		})
	}
	return nil
}

func openFile(path string) (*os.File, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}
