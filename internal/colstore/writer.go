package colstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"vita/internal/geom"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// blockWriter owns the kind-independent file machinery: header, block
// framing, zone-map accumulation, and the footer. The typed writers feed it
// encoded payloads plus their zone maps. Codec selection happens once, at
// construction: the writer holds one configured blockCompressor for its
// lifetime, so the per-block path has no codec branch and every compression
// buffer is reused.
type blockWriter struct {
	w    io.Writer
	opts Options
	kind Kind
	comp blockCompressor

	off         int64
	wroteHeader bool
	closed      bool
	err         error // sticky: after a write error every call fails fast

	offsets []int64
	zones   []ZoneMap

	payload []byte // reused encode buffer
}

func newBlockWriter(w io.Writer, kind Kind, opts Options) *blockWriter {
	opts = opts.withDefaults()
	return &blockWriter{w: w, kind: kind, opts: opts, comp: newBlockCompressor(opts.Codec)}
}

func (bw *blockWriter) write(p []byte) {
	if bw.err != nil {
		return
	}
	n, err := bw.w.Write(p)
	bw.off += int64(n)
	if err != nil {
		bw.err = fmt.Errorf("colstore: write: %w", err)
	}
}

func (bw *blockWriter) writeHeader() {
	if bw.wroteHeader {
		return
	}
	bw.wroteHeader = true
	hdr := [headerSize]byte{}
	copy(hdr[:4], magicHead[:])
	hdr[4] = version
	hdr[5] = byte(bw.kind)
	bw.write(hdr[:])
}

// flushBlock frames and writes one encoded payload and records its zone map.
func (bw *blockWriter) flushBlock(raw []byte, zm ZoneMap) {
	if bw.err != nil {
		return
	}
	bw.writeHeader()
	stored, codec, err := bw.comp.compress(raw)
	if err != nil {
		bw.err = err
		return
	}
	bw.offsets = append(bw.offsets, bw.off)
	bw.zones = append(bw.zones, zm)
	var frame [9]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(stored)))
	frame[4] = codec
	binary.LittleEndian.PutUint32(frame[5:], uint32(len(raw)))
	bw.write(frame[:])
	bw.write(stored)
}

// footerEntrySize is the fixed wire size of one zone-map entry.
const footerEntrySize = 8 + 4 + 2*8 + 4*8 + 2*4 + 8 + 2*4

func (bw *blockWriter) close() error {
	if bw.closed {
		return bw.err
	}
	bw.closed = true
	bw.writeHeader() // empty files still carry header + footer
	footerOff := bw.off
	buf := make([]byte, 0, 4+len(bw.zones)*footerEntrySize+tailSize)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(bw.zones)))
	for i, zm := range bw.zones {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(bw.offsets[i]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(zm.Count))
		buf = appendF64(buf, zm.T0)
		buf = appendF64(buf, zm.T1)
		buf = appendF64(buf, zm.Box.Min.X)
		buf = appendF64(buf, zm.Box.Min.Y)
		buf = appendF64(buf, zm.Box.Max.X)
		buf = appendF64(buf, zm.Box.Max.Y)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(zm.FloorMin)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(zm.FloorMax)))
		buf = binary.LittleEndian.AppendUint64(buf, zm.FloorMask)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(zm.ObjMin)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(zm.ObjMax)))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(footerOff))
	buf = append(buf, magicTail[:]...)
	bw.write(buf)
	return bw.err
}

// TrajectoryWriter streams trajectory samples into a VTB file. Feed it from
// the generation pipeline's emit callback (the Collector delivers samples in
// global time order, which makes the zone maps maximally selective) and
// Close it to flush the last block and write the footer.
type TrajectoryWriter struct {
	bw  *blockWriter
	buf []trajectory.Sample

	// reused column slices
	objIDs    []int64
	buildings []string
	floors    []int64
	parts     []string
	xs, ys    []float64
	ts        []float64
	hasPt     []bool
}

// NewTrajectoryWriter returns a streaming writer with default options.
// The caller owns w; Close flushes the format but does not close w.
func NewTrajectoryWriter(w io.Writer) *TrajectoryWriter {
	return NewTrajectoryWriterOptions(w, Options{})
}

// NewTrajectoryWriterOptions returns a streaming writer with explicit
// options.
func NewTrajectoryWriterOptions(w io.Writer, opts Options) *TrajectoryWriter {
	tw := &TrajectoryWriter{bw: newBlockWriter(w, KindTrajectory, opts)}
	tw.buf = make([]trajectory.Sample, 0, tw.bw.opts.BlockSize)
	return tw
}

// Write appends one sample, flushing a block when full.
func (tw *TrajectoryWriter) Write(s trajectory.Sample) error {
	if tw.bw.closed {
		return fmt.Errorf("colstore: write after Close")
	}
	tw.buf = append(tw.buf, s)
	if len(tw.buf) >= tw.bw.opts.BlockSize {
		tw.flush()
	}
	return tw.bw.err
}

// Close flushes the pending block and writes the footer index.
func (tw *TrajectoryWriter) Close() error {
	if !tw.bw.closed && len(tw.buf) > 0 {
		tw.flush()
	}
	return tw.bw.close()
}

func (tw *TrajectoryWriter) flush() {
	samples := tw.buf
	zm := ZoneMap{
		Count: len(samples),
		T0:    samples[0].T, T1: samples[0].T,
		Box:      geom.EmptyBBox(),
		FloorMin: samples[0].Loc.Floor, FloorMax: samples[0].Loc.Floor,
		ObjMin: samples[0].ObjID, ObjMax: samples[0].ObjID,
	}
	tw.objIDs = tw.objIDs[:0]
	tw.buildings = tw.buildings[:0]
	tw.floors = tw.floors[:0]
	tw.parts = tw.parts[:0]
	tw.xs, tw.ys, tw.ts = tw.xs[:0], tw.ys[:0], tw.ts[:0]
	tw.hasPt = tw.hasPt[:0]
	for _, s := range samples {
		tw.objIDs = append(tw.objIDs, int64(s.ObjID))
		tw.buildings = append(tw.buildings, s.Loc.Building)
		tw.floors = append(tw.floors, int64(s.Loc.Floor))
		tw.parts = append(tw.parts, s.Loc.Partition)
		tw.xs = append(tw.xs, s.Loc.Point.X)
		tw.ys = append(tw.ys, s.Loc.Point.Y)
		tw.ts = append(tw.ts, s.T)
		tw.hasPt = append(tw.hasPt, s.Loc.HasPoint)

		zm.T0, zm.T1 = min(zm.T0, s.T), max(zm.T1, s.T)
		zm.FloorMin, zm.FloorMax = min(zm.FloorMin, s.Loc.Floor), max(zm.FloorMax, s.Loc.Floor)
		zm.ObjMin, zm.ObjMax = min(zm.ObjMin, s.ObjID), max(zm.ObjMax, s.ObjID)
		if s.Loc.HasPoint {
			zm.Box = zm.Box.ExtendPoint(s.Loc.Point)
		}
	}
	if span := zm.FloorMax - zm.FloorMin; span < 64 {
		for _, s := range samples {
			zm.FloorMask |= 1 << uint(s.Loc.Floor-zm.FloorMin)
		}
	}

	p := tw.bw.payload[:0]
	p = binary.AppendUvarint(p, uint64(len(samples)))
	p = appendIntColumn(p, tw.objIDs)
	p = appendDictColumn(p, tw.buildings)
	p = appendIntColumn(p, tw.floors)
	p = appendDictColumn(p, tw.parts)
	p = appendFloatColumn(p, tw.xs)
	p = appendFloatColumn(p, tw.ys)
	p = appendFloatColumn(p, tw.ts)
	p = appendBitset(p, tw.hasPt)
	tw.bw.payload = p

	tw.bw.flushBlock(p, zm)
	tw.buf = tw.buf[:0]
}

// RSSIWriter streams RSSI measurements into a VTB file.
type RSSIWriter struct {
	bw  *blockWriter
	buf []rssi.Measurement

	objIDs  []int64
	devices []string
	values  []float64
	ts      []float64
}

// NewRSSIWriter returns a streaming writer with default options.
func NewRSSIWriter(w io.Writer) *RSSIWriter {
	return NewRSSIWriterOptions(w, Options{})
}

// NewRSSIWriterOptions returns a streaming writer with explicit options.
func NewRSSIWriterOptions(w io.Writer, opts Options) *RSSIWriter {
	rw := &RSSIWriter{bw: newBlockWriter(w, KindRSSI, opts)}
	rw.buf = make([]rssi.Measurement, 0, rw.bw.opts.BlockSize)
	return rw
}

// Write appends one measurement, flushing a block when full.
func (rw *RSSIWriter) Write(m rssi.Measurement) error {
	if rw.bw.closed {
		return fmt.Errorf("colstore: write after Close")
	}
	rw.buf = append(rw.buf, m)
	if len(rw.buf) >= rw.bw.opts.BlockSize {
		rw.flush()
	}
	return rw.bw.err
}

// Close flushes the pending block and writes the footer index.
func (rw *RSSIWriter) Close() error {
	if !rw.bw.closed && len(rw.buf) > 0 {
		rw.flush()
	}
	return rw.bw.close()
}

func (rw *RSSIWriter) flush() {
	ms := rw.buf
	zm := ZoneMap{
		Count: len(ms),
		T0:    ms[0].T, T1: ms[0].T,
		Box:    geom.EmptyBBox(),
		ObjMin: ms[0].ObjID, ObjMax: ms[0].ObjID,
	}
	rw.objIDs = rw.objIDs[:0]
	rw.devices = rw.devices[:0]
	rw.values = rw.values[:0]
	rw.ts = rw.ts[:0]
	for _, m := range ms {
		rw.objIDs = append(rw.objIDs, int64(m.ObjID))
		rw.devices = append(rw.devices, m.DeviceID)
		rw.values = append(rw.values, m.RSSI)
		rw.ts = append(rw.ts, m.T)

		zm.T0, zm.T1 = min(zm.T0, m.T), max(zm.T1, m.T)
		zm.ObjMin, zm.ObjMax = min(zm.ObjMin, m.ObjID), max(zm.ObjMax, m.ObjID)
	}

	p := rw.bw.payload[:0]
	p = binary.AppendUvarint(p, uint64(len(ms)))
	p = appendIntColumn(p, rw.objIDs)
	p = appendDictColumn(p, rw.devices)
	p = appendFloatColumn(p, rw.values)
	p = appendFloatColumn(p, rw.ts)
	rw.bw.payload = p

	rw.bw.flushBlock(p, zm)
	rw.buf = rw.buf[:0]
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}
