// Package colstore implements VTB, Vita's block-based columnar binary format
// for trajectory samples and RSSI measurements. It is the scale-oriented
// alternative to the CSV codecs of internal/storage: lossless (full float64
// fidelity where CSV quantizes to 4 decimals), a fraction of the size, and —
// via per-block zone maps — readable with predicate pushdown, so a
// time-window or single-object query touches only the blocks that can hold
// matching rows.
//
// # File layout (VTB v1)
//
//	header   "VTB1" | version (u8) | kind (u8) | reserved (u16)
//	blocks   each: storedLen (u32) | codec (u8) | rawLen (u32) | payload
//	footer   blockCount (u32) | blockCount × zone-map entry | footerOff (u64) | "VTBF"
//
// Fixed-width integers are little-endian. A zone-map entry records the block
// offset plus per-block summaries: row count, time min/max, point bounding
// box, floor range + presence bitmask, and object-ID range. Readers load only
// the footer up front; Scan consults the zone maps and skips whole blocks
// whose summaries cannot satisfy the predicate.
//
// # Block payload
//
// Rows are split into columns, each encoded to exploit its shape:
//
//   - integer columns (object ID, floor): zigzag-varint delta-of-delta, so
//     the near-constant deltas of time-ordered generator output collapse to
//     single bytes;
//   - float columns (x, y, t, rssi): per-block either "scaled" — when every
//     value round-trips exactly through a decimal fixed-point representation
//     (timestamps on a regular sampling grid always do), encoded as a scaled
//     integer column — or "raw", 8-byte bit patterns XORed with the previous
//     value so that flate finds the shared exponent/mantissa prefixes;
//   - string columns (building, partition, device ID): per-block dictionary
//     in first-seen order followed by varint indices;
//   - the HasPoint flag: a bitset.
//
// The concatenated columns are then block-compressed when that helps —
// vsnap, the default allocation-free LZ codec (codec 2, see vsnap.go), or
// flate (codec 1, the pre-vsnap default, still fully supported) — or stored
// verbatim (codec 0). Every block frame carries its own codec byte, so one
// file may mix blocks from different codecs and eras; readers need no codec
// configuration. Decoding restores every field bit-for-bit: the round trip
// is lossless by construction, which the acceptance tests verify
// sample-by-sample against generator output.
package colstore

import (
	"fmt"
	"io"
	"os"

	"vita/internal/geom"
)

// Kind identifies the record schema stored in a VTB file.
type Kind uint8

const (
	// KindTrajectory stores trajectory.Sample rows (also fits positioning
	// estimates, which share the schema).
	KindTrajectory Kind = 0
	// KindRSSI stores rssi.Measurement rows.
	KindRSSI Kind = 1
)

func (k Kind) String() string {
	switch k {
	case KindTrajectory:
		return "trajectory"
	case KindRSSI:
		return "rssi"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

const (
	version    = 1
	headerSize = 8
	tailSize   = 12 // footerOff (u64) + tail magic (4)

	codecRaw   = 0
	codecFlate = 1
	codecVSnap = 2

	// maxBlockRaw bounds the decoded size a block frame may declare. Real
	// blocks are a few hundred KiB (BlockSize rows across ~8 columns), so
	// 16 MiB is two orders of magnitude of headroom; the bound exists so a
	// corrupt or hostile frame cannot drive a giant allocation — or a
	// gigabyte-scale LZ expansion — before decoding even starts.
	maxBlockRaw = 1 << 24
)

var (
	magicHead = [4]byte{'V', 'T', 'B', '1'}
	magicTail = [4]byte{'V', 'T', 'B', 'F'}
)

// Codec selects the per-block compression a writer applies to encoded
// payloads. Readers need no codec choice: every block frame carries its own
// codec byte, so files — even single segment logs — may freely mix blocks
// written under different codecs and different eras.
type Codec uint8

const (
	// CodecDefault resolves to CodecVSnap at write time — the zero value, so
	// an unset Options.Codec picks the fast default.
	CodecDefault Codec = iota
	// CodecVSnap is vsnap, the allocation-free LZ codec (see vsnap.go): the
	// default since it decodes at memcpy-like speed with zero allocations
	// per block, at a slightly weaker ratio than flate.
	CodecVSnap
	// CodecFlate is stdlib DEFLATE: the best ratio (it adds a Huffman
	// entropy stage) but ~7 allocations per decoded block from stdlib
	// Huffman state. The write codec of every pre-vsnap VTB file; kept fully
	// writable and readable.
	CodecFlate
	// CodecRaw stores blocks verbatim — the fastest scans (zero-copy off an
	// mmap) at the largest size.
	CodecRaw
)

// ParseCodec validates a user-supplied codec name (the CLIs' -codec flags).
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "vsnap":
		return CodecVSnap, nil
	case "flate":
		return CodecFlate, nil
	case "raw":
		return CodecRaw, nil
	default:
		return 0, fmt.Errorf("colstore: unknown codec %q (valid: raw, vsnap, flate)", s)
	}
}

func (c Codec) String() string {
	switch c {
	case CodecDefault:
		return "default"
	case CodecVSnap:
		return "vsnap"
	case CodecFlate:
		return "flate"
	case CodecRaw:
		return "raw"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// Options tunes a Writer. The zero value selects the defaults.
type Options struct {
	// BlockSize is the number of rows per block (default 4096). Smaller
	// blocks prune more sharply but carry more per-block overhead.
	BlockSize int
	// Codec selects the block compression (default CodecVSnap). Compressed
	// codecs store a block raw when compression would not shrink it, so any
	// file can contain raw blocks.
	Codec Codec
	// NoCompress is the legacy spelling of Codec: CodecRaw; it applies only
	// when Codec is CodecDefault. Prefer Codec.
	NoCompress bool
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.Codec == CodecDefault {
		if o.NoCompress {
			o.Codec = CodecRaw
		} else {
			o.Codec = CodecVSnap
		}
	}
	return o
}

// ZoneMap summarizes one block for predicate pushdown. Every field is a
// conservative bound: a predicate may only skip a block when the zone map
// proves no row can match.
type ZoneMap struct {
	// Count is the number of rows in the block.
	Count int
	// T0 and T1 bound the row timestamps.
	T0, T1 float64
	// Box bounds the sample points (trajectory kind; empty when the block
	// has no coordinate rows, including always for RSSI files).
	Box geom.BBox
	// FloorMin and FloorMax bound the floors (trajectory kind).
	FloorMin, FloorMax int
	// FloorMask has bit i set when floor FloorMin+i occurs in the block; 0
	// means the mask is unusable (floor span ≥ 64) and only the range
	// bounds apply.
	FloorMask uint64
	// ObjMin and ObjMax bound the object IDs.
	ObjMin, ObjMax int
}

// ScanStats reports how much of a file a Scan actually touched.
type ScanStats struct {
	// BlocksTotal is the number of blocks in the file.
	BlocksTotal int
	// BlocksScanned is how many blocks were read and decoded.
	BlocksScanned int
	// BlocksPruned is how many blocks the zone maps skipped outright.
	BlocksPruned int
	// RowsScanned counts rows decoded from scanned blocks.
	RowsScanned int
	// RowsMatched counts rows that passed the predicate and were emitted.
	RowsMatched int
}

// Predicate restricts a Scan. The zero value matches every row; each set
// constraint must hold for a row to be emitted. Block-level pruning via zone
// maps is exact with respect to these row semantics.
type Predicate struct {
	// HasTime restricts to T0 <= t <= T1.
	HasTime bool
	T0, T1  float64
	// HasFloor restricts to rows on exactly Floor (trajectory kind).
	HasFloor bool
	Floor    int
	// HasBox restricts to coordinate rows whose point lies in Box
	// (trajectory kind; symbolic rows never match).
	HasBox bool
	Box    geom.BBox
	// HasObj restricts to a single object ID.
	HasObj bool
	Obj    int
}

// TimeWindow returns a predicate matching rows with t in [t0, t1].
func TimeWindow(t0, t1 float64) Predicate {
	return Predicate{HasTime: true, T0: t0, T1: t1}
}

// SkipBlock reports whether the zone map proves no row of the block can
// match p. Callers that fetch blocks themselves (for example through a block
// cache, like internal/serve) use it to reproduce Scan's pruning exactly.
func (p Predicate) SkipBlock(zm ZoneMap) bool { return p.skipBlock(zm) }

// skipBlock reports whether the zone map proves no row of the block can
// match p.
func (p Predicate) skipBlock(zm ZoneMap) bool {
	if zm.Count == 0 {
		return true
	}
	if p.HasTime && (p.T1 < zm.T0 || p.T0 > zm.T1) {
		return true
	}
	if p.HasObj && (p.Obj < zm.ObjMin || p.Obj > zm.ObjMax) {
		return true
	}
	if p.HasFloor {
		if p.Floor < zm.FloorMin || p.Floor > zm.FloorMax {
			return true
		}
		if zm.FloorMask != 0 && zm.FloorMask&(1<<uint(p.Floor-zm.FloorMin)) == 0 {
			return true
		}
	}
	// Box containment tolerates geom.Eps, so grow the query box by Eps
	// before the intersection test to keep pruning conservative.
	if p.HasBox && (zm.Box.IsEmpty() || !zm.Box.Intersects(p.Box.Expand(geom.Eps))) {
		return true
	}
	return false
}

// matchCommon checks the kind-independent constraints (time, object).
func (p Predicate) matchCommon(objID int, t float64) bool {
	if p.HasTime && (t < p.T0 || t > p.T1) {
		return false
	}
	if p.HasObj && objID != p.Obj {
		return false
	}
	return true
}

// Sniff reports whether the file at path is a VTB file (by magic bytes, not
// extension) and, if so, its record kind.
func Sniff(path string) (kind Kind, isVTB bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, false, nil // too short to be VTB; treat as not-VTB
		}
		return 0, false, err
	}
	if [4]byte(hdr[:4]) != magicHead {
		return 0, false, nil
	}
	return Kind(hdr[5]), true, nil
}
