package colstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vita/internal/trajectory"
)

// writeTrajectoryFile persists a VTB image for the file-based open paths.
func writeTrajectoryFile(t *testing.T, samples []trajectory.Sample, opts Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trajectory.vtb")
	if err := os.WriteFile(path, writeTrajectory(t, samples, opts), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMmapMatchesReaderAt opens the same file mmap-backed and pread-backed
// and requires bit-identical rows and identical stats from both, across
// Scan, ScanParallel, and the cursor.
func TestMmapMatchesReaderAt(t *testing.T) {
	samples := gridSamples(8, 500)
	// Small blocks without compression maximize the zero-copy raw-codec
	// path; a second pass with compression covers the inflate path.
	for _, opts := range []Options{{BlockSize: 128, NoCompress: true}, {BlockSize: 128}} {
		path := writeTrajectoryFile(t, samples, opts)

		mm, err := OpenTrajectoryOptions(path, OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer mm.Close()
		pr, err := OpenTrajectoryOptions(path, OpenOptions{DisableMmap: true})
		if err != nil {
			t.Fatal(err)
		}
		defer pr.Close()

		if mm.Mmapped() != mmapAvailable {
			t.Errorf("default open: Mmapped() = %v, platform support = %v", mm.Mmapped(), mmapAvailable)
		}
		if pr.Mmapped() {
			t.Error("DisableMmap open still reports Mmapped()")
		}

		pred := TimeWindow(50, 220)
		var want []trajectory.Sample
		wantStats, err := pr.Scan(pred, func(s trajectory.Sample) { want = append(want, s) })
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatal("window matched nothing")
		}

		var got []trajectory.Sample
		gotStats, err := mm.Scan(pred, func(s trajectory.Sample) { got = append(got, s) })
		if err != nil {
			t.Fatal(err)
		}
		if gotStats != wantStats {
			t.Errorf("stats differ: mmap %+v, pread %+v", gotStats, wantStats)
		}
		if len(got) != len(want) {
			t.Fatalf("mmap scan yielded %d rows, pread %d", len(got), len(want))
		}
		for i := range got {
			if !sampleEqual(got[i], want[i]) {
				t.Fatalf("row %d differs between mmap and pread", i)
			}
		}

		var par []trajectory.Sample
		parStats, err := mm.ScanParallel(pred, 4, func(s trajectory.Sample) { par = append(par, s) })
		if err != nil {
			t.Fatal(err)
		}
		if parStats != wantStats || len(par) != len(want) {
			t.Fatalf("mmap parallel scan differs: stats %+v rows %d, want %+v rows %d",
				parStats, len(par), wantStats, len(want))
		}

		cur := mm.Cursor(pred)
		var cRows []trajectory.Sample
		for cur.Next() {
			cRows = cur.Batch().AppendTo(cRows)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if cur.Stats() != wantStats || len(cRows) != len(want) {
			t.Fatalf("mmap cursor differs: stats %+v rows %d, want %+v rows %d",
				cur.Stats(), len(cRows), wantStats, len(want))
		}
		for i := range cRows {
			if !sampleEqual(cRows[i], want[i]) {
				t.Fatalf("cursor row %d differs", i)
			}
		}
	}
}

// TestScanAfterClose pins the unmap-after-close contract: operations that
// would touch the (now unmapped) region fail with an error instead of
// crashing, on both open paths; data decoded before Close stays valid.
func TestScanAfterClose(t *testing.T) {
	samples := gridSamples(4, 300)
	path := writeTrajectoryFile(t, samples, Options{BlockSize: 64})
	for _, disable := range []bool{false, true} {
		r, err := OpenTrajectoryOptions(path, OpenOptions{DisableMmap: disable})
		if err != nil {
			t.Fatal(err)
		}
		// Decode something first; it must survive Close.
		rows, err := r.DecodeBlock(0)
		if err != nil {
			t.Fatal(err)
		}
		cur := r.Cursor(Predicate{})
		if !cur.Next() {
			t.Fatalf("first Next failed: %v", cur.Err())
		}
		kept := cur.Batch().AppendTo(nil)
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Scan(Predicate{}, func(trajectory.Sample) {}); err == nil {
			t.Errorf("disableMmap=%v: Scan after Close succeeded", disable)
		}
		if _, err := r.ScanParallel(Predicate{}, 4, func(trajectory.Sample) {}); err == nil {
			t.Errorf("disableMmap=%v: ScanParallel after Close succeeded", disable)
		}
		if _, err := r.DecodeBlock(0); err == nil {
			t.Errorf("disableMmap=%v: DecodeBlock after Close succeeded", disable)
		}
		if cur.Next() {
			t.Errorf("disableMmap=%v: cursor Next after Close succeeded", disable)
		} else if cur.Err() == nil {
			t.Errorf("disableMmap=%v: cursor Next after Close reported no error", disable)
		}
		for i := range rows {
			if !sampleEqual(rows[i], samples[i]) {
				t.Fatalf("pre-Close DecodeBlock row %d corrupted after Close", i)
			}
		}
		for i := range kept {
			if !sampleEqual(kept[i], samples[i]) {
				t.Fatalf("pre-Close batch row %d corrupted after Close", i)
			}
		}
		if err := r.Close(); err != nil {
			t.Errorf("disableMmap=%v: second Close: %v", disable, err)
		}
	}
}

// TestOpenBadFiles covers zero-length, truncated, and corrupt files on both
// open paths: every case must fail cleanly at open (mmap of an empty file is
// impossible, so the default path must fall back and still report the format
// error).
func TestOpenBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := writeTrajectory(t, gridSamples(2, 100), Options{BlockSize: 32})
	cases := map[string][]byte{
		"empty":      {},
		"tiny":       []byte("VT"),
		"not-vtb":    []byte("o_id,building,floor,partition,x,y,t\n1,b,0,p,1,2,3\n"),
		"truncated":  good[:len(good)/2],
		"bad-footer": append(append([]byte{}, good[:len(good)-4]...), 'X', 'X', 'X', 'X'),
	}
	for name, data := range cases {
		path := write(name, data)
		for _, disable := range []bool{false, true} {
			if r, err := OpenTrajectoryOptions(path, OpenOptions{DisableMmap: disable}); err == nil {
				r.Close()
				t.Errorf("%s (disableMmap=%v): open succeeded", name, disable)
			}
		}
	}
	// Wrong kind must fail on both paths too.
	goodPath := write("good.vtb", good)
	for _, disable := range []bool{false, true} {
		if r, err := OpenRSSIOptions(goodPath, OpenOptions{DisableMmap: disable}); err == nil {
			r.Close()
			t.Errorf("disableMmap=%v: opened trajectory file as RSSI", disable)
		} else if !strings.Contains(err.Error(), "trajectory") {
			t.Errorf("disableMmap=%v: kind error %q does not name the actual kind", disable, err)
		}
	}
}
