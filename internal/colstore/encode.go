package colstore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file holds the column codecs shared by the writer and the reader:
// delta-of-delta integer columns, scaled/raw float columns, dictionary
// string columns, bitsets, and the per-block flate pass. Encoders append to
// a []byte; decoders consume from a cursor with a sticky error so corrupt
// input surfaces as one error instead of a panic.

// appendIntColumn encodes vals as zigzag varints of the delta-of-delta
// sequence: v0, d1, d2-d1, d3-d2, ...
func appendIntColumn(dst []byte, vals []int64) []byte {
	var prev, prevDelta int64
	for i, v := range vals {
		switch i {
		case 0:
			dst = binary.AppendVarint(dst, v)
		case 1:
			prevDelta = v - prev
			dst = binary.AppendVarint(dst, prevDelta)
		default:
			d := v - prev
			dst = binary.AppendVarint(dst, d-prevDelta)
			prevDelta = d
		}
		prev = v
	}
	return dst
}

const (
	floatRaw    = 0 // 8-byte bit patterns, XORed with the previous value
	floatScaled = 1 // decimal fixed point: scale exponent + integer column
)

// maxScaleExp bounds the decimal scales tried for the fixed-point float
// encoding: 10^0 .. 10^maxScaleExp.
const maxScaleExp = 4

var pow10 = [maxScaleExp + 1]float64{1, 10, 100, 1000, 10000}

// exactScaled reports whether v survives a round trip through
// round(v*scale)/scale bit-for-bit, along with the scaled integer.
func exactScaled(v, scale float64) (int64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	r := math.Round(v * scale)
	if math.Abs(r) >= 1<<53 {
		return 0, false
	}
	i := int64(r)
	if math.Float64bits(float64(i)/scale) != math.Float64bits(v) {
		return 0, false
	}
	return i, true
}

// scaledInts returns vals as integers under the smallest decimal scale that
// reproduces every value exactly, or ok=false when no scale ≤ 10^maxScaleExp
// does.
func scaledInts(vals []float64) (ints []int64, exp int, ok bool) {
	buf := make([]int64, 0, len(vals))
nextExp:
	for e := 0; e <= maxScaleExp; e++ {
		buf = buf[:0]
		for _, v := range vals {
			i, ok := exactScaled(v, pow10[e])
			if !ok {
				continue nextExp
			}
			buf = append(buf, i)
		}
		return buf, e, true
	}
	return nil, 0, false
}

// appendFloatColumn encodes vals either as decimal fixed point (lossless by
// the exactScaled check) or as raw XORed bit patterns.
func appendFloatColumn(dst []byte, vals []float64) []byte {
	if ints, exp, ok := scaledInts(vals); ok {
		dst = append(dst, floatScaled, byte(exp))
		return appendIntColumn(dst, ints)
	}
	dst = append(dst, floatRaw)
	var prev uint64
	for _, v := range vals {
		bits := math.Float64bits(v)
		dst = binary.LittleEndian.AppendUint64(dst, bits^prev)
		prev = bits
	}
	return dst
}

// appendDictColumn encodes vals as a first-seen-order dictionary followed by
// one varint index per value.
func appendDictColumn(dst []byte, vals []string) []byte {
	idx := make(map[string]int)
	var dict []string
	for _, s := range vals {
		if _, ok := idx[s]; !ok {
			idx[s] = len(dict)
			dict = append(dict, s)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(dict)))
	for _, s := range dict {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	for _, s := range vals {
		dst = binary.AppendUvarint(dst, uint64(idx[s]))
	}
	return dst
}

// appendBitset encodes one bit per value, LSB-first within each byte.
func appendBitset(dst []byte, vals []bool) []byte {
	n := (len(vals) + 7) / 8
	start := len(dst)
	dst = append(dst, make([]byte, n)...)
	for i, v := range vals {
		if v {
			dst[start+i/8] |= 1 << uint(i%8)
		}
	}
	return dst
}

// blockCompressor turns one encoded block payload into its stored form. A
// writer (or compactor) configures exactly one at construction from
// Options.Codec and holds it for its lifetime, so the per-block hot path has
// no codec branching and every compressor buffer is reused across blocks —
// the returned payload is only valid until the next compress call.
//
// Compressing codecs fall back to codecRaw when compression would not shrink
// the payload; the reader dispatches on the per-block codec byte, so the
// fallback (and mixing codecs across a file's blocks) is invisible to it.
type blockCompressor interface {
	compress(raw []byte) (stored []byte, codec byte, err error)
}

// newBlockCompressor returns the compressor for a resolved (non-default)
// codec.
func newBlockCompressor(c Codec) blockCompressor {
	switch c {
	case CodecFlate:
		return &flateCompressor{}
	case CodecRaw:
		return rawCompressor{}
	default:
		return &vsnapCompressor{}
	}
}

// rawCompressor stores blocks verbatim.
type rawCompressor struct{}

func (rawCompressor) compress(raw []byte) ([]byte, byte, error) { return raw, codecRaw, nil }

// flateCompressor reuses one flate.Writer and one output buffer across
// blocks.
type flateCompressor struct {
	fw  *flate.Writer
	buf bytes.Buffer
}

func (c *flateCompressor) compress(raw []byte) ([]byte, byte, error) {
	c.buf.Reset()
	if c.fw == nil {
		w, err := flate.NewWriter(&c.buf, flate.DefaultCompression)
		if err != nil {
			return nil, 0, err
		}
		c.fw = w
	} else {
		c.fw.Reset(&c.buf)
	}
	if _, err := c.fw.Write(raw); err != nil {
		return nil, 0, err
	}
	if err := c.fw.Close(); err != nil {
		return nil, 0, err
	}
	if c.buf.Len() >= len(raw) {
		return raw, codecRaw, nil
	}
	return c.buf.Bytes(), codecFlate, nil
}

// vsnapCompressor reuses one output buffer and one hash table across blocks;
// steady-state encode allocates nothing once the output buffer has grown to
// the working size.
type vsnapCompressor struct {
	dst   []byte
	table [vsnapTableSize]int32
}

func (c *vsnapCompressor) compress(raw []byte) ([]byte, byte, error) {
	c.dst = vsnapAppend(c.dst[:0], raw, c.table[:])
	if len(c.dst) >= len(raw) {
		return raw, codecRaw, nil
	}
	return c.dst, codecVSnap, nil
}

// decompressInto reverses a blockCompressor, dispatching on the per-block
// codec byte and validating the declared raw size. Raw blocks come back as
// the stored slice itself (zero-copy — on an mmap-backed reader that is a
// window straight into the page cache); vsnap blocks decode into the
// scratch's reused output buffer with no allocations; flate blocks inflate
// through the scratch's pooled decompressor (stdlib flate still allocates
// its Huffman state per stream). The result is only valid until the
// scratch's next use.
func decompressInto(stored []byte, codec byte, rawLen int, sc *decodeScratch) ([]byte, error) {
	switch codec {
	case codecRaw:
		if len(stored) != rawLen {
			return nil, fmt.Errorf("colstore: raw block is %d bytes, header says %d", len(stored), rawLen)
		}
		return stored, nil
	case codecVSnap:
		sc.raw = growBytes(sc.raw, rawLen)
		if err := vsnapDecode(sc.raw, stored); err != nil {
			return nil, fmt.Errorf("colstore: %w", err)
		}
		return sc.raw, nil
	case codecFlate:
		if err := sc.flateReset(stored); err != nil {
			return nil, fmt.Errorf("colstore: inflate block: %w", err)
		}
		sc.raw = growBytes(sc.raw, rawLen)
		if _, err := io.ReadFull(sc.fr, sc.raw); err != nil {
			return nil, fmt.Errorf("colstore: inflate block: %w", err)
		}
		// The stream must end exactly at rawLen.
		var one [1]byte
		if _, err := io.ReadFull(sc.fr, one[:]); err != io.EOF {
			return nil, fmt.Errorf("colstore: inflated block exceeds declared %d bytes", rawLen)
		}
		return sc.raw, nil
	default:
		return nil, fmt.Errorf("colstore: unknown block codec %d", codec)
	}
}

// cursor consumes an encoded block payload with a sticky error.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("colstore: "+format, args...)
	}
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail("truncated uvarint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail("truncated varint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.fail("truncated payload: need %d bytes at offset %d of %d", n, c.off, len(c.b))
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

// count reads the row count for a column group and bounds it by the payload
// size so corrupt input cannot drive huge allocations.
func (c *cursor) count() int {
	v := c.uvarint()
	if c.err == nil && v > uint64(len(c.b)) {
		c.fail("row count %d exceeds payload size %d", v, len(c.b))
	}
	return int(v)
}

// intColumnInto decodes n delta-of-delta varints, appending to out (callers
// pass a reused slice truncated to zero) and returning it.
func (c *cursor) intColumnInto(n int, out []int64) []int64 {
	var prev, prevDelta int64
	for i := 0; i < n; i++ {
		z := c.varint()
		switch i {
		case 0:
			prev = z
		case 1:
			prevDelta = z
			prev += z
		default:
			prevDelta += z
			prev += prevDelta
		}
		out = append(out, prev)
	}
	return out
}

// floatColumnInto decodes one float column, appending to out and returning
// it. The scaled mode borrows the scratch's int64 intermediate.
func (c *cursor) floatColumnInto(n int, out []float64, sc *decodeScratch) []float64 {
	mode := c.bytes(1)
	if c.err != nil {
		return out
	}
	switch mode[0] {
	case floatScaled:
		expB := c.bytes(1)
		if c.err != nil {
			return out
		}
		if expB[0] > maxScaleExp {
			c.fail("bad float scale exponent %d", expB[0])
			return out
		}
		scale := pow10[expB[0]]
		sc.i64 = c.intColumnInto(n, sc.i64[:0])
		for _, i := range sc.i64 {
			out = append(out, float64(i)/scale)
		}
	case floatRaw:
		raw := c.bytes(8 * n)
		if c.err != nil {
			return out
		}
		var prev uint64
		for i := 0; i < n; i++ {
			prev ^= binary.LittleEndian.Uint64(raw[8*i:])
			out = append(out, math.Float64frombits(prev))
		}
	default:
		c.fail("unknown float column mode %d", mode[0])
	}
	return out
}

// dictColumnInto decodes one dictionary column, appending to out and
// returning it. Dictionary entries go through the scratch's interning table,
// so a steady-state scan allocates a string only for names it has never seen.
func (c *cursor) dictColumnInto(n int, out []string, sc *decodeScratch) []string {
	dictLen := c.count()
	sc.dict = sc.dict[:0]
	for i := 0; i < dictLen; i++ {
		l := c.count()
		b := c.bytes(l)
		if c.err != nil {
			return out
		}
		sc.dict = append(sc.dict, sc.intern(b))
	}
	for i := 0; i < n; i++ {
		idx := c.uvarint()
		if c.err != nil {
			return out
		}
		if idx >= uint64(len(sc.dict)) {
			c.fail("dictionary index %d out of range (%d entries)", idx, len(sc.dict))
			return out
		}
		out = append(out, sc.dict[idx])
	}
	return out
}

// bitsetInto decodes n bits, appending to out and returning it.
func (c *cursor) bitsetInto(n int, out []bool) []bool {
	raw := c.bytes((n + 7) / 8)
	if c.err != nil {
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, raw[i/8]&(1<<uint(i%8)) != 0)
	}
	return out
}
