package colstore

import (
	"bytes"
	"testing"

	"vita/internal/trajectory"
)

// FuzzVSnapDecode hammers the vsnap decoder with arbitrary byte streams and
// declared output sizes. The decoder's contract under corruption is strict:
// it must either fill dst exactly or return an error — never panic, never
// read past src, never write outside dst. A second property checks the
// encoder side: whatever bytes the fuzzer invents must round-trip through
// encode → decode unchanged.
func FuzzVSnapDecode(f *testing.F) {
	var table [vsnapTableSize]int32
	f.Add([]byte{}, 0)
	f.Add([]byte{2 << 1, 'a', 'b'}, 2)
	f.Add([]byte{2 << 1, 'a', 'b', (8-vsnapMinMatch)<<1 | 1, 2}, 10)
	f.Add(vsnapAppend(nil, bytes.Repeat([]byte("vita"), 100), table[:]), 400)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}, 64)
	f.Fuzz(func(t *testing.T, data []byte, rawLen int) {
		// Decode property: arbitrary stream, bounded declared size.
		if rawLen >= 0 && rawLen <= 4*len(data)+1024 {
			dst := make([]byte, rawLen)
			if err := vsnapDecode(dst, data); err == nil {
				// A successful decode must be reproducible from a fresh
				// buffer (the decoder may not depend on dst's contents).
				again := make([]byte, rawLen)
				if err := vsnapDecode(again, data); err != nil || !bytes.Equal(dst, again) {
					t.Fatalf("decode not deterministic: err=%v", err)
				}
			}
		}
		// Round-trip property: data as the raw input.
		var tbl [vsnapTableSize]int32
		enc := vsnapAppend(nil, data, tbl[:])
		dec := make([]byte, len(data))
		if err := vsnapDecode(dec, enc); err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip mismatch on %d-byte input", len(data))
		}
	})
}

// FuzzDecodeBlock opens arbitrary bytes as a VTB trajectory file and scans
// it. Corrupt headers, footers, zone maps, block frames, codec bytes, and
// compressed payloads must all surface as errors — never a panic, index
// out of range, or unbounded allocation. Seeds are valid files under every
// codec so the fuzzer starts from structure-preserving mutations (flipping
// codec bytes, truncating payloads, corrupting LZ streams) rather than
// noise that dies at the magic check.
func FuzzDecodeBlock(f *testing.F) {
	samples := awkwardSamples()[:200]
	for _, codec := range []Codec{CodecRaw, CodecVSnap, CodecFlate} {
		var buf bytes.Buffer
		w := NewTrajectoryWriterOptions(&buf, Options{BlockSize: 64, Codec: codec})
		for _, s := range samples {
			if err := w.Write(s); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("VTB1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewTrajectoryReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// Full scan: decodes every block through decompressInto.
		_, _ = r.Scan(Predicate{}, func(s trajectory.Sample) {})
		// Cursor path too — it shares blockBytes but batches differently.
		cur := r.Cursor(Predicate{})
		for cur.Next() {
		}
		_ = cur.Close()
	})
}
