package colstore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// Block-parallel decode. Blocks are independent units — each carries its own
// column encodings and compression frame — so after zone-map pruning the
// surviving blocks can be fetched and decoded by a worker pool (mirroring the
// per-object generation pool of internal/trajectory) while the caller still
// receives rows in file order: workers publish per-block results and a merge
// loop emits them in sequence. A semaphore bounds the number of
// decoded-but-not-yet-merged blocks so a fast worker cannot materialize the
// whole file ahead of a slow consumer. Each worker owns one pooled decode
// scratch, and only rows that pass the predicate are materialized for the
// merge — filtered-out rows never leave the worker's reused batch.

// ScanParallel is Scan with block decode spread over a worker pool.
// parallelism 0 means runtime.GOMAXPROCS(0); 1 decodes inline exactly like
// Scan. Output order, emitted rows, and stats are identical to Scan at every
// parallelism level; only wall-clock differs. emit is never invoked
// concurrently, but with parallelism > 1 it runs on the calling goroutine
// while workers decode ahead.
func (tr *TrajectoryReader) ScanParallel(pred Predicate, parallelism int, emit func(trajectory.Sample)) (ScanStats, error) {
	return scanParallel(tr.rd, pred, parallelism, decodeTrajectoryKept, emit)
}

// ScanParallel is Scan with block decode spread over a worker pool; see
// TrajectoryReader.ScanParallel for the contract.
func (rr *RSSIReader) ScanParallel(pred Predicate, parallelism int, emit func(rssi.Measurement)) (ScanStats, error) {
	// As in the sequential Scan, floor/box constraints are meaningless for
	// RSSI rows; drop them so they neither prune blocks nor filter rows.
	pred.HasFloor, pred.HasBox = false, false
	return scanParallel(rr.rd, pred, parallelism, decodeRSSIKept, emit)
}

// decodeTrajectoryKept decodes block i through sc and returns the rows that
// pass pred (freshly allocated — they outlive the scratch) plus the count of
// rows decoded before filtering.
func decodeTrajectoryKept(rd *reader, i int, pred Predicate, sc *decodeScratch) ([]trajectory.Sample, int, error) {
	raw, err := rd.blockBytes(i, sc)
	if err != nil {
		return nil, 0, err
	}
	if err := decodeTrajectoryBatchInto(raw, &sc.batch, sc); err != nil {
		return nil, 0, fmt.Errorf("block %d: %w", i, err)
	}
	scanned := sc.batch.Len()
	var kept []trajectory.Sample
	for j := 0; j < scanned; j++ {
		if s := sc.batch.Row(j); pred.MatchTrajectory(s) {
			kept = append(kept, s)
		}
	}
	return kept, scanned, nil
}

// decodeRSSIKept is decodeTrajectoryKept for RSSI blocks.
func decodeRSSIKept(rd *reader, i int, pred Predicate, sc *decodeScratch) ([]rssi.Measurement, int, error) {
	raw, err := rd.blockBytes(i, sc)
	if err != nil {
		return nil, 0, err
	}
	if err := decodeRSSIBatchInto(raw, &sc.rbatch, sc); err != nil {
		return nil, 0, fmt.Errorf("block %d: %w", i, err)
	}
	scanned := sc.rbatch.Len()
	var kept []rssi.Measurement
	for j := 0; j < scanned; j++ {
		if m := sc.rbatch.Row(j); pred.MatchRSSI(m) {
			kept = append(kept, m)
		}
	}
	return kept, scanned, nil
}

// blockResult carries one decoded block from a worker to the merge loop.
type blockResult[T any] struct {
	rows    []T // rows that passed the predicate, in block order
	scanned int // rows decoded (before filtering)
	err     error
}

func scanParallel[T any](rd *reader, pred Predicate, parallelism int,
	decode func(*reader, int, Predicate, *decodeScratch) ([]T, int, error),
	emit func(T)) (ScanStats, error) {

	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	stats := ScanStats{BlocksTotal: len(rd.zones)}
	surviving := make([]int, 0, len(rd.zones))
	for i, zm := range rd.zones {
		if pred.skipBlock(zm) {
			stats.BlocksPruned++
		} else {
			surviving = append(surviving, i)
		}
	}

	if parallelism == 1 || len(surviving) <= 1 {
		sc := getScratch()
		defer putScratch(sc)
		for _, i := range surviving {
			stats.BlocksScanned++
			rows, scanned, err := decode(rd, i, pred, sc)
			if err != nil {
				return stats, err
			}
			stats.RowsScanned += scanned
			for _, r := range rows {
				stats.RowsMatched++
				emit(r)
			}
		}
		return stats, nil
	}

	results := make([]blockResult[T], len(surviving))
	done := make([]chan struct{}, len(surviving))
	for j := range done {
		done[j] = make(chan struct{})
	}
	// Each in-flight block holds one semaphore token, acquired *before* the
	// block index is claimed so claims stay within a bounded window of the
	// merge frontier; the merge loop releases the token after consuming the
	// block. Capacity 2×workers keeps every worker busy while the merger
	// catches up without unbounded buffering.
	workers := parallelism
	if workers > len(surviving) {
		workers = len(surviving)
	}
	sem := make(chan struct{}, 2*workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getScratch()
			defer putScratch(sc)
			for {
				sem <- struct{}{}
				j := int(next.Add(1) - 1)
				if j >= len(surviving) {
					<-sem
					return
				}
				res := &results[j]
				res.rows, res.scanned, res.err = decode(rd, surviving[j], pred, sc)
				close(done[j])
			}
		}()
	}

	// Merge in file order. On a block error the remaining blocks are still
	// drained (workers finish their wasted decodes — corrupt files are the
	// rare case) but nothing after the failed block is emitted or counted,
	// matching the sequential Scan's stop-at-error stats.
	var firstErr error
	for j := range surviving {
		<-done[j]
		res := &results[j]
		if firstErr == nil {
			stats.BlocksScanned++
			if res.err != nil {
				firstErr = res.err
			} else {
				stats.RowsScanned += res.scanned
				for _, r := range res.rows {
					stats.RowsMatched++
					emit(r)
				}
			}
		}
		results[j] = blockResult[T]{}
		<-sem
	}
	wg.Wait()
	return stats, firstErr
}
