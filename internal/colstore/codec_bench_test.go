package colstore

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/trajectory"
)

// walkSamples emits time-ordered samples from per-object random walks:
// full-precision drifting coordinates (raw-float XOR columns, like engine
// output), grid timestamps (scaled columns), a small string vocabulary
// (dictionary columns). This is the realistic shape the codec gates must be
// judged on — awkwardSamples stresses encoder correctness, not ratio.
func walkSamples(objects, seconds int) []trajectory.Sample {
	rng := rand.New(rand.NewSource(99))
	type walker struct{ x, y float64 }
	ws := make([]walker, objects)
	for i := range ws {
		ws[i] = walker{rng.Float64() * 50, rng.Float64() * 30}
	}
	parts := []string{"lobby", "corridor", "office-a", "office-b", "atrium"}
	var out []trajectory.Sample
	for t := 0; t < seconds; t++ {
		for o := range ws {
			ws[o].x += rng.NormFloat64() * 1.2
			ws[o].y += rng.NormFloat64() * 1.2
			out = append(out, trajectory.Sample{
				ObjID: o,
				Loc: model.At("hq", o%3, parts[(o+t/60)%len(parts)],
					geom.Pt(ws[o].x, ws[o].y)),
				T: float64(t),
			})
		}
	}
	return out
}

// blockFrame is one compressed block lifted out of a VTB image.
type blockFrame struct {
	stored []byte
	codec  byte
	rawLen int
}

// vtbFrames parses the block frames out of an in-memory VTB file image.
func vtbFrames(tb testing.TB, image []byte) []blockFrame {
	tb.Helper()
	footerOff := int64(binary.LittleEndian.Uint64(image[len(image)-tailSize:]))
	var frames []blockFrame
	for off := int64(headerSize); off < footerOff; {
		storedLen := int(binary.LittleEndian.Uint32(image[off:]))
		codec := image[off+4]
		rawLen := int(binary.LittleEndian.Uint32(image[off+5:]))
		payload := image[off+9 : off+9+int64(storedLen)]
		frames = append(frames, blockFrame{stored: payload, codec: codec, rawLen: rawLen})
		off += 9 + int64(storedLen)
	}
	return frames
}

func encodeWalk(tb testing.TB, samples []trajectory.Sample, codec Codec) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewTrajectoryWriterOptions(&buf, Options{BlockSize: 1024, Codec: codec})
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkVSNAPVsFlate is the acceptance gate for adopting vsnap as the
// default block codec, enforcing both sides of the trade on realistic
// columnar payloads (random-walk trajectories, the shape production writes):
//
//   - decode throughput: decompressing every vsnap block of the file must
//     run at least 2x faster than decompressing the flate encoding of the
//     same blocks — measured as min-of-runs over the whole-file block set,
//     so scheduler noise cannot fail the gate spuriously;
//   - size: the vsnap file must stay within +15% of the flate file. vsnap
//     drops flate's Huffman entropy stage, and the gate bounds what that
//     may cost on payloads whose redundancy is mostly LZ-shaped.
//
// The timed section is exactly the codec stage a scan pays per block
// (decompressInto through the pooled scratch); column decoding, shared by
// every codec, is deliberately excluded so the comparison cannot be diluted.
func BenchmarkVSNAPVsFlate(b *testing.B) {
	samples := walkSamples(40, 300)
	vsnapImage := encodeWalk(b, samples, CodecVSnap)
	flateImage := encodeWalk(b, samples, CodecFlate)

	sizeRatio := float64(len(vsnapImage)) / float64(len(flateImage))

	decodeAll := func(frames []blockFrame, sc *decodeScratch) int {
		total := 0
		for _, f := range frames {
			raw, err := decompressInto(f.stored, f.codec, f.rawLen, sc)
			if err != nil {
				b.Fatal(err)
			}
			total += len(raw)
		}
		return total
	}
	timeCodec := func(image []byte) (time.Duration, int) {
		frames := vtbFrames(b, image)
		sc := getScratch()
		bytesOut := decodeAll(frames, sc) // warm the scratch buffers
		best := time.Duration(1<<63 - 1)
		for run := 0; run < 9; run++ {
			start := time.Now()
			decodeAll(frames, sc)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best, bytesOut
	}
	vsnapTime, vsnapBytes := timeCodec(vsnapImage)
	flateTime, flateBytes := timeCodec(flateImage)
	if vsnapBytes != flateBytes {
		b.Fatalf("decoded byte counts differ: vsnap %d, flate %d", vsnapBytes, flateBytes)
	}

	speedup := float64(flateTime) / float64(vsnapTime)
	if speedup < 2 {
		b.Fatalf("vsnap decode %v vs flate %v over %d payload bytes: %.2fx speedup, gate requires >= 2x",
			vsnapTime, flateTime, vsnapBytes, speedup)
	}
	if sizeRatio > 1.15 {
		b.Fatalf("vsnap file %d bytes vs flate %d: ratio %.3f, gate requires <= 1.15",
			len(vsnapImage), len(flateImage), sizeRatio)
	}

	b.SetBytes(int64(vsnapBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frames := vtbFrames(b, vsnapImage)
		sc := getScratch()
		decodeAll(frames, sc)
	}
	// After the loop: ResetTimer would have discarded metrics reported
	// earlier.
	b.ReportMetric(sizeRatio, "size-ratio")
	b.ReportMetric(speedup, "decode-speedup")
	b.ReportMetric(float64(vsnapBytes)/vsnapTime.Seconds()/(1<<20), "vsnap-MB/s")
	b.ReportMetric(float64(flateBytes)/flateTime.Seconds()/(1<<20), "flate-MB/s")
}
