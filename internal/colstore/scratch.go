package colstore

import (
	"bytes"
	"compress/flate"
	"io"
	"sync"
)

// decodeScratch bundles every buffer a block decode needs — the pread target,
// the flate decompressor and its output buffer, column intermediates, the
// per-block dictionary, a string-interning table, and the decode-target
// batches — so the steady-state scan path allocates nothing per block. One
// scratch serves one goroutine at a time; Scan checks one out per call,
// ScanParallel one per worker, and a cursor holds one for its lifetime.
type decodeScratch struct {
	stored []byte        // ReaderAt block read target (unused on the mmap path)
	raw    []byte        // flate output buffer
	br     bytes.Reader  // resettable source feeding the flate reader
	fr     io.ReadCloser // pooled flate reader; implements flate.Resetter

	i64  []int64  // scaled-float intermediate column
	dict []string // per-block string dictionary

	// interned maps previously seen column strings to one shared copy, so a
	// steady-state scan allocates a string only the first time a distinct
	// building/partition/device name appears. Lookups with a []byte key
	// compile to non-allocating map access.
	interned map[string]string

	batch  TrajectoryBatch
	rbatch RSSIBatch
}

// maxInterned bounds the interning table so adversarial inputs with
// unbounded distinct strings cannot pin memory; past the cap, new strings
// are allocated per block like before.
const maxInterned = 1 << 14

var scratchPool = sync.Pool{New: func() any {
	return &decodeScratch{interned: make(map[string]string)}
}}

func getScratch() *decodeScratch   { return scratchPool.Get().(*decodeScratch) }
func putScratch(sc *decodeScratch) { scratchPool.Put(sc) }

// intern returns b as a string, reusing the shared copy when the scratch has
// seen it before.
func (sc *decodeScratch) intern(b []byte) string {
	if s, ok := sc.interned[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(sc.interned) < maxInterned {
		sc.interned[s] = s
	}
	return s
}

// flateReset points the pooled flate reader at stored, creating it on first
// use.
func (sc *decodeScratch) flateReset(stored []byte) error {
	sc.br.Reset(stored)
	if sc.fr == nil {
		sc.fr = flate.NewReader(&sc.br)
		return nil
	}
	return sc.fr.(flate.Resetter).Reset(&sc.br, nil)
}

// growBytes returns b resized to n, reallocating only when capacity is
// short.
func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
