package colstore

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// vsnapRoundTrip encodes src, decodes it back, and fails on any mismatch.
func vsnapRoundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	var table [vsnapTableSize]int32
	enc := vsnapAppend(nil, src, table[:])
	dst := make([]byte, len(src))
	if err := vsnapDecode(dst, enc); err != nil {
		t.Fatalf("decode %d-byte input: %v", len(src), err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("round trip mismatch on %d-byte input", len(src))
	}
	return enc
}

func TestVSnapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 64<<10)
	rng.Read(random)
	lowEntropy := make([]byte, 64<<10)
	for i := range lowEntropy {
		lowEntropy[i] = byte(rng.Intn(4))
	}
	cases := map[string][]byte{
		"empty":        {},
		"one-byte":     {42},
		"three-bytes":  {1, 2, 3},
		"min-match":    {9, 9, 9, 9},
		"run":          bytes.Repeat([]byte{7}, 10_000),
		"cycle-2":      bytes.Repeat([]byte{1, 2}, 5_000),
		"cycle-7":      bytes.Repeat([]byte("abcdefg"), 1_000),
		"text":         []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500)),
		"random":       random,
		"low-entropy":  lowEntropy,
		"tail-literal": append(bytes.Repeat([]byte("abcd"), 100), 'x', 'y', 'z'),
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			enc := vsnapRoundTrip(t, src)
			t.Logf("%d -> %d bytes (%.1f%%)", len(src), len(enc),
				100*float64(len(enc))/float64(max(len(src), 1)))
		})
	}
}

func TestVSnapCompressesRepetition(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefghijklmnop"), 4096)
	enc := vsnapRoundTrip(t, src)
	if len(enc) > len(src)/16 {
		t.Fatalf("highly repetitive input compressed to only %d/%d bytes", len(enc), len(src))
	}
}

// TestVSnapDecodeRejectsHostileInput feeds the decoder streams that are
// individually well-formed varints but violate the format's bounds; each
// must error — never panic, over-read, or write outside dst.
func TestVSnapDecodeRejectsHostileInput(t *testing.T) {
	cases := map[string]struct {
		src    []byte
		rawLen int
	}{
		"truncated-tag":           {[]byte{0x80}, 4},          // unterminated uvarint
		"literal-overruns-input":  {[]byte{10 << 1, 'a'}, 16}, // claims 10 bytes, has 1
		"literal-overruns-output": {[]byte{8 << 1, 1, 2, 3, 4, 5, 6, 7, 8}, 4},
		"zero-length-literal":     {[]byte{0}, 0},
		"copy-before-start":       {[]byte{2<<1 | 1, 5}, 8}, // dist 5 with 0 decoded bytes
		"copy-zero-dist":          {[]byte{1 << 1, 'a', 2<<1 | 1, 0}, 8},
		"copy-overruns-output":    {[]byte{1 << 1, 'a', (40-4)<<1 | 1, 1}, 8},
		"truncated-dist":          {[]byte{1 << 1, 'a', 2<<1 | 1}, 8},
		"short-stream":            {[]byte{1 << 1, 'a'}, 8}, // decodes 1 byte, declares 8
		"huge-copy-tag": {append(append([]byte{1 << 1, 'a'},
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01), 1), 8},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			dst := make([]byte, tc.rawLen)
			if err := vsnapDecode(dst, tc.src); err == nil {
				t.Fatalf("hostile input decoded without error")
			}
		})
	}
}

// TestVSnapOverlappingCopy pins the LZ77 run semantics: a copy whose
// distance is shorter than its length repeats the run.
func TestVSnapOverlappingCopy(t *testing.T) {
	// Literal "ab", then copy length 8 distance 2 => "ab" + "abababab".
	src := []byte{2 << 1, 'a', 'b', (8-vsnapMinMatch)<<1 | 1, 2}
	dst := make([]byte, 10)
	if err := vsnapDecode(dst, src); err != nil {
		t.Fatal(err)
	}
	if got, want := string(dst), "ababababab"; got != want {
		t.Fatalf("overlapping copy decoded to %q, want %q", got, want)
	}
}
