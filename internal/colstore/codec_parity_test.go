package colstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// TestCodecParityTrajectory is the cross-codec equivalence gate: the same
// rows written under every codec must come back byte-identical through every
// read path — full scan, batch cursor, and ScanParallel at P=1 and P=8 —
// regardless of how the blocks were compressed. The raw file's results are
// the reference; vsnap and flate must match them sample-for-sample (bitwise,
// via sampleEqual) with identical scan stats.
func TestCodecParityTrajectory(t *testing.T) {
	samples := append(awkwardSamples(), walkSamples(10, 120)...)
	codecs := []Codec{CodecRaw, CodecVSnap, CodecFlate}
	preds := map[string]Predicate{
		"all":    {},
		"window": TimeWindow(40, 90),
		"object": {HasObj: true, Obj: 3},
	}

	type result struct {
		rows  []trajectory.Sample
		stats ScanStats
	}
	collect := func(t *testing.T, r *TrajectoryReader, pred Predicate, how string, p int) result {
		t.Helper()
		var res result
		var err error
		switch how {
		case "scan":
			res.stats, err = r.Scan(pred, func(s trajectory.Sample) { res.rows = append(res.rows, s) })
		case "parallel":
			res.stats, err = r.ScanParallel(pred, p, func(s trajectory.Sample) { res.rows = append(res.rows, s) })
		case "cursor":
			cur := r.Cursor(pred)
			for cur.Next() {
				b := cur.Batch()
				for i := 0; i < b.Len(); i++ {
					res.rows = append(res.rows, b.Row(i))
				}
			}
			err = cur.Close()
		}
		if err != nil {
			t.Fatalf("%s: %v", how, err)
		}
		return res
	}

	readers := make(map[Codec]*TrajectoryReader, len(codecs))
	for _, c := range codecs {
		readers[c] = readTrajectory(t, writeTrajectory(t, samples, Options{BlockSize: 128, Codec: c}))
	}
	paths := []struct {
		how string
		p   int
	}{{"scan", 0}, {"cursor", 0}, {"parallel", 1}, {"parallel", 8}}

	for predName, pred := range preds {
		for _, path := range paths {
			name := fmt.Sprintf("%s/%s", predName, path.how)
			if path.how == "parallel" {
				name = fmt.Sprintf("%s/p=%d", name, path.p)
			}
			t.Run(name, func(t *testing.T) {
				want := collect(t, readers[CodecRaw], pred, path.how, path.p)
				for _, c := range codecs[1:] {
					got := collect(t, readers[c], pred, path.how, path.p)
					if got.stats != want.stats {
						t.Errorf("%v: stats differ: got %+v, want %+v", c, got.stats, want.stats)
					}
					if len(got.rows) != len(want.rows) {
						t.Fatalf("%v: %d rows, want %d", c, len(got.rows), len(want.rows))
					}
					for i := range got.rows {
						if !sampleEqual(got.rows[i], want.rows[i]) {
							t.Fatalf("%v: row %d differs: got %+v, want %+v",
								c, i, got.rows[i], want.rows[i])
						}
					}
				}
			})
		}
	}
}

// TestCodecParityRSSI repeats the cross-codec gate for the RSSI schema.
func TestCodecParityRSSI(t *testing.T) {
	var ms []rssi.Measurement
	for i := 0; i < 3000; i++ {
		ms = append(ms, rssi.Measurement{
			ObjID:    i % 25,
			DeviceID: []string{"wifi-1", "wifi-2", "bt-7", "uwb-3"}[i%4],
			RSSI:     -40 - float64(i%37)*1.7,
			T:        float64(i) * 0.5,
		})
	}
	write := func(c Codec) *RSSIReader {
		var buf bytes.Buffer
		w := NewRSSIWriterOptions(&buf, Options{BlockSize: 256, Codec: c})
		for _, m := range ms {
			if err := w.Write(m); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewRSSIReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	want, err := write(CodecRaw).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Codec{CodecVSnap, CodecFlate} {
		got, err := write(c).ReadAll()
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d rows, want %d", c, len(got), len(want))
		}
		for i := range got {
			if !measurementEqual(got[i], want[i]) {
				t.Fatalf("%v: row %d differs: got %+v, want %+v", c, i, got[i], want[i])
			}
		}
	}
}

// TestMixedCodecFile pins the per-block codec dispatch inside one file: a
// compressing writer stores any block raw when compression would not shrink
// it, so a single VTB image can carry raw and vsnap blocks side by side and
// the reader must dispatch on each block's own codec byte. (Mixed codecs
// across segments of one log — different writer eras — are covered by the
// seglog serve parity test.)
func TestMixedCodecFile(t *testing.T) {
	// Alternate block-aligned stretches of constant rows (collapse to a few
	// bytes under vsnap) and fully random rows (every column random, so the
	// encoded block does not shrink and the writer's fallback stores it
	// raw). One file, both codec bytes.
	rng := rand.New(rand.NewSource(3))
	randString := func() string {
		b := make([]byte, 8)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return string(b)
	}
	const blockSize = 64
	var samples []trajectory.Sample
	for stretch := 0; stretch < 6; stretch++ {
		for i := 0; i < blockSize; i++ {
			s := trajectory.Sample{
				ObjID: stretch,
				Loc:   model.At("hq", 1, "lobby", geom.Pt(1, 2)),
				T:     float64(stretch),
			}
			if stretch%2 == 1 {
				s = trajectory.Sample{
					ObjID: rng.Int(),
					Loc: model.At(randString(), rng.Int(), randString(),
						geom.Pt(rng.NormFloat64()*1e17, rng.NormFloat64()*1e17)),
					T: rng.NormFloat64() * 1e17,
				}
			}
			samples = append(samples, s)
		}
	}
	data := writeTrajectory(t, samples, Options{BlockSize: blockSize, Codec: CodecVSnap})
	frames := vtbFrames(t, data)
	seen := map[byte]int{}
	for _, f := range frames {
		seen[f.codec]++
	}
	if seen[codecVSnap] == 0 || seen[codecRaw] == 0 {
		t.Fatalf("want both vsnap and raw blocks in one file, got codec mix %v", seen)
	}
	r := readTrajectory(t, data)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(samples))
	}
	for i := range got {
		if !sampleEqual(got[i], samples[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
	t.Logf("codec mix across %d blocks: %v", len(frames), seen)
}
