package colstore

import (
	"bytes"
	"math"
	"os"
	"testing"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rssi"
	"vita/internal/trajectory"
)

// sampleEqual compares samples bit-for-bit (so -0.0 vs 0.0 and other
// float-identity hazards are caught, unlike ==).
func sampleEqual(a, b trajectory.Sample) bool {
	return a.ObjID == b.ObjID &&
		a.Loc.Building == b.Loc.Building &&
		a.Loc.Floor == b.Loc.Floor &&
		a.Loc.Partition == b.Loc.Partition &&
		math.Float64bits(a.Loc.Point.X) == math.Float64bits(b.Loc.Point.X) &&
		math.Float64bits(a.Loc.Point.Y) == math.Float64bits(b.Loc.Point.Y) &&
		a.Loc.HasPoint == b.Loc.HasPoint &&
		math.Float64bits(a.T) == math.Float64bits(b.T)
}

func measurementEqual(a, b rssi.Measurement) bool {
	return a.ObjID == b.ObjID && a.DeviceID == b.DeviceID &&
		math.Float64bits(a.RSSI) == math.Float64bits(b.RSSI) &&
		math.Float64bits(a.T) == math.Float64bits(b.T)
}

// awkwardSamples exercises every encoder path: irrational coordinates (raw
// float mode), grid timestamps (scaled mode), negative zero, negative
// coordinates and floors, symbolic (point-less) rows, huge IDs, repeated and
// empty strings.
func awkwardSamples() []trajectory.Sample {
	var out []trajectory.Sample
	parts := []string{"lobby", "room-1.2", "", "lobby", "corridor/θ"}
	for i := 0; i < 1000; i++ {
		s := trajectory.Sample{
			ObjID: i * 37,
			Loc: model.At("hq", i%5-2, parts[i%len(parts)],
				geom.Pt(math.Pi*float64(i)-500, math.Sqrt(float64(i)))),
			T: float64(i) * 0.25,
		}
		switch i % 97 {
		case 13:
			s.Loc.HasPoint = false
		case 29:
			s.Loc.Point = geom.Pt(math.Copysign(0, -1), 1e-300)
		case 31:
			s.T = float64(i) + 1e-9 // off-grid timestamp
		}
		out = append(out, s)
	}
	return out
}

func writeTrajectory(t *testing.T, samples []trajectory.Sample, opts Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewTrajectoryWriterOptions(&buf, opts)
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

func readTrajectory(t *testing.T, data []byte) *TrajectoryReader {
	t.Helper()
	r, err := NewTrajectoryReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return r
}

func TestTrajectoryRoundTripLossless(t *testing.T) {
	for _, opts := range []Options{{}, {BlockSize: 64}, {BlockSize: 7, NoCompress: true}} {
		samples := awkwardSamples()
		data := writeTrajectory(t, samples, opts)
		r := readTrajectory(t, data)
		if r.Len() != len(samples) {
			t.Fatalf("opts %+v: Len = %d, want %d", opts, r.Len(), len(samples))
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("opts %+v: read all: %v", opts, err)
		}
		if len(got) != len(samples) {
			t.Fatalf("opts %+v: decoded %d samples, want %d", opts, len(got), len(samples))
		}
		for i := range got {
			if !sampleEqual(got[i], samples[i]) {
				t.Fatalf("opts %+v: sample %d differs: got %+v, want %+v", opts, i, got[i], samples[i])
			}
		}
	}
}

func TestRSSIRoundTripLossless(t *testing.T) {
	var ms []rssi.Measurement
	for i := 0; i < 500; i++ {
		ms = append(ms, rssi.Measurement{
			ObjID:    i % 40,
			DeviceID: []string{"wifi-1", "wifi-2", "bt-7"}[i%3],
			RSSI:     -40 - 30*math.Sin(float64(i)),
			T:        float64(i) * 0.5,
		})
	}
	var buf bytes.Buffer
	w := NewRSSIWriterOptions(&buf, Options{BlockSize: 128})
	for _, m := range ms {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewRSSIReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ms) {
		t.Fatalf("decoded %d measurements, want %d", len(got), len(ms))
	}
	for i := range got {
		if !measurementEqual(got[i], ms[i]) {
			t.Fatalf("measurement %d differs: got %+v, want %+v", i, got[i], ms[i])
		}
	}
}

// gridSamples emits one sample per second per object, time-ordered like the
// generation pipeline: objects interleaved within each second.
func gridSamples(objects, seconds int) []trajectory.Sample {
	var out []trajectory.Sample
	for t := 0; t < seconds; t++ {
		for o := 0; o < objects; o++ {
			out = append(out, trajectory.Sample{
				ObjID: o,
				Loc:   model.At("b", o%2, "p", geom.Pt(float64(t%50), float64(o))),
				T:     float64(t),
			})
		}
	}
	return out
}

func TestScanTimeWindowPruning(t *testing.T) {
	samples := gridSamples(10, 600) // 6000 rows
	data := writeTrajectory(t, samples, Options{BlockSize: 256})
	r := readTrajectory(t, data)

	pred := TimeWindow(100, 130)
	var got []trajectory.Sample
	stats, err := r.Scan(pred, func(s trajectory.Sample) { got = append(got, s) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksPruned == 0 {
		t.Errorf("time-window scan pruned no blocks: %+v", stats)
	}
	if stats.BlocksScanned+stats.BlocksPruned != stats.BlocksTotal {
		t.Errorf("inconsistent stats: %+v", stats)
	}
	var want []trajectory.Sample
	for _, s := range samples {
		if s.T >= 100 && s.T <= 130 {
			want = append(want, s)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if !sampleEqual(got[i], want[i]) {
			t.Fatalf("row %d differs: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestScanPredicates(t *testing.T) {
	samples := gridSamples(8, 400)
	data := writeTrajectory(t, samples, Options{BlockSize: 200})
	r := readTrajectory(t, data)

	match := func(pred Predicate) (int, ScanStats) {
		n := 0
		stats, err := r.Scan(pred, func(trajectory.Sample) { n++ })
		if err != nil {
			t.Fatal(err)
		}
		return n, stats
	}
	brute := func(keep func(trajectory.Sample) bool) int {
		n := 0
		for _, s := range samples {
			if keep(s) {
				n++
			}
		}
		return n
	}

	if n, _ := match(Predicate{HasObj: true, Obj: 3}); n != brute(func(s trajectory.Sample) bool { return s.ObjID == 3 }) {
		t.Errorf("object predicate returned %d rows", n)
	}
	if n, _ := match(Predicate{HasFloor: true, Floor: 1}); n != brute(func(s trajectory.Sample) bool { return s.Loc.Floor == 1 }) {
		t.Errorf("floor predicate returned %d rows", n)
	}
	box := geom.BBox{Min: geom.Pt(10, 0), Max: geom.Pt(20, 3)}
	if n, _ := match(Predicate{HasBox: true, Box: box}); n != brute(func(s trajectory.Sample) bool { return s.Loc.HasPoint && box.Contains(s.Loc.Point) }) {
		t.Errorf("box predicate returned %d rows", n)
	}
	// An unknown floor must prune every block without reading any.
	if n, stats := match(Predicate{HasFloor: true, Floor: 99}); n != 0 || stats.BlocksScanned != 0 {
		t.Errorf("unknown floor scanned %d blocks, matched %d rows", stats.BlocksScanned, n)
	}
	// A window past the data must prune everything too.
	if n, stats := match(TimeWindow(1e6, 2e6)); n != 0 || stats.BlocksScanned != 0 {
		t.Errorf("out-of-span window scanned %d blocks, matched %d rows", stats.BlocksScanned, n)
	}
}

func TestEmptyFile(t *testing.T) {
	data := writeTrajectory(t, nil, Options{})
	r := readTrajectory(t, data)
	if r.Len() != 0 {
		t.Fatalf("empty file Len = %d", r.Len())
	}
	got, err := r.ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty file ReadAll = %d rows, err %v", len(got), err)
	}
}

func TestKindMismatch(t *testing.T) {
	data := writeTrajectory(t, gridSamples(2, 10), Options{})
	if _, err := NewRSSIReader(bytes.NewReader(data), int64(len(data))); err == nil {
		t.Fatal("opening a trajectory file as RSSI succeeded")
	}
}

func TestCorruptInputs(t *testing.T) {
	data := writeTrajectory(t, gridSamples(4, 100), Options{BlockSize: 64})
	cases := map[string][]byte{
		"not vtb":          []byte("o_id,building,floor\n1,b,0\n"),
		"empty":            {},
		"truncated header": data[:6],
		"truncated footer": data[:len(data)-20],
		"bad tail magic": append(append([]byte{}, data[:len(data)-4]...),
			'n', 'o', 'p', 'e'),
	}
	for name, b := range cases {
		if _, err := NewTrajectoryReader(bytes.NewReader(b), int64(len(b))); err == nil {
			t.Errorf("%s: open succeeded, want error", name)
		}
	}

	// Corrupting block bytes must surface as a decode error, not a panic.
	mangled := append([]byte{}, data...)
	for i := headerSize + 12; i < headerSize+40 && i < len(mangled); i++ {
		mangled[i] ^= 0xff
	}
	r, err := NewTrajectoryReader(bytes.NewReader(mangled), int64(len(mangled)))
	if err != nil {
		return // corruption already caught at open: fine
	}
	if _, err := r.ReadAll(); err == nil {
		t.Error("reading mangled block succeeded, want error")
	}
}

func TestSniff(t *testing.T) {
	dir := t.TempDir()
	vtb := dir + "/a.vtb"
	if err := writeFile(vtb, writeTrajectory(t, gridSamples(2, 5), Options{})); err != nil {
		t.Fatal(err)
	}
	csv := dir + "/a.csv"
	if err := writeFile(csv, []byte("o_id,building,floor,partition,x,y,t\n")); err != nil {
		t.Fatal(err)
	}
	kind, ok, err := Sniff(vtb)
	if err != nil || !ok || kind != KindTrajectory {
		t.Fatalf("Sniff(vtb) = %v, %v, %v", kind, ok, err)
	}
	if _, ok, err := Sniff(csv); err != nil || ok {
		t.Fatalf("Sniff(csv) detected VTB, err %v", err)
	}
	short := dir + "/short"
	if err := writeFile(short, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := Sniff(short); err != nil || ok {
		t.Fatalf("Sniff(short) = %v, err %v", ok, err)
	}
}

// TestFloatColumnModes pins the encoder's mode selection: grid timestamps
// must hit the compact scaled path, irrational values the raw path, and both
// must round-trip bit-for-bit.
func TestFloatColumnModes(t *testing.T) {
	check := func(vals []float64, wantMode byte) {
		t.Helper()
		enc := appendFloatColumn(nil, vals)
		if enc[0] != wantMode {
			t.Fatalf("mode = %d, want %d for %v...", enc[0], wantMode, vals[:min(3, len(vals))])
		}
		c := &cursor{b: enc}
		got := c.floatColumnInto(len(vals), nil, getScratch())
		if c.err != nil {
			t.Fatalf("decode: %v", c.err)
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("value %d: got %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
		}
	}
	check([]float64{0, 0.25, 0.5, 120.75, -3.25}, floatScaled)
	check([]float64{-87.5, -40.1, -33.3333}, floatScaled) // all exact at 1e4
	check([]float64{math.Pi, math.E, math.Sqrt2}, floatRaw)
	check([]float64{math.Copysign(0, -1)}, floatRaw) // -0 must not collapse to +0
	check([]float64{1e300, -1e300, 5e-324}, floatRaw)
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
