// Package geom provides the 2D/3D computational geometry substrate used by
// the Vita toolkit: points, segments, bounding boxes, polygons, line-of-sight
// tests and polygon decomposition helpers.
//
// All coordinates are in meters. The package is deliberately dependency-free
// and allocation-conscious: it is on the hot path of trajectory simulation
// and RSSI generation.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used by approximate comparisons throughout the package.
const Eps = 1e-9

// Point is a location in the 2D plane of a single floor.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q treated as vectors.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q treated as vectors.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates from p to q by fraction t in [0,1].
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Unit returns the unit vector in the direction of p. The zero vector is
// returned unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n < Eps {
		return Point{}
	}
	return Point{p.X / n, p.Y / n}
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) < Eps && math.Abs(p.Y-q.Y) < Eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Point3 is a location in 3D space; Z is the height above the building datum.
// It is used for staircase boundary vertices where floor membership is
// resolved from elevation.
type Point3 struct {
	X, Y, Z float64
}

// Pt3 is shorthand for constructing a Point3.
func Pt3(x, y, z float64) Point3 { return Point3{X: x, Y: y, Z: z} }

// XY projects the point onto the floor plane.
func (p Point3) XY() Point { return Point{p.X, p.Y} }

// Dist returns the Euclidean distance between p and q in 3D.
func (p Point3) Dist(q Point3) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}
