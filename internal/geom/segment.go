package geom

import "math"

// Segment is the closed line segment between A and B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// At returns the point a fraction t of the way from A to B.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// BBox returns the axis-aligned bounding box of the segment.
func (s Segment) BBox() BBox {
	return BBox{
		Min: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Max: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}

// orientation returns >0 if a→b→c turns counter-clockwise, <0 for clockwise,
// 0 for collinear (within Eps scaled by magnitude).
func orientation(a, b, c Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

// onSegment reports whether collinear point p lies on segment s.
func (s Segment) onSegment(p Point) bool {
	return p.X <= math.Max(s.A.X, s.B.X)+Eps && p.X >= math.Min(s.A.X, s.B.X)-Eps &&
		p.Y <= math.Max(s.A.Y, s.B.Y)+Eps && p.Y >= math.Min(s.A.Y, s.B.Y)-Eps
}

// Intersects reports whether segments s and t share at least one point.
func (s Segment) Intersects(t Segment) bool {
	d1 := orientation(s.A, s.B, t.A)
	d2 := orientation(s.A, s.B, t.B)
	d3 := orientation(t.A, t.B, s.A)
	d4 := orientation(t.A, t.B, s.B)

	if ((d1 > Eps && d2 < -Eps) || (d1 < -Eps && d2 > Eps)) &&
		((d3 > Eps && d4 < -Eps) || (d3 < -Eps && d4 > Eps)) {
		return true
	}
	if math.Abs(d1) <= Eps && s.onSegment(t.A) {
		return true
	}
	if math.Abs(d2) <= Eps && s.onSegment(t.B) {
		return true
	}
	if math.Abs(d3) <= Eps && t.onSegment(s.A) {
		return true
	}
	if math.Abs(d4) <= Eps && t.onSegment(s.B) {
		return true
	}
	return false
}

// Intersection returns the intersection point of the two segments and true if
// they properly intersect at a single point. Collinear overlaps return false.
func (s Segment) Intersection(t Segment) (Point, bool) {
	r := s.B.Sub(s.A)
	d := t.B.Sub(t.A)
	denom := r.Cross(d)
	if math.Abs(denom) < Eps {
		return Point{}, false
	}
	diff := t.A.Sub(s.A)
	u := diff.Cross(d) / denom
	v := diff.Cross(r) / denom
	if u < -Eps || u > 1+Eps || v < -Eps || v > 1+Eps {
		return Point{}, false
	}
	return s.A.Add(r.Scale(u)), true
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 < Eps {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return s.A.Add(d.Scale(t))
}

// DistToPoint returns the distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	return s.ClosestPoint(p).Dist(p)
}
