package geom

import "math"

// BBox is an axis-aligned bounding box. A valid box satisfies Min.X <= Max.X
// and Min.Y <= Max.Y; EmptyBBox() is the identity for Union.
type BBox struct {
	Min, Max Point
}

// EmptyBBox returns the empty box, the identity element for Union.
func EmptyBBox() BBox {
	return BBox{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// BBoxOf returns the smallest box containing all pts. With no points it
// returns EmptyBBox().
func BBoxOf(pts ...Point) BBox {
	b := EmptyBBox()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}

// IsEmpty reports whether the box contains no points.
func (b BBox) IsEmpty() bool { return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y }

// Width returns the extent along X (0 for empty boxes).
func (b BBox) Width() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.Max.X - b.Min.X
}

// Height returns the extent along Y (0 for empty boxes).
func (b BBox) Height() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.Max.Y - b.Min.Y
}

// Area returns the box area (0 for empty boxes).
func (b BBox) Area() float64 { return b.Width() * b.Height() }

// Center returns the box center.
func (b BBox) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
}

// Contains reports whether p lies inside or on the boundary of the box.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.Min.X-Eps && p.X <= b.Max.X+Eps &&
		p.Y >= b.Min.Y-Eps && p.Y <= b.Max.Y+Eps
}

// ContainsBBox reports whether o lies entirely inside b.
func (b BBox) ContainsBBox(o BBox) bool {
	return o.Min.X >= b.Min.X-Eps && o.Max.X <= b.Max.X+Eps &&
		o.Min.Y >= b.Min.Y-Eps && o.Max.Y <= b.Max.Y+Eps
}

// Intersects reports whether the two boxes share any point.
func (b BBox) Intersects(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.Min.X <= o.Max.X+Eps && o.Min.X <= b.Max.X+Eps &&
		b.Min.Y <= o.Max.Y+Eps && o.Min.Y <= b.Max.Y+Eps
}

// Union returns the smallest box containing both boxes.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return BBox{
		Min: Point{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y)},
		Max: Point{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y)},
	}
}

// ExtendPoint returns the smallest box containing b and p.
func (b BBox) ExtendPoint(p Point) BBox {
	return b.Union(BBox{Min: p, Max: p})
}

// Expand returns the box grown by r on every side.
func (b BBox) Expand(r float64) BBox {
	if b.IsEmpty() {
		return b
	}
	return BBox{
		Min: Point{b.Min.X - r, b.Min.Y - r},
		Max: Point{b.Max.X + r, b.Max.Y + r},
	}
}

// DistToPoint returns the distance from p to the box (0 when inside).
func (b BBox) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(b.Min.X-p.X, p.X-b.Max.X))
	dy := math.Max(0, math.Max(b.Min.Y-p.Y, p.Y-b.Max.Y))
	return math.Hypot(dx, dy)
}

// EnlargementTo returns how much the box area grows when extended to cover o.
func (b BBox) EnlargementTo(o BBox) float64 {
	return b.Union(o).Area() - b.Area()
}
