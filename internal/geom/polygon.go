package geom

import (
	"fmt"
	"math"
)

// Polygon is a simple polygon given by its vertices in order (either winding).
// The closing edge from the last vertex back to the first is implicit.
type Polygon []Point

// Rect returns the axis-aligned rectangle polygon with the given corners.
func Rect(minX, minY, maxX, maxY float64) Polygon {
	return Polygon{
		{minX, minY}, {maxX, minY}, {maxX, maxY}, {minX, maxY},
	}
}

// Clone returns a deep copy of the polygon.
func (pg Polygon) Clone() Polygon {
	out := make(Polygon, len(pg))
	copy(out, pg)
	return out
}

// SignedArea returns the signed area; positive when vertices are
// counter-clockwise.
func (pg Polygon) SignedArea() float64 {
	if len(pg) < 3 {
		return 0
	}
	var s float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		s += p.Cross(q)
	}
	return s / 2
}

// Area returns the absolute area of the polygon.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// Perimeter returns the total boundary length.
func (pg Polygon) Perimeter() float64 {
	var s float64
	for i, p := range pg {
		s += p.Dist(pg[(i+1)%len(pg)])
	}
	return s
}

// Centroid returns the area centroid. Degenerate polygons fall back to the
// vertex average.
func (pg Polygon) Centroid() Point {
	a := pg.SignedArea()
	if math.Abs(a) < Eps {
		var c Point
		for _, p := range pg {
			c = c.Add(p)
		}
		if len(pg) > 0 {
			c = c.Scale(1 / float64(len(pg)))
		}
		return c
	}
	var cx, cy float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		f := p.Cross(q)
		cx += (p.X + q.X) * f
		cy += (p.Y + q.Y) * f
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// BBox returns the axis-aligned bounding box of the polygon.
func (pg Polygon) BBox() BBox { return BBoxOf(pg...) }

// Edges returns the boundary segments of the polygon.
func (pg Polygon) Edges() []Segment {
	out := make([]Segment, 0, len(pg))
	for i, p := range pg {
		out = append(out, Segment{p, pg[(i+1)%len(pg)]})
	}
	return out
}

// Contains reports whether p is strictly inside or on the boundary of the
// polygon, using the even-odd ray casting rule with a boundary pre-check.
func (pg Polygon) Contains(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	for i := range pg {
		e := Segment{pg[i], pg[(i+1)%len(pg)]}
		if e.DistToPoint(p) < Eps {
			return true
		}
	}
	inside := false
	n := len(pg)
	j := n - 1
	for i := 0; i < n; i++ {
		pi, pj := pg[i], pg[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			xint := (pj.X-pi.X)*(p.Y-pi.Y)/(pj.Y-pi.Y) + pi.X
			if p.X < xint {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// IsConvex reports whether the polygon is convex (collinear runs allowed).
func (pg Polygon) IsConvex() bool {
	if len(pg) < 4 {
		return len(pg) == 3
	}
	sign := 0
	n := len(pg)
	for i := 0; i < n; i++ {
		c := orientation(pg[i], pg[(i+1)%n], pg[(i+2)%n])
		if math.Abs(c) < Eps {
			continue
		}
		s := 1
		if c < 0 {
			s = -1
		}
		if sign == 0 {
			sign = s
		} else if sign != s {
			return false
		}
	}
	return true
}

// AspectRatio returns bounding-box width/height ratio, always >= 1. It is the
// shape-balance criterion used by the partition decomposer.
func (pg Polygon) AspectRatio() float64 {
	b := pg.BBox()
	w, h := b.Width(), b.Height()
	if w < Eps || h < Eps {
		return math.Inf(1)
	}
	if w > h {
		return w / h
	}
	return h / w
}

// ClosestBoundaryPoint returns the point on the polygon boundary closest to p.
func (pg Polygon) ClosestBoundaryPoint(p Point) Point {
	best := pg[0]
	bestD := math.Inf(1)
	for _, e := range pg.Edges() {
		c := e.ClosestPoint(p)
		if d := c.Dist(p); d < bestD {
			bestD, best = d, c
		}
	}
	return best
}

// DistToBoundary returns the distance from p to the polygon boundary.
func (pg Polygon) DistToBoundary(p Point) float64 {
	return pg.ClosestBoundaryPoint(p).Dist(p)
}

// IntersectsSegment reports whether the segment crosses or touches the
// polygon boundary.
func (pg Polygon) IntersectsSegment(s Segment) bool {
	for _, e := range pg.Edges() {
		if e.Intersects(s) {
			return true
		}
	}
	return false
}

// ClipHalfPlane clips the polygon against the half-plane on the left of the
// directed line a→b (Sutherland–Hodgman). The result may be empty.
func (pg Polygon) ClipHalfPlane(a, b Point) Polygon {
	if len(pg) == 0 {
		return nil
	}
	dir := b.Sub(a)
	inside := func(p Point) bool { return dir.Cross(p.Sub(a)) >= -Eps }
	intersect := func(p, q Point) Point {
		d := q.Sub(p)
		denom := dir.Cross(d)
		if math.Abs(denom) < Eps {
			return p
		}
		// Solve cross(dir, p + t*d - a) = 0 for t.
		t := dir.Cross(a.Sub(p)) / denom
		return p.Add(d.Scale(t))
	}
	var out Polygon
	n := len(pg)
	for i := 0; i < n; i++ {
		cur, next := pg[i], pg[(i+1)%n]
		cin, nin := inside(cur), inside(next)
		if cin {
			out = append(out, cur)
		}
		if cin != nin {
			out = append(out, intersect(cur, next))
		}
	}
	return out.dedup()
}

// dedup removes consecutive duplicate vertices.
func (pg Polygon) dedup() Polygon {
	if len(pg) == 0 {
		return pg
	}
	out := pg[:0:0]
	for _, p := range pg {
		if len(out) == 0 || !out[len(out)-1].Eq(p) {
			out = append(out, p)
		}
	}
	if len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

// SplitByLine splits the polygon by the infinite line through a and b and
// returns the two (possibly empty) halves: left of a→b first.
func (pg Polygon) SplitByLine(a, b Point) (left, right Polygon) {
	return pg.ClipHalfPlane(a, b), pg.ClipHalfPlane(b, a)
}

// Validate returns an error when the polygon is degenerate: fewer than three
// vertices, repeated consecutive vertices, or (near-)zero area.
func (pg Polygon) Validate() error {
	if len(pg) < 3 {
		return fmt.Errorf("geom: polygon has %d vertices, need >= 3", len(pg))
	}
	for i, p := range pg {
		if p.Eq(pg[(i+1)%len(pg)]) {
			return fmt.Errorf("geom: polygon has repeated vertex at index %d", i)
		}
	}
	if pg.Area() < Eps {
		return fmt.Errorf("geom: polygon has zero area")
	}
	return nil
}

// SelfIntersects reports whether non-adjacent edges of the polygon cross.
// It is used by the DBI error identification step.
func (pg Polygon) SelfIntersects() bool {
	edges := pg.Edges()
	n := len(edges)
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			if i == 0 && j == n-1 {
				continue // adjacent via the closing edge
			}
			if edges[i].Intersects(edges[j]) {
				return true
			}
		}
	}
	return false
}
