package geom

import (
	"math"
	"testing"
)

func TestPointOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(4, 6)
	if d := p.Dist(q); math.Abs(d-5) > Eps {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := p.Dist2(q); math.Abs(d-25) > Eps {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if got := p.Add(q); !got.Eq(Pt(5, 8)) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); !got.Eq(Pt(3, 4)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); math.Abs(got-16) > Eps {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); math.Abs(got-(1*6-2*4)) > Eps {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Lerp(q, 0.5); !got.Eq(Pt(2.5, 4)) {
		t.Errorf("Lerp = %v", got)
	}
	if got := Pt(3, 4).Unit().Norm(); math.Abs(got-1) > Eps {
		t.Errorf("Unit norm = %v", got)
	}
	if got := Pt(0, 0).Unit(); !got.Eq(Pt(0, 0)) {
		t.Errorf("zero Unit = %v", got)
	}
}

func TestPoint3(t *testing.T) {
	p := Pt3(1, 2, 3)
	if got := p.XY(); !got.Eq(Pt(1, 2)) {
		t.Errorf("XY = %v", got)
	}
	if d := p.Dist(Pt3(1, 2, 7)); math.Abs(d-4) > Eps {
		t.Errorf("Dist = %v", d)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		a, b Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), true},    // crossing
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(5, 5)), true},       // T-touch
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 1), Pt(10, 1)), false},     // parallel
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 2), Pt(3, 3)), false},       // collinear disjoint
		{Seg(Pt(0, 0), Pt(5, 5)), Seg(Pt(3, 3), Pt(8, 8)), true},        // collinear overlap
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(20, 0)), true},     // endpoint touch
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(11, -1), Pt(11, 1)), false},   // near miss
		{Seg(Pt(0, 0), Pt(0, 10)), Seg(Pt(-5, 5), Pt(5, 5)), true},      // vertical crossed
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0.01), Pt(5, 5)), false},   // just above
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, -5), Pt(5, -0.01)), false}, // just below
	}
	for i, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentIntersection(t *testing.T) {
	p, ok := Seg(Pt(0, 0), Pt(10, 10)).Intersection(Seg(Pt(0, 10), Pt(10, 0)))
	if !ok || !p.Eq(Pt(5, 5)) {
		t.Errorf("Intersection = %v, %v", p, ok)
	}
	if _, ok := Seg(Pt(0, 0), Pt(10, 0)).Intersection(Seg(Pt(0, 1), Pt(10, 1))); ok {
		t.Error("parallel segments should not intersect at a point")
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if got := s.ClosestPoint(Pt(5, 3)); !got.Eq(Pt(5, 0)) {
		t.Errorf("ClosestPoint = %v", got)
	}
	if got := s.ClosestPoint(Pt(-4, 3)); !got.Eq(Pt(0, 0)) {
		t.Errorf("ClosestPoint clamp = %v", got)
	}
	if d := s.DistToPoint(Pt(5, 3)); math.Abs(d-3) > Eps {
		t.Errorf("DistToPoint = %v", d)
	}
}

func TestBBox(t *testing.T) {
	b := BBoxOf(Pt(1, 2), Pt(5, 1), Pt(3, 7))
	if b.Min != Pt(1, 1) || b.Max != Pt(5, 7) {
		t.Fatalf("BBoxOf = %+v", b)
	}
	if !b.Contains(Pt(3, 3)) || b.Contains(Pt(10, 10)) {
		t.Error("Contains broken")
	}
	if b.Area() != 24 {
		t.Errorf("Area = %v", b.Area())
	}
	e := EmptyBBox()
	if !e.IsEmpty() || e.Area() != 0 {
		t.Error("EmptyBBox not empty")
	}
	if got := e.Union(b); got != b {
		t.Error("Union with empty is not identity")
	}
	if e.Intersects(b) {
		t.Error("empty box intersects")
	}
	if d := b.DistToPoint(Pt(8, 1)); math.Abs(d-3) > Eps {
		t.Errorf("DistToPoint = %v", d)
	}
	if d := b.DistToPoint(Pt(3, 3)); d != 0 {
		t.Errorf("inside DistToPoint = %v", d)
	}
	g := b.Expand(1)
	if g.Min != Pt(0, 0) || g.Max != Pt(6, 8) {
		t.Errorf("Expand = %+v", g)
	}
	if !g.ContainsBBox(b) {
		t.Error("expanded box must contain original")
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	if a := sq.Area(); math.Abs(a-100) > Eps {
		t.Errorf("Area = %v", a)
	}
	if c := sq.Centroid(); !c.Eq(Pt(5, 5)) {
		t.Errorf("Centroid = %v", c)
	}
	if p := sq.Perimeter(); math.Abs(p-40) > Eps {
		t.Errorf("Perimeter = %v", p)
	}
	// Winding must not affect absolute area.
	rev := Polygon{sq[3], sq[2], sq[1], sq[0]}
	if a := rev.Area(); math.Abs(a-100) > Eps {
		t.Errorf("reversed Area = %v", a)
	}
	// L-shape.
	l := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4)}
	if a := l.Area(); math.Abs(a-12) > Eps {
		t.Errorf("L Area = %v", a)
	}
	if l.IsConvex() {
		t.Error("L-shape reported convex")
	}
	if !sq.IsConvex() {
		t.Error("square reported non-convex")
	}
}

func TestPolygonContains(t *testing.T) {
	l := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4)}
	inside := []Point{Pt(1, 1), Pt(3, 1), Pt(1, 3), Pt(0.5, 3.5)}
	outside := []Point{Pt(3, 3), Pt(5, 1), Pt(-1, 2), Pt(3, 2.5)}
	for _, p := range inside {
		if !l.Contains(p) {
			t.Errorf("should contain %v", p)
		}
	}
	for _, p := range outside {
		if l.Contains(p) {
			t.Errorf("should not contain %v", p)
		}
	}
	// Boundary points count as contained.
	if !l.Contains(Pt(0, 0)) || !l.Contains(Pt(2, 3)) {
		t.Error("boundary points should be contained")
	}
}

func TestPolygonSplitByLine(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	left, right := sq.SplitByLine(Pt(5, -1), Pt(5, 11))
	if math.Abs(left.Area()-50) > 1e-6 || math.Abs(right.Area()-50) > 1e-6 {
		t.Errorf("split areas = %v, %v", left.Area(), right.Area())
	}
	if math.Abs(left.Area()+right.Area()-sq.Area()) > 1e-6 {
		t.Error("split does not preserve area")
	}
}

func TestPolygonValidate(t *testing.T) {
	if err := Rect(0, 0, 1, 1).Validate(); err != nil {
		t.Errorf("valid rect rejected: %v", err)
	}
	if err := (Polygon{Pt(0, 0), Pt(1, 1)}).Validate(); err == nil {
		t.Error("2-vertex polygon accepted")
	}
	if err := (Polygon{Pt(0, 0), Pt(0, 0), Pt(1, 1)}).Validate(); err == nil {
		t.Error("repeated-vertex polygon accepted")
	}
	if err := (Polygon{Pt(0, 0), Pt(1, 0), Pt(2, 0)}).Validate(); err == nil {
		t.Error("zero-area polygon accepted")
	}
}

func TestPolygonSelfIntersects(t *testing.T) {
	bow := Polygon{Pt(0, 0), Pt(10, 10), Pt(10, 0), Pt(0, 10)}
	if !bow.SelfIntersects() {
		t.Error("bow-tie not detected")
	}
	if Rect(0, 0, 5, 5).SelfIntersects() {
		t.Error("rectangle flagged self-intersecting")
	}
}

func TestAspectRatio(t *testing.T) {
	if ar := Rect(0, 0, 10, 2).AspectRatio(); math.Abs(ar-5) > Eps {
		t.Errorf("AspectRatio = %v", ar)
	}
	if ar := Rect(0, 0, 2, 10).AspectRatio(); math.Abs(ar-5) > Eps {
		t.Errorf("AspectRatio (tall) = %v", ar)
	}
}

func TestWallSet(t *testing.T) {
	ws := NewWallSet([]Segment{
		Seg(Pt(5, 0), Pt(5, 10)),
		Seg(Pt(0, 5), Pt(10, 5)),
	})
	if ws.Len() != 2 {
		t.Fatalf("Len = %d", ws.Len())
	}
	if n := ws.Crossings(Pt(0, 0), Pt(10, 10)); n != 2 {
		t.Errorf("Crossings diagonal = %d, want 2", n)
	}
	if n := ws.Crossings(Pt(0, 0), Pt(2, 2)); n != 0 {
		t.Errorf("Crossings local = %d, want 0", n)
	}
	if !ws.HasLineOfSight(Pt(0, 0), Pt(2, 2)) {
		t.Error("LoS should be clear")
	}
	if ws.HasLineOfSight(Pt(0, 0), Pt(10, 0.1)) {
		t.Error("LoS should be blocked by vertical wall")
	}
	ws.Add(Seg(Pt(0, 8), Pt(10, 8)))
	if n := ws.Crossings(Pt(1, 7), Pt(1, 9)); n != 1 {
		t.Errorf("Crossings after Add = %d", n)
	}
}

func TestDistToBoundary(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	if d := sq.DistToBoundary(Pt(5, 5)); math.Abs(d-5) > Eps {
		t.Errorf("center boundary dist = %v", d)
	}
	if d := sq.DistToBoundary(Pt(12, 5)); math.Abs(d-2) > Eps {
		t.Errorf("outside boundary dist = %v", d)
	}
	if d := sq.DistToBoundary(Pt(10, 5)); d > Eps {
		t.Errorf("on-boundary dist = %v", d)
	}
}
