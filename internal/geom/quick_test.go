package geom

import (
	"math"
	"testing"
	"testing/quick"
)

// clampCoord maps arbitrary float64s into a well-conditioned coordinate
// range so property tests avoid NaN/Inf and catastrophic cancellation.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

func qpt(x, y float64) Point { return Pt(clampCoord(x), clampCoord(y)) }

// TestQuickBBoxUnionContains: the union of two boxes contains both.
func TestQuickBBoxUnionContains(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		b1 := BBoxOf(qpt(ax, ay), qpt(bx, by))
		b2 := BBoxOf(qpt(cx, cy), qpt(dx, dy))
		u := b1.Union(b2)
		return u.ContainsBBox(b1) && u.ContainsBBox(b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickBBoxDistZeroInside: points inside a box are at distance zero.
func TestQuickBBoxDistZeroInside(t *testing.T) {
	f := func(ax, ay, bx, by, t1, t2 float64) bool {
		b := BBoxOf(qpt(ax, ay), qpt(bx, by))
		u := math.Abs(math.Mod(t1, 1))
		v := math.Abs(math.Mod(t2, 1))
		p := Pt(b.Min.X+u*b.Width(), b.Min.Y+v*b.Height())
		return b.DistToPoint(p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSegmentIntersectsSymmetric: intersection is symmetric.
func TestQuickSegmentIntersectsSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		s1 := Seg(qpt(ax, ay), qpt(bx, by))
		s2 := Seg(qpt(cx, cy), qpt(dx, dy))
		return s1.Intersects(s2) == s2.Intersects(s1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSegmentClosestPointOnSegment: the closest point lies on the
// segment and is no farther than either endpoint.
func TestQuickSegmentClosestPointOnSegment(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Seg(qpt(ax, ay), qpt(bx, by))
		p := qpt(px, py)
		c := s.ClosestPoint(p)
		d := c.Dist(p)
		if d > p.Dist(s.A)+Eps || d > p.Dist(s.B)+Eps {
			return false
		}
		// c must be (nearly) on the segment.
		return s.DistToPoint(c) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickPolygonTranslationInvariance: area and relative centroid are
// preserved under translation.
func TestQuickPolygonTranslationInvariance(t *testing.T) {
	f := func(w, h, tx, ty float64) bool {
		wc := math.Abs(clampCoord(w)) + 1
		hc := math.Abs(clampCoord(h)) + 1
		p := Rect(0, 0, wc, hc)
		off := qpt(tx, ty)
		q := make(Polygon, len(p))
		for i, v := range p {
			q[i] = v.Add(off)
		}
		if math.Abs(p.Area()-q.Area()) > 1e-6*(1+p.Area()) {
			return false
		}
		cp, cq := p.Centroid(), q.Centroid()
		return cq.Sub(off).Dist(cp) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitPreservesArea: splitting a rectangle by any line through its
// interior preserves total area.
func TestQuickSplitPreservesArea(t *testing.T) {
	f := func(w, h, angle float64) bool {
		wc := math.Abs(clampCoord(w)) + 2
		hc := math.Abs(clampCoord(h)) + 2
		p := Rect(0, 0, wc, hc)
		c := p.Centroid()
		a := math.Mod(angle, math.Pi)
		dir := Pt(math.Cos(a), math.Sin(a))
		from := c.Sub(dir.Scale(wc + hc))
		to := c.Add(dir.Scale(wc + hc))
		left, right := p.SplitByLine(from, to)
		return math.Abs(left.Area()+right.Area()-p.Area()) < 1e-6*(1+p.Area())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickContainsCentroidConvex: a convex polygon contains its centroid.
func TestQuickContainsCentroidConvex(t *testing.T) {
	f := func(w, h float64) bool {
		wc := math.Abs(clampCoord(w)) + 1
		hc := math.Abs(clampCoord(h)) + 1
		p := Rect(3, 7, 3+wc, 7+hc)
		return p.Contains(p.Centroid())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickWallCrossingsParity: a horizontal path from strictly inside a
// closed rectangle of walls to strictly outside crosses an odd number of
// walls. The ray is kept horizontal through edge interiors — a path grazing
// a polygon corner legitimately touches two adjacent edges at their shared
// endpoint and breaks naive parity, which is exactly why line-of-sight
// queries in the toolkit count crossings rather than assume parity.
func TestQuickWallCrossingsParity(t *testing.T) {
	walls := NewWallSet(Rect(0, 0, 100, 100).Edges())
	f := func(ix, iy, ox float64) bool {
		in := Pt(1+math.Abs(math.Mod(ix, 98)), 1+math.Abs(math.Mod(iy, 98)))
		out := Pt(105+math.Abs(math.Mod(ox, 100)), in.Y)
		n := walls.Crossings(in, out)
		return n%2 == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
