package geom

// WallSet is a collection of wall segments supporting line-of-sight queries.
// It underlies the obstacle-noise term Nob of the RSSI path loss model: the
// paper's Figure 3(a) example (device d1 behind walls measures a weaker
// signal than d2 at the same transmission distance) is realized by counting
// how many walls the direct path crosses.
type WallSet struct {
	walls []Segment
	boxes []BBox
}

// NewWallSet builds a WallSet from wall segments.
func NewWallSet(walls []Segment) *WallSet {
	ws := &WallSet{walls: make([]Segment, len(walls)), boxes: make([]BBox, len(walls))}
	copy(ws.walls, walls)
	for i, w := range walls {
		ws.boxes[i] = w.BBox()
	}
	return ws
}

// Add appends a wall segment.
func (ws *WallSet) Add(w Segment) {
	ws.walls = append(ws.walls, w)
	ws.boxes = append(ws.boxes, w.BBox())
}

// Len returns the number of walls.
func (ws *WallSet) Len() int { return len(ws.walls) }

// Walls returns the underlying wall segments (not a copy).
func (ws *WallSet) Walls() []Segment { return ws.walls }

// Crossings returns the number of walls the open segment from a to b crosses.
func (ws *WallSet) Crossings(a, b Point) int {
	path := Segment{a, b}
	pb := path.BBox()
	n := 0
	for i, w := range ws.walls {
		if !pb.Intersects(ws.boxes[i]) {
			continue
		}
		if path.Intersects(w) {
			n++
		}
	}
	return n
}

// HasLineOfSight reports whether the straight path from a to b crosses no
// walls.
func (ws *WallSet) HasLineOfSight(a, b Point) bool {
	return ws.Crossings(a, b) == 0
}
