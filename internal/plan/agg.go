package plan

import (
	"fmt"
	"sort"

	"vita/internal/colstore"
	"vita/internal/trajectory"
)

// aggFn discriminates the reduction functions.
type aggFn int

const (
	aggCount aggFn = iota
	aggSum
	aggMin
	aggMax
	aggAvg
)

func (f aggFn) String() string {
	switch f {
	case aggCount:
		return "count"
	case aggSum:
		return "sum"
	case aggMin:
		return "min"
	case aggMax:
		return "max"
	default:
		return "avg"
	}
}

// AggSpec is one aggregate of an Aggregate node: reduce the src column with
// fn and write the result into the dst column of the group's output row.
// Build specs with CountInto, Sum, Min, Max, or Avg.
type AggSpec struct {
	fn  aggFn
	src Col
	dst Col
}

// CountInto counts the rows of each group into dst. Counting the output of
// a finer-grained Aggregate gives distinct counts — e.g. grouping by
// (partition, object) then by partition with CountInto(ColObjID) yields
// distinct objects per partition.
func CountInto(dst Col) AggSpec { return AggSpec{fn: aggCount, dst: dst} }

// Sum sums the numeric src column into dst.
func Sum(src, dst Col) AggSpec { return AggSpec{fn: aggSum, src: src, dst: dst} }

// Min keeps the minimum of the numeric src column in dst (0 for empty input).
func Min(src, dst Col) AggSpec { return AggSpec{fn: aggMin, src: src, dst: dst} }

// Max keeps the maximum of the numeric src column in dst (0 for empty input).
func Max(src, dst Col) AggSpec { return AggSpec{fn: aggMax, src: src, dst: dst} }

// Avg averages the numeric src column into dst (0 for empty input).
func Avg(src, dst Col) AggSpec { return AggSpec{fn: aggAvg, src: src, dst: dst} }

// aggState is one aggregate's accumulator within one group.
type aggState struct {
	count    int64
	sum      float64
	min, max float64
	seen     bool
}

func (st *aggState) add(v float64) {
	st.count++
	st.sum += v
	if !st.seen || v < st.min {
		st.min = v
	}
	if !st.seen || v > st.max {
		st.max = v
	}
	st.seen = true
}

func (st *aggState) result(fn aggFn) float64 {
	switch fn {
	case aggCount:
		return float64(st.count)
	case aggSum:
		return st.sum
	case aggMin:
		return st.min
	case aggMax:
		return st.max
	default:
		if st.count == 0 {
			return 0
		}
		return st.sum / float64(st.count)
	}
}

// aggGroup is one hash bucket: the group-by column values (as a zeroed
// representative row) plus one accumulator per spec.
type aggGroup struct {
	rep    trajectory.Sample
	repVal float64
	states []aggState
}

// hashAggOp drains its child into a hash table keyed by the group-by
// columns, then emits one row per group in ascending key order — sorted
// emission (not map order) keeps plans deterministic. Output rows carry the
// group-by values; all other columns are zero until an AggSpec writes its
// dst into them.
type hashAggOp struct {
	child  Operator
	by     []Col
	aggs   []AggSpec
	done   bool
	bc     batchCols
	keyBuf []byte
}

func newHashAggOp(child Operator, by []Col, aggs []AggSpec) (Operator, error) {
	if len(by) == 0 {
		return nil, fmt.Errorf("plan: Aggregate needs at least one group-by column")
	}
	for _, a := range aggs {
		if a.fn != aggCount && a.src.isString() {
			return nil, fmt.Errorf("plan: %s over string column %s", a.fn, a.src)
		}
		if a.dst.isString() {
			return nil, fmt.Errorf("plan: aggregate destination %s is not numeric", a.dst)
		}
	}
	return &hashAggOp{child: child, by: by, aggs: aggs}, nil
}

// groupRep copies only the group-by columns of row i into a zeroed
// representative row.
func (h *hashAggOp) groupRep(b *Batch, i int) (trajectory.Sample, float64) {
	var rep trajectory.Sample
	var repVal float64
	s := b.Traj.Row(i)
	for _, c := range h.by {
		switch c {
		case ColObjID:
			rep.ObjID = s.ObjID
		case ColBuilding:
			rep.Loc.Building = s.Loc.Building
		case ColFloor:
			rep.Loc.Floor = s.Loc.Floor
		case ColPartition:
			rep.Loc.Partition = s.Loc.Partition
		case ColX:
			rep.Loc.Point.X = s.Loc.Point.X
		case ColY:
			rep.Loc.Point.Y = s.Loc.Point.Y
		case ColT:
			rep.T = s.T
		case ColVal:
			repVal = colNum(b, ColVal, i)
		}
	}
	return rep, repVal
}

func (h *hashAggOp) build() bool {
	groups := make(map[string]*aggGroup)
	for h.child.Next() {
		in := h.child.Batch()
		for i := 0; i < in.Len(); i++ {
			h.keyBuf = h.keyBuf[:0]
			for _, c := range h.by {
				h.keyBuf = appendColKey(h.keyBuf, in, c, i)
			}
			g := groups[string(h.keyBuf)]
			if g == nil {
				g = &aggGroup{states: make([]aggState, len(h.aggs))}
				g.rep, g.repVal = h.groupRep(in, i)
				groups[string(h.keyBuf)] = g
			}
			for j, a := range h.aggs {
				var v float64
				if a.fn != aggCount {
					v = colNum(in, a.src, i)
				}
				g.states[j].add(v)
			}
		}
	}
	if h.child.Err() != nil {
		return false
	}

	ordered := make([]*aggGroup, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		for _, c := range h.by {
			if cmp := sampleColCompare(a.rep, a.repVal, b.rep, b.repVal, c); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})

	useVal := false
	for _, c := range h.by {
		if c == ColVal {
			useVal = true
		}
	}
	for _, a := range h.aggs {
		if a.dst == ColVal {
			useVal = true
		}
	}
	h.bc.reset(useVal)
	for r, g := range ordered {
		h.bc.appendRow(g.rep, g.repVal)
		for j, a := range h.aggs {
			setColNum(&h.bc, a.dst, r, g.states[j].result(a.fn))
		}
	}
	return h.bc.len() > 0
}

func (h *hashAggOp) Next() bool {
	if h.done {
		return false
	}
	h.done = true
	return h.build()
}

func (h *hashAggOp) Batch() *Batch             { return h.bc.batch() }
func (h *hashAggOp) Err() error                { return h.child.Err() }
func (h *hashAggOp) Stats() colstore.ScanStats { return h.child.Stats() }
func (h *hashAggOp) Close() error              { return h.child.Close() }
